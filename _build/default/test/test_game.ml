(* Tests for strategy profiles and the two cost models. *)

module Graph = Ncg_graph.Graph
module Strategy = Ncg.Strategy
module Game = Ncg.Game
module Rng = Ncg_prng.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let checkf msg = Alcotest.(check (float 1e-9)) msg
let check_opt_int = Alcotest.(check (option int))

(* Path 0-1-2 where i buys the edge to i+1. *)
let path3 = Strategy.of_buys ~n:3 [ (0, 1); (1, 2) ]

(* --- Strategy ------------------------------------------------------------- *)

let test_strategy_basics () =
  check_int "n" 3 (Strategy.n_players path3);
  Alcotest.(check (list int)) "owned 0" [ 1 ] (Strategy.owned path3 0);
  Alcotest.(check (list int)) "owned 2" [] (Strategy.owned path3 2);
  check_bool "owns" true (Strategy.owns path3 0 1);
  check_bool "not owns reverse" false (Strategy.owns path3 1 0);
  check_int "bought 1" 1 (Strategy.bought_count path3 1);
  check_int "total" 2 (Strategy.total_bought path3)

let test_strategy_graph () =
  let g = Strategy.graph path3 in
  check_int "edges" 2 (Graph.size g);
  check_bool "0-1" true (Graph.mem_edge g 0 1);
  check_bool "1-2" true (Graph.mem_edge g 1 2)

let test_double_purchase_single_edge () =
  (* Both endpoints buy: one edge in the graph, two purchases in costs. *)
  let s = Strategy.of_buys ~n:2 [ (0, 1); (1, 0) ] in
  check_int "graph has one edge" 1 (Graph.size (Strategy.graph s));
  check_int "two purchases" 2 (Strategy.total_bought s)

let test_with_owned () =
  let s = Strategy.with_owned path3 0 [ 2 ] in
  Alcotest.(check (list int)) "updated" [ 2 ] (Strategy.owned s 0);
  Alcotest.(check (list int)) "original untouched" [ 1 ] (Strategy.owned path3 0);
  Alcotest.(check (list int)) "dedup" [ 2 ]
    (Strategy.owned (Strategy.with_owned path3 0 [ 2; 2 ]) 0)

let test_in_buyers () =
  Alcotest.(check (list int)) "buyers of 1" [ 0 ] (Strategy.in_buyers path3 1);
  Alcotest.(check (list int)) "buyers of 0" [] (Strategy.in_buyers path3 0)

let test_strategy_validation () =
  Alcotest.check_raises "self edge"
    (Invalid_argument "Strategy: a player cannot buy a self edge") (fun () ->
      ignore (Strategy.of_buys ~n:3 [ (1, 1) ]));
  Alcotest.check_raises "range" (Invalid_argument "Strategy: player out of range")
    (fun () -> ignore (Strategy.with_owned path3 0 [ 5 ]))

let test_random_orientation () =
  let rng = Rng.create 5 in
  let g = Ncg_gen.Classic.cycle 10 in
  let s = Strategy.random_orientation rng g in
  check_bool "same graph" true (Graph.equal g (Strategy.graph s));
  check_int "one purchase per edge" (Graph.size g) (Strategy.total_bought s)

let test_serialization_roundtrip () =
  let samples =
    [
      path3;
      Strategy.create ~n:4;
      Strategy.of_buys ~n:5 (Ncg_gen.Classic.star_buys 5);
      Strategy.of_buys ~n:2 [ (0, 1); (1, 0) ];
    ]
  in
  List.iter
    (fun s ->
      let s' = Strategy.of_string (Strategy.to_string s) in
      check_bool "roundtrip" true (Strategy.equal s s'))
    samples

let test_serialization_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Strategy.of_string: empty input")
    (fun () -> ignore (Strategy.of_string ""));
  Alcotest.check_raises "bad count"
    (Invalid_argument "Strategy.of_string: bad player count") (fun () ->
      ignore (Strategy.of_string "abc\n"));
  Alcotest.check_raises "too few lines"
    (Invalid_argument "Strategy.of_string: wrong number of player lines") (fun () ->
      ignore (Strategy.of_string "3\n1\n"));
  Alcotest.check_raises "excess non-blank lines"
    (Invalid_argument "Strategy.of_string: wrong number of player lines") (fun () ->
      ignore (Strategy.of_string "1\n\n0 2\n"));
  Alcotest.check_raises "bad target" (Invalid_argument "Strategy.of_string: bad target")
    (fun () -> ignore (Strategy.of_string "2\nx\n\n"));
  Alcotest.check_raises "range check inherited"
    (Invalid_argument "Strategy: player out of range") (fun () ->
      ignore (Strategy.of_string "2\n5\n\n"))

let prop_serialization_roundtrip =
  QCheck.Test.make ~name:"to_string/of_string roundtrip on random profiles" ~count:100
    QCheck.(pair (int_range 2 20) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let g = Ncg_gen.Random_tree.generate rng n in
      let s = Strategy.random_orientation rng g in
      Strategy.equal s (Strategy.of_string (Strategy.to_string s)))

let test_key_and_equal () =
  let a = Strategy.of_buys ~n:3 [ (0, 1); (1, 2) ] in
  check_bool "equal" true (Strategy.equal a path3);
  Alcotest.(check string) "same key" (Strategy.to_key a) (Strategy.to_key path3);
  let b = Strategy.with_owned a 0 [ 2 ] in
  check_bool "not equal" false (Strategy.equal a b);
  check_bool "different key" true (Strategy.to_key a <> Strategy.to_key b)

(* --- Usage and costs -------------------------------------------------------- *)

let test_usage () =
  let g = Strategy.graph path3 in
  check_opt_int "max end" (Some 2) (Game.usage Game.Max g 0);
  check_opt_int "max mid" (Some 1) (Game.usage Game.Max g 1);
  check_opt_int "sum end" (Some 3) (Game.usage Game.Sum g 0);
  check_opt_int "sum mid" (Some 2) (Game.usage Game.Sum g 1)

let test_player_cost () =
  let g = Strategy.graph path3 in
  Alcotest.(check (option (float 1e-9)))
    "max cost 0" (Some 4.0)
    (Game.player_cost Game.Max ~alpha:2.0 path3 g 0);
  Alcotest.(check (option (float 1e-9)))
    "max cost 2 (owns nothing)" (Some 2.0)
    (Game.player_cost Game.Max ~alpha:2.0 path3 g 2);
  Alcotest.(check (option (float 1e-9)))
    "sum cost 1" (Some 4.0)
    (Game.player_cost Game.Sum ~alpha:2.0 path3 g 1)

let test_social_cost () =
  (match Game.social_cost Game.Max ~alpha:2.0 path3 with
  | Some c -> checkf "max social" 9.0 c
  | None -> Alcotest.fail "connected");
  match Game.social_cost Game.Sum ~alpha:2.0 path3 with
  | Some c -> checkf "sum social" 12.0 c
  | None -> Alcotest.fail "connected"

let test_disconnected_cost () =
  let s = Strategy.of_buys ~n:3 [ (0, 1) ] in
  check_bool "none" true (Game.social_cost Game.Max ~alpha:1.0 s = None);
  check_bool "player none" true
    (Game.player_cost Game.Sum ~alpha:1.0 s (Strategy.graph s) 2 = None)

let test_social_optimum () =
  (* Max, alpha = 2, n = 5: star = 2*4 + 1 + 8 = 17 < clique 25. *)
  checkf "max star" 17.0 (Game.social_optimum Game.Max ~alpha:2.0 ~n:5);
  (* Max, alpha = 0.1, n = 5: clique = 1 + 5 = 6 < star 9.4. *)
  checkf "max clique" 6.0 (Game.social_optimum Game.Max ~alpha:0.1 ~n:5);
  (* Sum, alpha = 3, n = 4: star = 9 + 3 + 3*5 = 27; clique = 18 + 12 = 30. *)
  checkf "sum star" 27.0 (Game.social_optimum Game.Sum ~alpha:3.0 ~n:4);
  checkf "n=1 trivial" 0.0 (Game.social_optimum Game.Max ~alpha:3.0 ~n:1);
  checkf "n=2 max" 3.0 (Game.social_optimum Game.Max ~alpha:1.0 ~n:2);
  Alcotest.check_raises "n=0" (Invalid_argument "Game.social_optimum: need n >= 1")
    (fun () -> ignore (Game.social_optimum Game.Max ~alpha:1.0 ~n:0))

let test_quality_of_star_is_one () =
  (* The star with the center buying everything is the social optimum for
     alpha >= 1 (Max): its quality must be exactly 1. *)
  let n = 7 in
  let s = Strategy.of_buys ~n (Ncg_gen.Classic.star_buys n) in
  match Game.quality Game.Max ~alpha:2.0 s with
  | Some q -> checkf "quality 1" 1.0 q
  | None -> Alcotest.fail "connected"

let test_unfairness () =
  (* Symmetric cycle: every cost equal, unfairness = 1. *)
  let n = 8 in
  let s = Strategy.of_buys ~n (Ncg_gen.Classic.cycle_buys n) in
  let g = Strategy.graph s in
  (match Game.unfairness Game.Max ~alpha:1.0 s g with
  | Some u -> checkf "cycle fair" 1.0 u
  | None -> Alcotest.fail "connected");
  (* Star n=5, alpha=1: center cost 4+1=5, leaves 2: ratio 2.5. *)
  let star = Strategy.of_buys ~n:5 (Ncg_gen.Classic.star_buys 5) in
  match Game.unfairness Game.Max ~alpha:1.0 star (Strategy.graph star) with
  | Some u -> checkf "star unfair" 2.5 u
  | None -> Alcotest.fail "connected"

(* Property: Sum social cost = alpha * purchases + total pairwise distance. *)
let prop_social_cost_decomposition =
  QCheck.Test.make ~name:"social cost = alpha*purchases + total usage" ~count:100
    QCheck.(triple (int_range 2 20) (int_range 0 1000) (float_bound_exclusive 5.0))
    (fun (n, seed, alpha_raw) ->
      let alpha = alpha_raw +. 0.01 in
      let rng = Rng.create seed in
      let g = Ncg_gen.Random_tree.generate rng n in
      let s = Strategy.random_orientation rng g in
      match
        (Game.social_cost Game.Sum ~alpha s, Ncg_graph.Metrics.total_distance g)
      with
      | Some cost, Some dist ->
          abs_float
            (cost
            -. ((alpha *. float_of_int (Strategy.total_bought s)) +. float_of_int dist))
          < 1e-6
      | _ -> false)

let prop_star_optimal_for_max =
  QCheck.Test.make ~name:"no random config beats the reference optimum (alpha>=1)"
    ~count:100
    QCheck.(triple (int_range 3 15) (int_range 0 1000) (float_range 1.0 5.0))
    (fun (n, seed, alpha) ->
      let rng = Rng.create seed in
      let g = Ncg_gen.Random_tree.generate rng n in
      let s = Strategy.random_orientation rng g in
      match Game.social_cost Game.Max ~alpha s with
      | Some cost -> cost >= Game.social_optimum Game.Max ~alpha ~n -. 1e-9
      | None -> false)

let () =
  Alcotest.run "ncg_game"
    [
      ( "strategy",
        [
          Alcotest.test_case "basics" `Quick test_strategy_basics;
          Alcotest.test_case "graph" `Quick test_strategy_graph;
          Alcotest.test_case "double purchase" `Quick test_double_purchase_single_edge;
          Alcotest.test_case "with_owned" `Quick test_with_owned;
          Alcotest.test_case "in_buyers" `Quick test_in_buyers;
          Alcotest.test_case "validation" `Quick test_strategy_validation;
          Alcotest.test_case "random orientation" `Quick test_random_orientation;
          Alcotest.test_case "key/equal" `Quick test_key_and_equal;
          Alcotest.test_case "serialization roundtrip" `Quick test_serialization_roundtrip;
          Alcotest.test_case "serialization errors" `Quick test_serialization_errors;
          QCheck_alcotest.to_alcotest prop_serialization_roundtrip;
        ] );
      ( "costs",
        [
          Alcotest.test_case "usage" `Quick test_usage;
          Alcotest.test_case "player cost" `Quick test_player_cost;
          Alcotest.test_case "social cost" `Quick test_social_cost;
          Alcotest.test_case "disconnected" `Quick test_disconnected_cost;
          Alcotest.test_case "social optimum" `Quick test_social_optimum;
          Alcotest.test_case "star quality" `Quick test_quality_of_star_is_one;
          Alcotest.test_case "unfairness" `Quick test_unfairness;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_social_cost_decomposition;
          QCheck_alcotest.to_alcotest prop_star_optimal_for_max;
        ] );
    ]
