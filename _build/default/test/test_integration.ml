(* End-to-end validation of the paper's constructions: the lower-bound
   graphs really are Local Knowledge Equilibria and exhibit the claimed
   social-cost gaps. *)

module Graph = Ncg_graph.Graph
module Metrics = Ncg_graph.Metrics
module Strategy = Ncg.Strategy
module Lke = Ncg.Lke
module Game = Ncg.Game
module Torus_grid = Ncg_gen.Torus_grid

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Lemma 3.1: the cycle ------------------------------------------------- *)

let test_lemma_3_1_full () =
  (* n >= 2k+2, alpha >= k-1: equilibrium with social cost Theta(alpha n + n^2)
     against optimum Theta(alpha n + n). *)
  let n = 16 and k = 3 in
  let alpha = 2.0 in
  let s = Strategy.of_buys ~n (Ncg_gen.Classic.cycle_buys n) in
  check_bool "cycle LKE" true (Lke.is_lke_max ~alpha ~k s);
  match Game.social_cost Game.Max ~alpha s with
  | Some cost ->
      let opt = Game.social_optimum Game.Max ~alpha ~n in
      (* Cost = alpha*n + n*(n/2) = 32 + 128; opt = 2*15 + 1 + 30 = 61. *)
      check_bool "PoA gap" true (cost /. opt > 2.0)
  | None -> Alcotest.fail "cycle is connected"

let test_lemma_3_1_various_k () =
  (* The same profile stays an LKE whenever alpha >= k-1 and n >= 2k+2. *)
  List.iter
    (fun (n, k, alpha) ->
      let s = Strategy.of_buys ~n (Ncg_gen.Classic.cycle_buys n) in
      check_bool
        (Printf.sprintf "cycle n=%d k=%d alpha=%.1f" n k alpha)
        true
        (Lke.is_lke_max ~alpha ~k s))
    [ (10, 2, 1.0); (12, 4, 3.0); (20, 5, 10.0) ]

(* --- Lemma 3.2 via PG(2,q) -------------------------------------------------- *)

let test_lemma_3_2_projective_plane () =
  (* PG(2,3) incidence graph: girth 6 = 2k+2 for k=2, every view is a tree
     of height 2. With each point buying its incident edges, the profile
     is an LKE for alpha >= 1 (buying can save at most k-1 = 1 while any
     additional edge costs alpha >= 1; removing disconnects the view). *)
  let q = 3 in
  let g = Ncg_gen.Projective_plane.incidence q in
  let np = Ncg_gen.Projective_plane.plane_size q in
  let buys =
    List.map (fun (u, v) -> if u < np then (u, v) else (v, u)) (Graph.edges g)
  in
  let s = Strategy.of_buys ~n:(Graph.order g) buys in
  check_bool "PG(2,3) profile is an LKE (k=2, alpha=1.5)" true
    (Lke.is_lke_max ~alpha:1.5 ~k:2 s);
  (* The equilibrium is denser than a star: PoA density gap. *)
  check_bool "denser than tree" true (Graph.size g > Graph.order g)

(* --- Theorem 3.12: the stretched torus, MaxNCG ------------------------------- *)

let test_theorem_3_12_equilibrium () =
  (* alpha = 2 => ell = 2; k = 2; d = 2; delta_1 = 2; free delta_2. *)
  let alpha = 2.0 and k = 2 in
  let t = Torus_grid.closed ~d:2 ~ell:2 ~deltas:[| 2; 5 |] in
  let n = Graph.order t.Torus_grid.graph in
  (* n = N (2^{d-1}(l-1)+1) with N = 2 d1 d2 = 20, multiplier 3. *)
  check_int "n = 6 * d1 * d2" 60 n;
  let s = Strategy.of_buys ~n t.Torus_grid.buys in
  check_bool "graph matches" true (Graph.equal (Strategy.graph s) t.Torus_grid.graph);
  check_bool "torus is an LKE for MaxNCG" true (Lke.is_lke_max ~alpha ~k s);
  (* Diameter lower bound from Corollary 3.4 gives the PoA gap. *)
  (match Metrics.diameter t.Torus_grid.graph with
  | Some diam -> check_bool "large diameter" true (diam >= 2 * 5)
  | None -> Alcotest.fail "connected");
  match Game.quality Game.Max ~alpha s with
  | Some quality -> check_bool "quality far above 1" true (quality > 2.0)
  | None -> Alcotest.fail "connected"

let test_theorem_3_12_via_params () =
  match Torus_grid.params_for_theorem_3_12 ~alpha:2.0 ~k:4 ~n_budget:2500 with
  | Some (d, ell, deltas) ->
      let t = Torus_grid.closed ~d ~ell ~deltas in
      let n = Graph.order t.Torus_grid.graph in
      let s = Strategy.of_buys ~n t.Torus_grid.buys in
      check_bool "k=4 torus is an LKE" true (Lke.is_lke_max ~alpha:2.0 ~k:4 s)
  | None -> Alcotest.fail "params should fit in 2500 vertices"

let test_torus_not_equilibrium_when_k_large () =
  (* With full knowledge the torus is not stable: players see the whole
     ring and can shortcut it. *)
  let t = Torus_grid.closed ~d:2 ~ell:2 ~deltas:[| 2; 5 |] in
  let n = Graph.order t.Torus_grid.graph in
  let s = Strategy.of_buys ~n t.Torus_grid.buys in
  check_bool "not an LKE under full knowledge" false
    (Lke.is_lke_max ~alpha:2.0 ~k:1000 s)

(* --- Theorem 4.2: the torus, SumNCG ---------------------------------------- *)

let test_theorem_4_2_equilibrium () =
  (* d=2, ell=2, k=2, alpha >= 4k^3 = 32, delta_1 = ceil(k/2)+1 = 2. Views
     at k=2 have <= 13 vertices, so the exact exhaustive check is
     feasible. Checking every player of one orbit representative set
     (intersection vertex + both interior path positions) suffices by
     vertex-transitivity, but we check everyone for good measure on a
     small instance. *)
  let alpha = 33.0 and k = 2 in
  let t = Torus_grid.closed ~d:2 ~ell:2 ~deltas:[| 2; 5 |] in
  let n = Graph.order t.Torus_grid.graph in
  let s = Strategy.of_buys ~n t.Torus_grid.buys in
  check_bool "torus is a Sum-LKE" true (Lke.is_lke_sum_exact ~alpha ~k s)

let test_theorem_4_2_quality_gap () =
  let alpha = 33.0 in
  let t = Torus_grid.closed ~d:2 ~ell:2 ~deltas:[| 2; 5 |] in
  let n = Graph.order t.Torus_grid.graph in
  let s = Strategy.of_buys ~n t.Torus_grid.buys in
  match Game.quality Game.Sum ~alpha s with
  | Some quality -> check_bool "sum quality above 1" true (quality > 1.2)
  | None -> Alcotest.fail "connected"

(* --- Corollary 3.14 / Theorem 4.4 empirically ---------------------------------- *)

let test_corollary_3_14_empirical () =
  (* With alpha <= k-1 and k above the Corollary 3.14 threshold, every
     equilibrium the dynamics reaches has full-knowledge players.
     For n = 25, alpha = 2, the threshold min(n, (n a^2)^(1/3), ...) is
     (100)^(1/3) ≈ 4.6; pick k = 6. *)
  let n = 25 and alpha = 2.0 and k = 6 in
  List.iter
    (fun seed ->
      let s = Ncg.Experiment.initial_tree ~seed ~n in
      let cfg = Ncg.Dynamics.default_config ~alpha ~k in
      let r = Ncg.Dynamics.run cfg s in
      match r.Ncg.Dynamics.outcome with
      | Ncg.Dynamics.Converged _ ->
          let g = Strategy.graph r.Ncg.Dynamics.final in
          let views = Ncg.Features.view_sizes ~k g in
          check_int "every player sees everything"
            n (Ncg_util.Arrayx.min_elt views)
      | _ -> Alcotest.fail "should converge")
    [ 3; 17; 40 ]

let test_theorem_4_4_empirical () =
  (* SumNCG with k > 1 + 2 sqrt(alpha): equilibria reached by the dynamics
     have full views. alpha = 0.5 -> threshold ~2.41; k = 4 qualifies. *)
  let n = 14 and alpha = 0.5 and k = 4 in
  List.iter
    (fun seed ->
      let s = Ncg.Experiment.initial_tree ~seed ~n in
      let cfg =
        {
          (Ncg.Dynamics.default_config ~alpha ~k) with
          Ncg.Dynamics.variant = Game.Sum;
          sum_mode = `Branch_and_bound 34;
          max_rounds = 60;
        }
      in
      let r = Ncg.Dynamics.run cfg s in
      match r.Ncg.Dynamics.outcome with
      | Ncg.Dynamics.Converged _ ->
          let g = Strategy.graph r.Ncg.Dynamics.final in
          let views = Ncg.Features.view_sizes ~k g in
          check_int "full views at Sum equilibrium" n
            (Ncg_util.Arrayx.min_elt views)
      | _ -> Alcotest.fail "should converge")
    [ 5; 23 ]

(* --- Dynamics reach the theory ------------------------------------------------ *)

let test_dynamics_agree_with_theory () =
  (* Starting from the cycle at (alpha, k) where Lemma 3.1 says it's
     stable, the dynamics must terminate immediately without changes. *)
  let n = 12 and k = 3 in
  let s = Strategy.of_buys ~n (Ncg_gen.Classic.cycle_buys n) in
  let cfg = Ncg.Dynamics.default_config ~alpha:2.5 ~k in
  let r = Ncg.Dynamics.run cfg s in
  (match r.Ncg.Dynamics.outcome with
  | Ncg.Dynamics.Converged 1 -> ()
  | _ -> Alcotest.fail "cycle should already be stable");
  check_bool "unchanged" true (Strategy.equal s r.Ncg.Dynamics.final)

let () =
  Alcotest.run "integration"
    [
      ( "lemma_3_1",
        [
          Alcotest.test_case "cycle equilibrium and gap" `Quick test_lemma_3_1_full;
          Alcotest.test_case "various (n,k,alpha)" `Quick test_lemma_3_1_various_k;
        ] );
      ( "lemma_3_2",
        [ Alcotest.test_case "PG(2,3)" `Quick test_lemma_3_2_projective_plane ] );
      ( "theorem_3_12",
        [
          Alcotest.test_case "k=2 torus LKE + gap" `Quick test_theorem_3_12_equilibrium;
          Alcotest.test_case "k=4 torus via params" `Slow test_theorem_3_12_via_params;
          Alcotest.test_case "unstable at full knowledge" `Quick
            test_torus_not_equilibrium_when_k_large;
        ] );
      ( "theorem_4_2",
        [
          Alcotest.test_case "sum LKE" `Slow test_theorem_4_2_equilibrium;
          Alcotest.test_case "sum quality gap" `Quick test_theorem_4_2_quality_gap;
        ] );
      ( "full_knowledge_thresholds",
        [
          Alcotest.test_case "Corollary 3.14 empirically" `Quick
            test_corollary_3_14_empirical;
          Alcotest.test_case "Theorem 4.4 empirically" `Slow test_theorem_4_4_empirical;
        ] );
      ( "dynamics",
        [ Alcotest.test_case "cycle stays put" `Quick test_dynamics_agree_with_theory ] );
    ]
