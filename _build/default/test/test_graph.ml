(* Tests for the graph substrate. *)

module Graph = Ncg_graph.Graph
module Bfs = Ncg_graph.Bfs
module Metrics = Ncg_graph.Metrics
module Components = Ncg_graph.Components
module Girth = Ncg_graph.Girth
module Subgraph = Ncg_graph.Subgraph
module Power = Ncg_graph.Power
module Pretty = Ncg_graph.Pretty

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_int_list = Alcotest.(check (list int))
let check_opt_int = Alcotest.(check (option int))

let contains_substring haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let p5 = Graph.of_edges ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4) ]
let c6 = Graph.of_edges ~n:6 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0) ]

(* --- Graph construction -------------------------------------------------- *)

let test_of_edges_basic () =
  check_int "order" 5 (Graph.order p5);
  check_int "size" 4 (Graph.size p5);
  check_bool "edge" true (Graph.mem_edge p5 1 2);
  check_bool "symmetric" true (Graph.mem_edge p5 2 1);
  check_bool "non-edge" false (Graph.mem_edge p5 0 2);
  check_int "degree mid" 2 (Graph.degree p5 1);
  check_int "degree end" 1 (Graph.degree p5 0)

let test_duplicate_edges_collapse () =
  let g = Graph.of_edges ~n:3 [ (0, 1); (1, 0); (0, 1) ] in
  check_int "size" 1 (Graph.size g);
  check_int "degree" 1 (Graph.degree g 0)

let test_self_loop_rejected () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.of_edges: self loop")
    (fun () -> ignore (Graph.of_edges ~n:3 [ (1, 1) ]))

let test_out_of_range_rejected () =
  Alcotest.check_raises "range" (Invalid_argument "Graph: vertex out of range")
    (fun () -> ignore (Graph.of_edges ~n:3 [ (0, 3) ]))

let test_neighbors_sorted () =
  let g = Graph.of_edges ~n:5 [ (2, 4); (2, 0); (2, 3); (2, 1) ] in
  Alcotest.(check (array int)) "sorted" [| 0; 1; 3; 4 |] (Graph.neighbors g 2)

let test_edges_listing () =
  check_int_list "edges" [ 0; 1; 2; 3 ] (List.map fst (Graph.edges p5));
  check_int "edge count matches size" (Graph.size c6) (List.length (Graph.edges c6))

let test_add_remove () =
  let g = Graph.add_edges p5 [ (0, 4) ] in
  check_bool "added" true (Graph.mem_edge g 0 4);
  check_int "size" 5 (Graph.size g);
  let g' = Graph.remove_vertex_edges g 2 in
  check_int "vertex kept" 5 (Graph.order g');
  check_int "degree zero" 0 (Graph.degree g' 2);
  check_bool "other edges kept" true (Graph.mem_edge g' 0 1)

let test_graph_equal () =
  let a = Graph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let b = Graph.of_edges ~n:3 [ (1, 2); (0, 1) ] in
  check_bool "equal" true (Graph.equal a b);
  check_bool "not equal" false (Graph.equal a (Graph.of_edges ~n:3 [ (0, 1) ]))

(* --- BFS ------------------------------------------------------------------ *)

let test_bfs_distances_path () =
  Alcotest.(check (array int)) "path dists" [| 0; 1; 2; 3; 4 |] (Bfs.distances p5 0)

let test_bfs_distances_cycle () =
  Alcotest.(check (array int)) "cycle dists" [| 0; 1; 2; 3; 2; 1 |] (Bfs.distances c6 0)

let test_bfs_unreachable () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  let d = Bfs.distances g 0 in
  check_int "unreachable" Bfs.unreachable d.(2)

let test_bfs_radius_limited () =
  let d = Bfs.distances_within p5 0 ~radius:2 in
  check_int "inside" 2 d.(2);
  check_int "outside" Bfs.unreachable d.(3)

let test_ball () =
  check_int_list "ball r1" [ 0; 1; 5 ] (Bfs.ball c6 0 ~radius:1);
  check_int_list "ball r2" [ 0; 1; 2; 4; 5 ] (Bfs.ball c6 0 ~radius:2);
  check_int_list "ball r0" [ 3 ] (Bfs.ball c6 3 ~radius:0)

let test_eccentricity () =
  check_opt_int "path end" (Some 4) (Bfs.eccentricity p5 0);
  check_opt_int "path mid" (Some 2) (Bfs.eccentricity p5 2);
  check_opt_int "cycle" (Some 3) (Bfs.eccentricity c6 0);
  let g = Graph.of_edges ~n:3 [ (0, 1) ] in
  check_opt_int "disconnected" None (Bfs.eccentricity g 0)

let test_sum_distances () =
  check_opt_int "path end" (Some 10) (Bfs.sum_distances p5 0);
  check_opt_int "cycle" (Some 9) (Bfs.sum_distances c6 0)

let test_is_connected () =
  check_bool "path" true (Bfs.is_connected p5);
  check_bool "disconnected" false (Bfs.is_connected (Graph.of_edges ~n:3 [ (0, 1) ]));
  check_bool "empty graph" true (Bfs.is_connected (Graph.empty 0));
  check_bool "singleton" true (Bfs.is_connected (Graph.empty 1))

let test_shortest_path () =
  (match Bfs.shortest_path c6 0 3 with
  | Some p ->
      check_int "length" 4 (List.length p);
      check_int "starts" 0 (List.hd p);
      check_int "ends" 3 (List.nth p 3)
  | None -> Alcotest.fail "expected path");
  Alcotest.(check (option (list int)))
    "unreachable" None
    (Bfs.shortest_path (Graph.of_edges ~n:3 [ (0, 1) ]) 0 2);
  Alcotest.(check (option (list int))) "self" (Some [ 1 ]) (Bfs.shortest_path c6 1 1)

(* --- Metrics --------------------------------------------------------------- *)

let test_diameter_radius () =
  check_opt_int "path diameter" (Some 4) (Metrics.diameter p5);
  check_opt_int "path radius" (Some 2) (Metrics.radius p5);
  check_opt_int "cycle diameter" (Some 3) (Metrics.diameter c6);
  check_opt_int "cycle radius" (Some 3) (Metrics.radius c6);
  check_opt_int "disconnected" None (Metrics.diameter (Graph.empty 2));
  check_opt_int "empty" None (Metrics.diameter (Graph.empty 0))

let test_degree_stats () =
  check_int "max degree path" 2 (Metrics.max_degree p5);
  Alcotest.(check (float 1e-9)) "avg degree" (8.0 /. 5.0) (Metrics.avg_degree p5)

let test_total_distance () =
  check_opt_int "path P5" (Some 40) (Metrics.total_distance p5)

let test_distance_matrix () =
  let m = Metrics.distance_matrix c6 in
  check_int "symmetric" m.(1).(4) m.(4).(1);
  check_int "diag" 0 m.(3).(3)

(* --- Components ------------------------------------------------------------ *)

let test_components () =
  let g = Graph.of_edges ~n:6 [ (0, 1); (1, 2); (3, 4) ] in
  check_int "count" 3 (Components.count g);
  Alcotest.(check (list (list int)))
    "components" [ [ 0; 1; 2 ]; [ 3; 4 ]; [ 5 ] ] (Components.components g);
  check_bool "same" true (Components.same_component g 0 2);
  check_bool "different" false (Components.same_component g 0 3)

(* --- Girth ------------------------------------------------------------------ *)

let test_girth () =
  check_opt_int "tree: none" None (Girth.girth p5);
  check_opt_int "c6" (Some 6) (Girth.girth c6);
  check_opt_int "triangle" (Some 3)
    (Girth.girth (Graph.of_edges ~n:3 [ (0, 1); (1, 2); (2, 0) ]));
  check_opt_int "chorded C6" (Some 4) (Girth.girth (Graph.add_edges c6 [ (0, 3) ]));
  check_bool "at least: tree" true (Girth.girth_at_least p5 100);
  check_bool "at least 6 yes" true (Girth.girth_at_least c6 6);
  check_bool "at least 7 no" false (Girth.girth_at_least c6 7)

let test_girth_petersen () =
  (* The Petersen graph: girth 5, diameter 2. *)
  let outer = List.init 5 (fun i -> (i, (i + 1) mod 5)) in
  let spokes = List.init 5 (fun i -> (i, i + 5)) in
  let inner = List.init 5 (fun i -> (5 + i, 5 + ((i + 2) mod 5))) in
  let petersen = Graph.of_edges ~n:10 (outer @ spokes @ inner) in
  check_opt_int "petersen girth" (Some 5) (Girth.girth petersen);
  check_opt_int "petersen diameter" (Some 2) (Metrics.diameter petersen)

(* --- Subgraph ----------------------------------------------------------------- *)

let test_induced () =
  let sub, m = Subgraph.induced c6 [ 4; 0; 5; 0 ] in
  check_int "order" 3 (Graph.order sub);
  check_int "size" 2 (Graph.size sub);
  Alcotest.(check (array int)) "to_host" [| 0; 4; 5 |] m.Subgraph.to_host;
  check_int "to_sub" 2 m.Subgraph.to_sub.(5);
  check_int "absent" (-1) m.Subgraph.to_sub.(2);
  check_bool "edge kept" true
    (Graph.mem_edge sub m.Subgraph.to_sub.(4) m.Subgraph.to_sub.(5))

let test_ball_induced () =
  let sub, m = Subgraph.ball_induced p5 2 ~radius:1 in
  check_int "order" 3 (Graph.order sub);
  check_int "center" 1 m.Subgraph.to_sub.(2);
  check_int "size" 2 (Graph.size sub)

(* --- Power ------------------------------------------------------------------- *)

let test_power () =
  let sq = Power.power p5 2 in
  check_bool "dist2 edge" true (Graph.mem_edge sq 0 2);
  check_bool "dist3 no edge" false (Graph.mem_edge sq 0 3);
  check_bool "keeps dist1" true (Graph.mem_edge sq 0 1);
  let p1 = Power.power p5 1 in
  check_bool "power 1 = id" true (Graph.equal p1 p5);
  let p0 = Power.power p5 0 in
  check_int "power 0 empty" 0 (Graph.size p0);
  let big = Power.power p5 10 in
  check_int "saturates to complete" (5 * 4 / 2) (Graph.size big)

let test_ball_sets () =
  let sets = Power.ball_sets p5 1 in
  Alcotest.(check (list int)) "ball of 2" [ 1; 2; 3 ] (Ncg_util.Bitset.to_list sets.(2));
  let sets0 = Power.ball_sets p5 0 in
  Alcotest.(check (list int)) "radius 0" [ 2 ] (Ncg_util.Bitset.to_list sets0.(2))

(* --- Pretty -------------------------------------------------------------------- *)

let test_pretty_roundtrip () =
  let s = Pretty.to_edge_list_string c6 in
  let g = Pretty.of_edge_list_string ~n:6 s in
  check_bool "roundtrip" true (Graph.equal g c6)

let test_dot_contains_edges () =
  let dot = Pretty.to_dot p5 in
  check_bool "has edge 0 -- 1" true (contains_substring dot "0 -- 1");
  check_bool "has closing brace" true (contains_substring dot "}")

let test_adjacency_string () =
  let s = Pretty.to_adjacency_string (Graph.of_edges ~n:2 [ (0, 1) ]) in
  Alcotest.(check string) "dump" "0: 1\n1: 0\n" s

(* --- Properties ------------------------------------------------------------------ *)

let random_graph_gen =
  QCheck.Gen.(
    int_range 2 30 >>= fun n ->
    int_range 0 (n * 2) >>= fun extra ->
    list_repeat (n - 1) (int_bound 1000) >>= fun tree_choices ->
    list_repeat extra (pair (int_bound (n - 1)) (int_bound (n - 1))) >>= fun pairs ->
    let tree_edges = List.mapi (fun i c -> (i + 1, c mod (i + 1))) tree_choices in
    let extra_edges = List.filter (fun (a, b) -> a <> b) pairs in
    return (Ncg_graph.Graph.of_edges ~n (tree_edges @ extra_edges)))

let arb_graph = QCheck.make ~print:Pretty.to_adjacency_string random_graph_gen

let prop_bfs_triangle_inequality =
  QCheck.Test.make ~name:"BFS distances satisfy the triangle inequality" ~count:50
    arb_graph (fun g ->
      let n = Graph.order g in
      let d = Metrics.distance_matrix g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          for w = 0 to n - 1 do
            if d.(u).(v) > d.(u).(w) + d.(w).(v) then ok := false
          done
        done
      done;
      !ok)

let prop_bfs_edge_consistency =
  QCheck.Test.make ~name:"adjacent vertices have distance 1" ~count:100 arb_graph
    (fun g ->
      let ok = ref true in
      Graph.iter_edges
        (fun u v ->
          let d = Bfs.distances g u in
          if d.(v) <> 1 then ok := false)
        g;
      !ok)

let prop_diameter_vs_eccentricity =
  QCheck.Test.make ~name:"diameter = max ecc, radius = min ecc, r<=d<=2r" ~count:100
    arb_graph (fun g ->
      match (Metrics.diameter g, Metrics.radius g, Metrics.eccentricities g) with
      | Some d, Some r, Some eccs ->
          d = Array.fold_left max 0 eccs
          && r = Array.fold_left min max_int eccs
          && r <= d
          && d <= 2 * r
      | _ -> false)

let prop_power_monotone =
  QCheck.Test.make ~name:"graph powers are monotone in h" ~count:50 arb_graph
    (fun g ->
      let p2 = Power.power g 2 and p3 = Power.power g 3 in
      let ok = ref true in
      Graph.iter_edges (fun u v -> if not (Graph.mem_edge p3 u v) then ok := false) p2;
      !ok)

let prop_handshake =
  QCheck.Test.make ~name:"sum of degrees = 2m" ~count:100 arb_graph (fun g ->
      let sum = Graph.fold_vertices (fun u acc -> acc + Graph.degree g u) g 0 in
      sum = 2 * Graph.size g)

let prop_ball_sets_match_power =
  QCheck.Test.make ~name:"ball_sets agree with the power graph" ~count:50 arb_graph
    (fun g ->
      let h = 2 in
      let sets = Power.ball_sets g h in
      let pw = Power.power g h in
      let ok = ref true in
      for u = 0 to Graph.order g - 1 do
        for v = 0 to Graph.order g - 1 do
          let in_set = Ncg_util.Bitset.mem sets.(u) v in
          let expected = u = v || Graph.mem_edge pw u v in
          if in_set <> expected then ok := false
        done
      done;
      !ok)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "ncg_graph"
    [
      ( "construction",
        [
          Alcotest.test_case "of_edges" `Quick test_of_edges_basic;
          Alcotest.test_case "duplicates collapse" `Quick test_duplicate_edges_collapse;
          Alcotest.test_case "self loop rejected" `Quick test_self_loop_rejected;
          Alcotest.test_case "range checked" `Quick test_out_of_range_rejected;
          Alcotest.test_case "neighbors sorted" `Quick test_neighbors_sorted;
          Alcotest.test_case "edges listing" `Quick test_edges_listing;
          Alcotest.test_case "add/remove" `Quick test_add_remove;
          Alcotest.test_case "equal" `Quick test_graph_equal;
        ] );
      ( "bfs",
        [
          Alcotest.test_case "path distances" `Quick test_bfs_distances_path;
          Alcotest.test_case "cycle distances" `Quick test_bfs_distances_cycle;
          Alcotest.test_case "unreachable" `Quick test_bfs_unreachable;
          Alcotest.test_case "radius limited" `Quick test_bfs_radius_limited;
          Alcotest.test_case "ball" `Quick test_ball;
          Alcotest.test_case "eccentricity" `Quick test_eccentricity;
          Alcotest.test_case "sum distances" `Quick test_sum_distances;
          Alcotest.test_case "connectivity" `Quick test_is_connected;
          Alcotest.test_case "shortest path" `Quick test_shortest_path;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "diameter/radius" `Quick test_diameter_radius;
          Alcotest.test_case "degrees" `Quick test_degree_stats;
          Alcotest.test_case "total distance" `Quick test_total_distance;
          Alcotest.test_case "distance matrix" `Quick test_distance_matrix;
        ] );
      ("components", [ Alcotest.test_case "labels/count" `Quick test_components ]);
      ( "girth",
        [
          Alcotest.test_case "small cases" `Quick test_girth;
          Alcotest.test_case "petersen" `Quick test_girth_petersen;
        ] );
      ( "subgraph",
        [
          Alcotest.test_case "induced" `Quick test_induced;
          Alcotest.test_case "ball induced" `Quick test_ball_induced;
        ] );
      ( "power",
        [
          Alcotest.test_case "powers" `Quick test_power;
          Alcotest.test_case "ball sets" `Quick test_ball_sets;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "edge list roundtrip" `Quick test_pretty_roundtrip;
          Alcotest.test_case "dot output" `Quick test_dot_contains_edges;
          Alcotest.test_case "adjacency dump" `Quick test_adjacency_string;
        ] );
      ( "properties",
        [
          qt prop_bfs_triangle_inequality;
          qt prop_bfs_edge_consistency;
          qt prop_diameter_vs_eccentricity;
          qt prop_power_monotone;
          qt prop_handshake;
          qt prop_ball_sets_match_power;
        ] );
    ]
