(* Tests for the k-neighbourhood view machinery. *)

module Graph = Ncg_graph.Graph
module Strategy = Ncg.Strategy
module View = Ncg.View
module Rng = Ncg_prng.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_int_list = Alcotest.(check (list int))

(* Path 0-1-2-3-4, i buys the edge to i+1. *)
let path5 = Strategy.of_buys ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4) ]
let path5_g = Strategy.graph path5

(* Cycle on 6, i buys edge to i+1 mod 6. *)
let cyc6 = Strategy.of_buys ~n:6 (Ncg_gen.Classic.cycle_buys 6)
let cyc6_g = Strategy.graph cyc6

let test_extract_center () =
  let v = View.extract path5 path5_g ~k:1 2 in
  check_int "size" 3 (View.size v);
  (* Ball {1,2,3} renames to {0,1,2}; player 2 becomes 1. *)
  check_int "player id" 1 v.View.player;
  check_int_list "owned" [ 2 ] v.View.owned;
  check_int_list "in_buyers" [ 0 ] v.View.in_buyers;
  check_int "k" 1 v.View.k

let test_extract_distances () =
  let v = View.extract cyc6 cyc6_g ~k:2 0 in
  check_int "size" 5 (View.size v);
  (* View vertices {0,1,2,4,5}: distances from 0 are 0,1,2,2,1. *)
  Alcotest.(check (array int)) "dist" [| 0; 1; 2; 2; 1 |] v.View.dist

let test_full_knowledge_view () =
  let v = View.extract path5 path5_g ~k:100 2 in
  check_int "whole graph" 5 (View.size v);
  check_bool "graph equal" true (Graph.equal v.View.graph path5_g)

let test_frontier () =
  let v = View.extract cyc6 cyc6_g ~k:2 0 in
  (* Frontier = distance exactly 2 = view ids of {2, 4}. *)
  let hosts = View.to_host v (View.frontier v) in
  check_int_list "frontier hosts" [ 2; 4 ] (List.sort compare hosts)

let test_to_of_host_roundtrip () =
  let v = View.extract cyc6 cyc6_g ~k:2 0 in
  let ids = View.of_host v [ 4; 5 ] in
  check_int_list "roundtrip" [ 4; 5 ] (View.to_host v ids);
  Alcotest.check_raises "invisible" (Invalid_argument "View.of_host: vertex not visible")
    (fun () -> ignore (View.of_host v [ 3 ]))

let test_with_strategy_replaces_owned () =
  let v = View.extract path5 path5_g ~k:2 2 in
  (* Player 2 owns edge to 3. Replace with nothing: 3 loses the link to 2
     but keeps 3-4; 1-2 survives (bought by 1). *)
  let h' = View.with_strategy v [] in
  let p = v.View.player in
  let three = List.hd (View.of_host v [ 3 ]) in
  let one = List.hd (View.of_host v [ 1 ]) in
  check_bool "2-3 gone" false (Graph.mem_edge h' p three);
  check_bool "1-2 kept (in-buyer)" true (Graph.mem_edge h' p one);
  (* Replace with an edge to 4. *)
  let four = List.hd (View.of_host v [ 4 ]) in
  let h2 = View.with_strategy v [ four ] in
  check_bool "2-4 added" true (Graph.mem_edge h2 p four)

let test_with_strategy_keeps_double_bought () =
  (* Edge bought from both sides must survive dropping one side. *)
  let s = Strategy.of_buys ~n:2 [ (0, 1); (1, 0) ] in
  let g = Strategy.graph s in
  let v = View.extract s g ~k:1 0 in
  let h' = View.with_strategy v [] in
  check_int "edge survives" 1 (Graph.size h')

let test_with_strategy_validation () =
  let v = View.extract path5 path5_g ~k:1 2 in
  Alcotest.check_raises "self" (Invalid_argument "View.with_strategy: self target")
    (fun () -> ignore (View.with_strategy v [ v.View.player ]));
  Alcotest.check_raises "range"
    (Invalid_argument "View.with_strategy: target out of range") (fun () ->
      ignore (View.with_strategy v [ 99 ]))

let test_k_validation () =
  Alcotest.check_raises "k=0" (Invalid_argument "View.extract: need k >= 1")
    (fun () -> ignore (View.extract path5 path5_g ~k:0 0))

let test_view_includes_cross_edges () =
  (* The view is the INDUCED subgraph: edges between two visible
     neighbours are visible even if neither endpoint is the player. *)
  let s = Strategy.of_buys ~n:4 [ (0, 1); (0, 2); (1, 2); (2, 3) ] in
  let g = Strategy.graph s in
  let v = View.extract s g ~k:1 0 in
  check_int "sees 0,1,2" 3 (View.size v);
  let one = List.hd (View.of_host v [ 1 ]) in
  let two = List.hd (View.of_host v [ 2 ]) in
  check_bool "cross edge 1-2 visible" true (Graph.mem_edge v.View.graph one two)

let test_frontier_empty_full_knowledge () =
  let v = View.extract path5 path5_g ~k:100 2 in
  Alcotest.(check (list int)) "no frontier" [] (View.frontier v)

(* Properties over random trees. *)

let random_setup seed n =
  let rng = Rng.create seed in
  let g = Ncg_gen.Random_tree.generate rng n in
  let s = Strategy.random_orientation rng g in
  (s, Strategy.graph s)

let prop_view_size_matches_ball =
  QCheck.Test.make ~name:"view size = ball size" ~count:100
    QCheck.(triple (int_range 2 30) (int_range 1 5) (int_range 0 1000))
    (fun (n, k, seed) ->
      let s, g = random_setup seed n in
      let u = seed mod n in
      let v = View.extract s g ~k u in
      View.size v = List.length (Ncg_graph.Bfs.ball g u ~radius:k))

let prop_view_distances_match_host =
  QCheck.Test.make ~name:"view preserves distances up to k" ~count:100
    QCheck.(triple (int_range 2 30) (int_range 1 4) (int_range 0 1000))
    (fun (n, k, seed) ->
      let s, g = random_setup seed n in
      let u = seed mod n in
      let v = View.extract s g ~k u in
      let host_dist = Ncg_graph.Bfs.distances g u in
      let ok = ref true in
      Array.iteri
        (fun i h ->
          (* Distances within the induced ball can only match the host
             distance for vertices at distance <= k (shortest paths of
             length <= k stay inside the ball on trees AND in general
             graphs they stay within the ball of radius k). *)
          if v.View.dist.(i) <> host_dist.(h) then ok := false)
        v.View.mapping.Ncg_graph.Subgraph.to_host;
      !ok)

let prop_owned_always_visible =
  QCheck.Test.make ~name:"owned targets and in-buyers are always in view" ~count:100
    QCheck.(triple (int_range 2 30) (int_range 1 4) (int_range 0 1000))
    (fun (n, k, seed) ->
      let s, g = random_setup seed n in
      let u = seed mod n in
      let v = View.extract s g ~k u in
      List.length v.View.owned = List.length (Strategy.owned s u)
      && List.length v.View.in_buyers = List.length (Strategy.in_buyers s u)
      && List.for_all (fun x -> v.View.dist.(x) = 1) v.View.owned)

let () =
  Alcotest.run "ncg_view"
    [
      ( "extract",
        [
          Alcotest.test_case "center of path" `Quick test_extract_center;
          Alcotest.test_case "distances" `Quick test_extract_distances;
          Alcotest.test_case "full knowledge" `Quick test_full_knowledge_view;
          Alcotest.test_case "frontier" `Quick test_frontier;
          Alcotest.test_case "host mapping" `Quick test_to_of_host_roundtrip;
          Alcotest.test_case "k validated" `Quick test_k_validation;
          Alcotest.test_case "cross edges included" `Quick test_view_includes_cross_edges;
          Alcotest.test_case "empty frontier" `Quick test_frontier_empty_full_knowledge;
        ] );
      ( "with_strategy",
        [
          Alcotest.test_case "replaces owned" `Quick test_with_strategy_replaces_owned;
          Alcotest.test_case "keeps double-bought" `Quick test_with_strategy_keeps_double_bought;
          Alcotest.test_case "validation" `Quick test_with_strategy_validation;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_view_size_matches_ball;
          QCheck_alcotest.to_alcotest prop_view_distances_match_host;
          QCheck_alcotest.to_alcotest prop_owned_always_visible;
        ] );
    ]
