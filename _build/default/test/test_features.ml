(* Tests for the per-round feature collection. *)

module Graph = Ncg_graph.Graph
module Strategy = Ncg.Strategy
module Features = Ncg.Features
module Game = Ncg.Game

let check_int = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-9)) msg

let star n = Strategy.of_buys ~n (Ncg_gen.Classic.star_buys n)

let test_collect_star () =
  let n = 6 in
  let s = star n in
  let g = Strategy.graph s in
  let f = Features.collect Game.Max ~alpha:2.0 ~k:2 ~round:3 ~changes:1 s g in
  check_int "round" 3 f.Features.round;
  check_int "changes" 1 f.Features.changes;
  check_int "diameter" 2 f.Features.diameter;
  check_int "max degree" (n - 1) f.Features.max_degree;
  checkf "avg degree" (2.0 *. float_of_int (n - 1) /. float_of_int n) f.Features.avg_degree;
  check_int "min bought" 0 f.Features.min_bought;
  check_int "max bought" (n - 1) f.Features.max_bought;
  checkf "avg bought" (float_of_int (n - 1) /. float_of_int n) f.Features.avg_bought;
  (* k = 2 >= diameter: everyone sees everything. *)
  check_int "min view" n f.Features.min_view;
  check_int "max view" n f.Features.max_view;
  checkf "avg view" (float_of_int n) f.Features.avg_view;
  (* Social cost: building 2*(n-1)*... alpha=2: 2*5 + usage (1 + 2*5). *)
  checkf "social cost" (10.0 +. 11.0) f.Features.social_cost

let test_collect_path_views () =
  (* Path 0-1-2-3-4 with k=1: end vertices see 2, interior see 3. *)
  let s = Strategy.of_buys ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  let g = Strategy.graph s in
  let f = Features.collect Game.Max ~alpha:1.0 ~k:1 ~round:1 ~changes:0 s g in
  check_int "min view" 2 f.Features.min_view;
  check_int "max view" 3 f.Features.max_view;
  checkf "avg view" ((2.0 +. 3.0 +. 3.0 +. 3.0 +. 2.0) /. 5.0) f.Features.avg_view;
  check_int "diameter" 4 f.Features.diameter

let test_disconnected_markers () =
  let s = Strategy.of_buys ~n:4 [ (0, 1); (2, 3) ] in
  let g = Strategy.graph s in
  let f = Features.collect Game.Sum ~alpha:1.0 ~k:2 ~round:1 ~changes:0 s g in
  check_int "diameter marker" (-1) f.Features.diameter;
  Alcotest.(check bool) "nan social cost" true (Float.is_nan f.Features.social_cost)

let test_view_sizes () =
  let g = Ncg_gen.Classic.cycle 8 in
  let sizes = Features.view_sizes ~k:2 g in
  Array.iter (fun s -> check_int "cycle view" 5 s) sizes

let test_csv_roundtrip_fields () =
  let s = star 5 in
  let g = Strategy.graph s in
  let f = Features.collect Game.Max ~alpha:1.0 ~k:2 ~round:2 ~changes:3 s g in
  let row = Features.to_csv_row f in
  let fields = String.split_on_char ',' row in
  check_int "field count"
    (List.length (String.split_on_char ',' Features.csv_header))
    (List.length fields);
  Alcotest.(check string) "round field" "2" (List.nth fields 0);
  Alcotest.(check string) "changes field" "3" (List.nth fields 1)

let prop_feature_invariants =
  QCheck.Test.make ~name:"feature invariants on random configurations" ~count:100
    QCheck.(triple (int_range 2 25) (int_range 1 4) (int_range 0 10_000))
    (fun (n, k, seed) ->
      let rng = Ncg_prng.Rng.create seed in
      let g = Ncg_gen.Random_tree.generate rng n in
      let s = Strategy.random_orientation rng g in
      let f = Features.collect Game.Max ~alpha:1.0 ~k ~round:1 ~changes:0 s
          (Strategy.graph s)
      in
      f.Features.min_bought <= f.Features.max_bought
      && f.Features.avg_bought >= float_of_int f.Features.min_bought
      && f.Features.avg_bought <= float_of_int f.Features.max_bought
      && f.Features.min_view >= 1
      && f.Features.max_view <= n
      && f.Features.avg_view >= float_of_int f.Features.min_view
      && f.Features.avg_view <= float_of_int f.Features.max_view
      && f.Features.diameter >= 0
      && f.Features.max_degree >= 1)

let () =
  Alcotest.run "features"
    [
      ( "collect",
        [
          Alcotest.test_case "star" `Quick test_collect_star;
          Alcotest.test_case "path views" `Quick test_collect_path_views;
          Alcotest.test_case "disconnected" `Quick test_disconnected_markers;
          Alcotest.test_case "view sizes" `Quick test_view_sizes;
          Alcotest.test_case "csv fields" `Quick test_csv_roundtrip_fields;
          QCheck_alcotest.to_alcotest prop_feature_invariants;
        ] );
    ]
