(* Tests for the Jackson–Wolinsky pairwise-stability baseline. *)

module Graph = Ncg_graph.Graph
module Pairwise = Ncg.Pairwise
module Classic = Ncg_gen.Classic
module Rng = Ncg_prng.Rng

let check_bool = Alcotest.(check bool)
let checkf msg = Alcotest.(check (float 1e-9)) msg

let uniform alpha = Pairwise.uniform_costs ~alpha

let test_player_cost () =
  (* Path 0-1-2, uniform alpha = 2: player 1 pays 2 activations + 2. *)
  let g = Classic.path 3 in
  Alcotest.(check (option (float 1e-9)))
    "middle" (Some 6.0)
    (Pairwise.player_cost (uniform 2.0) g 1);
  Alcotest.(check (option (float 1e-9)))
    "end" (Some 5.0)
    (Pairwise.player_cost (uniform 2.0) g 0);
  Alcotest.(check (option (float 1e-9)))
    "disconnected" None
    (Pairwise.player_cost (uniform 2.0) (Graph.empty 2) 0)

let test_asymmetric_costs () =
  let costs = { Pairwise.activation = (fun i j -> float_of_int ((10 * i) + j)) } in
  let g = Classic.path 3 in
  (* Player 0 pays activation 0->1 = 1, distances 1+2. *)
  Alcotest.(check (option (float 1e-9)))
    "asymmetric" (Some 4.0)
    (Pairwise.player_cost costs g 0)

let test_star_stability_known_threshold () =
  (* Jackson–Wolinsky: with c_ij = alpha, the star is pairwise stable for
     1 <= alpha (no leaf pair wants to link: linking costs alpha and
     saves exactly 1 unit of distance; the center never cuts for
     alpha <= ... cutting disconnects: never). Below alpha = 1 leaves
     want to link. *)
  let g = Classic.star 6 in
  check_bool "stable at alpha=1.5" true (Pairwise.is_pairwise_stable (uniform 1.5) g);
  check_bool "unstable at alpha=0.5" false (Pairwise.is_pairwise_stable (uniform 0.5) g)

let test_complete_stability () =
  (* The clique is pairwise stable iff no one wants to cut an edge:
     cutting saves alpha and adds 1 to the distance -> cut iff alpha > 1. *)
  let g = Classic.complete 5 in
  check_bool "stable at alpha=0.5" true (Pairwise.is_pairwise_stable (uniform 0.5) g);
  check_bool "unstable at alpha=2" false (Pairwise.is_pairwise_stable (uniform 2.0) g)

let test_instability_kinds () =
  let g = Classic.complete 4 in
  let viols = Pairwise.instabilities (uniform 5.0) g in
  check_bool "cut violations" true
    (List.exists (function Pairwise.Wants_to_cut _ -> true | _ -> false) viols);
  let star = Classic.star 5 in
  let viols = Pairwise.instabilities (uniform 0.2) star in
  check_bool "link violations" true
    (List.exists (function Pairwise.Wants_to_link _ -> true | _ -> false) viols)

let test_cut_never_disconnects () =
  (* Bridges are never cut (infinite cost): the path at huge alpha still
     reports no cuts. *)
  let g = Classic.path 5 in
  let viols = Pairwise.instabilities (uniform 100.0) g in
  check_bool "no cut of a bridge" true
    (List.for_all (function Pairwise.Wants_to_cut _ -> false | _ -> true) viols)

let test_improve_reaches_stability () =
  let g = Classic.path 6 in
  let final, steps = Pairwise.improve (uniform 1.5) g in
  check_bool "stable" true (Pairwise.is_pairwise_stable (uniform 1.5) final);
  check_bool "took steps" true (steps > 0);
  check_bool "connected" true (Ncg_graph.Bfs.is_connected final)

let test_social_cost () =
  let g = Classic.path 3 in
  (* Activations: 4 endpoint-payments x alpha=1 -> 4; distances 2+3+3=8. *)
  match Pairwise.social_cost (uniform 1.0) g with
  | Some c -> checkf "social" 12.0 c
  | None -> Alcotest.fail "connected"

let prop_improve_converges_on_trees =
  QCheck.Test.make ~name:"pairwise improvement converges on random trees" ~count:20
    QCheck.(triple (int_range 3 12) (int_range 0 10_000) (float_range 0.5 3.0))
    (fun (n, seed, alpha) ->
      let rng = Rng.create seed in
      let g = Ncg_gen.Random_tree.generate rng n in
      let final, steps = Pairwise.improve ~max_steps:500 (uniform alpha) g in
      steps < 500 && Pairwise.is_pairwise_stable (uniform alpha) final)

let prop_stable_networks_connected =
  QCheck.Test.make ~name:"improvement preserves connectivity" ~count:20
    QCheck.(triple (int_range 3 10) (int_range 0 10_000) (float_range 0.5 3.0))
    (fun (n, seed, alpha) ->
      let rng = Rng.create seed in
      let g = Ncg_gen.Random_tree.generate rng n in
      let final, _ = Pairwise.improve ~max_steps:500 (uniform alpha) g in
      Ncg_graph.Bfs.is_connected final)

let () =
  Alcotest.run "pairwise"
    [
      ( "costs",
        [
          Alcotest.test_case "player cost" `Quick test_player_cost;
          Alcotest.test_case "asymmetric" `Quick test_asymmetric_costs;
          Alcotest.test_case "social cost" `Quick test_social_cost;
        ] );
      ( "stability",
        [
          Alcotest.test_case "star threshold" `Quick test_star_stability_known_threshold;
          Alcotest.test_case "clique threshold" `Quick test_complete_stability;
          Alcotest.test_case "violation kinds" `Quick test_instability_kinds;
          Alcotest.test_case "bridges never cut" `Quick test_cut_never_disconnects;
        ] );
      ( "dynamics",
        [
          Alcotest.test_case "improve to stability" `Quick test_improve_reaches_stability;
          QCheck_alcotest.to_alcotest prop_improve_converges_on_trees;
          QCheck_alcotest.to_alcotest prop_stable_networks_connected;
        ] );
    ]
