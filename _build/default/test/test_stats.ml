(* Tests for Ncg_stats. *)

module D = Ncg_stats.Descriptive
module Welford = Ncg_stats.Welford
module Student_t = Ncg_stats.Student_t
module Summary = Ncg_stats.Summary

let checkf msg = Alcotest.(check (float 1e-9)) msg
let checkf_loose msg = Alcotest.(check (float 1e-6)) msg

let test_mean_variance () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  checkf "mean" 5.0 (D.mean xs);
  (* Sample variance of this classic dataset: 32/7. *)
  checkf_loose "variance" (32.0 /. 7.0) (D.variance xs);
  checkf_loose "std_dev" (sqrt (32.0 /. 7.0)) (D.std_dev xs)

let test_singleton () =
  checkf "mean" 3.0 (D.mean [| 3.0 |]);
  checkf "variance 0" 0.0 (D.variance [| 3.0 |])

let test_min_max_median () =
  let xs = [| 5.0; 1.0; 9.0; 3.0 |] in
  checkf "min" 1.0 (D.min xs);
  checkf "max" 9.0 (D.max xs);
  checkf "median even" 4.0 (D.median xs);
  checkf "median odd" 3.0 (D.median [| 9.0; 1.0; 3.0 |])

let test_quantile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  checkf "q0" 1.0 (D.quantile 0.0 xs);
  checkf "q1" 4.0 (D.quantile 1.0 xs);
  checkf "q0.5 interpolates" 2.5 (D.quantile 0.5 xs);
  Alcotest.check_raises "bad q"
    (Invalid_argument "Descriptive.quantile: q outside [0,1]") (fun () ->
      ignore (D.quantile 1.5 xs))

let test_input_not_mutated () =
  let xs = [| 3.0; 1.0; 2.0 |] in
  ignore (D.median xs);
  Alcotest.(check (array (float 0.0))) "untouched" [| 3.0; 1.0; 2.0 |] xs

let test_empty_raises () =
  Alcotest.check_raises "mean empty" (Invalid_argument "Descriptive.mean: empty")
    (fun () -> ignore (D.mean [||]))

let test_welford_matches_batch () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  let w = Welford.create () in
  Array.iter (Welford.add w) xs;
  Alcotest.(check int) "count" 8 (Welford.count w);
  checkf_loose "mean" (D.mean xs) (Welford.mean w);
  checkf_loose "variance" (D.variance xs) (Welford.variance w);
  checkf "min" 2.0 (Welford.min w);
  checkf "max" 9.0 (Welford.max w)

let test_welford_merge () =
  let xs = Array.init 10 float_of_int in
  let ys = Array.init 7 (fun i -> float_of_int (i * i)) in
  let wa = Welford.create () and wb = Welford.create () in
  Array.iter (Welford.add wa) xs;
  Array.iter (Welford.add wb) ys;
  let merged = Welford.merge wa wb in
  let all = Array.append xs ys in
  checkf_loose "merged mean" (D.mean all) (Welford.mean merged);
  checkf_loose "merged variance" (D.variance all) (Welford.variance merged);
  Alcotest.(check int) "merged count" 17 (Welford.count merged)

let test_welford_merge_empty () =
  let w = Welford.create () in
  Welford.add w 5.0;
  let m = Welford.merge (Welford.create ()) w in
  checkf "merge with empty" 5.0 (Welford.mean m)

let welford_prop =
  QCheck.Test.make ~name:"welford matches two-pass on random data" ~count:100
    QCheck.(list_of_size (Gen.int_range 2 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let arr = Array.of_list xs in
      let w = Welford.create () in
      Array.iter (Welford.add w) arr;
      abs_float (Welford.mean w -. D.mean arr) < 1e-6
      && abs_float (Welford.variance w -. D.variance arr) < 1e-4)

let test_student_t_values () =
  (* Standard table values. *)
  checkf_loose "df=1" 12.706 (Student_t.critical_95 1);
  checkf_loose "df=19 (20 trials)" 2.093 (Student_t.critical_95 19);
  checkf_loose "df=30" 2.042 (Student_t.critical_95 30);
  let t100 = Student_t.critical_95 100 in
  Alcotest.(check bool) "df=100 near z" true (abs_float (t100 -. 1.984) < 0.01);
  checkf_loose "99% df=19" 2.861 (Student_t.critical_99 19)

let test_student_t_monotone () =
  let rec go df =
    if df >= 60 then ()
    else begin
      Alcotest.(check bool)
        (Printf.sprintf "t(%d) >= t(%d)" df (df + 1))
        true
        (Student_t.critical_95 df >= Student_t.critical_95 (df + 1) -. 1e-9);
      go (df + 1)
    end
  in
  go 1;
  Alcotest.check_raises "df=0" (Invalid_argument "Student_t: df must be >= 1")
    (fun () -> ignore (Student_t.critical_95 0))

let test_summary () =
  let s = Summary.of_ints [| 1; 2; 3; 4; 5 |] in
  Alcotest.(check int) "n" 5 s.Summary.n;
  checkf "mean" 3.0 s.Summary.mean;
  checkf "min" 1.0 s.Summary.min;
  checkf "max" 5.0 s.Summary.max;
  (* CI = t(4) * sd/sqrt(5) = 2.776 * sqrt(2.5)/sqrt(5) *)
  checkf_loose "ci95" (2.776 *. sqrt 2.5 /. sqrt 5.0) s.Summary.ci95;
  Alcotest.(check string) "to_string" "3.00 ± 1.96" (Summary.to_string s)

let test_summary_singleton () =
  let s = Summary.of_floats [| 7.0 |] in
  checkf "ci 0" 0.0 s.Summary.ci95;
  checkf "mean" 7.0 s.Summary.mean

let () =
  Alcotest.run "ncg_stats"
    [
      ( "descriptive",
        [
          Alcotest.test_case "mean/variance" `Quick test_mean_variance;
          Alcotest.test_case "singleton" `Quick test_singleton;
          Alcotest.test_case "min/max/median" `Quick test_min_max_median;
          Alcotest.test_case "quantile" `Quick test_quantile;
          Alcotest.test_case "input not mutated" `Quick test_input_not_mutated;
          Alcotest.test_case "empty raises" `Quick test_empty_raises;
        ] );
      ( "welford",
        [
          Alcotest.test_case "matches batch" `Quick test_welford_matches_batch;
          Alcotest.test_case "merge" `Quick test_welford_merge;
          Alcotest.test_case "merge empty" `Quick test_welford_merge_empty;
          QCheck_alcotest.to_alcotest welford_prop;
        ] );
      ( "student_t",
        [
          Alcotest.test_case "table values" `Quick test_student_t_values;
          Alcotest.test_case "monotone in df" `Quick test_student_t_monotone;
        ] );
      ( "summary",
        [
          Alcotest.test_case "of_ints" `Quick test_summary;
          Alcotest.test_case "singleton" `Quick test_summary_singleton;
        ] );
    ]
