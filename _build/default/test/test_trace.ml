(* Tests for move traces and their replay invariant. *)

module Strategy = Ncg.Strategy
module Trace = Ncg.Trace
module Dynamics = Ncg.Dynamics
module Rng = Ncg_prng.Rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_empty_replay () =
  let s = Strategy.of_buys ~n:3 [ (0, 1); (1, 2) ] in
  let t = Trace.empty 3 in
  check_bool "identity" true (Strategy.equal s (Trace.replay s t));
  check_int "length" 0 (Trace.length t)

let test_manual_replay () =
  let s = Strategy.of_buys ~n:3 [ (0, 1); (1, 2) ] in
  let t =
    {
      Trace.n = 3;
      moves =
        [
          { Trace.round = 1; player = 0; before = [ 1 ]; after = [ 2 ] };
          { Trace.round = 1; player = 1; before = [ 2 ]; after = [ 0; 2 ] };
        ];
    }
  in
  let final = Trace.replay s t in
  Alcotest.(check (list int)) "player 0" [ 2 ] (Strategy.owned final 0);
  Alcotest.(check (list int)) "player 1" [ 0; 2 ] (Strategy.owned final 1)

let test_replay_rejects_mismatch () =
  let s = Strategy.of_buys ~n:3 [ (0, 1); (1, 2) ] in
  let bad =
    {
      Trace.n = 3;
      moves = [ { Trace.round = 1; player = 0; before = [ 2 ]; after = [] } ];
    }
  in
  Alcotest.check_raises "state mismatch"
    (Invalid_argument "Trace.replay: move does not match the profile state")
    (fun () -> ignore (Trace.replay s bad));
  Alcotest.check_raises "wrong n"
    (Invalid_argument "Trace.replay: player count mismatch") (fun () ->
      ignore (Trace.replay (Strategy.create ~n:5) bad))

let test_by_player () =
  let t =
    {
      Trace.n = 4;
      moves =
        [
          { Trace.round = 1; player = 2; before = []; after = [ 1 ] };
          { Trace.round = 1; player = 0; before = []; after = [ 3 ] };
          { Trace.round = 2; player = 2; before = [ 1 ]; after = [] };
        ];
    }
  in
  check_int "player 2 moves" 2 (List.length (Trace.by_player t 2));
  check_int "player 1 moves" 0 (List.length (Trace.by_player t 1))

let test_serialization_roundtrip () =
  let t =
    {
      Trace.n = 5;
      moves =
        [
          { Trace.round = 1; player = 0; before = []; after = [ 1; 2 ] };
          { Trace.round = 2; player = 4; before = [ 0 ]; after = [] };
        ];
    }
  in
  let t' = Trace.of_string (Trace.to_string t) in
  check_bool "roundtrip" true (t = t')

let test_serialization_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Trace.of_string: empty input")
    (fun () -> ignore (Trace.of_string ""));
  Alcotest.check_raises "bad header" (Invalid_argument "Trace.of_string: bad player count")
    (fun () -> ignore (Trace.of_string "x\n"));
  Alcotest.check_raises "bad move" (Invalid_argument "Trace.of_string: bad move line")
    (fun () -> ignore (Trace.of_string "3\n1 0 | 2\n"))

(* The engine invariant: replaying a dynamics' trace on its initial
   profile reproduces its final profile. *)
let prop_dynamics_trace_replays =
  QCheck.Test.make ~name:"dynamics traces replay to the final profile" ~count:30
    QCheck.(
      quad (int_range 4 16) (int_range 2 4) (int_range 0 10_000)
        (float_range 0.2 4.0))
    (fun (n, k, seed, alpha) ->
      let rng = Rng.create seed in
      let g = Ncg_gen.Random_tree.generate rng n in
      let s = Strategy.random_orientation rng g in
      let r = Dynamics.run (Dynamics.default_config ~alpha ~k) s in
      Strategy.equal r.Dynamics.final (Trace.replay s r.Dynamics.trace)
      && Trace.length r.Dynamics.trace = r.Dynamics.total_moves)

let prop_trace_serialization_roundtrip =
  QCheck.Test.make ~name:"trace serialization roundtrips through dynamics" ~count:20
    QCheck.(triple (int_range 4 12) (int_range 0 10_000) (float_range 0.3 3.0))
    (fun (n, seed, alpha) ->
      let rng = Rng.create seed in
      let g = Ncg_gen.Random_tree.generate rng n in
      let s = Strategy.random_orientation rng g in
      let r = Dynamics.run (Dynamics.default_config ~alpha ~k:3) s in
      let t = r.Dynamics.trace in
      Trace.of_string (Trace.to_string t) = t)

let () =
  Alcotest.run "trace"
    [
      ( "replay",
        [
          Alcotest.test_case "empty" `Quick test_empty_replay;
          Alcotest.test_case "manual" `Quick test_manual_replay;
          Alcotest.test_case "mismatch rejected" `Quick test_replay_rejects_mismatch;
          Alcotest.test_case "by player" `Quick test_by_player;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "roundtrip" `Quick test_serialization_roundtrip;
          Alcotest.test_case "errors" `Quick test_serialization_errors;
        ] );
      ( "engine",
        [
          QCheck_alcotest.to_alcotest prop_dynamics_trace_replays;
          QCheck_alcotest.to_alcotest prop_trace_serialization_roundtrip;
        ] );
    ]
