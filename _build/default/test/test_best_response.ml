(* Tests for the exact MaxNCG best response (Section 5.3 reduction). *)

module Strategy = Ncg.Strategy
module View = Ncg.View
module Best_response = Ncg.Best_response
module Rng = Ncg_prng.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let checkf msg = Alcotest.(check (float 1e-9)) msg

let view_of strategy ~k u = View.extract strategy (Strategy.graph strategy) ~k u

(* Reference: brute-force best response on the view (all subsets). *)
let brute_force_cost ~alpha (v : View.t) =
  let nv = View.size v in
  let others = List.filter (fun x -> x <> v.View.player) (List.init nv Fun.id) in
  let m = List.length others in
  let others = Array.of_list others in
  let best = ref infinity in
  for mask = 0 to (1 lsl m) - 1 do
    let targets = ref [] in
    for i = 0 to m - 1 do
      if mask land (1 lsl i) <> 0 then targets := others.(i) :: !targets
    done;
    let h' = View.with_strategy v !targets in
    match Ncg_graph.Bfs.eccentricity h' v.View.player with
    | Some ecc ->
        let c = (alpha *. float_of_int (List.length !targets)) +. float_of_int ecc in
        if c < !best then best := c
    | None -> ()
  done;
  !best

(* --- Hand-computed cases -------------------------------------------------- *)

let test_current_cost () =
  let s = Strategy.of_buys ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  let v = view_of s ~k:10 0 in
  check_int "usage" 4 (Best_response.current_usage v);
  checkf "cost" 5.0 (Best_response.current_cost ~alpha:1.0 v)

let test_path_end_player () =
  (* Path 0-1-2-3-4, player 0, alpha 1, full view: best cost is 4
     (e.g. buy {2,4}: eccentricity 2). *)
  let s = Strategy.of_buys ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  let v = view_of s ~k:10 0 in
  let o = Best_response.compute ~alpha:1.0 v in
  checkf "best cost" 4.0 o.Best_response.cost;
  check_int "consistent usage" o.Best_response.usage
    (int_of_float (o.Best_response.cost -. (1.0 *. float_of_int (List.length o.Best_response.targets))))

let test_star_leaf_small_alpha () =
  (* Star n=4, center 0 owns all. A leaf can reach eccentricity 1 by buying
     the 2 other leaves: improving iff 2*alpha + 1 < 2. *)
  let s = Strategy.of_buys ~n:4 (Ncg_gen.Classic.star_buys 4) in
  let v = view_of s ~k:2 1 in
  let cheap = Best_response.compute ~alpha:0.3 v in
  checkf "buys both leaves" 1.6 cheap.Best_response.cost;
  check_int "two edges" 2 (List.length cheap.Best_response.targets);
  let dear = Best_response.compute ~alpha:0.7 v in
  checkf "stays put" 2.0 dear.Best_response.cost;
  check_int "no edges" 0 (List.length dear.Best_response.targets)

let test_star_center_stays () =
  (* The center owning everything has no improving move for alpha > 0:
     dropping disconnects, buying is impossible (already adjacent). *)
  let s = Strategy.of_buys ~n:6 (Ncg_gen.Classic.star_buys 6) in
  let v = view_of s ~k:2 0 in
  check_bool "no improvement" true (Best_response.improving ~alpha:2.0 v = None)

let test_free_dominators_used () =
  (* Path 0-1-2 where 1 bought the edge to 2. Player 2 owns nothing;
     with alpha=0.5 buying the edge to 0 gives cost 1.5 < 2. *)
  let s = Strategy.of_buys ~n:3 [ (0, 1); (1, 2) ] in
  let v = view_of s ~k:2 2 in
  let o = Best_response.compute ~alpha:0.5 v in
  checkf "cost" 1.5 o.Best_response.cost;
  Alcotest.(check (list int)) "buys 0" [ 0 ] (View.to_host v o.Best_response.targets)

let test_edge_removal_found () =
  (* Triangle, each buys the next edge, alpha large: dropping the owned
     edge saves alpha and raises eccentricity only 1 -> 2. *)
  let s = Strategy.of_buys ~n:3 [ (0, 1); (1, 2); (2, 0) ] in
  let v = view_of s ~k:1 0 in
  let o = Best_response.compute ~alpha:5.0 v in
  checkf "drops the edge" 2.0 o.Best_response.cost;
  check_int "owns nothing" 0 (List.length o.Best_response.targets)

let test_singleton_view () =
  let s = Strategy.create ~n:1 in
  let g = Strategy.graph s in
  let v = View.extract s g ~k:3 0 in
  let o = Best_response.compute ~alpha:1.0 v in
  checkf "zero cost" 0.0 o.Best_response.cost

let test_local_vs_full_view () =
  (* Cycle C10, k=2: a player only sees a path of length 4 and cannot tell
     buying a chord helps; with full knowledge (k large) and small alpha
     there are improving moves. *)
  let s = Strategy.of_buys ~n:10 (Ncg_gen.Classic.cycle_buys 10) in
  let local = view_of s ~k:2 0 in
  check_bool "locally stable at alpha=1.2" true
    (Best_response.improving ~alpha:1.2 local = None);
  let full = view_of s ~k:100 0 in
  check_bool "globally improvable at alpha=1.2" true
    (Best_response.improving ~alpha:1.2 full <> None)

let test_greedy_never_beats_exact () =
  let s = Strategy.of_buys ~n:10 (Ncg_gen.Classic.cycle_buys 10) in
  let v = view_of s ~k:100 0 in
  let exact = Best_response.compute ~solver:`Exact ~alpha:0.4 v in
  let greedy = Best_response.compute ~solver:`Greedy ~alpha:0.4 v in
  check_bool "greedy >= exact" true
    (greedy.Best_response.cost >= exact.Best_response.cost -. 1e-9)

let test_improving_threshold () =
  (* improving = None exactly when best cost >= current. *)
  let s = Strategy.of_buys ~n:4 (Ncg_gen.Classic.star_buys 4) in
  let v = view_of s ~k:2 1 in
  (* At alpha = 0.5, buying both leaves costs 2.0 = current: not strictly
     improving. *)
  check_bool "tie is not improving" true (Best_response.improving ~alpha:0.5 v = None)

(* --- Restricted variants (budget cap, host graph) ---------------------------- *)

let test_budget_cap () =
  (* Star leaf at alpha = 0.3 buys both other leaves unrestricted, but a
     budget of 1 forces the single-edge compromise. *)
  let s = Strategy.of_buys ~n:4 (Ncg_gen.Classic.star_buys 4) in
  let v = view_of s ~k:2 1 in
  let unrestricted = Best_response.compute ~alpha:0.3 v in
  check_int "buys 2" 2 (List.length unrestricted.Best_response.targets);
  let capped = Best_response.compute ~max_edges:1 ~alpha:0.3 v in
  check_bool "within budget" true (List.length capped.Best_response.targets <= 1);
  check_bool "costlier than unrestricted" true
    (capped.Best_response.cost >= unrestricted.Best_response.cost -. 1e-9)

let test_budget_current_violation () =
  let s = Strategy.of_buys ~n:6 (Ncg_gen.Classic.star_buys 6) in
  let v = view_of s ~k:2 0 in
  Alcotest.check_raises "center owns 5 > 2"
    (Invalid_argument "Best_response.compute: current strategy exceeds max_edges")
    (fun () -> ignore (Best_response.compute ~max_edges:2 ~alpha:1.0 v))

let test_allowed_targets () =
  (* Path 0..4, player 0, alpha = 1, full view. Unrestricted best response
     has cost 4 (e.g. {2,4}); restricted to targets {1, 2} the best is
     buying {2} alone (cost 1 + 3). *)
  let s = Strategy.of_buys ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  let v = view_of s ~k:10 0 in
  let one = List.hd (View.of_host v [ 1 ]) in
  let two = List.hd (View.of_host v [ 2 ]) in
  let restricted = Best_response.compute ~allowed:[ one; two ] ~alpha:1.0 v in
  check_bool "targets within whitelist" true
    (List.for_all (fun t -> t = one || t = two) restricted.Best_response.targets);
  checkf "cost" 4.0 restricted.Best_response.cost;
  Alcotest.check_raises "current outside whitelist"
    (Invalid_argument "Best_response.compute: current strategy outside allowed targets")
    (fun () -> ignore (Best_response.compute ~allowed:[ two ] ~alpha:1.0 v))

let prop_restrictions_never_improve_cost =
  QCheck.Test.make ~name:"restricted best responses never beat unrestricted" ~count:60
    QCheck.(
      quad (int_range 3 12) (int_range 1 3) (int_range 0 10_000) (float_range 0.2 3.0))
    (fun (n, k, seed, alpha) ->
      let rng = Rng.create seed in
      let g = Ncg_gen.Random_tree.generate rng n in
      let s = Strategy.random_orientation rng g in
      let u = seed mod n in
      let v = View.extract s (Strategy.graph s) ~k u in
      let free = Best_response.compute ~alpha v in
      let budget = List.length v.View.owned + 1 in
      let capped = Best_response.compute ~max_edges:budget ~alpha v in
      capped.Best_response.cost >= free.Best_response.cost -. 1e-9
      && List.length capped.Best_response.targets <= budget)

(* --- Local search (better responses) ---------------------------------------- *)

let random_profile seed n =
  let rng = Rng.create seed in
  let g = Ncg_gen.Random_tree.generate rng n in
  Strategy.random_orientation rng g

let test_local_search_drop () =
  (* Triangle with expensive edges: local search finds the drop. *)
  let s = Strategy.of_buys ~n:3 [ (0, 1); (1, 2); (2, 0) ] in
  let v = view_of s ~k:1 0 in
  let o = Best_response.local_search ~alpha:5.0 v in
  checkf "drops" 2.0 o.Best_response.cost

let test_local_search_stays_at_optimum () =
  let s = Strategy.of_buys ~n:6 (Ncg_gen.Classic.star_buys 6) in
  let v = view_of s ~k:2 0 in
  let o = Best_response.local_search ~alpha:2.0 v in
  Alcotest.(check (list int)) "center unchanged" v.View.owned o.Best_response.targets

let prop_local_search_between_current_and_best =
  QCheck.Test.make ~name:"best <= local search <= current (Max)" ~count:80
    QCheck.(
      quad (int_range 2 12) (int_range 1 4) (int_range 0 10_000)
        (float_range 0.1 4.0))
    (fun (n, k, seed, alpha) ->
      let s = random_profile seed n in
      let u = seed mod n in
      let v = View.extract s (Strategy.graph s) ~k u in
      let best = Best_response.compute ~alpha v in
      let local = Best_response.local_search ~alpha v in
      best.Best_response.cost <= local.Best_response.cost +. 1e-9
      && local.Best_response.cost <= Best_response.current_cost ~alpha v +. 1e-9)

(* --- Properties ------------------------------------------------------------ *)

let prop_matches_brute_force =
  QCheck.Test.make ~name:"MDS reduction matches brute force over subsets" ~count:60
    QCheck.(
      quad (int_range 2 7) (int_range 1 3) (int_range 0 10_000)
        (float_range 0.1 4.0))
    (fun (n, k, seed, alpha) ->
      let s = random_profile seed n in
      let u = seed mod n in
      let v = View.extract s (Strategy.graph s) ~k u in
      let o = Best_response.compute ~alpha v in
      abs_float (o.Best_response.cost -. brute_force_cost ~alpha v) < 1e-9)

let prop_cost_consistent =
  QCheck.Test.make ~name:"reported cost matches re-evaluating the strategy" ~count:100
    QCheck.(
      quad (int_range 2 15) (int_range 1 4) (int_range 0 10_000)
        (float_range 0.1 4.0))
    (fun (n, k, seed, alpha) ->
      let s = random_profile seed n in
      let u = seed mod n in
      let v = View.extract s (Strategy.graph s) ~k u in
      let o = Best_response.compute ~alpha v in
      let h' = View.with_strategy v o.Best_response.targets in
      match Ncg_graph.Bfs.eccentricity h' v.View.player with
      | Some ecc ->
          ecc = o.Best_response.usage
          && abs_float
               (o.Best_response.cost
               -. ((alpha *. float_of_int (List.length o.Best_response.targets))
                  +. float_of_int ecc))
             < 1e-9
      | None -> false)

let prop_never_worse_than_current =
  QCheck.Test.make ~name:"best response never exceeds the current cost" ~count:100
    QCheck.(
      quad (int_range 2 15) (int_range 1 4) (int_range 0 10_000)
        (float_range 0.05 5.0))
    (fun (n, k, seed, alpha) ->
      let s = random_profile seed n in
      let u = seed mod n in
      let v = View.extract s (Strategy.graph s) ~k u in
      let o = Best_response.compute ~alpha v in
      o.Best_response.cost <= Best_response.current_cost ~alpha v +. 1e-9)

let () =
  Alcotest.run "best_response"
    [
      ( "cases",
        [
          Alcotest.test_case "current cost" `Quick test_current_cost;
          Alcotest.test_case "path end player" `Quick test_path_end_player;
          Alcotest.test_case "star leaf, small alpha" `Quick test_star_leaf_small_alpha;
          Alcotest.test_case "star center stays" `Quick test_star_center_stays;
          Alcotest.test_case "free dominators" `Quick test_free_dominators_used;
          Alcotest.test_case "edge removal" `Quick test_edge_removal_found;
          Alcotest.test_case "singleton view" `Quick test_singleton_view;
          Alcotest.test_case "local vs full view" `Quick test_local_vs_full_view;
          Alcotest.test_case "greedy sanity" `Quick test_greedy_never_beats_exact;
          Alcotest.test_case "improving threshold" `Quick test_improving_threshold;
        ] );
      ( "restricted",
        [
          Alcotest.test_case "budget cap" `Quick test_budget_cap;
          Alcotest.test_case "budget violation" `Quick test_budget_current_violation;
          Alcotest.test_case "allowed targets" `Quick test_allowed_targets;
          QCheck_alcotest.to_alcotest prop_restrictions_never_improve_cost;
        ] );
      ( "local_search",
        [
          Alcotest.test_case "finds edge drop" `Quick test_local_search_drop;
          Alcotest.test_case "stable at optimum" `Quick test_local_search_stays_at_optimum;
          QCheck_alcotest.to_alcotest prop_local_search_between_current_and_best;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_matches_brute_force;
          QCheck_alcotest.to_alcotest prop_cost_consistent;
          QCheck_alcotest.to_alcotest prop_never_worse_than_current;
        ] );
    ]
