(* Tests for the LKE solution concept, including randomized validation of
   Propositions 2.1 and 2.2 against actually-realizable networks. *)

module Graph = Ncg_graph.Graph
module Strategy = Ncg.Strategy
module View = Ncg.View
module Lke = Ncg.Lke
module Game = Ncg.Game
module Rng = Ncg_prng.Rng

let check_bool = Alcotest.(check bool)
let checkf msg = Alcotest.(check (float 1e-9)) msg

(* --- delta functions -------------------------------------------------------- *)

let test_delta_max_values () =
  (* Triangle, 0 owns (0,1), alpha=5, k=1. Dropping: delta = -5 + (2-1). *)
  let s = Strategy.of_buys ~n:3 [ (0, 1); (1, 2); (2, 0) ] in
  let v = View.extract s (Strategy.graph s) ~k:1 0 in
  checkf "drop" (-4.0) (Lke.delta_max ~alpha:5.0 v []);
  checkf "keep" 0.0 (Lke.delta_max ~alpha:5.0 v v.View.owned)

let test_delta_max_disconnect_infinite () =
  let s = Strategy.of_buys ~n:3 [ (0, 1); (1, 2) ] in
  let v = View.extract s (Strategy.graph s) ~k:2 0 in
  check_bool "disconnect = +inf" true (Lke.delta_max ~alpha:1.0 v [] = infinity)

let test_delta_sum_frontier_infinite () =
  (* Path 0-1-2-3-4, player 2, k=2: dropping (2,3) pushes the frontier
     vertex 4 out -> infinite delta by Proposition 2.2. *)
  let s = Strategy.of_buys ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  let v = View.extract s (Strategy.graph s) ~k:2 2 in
  check_bool "frontier push = +inf" true (Lke.delta_sum ~alpha:1.0 v [] = infinity);
  checkf "keep" 0.0 (Lke.delta_sum ~alpha:1.0 v v.View.owned)

(* --- Equilibrium checks -------------------------------------------------------- *)

let test_cycle_lemma_3_1 () =
  (* Lemma 3.1: cycle with one owned edge per player, n >= 2k+2,
     alpha >= k-1 -> LKE. *)
  let n = 12 and k = 3 in
  let s = Strategy.of_buys ~n (Ncg_gen.Classic.cycle_buys n) in
  check_bool "cycle is an LKE" true (Lke.is_lke_max ~alpha:2.5 ~k s);
  (* Far below the threshold the cycle is not stable under full knowledge. *)
  check_bool "cycle with tiny alpha, full view: not LKE" false
    (Lke.is_lke_max ~alpha:0.2 ~k:1000 s)

let test_star_lke_max () =
  let n = 6 in
  let s = Strategy.of_buys ~n (Ncg_gen.Classic.star_buys n) in
  check_bool "star LKE at alpha=1" true (Lke.is_lke_max ~alpha:1.0 ~k:2 s);
  (* At alpha = 0.2, a leaf buying the 4 other leaves pays 0.8 < 1 saved. *)
  check_bool "star not LKE at alpha=0.2" false (Lke.is_lke_max ~alpha:0.2 ~k:2 s)

let test_violations_reported () =
  let n = 6 in
  let s = Strategy.of_buys ~n (Ncg_gen.Classic.star_buys n) in
  let violations = Lke.violations_max ~alpha:0.2 ~k:2 s in
  check_bool "leaves violate" true (List.length violations = n - 1);
  check_bool "center fine" true (not (List.mem_assoc 0 violations))

let test_players_subset () =
  let n = 6 in
  let s = Strategy.of_buys ~n (Ncg_gen.Classic.star_buys n) in
  (* Checking only the center finds no violation even at tiny alpha. *)
  check_bool "center-only check passes" true
    (Lke.is_lke_max ~players:[ 0 ] ~alpha:0.2 ~k:2 s)

let test_star_lke_sum () =
  let n = 5 in
  let s = Strategy.of_buys ~n (Ncg_gen.Classic.star_buys n) in
  (* A leaf buying an edge to another leaf pays alpha to save 1. *)
  check_bool "sum LKE at alpha=1.5" true (Lke.is_lke_sum_exact ~alpha:1.5 ~k:2 s);
  check_bool "sum not LKE at alpha=0.5" false (Lke.is_lke_sum_exact ~alpha:0.5 ~k:2 s)

let test_single_move_stability () =
  let n = 5 in
  let s = Strategy.of_buys ~n (Ncg_gen.Classic.star_buys n) in
  check_bool "stable" true (Lke.is_single_move_stable_sum ~alpha:1.5 ~k:2 s);
  check_bool "unstable" false (Lke.is_single_move_stable_sum ~alpha:0.5 ~k:2 s)

(* --- Randomized validation of Propositions 2.1 / 2.2 ------------------------ *)

(* The real network G is itself realizable w.r.t. any of its players'
   views, so the worst-case delta computed on the view must upper-bound
   the actual cost change in G. *)

let actual_cost_change variant ~alpha s u targets' =
  let g = Strategy.graph s in
  let s' = Strategy.with_owned s u targets' in
  let g' = Strategy.graph s' in
  match (Game.player_cost variant ~alpha s g u, Game.player_cost variant ~alpha s' g' u) with
  | Some before, Some after -> Some (after -. before)
  | _, None -> None (* deviation disconnected the real network *)
  | None, _ -> assert false

let prop_proposition_2_1 =
  QCheck.Test.make ~name:"Prop 2.1: view delta bounds the real cost change (Max)"
    ~count:200
    QCheck.(
      quad (int_range 3 20) (int_range 1 4) (int_range 0 100_000)
        (float_range 0.1 4.0))
    (fun (n, k, seed, alpha) ->
      let rng = Rng.create seed in
      let g = Ncg_gen.Random_tree.generate rng n in
      let s = Strategy.random_orientation rng g in
      let u = Rng.int rng n in
      let view = View.extract s (Strategy.graph s) ~k u in
      (* Deviations are restricted to the view's vertices (the model's
         strategy space); draw targets within the view. *)
      let hosts = Array.of_list (View.to_host view (List.init (View.size view) Fun.id)) in
      let count = Rng.int rng 3 in
      let targets_host =
        List.sort_uniq compare
          (List.filter (fun x -> x <> u)
             (List.init count (fun _ -> hosts.(Rng.int rng (Array.length hosts)))))
      in
      let targets_view = View.of_host view targets_host in
      let delta = Lke.delta_max ~alpha view targets_view in
      match actual_cost_change Game.Max ~alpha s u targets_host with
      | Some change -> change <= delta +. 1e-9
      | None -> delta = infinity || delta > 0.0)

let prop_proposition_2_2 =
  QCheck.Test.make ~name:"Prop 2.2: view delta bounds the real cost change (Sum)"
    ~count:200
    QCheck.(
      quad (int_range 3 20) (int_range 1 4) (int_range 0 100_000)
        (float_range 0.1 4.0))
    (fun (n, k, seed, alpha) ->
      let rng = Rng.create seed in
      let g = Ncg_gen.Random_tree.generate rng n in
      let s = Strategy.random_orientation rng g in
      let u = Rng.int rng n in
      let view = View.extract s (Strategy.graph s) ~k u in
      let hosts = Array.of_list (View.to_host view (List.init (View.size view) Fun.id)) in
      let count = Rng.int rng 3 in
      let targets_host =
        List.sort_uniq compare
          (List.filter (fun x -> x <> u)
             (List.init count (fun _ -> hosts.(Rng.int rng (Array.length hosts)))))
      in
      let targets_view = View.of_host view targets_host in
      let delta = Lke.delta_sum ~alpha view targets_view in
      if delta = infinity then true
      else begin
        match actual_cost_change Game.Sum ~alpha s u targets_host with
        | Some change -> change <= delta +. 1e-9
        | None -> false
        (* a finite delta may not disconnect the real network:
           inadmissible strategies all have delta = infinity *)
      end)

let prop_converged_profiles_pass_violations =
  QCheck.Test.make ~name:"improving deviations found by BR have negative delta"
    ~count:60
    QCheck.(
      quad (int_range 3 12) (int_range 1 4) (int_range 0 100_000)
        (float_range 0.1 3.0))
    (fun (n, k, seed, alpha) ->
      let rng = Rng.create seed in
      let g = Ncg_gen.Random_tree.generate rng n in
      let s = Strategy.random_orientation rng g in
      let violations = Lke.violations_max ~alpha ~k s in
      List.for_all
        (fun (u, (o : Ncg.Best_response.outcome)) ->
          let view = View.extract s (Strategy.graph s) ~k u in
          Lke.delta_max ~alpha view o.Ncg.Best_response.targets < 0.0)
        violations)

let () =
  Alcotest.run "lke"
    [
      ( "delta",
        [
          Alcotest.test_case "delta_max values" `Quick test_delta_max_values;
          Alcotest.test_case "delta_max disconnect" `Quick test_delta_max_disconnect_infinite;
          Alcotest.test_case "delta_sum frontier" `Quick test_delta_sum_frontier_infinite;
        ] );
      ( "equilibria",
        [
          Alcotest.test_case "cycle (Lemma 3.1)" `Quick test_cycle_lemma_3_1;
          Alcotest.test_case "star (Max)" `Quick test_star_lke_max;
          Alcotest.test_case "violations" `Quick test_violations_reported;
          Alcotest.test_case "players subset" `Quick test_players_subset;
          Alcotest.test_case "star (Sum, exact)" `Quick test_star_lke_sum;
          Alcotest.test_case "single-move stability" `Quick test_single_move_stability;
        ] );
      ( "propositions",
        [
          QCheck_alcotest.to_alcotest prop_proposition_2_1;
          QCheck_alcotest.to_alcotest prop_proposition_2_2;
          QCheck_alcotest.to_alcotest prop_converged_profiles_pass_violations;
        ] );
    ]
