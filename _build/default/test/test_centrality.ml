(* Tests for closeness and betweenness centrality. *)

module Graph = Ncg_graph.Graph
module Centrality = Ncg_graph.Centrality
module Classic = Ncg_gen.Classic

let checkf msg = Alcotest.(check (float 1e-9)) msg

let test_closeness_star () =
  let g = Classic.star 5 in
  checkf "center" 1.0 (Centrality.closeness g 0);
  (* Leaf: distances 1 + 2+2+2 = 7; (n-1)/7. *)
  checkf "leaf" (4.0 /. 7.0) (Centrality.closeness g 1)

let test_closeness_path () =
  let g = Classic.path 5 in
  (* Center vertex 2: distances 2+1+1+2 = 6. *)
  checkf "center" (4.0 /. 6.0) (Centrality.closeness g 2);
  checkf "end" (4.0 /. 10.0) (Centrality.closeness g 0)

let test_closeness_disconnected () =
  let g = Graph.of_edges ~n:3 [ (0, 1) ] in
  checkf "unreachable -> 0" 0.0 (Centrality.closeness g 0);
  checkf "singleton graph" 0.0 (Centrality.closeness (Graph.empty 1) 0)

let test_closeness_all () =
  let g = Classic.cycle 6 in
  let all = Centrality.closeness_all g in
  (* Vertex-transitive: all equal; distances 1+1+2+2+3 = 9. *)
  Array.iter (fun c -> checkf "cycle uniform" (5.0 /. 9.0) c) all

let test_betweenness_star () =
  let g = Classic.star 5 in
  let b = Centrality.betweenness g in
  (* Center lies on every one of the C(4,2) = 6 leaf pairs. *)
  checkf "center" 6.0 b.(0);
  Array.iteri (fun v x -> if v > 0 then checkf "leaf" 0.0 x) b

let test_betweenness_path () =
  let g = Classic.path 4 in
  let b = Centrality.betweenness g in
  (* Vertex 1 separates {0} from {2,3}: pairs (0,2), (0,3) -> 2. *)
  checkf "v0" 0.0 b.(0);
  checkf "v1" 2.0 b.(1);
  checkf "v2" 2.0 b.(2);
  checkf "v3" 0.0 b.(3)

let test_betweenness_cycle_even () =
  (* C4: between opposite vertices there are two shortest paths, each
     midpoint gets 1/2 per opposite pair. Pairs: (0,2) contributes 1/2 to
     1 and 3; (1,3) contributes 1/2 to 0 and 2. *)
  let g = Classic.cycle 4 in
  let b = Centrality.betweenness g in
  Array.iter (fun x -> checkf "C4 uniform" 0.5 x) b

(* Brute-force reference via explicit shortest-path counting. *)
let betweenness_reference g =
  let n = Graph.order g in
  let dist = Ncg_graph.Metrics.distance_matrix g in
  (* Count shortest paths sigma.(s).(t) by DP over distance layers. *)
  let sigma = Array.make_matrix n n 0.0 in
  for s = 0 to n - 1 do
    sigma.(s).(s) <- 1.0;
    (* Process vertices in increasing distance from s. *)
    let order = List.init n Fun.id in
    let order = List.filter (fun v -> dist.(s).(v) >= 0) order in
    let order = List.sort (fun a b -> compare dist.(s).(a) dist.(s).(b)) order in
    List.iter
      (fun v ->
        if v <> s then
          Array.iter
            (fun w ->
              if dist.(s).(w) = dist.(s).(v) - 1 then
                sigma.(s).(v) <- sigma.(s).(v) +. sigma.(s).(w))
            (Graph.neighbors g v))
      order
  done;
  Array.init n (fun v ->
      let total = ref 0.0 in
      for s = 0 to n - 1 do
        for t = s + 1 to n - 1 do
          if
            s <> v && t <> v
            && dist.(s).(t) >= 0
            && dist.(s).(v) >= 0
            && dist.(v).(t) >= 0
            && dist.(s).(v) + dist.(v).(t) = dist.(s).(t)
          then total := !total +. (sigma.(s).(v) *. sigma.(v).(t) /. sigma.(s).(t))
        done
      done;
      !total)

let prop_brandes_matches_reference =
  QCheck.Test.make ~name:"Brandes matches pair-counting reference" ~count:60
    QCheck.(pair (int_range 2 14) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Ncg_prng.Rng.create seed in
      let tree = Ncg_gen.Random_tree.generate rng n in
      let extra =
        List.init (n / 2) (fun _ -> (Ncg_prng.Rng.int rng n, Ncg_prng.Rng.int rng n))
        |> List.filter (fun (a, b) -> a <> b)
      in
      let g = Graph.add_edges tree extra in
      let fast = Ncg_graph.Centrality.betweenness g in
      let slow = betweenness_reference g in
      Array.for_all2 (fun a b -> abs_float (a -. b) < 1e-6) fast slow)

let prop_closeness_vs_sum_usage =
  QCheck.Test.make ~name:"closeness is the inverse of the Sum usage cost" ~count:60
    QCheck.(pair (int_range 2 20) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Ncg_prng.Rng.create seed in
      let g = Ncg_gen.Random_tree.generate rng n in
      let ok = ref true in
      for u = 0 to n - 1 do
        match Ncg_graph.Bfs.sum_distances g u with
        | Some total ->
            if
              abs_float
                (Centrality.closeness g u -. (float_of_int (n - 1) /. float_of_int total))
              > 1e-9
            then ok := false
        | None -> ok := false
      done;
      !ok)

let () =
  Alcotest.run "centrality"
    [
      ( "closeness",
        [
          Alcotest.test_case "star" `Quick test_closeness_star;
          Alcotest.test_case "path" `Quick test_closeness_path;
          Alcotest.test_case "disconnected" `Quick test_closeness_disconnected;
          Alcotest.test_case "cycle uniform" `Quick test_closeness_all;
          QCheck_alcotest.to_alcotest prop_closeness_vs_sum_usage;
        ] );
      ( "betweenness",
        [
          Alcotest.test_case "star" `Quick test_betweenness_star;
          Alcotest.test_case "path" `Quick test_betweenness_path;
          Alcotest.test_case "even cycle" `Quick test_betweenness_cycle_even;
          QCheck_alcotest.to_alcotest prop_brandes_matches_reference;
        ] );
    ]
