(* Tests for the SumNCG best response and the Proposition 2.2 rule. *)

module Strategy = Ncg.Strategy
module View = Ncg.View
module Sum_best_response = Ncg.Sum_best_response
module Rng = Ncg_prng.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let checkf msg = Alcotest.(check (float 1e-9)) msg

let view_of strategy ~k u = View.extract strategy (Strategy.graph strategy) ~k u

let path5 = Strategy.of_buys ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4) ]

(* --- Admissibility (Proposition 2.2) -------------------------------------- *)

let test_admissible_current () =
  let v = view_of path5 ~k:2 2 in
  check_bool "current strategy admissible" true
    (Sum_best_response.admissible v v.View.owned)

let test_inadmissible_disconnect () =
  (* Player 2 dropping the edge to 3 cuts the frontier vertex 4 off. *)
  let v = view_of path5 ~k:2 2 in
  check_bool "dropping 2-3 inadmissible" false (Sum_best_response.admissible v [])

let test_inadmissible_frontier_pushed () =
  (* Path 0..6, player 3 owns (3,4); k=3 so frontier = {0, 6}. Swapping the
     edge to buy (3,5) keeps 6 at distance <= 3 but puts 4 at distance 2 —
     4 is NOT frontier, so this stays admissible. Dropping it instead
     disconnects {4,5,6}: inadmissible. *)
  let s = Strategy.of_buys ~n:7 (List.init 6 (fun i -> (i, i + 1))) in
  let v = view_of s ~k:3 3 in
  let five = List.hd (View.of_host v [ 5 ]) in
  check_bool "swap admissible" true (Sum_best_response.admissible v [ five ]);
  check_bool "drop inadmissible" false (Sum_best_response.admissible v [])

let test_frontier_increase_rejected () =
  (* Star + pendant: center 0 adjacent to 1,2; 2-3 pendant. Player 1 with
     k=2 sees everything except nothing (n=4, k=2 sees all but 3 at
     distance 3? d(1,3)=3 so 3 is invisible; frontier = {2}). If player 1
     (owning the edge 1-0) swaps to buy the edge to 2 directly, then 0 is
     at distance 2 but 2 stays at distance 1 <= k: admissible. *)
  let s = Strategy.of_buys ~n:4 [ (1, 0); (0, 2); (2, 3) ] in
  let v = view_of s ~k:2 1 in
  check_int "sees 3 of 4" 3 (View.size v);
  let two = List.hd (View.of_host v [ 2 ]) in
  check_bool "swap to 2 admissible" true (Sum_best_response.admissible v [ two ])

(* --- Costs ------------------------------------------------------------------ *)

let test_cost_on_view () =
  let v = view_of path5 ~k:10 0 in
  (* Current: alpha*1 + (1+2+3+4). *)
  checkf "current" 11.0 (Sum_best_response.current_cost ~alpha:1.0 v);
  let two = List.hd (View.of_host v [ 2 ]) in
  (match Sum_best_response.cost_on_view ~alpha:1.0 v [ two ] with
  | Some c ->
      (* Edges: 0-2 plus 1-2,2-3,3-4: d = 2,1,2,3 -> 8 + alpha. *)
      checkf "deviate" 9.0 c
  | None -> Alcotest.fail "connected");
  check_bool "disconnect gives None" true
    (Sum_best_response.cost_on_view ~alpha:1.0 v [] = None)

(* --- Exact solver ------------------------------------------------------------- *)

let test_exact_star_leaf () =
  (* Star n=4 (center 0 owns all), leaf with alpha=0.3: buying both other
     leaves is the best response: 0.6 + 3 = 3.6. *)
  let s = Strategy.of_buys ~n:4 (Ncg_gen.Classic.star_buys 4) in
  let v = view_of s ~k:2 1 in
  checkf "current" 5.0 (Sum_best_response.current_cost ~alpha:0.3 v);
  let o = Sum_best_response.exact ~alpha:0.3 v in
  checkf "best" 3.6 o.Sum_best_response.cost;
  check_int "buys 2" 2 (List.length o.Sum_best_response.targets);
  (* With alpha = 1.5 staying put is best (the leaf owns nothing). *)
  let o2 = Sum_best_response.exact ~alpha:1.5 v in
  checkf "stays" 5.0 o2.Sum_best_response.cost

let test_exact_respects_admissibility () =
  (* Player 2 on the path must keep 0 and 4 within k=2; check the exact
     optimizer only returns admissible strategies. *)
  let v = view_of path5 ~k:2 2 in
  let o = Sum_best_response.exact ~alpha:0.2 v in
  check_bool "admissible" true (Sum_best_response.admissible v o.Sum_best_response.targets)

let test_exact_too_large () =
  let s = Strategy.of_buys ~n:20 (Ncg_gen.Classic.star_buys 20) in
  let v = view_of s ~k:2 1 in
  Alcotest.check_raises "view too large"
    (Invalid_argument "Sum_best_response.exact: view too large for enumeration")
    (fun () -> ignore (Sum_best_response.exact ~alpha:1.0 v))

(* --- Branch and bound -------------------------------------------------------- *)

let test_bb_matches_exact_small () =
  let s = Strategy.of_buys ~n:4 (Ncg_gen.Classic.star_buys 4) in
  let v = view_of s ~k:2 1 in
  let e = Sum_best_response.exact ~alpha:0.3 v in
  let b = Sum_best_response.branch_and_bound ~alpha:0.3 v in
  checkf "same optimum" e.Sum_best_response.cost b.Sum_best_response.cost

let test_bb_handles_larger_views () =
  (* A 26-vertex full-knowledge view: 2^25 enumeration is hopeless, the
     B&B finishes. Star center + leaves, alpha = 0.4: a leaf's best
     response buys all 24 other leaves (cost 0.4*24 + 25 = 34.6 < 49). *)
  let n = 26 in
  let s = Strategy.of_buys ~n (Ncg_gen.Classic.star_buys n) in
  let v = view_of s ~k:2 1 in
  let b = Sum_best_response.branch_and_bound ~alpha:0.4 v in
  checkf "optimal on K1,25" (0.4 *. 24.0 +. 25.0) b.Sum_best_response.cost;
  check_int "buys all leaves" 24 (List.length b.Sum_best_response.targets)

let test_bb_size_guard () =
  let s = Strategy.of_buys ~n:40 (Ncg_gen.Classic.star_buys 40) in
  let v = view_of s ~k:2 1 in
  Alcotest.check_raises "guard"
    (Invalid_argument "Sum_best_response.branch_and_bound: view too large")
    (fun () -> ignore (Sum_best_response.branch_and_bound ~alpha:1.0 v))

let prop_bb_matches_enumeration =
  QCheck.Test.make ~name:"branch&bound cost = enumeration cost" ~count:60
    QCheck.(
      quad (int_range 2 9) (int_range 1 3) (int_range 0 10_000) (float_range 0.1 3.0))
    (fun (n, k, seed, alpha) ->
      let rng = Ncg_prng.Rng.create seed in
      let g = Ncg_gen.Random_tree.generate rng n in
      let s = Strategy.random_orientation rng g in
      let u = seed mod n in
      let v = View.extract s (Strategy.graph s) ~k u in
      let e = Sum_best_response.exact ~alpha v in
      let b = Sum_best_response.branch_and_bound ~alpha v in
      abs_float (e.Sum_best_response.cost -. b.Sum_best_response.cost) < 1e-9)

(* --- Local search ---------------------------------------------------------------- *)

let test_local_search_swap () =
  (* Path 0..6, player 3, alpha=1, full view: swapping (3,4) for (3,5)
     strictly reduces the distance sum (12 -> 11). *)
  let s = Strategy.of_buys ~n:7 (List.init 6 (fun i -> (i, i + 1))) in
  let v = view_of s ~k:10 3 in
  let o = Sum_best_response.local_search ~alpha:1.0 v in
  check_bool "improved" true
    (o.Sum_best_response.cost < Sum_best_response.current_cost ~alpha:1.0 v -. 1e-9)

let test_local_search_stable_point () =
  (* Star leaf with expensive edges: local search stays put. *)
  let s = Strategy.of_buys ~n:5 (Ncg_gen.Classic.star_buys 5) in
  let v = view_of s ~k:2 1 in
  let o = Sum_best_response.local_search ~alpha:3.0 v in
  Alcotest.(check (list int)) "unchanged" v.View.owned o.Sum_best_response.targets

let test_improving_modes () =
  let s = Strategy.of_buys ~n:4 (Ncg_gen.Classic.star_buys 4) in
  let v = view_of s ~k:2 1 in
  check_bool "exact improving" true
    (Sum_best_response.improving ~alpha:0.3 ~mode:(`Exact 16) v <> None);
  check_bool "local improving" true
    (Sum_best_response.improving ~alpha:0.3 ~mode:`Local_search v <> None);
  check_bool "no improvement at alpha=2" true
    (Sum_best_response.improving ~alpha:2.0 ~mode:(`Exact 16) v = None)

(* --- Properties --------------------------------------------------------------------- *)

let random_profile seed n =
  let rng = Rng.create seed in
  let g = Ncg_gen.Random_tree.generate rng n in
  Strategy.random_orientation rng g

let prop_exact_beats_local_search =
  QCheck.Test.make ~name:"exact <= local search <= current" ~count:50
    QCheck.(
      quad (int_range 2 8) (int_range 1 3) (int_range 0 10_000) (float_range 0.1 3.0))
    (fun (n, k, seed, alpha) ->
      let s = random_profile seed n in
      let u = seed mod n in
      let v = View.extract s (Strategy.graph s) ~k u in
      let exact = Sum_best_response.exact ~alpha v in
      let local = Sum_best_response.local_search ~alpha v in
      let current = Sum_best_response.current_cost ~alpha v in
      exact.Sum_best_response.cost <= local.Sum_best_response.cost +. 1e-9
      && local.Sum_best_response.cost <= current +. 1e-9)

let prop_exact_admissible =
  QCheck.Test.make ~name:"exact best responses are always admissible" ~count:50
    QCheck.(
      quad (int_range 2 8) (int_range 1 3) (int_range 0 10_000) (float_range 0.1 3.0))
    (fun (n, k, seed, alpha) ->
      let s = random_profile seed n in
      let u = seed mod n in
      let v = View.extract s (Strategy.graph s) ~k u in
      let o = Sum_best_response.exact ~alpha v in
      Sum_best_response.admissible v o.Sum_best_response.targets)

let prop_cost_consistent =
  QCheck.Test.make ~name:"reported cost matches re-evaluation" ~count:50
    QCheck.(
      quad (int_range 2 8) (int_range 1 3) (int_range 0 10_000) (float_range 0.1 3.0))
    (fun (n, k, seed, alpha) ->
      let s = random_profile seed n in
      let u = seed mod n in
      let v = View.extract s (Strategy.graph s) ~k u in
      let o = Sum_best_response.exact ~alpha v in
      match Sum_best_response.cost_on_view ~alpha v o.Sum_best_response.targets with
      | Some c -> abs_float (c -. o.Sum_best_response.cost) < 1e-9
      | None -> false)

let () =
  Alcotest.run "sum_best_response"
    [
      ( "admissibility",
        [
          Alcotest.test_case "current admissible" `Quick test_admissible_current;
          Alcotest.test_case "disconnect" `Quick test_inadmissible_disconnect;
          Alcotest.test_case "frontier rules" `Quick test_inadmissible_frontier_pushed;
          Alcotest.test_case "swap near frontier" `Quick test_frontier_increase_rejected;
        ] );
      ( "costs",
        [ Alcotest.test_case "cost on view" `Quick test_cost_on_view ] );
      ( "exact",
        [
          Alcotest.test_case "star leaf" `Quick test_exact_star_leaf;
          Alcotest.test_case "respects admissibility" `Quick test_exact_respects_admissibility;
          Alcotest.test_case "size guard" `Quick test_exact_too_large;
        ] );
      ( "branch_and_bound",
        [
          Alcotest.test_case "matches exact" `Quick test_bb_matches_exact_small;
          Alcotest.test_case "larger views" `Quick test_bb_handles_larger_views;
          Alcotest.test_case "size guard" `Quick test_bb_size_guard;
          QCheck_alcotest.to_alcotest prop_bb_matches_enumeration;
        ] );
      ( "local_search",
        [
          Alcotest.test_case "finds swap" `Quick test_local_search_swap;
          Alcotest.test_case "stable point" `Quick test_local_search_stable_point;
          Alcotest.test_case "improving modes" `Quick test_improving_modes;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_exact_beats_local_search;
          QCheck_alcotest.to_alcotest prop_exact_admissible;
          QCheck_alcotest.to_alcotest prop_cost_consistent;
        ] );
    ]
