test/test_report.ml: Alcotest List Ncg Ncg_gen Ncg_reporting QCheck QCheck_alcotest String
