test/test_ascii_chart.mli:
