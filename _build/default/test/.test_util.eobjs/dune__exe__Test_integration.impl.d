test/test_integration.ml: Alcotest List Ncg Ncg_gen Ncg_graph Ncg_util Printf
