test/test_prng.ml: Alcotest Array Fun List Ncg_gen Ncg_graph Ncg_prng QCheck QCheck_alcotest
