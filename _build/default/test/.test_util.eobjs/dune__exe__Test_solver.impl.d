test/test_solver.ml: Alcotest Array Fun Gen List Ncg_gen Ncg_graph Ncg_prng Ncg_solver Ncg_util Option Printf QCheck QCheck_alcotest
