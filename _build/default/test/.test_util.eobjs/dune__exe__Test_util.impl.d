test/test_util.ml: Alcotest Array Int List Ncg_util Printf QCheck QCheck_alcotest Queue Set
