test/test_best_response.mli:
