test/test_torus.mli:
