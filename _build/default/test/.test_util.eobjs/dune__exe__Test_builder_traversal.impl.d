test/test_builder_traversal.ml: Alcotest Array Fun List Ncg_gen Ncg_graph Ncg_prng QCheck QCheck_alcotest
