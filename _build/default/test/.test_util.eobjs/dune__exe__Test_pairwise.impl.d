test/test_pairwise.ml: Alcotest List Ncg Ncg_gen Ncg_graph Ncg_prng QCheck QCheck_alcotest
