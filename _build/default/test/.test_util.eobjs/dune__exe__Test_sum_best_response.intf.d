test/test_sum_best_response.mli:
