test/test_lke.ml: Alcotest Array Fun List Ncg Ncg_gen Ncg_graph Ncg_prng QCheck QCheck_alcotest
