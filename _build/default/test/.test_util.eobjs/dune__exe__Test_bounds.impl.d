test/test_bounds.ml: Alcotest Float List Ncg Ncg_gen Printf QCheck QCheck_alcotest String
