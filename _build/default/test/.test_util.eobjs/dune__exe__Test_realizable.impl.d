test/test_realizable.ml: Alcotest Array List Ncg Ncg_gen Ncg_graph Ncg_prng QCheck QCheck_alcotest
