test/test_pairwise.mli:
