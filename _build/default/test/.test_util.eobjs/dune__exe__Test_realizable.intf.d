test/test_realizable.mli:
