test/test_experiment.ml: Alcotest List Ncg Ncg_graph Ncg_stats Printf
