test/test_reductions.ml: Alcotest List Ncg Ncg_gen Ncg_graph Ncg_prng Ncg_solver Printf QCheck QCheck_alcotest
