test/test_gen.ml: Alcotest Array List Ncg_gen Ncg_graph Ncg_prng Printf QCheck QCheck_alcotest
