test/test_dynamics.ml: Alcotest Float List Ncg Ncg_gen Ncg_graph Ncg_prng QCheck QCheck_alcotest String
