test/test_torus.ml: Alcotest Array List Ncg_gen Ncg_graph Printf QCheck QCheck_alcotest
