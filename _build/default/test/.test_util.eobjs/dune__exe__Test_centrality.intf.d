test/test_centrality.mli:
