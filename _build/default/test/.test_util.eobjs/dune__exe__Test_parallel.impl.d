test/test_parallel.ml: Alcotest Fun List Ncg_util Printf QCheck QCheck_alcotest
