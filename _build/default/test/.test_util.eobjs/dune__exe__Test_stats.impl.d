test/test_stats.ml: Alcotest Array Gen Ncg_stats Printf QCheck QCheck_alcotest
