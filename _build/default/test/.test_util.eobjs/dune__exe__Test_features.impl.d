test/test_features.ml: Alcotest Array Float List Ncg Ncg_gen Ncg_graph Ncg_prng QCheck QCheck_alcotest String
