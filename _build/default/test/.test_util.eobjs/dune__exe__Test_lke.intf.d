test/test_lke.mli:
