test/test_builder_traversal.mli:
