test/test_ascii_chart.ml: Alcotest Ncg_stats QCheck QCheck_alcotest String
