test/test_sum_best_response.ml: Alcotest List Ncg Ncg_gen Ncg_prng QCheck QCheck_alcotest
