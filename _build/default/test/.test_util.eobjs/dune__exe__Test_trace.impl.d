test/test_trace.ml: Alcotest List Ncg Ncg_gen Ncg_prng QCheck QCheck_alcotest
