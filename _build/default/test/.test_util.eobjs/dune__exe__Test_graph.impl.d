test/test_graph.ml: Alcotest Array List Ncg_graph Ncg_util QCheck QCheck_alcotest String
