test/test_enumerate.ml: Alcotest Float List Ncg Printf
