(* Tests for the graph generators (except the torus grid, see test_torus). *)

module Graph = Ncg_graph.Graph
module Bfs = Ncg_graph.Bfs
module Metrics = Ncg_graph.Metrics
module Girth = Ncg_graph.Girth
module Classic = Ncg_gen.Classic
module Random_tree = Ncg_gen.Random_tree
module Erdos_renyi = Ncg_gen.Erdos_renyi
module Gf = Ncg_gen.Gf
module Projective_plane = Ncg_gen.Projective_plane
module High_girth = Ncg_gen.High_girth
module Rng = Ncg_prng.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_opt_int = Alcotest.(check (option int))

(* --- Classic families --------------------------------------------------- *)

let test_path () =
  let g = Classic.path 6 in
  check_int "size" 5 (Graph.size g);
  check_opt_int "diameter" (Some 5) (Metrics.diameter g)

let test_cycle () =
  let g = Classic.cycle 8 in
  check_int "size" 8 (Graph.size g);
  check_opt_int "diameter" (Some 4) (Metrics.diameter g);
  check_int "regular" 2 (Metrics.max_degree g);
  Alcotest.check_raises "too small" (Invalid_argument "Classic.cycle: need n >= 3")
    (fun () -> ignore (Classic.cycle 2))

let test_cycle_buys () =
  let buys = Classic.cycle_buys 5 in
  check_int "one edge each" 5 (List.length buys);
  (* Buys must cover exactly the cycle's edges. *)
  let g = Graph.of_edges ~n:5 buys in
  check_bool "covers the cycle" true (Graph.equal g (Classic.cycle 5))

let test_star () =
  let g = Classic.star 7 in
  check_int "size" 6 (Graph.size g);
  check_int "center degree" 6 (Graph.degree g 0);
  check_opt_int "diameter" (Some 2) (Metrics.diameter g);
  let buys = Classic.star_buys 7 in
  check_bool "center buys all" true (List.for_all (fun (b, _) -> b = 0) buys)

let test_complete () =
  let g = Classic.complete 6 in
  check_int "size" 15 (Graph.size g);
  check_opt_int "diameter" (Some 1) (Metrics.diameter g)

let test_grid () =
  let g = Classic.grid 3 4 in
  check_int "order" 12 (Graph.order g);
  check_int "size" ((2 * 4) + (3 * 3)) (Graph.size g);
  check_opt_int "diameter" (Some 5) (Metrics.diameter g)

let test_hypercube () =
  let g = Classic.hypercube 4 in
  check_int "order" 16 (Graph.order g);
  check_int "size" (16 * 4 / 2) (Graph.size g);
  check_opt_int "diameter" (Some 4) (Metrics.diameter g);
  check_opt_int "girth" (Some 4) (Girth.girth g)

(* --- Random trees -------------------------------------------------------- *)

let test_pruefer_known () =
  (* Sequence [3; 3] on n=4 decodes to the star centered at 3. *)
  let g = Random_tree.decode_pruefer ~n:4 [| 3; 3 |] in
  check_int "star center degree" 3 (Graph.degree g 3);
  check_int "size" 3 (Graph.size g)

let test_pruefer_path () =
  (* Sequence [1; 2] on n=4 decodes to the path 0-1-2-3. *)
  let g = Random_tree.decode_pruefer ~n:4 [| 1; 2 |] in
  check_bool "0-1" true (Graph.mem_edge g 0 1);
  check_bool "1-2" true (Graph.mem_edge g 1 2);
  check_bool "2-3" true (Graph.mem_edge g 2 3)

let test_pruefer_validation () =
  Alcotest.check_raises "length"
    (Invalid_argument "Random_tree.decode_pruefer: sequence must have length n-2")
    (fun () -> ignore (Random_tree.decode_pruefer ~n:4 [| 0 |]));
  Alcotest.check_raises "range"
    (Invalid_argument "Random_tree.decode_pruefer: entry out of range") (fun () ->
      ignore (Random_tree.decode_pruefer ~n:4 [| 4; 0 |]))

let test_tree_tiny () =
  check_int "n=1" 0 (Graph.size (Random_tree.generate (Rng.create 1) 1));
  check_int "n=2" 1 (Graph.size (Random_tree.generate (Rng.create 1) 2))

let test_random_tree_is_tree () =
  let rng = Rng.create 42 in
  List.iter
    (fun n ->
      let g = Random_tree.generate rng n in
      check_int (Printf.sprintf "n=%d edges" n) (n - 1) (Graph.size g);
      check_bool "connected" true (Bfs.is_connected g))
    [ 2; 3; 10; 50; 200 ]

let test_random_tree_uniformity () =
  (* On 3 labelled vertices there are exactly 3 trees (which vertex is the
     center); each should appear about 1/3 of the time. *)
  let rng = Rng.create 7 in
  let counts = Array.make 3 0 in
  let trials = 3000 in
  for _ = 1 to trials do
    let g = Random_tree.generate rng 3 in
    let center = if Graph.degree g 0 = 2 then 0 else if Graph.degree g 1 = 2 then 1 else 2 in
    counts.(center) <- counts.(center) + 1
  done;
  Array.iter
    (fun c ->
      check_bool "roughly uniform" true
        (abs (c - (trials / 3)) < trials / 10))
    counts

let prop_random_tree_tree =
  QCheck.Test.make ~name:"random trees are spanning trees" ~count:100
    QCheck.(pair (int_range 2 100) (int_range 0 10000))
    (fun (n, seed) ->
      let g = Random_tree.generate (Rng.create seed) n in
      Graph.size g = n - 1 && Bfs.is_connected g)

(* --- Erdős–Rényi --------------------------------------------------------- *)

let test_gnp_extremes () =
  let rng = Rng.create 3 in
  check_int "p=0" 0 (Graph.size (Erdos_renyi.generate rng ~n:20 ~p:0.0));
  check_int "p=1" (20 * 19 / 2) (Graph.size (Erdos_renyi.generate rng ~n:20 ~p:1.0))

let test_gnp_density () =
  let rng = Rng.create 5 in
  let n = 100 and p = 0.1 in
  let sizes =
    List.init 20 (fun _ -> Graph.size (Erdos_renyi.generate rng ~n ~p))
  in
  let mean =
    float_of_int (List.fold_left ( + ) 0 sizes) /. 20.0
  in
  let expected = p *. float_of_int (n * (n - 1) / 2) in
  check_bool "mean edge count near expectation" true
    (abs_float (mean -. expected) < expected *. 0.15)

let test_gnp_connected () =
  let rng = Rng.create 11 in
  let g = Erdos_renyi.connected rng ~n:60 ~p:0.1 ~max_attempts:1000 in
  check_bool "connected" true (Bfs.is_connected g)

let test_gnp_connected_fails () =
  let rng = Rng.create 11 in
  Alcotest.check_raises "hopeless p"
    (Failure "Erdos_renyi.connected: exceeded max_attempts") (fun () ->
      ignore (Erdos_renyi.connected rng ~n:50 ~p:0.001 ~max_attempts:3))

let test_gnp_validation () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "bad p"
    (Invalid_argument "Erdos_renyi.generate: p outside [0,1]") (fun () ->
      ignore (Erdos_renyi.generate rng ~n:5 ~p:1.5))

(* --- GF(p) ----------------------------------------------------------------- *)

let test_is_prime () =
  check_bool "2" true (Gf.is_prime 2);
  check_bool "3" true (Gf.is_prime 3);
  check_bool "4" false (Gf.is_prime 4);
  check_bool "1" false (Gf.is_prime 1);
  check_bool "0" false (Gf.is_prime 0);
  check_bool "97" true (Gf.is_prime 97);
  check_bool "91 = 7*13" false (Gf.is_prime 91)

let test_gf_arithmetic () =
  let f = Gf.create 7 in
  check_int "add" 2 (Gf.add f 5 4);
  check_int "sub wraps" 6 (Gf.sub f 2 3);
  check_int "mul" 6 (Gf.mul f 4 5);
  check_int "pow" 1 (Gf.pow f 3 6);
  (* Fermat *)
  check_int "inv 3" 5 (Gf.inv f 3);
  (* 3*5 = 15 = 1 mod 7 *)
  Alcotest.check_raises "inv 0" Division_by_zero (fun () -> ignore (Gf.inv f 0));
  Alcotest.check_raises "not prime" (Invalid_argument "Gf.create: modulus must be prime")
    (fun () -> ignore (Gf.create 6))

let prop_gf_inverse =
  QCheck.Test.make ~name:"x * inv x = 1 in GF(p)" ~count:200
    QCheck.(pair (oneofl [ 2; 3; 5; 7; 11; 13 ]) (int_range 1 1000))
    (fun (p, x) ->
      let f = Gf.create p in
      let x = 1 + (x mod (p - 1)) in
      Gf.mul f x (Gf.inv f x) = 1)

(* --- Projective planes ------------------------------------------------------ *)

let test_pg2_structure () =
  List.iter
    (fun q ->
      let np = Projective_plane.plane_size q in
      check_int (Printf.sprintf "PG(2,%d) size" q) ((q * q) + q + 1) np;
      let g = Projective_plane.incidence q in
      check_int "order" (2 * np) (Graph.order g);
      (* (q+1)-regular. *)
      for v = 0 to Graph.order g - 1 do
        check_int "regular" (q + 1) (Graph.degree g v)
      done;
      check_int "edges" (np * (q + 1)) (Graph.size g);
      check_opt_int "girth 6" (Some 6) (Girth.girth g);
      check_bool "connected" true (Bfs.is_connected g);
      check_opt_int "diameter 3" (Some 3) (Metrics.diameter g))
    [ 2; 3; 5 ]

let test_pg2_bipartite () =
  let q = 3 in
  let np = Projective_plane.plane_size q in
  let g = Projective_plane.incidence q in
  (* No edge joins two points or two lines. *)
  Graph.iter_edges
    (fun u v ->
      check_bool "bipartite" true ((u < np && v >= np) || (v < np && u >= np)))
    g

(* --- Barabási–Albert ----------------------------------------------------------- *)

let test_ba_structure () =
  let rng = Rng.create 19 in
  let n = 60 and m = 2 in
  let g = Ncg_gen.Barabasi_albert.generate rng ~n ~m in
  check_int "order" n (Graph.order g);
  check_bool "connected" true (Bfs.is_connected g);
  (* Star seed on m+1 vertices has m edges; each of the n-m-1 newcomers
     adds exactly m edges. *)
  check_int "edges" (m + ((n - m - 1) * m)) (Graph.size g);
  (* Every newcomer has degree >= m. *)
  for v = m + 1 to n - 1 do
    check_bool "degree >= m" true (Graph.degree g v >= m)
  done

let test_ba_hubs () =
  (* Preferential attachment grows hubs: max degree far above the average. *)
  let rng = Rng.create 4 in
  let g = Ncg_gen.Barabasi_albert.generate rng ~n:200 ~m:2 in
  check_bool "has a hub" true
    (float_of_int (Metrics.max_degree g) > 3.0 *. Metrics.avg_degree g)

let test_ba_validation () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "m = 0" (Invalid_argument "Barabasi_albert.generate: need 1 <= m < n")
    (fun () -> ignore (Ncg_gen.Barabasi_albert.generate rng ~n:5 ~m:0))

(* --- Watts–Strogatz ------------------------------------------------------------- *)

let test_ws_lattice () =
  (* beta = 0: the pristine ring lattice. *)
  let rng = Rng.create 2 in
  let g = Ncg_gen.Watts_strogatz.generate rng ~n:20 ~k:4 ~beta:0.0 in
  check_int "edges" (20 * 4 / 2) (Graph.size g);
  for v = 0 to 19 do
    check_int "4-regular" 4 (Graph.degree g v)
  done;
  check_bool "clustered" true (Metrics.avg_clustering g > 0.4)

let test_ws_rewired () =
  let rng = Rng.create 3 in
  let lattice = Ncg_gen.Watts_strogatz.generate rng ~n:40 ~k:4 ~beta:0.0 in
  let rewired = Ncg_gen.Watts_strogatz.generate rng ~n:40 ~k:4 ~beta:0.3 in
  check_int "edge count preserved" (Graph.size lattice) (Graph.size rewired);
  check_bool "actually rewired" false (Graph.equal lattice rewired);
  (* Small world: rewiring shortens the diameter. *)
  match (Metrics.diameter lattice, Metrics.diameter rewired) with
  | Some dl, Some dr -> check_bool "shorter paths" true (dr < dl)
  | _ -> () (* rewired graph may disconnect; nothing to compare *)

let test_ws_validation () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "odd k"
    (Invalid_argument "Watts_strogatz.generate: k must be even and >= 2") (fun () ->
      ignore (Ncg_gen.Watts_strogatz.generate rng ~n:10 ~k:3 ~beta:0.1));
  Alcotest.check_raises "beta"
    (Invalid_argument "Watts_strogatz.generate: beta outside [0,1]") (fun () ->
      ignore (Ncg_gen.Watts_strogatz.generate rng ~n:10 ~k:2 ~beta:1.5))

(* --- High girth --------------------------------------------------------------- *)

let test_high_girth_certified () =
  let rng = Rng.create 17 in
  List.iter
    (fun (n, d, girth) ->
      let g = High_girth.generate rng ~n ~max_degree:d ~girth in
      check_bool
        (Printf.sprintf "girth >= %d" girth)
        true (Girth.girth_at_least g girth);
      check_bool "connected" true (Bfs.is_connected g);
      check_bool "degree cap respected" true (Metrics.max_degree g <= d);
      check_bool "denser than the cycle" true (Graph.size g > n))
    [ (40, 4, 6); (60, 5, 8); (80, 3, 10) ]

let test_high_girth_validation () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "girth too small"
    (Invalid_argument "High_girth.generate: need girth >= 4") (fun () ->
      ignore (High_girth.generate rng ~n:10 ~max_degree:3 ~girth:3))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "ncg_gen"
    [
      ( "classic",
        [
          Alcotest.test_case "path" `Quick test_path;
          Alcotest.test_case "cycle" `Quick test_cycle;
          Alcotest.test_case "cycle ownership" `Quick test_cycle_buys;
          Alcotest.test_case "star" `Quick test_star;
          Alcotest.test_case "complete" `Quick test_complete;
          Alcotest.test_case "grid" `Quick test_grid;
          Alcotest.test_case "hypercube" `Quick test_hypercube;
        ] );
      ( "random_tree",
        [
          Alcotest.test_case "pruefer star" `Quick test_pruefer_known;
          Alcotest.test_case "pruefer path" `Quick test_pruefer_path;
          Alcotest.test_case "pruefer validation" `Quick test_pruefer_validation;
          Alcotest.test_case "tiny trees" `Quick test_tree_tiny;
          Alcotest.test_case "is a tree" `Quick test_random_tree_is_tree;
          Alcotest.test_case "uniform on n=3" `Quick test_random_tree_uniformity;
          qt prop_random_tree_tree;
        ] );
      ( "erdos_renyi",
        [
          Alcotest.test_case "extremes" `Quick test_gnp_extremes;
          Alcotest.test_case "density" `Quick test_gnp_density;
          Alcotest.test_case "connected resampling" `Quick test_gnp_connected;
          Alcotest.test_case "max_attempts" `Quick test_gnp_connected_fails;
          Alcotest.test_case "validation" `Quick test_gnp_validation;
        ] );
      ( "gf",
        [
          Alcotest.test_case "primality" `Quick test_is_prime;
          Alcotest.test_case "arithmetic" `Quick test_gf_arithmetic;
          qt prop_gf_inverse;
        ] );
      ( "projective_plane",
        [
          Alcotest.test_case "structure" `Quick test_pg2_structure;
          Alcotest.test_case "bipartite" `Quick test_pg2_bipartite;
        ] );
      ( "barabasi_albert",
        [
          Alcotest.test_case "structure" `Quick test_ba_structure;
          Alcotest.test_case "hubs" `Quick test_ba_hubs;
          Alcotest.test_case "validation" `Quick test_ba_validation;
        ] );
      ( "watts_strogatz",
        [
          Alcotest.test_case "lattice" `Quick test_ws_lattice;
          Alcotest.test_case "rewired" `Quick test_ws_rewired;
          Alcotest.test_case "validation" `Quick test_ws_validation;
        ] );
      ( "high_girth",
        [
          Alcotest.test_case "certified girth" `Quick test_high_girth_certified;
          Alcotest.test_case "validation" `Quick test_high_girth_validation;
        ] );
    ]
