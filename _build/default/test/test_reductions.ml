(* Tests for the Section-2 dominating-set/best-response reduction. *)

module Graph = Ncg_graph.Graph
module Reductions = Ncg.Reductions
module Dominating_set = Ncg_solver.Dominating_set
module Classic = Ncg_gen.Classic

let check_int = Alcotest.(check int)
let check_int_list = Alcotest.(check (list int))

let test_entrant_on_star () =
  (* Joining a star with cheap-but-not-free edges: buy only the center. *)
  let g = Classic.star 8 in
  check_int_list "just the hub" [ 0 ]
    (Reductions.entrant_best_targets g ~alpha:(2.0 /. 8.0))

let test_entrant_large_alpha_buys_one () =
  (* Expensive edges: a single edge to a most central vertex is optimal. *)
  let g = Classic.path 7 in
  let targets = Reductions.entrant_best_targets g ~alpha:10.0 in
  check_int "one edge" 1 (List.length targets)

let test_entrant_tiny_alpha_buys_all () =
  (* Nearly free edges: eccentricity 1 wins. *)
  let g = Classic.path 5 in
  let targets = Reductions.entrant_best_targets g ~alpha:0.01 in
  check_int "all vertices" 5 (List.length targets)

let gamma g =
  match
    Dominating_set.solve
      { Dominating_set.graph = g; radius = 1; free_dominators = []; forbidden = [] }
  with
  | Some s -> List.length s
  | None -> -1

let test_mds_via_game_path () =
  (* gamma(P6) = 2; the game-side reduction must recover it. *)
  let g = Classic.path 6 in
  let ds = Reductions.dominating_set_via_game g in
  check_int "minimum size" (gamma g) (List.length ds);
  Alcotest.(check bool) "dominates" true
    (Dominating_set.dominates
       { Dominating_set.graph = g; radius = 1; free_dominators = []; forbidden = [] }
       ds)

let test_mds_via_game_cycle () =
  List.iter
    (fun n ->
      let g = Classic.cycle n in
      let ds = Reductions.dominating_set_via_game g in
      check_int (Printf.sprintf "gamma(C%d)" n) ((n + 2) / 3) (List.length ds))
    [ 7; 9; 12 ]

let test_singleton () =
  check_int_list "K1" [ 0 ] (Reductions.dominating_set_via_game (Graph.empty 1))

let prop_mds_via_game_is_minimum =
  QCheck.Test.make
    ~name:"game-recovered dominating sets are minimum on random graphs" ~count:40
    QCheck.(pair (int_range 6 16) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Ncg_prng.Rng.create seed in
      let tree = Ncg_gen.Random_tree.generate rng n in
      (* A couple of extra edges; keeps gamma < n/2 virtually always. *)
      let extra =
        List.init 2 (fun _ -> (Ncg_prng.Rng.int rng n, Ncg_prng.Rng.int rng n))
        |> List.filter (fun (a, b) -> a <> b)
      in
      let g = Graph.add_edges tree extra in
      match Reductions.dominating_set_via_game g with
      | ds ->
          List.length ds = gamma g
          && Dominating_set.dominates
               { Dominating_set.graph = g; radius = 1; free_dominators = []; forbidden = [] }
               ds
      | exception Invalid_argument _ ->
          (* Outside the reduction regime (gamma >= n/2): acceptable. *)
          gamma g * 2 >= n)

let () =
  Alcotest.run "reductions"
    [
      ( "entrant",
        [
          Alcotest.test_case "star hub" `Quick test_entrant_on_star;
          Alcotest.test_case "large alpha" `Quick test_entrant_large_alpha_buys_one;
          Alcotest.test_case "tiny alpha" `Quick test_entrant_tiny_alpha_buys_all;
        ] );
      ( "mds_via_game",
        [
          Alcotest.test_case "path" `Quick test_mds_via_game_path;
          Alcotest.test_case "cycles" `Quick test_mds_via_game_cycle;
          Alcotest.test_case "singleton" `Quick test_singleton;
          QCheck_alcotest.to_alcotest prop_mds_via_game_is_minimum;
        ] );
    ]
