(* Tests for swap deviations and swap stability. *)

module Strategy = Ncg.Strategy
module View = Ncg.View
module Swap = Ncg.Swap
module Lke = Ncg.Lke
module Rng = Ncg_prng.Rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let view_of s ~k u = View.extract s (Strategy.graph s) ~k u

let test_swap_deviations_count () =
  (* Player owns 2 of 4 possible targets in a 5-vertex full view:
     each owned target can be swapped to each of the 2 non-owned. *)
  let s = Strategy.of_buys ~n:5 [ (0, 1); (0, 2); (1, 3); (3, 4); (2, 4) ] in
  let v = view_of s ~k:10 0 in
  check_int "2 owned x 2 candidates" 4 (List.length (Swap.swap_deviations v));
  (* Each deviation keeps the edge count. *)
  List.iter
    (fun targets -> check_int "count preserved" 2 (List.length targets))
    (Swap.swap_deviations v)

let test_no_owned_no_swaps () =
  let s = Strategy.of_buys ~n:4 (Ncg_gen.Classic.star_buys 4) in
  let v = view_of s ~k:2 1 in
  check_int "leaf owns nothing" 0 (List.length (Swap.swap_deviations v))

let test_path_end_swap_unstable () =
  (* Path 0-1-2-3-4-5 with full view: player 0 owning (0,1) improves her
     eccentricity by swapping to (0,3) — swap instability. *)
  let s = Strategy.of_buys ~n:6 (List.init 5 (fun i -> (i, i + 1))) in
  check_bool "unstable" false (Swap.is_swap_stable_max ~k:100 s);
  let violations = Swap.max_swap_violations ~k:100 s in
  check_bool "player 0 flagged" true (List.mem_assoc 0 violations)

let test_path_local_swap_stable () =
  (* With k = 1 nobody can see a useful swap target. *)
  let s = Strategy.of_buys ~n:6 (List.init 5 (fun i -> (i, i + 1))) in
  check_bool "stable at k=1" true (Swap.is_swap_stable_max ~k:1 s)

let test_star_swap_stable () =
  let s = Strategy.of_buys ~n:6 (Ncg_gen.Classic.star_buys 6) in
  check_bool "max" true (Swap.is_swap_stable_max ~k:2 s);
  check_bool "sum" true (Swap.is_swap_stable_sum ~k:2 s)

let test_sum_swap_unstable () =
  (* Path, player 1 owns (1,2); full view. Swapping to (1,3) reduces her
     distance sum: 1+1+2+3 = 7 -> d(0)=1? wait player 1: distances with
     edge (1,3): 0:1, 2:2 (via 3), 3:1, 4:2 -> 6 < 7. *)
  let s = Strategy.of_buys ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  check_bool "sum swap unstable" false (Swap.is_swap_stable_sum ~k:100 s)

(* Every certified LKE must be swap stable (swaps ⊆ LKE deviations). *)
let prop_lke_implies_swap_stable =
  QCheck.Test.make ~name:"LKE implies swap stability" ~count:30
    QCheck.(
      quad (int_range 4 14) (int_range 2 4) (int_range 0 10_000)
        (float_range 0.3 4.0))
    (fun (n, k, seed, alpha) ->
      let rng = Rng.create seed in
      let g = Ncg_gen.Random_tree.generate rng n in
      let s = Strategy.random_orientation rng g in
      (* Drive to an LKE first. *)
      let r = Ncg.Dynamics.run (Ncg.Dynamics.default_config ~alpha ~k) s in
      match r.Ncg.Dynamics.outcome with
      | Ncg.Dynamics.Converged _ -> Swap.is_swap_stable_max ~k r.Ncg.Dynamics.final
      | _ -> true)

let prop_swap_violation_implies_not_lke =
  QCheck.Test.make ~name:"a swap violation falsifies the LKE" ~count:30
    QCheck.(triple (int_range 4 12) (int_range 2 4) (int_range 0 10_000))
    (fun (n, k, seed) ->
      let rng = Rng.create seed in
      let g = Ncg_gen.Random_tree.generate rng n in
      let s = Strategy.random_orientation rng g in
      (* alpha is irrelevant to swaps; test against alpha = 1. *)
      if Swap.is_swap_stable_max ~k s then true
      else not (Lke.is_lke_max ~alpha:1.0 ~k s))

let () =
  Alcotest.run "swap"
    [
      ( "deviations",
        [
          Alcotest.test_case "count" `Quick test_swap_deviations_count;
          Alcotest.test_case "no owned" `Quick test_no_owned_no_swaps;
        ] );
      ( "stability",
        [
          Alcotest.test_case "path unstable (full view)" `Quick
            test_path_end_swap_unstable;
          Alcotest.test_case "path stable (k=1)" `Quick test_path_local_swap_stable;
          Alcotest.test_case "star stable" `Quick test_star_swap_stable;
          Alcotest.test_case "sum unstable" `Quick test_sum_swap_unstable;
        ] );
      ( "relations",
        [
          QCheck_alcotest.to_alcotest prop_lke_implies_swap_stable;
          QCheck_alcotest.to_alcotest prop_swap_violation_implies_not_lke;
        ] );
    ]
