(* Tests for the markdown builder and run reports. *)

module Markdown = Ncg_reporting.Markdown
module Run_report = Ncg_reporting.Run_report
module Dynamics = Ncg.Dynamics
module Strategy = Ncg.Strategy

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let count_lines_matching pred s =
  List.length (List.filter pred (String.split_on_char '\n' s))

(* --- Markdown ------------------------------------------------------------- *)

let test_heading () =
  let md = Markdown.create () in
  Markdown.heading md 2 "Results";
  check_bool "rendered" true (contains (Markdown.to_string md) "## Results");
  let md2 = Markdown.create () in
  Markdown.heading md2 9 "clamped";
  check_bool "clamped to 6" true (contains (Markdown.to_string md2) "###### clamped")

let test_table_shape () =
  let md = Markdown.create () in
  Markdown.table md ~header:[ "a"; "b" ] [ [ "1"; "2" ]; [ "3" ] ];
  let s = Markdown.to_string md in
  check_bool "header" true (contains s "| a | b |");
  check_bool "separator" true (contains s "| --- | --- |");
  (* Short rows are padded to the header width. *)
  check_bool "padded row" true (contains s "| 3 |  |")

let test_table_escapes_pipes () =
  let md = Markdown.create () in
  Markdown.table md ~header:[ "x" ] [ [ "a|b" ] ];
  check_bool "escaped" true (contains (Markdown.to_string md) "a\\|b")

let test_code_block_fencing () =
  let md = Markdown.create () in
  Markdown.code_block md "plain text";
  let s = Markdown.to_string md in
  check_int "two fences" 2 (count_lines_matching (fun l -> l = "```") s);
  (* Text containing a triple fence gets longer fences around it. *)
  let md2 = Markdown.create () in
  Markdown.code_block md2 "a\n```\nb";
  let s2 = Markdown.to_string md2 in
  check_int "longer fences" 2 (count_lines_matching (fun l -> l = "````") s2)

let test_bullets_and_paragraphs () =
  let md = Markdown.create () in
  Markdown.paragraph md "Intro.";
  Markdown.bullet_list md [ "one"; "two" ];
  let s = Markdown.to_string md in
  check_bool "paragraph" true (contains s "Intro.");
  check_bool "bullets" true (contains s "- one" && contains s "- two")

(* --- Run reports ------------------------------------------------------------- *)

let run_small () =
  let s = Ncg.Experiment.initial_tree ~seed:4 ~n:15 in
  let config = Dynamics.default_config ~alpha:1.0 ~k:3 in
  (config, s, Dynamics.run config s)

let test_of_run_sections () =
  let config, s, result = run_small () in
  let report = Run_report.of_run ~title:"Test run" config s result in
  List.iter
    (fun needle -> check_bool needle true (contains report needle))
    [
      "# Test run";
      "## Configuration";
      "## Outcome";
      "## Per-round features";
      "## Trace";
      "alpha = 1, k = 3";
      "players: 15";
    ]

let test_of_run_feature_rows () =
  let config, s, result = run_small () in
  let report = Run_report.of_run ~title:"t" config s result in
  (* One table row per executed round (rows start with "| <round>"). *)
  let feature_rows =
    count_lines_matching
      (fun l -> String.length l > 2 && l.[0] = '|' && l.[2] >= '0' && l.[2] <= '9')
      report
  in
  check_bool "at least as many rows as rounds" true
    (feature_rows >= result.Dynamics.rounds)

let test_of_run_stable_start () =
  (* A star at alpha >= 1 doesn't move: the trace section must say so. *)
  let s = Strategy.of_buys ~n:6 (Ncg_gen.Classic.star_buys 6) in
  let config = Dynamics.default_config ~alpha:2.0 ~k:2 in
  let result = Dynamics.run config s in
  let report = Run_report.of_run ~title:"stable" config s result in
  check_bool "no moves note" true (contains report "(no moves — already stable)")

let test_of_grid () =
  let report =
    Run_report.of_grid ~title:"Grid" ~header:[ "alpha"; "quality" ]
      ~rows:[ [ "1"; "2.5" ]; [ "2"; "1.9" ] ]
  in
  check_bool "title" true (contains report "# Grid");
  check_bool "row" true (contains report "| 2 | 1.9 |")

let prop_reports_total =
  QCheck.Test.make ~name:"report generation never fails on random runs" ~count:15
    QCheck.(triple (int_range 4 14) (int_range 0 10_000) (float_range 0.3 3.0))
    (fun (n, seed, alpha) ->
      let s = Ncg.Experiment.initial_tree ~seed ~n in
      let config = Dynamics.default_config ~alpha ~k:2 in
      let result = Dynamics.run config s in
      let report = Run_report.of_run ~title:"q" config s result in
      String.length report > 100)

let () =
  Alcotest.run "reporting"
    [
      ( "markdown",
        [
          Alcotest.test_case "heading" `Quick test_heading;
          Alcotest.test_case "table shape" `Quick test_table_shape;
          Alcotest.test_case "pipe escaping" `Quick test_table_escapes_pipes;
          Alcotest.test_case "code fences" `Quick test_code_block_fencing;
          Alcotest.test_case "bullets/paragraphs" `Quick test_bullets_and_paragraphs;
        ] );
      ( "run_report",
        [
          Alcotest.test_case "sections" `Quick test_of_run_sections;
          Alcotest.test_case "feature rows" `Quick test_of_run_feature_rows;
          Alcotest.test_case "stable start" `Quick test_of_run_stable_start;
          Alcotest.test_case "grid" `Quick test_of_grid;
          QCheck_alcotest.to_alcotest prop_reports_total;
        ] );
    ]
