(* Tests for the Section 3.1 toroidal-grid construction. *)

module Graph = Ncg_graph.Graph
module Bfs = Ncg_graph.Bfs
module Metrics = Ncg_graph.Metrics
module Torus_grid = Ncg_gen.Torus_grid

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let vertex_count ~d ~ell ~deltas =
  let n_intersection = 2 * Array.fold_left ( * ) 1 deltas in
  n_intersection * (((1 lsl (d - 1)) * (ell - 1)) + 1)

let test_counts () =
  (* Paper: n = N·(2^{d-1}(ℓ-1) + 1), N = 2·Πδᵢ. *)
  List.iter
    (fun (d, ell, deltas) ->
      let t = Torus_grid.closed ~d ~ell ~deltas in
      check_int
        (Printf.sprintf "order d=%d ell=%d" d ell)
        (vertex_count ~d ~ell ~deltas)
        (Graph.order t.Torus_grid.graph))
    [
      (2, 2, [| 3; 4 |]);
      (2, 1, [| 3; 5 |]);
      (2, 3, [| 2; 6 |]);
      (3, 2, [| 2; 2; 3 |]);
    ]

let test_figure1_instance () =
  (* Figure 1: d = 2, δ = (15, 5), ℓ = 2. *)
  let t = Torus_grid.closed ~d:2 ~ell:2 ~deltas:[| 15; 5 |] in
  let n_intersection = 2 * 15 * 5 in
  check_int "intersections" n_intersection
    (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.Torus_grid.is_intersection);
  check_int "order" (n_intersection * 3) (Graph.order t.Torus_grid.graph);
  check_bool "connected" true (Bfs.is_connected t.Torus_grid.graph)

let test_degrees () =
  let t = Torus_grid.closed ~d:2 ~ell:2 ~deltas:[| 3; 4 |] in
  let g = t.Torus_grid.graph in
  Array.iteri
    (fun v is_x ->
      if is_x then check_int "intersection degree 2^d" 4 (Graph.degree g v)
      else check_int "interior degree 2" 2 (Graph.degree g v))
    t.Torus_grid.is_intersection

let test_ownership_covers_all_edges () =
  List.iter
    (fun (d, ell, deltas) ->
      let t = Torus_grid.closed ~d ~ell ~deltas in
      let g = t.Torus_grid.graph in
      let bought = Graph.of_edges ~n:(Graph.order g) t.Torus_grid.buys in
      check_bool "buys = edge set" true (Graph.equal bought g))
    [ (2, 2, [| 3; 4 |]); (2, 1, [| 3; 3 |]); (2, 4, [| 2; 3 |]) ]

let test_ownership_counts () =
  let t = Torus_grid.closed ~d:2 ~ell:3 ~deltas:[| 3; 4 |] in
  let n = Graph.order t.Torus_grid.graph in
  let counts = Array.make n 0 in
  List.iter (fun (b, _) -> counts.(b) <- counts.(b) + 1) t.Torus_grid.buys;
  Array.iteri
    (fun v is_x ->
      if is_x then check_int "intersection buys none" 0 counts.(v)
      else check_bool "interior buys 1 or 2" true (counts.(v) = 1 || counts.(v) = 2))
    t.Torus_grid.is_intersection

let test_lemma_3_3_distance_bound () =
  (* d(x,y) >= max_i min(|xi-yi|, 2 δi ℓ - |xi-yi|), strict if one endpoint
     is an intersection vertex. *)
  let t = Torus_grid.closed ~d:2 ~ell:2 ~deltas:[| 3; 4 |] in
  let g = t.Torus_grid.graph in
  let n = Graph.order g in
  for x = 0 to n - 1 do
    let dist = Bfs.distances g x in
    for y = 0 to n - 1 do
      if x <> y then begin
        let lb = Torus_grid.coordinate_distance_lower_bound t x y in
        check_bool "lower bound holds" true (dist.(y) >= lb);
        if t.Torus_grid.is_intersection.(x) || t.Torus_grid.is_intersection.(y)
        then check_bool "strict for intersections" true (dist.(y) >= lb)
      end
    done
  done

let test_corollary_3_4_diameter () =
  (* Diameter >= ℓ·δ_d. *)
  List.iter
    (fun (d, ell, deltas) ->
      let t = Torus_grid.closed ~d ~ell ~deltas in
      match Metrics.diameter t.Torus_grid.graph with
      | Some diam ->
          check_bool
            (Printf.sprintf "diam %d >= %d" diam (ell * deltas.(d - 1)))
            true
            (diam >= ell * deltas.(d - 1))
      | None -> Alcotest.fail "torus must be connected")
    [ (2, 2, [| 2; 5 |]); (2, 3, [| 2; 4 |]) ]

let test_intersection_lookup () =
  let t = Torus_grid.closed ~d:2 ~ell:2 ~deltas:[| 3; 4 |] in
  (match Torus_grid.intersection_at t [| 0; 0 |] with
  | Some v ->
      check_bool "is intersection" true t.Torus_grid.is_intersection.(v);
      Alcotest.(check (array int)) "coords" [| 0; 0 |] t.Torus_grid.coords.(v)
  | None -> Alcotest.fail "origin must exist");
  (* Coordinates are reduced modulo 2δℓ: (12, 16) = (0, 0). *)
  Alcotest.(check bool)
    "modular lookup" true
    (Torus_grid.intersection_at t [| 12; 16 |] = Torus_grid.intersection_at t [| 0; 0 |]);
  (* Mixed parity tuple is not an intersection vertex. *)
  Alcotest.(check (option int)) "bad parity" None (Torus_grid.intersection_at t [| 0; 2 |])

let test_open_grid_structure () =
  let t = Torus_grid.open_grid ~d:2 ~ell:2 ~deltas:[| 3; 3 |] in
  let g = t.Torus_grid.graph in
  check_bool "nonempty" true (Graph.order g > 0);
  (* Lemma 3.5: d(x,y) >= max_i |xi - yi| in the open grid. *)
  let n = Graph.order g in
  for x = 0 to n - 1 do
    let dist = Bfs.distances g x in
    for y = 0 to n - 1 do
      if x <> y && dist.(y) <> Bfs.unreachable then begin
        let cx = t.Torus_grid.coords.(x) and cy = t.Torus_grid.coords.(y) in
        let lb = max (abs (cx.(0) - cy.(0))) (abs (cx.(1) - cy.(1))) in
        check_bool "open-grid bound" true (dist.(y) >= lb)
      end
    done
  done

let test_open_grid_corner_degree () =
  let t = Torus_grid.open_grid ~d:2 ~ell:1 ~deltas:[| 3; 3 |] in
  let g = t.Torus_grid.graph in
  (* The corner (0,0) has a single diagonal neighbour. *)
  match Torus_grid.intersection_at t [| 0; 0 |] with
  | Some v -> check_int "corner degree" 1 (Graph.degree g v)
  | None -> Alcotest.fail "corner must exist"

let test_validation () =
  Alcotest.check_raises "small delta"
    (Invalid_argument "Torus_grid: need every delta >= 2") (fun () ->
      ignore (Torus_grid.closed ~d:2 ~ell:2 ~deltas:[| 1; 4 |]));
  Alcotest.check_raises "arity"
    (Invalid_argument "Torus_grid: deltas must have length d") (fun () ->
      ignore (Torus_grid.closed ~d:2 ~ell:2 ~deltas:[| 2 |]))

let test_params_theorem_3_12 () =
  (match Torus_grid.params_for_theorem_3_12 ~alpha:2.0 ~k:4 ~n_budget:4000 with
  | Some (d, ell, deltas) ->
      check_int "ell = ceil(alpha)" 2 ell;
      check_int "d = ceil(log2(k/l+2))" 2 d;
      check_int "deltas prefix" (4 / 2 + 1) deltas.(0);
      check_bool "last dimension longest" true (deltas.(d - 1) >= deltas.(0));
      (* The realized graph must fit the budget. *)
      let t = Torus_grid.closed ~d ~ell ~deltas in
      check_bool "fits budget" true (Graph.order t.Torus_grid.graph <= 4000)
  | None -> Alcotest.fail "params must exist for a generous budget");
  Alcotest.(check bool)
    "tiny budget fails" true
    (Torus_grid.params_for_theorem_3_12 ~alpha:2.0 ~k:4 ~n_budget:10 = None)

let test_params_theorem_4_2 () =
  match Torus_grid.params_for_theorem_4_2 ~k:2 ~n_budget:600 with
  | Some (d, ell, deltas) ->
      check_int "d" 2 d;
      check_int "ell" 2 ell;
      check_int "delta1 = ceil(k/2)+1" 2 deltas.(0);
      let t = Torus_grid.closed ~d ~ell ~deltas in
      check_int "n = 6 d1 d2" (6 * deltas.(0) * deltas.(1))
        (Graph.order t.Torus_grid.graph)
  | None -> Alcotest.fail "params must exist"

let prop_torus_connected =
  QCheck.Test.make ~name:"closed torus is always connected" ~count:20
    QCheck.(triple (int_range 2 3) (int_range 1 3) (int_range 2 4))
    (fun (d, ell, delta) ->
      let deltas = Array.make d delta in
      let t = Torus_grid.closed ~d ~ell ~deltas in
      Bfs.is_connected t.Torus_grid.graph)

let prop_torus_vertex_count =
  QCheck.Test.make ~name:"closed torus matches the paper's vertex count" ~count:20
    QCheck.(triple (int_range 2 3) (int_range 1 3) (pair (int_range 2 4) (int_range 2 5)))
    (fun (d, ell, (da, db)) ->
      let deltas = Array.init d (fun i -> if i = 0 then da else db) in
      let t = Torus_grid.closed ~d ~ell ~deltas in
      Graph.order t.Torus_grid.graph = vertex_count ~d ~ell ~deltas)

let () =
  Alcotest.run "torus_grid"
    [
      ( "structure",
        [
          Alcotest.test_case "vertex counts" `Quick test_counts;
          Alcotest.test_case "figure 1 instance" `Quick test_figure1_instance;
          Alcotest.test_case "degrees" `Quick test_degrees;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "ownership",
        [
          Alcotest.test_case "covers all edges" `Quick test_ownership_covers_all_edges;
          Alcotest.test_case "per-player counts" `Quick test_ownership_counts;
        ] );
      ( "distances",
        [
          Alcotest.test_case "lemma 3.3 bound" `Quick test_lemma_3_3_distance_bound;
          Alcotest.test_case "corollary 3.4 diameter" `Quick test_corollary_3_4_diameter;
        ] );
      ( "lookup",
        [ Alcotest.test_case "intersection_at" `Quick test_intersection_lookup ] );
      ( "open_grid",
        [
          Alcotest.test_case "lemma 3.5 bound" `Quick test_open_grid_structure;
          Alcotest.test_case "corner degree" `Quick test_open_grid_corner_degree;
        ] );
      ( "theorem_params",
        [
          Alcotest.test_case "theorem 3.12" `Quick test_params_theorem_3_12;
          Alcotest.test_case "theorem 4.2" `Quick test_params_theorem_4_2;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_torus_connected;
          QCheck_alcotest.to_alcotest prop_torus_vertex_count;
        ] );
    ]
