(* Tests for the theoretical bound formulas (Figures 3 and 4). *)

module Bounds = Ncg.Bounds

let check_bool = Alcotest.(check bool)
let checkf msg = Alcotest.(check (float 1e-9)) msg

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* --- Lower bound formulas ------------------------------------------------- *)

let test_lb_cycle () =
  checkf "n=100 alpha=1" 50.0 (Bounds.lb_cycle ~n:100 ~alpha:1.0);
  checkf "n=100 alpha=9" 10.0 (Bounds.lb_cycle ~n:100 ~alpha:9.0)

let test_lb_girth () =
  checkf "n=4096 k=2" 64.0 (Bounds.lb_girth ~n:4096 ~k:2);
  checkf "n=4096 k=4" (4096.0 ** (1.0 /. 6.0)) (Bounds.lb_girth ~n:4096 ~k:4);
  Alcotest.check_raises "k=1" (Invalid_argument "Bounds.lb_girth: need k >= 2")
    (fun () -> ignore (Bounds.lb_girth ~n:100 ~k:1))

let test_lb_torus () =
  (* k = alpha: the exponent vanishes and the bound is n / (alpha * 2^0) = n/alpha. *)
  checkf "k=alpha" 50.0 (Bounds.lb_torus ~n:100 ~alpha:2.0 ~k:2);
  check_bool "larger k weakens the bound" true
    (Bounds.lb_torus ~n:100_000 ~alpha:2.0 ~k:8
    < Bounds.lb_torus ~n:100_000 ~alpha:2.0 ~k:2)

let test_lb_monotonicity () =
  check_bool "cycle decreasing in alpha" true
    (Bounds.lb_cycle ~n:1000 ~alpha:2.0 > Bounds.lb_cycle ~n:1000 ~alpha:5.0);
  check_bool "girth decreasing in k" true
    (Bounds.lb_girth ~n:10_000 ~k:2 > Bounds.lb_girth ~n:10_000 ~k:5);
  check_bool "all increasing in n" true
    (Bounds.lb_cycle ~n:2000 ~alpha:2.0 > Bounds.lb_cycle ~n:1000 ~alpha:2.0
    && Bounds.lb_girth ~n:20_000 ~k:3 > Bounds.lb_girth ~n:10_000 ~k:3
    && Bounds.lb_torus ~n:20_000 ~alpha:2.0 ~k:4 > Bounds.lb_torus ~n:10_000 ~alpha:2.0 ~k:4)

let test_max_lower_bound_selection () =
  (* n=10^6, k=2, alpha=2: cycle = n/3 ~ 333k, girth = 1000, torus with
     k = alpha degenerates to n/alpha = 500k and wins. *)
  (match Bounds.max_lower_bound ~n:1_000_000 ~alpha:2.0 ~k:2 with
  | Some (name, v) ->
      check_bool "torus wins" true (contains name "torus");
      checkf "value" 500_000.0 v
  | None -> Alcotest.fail "bounds apply here");
  (* At alpha = 5 > k the torus bound no longer applies and the cycle
     bound n/6 wins. *)
  (match Bounds.max_lower_bound ~n:1_000_000 ~alpha:5.0 ~k:2 with
  | Some (name, v) ->
      check_bool "cycle wins" true (contains name "cycle");
      checkf "value" (1_000_000.0 /. 6.0) v
  | None -> Alcotest.fail "bounds apply here");
  (* Huge alpha, k=2: cycle bound ~ 1, girth bound n^(1/2) wins. *)
  (match Bounds.max_lower_bound ~n:1_000_000 ~alpha:999_999.0 ~k:2 with
  | Some (name, _) -> check_bool "girth wins" true (contains name "girth")
  | None -> Alcotest.fail "bounds apply here");
  (* Very large k: nothing applies. *)
  check_bool "no bound" true (Bounds.max_lower_bound ~n:1000 ~alpha:1.5 ~k:900 = None)

let test_upper_bound_positive () =
  List.iter
    (fun (n, alpha, k) ->
      let ub = Bounds.max_upper_bound ~n ~alpha ~k in
      check_bool "positive and finite" true (ub > 0.0 && Float.is_finite ub))
    [ (100, 1.0, 2); (100, 10.0, 5); (10_000, 2.0, 30); (1000, 0.5, 3) ]

let test_lb_below_ub_in_valid_regions () =
  (* Sanity: with constants 1 the implemented LB never exceeds the UB by
     more than the (dropped) constant factors — check a modest grid where
     both are defined. Tolerance factor 8 covers the Θ-constants. *)
  List.iter
    (fun (n, alpha, k) ->
      match Bounds.max_lower_bound ~n ~alpha ~k with
      | Some (_, lb) ->
          let ub = Bounds.max_upper_bound ~n ~alpha ~k in
          check_bool
            (Printf.sprintf "lb <= 8*ub at n=%d a=%.1f k=%d" n alpha k)
            true (lb <= 8.0 *. ub)
      | None -> ())
    [ (1000, 2.0, 2); (1000, 5.0, 3); (100_000, 2.0, 2) ]

(* --- Regions ------------------------------------------------------------------ *)

let test_max_regions () =
  (* k >= n: always full knowledge. *)
  check_bool "k >= n" true (Bounds.max_region ~n:100 ~alpha:2.0 ~k:1000 = Bounds.Max_full_knowledge);
  (* Small alpha below the line: region 6. *)
  check_bool "region 6" true (Bounds.max_region ~n:100 ~alpha:5.0 ~k:2 = Bounds.Max_region 6);
  (* Huge alpha, small k: region 3 (only the girth bound matters). *)
  check_bool "region 3" true
    (Bounds.max_region ~n:100 ~alpha:50.0 ~k:2 = Bounds.Max_region 3);
  (* alpha <= k-1 with k modest: torus-region side. *)
  (match Bounds.max_region ~n:1_000_000 ~alpha:2.0 ~k:8 with
  | Bounds.Max_region r -> check_bool "one of 1/4/5" true (r = 1 || r = 4 || r = 5)
  | Bounds.Max_full_knowledge -> Alcotest.fail "should not be full knowledge")

let test_sum_regions () =
  check_bool "full knowledge" true
    (Bounds.sum_region ~n:100 ~alpha:1.0 ~k:4 = Bounds.Sum_full_knowledge);
  check_bool "strong lb" true
    (Bounds.sum_region ~n:10_000 ~alpha:100.0 ~k:2 = Bounds.Sum_strong_lb);
  check_bool "girth lb" true
    (Bounds.sum_region ~n:100 ~alpha:1_000.0 ~k:3 = Bounds.Sum_girth_lb);
  check_bool "open" true (Bounds.sum_region ~n:10_000 ~alpha:100.0 ~k:4 = Bounds.Sum_open)

let test_sum_lower_bounds () =
  (* Theorem 4.2, alpha <= n: Omega(n/k). *)
  (match Bounds.sum_lower_bound ~n:10_000 ~alpha:100.0 ~k:2 with
  | Some (name, v) ->
      check_bool "torus" true (contains name "4.2");
      checkf "n/k" 5000.0 v
  | None -> Alcotest.fail "applies");
  (* alpha > n (but below k*n so the girth bound stays out) switches the
     torus bound to 1 + n^2/(k alpha). *)
  (match Bounds.sum_lower_bound ~n:100 ~alpha:150.0 ~k:2 with
  | Some (name, v) ->
      check_bool "torus branch" true (contains name "4.2");
      checkf "big alpha branch" (1.0 +. (10_000.0 /. 300.0)) v
  | None -> Alcotest.fail "applies");
  (* Once alpha >= k*n the girth bound n^{1/(2k-2)} = 10 dominates. *)
  (match Bounds.sum_lower_bound ~n:100 ~alpha:40_000.0 ~k:2 with
  | Some (name, v) ->
      check_bool "girth branch" true (contains name "4.3");
      checkf "sqrt n" 10.0 v
  | None -> Alcotest.fail "applies");
  check_bool "none when k too large" true
    (Bounds.sum_lower_bound ~n:100 ~alpha:10.0 ~k:50 = None)

(* --- Equilibrium invariants --------------------------------------------------- *)

let test_equilibrium_girth_bound_values () =
  checkf "alpha small" 3.5 (Bounds.equilibrium_girth_bound ~alpha:1.5 ~k:5);
  checkf "k binds" 6.0 (Bounds.equilibrium_girth_bound ~alpha:100.0 ~k:2)

let test_check_equilibrium_girth () =
  let module Classic = Ncg_gen.Classic in
  (* Trees always pass (no cycle). *)
  check_bool "tree" true
    (Bounds.check_equilibrium_girth (Classic.path 6) ~alpha:10.0 ~k:5);
  (* A triangle fails for alpha >= 2 (bound > 3). *)
  check_bool "triangle fails" false
    (Bounds.check_equilibrium_girth (Classic.complete 3) ~alpha:2.0 ~k:3);
  (* ... and passes for alpha <= 1 (bound = 3). *)
  check_bool "triangle ok at alpha=1" true
    (Bounds.check_equilibrium_girth (Classic.complete 3) ~alpha:1.0 ~k:3)

let test_ball_growth_diagnostics () =
  (* Star with k = 2: no vertex has view-eccentricity exactly 2 at k=2?
     Leaves do (distance 2 to other leaves). Layers from a leaf: L_1 =
     {center}. Required bound (i-1)/alpha = 0: always passes. *)
  let g = Ncg_gen.Classic.star 6 in
  let diags = Bounds.ball_growth_diagnostics g ~alpha:1.0 ~k:2 in
  check_bool "leaves diagnosed" true (List.length diags = 5);
  List.iter
    (fun (_, i, layer, required) ->
      check_bool "i = 1 layer is the center" true (i = 1 && layer = 1);
      check_bool "bound" true (float_of_int layer >= required))
    diags;
  check_bool "star passes" true (Bounds.check_ball_growth g ~alpha:1.0 ~k:2);
  (* A long path at large alpha: vertices with view-ecc k have |L_i| <= 2
     while (i-1)/alpha stays small — still passes; with alpha tiny the
     bound (i-1)/alpha explodes and the path must FAIL the check, i.e. a
     long path cannot be an equilibrium for tiny alpha and large k. *)
  let p = Ncg_gen.Classic.path 30 in
  check_bool "path fails at tiny alpha" false
    (Bounds.check_ball_growth p ~alpha:0.05 ~k:10)

(* --- Trend and tables ------------------------------------------------------------ *)

let test_fig7_trend_anchor () =
  let trend = Bounds.fig7_trend ~n:100 ~alpha:2.0 ~anchor_k:2 ~anchor_value:13.0 in
  checkf "anchored" 13.0 (trend 2);
  check_bool "finite elsewhere" true (Float.is_finite (trend 7))

let test_tables_render () =
  let t = Bounds.max_table ~n:1000 ~alphas:[ 1.0; 10.0 ] ~ks:[ 2; 5 ] in
  check_bool "header" true (contains t "MaxNCG PoA bounds, n = 1000");
  check_bool "has rows" true (contains t "region");
  let s = Bounds.sum_table ~n:1000 ~alphas:[ 1.0; 100.0 ] ~ks:[ 2; 5 ] in
  check_bool "sum header" true (contains s "SumNCG PoA bounds, n = 1000")

let prop_region_total =
  QCheck.Test.make ~name:"every (n, alpha, k) gets a region" ~count:300
    QCheck.(triple (int_range 10 100_000) (float_range 0.05 1000.0) (int_range 1 1000))
    (fun (n, alpha, k) ->
      match Bounds.max_region ~n ~alpha ~k with
      | Bounds.Max_full_knowledge -> true
      | Bounds.Max_region r -> r >= 1 && r <= 8)

let prop_upper_bound_defined =
  QCheck.Test.make ~name:"upper bound always positive" ~count:300
    QCheck.(triple (int_range 10 100_000) (float_range 0.05 1000.0) (int_range 1 1000))
    (fun (n, alpha, k) ->
      let ub = Bounds.max_upper_bound ~n ~alpha ~k in
      ub > 0.0 && not (Float.is_nan ub))

let () =
  Alcotest.run "bounds"
    [
      ( "lower_bounds",
        [
          Alcotest.test_case "cycle" `Quick test_lb_cycle;
          Alcotest.test_case "girth" `Quick test_lb_girth;
          Alcotest.test_case "torus" `Quick test_lb_torus;
          Alcotest.test_case "monotonicity" `Quick test_lb_monotonicity;
          Alcotest.test_case "selection" `Quick test_max_lower_bound_selection;
        ] );
      ( "upper_bounds",
        [
          Alcotest.test_case "positive" `Quick test_upper_bound_positive;
          Alcotest.test_case "lb vs ub" `Quick test_lb_below_ub_in_valid_regions;
        ] );
      ( "regions",
        [
          Alcotest.test_case "max regions" `Quick test_max_regions;
          Alcotest.test_case "sum regions" `Quick test_sum_regions;
          Alcotest.test_case "sum lower bounds" `Quick test_sum_lower_bounds;
        ] );
      ( "equilibrium_invariants",
        [
          Alcotest.test_case "girth bound values" `Quick test_equilibrium_girth_bound_values;
          Alcotest.test_case "girth check" `Quick test_check_equilibrium_girth;
          Alcotest.test_case "ball growth" `Quick test_ball_growth_diagnostics;
        ] );
      ( "rendering",
        [
          Alcotest.test_case "fig7 trend" `Quick test_fig7_trend_anchor;
          Alcotest.test_case "tables" `Quick test_tables_render;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_region_total;
          QCheck_alcotest.to_alcotest prop_upper_bound_defined;
        ] );
    ]
