(* Tests for the deterministic PRNG. *)

module Splitmix64 = Ncg_prng.Splitmix64
module Rng = Ncg_prng.Rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Known-answer test: reference outputs of SplitMix64 with seed 1234567,
   from the published reference implementation. *)
let test_splitmix_reference () =
  let t = Splitmix64.create 1234567L in
  let expected =
    [ 0x599ed017fb08fc85L; 0x2c73f08458540fa5L; 0x883ebce5a3f27c77L ]
  in
  List.iter
    (fun e -> Alcotest.(check int64) "reference output" e (Splitmix64.next t))
    expected

let test_splitmix_zero_seed () =
  (* Seed 0 first outputs: reference value. *)
  let t = Splitmix64.create 0L in
  Alcotest.(check int64) "seed 0 first" 0xe220a8397b1dcdafL (Splitmix64.next t)

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let xs = List.init 50 (fun _ -> Rng.int a 1000) in
  let ys = List.init 50 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed same stream" xs ys

let test_copy_independent () =
  let a = Rng.create 7 in
  ignore (Rng.int a 10);
  let b = Rng.copy a in
  check_int "copies agree" (Rng.int a 1000000) (Rng.int b 1000000)

let test_split_diverges () =
  let a = Rng.create 7 in
  let child = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int a 1000000) in
  let ys = List.init 20 (fun _ -> Rng.int child 1000000) in
  check_bool "streams differ" true (xs <> ys)

let test_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 7 in
    check_bool "in range" true (x >= 0 && x < 7)
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_in_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 200 do
    let x = Rng.int_in_range rng ~lo:(-5) ~hi:5 in
    check_bool "in [-5,5]" true (x >= -5 && x <= 5)
  done

let test_int_covers_all_values () =
  let rng = Rng.create 11 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Rng.int rng 5) <- true
  done;
  check_bool "all residues hit" true (Array.for_all Fun.id seen)

let test_float_range () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let x = Rng.float rng in
    check_bool "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_float_mean () =
  let rng = Rng.create 5 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.float rng
  done;
  let mean = !sum /. float_of_int n in
  check_bool "mean near 1/2" true (abs_float (mean -. 0.5) < 0.02)

let test_bernoulli_extremes () =
  let rng = Rng.create 1 in
  for _ = 1 to 100 do
    check_bool "p=0 never" false (Rng.bernoulli rng 0.0)
  done;
  for _ = 1 to 100 do
    check_bool "p=1 always" true (Rng.bernoulli rng 1.0)
  done

let test_shuffle_permutation () =
  let rng = Rng.create 9 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_sample () =
  let rng = Rng.create 13 in
  for _ = 1 to 50 do
    let s = Rng.sample rng ~n:30 ~k:10 in
    check_int "size" 10 (Array.length s);
    let l = Array.to_list s in
    Alcotest.(check (list int)) "sorted distinct" (List.sort_uniq compare l) l;
    List.iter (fun x -> check_bool "range" true (x >= 0 && x < 30)) l
  done;
  check_int "k = n" 5 (Array.length (Rng.sample rng ~n:5 ~k:5));
  check_int "k = 0" 0 (Array.length (Rng.sample rng ~n:5 ~k:0));
  Alcotest.check_raises "k > n" (Invalid_argument "Rng.sample: need 0 <= k <= n")
    (fun () -> ignore (Rng.sample rng ~n:3 ~k:4))

let sample_uniformity_prop =
  QCheck.Test.make ~name:"sample covers all elements over many draws" ~count:5
    QCheck.(int_range 1 100)
    (fun seed ->
      let rng = Rng.create seed in
      let seen = Array.make 10 false in
      for _ = 1 to 200 do
        Array.iter (fun x -> seen.(x) <- true) (Rng.sample rng ~n:10 ~k:3)
      done;
      Array.for_all Fun.id seen)

(* --- xoshiro256++ --------------------------------------------------------- *)

module Xoshiro = Ncg_prng.Xoshiro256pp

let test_xoshiro_deterministic () =
  let a = Xoshiro.create 42L and b = Xoshiro.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Xoshiro.next a) (Xoshiro.next b)
  done

let test_xoshiro_differs_from_splitmix () =
  let x = Xoshiro.create 42L and s = Splitmix64.create 42L in
  let xs = List.init 10 (fun _ -> Xoshiro.next x) in
  let ss = List.init 10 (fun _ -> Splitmix64.next s) in
  check_bool "different families" true (xs <> ss)

let test_xoshiro_copy () =
  let a = Xoshiro.create 7L in
  ignore (Xoshiro.next a);
  let b = Xoshiro.copy a in
  Alcotest.(check int64) "copies agree" (Xoshiro.next a) (Xoshiro.next b)

let test_xoshiro_uniform_int () =
  let t = Xoshiro.create 3L in
  let seen = Array.make 6 false in
  for _ = 1 to 600 do
    let x = Xoshiro.uniform_int t 6 in
    check_bool "in range" true (x >= 0 && x < 6);
    seen.(x) <- true
  done;
  check_bool "all residues" true (Array.for_all Fun.id seen);
  Alcotest.check_raises "bound 0"
    (Invalid_argument "Xoshiro256pp.uniform_int: bound must be positive") (fun () ->
      ignore (Xoshiro.uniform_int t 0))

let test_xoshiro_mean () =
  let t = Xoshiro.create 11L in
  let n = 20_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Xoshiro.uniform_int t 1000
  done;
  let mean = float_of_int !sum /. float_of_int n in
  check_bool "mean near 499.5" true (abs_float (mean -. 499.5) < 15.0)

(* PRNG-independence of a statistical conclusion: uniform random trees on
   3 labelled vertices are equidistributed under both generator families
   (Prüfer decoding consumes one uniform draw; drive it with each). *)
let test_family_agreement_on_tree_distribution () =
  let count_with draw =
    let counts = Array.make 3 0 in
    for _ = 1 to 3000 do
      let g = Ncg_gen.Random_tree.decode_pruefer ~n:3 [| draw () |] in
      let center =
        if Ncg_graph.Graph.degree g 0 = 2 then 0
        else if Ncg_graph.Graph.degree g 1 = 2 then 1
        else 2
      in
      counts.(center) <- counts.(center) + 1
    done;
    counts
  in
  let rng = Rng.create 5 in
  let xos = Xoshiro.create 5L in
  let a = count_with (fun () -> Rng.int rng 3) in
  let b = count_with (fun () -> Xoshiro.uniform_int xos 3) in
  Array.iteri
    (fun i ca ->
      check_bool "families agree within noise" true (abs (ca - b.(i)) < 300))
    a

let () =
  Alcotest.run "ncg_prng"
    [
      ( "splitmix64",
        [
          Alcotest.test_case "reference vector" `Quick test_splitmix_reference;
          Alcotest.test_case "zero seed vector" `Quick test_splitmix_zero_seed;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "split diverges" `Quick test_split_diverges;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int_in_range" `Quick test_int_in_range;
          Alcotest.test_case "int covers residues" `Quick test_int_covers_all_values;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "float mean" `Quick test_float_mean;
          Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
          Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "sample" `Quick test_sample;
          QCheck_alcotest.to_alcotest sample_uniformity_prop;
        ] );
      ( "xoshiro256pp",
        [
          Alcotest.test_case "deterministic" `Quick test_xoshiro_deterministic;
          Alcotest.test_case "distinct family" `Quick test_xoshiro_differs_from_splitmix;
          Alcotest.test_case "copy" `Quick test_xoshiro_copy;
          Alcotest.test_case "uniform int" `Quick test_xoshiro_uniform_int;
          Alcotest.test_case "mean" `Quick test_xoshiro_mean;
          Alcotest.test_case "family-independent statistics" `Quick
            test_family_agreement_on_tree_distribution;
        ] );
    ]
