(* Tests for the text chart renderer. *)

module Ascii_chart = Ncg_stats.Ascii_chart

let check_bool = Alcotest.(check bool)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let count_char c s =
  String.fold_left (fun acc x -> if x = c then acc + 1 else acc) 0 s

let test_empty () =
  Alcotest.(check string) "placeholder" "(no data)\n" (Ascii_chart.render []);
  Alcotest.(check string) "all empty" "(no data)\n"
    (Ascii_chart.render [ { Ascii_chart.label = "a"; points = [] } ])

let test_single_series () =
  let s =
    Ascii_chart.render ~width:20 ~height:5
      [ { Ascii_chart.label = "line"; points = [ (0.0, 0.0); (1.0, 1.0); (2.0, 2.0) ] } ]
  in
  check_bool "legend" true (contains s "* line");
  Alcotest.(check int) "three markers" 3 (count_char '*' s - 1)
(* -1: the legend uses the marker too *)

let test_axis_labels () =
  let s =
    Ascii_chart.render ~width:30 ~height:6
      [ { Ascii_chart.label = "x"; points = [ (2.0, 10.0); (8.0, 50.0) ] } ]
  in
  check_bool "ymax" true (contains s "50");
  check_bool "ymin" true (contains s "10");
  check_bool "xmin" true (contains s "2");
  check_bool "xmax" true (contains s "8")

let test_two_series_two_markers () =
  let s =
    Ascii_chart.render ~width:20 ~height:5
      [
        { Ascii_chart.label = "a"; points = [ (0.0, 0.0) ] };
        { Ascii_chart.label = "b"; points = [ (1.0, 1.0) ] };
      ]
  in
  check_bool "marker a" true (contains s "*");
  check_bool "marker b" true (contains s "o");
  check_bool "legend a" true (contains s "* a");
  check_bool "legend b" true (contains s "o b")

let test_constant_series () =
  (* Degenerate y-range must not crash or divide by zero. *)
  let s =
    Ascii_chart.render
      [ { Ascii_chart.label = "flat"; points = [ (0.0, 5.0); (1.0, 5.0) ] } ]
  in
  check_bool "renders" true (String.length s > 0)

let test_log_axis () =
  let s =
    Ascii_chart.render ~logx:true
      [ { Ascii_chart.label = "k"; points = [ (2.0, 1.0); (1000.0, 2.0) ] } ]
  in
  check_bool "renders with labels" true (contains s "2" && contains s "1e+03");
  Alcotest.check_raises "nonpositive x"
    (Invalid_argument "Ascii_chart.render: logx needs x > 0") (fun () ->
      ignore
        (Ascii_chart.render ~logx:true
           [ { Ascii_chart.label = "bad"; points = [ (0.0, 1.0) ] } ]))

let prop_never_crashes =
  QCheck.Test.make ~name:"render total on random finite input" ~count:100
    QCheck.(
      list
        (pair (float_range (-100.0) 100.0)
           (float_range (-100.0) 100.0)))
    (fun points ->
      let s = Ascii_chart.render [ { Ascii_chart.label = "r"; points } ] in
      String.length s > 0)

let () =
  Alcotest.run "ascii_chart"
    [
      ( "render",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "single series" `Quick test_single_series;
          Alcotest.test_case "axis labels" `Quick test_axis_labels;
          Alcotest.test_case "two series" `Quick test_two_series_two_markers;
          Alcotest.test_case "constant series" `Quick test_constant_series;
          Alcotest.test_case "log axis" `Quick test_log_axis;
          QCheck_alcotest.to_alcotest prop_never_crashes;
        ] );
    ]
