(* Tests for the exhaustive tiny-game analyzer — machine-checked instances
   of the paper's structural claims about NE vs LKE. *)

module Enumerate = Ncg.Enumerate
module Game = Ncg.Game
module Strategy = Ncg.Strategy
module Lke = Ncg.Lke

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_profile_count () =
  let a = Enumerate.analyze Game.Max ~alpha:2.0 ~k:2 ~n:3 in
  check_int "4^3 profiles" 64 a.Enumerate.profiles;
  let a4 = Enumerate.analyze Game.Max ~alpha:2.0 ~k:2 ~n:4 in
  check_int "8^4 profiles" 4096 a4.Enumerate.profiles

let test_guard () =
  Alcotest.check_raises "guard" (Invalid_argument "Enumerate.analyze: n exceeds the guard")
    (fun () -> ignore (Enumerate.analyze Game.Max ~alpha:1.0 ~k:2 ~n:5));
  Alcotest.check_raises "n too small"
    (Invalid_argument "Enumerate.analyze: need n >= 2") (fun () ->
      ignore (Enumerate.analyze Game.Max ~alpha:1.0 ~k:2 ~n:1))

let test_equilibria_exist () =
  let a = Enumerate.analyze Game.Max ~alpha:2.0 ~k:3 ~n:3 in
  check_bool "some NE" true (a.Enumerate.nash <> []);
  check_bool "some LKE" true (a.Enumerate.lke <> []);
  check_bool "optimum finite" true (Float.is_finite a.Enumerate.optimum)

let test_nash_subset_of_lke () =
  (* The paper's Section 1 claim, exhaustively at n = 3 over regimes. *)
  List.iter
    (fun (variant, alpha, k) ->
      let a = Enumerate.analyze variant ~alpha ~k ~n:3 in
      check_bool
        (Printf.sprintf "NE ⊆ LKE (alpha=%g k=%d)" alpha k)
        true
        (Enumerate.nash_subset_of_lke a))
    [
      (Game.Max, 0.5, 1); (Game.Max, 2.0, 1); (Game.Max, 2.0, 2);
      (Game.Max, 5.0, 3); (Game.Sum, 0.5, 1); (Game.Sum, 2.0, 2);
    ]

let test_poa_lke_at_least_poa_nash () =
  List.iter
    (fun (alpha, k) ->
      let a = Enumerate.analyze Game.Max ~alpha ~k ~n:3 in
      match (Enumerate.poa_lke a, Enumerate.poa_nash a) with
      | Some pl, Some pn ->
          check_bool
            (Printf.sprintf "PoA_LKE >= PoA_NE (alpha=%g k=%d)" alpha k)
            true (pl >= pn -. 1e-9)
      | _, None -> () (* no NE: nothing to compare *)
      | None, Some _ -> Alcotest.fail "an NE must also be an LKE")
    [ (0.5, 1); (1.0, 1); (2.0, 1); (2.0, 2); (5.0, 1) ]

let test_full_knowledge_sets_coincide () =
  (* With k >= n every view is the whole graph: LKE = NE exactly. *)
  let a = Enumerate.analyze Game.Max ~alpha:2.0 ~k:10 ~n:3 in
  check_int "same count" (List.length a.Enumerate.nash) (List.length a.Enumerate.lke);
  check_bool "same sets" true
    (List.for_all (fun s -> List.exists (Strategy.equal s) a.Enumerate.nash) a.Enumerate.lke)

let test_lke_monotone_in_k () =
  (* Smaller k = fewer available deviations and a more pessimistic worst
     case, so the LKE set can only grow as k shrinks. *)
  let lke_at k =
    (Enumerate.analyze Game.Max ~alpha:1.5 ~k ~n:4).Enumerate.lke
  in
  let l1 = lke_at 1 and l2 = lke_at 2 and l3 = lke_at 3 in
  check_bool "LKE(2) ⊆ LKE(1)" true
    (List.for_all (fun s -> List.exists (Strategy.equal s) l1) l2);
  check_bool "LKE(3) ⊆ LKE(2)" true
    (List.for_all (fun s -> List.exists (Strategy.equal s) l2) l3)

let test_optimum_matches_closed_form () =
  (* The exhaustive optimum equals the star/clique closed form used as the
     quality reference (for alpha in the regimes where those are optimal). *)
  List.iter
    (fun alpha ->
      let a = Enumerate.analyze Game.Max ~alpha ~k:2 ~n:4 in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "opt alpha=%g" alpha)
        (Game.social_optimum Game.Max ~alpha ~n:4)
        a.Enumerate.optimum)
    [ 0.5; 1.0; 2.0; 4.0 ]

let test_enumerated_equilibria_pass_engine_checks () =
  (* Cross-validate the enumerator against the solver-based LKE check. *)
  let a = Enumerate.analyze Game.Max ~alpha:2.0 ~k:2 ~n:4 in
  List.iter
    (fun s -> check_bool "engine agrees" true (Lke.is_lke_max ~alpha:2.0 ~k:2 s))
    a.Enumerate.lke;
  (* And that non-LKE connected profiles fail the engine check: sample the
     empty... rather, a path profile known to be improvable at full k. *)
  check_int "counts agree with engine" (List.length a.Enumerate.lke)
    (List.length (List.filter (Lke.is_lke_max ~alpha:2.0 ~k:2) a.Enumerate.lke))

let () =
  Alcotest.run "enumerate"
    [
      ( "mechanics",
        [
          Alcotest.test_case "profile count" `Quick test_profile_count;
          Alcotest.test_case "guard" `Quick test_guard;
          Alcotest.test_case "equilibria exist" `Quick test_equilibria_exist;
        ] );
      ( "paper_claims",
        [
          Alcotest.test_case "NE subset of LKE" `Quick test_nash_subset_of_lke;
          Alcotest.test_case "PoA ordering" `Quick test_poa_lke_at_least_poa_nash;
          Alcotest.test_case "full knowledge: sets coincide" `Quick
            test_full_knowledge_sets_coincide;
          Alcotest.test_case "LKE monotone in k" `Slow test_lke_monotone_in_k;
          Alcotest.test_case "optimum matches closed form" `Slow
            test_optimum_matches_closed_form;
          Alcotest.test_case "engine cross-validation" `Slow
            test_enumerated_equilibria_pass_engine_checks;
        ] );
    ]
