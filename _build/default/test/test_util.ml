(* Tests for Ncg_util: bitsets, int queues, array helpers. *)

module Bitset = Ncg_util.Bitset
module Int_queue = Ncg_util.Int_queue
module Arrayx = Ncg_util.Arrayx

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_int_list = Alcotest.(check (list int))

(* --- Bitset ------------------------------------------------------------ *)

let test_bitset_empty () =
  let s = Bitset.create 100 in
  check_int "cardinal" 0 (Bitset.cardinal s);
  check_bool "is_empty" true (Bitset.is_empty s);
  check_bool "mem" false (Bitset.mem s 42)

let test_bitset_add_remove () =
  let s = Bitset.create 200 in
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 199;
  check_int "cardinal after adds" 4 (Bitset.cardinal s);
  check_bool "mem 63" true (Bitset.mem s 63);
  check_bool "mem 64" true (Bitset.mem s 64);
  Bitset.remove s 63;
  check_bool "removed" false (Bitset.mem s 63);
  check_int "cardinal after remove" 3 (Bitset.cardinal s);
  (* Removing an absent element is a no-op. *)
  Bitset.remove s 63;
  check_int "idempotent remove" 3 (Bitset.cardinal s)

let test_bitset_add_idempotent () =
  let s = Bitset.create 10 in
  Bitset.add s 5;
  Bitset.add s 5;
  check_int "double add" 1 (Bitset.cardinal s)

let test_bitset_fill () =
  (* Capacity not a multiple of the word size: the tail must be masked. *)
  List.iter
    (fun n ->
      let s = Bitset.create n in
      Bitset.fill s;
      check_int (Printf.sprintf "fill %d" n) n (Bitset.cardinal s);
      if n > 0 then check_bool "last mem" true (Bitset.mem s (n - 1)))
    [ 0; 1; 62; 63; 64; 65; 127; 200 ]

let test_bitset_bounds () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "negative" (Invalid_argument "Bitset: index out of bounds")
    (fun () -> Bitset.add s (-1));
  Alcotest.check_raises "too large" (Invalid_argument "Bitset: index out of bounds")
    (fun () -> ignore (Bitset.mem s 10))

let test_bitset_set_ops () =
  let a = Bitset.of_list 100 [ 1; 2; 3; 70 ] in
  let b = Bitset.of_list 100 [ 2; 3; 4; 99 ] in
  check_int_list "union" [ 1; 2; 3; 4; 70; 99 ] (Bitset.to_list (Bitset.union a b));
  check_int_list "inter" [ 2; 3 ] (Bitset.to_list (Bitset.inter a b));
  check_int_list "diff" [ 1; 70 ] (Bitset.to_list (Bitset.diff a b));
  check_int "inter_cardinal" 2 (Bitset.inter_cardinal a b);
  check_int "diff_cardinal" 2 (Bitset.diff_cardinal a b);
  check_bool "subset no" false (Bitset.subset a b);
  check_bool "subset yes" true (Bitset.subset (Bitset.inter a b) a);
  check_bool "disjoint no" false (Bitset.disjoint a b);
  check_bool "disjoint yes" true
    (Bitset.disjoint (Bitset.of_list 100 [ 1 ]) (Bitset.of_list 100 [ 2 ]))

let test_bitset_choose_from () =
  let s = Bitset.of_list 300 [ 5; 64; 250 ] in
  Alcotest.(check (option int)) "from 0" (Some 5) (Bitset.choose_from s 0);
  Alcotest.(check (option int)) "from 6" (Some 64) (Bitset.choose_from s 6);
  Alcotest.(check (option int)) "from 65" (Some 250) (Bitset.choose_from s 65);
  Alcotest.(check (option int)) "from 251" None (Bitset.choose_from s 251);
  check_int "min_elt" 5 (Bitset.min_elt s)

let test_bitset_iter_order () =
  let s = Bitset.of_list 500 [ 400; 3; 77; 78; 0 ] in
  check_int_list "sorted" [ 0; 3; 77; 78; 400 ] (Bitset.to_list s)

let test_bitset_copy_independent () =
  let a = Bitset.of_list 50 [ 1; 2 ] in
  let b = Bitset.copy a in
  Bitset.add b 3;
  check_bool "original untouched" false (Bitset.mem a 3);
  check_bool "copy changed" true (Bitset.mem b 3)

(* Property: bitset ops agree with a sorted-list model. *)
let bitset_model_prop =
  QCheck.Test.make ~name:"bitset agrees with list-set model" ~count:200
    QCheck.(pair (list (int_bound 99)) (list (int_bound 99)))
    (fun (xs, ys) ->
      let module S = Set.Make (Int) in
      let sa = S.of_list xs and sb = S.of_list ys in
      let a = Bitset.of_list 100 xs and b = Bitset.of_list 100 ys in
      Bitset.to_list (Bitset.union a b) = S.elements (S.union sa sb)
      && Bitset.to_list (Bitset.inter a b) = S.elements (S.inter sa sb)
      && Bitset.to_list (Bitset.diff a b) = S.elements (S.diff sa sb)
      && Bitset.cardinal a = S.cardinal sa
      && Bitset.subset a b = S.subset sa sb)

(* --- Int_queue ---------------------------------------------------------- *)

let test_queue_fifo () =
  let q = Int_queue.create () in
  List.iter (Int_queue.push q) [ 1; 2; 3 ];
  check_int "len" 3 (Int_queue.length q);
  check_int "pop1" 1 (Int_queue.pop q);
  check_int "pop2" 2 (Int_queue.pop q);
  Int_queue.push q 4;
  check_int "pop3" 3 (Int_queue.pop q);
  check_int "pop4" 4 (Int_queue.pop q);
  check_bool "empty" true (Int_queue.is_empty q)

let test_queue_grow () =
  let q = Int_queue.create ~initial_capacity:2 () in
  for i = 0 to 99 do
    Int_queue.push q i
  done;
  for i = 0 to 99 do
    check_int "order preserved" i (Int_queue.pop q)
  done

let test_queue_wraparound () =
  (* Interleave pushes and pops so head moves around the ring. *)
  let q = Int_queue.create ~initial_capacity:4 () in
  for i = 0 to 3 do
    Int_queue.push q i
  done;
  check_int "a" 0 (Int_queue.pop q);
  check_int "b" 1 (Int_queue.pop q);
  for i = 4 to 9 do
    Int_queue.push q i
  done;
  for i = 2 to 9 do
    check_int "wrapped order" i (Int_queue.pop q)
  done

let test_queue_pop_empty () =
  let q = Int_queue.create () in
  Alcotest.check_raises "pop empty" (Invalid_argument "Int_queue.pop: empty")
    (fun () -> ignore (Int_queue.pop q))

let test_queue_clear () =
  let q = Int_queue.create () in
  Int_queue.push q 1;
  Int_queue.clear q;
  check_bool "cleared" true (Int_queue.is_empty q);
  Int_queue.push q 9;
  check_int "usable after clear" 9 (Int_queue.pop q)

let queue_model_prop =
  QCheck.Test.make ~name:"int_queue agrees with Stdlib.Queue" ~count:200
    QCheck.(list (pair bool small_nat))
    (fun ops ->
      let q = Int_queue.create ~initial_capacity:1 () in
      let model = Queue.create () in
      List.for_all
        (fun (is_push, x) ->
          if is_push || Queue.is_empty model then begin
            Int_queue.push q x;
            Queue.push x model;
            true
          end
          else Int_queue.pop q = Queue.pop model)
        ops
      && Int_queue.length q = Queue.length model)

(* --- Arrayx ------------------------------------------------------------- *)

let test_arrayx () =
  check_int "max" 9 (Arrayx.max_elt [| 3; 9; 1 |]);
  check_int "min" 1 (Arrayx.min_elt [| 3; 9; 1 |]);
  check_int "sum" 13 (Arrayx.sum [| 3; 9; 1 |]);
  check_int "argmax first" 1 (Arrayx.argmax [| 3; 9; 9 |]);
  check_int "count" 2 (Arrayx.count (fun x -> x > 2) [| 3; 9; 1 |]);
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Arrayx.mean [| 1.0; 2.0; 3.0 |]);
  let a = [| 1; 2 |] in
  Arrayx.swap a 0 1;
  check_int "swap" 2 a.(0)

let test_arrayx_empty () =
  Alcotest.check_raises "max empty" (Invalid_argument "Arrayx.max_elt: empty")
    (fun () -> ignore (Arrayx.max_elt [||]))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "ncg_util"
    [
      ( "bitset",
        [
          Alcotest.test_case "empty" `Quick test_bitset_empty;
          Alcotest.test_case "add/remove" `Quick test_bitset_add_remove;
          Alcotest.test_case "add idempotent" `Quick test_bitset_add_idempotent;
          Alcotest.test_case "fill masks tail word" `Quick test_bitset_fill;
          Alcotest.test_case "bounds checked" `Quick test_bitset_bounds;
          Alcotest.test_case "set operations" `Quick test_bitset_set_ops;
          Alcotest.test_case "choose_from" `Quick test_bitset_choose_from;
          Alcotest.test_case "iter in order" `Quick test_bitset_iter_order;
          Alcotest.test_case "copy independent" `Quick test_bitset_copy_independent;
          qt bitset_model_prop;
        ] );
      ( "int_queue",
        [
          Alcotest.test_case "fifo" `Quick test_queue_fifo;
          Alcotest.test_case "grow" `Quick test_queue_grow;
          Alcotest.test_case "wraparound" `Quick test_queue_wraparound;
          Alcotest.test_case "pop empty raises" `Quick test_queue_pop_empty;
          Alcotest.test_case "clear" `Quick test_queue_clear;
          qt queue_model_prop;
        ] );
      ( "arrayx",
        [
          Alcotest.test_case "basics" `Quick test_arrayx;
          Alcotest.test_case "empty raises" `Quick test_arrayx_empty;
        ] );
    ]
