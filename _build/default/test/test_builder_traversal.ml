(* Tests for Builder, Traversal and the extended Metrics. *)

module Graph = Ncg_graph.Graph
module Builder = Ncg_graph.Builder
module Traversal = Ncg_graph.Traversal
module Metrics = Ncg_graph.Metrics
module Classic = Ncg_gen.Classic

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let checkf msg = Alcotest.(check (float 1e-9)) msg

(* --- Builder ------------------------------------------------------------ *)

let test_builder_basics () =
  let b = Builder.create 5 in
  check_int "order" 5 (Builder.order b);
  Builder.add_edge b 0 1;
  Builder.add_edge b 1 2;
  Builder.add_edge b 0 1;
  (* duplicate: no-op *)
  check_int "size" 2 (Builder.size b);
  check_bool "mem" true (Builder.mem_edge b 1 0);
  check_int "degree" 2 (Builder.degree b 1);
  Builder.remove_edge b 0 1;
  check_int "size after remove" 1 (Builder.size b);
  Builder.remove_edge b 0 1;
  (* absent: no-op *)
  check_int "idempotent" 1 (Builder.size b)

let test_builder_to_graph () =
  let b = Builder.create 4 in
  Builder.add_edge b 0 1;
  Builder.add_edge b 2 3;
  let g = Builder.to_graph b in
  check_bool "same edges" true
    (Graph.equal g (Graph.of_edges ~n:4 [ (0, 1); (2, 3) ]));
  (* Builder stays usable after freezing. *)
  Builder.add_edge b 1 2;
  check_int "still mutable" 3 (Builder.size b)

let test_builder_of_graph_roundtrip () =
  let g = Classic.cycle 7 in
  check_bool "roundtrip" true (Graph.equal g (Builder.to_graph (Builder.of_graph g)))

let test_builder_validation () =
  let b = Builder.create 3 in
  Alcotest.check_raises "self loop" (Invalid_argument "Builder.add_edge: self loop")
    (fun () -> Builder.add_edge b 1 1);
  Alcotest.check_raises "range" (Invalid_argument "Builder: vertex out of range")
    (fun () -> Builder.add_edge b 0 3)

let test_builder_neighbors () =
  let b = Builder.create 4 in
  Builder.add_edge b 0 1;
  Builder.add_edge b 0 2;
  Alcotest.(check (list int)) "neighbors" [ 1; 2 ]
    (List.sort compare (Builder.neighbors b 0));
  let count = ref 0 in
  Builder.iter_neighbors (fun _ -> incr count) b 0;
  check_int "iter count" 2 !count

(* --- Traversal ----------------------------------------------------------- *)

let test_dfs_preorder () =
  (* Star from center: preorder = 0 then leaves in increasing order. *)
  let g = Classic.star 4 in
  Alcotest.(check (list int)) "star" [ 0; 1; 2; 3 ] (Traversal.dfs_preorder g 0);
  (* Path from one end. *)
  let p = Classic.path 4 in
  Alcotest.(check (list int)) "path" [ 0; 1; 2; 3 ] (Traversal.dfs_preorder p 0);
  (* Unreachable vertices are excluded. *)
  let g2 = Graph.of_edges ~n:4 [ (0, 1) ] in
  Alcotest.(check (list int)) "component only" [ 0; 1 ] (Traversal.dfs_preorder g2 0)

let test_bipartite () =
  check_bool "even cycle" true (Traversal.is_bipartite (Classic.cycle 6));
  check_bool "odd cycle" false (Traversal.is_bipartite (Classic.cycle 5));
  check_bool "tree" true (Traversal.is_bipartite (Classic.path 7));
  check_bool "complete K3" false (Traversal.is_bipartite (Classic.complete 3));
  check_bool "empty" true (Traversal.is_bipartite (Graph.empty 3))

let test_bipartition_valid () =
  let g = Classic.cycle 8 in
  match Traversal.bipartition g with
  | Some colors ->
      Graph.iter_edges
        (fun u v -> check_bool "proper colouring" true (colors.(u) <> colors.(v)))
        g
  | None -> Alcotest.fail "C8 is bipartite"

let test_pg_incidence_bipartite () =
  check_bool "PG(2,3) incidence bipartite" true
    (Traversal.is_bipartite (Ncg_gen.Projective_plane.incidence 3))

let test_articulation_points () =
  (* Path: all interior vertices are cut vertices. *)
  Alcotest.(check (list int)) "path" [ 1; 2; 3 ]
    (Traversal.articulation_points (Classic.path 5));
  (* Cycle: none. *)
  Alcotest.(check (list int)) "cycle" [] (Traversal.articulation_points (Classic.cycle 6));
  (* Star: only the center. *)
  Alcotest.(check (list int)) "star" [ 0 ] (Traversal.articulation_points (Classic.star 5));
  (* Two triangles sharing vertex 2. *)
  let bowtie =
    Graph.of_edges ~n:5 [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (4, 2) ]
  in
  Alcotest.(check (list int)) "bowtie" [ 2 ] (Traversal.articulation_points bowtie)

let test_bridges () =
  Alcotest.(check (list (pair int int))) "path" [ (0, 1); (1, 2); (2, 3) ]
    (Traversal.bridges (Classic.path 4));
  Alcotest.(check (list (pair int int))) "cycle" [] (Traversal.bridges (Classic.cycle 5));
  (* Two triangles joined by one edge. *)
  let g =
    Graph.of_edges ~n:6 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3); (2, 3) ]
  in
  Alcotest.(check (list (pair int int))) "joined triangles" [ (2, 3) ] (Traversal.bridges g)

(* Reference implementation: v is a cut vertex iff deleting it increases
   the number of connected components. *)
let is_cut_reference g v =
  let rest = List.filter (fun x -> x <> v) (List.init (Graph.order g) Fun.id) in
  let without_v, _ = Ncg_graph.Subgraph.induced g rest in
  Ncg_graph.Components.count without_v > Ncg_graph.Components.count g

let prop_articulation_matches_reference =
  QCheck.Test.make ~name:"articulation points match removal-based reference" ~count:60
    QCheck.(pair (int_range 3 15) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Ncg_prng.Rng.create seed in
      let tree = Ncg_gen.Random_tree.generate rng n in
      (* Sprinkle a few extra edges so not everything is a cut vertex. *)
      let extra =
        List.init (n / 3) (fun _ ->
            (Ncg_prng.Rng.int rng n, Ncg_prng.Rng.int rng n))
        |> List.filter (fun (a, b) -> a <> b)
      in
      let g = Graph.add_edges tree extra in
      let computed = Traversal.articulation_points g in
      let expected =
        List.filter (is_cut_reference g) (List.init n Fun.id)
      in
      computed = expected)

let prop_bridges_sound =
  QCheck.Test.make ~name:"removing a bridge disconnects its endpoints" ~count:60
    QCheck.(pair (int_range 3 15) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Ncg_prng.Rng.create seed in
      let g = Ncg_gen.Random_tree.generate rng n in
      List.for_all
        (fun (u, v) ->
          let edges' = List.filter (fun e -> e <> (u, v)) (Graph.edges g) in
          let g' = Graph.of_edges ~n edges' in
          not (Ncg_graph.Components.same_component g' u v))
        (Traversal.bridges g))

(* --- Extended metrics ------------------------------------------------------- *)

let test_density () =
  checkf "complete" 1.0 (Metrics.density (Classic.complete 6));
  checkf "empty" 0.0 (Metrics.density (Graph.empty 6));
  checkf "half" (2.0 /. 5.0) (Metrics.density (Classic.path 5));
  checkf "singleton" 0.0 (Metrics.density (Graph.empty 1))

let test_degree_histogram () =
  let g = Classic.star 5 in
  Alcotest.(check (array int)) "star" [| 0; 4; 0; 0; 1 |] (Metrics.degree_histogram g);
  Alcotest.(check (array int)) "empty" [| 3 |] (Metrics.degree_histogram (Graph.empty 3))

let test_clustering () =
  checkf "complete" 1.0 (Metrics.avg_clustering (Classic.complete 5));
  checkf "tree" 0.0 (Metrics.avg_clustering (Classic.path 6));
  (* Triangle with a pendant: vertices 0,1,2 clustered 1.0; vertex 2 has
     degree 3 with one closed pair of three. *)
  let g = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 0); (2, 3) ] in
  checkf "local of 0" 1.0 (Metrics.local_clustering g 0);
  checkf "local of 2" (1.0 /. 3.0) (Metrics.local_clustering g 2);
  checkf "local of pendant" 0.0 (Metrics.local_clustering g 3)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "builder_traversal"
    [
      ( "builder",
        [
          Alcotest.test_case "basics" `Quick test_builder_basics;
          Alcotest.test_case "to_graph" `Quick test_builder_to_graph;
          Alcotest.test_case "of_graph roundtrip" `Quick test_builder_of_graph_roundtrip;
          Alcotest.test_case "validation" `Quick test_builder_validation;
          Alcotest.test_case "neighbors" `Quick test_builder_neighbors;
        ] );
      ( "traversal",
        [
          Alcotest.test_case "dfs preorder" `Quick test_dfs_preorder;
          Alcotest.test_case "bipartite" `Quick test_bipartite;
          Alcotest.test_case "bipartition valid" `Quick test_bipartition_valid;
          Alcotest.test_case "PG incidence" `Quick test_pg_incidence_bipartite;
          Alcotest.test_case "articulation points" `Quick test_articulation_points;
          Alcotest.test_case "bridges" `Quick test_bridges;
          qt prop_articulation_matches_reference;
          qt prop_bridges_sound;
        ] );
      ( "metrics_extra",
        [
          Alcotest.test_case "density" `Quick test_density;
          Alcotest.test_case "degree histogram" `Quick test_degree_histogram;
          Alcotest.test_case "clustering" `Quick test_clustering;
        ] );
    ]
