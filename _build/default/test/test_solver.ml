(* Tests for the exact set-cover / dominating-set solver (the Gurobi
   replacement). *)

module Bitset = Ncg_util.Bitset
module Set_cover = Ncg_solver.Set_cover
module Dominating_set = Ncg_solver.Dominating_set
module Graph = Ncg_graph.Graph
module Classic = Ncg_gen.Classic
module Rng = Ncg_prng.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let instance ?pre_covered universe sets =
  {
    Set_cover.universe;
    sets = Array.of_list (List.map (Bitset.of_list universe) sets);
    pre_covered = Option.map (Bitset.of_list universe) pre_covered;
  }

let cardinality inst =
  match Set_cover.solve inst with
  | Some s -> s.Set_cover.cardinality
  | None -> -1

(* --- Set cover ----------------------------------------------------------- *)

let test_trivial () =
  check_int "one set covers" 1 (cardinality (instance 3 [ [ 0; 1; 2 ] ]));
  check_int "empty universe" 0 (cardinality (instance 0 []))

let test_partition () =
  check_int "needs both" 2 (cardinality (instance 4 [ [ 0; 1 ]; [ 2; 3 ]; [ 1; 2 ] ]))

let test_greedy_trap () =
  (* Classic instance where greedy picks the big set but optimum is 2:
     universe {0..5}, sets {0,1,2,3} (greedy bait), {0,1,4}? Use the
     standard trap: optimal = rows, greedy = the big striped set. *)
  let inst =
    instance 6 [ [ 0; 1; 2; 3 ]; [ 0; 2; 4 ]; [ 1; 3; 5 ]; [ 4 ]; [ 5 ] ]
  in
  check_int "exact finds 2" 2 (cardinality inst);
  match Set_cover.greedy inst with
  | Some g -> check_bool "greedy feasible" true (Set_cover.is_cover inst g.Set_cover.chosen)
  | None -> Alcotest.fail "greedy must succeed"

let test_infeasible () =
  Alcotest.(check bool)
    "element 2 uncoverable" true
    (Set_cover.solve (instance 3 [ [ 0; 1 ] ]) = None)

let test_pre_covered () =
  let inst = instance ~pre_covered:[ 2 ] 3 [ [ 0; 1 ] ] in
  check_int "pre-covered rescues" 1 (cardinality inst);
  let inst_all = instance ~pre_covered:[ 0; 1; 2 ] 3 [] in
  check_int "fully pre-covered" 0 (cardinality inst_all)

let test_max_size () =
  let inst = instance 4 [ [ 0; 1 ]; [ 2; 3 ]; [ 1; 2 ] ] in
  Alcotest.(check bool) "cap 1 infeasible" true (Set_cover.solve ~max_size:1 inst = None);
  check_int "cap 2 ok" 2
    (match Set_cover.solve ~max_size:2 inst with
    | Some s -> s.Set_cover.cardinality
    | None -> -1)

let test_duplicate_sets () =
  (* Equal candidate sets: dominance reduction must keep exactly one. *)
  let inst = instance 2 [ [ 0; 1 ]; [ 0; 1 ]; [ 0 ] ] in
  check_int "one suffices" 1 (cardinality inst)

let test_solution_indices_original () =
  (* Chosen indices must refer to the original [sets] array even after
     dominance elimination reorders candidates internally. *)
  let inst = instance 3 [ [ 0 ]; [ 0; 1; 2 ] ] in
  match Set_cover.solve inst with
  | Some { Set_cover.chosen = [ i ]; _ } -> check_int "picks the big set" 1 i
  | _ -> Alcotest.fail "expected a single-set solution"

(* Exhaustive reference solver for small instances. *)
let brute_force inst =
  let n_sets = Array.length inst.Set_cover.sets in
  let best = ref max_int in
  for mask = 0 to (1 lsl n_sets) - 1 do
    let chosen = List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init n_sets Fun.id) in
    if Set_cover.is_cover inst chosen then best := min !best (List.length chosen)
  done;
  if !best = max_int then None else Some !best

let prop_matches_brute_force =
  QCheck.Test.make ~name:"B&B matches brute force on random instances" ~count:200
    QCheck.(
      pair (int_range 1 8)
        (list_of_size (Gen.int_range 1 8) (list_of_size (Gen.int_range 0 5) (int_bound 7))))
    (fun (universe, raw_sets) ->
      let sets = List.map (List.filter (fun x -> x < universe)) raw_sets in
      let inst = instance universe sets in
      let expected = brute_force inst in
      let got = Option.map (fun s -> s.Set_cover.cardinality) (Set_cover.solve inst) in
      got = expected)

let test_dp_basics () =
  check_int "partition" 2
    (match Set_cover.solve_dp (instance 4 [ [ 0; 1 ]; [ 2; 3 ]; [ 1; 2 ] ]) with
    | Some s -> s.Set_cover.cardinality
    | None -> -1);
  Alcotest.(check bool) "infeasible" true (Set_cover.solve_dp (instance 3 [ [ 0 ] ]) = None);
  check_int "pre-covered only" 0
    (match Set_cover.solve_dp (instance ~pre_covered:[ 0; 1 ] 2 []) with
    | Some s -> s.Set_cover.cardinality
    | None -> -1);
  Alcotest.check_raises "guard"
    (Invalid_argument "Set_cover.solve_dp: universe too large for the DP") (fun () ->
      ignore (Set_cover.solve_dp (instance 23 [ [ 0 ] ])))

let prop_dp_matches_branch_and_bound =
  QCheck.Test.make ~name:"DP and B&B find the same optimum" ~count:200
    QCheck.(
      pair (int_range 1 12)
        (list_of_size (Gen.int_range 1 10) (list_of_size (Gen.int_range 0 8) (int_bound 11))))
    (fun (universe, raw_sets) ->
      let sets = List.map (List.filter (fun x -> x < universe)) raw_sets in
      let inst = instance universe sets in
      let card = function
        | Some (s : Set_cover.solution) -> Some s.Set_cover.cardinality
        | None -> None
      in
      let dp = Set_cover.solve_dp inst in
      (* The DP solution must itself be a feasible cover. *)
      (match dp with
      | Some s -> Set_cover.is_cover inst s.Set_cover.chosen
      | None -> true)
      && card (Set_cover.solve inst) = card dp)

let prop_greedy_feasible =
  QCheck.Test.make ~name:"greedy returns feasible covers when exact does" ~count:200
    QCheck.(
      pair (int_range 1 10)
        (list_of_size (Gen.int_range 1 10) (list_of_size (Gen.int_range 0 6) (int_bound 9))))
    (fun (universe, raw_sets) ->
      let sets = List.map (List.filter (fun x -> x < universe)) raw_sets in
      let inst = instance universe sets in
      match (Set_cover.greedy inst, Set_cover.solve inst) with
      | Some g, Some s ->
          Set_cover.is_cover inst g.Set_cover.chosen
          && g.Set_cover.cardinality >= s.Set_cover.cardinality
      | None, None -> true
      | _ -> false)

(* --- Dominating set ------------------------------------------------------- *)

let test_mds_star () =
  let p = { Dominating_set.graph = Classic.star 8; radius = 1; free_dominators = []; forbidden = [] } in
  match Dominating_set.solve p with
  | Some [ 0 ] -> ()
  | Some other -> Alcotest.failf "expected center, got %d picks" (List.length other)
  | None -> Alcotest.fail "star must be dominable"

let test_mds_path () =
  (* P6 has domination number 2. *)
  let p = { Dominating_set.graph = Classic.path 6; radius = 1; free_dominators = []; forbidden = [] } in
  match Dominating_set.solve p with
  | Some chosen ->
      check_int "gamma(P6) = 2" 2 (List.length chosen);
      check_bool "dominates" true (Dominating_set.dominates p chosen)
  | None -> Alcotest.fail "path must be dominable"

let test_mds_cycle_values () =
  (* gamma(C_n) = ceil(n/3). *)
  List.iter
    (fun n ->
      let p = { Dominating_set.graph = Classic.cycle n; radius = 1; free_dominators = []; forbidden = [] } in
      match Dominating_set.solve p with
      | Some chosen -> check_int (Printf.sprintf "gamma(C%d)" n) ((n + 2) / 3) (List.length chosen)
      | None -> Alcotest.fail "cycle must be dominable")
    [ 3; 4; 5; 6; 7; 9; 10 ]

let test_mds_radius () =
  (* Radius 2 on P5: the center covers everything; on P6 (radius 3) two
     vertices are needed. *)
  let solve_path n =
    let p = { Dominating_set.graph = Classic.path n; radius = 2; free_dominators = []; forbidden = [] } in
    match Dominating_set.solve p with
    | Some chosen -> List.length chosen
    | None -> -1
  in
  check_int "distance-2 domination of P5" 1 (solve_path 5);
  check_int "distance-2 domination of P6" 2 (solve_path 6)

let test_mds_radius_zero () =
  (* Radius 0: everyone must be picked (minus free). *)
  let p = { Dominating_set.graph = Classic.path 4; radius = 0; free_dominators = [ 1 ]; forbidden = [] } in
  match Dominating_set.solve p with
  | Some chosen -> check_int "all but free" 3 (List.length chosen)
  | None -> Alcotest.fail "must be dominable"

let test_mds_free_dominators () =
  let p = { Dominating_set.graph = Classic.star 8; radius = 1; free_dominators = [ 0 ]; forbidden = [] } in
  match Dominating_set.solve p with
  | Some [] -> ()
  | Some _ -> Alcotest.fail "free center should dominate everything"
  | None -> Alcotest.fail "must be dominable"

let test_mds_forbidden () =
  (* Star with forbidden center: every leaf must be bought. *)
  let p = { Dominating_set.graph = Classic.star 5; radius = 1; free_dominators = []; forbidden = [ 0 ] } in
  match Dominating_set.solve p with
  | Some chosen -> check_bool "several picks" true (List.length chosen >= 3)
  | None -> Alcotest.fail "leaves can self-dominate"

let test_mds_free_and_forbidden_interplay () =
  (* Path 0-1-2-3-4: vertex 0 dominates for free, vertices 1 and 2 are
     forbidden; cover {2,3,4} needs a dominator among {3,4}: vertex 3. *)
  let p =
    {
      Dominating_set.graph = Classic.path 5;
      radius = 1;
      free_dominators = [ 0 ];
      forbidden = [ 1; 2 ];
    }
  in
  (match Dominating_set.solve p with
  | Some chosen ->
      check_int "single pick" 1 (List.length chosen);
      Alcotest.(check bool) "picks 3" true (chosen = [ 3 ]);
      Alcotest.(check bool) "dominates" true (Dominating_set.dominates p chosen)
  | None -> Alcotest.fail "feasible");
  (* Forbidding everything not already covered makes it infeasible. *)
  let impossible =
    {
      Dominating_set.graph = Classic.path 5;
      radius = 1;
      free_dominators = [];
      forbidden = [ 0; 1; 2; 3; 4 ];
    }
  in
  Alcotest.(check bool) "all forbidden infeasible" true
    (Dominating_set.solve impossible = None)

let test_mds_disconnected () =
  (* Two components: need one dominator per component. *)
  let g = Graph.of_edges ~n:6 [ (0, 1); (1, 2); (3, 4); (4, 5) ] in
  let p = { Dominating_set.graph = g; radius = 1; free_dominators = []; forbidden = [] } in
  match Dominating_set.solve p with
  | Some chosen -> check_int "one per component" 2 (List.length chosen)
  | None -> Alcotest.fail "must be dominable"

let prop_mds_on_random_graphs =
  QCheck.Test.make ~name:"exact MDS <= greedy MDS, both dominating" ~count:100
    QCheck.(pair (int_range 2 12) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let g = Ncg_gen.Random_tree.generate rng n in
      let p = { Dominating_set.graph = g; radius = 1; free_dominators = []; forbidden = [] } in
      match (Dominating_set.solve p, Dominating_set.greedy p) with
      | Some exact, Some greedy ->
          Dominating_set.dominates p exact
          && Dominating_set.dominates p greedy
          && List.length exact <= List.length greedy
      | _ -> false)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "ncg_solver"
    [
      ( "set_cover",
        [
          Alcotest.test_case "trivial" `Quick test_trivial;
          Alcotest.test_case "partition" `Quick test_partition;
          Alcotest.test_case "greedy trap" `Quick test_greedy_trap;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "pre-covered" `Quick test_pre_covered;
          Alcotest.test_case "max_size" `Quick test_max_size;
          Alcotest.test_case "duplicate sets" `Quick test_duplicate_sets;
          Alcotest.test_case "original indices" `Quick test_solution_indices_original;
          Alcotest.test_case "dp basics" `Quick test_dp_basics;
          qt prop_matches_brute_force;
          qt prop_dp_matches_branch_and_bound;
          qt prop_greedy_feasible;
        ] );
      ( "dominating_set",
        [
          Alcotest.test_case "star" `Quick test_mds_star;
          Alcotest.test_case "path" `Quick test_mds_path;
          Alcotest.test_case "cycles" `Quick test_mds_cycle_values;
          Alcotest.test_case "radius 2" `Quick test_mds_radius;
          Alcotest.test_case "radius 0" `Quick test_mds_radius_zero;
          Alcotest.test_case "free dominators" `Quick test_mds_free_dominators;
          Alcotest.test_case "forbidden" `Quick test_mds_forbidden;
          Alcotest.test_case "free+forbidden interplay" `Quick
            test_mds_free_and_forbidden_interplay;
          Alcotest.test_case "disconnected" `Quick test_mds_disconnected;
          qt prop_mds_on_random_graphs;
        ] );
    ]
