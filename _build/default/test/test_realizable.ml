(* Tests for realizable-network generation — the Σ|σ_u of Eq. (3) — and
   the sharpness of Propositions 2.1 / 2.2 against them. *)

module Graph = Ncg_graph.Graph
module Bfs = Ncg_graph.Bfs
module Strategy = Ncg.Strategy
module View = Ncg.View
module Realizable = Ncg.Realizable
module Lke = Ncg.Lke
module Rng = Ncg_prng.Rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let path_strategy n = Strategy.of_buys ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let view_of s ~k u = View.extract s (Strategy.graph s) ~k u

let test_extend_zero () =
  let s = path_strategy 6 in
  let v = view_of s ~k:2 0 in
  let r = Realizable.extend (Rng.create 1) v ~extra:0 in
  check_bool "identity" true (Graph.equal r.Realizable.graph v.View.graph);
  check_bool "realizable" true (Realizable.is_realizable v r.Realizable.graph)

let test_extend_properties () =
  let s = path_strategy 8 in
  let v = view_of s ~k:2 3 in
  let rng = Rng.create 7 in
  for extra = 1 to 10 do
    let r = Realizable.extend rng v ~extra in
    check_int "order" (View.size v + extra) (Graph.order r.Realizable.graph);
    check_bool "realizable" true (Realizable.is_realizable v r.Realizable.graph);
    (* All invisible vertices are beyond distance k from the player. *)
    let dist = Bfs.distances r.Realizable.graph v.View.player in
    for w = r.Realizable.view_size to Graph.order r.Realizable.graph - 1 do
      check_bool "invisible" true
        (dist.(w) = Bfs.unreachable || dist.(w) > v.View.k)
    done
  done

let test_extend_no_frontier () =
  (* Full-knowledge view of a short path: no frontier, no extension. *)
  let s = path_strategy 4 in
  let v = view_of s ~k:100 0 in
  Alcotest.check_raises "no frontier"
    (Invalid_argument "Realizable.extend: view has no frontier") (fun () ->
      ignore (Realizable.extend (Rng.create 1) v ~extra:1))

let test_attach_chain () =
  let s = path_strategy 8 in
  let v = view_of s ~k:2 3 in
  let anchor = List.hd (View.frontier v) in
  let r = Realizable.attach_chain v ~anchor ~length:5 in
  check_bool "realizable" true (Realizable.is_realizable v r.Realizable.graph);
  (* The chain extends distances by 1, 2, ... behind the anchor. *)
  let dist = Bfs.distances r.Realizable.graph v.View.player in
  let base = r.Realizable.view_size in
  for j = 0 to 4 do
    check_int "chain distance" (v.View.k + j + 1) dist.(base + j)
  done;
  Alcotest.check_raises "bad anchor"
    (Invalid_argument "Realizable.attach_chain: anchor must be a frontier vertex")
    (fun () -> ignore (Realizable.attach_chain v ~anchor:v.View.player ~length:2))

let test_not_realizable_detection () =
  (* Adding an edge inside the ball breaks realizability. *)
  let s = path_strategy 8 in
  let v = view_of s ~k:2 3 in
  let tampered = Graph.add_edges v.View.graph [ (0, View.size v - 1) ] in
  check_bool "tampered ball rejected" false (Realizable.is_realizable v tampered)

(* Prop 2.2 sharpness: a deviation that pushes a frontier vertex beyond k
   has delta_sum = infinity, and indeed its realized cost difference grows
   without bound as chains are attached behind that vertex. *)
let test_prop_2_2_sharpness () =
  (* Path 0-1-2-3-4, player 2 owns (2,3); k=2, frontier = {0, 4}. Dropping
     (2,3) and buying nothing disconnects; instead swap: buy (2,4)?? 4 is
     at distance 2 = k: buying it is fine. The interesting deviation:
     drop (2,3), buy (2,4): then 3 sits at distance 2 via 4... and the
     frontier vertex 4 gets distance 1. But consider dropping (2,3) and
     buying (2,0): vertex 3 and 4 become unreachable in H' -> delta
     infinite; any realizable network with a long chain behind frontier
     vertex 4 realizes an arbitrarily large actual cost. *)
  let s = Strategy.of_buys ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  let v = view_of s ~k:2 2 in
  let zero = List.hd (View.of_host v [ 0 ]) in
  let deviation = [ zero ] in
  check_bool "delta_sum infinite" true
    (Lke.delta_sum ~alpha:1.0 v deviation = infinity);
  (* Realize networks with growing chains behind frontier vertex 4 and
     measure the player's true cost under the deviation: it must grow. *)
  let four = List.hd (View.of_host v [ 4 ]) in
  let cost_with_chain length =
    let r = Realizable.attach_chain v ~anchor:four ~length in
    let n = Graph.order r.Realizable.graph in
    (* Build the deviated network: the player's edges in the extension are
       replaced by the deviation (host ids of the extension = view ids). *)
    let edges =
      List.filter
        (fun (a, b) -> a <> v.View.player && b <> v.View.player)
        (Graph.edges r.Realizable.graph)
    in
    let in_edges = List.map (fun w -> (w, v.View.player)) v.View.in_buyers in
    let dev_edges = List.map (fun t -> (v.View.player, t)) deviation in
    let g' = Graph.of_edges ~n (in_edges @ dev_edges @ edges) in
    Bfs.sum_distances g' v.View.player
  in
  match (cost_with_chain 2, cost_with_chain 20) with
  | Some short, Some long ->
      check_bool "cost grows with the invisible chain" true (long > short + 15)
  | _ ->
      (* The deviation disconnects 3 and 4 entirely in this instance —
         also an unbounded (infinite) realized cost, consistent with
         delta = infinity. *)
      ()

(* Prop 2.1 against random realizable extensions: for every deviation the
   realized Max cost change on any extension is at most delta_max. *)
let prop_2_1_on_extensions =
  QCheck.Test.make ~name:"Prop 2.1 holds on random realizable extensions" ~count:100
    QCheck.(
      quad (int_range 4 14) (int_range 1 3) (int_range 0 100_000) (int_range 0 8))
    (fun (n, k, seed, extra) ->
      let rng = Rng.create seed in
      let g = Ncg_gen.Random_tree.generate rng n in
      let s = Strategy.random_orientation rng g in
      let u = Rng.int rng n in
      let v = View.extract s (Strategy.graph s) ~k u in
      if View.frontier v = [] then true
      else begin
        let r = Realizable.extend rng v ~extra in
        if not (Realizable.is_realizable v r.Ncg.Realizable.graph) then false
        else begin
          (* Random deviation within the view. *)
          let nv = View.size v in
          let count = Rng.int rng 3 in
          let targets =
            List.sort_uniq compare
              (List.filter
                 (fun x -> x <> v.View.player)
                 (List.init count (fun _ -> Rng.int rng nv)))
          in
          let delta = Lke.delta_max ~alpha:1.0 v targets in
          (* Realized cost change on the extension. *)
          let big = r.Ncg.Realizable.graph in
          let nb = Graph.order big in
          let strip =
            List.filter
              (fun (a, b) -> a <> v.View.player && b <> v.View.player)
              (Graph.edges big)
          in
          let in_edges = List.map (fun w -> (w, v.View.player)) v.View.in_buyers in
          let before =
            Graph.of_edges ~n:nb
              (List.map (fun t -> (v.View.player, t)) v.View.owned @ in_edges @ strip)
          in
          let after =
            Graph.of_edges ~n:nb
              (List.map (fun t -> (v.View.player, t)) targets @ in_edges @ strip)
          in
          match
            (Bfs.eccentricity before v.View.player, Bfs.eccentricity after v.View.player)
          with
          | Some e0, Some e1 ->
              let change =
                (1.0 *. float_of_int (List.length targets - List.length v.View.owned))
                +. float_of_int (e1 - e0)
              in
              change <= delta +. 1e-9
          | _, None -> true (* infinite realized cost, delta must be inf *)
          | None, _ -> true (* extension disconnected before deviation: skip *)
        end
      end)

let () =
  Alcotest.run "realizable"
    [
      ( "extend",
        [
          Alcotest.test_case "zero extra" `Quick test_extend_zero;
          Alcotest.test_case "properties" `Quick test_extend_properties;
          Alcotest.test_case "no frontier" `Quick test_extend_no_frontier;
          Alcotest.test_case "attach chain" `Quick test_attach_chain;
          Alcotest.test_case "detects tampering" `Quick test_not_realizable_detection;
        ] );
      ( "propositions",
        [
          Alcotest.test_case "Prop 2.2 sharpness" `Quick test_prop_2_2_sharpness;
          QCheck_alcotest.to_alcotest prop_2_1_on_extensions;
        ] );
    ]
