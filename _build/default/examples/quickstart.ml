(* Quickstart: build a tiny locality-based network creation game, inspect a
   player's view, compute her exact best response, and run the round-robin
   dynamics to a Local Knowledge Equilibrium.

   Run with:  dune exec examples/quickstart.exe *)

module Strategy = Ncg.Strategy
module View = Ncg.View
module Best_response = Ncg.Best_response
module Dynamics = Ncg.Dynamics
module Game = Ncg.Game
module Lke = Ncg.Lke

let () =
  (* A path 0-1-2-3-4-5 where player i buys the edge towards i+1. *)
  let n = 6 in
  let strategy = Strategy.of_buys ~n (List.init (n - 1) (fun i -> (i, i + 1))) in
  let g = Strategy.graph strategy in
  let alpha = 1.0 and k = 2 in

  Printf.printf "Initial network: path on %d players, alpha = %g, k = %d\n" n alpha k;
  Printf.printf "%s\n" (Ncg_graph.Pretty.to_adjacency_string g);

  (* Player 0 only knows her 2-neighbourhood. *)
  let view = View.extract strategy g ~k 0 in
  Printf.printf "Player 0 sees %d of %d vertices.\n" (View.size view) n;
  Printf.printf "Her current (view-evaluated) cost: %g\n"
    (Best_response.current_cost ~alpha view);

  (* Exact best response on the view (Proposition 2.1 + the Section 5.3
     dominating-set reduction). *)
  let br = Best_response.compute ~alpha view in
  Printf.printf "Her best response buys %d edge(s) for cost %g\n"
    (List.length br.Best_response.targets)
    br.Best_response.cost;

  (* Round-robin best-response dynamics until an LKE. *)
  let config = Dynamics.default_config ~alpha ~k in
  let result = Dynamics.run config strategy in
  (match result.Dynamics.outcome with
  | Dynamics.Converged r -> Printf.printf "Converged after %d round(s).\n" (r - 1)
  | Dynamics.Cycle_detected r -> Printf.printf "Best-response cycle at round %d!\n" r
  | Dynamics.Max_rounds_exceeded -> Printf.printf "Did not converge.\n");

  let final = result.Dynamics.final in
  Printf.printf "Final network:\n%s" (Ncg_graph.Pretty.to_adjacency_string (Strategy.graph final));
  Printf.printf "Certified LKE: %b\n" (Lke.is_lke_max ~alpha ~k final);
  match Game.quality Game.Max ~alpha final with
  | Some q -> Printf.printf "Quality of equilibrium (social cost / OPT): %.3f\n" q
  | None -> Printf.printf "Disconnected?!\n"
