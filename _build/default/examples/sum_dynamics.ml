(* SumNCG dynamics under local knowledge — the direction the paper leaves
   to future work (its experiments are MaxNCG-only, Section 5). Our exact
   branch-and-bound best-response engine makes small SumNCG instances
   tractable, and the run below makes the paper's "dyscrasia" concrete:
   SumNCG players are more conservative than MaxNCG players because any
   deviation that pushes a frontier vertex farther could hide unboundedly
   many invisible vertices behind it (Proposition 2.2).

   Run with:  dune exec examples/sum_dynamics.exe *)

module Strategy = Ncg.Strategy
module Dynamics = Ncg.Dynamics
module Game = Ncg.Game
module Experiment = Ncg.Experiment

let run variant ~alpha ~k s =
  let config =
    {
      (Dynamics.default_config ~alpha ~k) with
      Dynamics.variant;
      sum_mode = `Branch_and_bound 34;
      max_rounds = 50;
    }
  in
  let r = Dynamics.run config s in
  let moves = r.Dynamics.total_moves in
  let quality =
    match Game.quality variant ~alpha r.Dynamics.final with
    | Some q -> q
    | None -> nan
  in
  (moves, quality)

let () =
  let n = 20 and alpha = 2.0 in
  Printf.printf
    "Max vs Sum dynamics from the same %d-vertex random trees (alpha = %g)\n\n" n alpha;
  Printf.printf "%4s %18s %18s %18s %18s\n" "k" "Max moves" "Max quality" "Sum moves"
    "Sum quality";
  List.iter
    (fun k ->
      let max_moves = ref 0 and sum_moves = ref 0 in
      let max_q = ref 0.0 and sum_q = ref 0.0 in
      let trials = 4 in
      for i = 1 to trials do
        let s = Experiment.initial_tree ~seed:(100 + i) ~n in
        let m, q = run Game.Max ~alpha ~k s in
        max_moves := !max_moves + m;
        max_q := !max_q +. q;
        let m, q = run Game.Sum ~alpha ~k s in
        sum_moves := !sum_moves + m;
        sum_q := !sum_q +. q
      done;
      let f = float_of_int trials in
      Printf.printf "%4d %18.1f %18.2f %18.1f %18.2f\n"
        k
        (float_of_int !max_moves /. f)
        (!max_q /. f)
        (float_of_int !sum_moves /. f)
        (!sum_q /. f))
    [ 2; 3; 4 ];
  print_newline ();
  print_endline
    "Reading: at k = 2 neither game moves — every useful SumNCG deviation";
  print_endline
    "touches the view frontier and is vetoed by the worst-case rule of";
  print_endline
    "Proposition 2.2, and MaxNCG cannot shrink a view-eccentricity of 2";
  print_endline
    "for this alpha. Once k >= 3 the picture flips: SumNCG players move a";
  print_endline
    "lot (every unit of distance saved is an improvement, and they drive";
  print_endline
    "the network to the optimal star), while MaxNCG players only move when";
  print_endline "the *maximum* distance drops, so they stop far earlier."
