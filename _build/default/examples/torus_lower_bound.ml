(* The paper's headline lower-bound construction (Section 3.1): build the
   stretched toroidal grid, certify that it is a Local Knowledge
   Equilibrium for both games, and compare its social cost with the
   optimum — the experimentally realized Theorem 3.12 / Theorem 4.2 gaps.

   Run with:  dune exec examples/torus_lower_bound.exe *)

module Graph = Ncg_graph.Graph
module Metrics = Ncg_graph.Metrics
module Strategy = Ncg.Strategy
module Game = Ncg.Game
module Lke = Ncg.Lke
module Bounds = Ncg.Bounds
module Torus_grid = Ncg_gen.Torus_grid

let () =
  let alpha = 2.0 and k = 2 in
  Printf.printf "=== Theorem 3.12 (MaxNCG): stretched torus, alpha=%g k=%d ===\n" alpha k;
  (* ell = ceil alpha = 2, d = 2, delta_1 = ceil(k/ell)+1 = 2. *)
  let t = Torus_grid.closed ~d:2 ~ell:2 ~deltas:[| 2; 6 |] in
  let g = t.Torus_grid.graph in
  let n = Graph.order g in
  let s = Strategy.of_buys ~n t.Torus_grid.buys in
  Printf.printf "n = %d vertices, m = %d edges, diameter = %s\n" n (Graph.size g)
    (match Metrics.diameter g with Some d -> string_of_int d | None -> "inf");

  (* Certify the equilibrium with the exact best-response engine. *)
  let is_lke = Lke.is_lke_max ~alpha ~k s in
  Printf.printf "MaxNCG LKE certified by exact best responses: %b\n" is_lke;

  (match Game.quality Game.Max ~alpha s with
  | Some q ->
      Printf.printf "Quality (social cost / OPT) = %.2f\n" q;
      Printf.printf "Theory (Theorem 3.12, constants=1): Omega(%.2f)\n"
        (Bounds.lb_torus ~n ~alpha ~k)
  | None -> print_endline "disconnected?!");

  (* The same graph is NOT stable once players see the whole network. *)
  let full = Lke.is_lke_max ~alpha ~k:1000 s in
  Printf.printf "Still an equilibrium under full knowledge? %b\n\n" full;

  Printf.printf "=== Theorem 4.2 (SumNCG): same torus, alpha >= 4k^3 ===\n";
  let alpha_sum = 33.0 in
  let t2 = Torus_grid.closed ~d:2 ~ell:2 ~deltas:[| 2; 6 |] in
  let n2 = Graph.order t2.Torus_grid.graph in
  let s2 = Strategy.of_buys ~n:n2 t2.Torus_grid.buys in
  (* k = 2 keeps every view at <= 13 vertices: the exhaustive SumNCG
     best-response check is exact. *)
  let sum_lke = Lke.is_lke_sum_exact ~alpha:alpha_sum ~k:2 s2 in
  Printf.printf "SumNCG LKE certified by exhaustive search: %b\n" sum_lke;
  (match Game.quality Game.Sum ~alpha:alpha_sum s2 with
  | Some q ->
      Printf.printf "Quality = %.2f (theory: Omega(n/k) = %.1f with constants 1)\n" q
        (float_of_int n2 /. 2.0)
  | None -> print_endline "disconnected?!");

  Printf.printf "\n=== Scaling the gap with n (MaxNCG, alpha=%g, k=%d) ===\n" alpha k;
  Printf.printf "%8s %8s %10s %10s\n" "n" "diam" "quality" "theory-LB";
  List.iter
    (fun delta2 ->
      let t = Torus_grid.closed ~d:2 ~ell:2 ~deltas:[| 2; delta2 |] in
      let n = Graph.order t.Torus_grid.graph in
      let s = Strategy.of_buys ~n t.Torus_grid.buys in
      let diam = match Metrics.diameter t.Torus_grid.graph with Some d -> d | None -> -1 in
      match Game.quality Game.Max ~alpha s with
      | Some q ->
          Printf.printf "%8d %8d %10.2f %10.2f\n" n diam q (Bounds.lb_torus ~n ~alpha ~k)
      | None -> ())
    [ 3; 6; 12; 24 ]
