(* Figure 6-style scenario: best-response dynamics on uniform random trees
   for several view radii, reporting the quality of the resulting
   equilibria — the locality/efficiency trade-off the paper measures.

   Run with:  dune exec examples/tree_dynamics.exe *)

module Experiment = Ncg.Experiment
module Dynamics = Ncg.Dynamics
module Summary = Ncg_stats.Summary

let () =
  let n = 40 and alpha = 2.0 and trials = 5 in
  Printf.printf
    "Best-response dynamics on %d-vertex random trees, alpha = %g, %d seeds per k\n\n"
    n alpha trials;
  Printf.printf "%6s %18s %14s %14s %12s\n" "k" "quality (±95%%CI)" "rounds" "diameter"
    "min view";
  List.iter
    (fun k ->
      let config = Dynamics.default_config ~alpha ~k in
      let runs =
        Experiment.trials
          ~make_initial:(fun ~seed -> Experiment.initial_tree ~seed ~n)
          ~config ~trials ~seed:2014
      in
      let quality = Experiment.summarize (fun r -> r.Experiment.quality) runs in
      let rounds = Experiment.summarize (fun r -> float_of_int r.Experiment.rounds) runs in
      let diam = Experiment.summarize (fun r -> float_of_int r.Experiment.diameter) runs in
      let minv = Experiment.summarize (fun r -> float_of_int r.Experiment.min_view) runs in
      Printf.printf "%6d %18s %14s %14s %12s\n"
        (if k >= n then 1000 else k)
        (Summary.to_string quality) (Summary.to_string rounds)
        (Summary.to_string diam) (Summary.to_string minv))
    [ 2; 3; 4; 5; 1000 ];
  print_newline ();
  print_endline
    "Reading: small k leaves long chains in place (high quality ratio = bad),";
  print_endline
    "and as soon as players see most of the tree the equilibria match the";
  print_endline "full-knowledge game (quality near 1). Compare paper Figure 6."
