examples/torus_lower_bound.ml: List Ncg Ncg_gen Ncg_graph Printf
