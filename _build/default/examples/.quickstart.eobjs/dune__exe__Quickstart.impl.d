examples/quickstart.ml: List Ncg Ncg_graph Printf
