examples/tree_dynamics.ml: List Ncg Ncg_stats Printf
