examples/realizable_worlds.mli:
