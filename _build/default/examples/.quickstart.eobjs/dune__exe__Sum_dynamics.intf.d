examples/sum_dynamics.mli:
