examples/torus_lower_bound.mli:
