examples/tree_dynamics.mli:
