examples/er_fairness.ml: List Ncg Ncg_stats Printf
