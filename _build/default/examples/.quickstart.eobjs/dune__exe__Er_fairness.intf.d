examples/er_fairness.mli:
