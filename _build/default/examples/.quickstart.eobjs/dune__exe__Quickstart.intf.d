examples/quickstart.mli:
