examples/realizable_worlds.ml: Array List Ncg Ncg_graph Ncg_prng Printf String
