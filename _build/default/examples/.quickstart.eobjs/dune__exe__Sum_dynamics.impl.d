examples/sum_dynamics.ml: List Ncg Printf
