(* Figure 9-style scenario: fairness of equilibria reached from connected
   Erdős–Rényi graphs, as a function of the edge price alpha and the view
   radius k. The paper's observation: restricting the view yields *fairer*
   equilibria (lower max/min player-cost ratio).

   Run with:  dune exec examples/er_fairness.exe *)

module Experiment = Ncg.Experiment
module Dynamics = Ncg.Dynamics
module Summary = Ncg_stats.Summary

let () =
  let n = 40 and p = 0.12 and trials = 4 in
  Printf.printf
    "Unfairness (max player cost / min player cost) on G(%d, %.2f), %d seeds\n\n" n p
    trials;
  Printf.printf "%8s" "alpha";
  let ks = [ 2; 3; 1000 ] in
  List.iter (fun k -> Printf.printf "%16s" (Printf.sprintf "k=%d" k)) ks;
  print_newline ();
  List.iter
    (fun alpha ->
      Printf.printf "%8g" alpha;
      List.iter
        (fun k ->
          let config = Dynamics.default_config ~alpha ~k in
          let runs =
            Experiment.trials
              ~make_initial:(fun ~seed -> Experiment.initial_gnp ~seed ~n ~p)
              ~config ~trials ~seed:99
          in
          let u = Experiment.summarize (fun r -> r.Experiment.unfairness) runs in
          Printf.printf "%16s" (Summary.to_string u))
        ks;
      print_newline ())
    [ 0.5; 1.0; 2.0; 5.0 ];
  print_newline ();
  print_endline "Compare paper Figure 9: small k yields more fair equilibria.";
  print_endline
    "(Full knowledge lets a few hubs absorb most edges, producing high-cost";
  print_endline "centers and cheap leaves; local views flatten the outcome.)"
