(** SplitMix64 pseudo-random number generator (Steele, Lea & Flood, 2014).

    A tiny, fast, well-distributed 64-bit generator with a single [int64]
    state word. We use it instead of [Stdlib.Random] so that every
    experiment in this repository is reproducible bit-for-bit across OCaml
    versions: the stdlib generator changed algorithms between releases,
    SplitMix64 is frozen by definition. *)

type t

(** [create seed] is a fresh generator. Distinct seeds give independent
    streams for practical purposes. *)
val create : int64 -> t

(** [copy t] is an independent generator with the same state. *)
val copy : t -> t

(** Next raw 64-bit output. *)
val next : t -> int64

(** [split t] is a new generator seeded from [t]'s stream, advancing [t].
    Streams of parent and child are independent for practical purposes. *)
val split : t -> t
