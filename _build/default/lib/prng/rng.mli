(** High-level deterministic random source used by every randomized
    component of the project.

    Wraps {!Splitmix64} with the distributions the generators and the
    experiment harness need. All functions advance the generator state. *)

type t

(** [create seed] is a fresh source. The same seed always yields the same
    stream of values. *)
val create : int -> t

(** [copy t] is an independent source with the same state. *)
val copy : t -> t

(** [split t] derives an independent child source, advancing [t]. Used to
    give each trial of an experiment its own stream. *)
val split : t -> t

(** [int t bound] is uniform in [0, bound). @raise Invalid_argument if
    [bound <= 0]. Unbiased (rejection sampling). *)
val int : t -> int -> int

(** [int_in_range t ~lo ~hi] is uniform in [lo, hi] inclusive. *)
val int_in_range : t -> lo:int -> hi:int -> int

(** [float t] is uniform in [0, 1). 53-bit resolution. *)
val float : t -> float

(** [bool t] is a fair coin toss. *)
val bool : t -> bool

(** [bernoulli t p] is [true] with probability [p]. *)
val bernoulli : t -> float -> bool

(** [shuffle t a] permutes [a] in place, uniformly (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [sample t ~n ~k] is a sorted array of [k] distinct ints drawn uniformly
    from [0, n). @raise Invalid_argument if [k > n] or [k < 0]. *)
val sample : t -> n:int -> k:int -> int array

(** [choose t a] is a uniformly random element of a non-empty array. *)
val choose : t -> 'a array -> 'a
