lib/prng/xoshiro256pp.ml: Int64 Splitmix64
