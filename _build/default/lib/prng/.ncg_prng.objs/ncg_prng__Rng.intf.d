lib/prng/rng.mli:
