lib/prng/xoshiro256pp.mli:
