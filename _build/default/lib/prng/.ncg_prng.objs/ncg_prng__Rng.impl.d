lib/prng/rng.ml: Array Hashtbl Int64 Splitmix64
