type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let create seed =
  let boot = Splitmix64.create seed in
  let s0 = Splitmix64.next boot in
  let s1 = Splitmix64.next boot in
  let s2 = Splitmix64.next boot in
  let s3 = Splitmix64.next boot in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next t =
  let result = Int64.add (rotl (Int64.add t.s0 t.s3) 23) t.s0 in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let uniform_int t bound =
  if bound <= 0 then invalid_arg "Xoshiro256pp.uniform_int: bound must be positive";
  let limit = 0x3FFFFFFFFFFFFFFF / bound * bound in
  let rec draw () =
    let r = Int64.to_int (Int64.shift_right_logical (next t) 2) in
    if r < limit then r mod bound else draw ()
  in
  draw ()
