(** xoshiro256++ pseudo-random generator (Blackman & Vigna, 2019).

    A second, structurally unrelated generator family next to
    {!Splitmix64}. Its purpose here is methodological: re-running an
    experiment with a different generator family and getting the same
    qualitative result rules out PRNG artifacts (the test suite does this
    for the uniform-tree distribution). Seeded through SplitMix64, as the
    authors recommend. *)

type t

(** [create seed] initializes the 256-bit state from [seed] via four
    SplitMix64 outputs. *)
val create : int64 -> t

val copy : t -> t

(** Next raw 64-bit output. *)
val next : t -> int64

(** [uniform_int t bound] is unbiased uniform in [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)
val uniform_int : t -> int -> int
