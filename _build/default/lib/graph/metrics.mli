(** Whole-graph metrics: diameter, radius, degree statistics.

    All-pairs quantities run one BFS per vertex — O(n·(n+m)) — which is the
    right trade-off at the paper's experiment sizes (n ≤ a few thousand). *)

(** [diameter g] is the largest eccentricity, or [None] if [g] is
    disconnected or empty. *)
val diameter : Graph.t -> int option

(** [radius g] is the smallest eccentricity, or [None] if disconnected. *)
val radius : Graph.t -> int option

(** All eccentricities; [None] if disconnected. *)
val eccentricities : Graph.t -> int array option

(** [max_degree g] is 0 for an empty graph. *)
val max_degree : Graph.t -> int

(** [avg_degree g] is [2m/n]; 0 for an empty graph. *)
val avg_degree : Graph.t -> float

(** Sum over all ordered pairs of distances; [None] if disconnected.
    (The Wiener index is half of this.) *)
val total_distance : Graph.t -> int option

(** [distance_matrix g] is row [u] = BFS distances from [u]. O(n(n+m))
    time, O(n²) space. *)
val distance_matrix : Graph.t -> int array array

(** [density g] is m / (n choose 2); 0 for graphs with < 2 vertices. *)
val density : Graph.t -> float

(** [degree_histogram g] — entry [d] counts vertices of degree [d];
    length [max_degree g + 1] (length 1 for an empty graph). *)
val degree_histogram : Graph.t -> int array

(** [local_clustering g u] is the fraction of pairs of neighbours of [u]
    that are themselves adjacent; 0 when [degree g u < 2]. *)
val local_clustering : Graph.t -> int -> float

(** Average of {!local_clustering} over all vertices (Watts–Strogatz);
    0 for the empty graph. *)
val avg_clustering : Graph.t -> float
