type mapping = { to_sub : int array; to_host : int array }

let induced g vertices =
  let n = Graph.order g in
  let to_sub = Array.make n (-1) in
  let sorted = List.sort_uniq compare vertices in
  List.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Subgraph.induced: vertex out of range")
    sorted;
  let to_host = Array.of_list sorted in
  Array.iteri (fun i v -> to_sub.(v) <- i) to_host;
  let edges = ref [] in
  Array.iteri
    (fun i v ->
      Array.iter
        (fun w ->
          let j = to_sub.(w) in
          if j >= 0 && i < j then edges := (i, j) :: !edges)
        (Graph.neighbors g v))
    to_host;
  (Graph.of_edges ~n:(Array.length to_host) !edges, { to_sub; to_host })

let ball_induced g u ~radius = induced g (Bfs.ball g u ~radius)
