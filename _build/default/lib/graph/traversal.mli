(** Depth-first traversal and structural predicates built on it. *)

(** [dfs_preorder g root] — vertices reachable from [root] in preorder;
    neighbour ties broken in increasing vertex order (deterministic). *)
val dfs_preorder : Graph.t -> int -> int list

(** [bipartition g] is [Some colors] (0/1 per vertex; vertices of
    different components coloured independently, each component's
    smallest vertex coloured 0) iff the graph has no odd cycle. *)
val bipartition : Graph.t -> int array option

val is_bipartite : Graph.t -> bool

(** Cut vertices (articulation points), sorted. A vertex is a cut vertex
    iff removing it increases the number of connected components —
    exactly the players whose edge set is load-bearing for connectivity
    in a network creation game. Hopcroft–Tarjan, O(n + m). *)
val articulation_points : Graph.t -> int list

(** [bridges g] — edges (u, v) with [u < v], sorted, whose removal
    disconnects their component. *)
val bridges : Graph.t -> (int * int) list
