type t = { n : int; adj : int array array; m : int }

let check_endpoint n v =
  if v < 0 || v >= n then invalid_arg "Graph: vertex out of range"

let of_edges ~n edges =
  if n < 0 then invalid_arg "Graph.of_edges: negative order";
  (* Normalize, validate and dedupe through per-vertex sorted lists. *)
  let deg = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      check_endpoint n u;
      check_endpoint n v;
      if u = v then invalid_arg "Graph.of_edges: self loop";
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let adj = Array.init n (fun u -> Array.make deg.(u) 0) in
  let fill = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      adj.(u).(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1)
    edges;
  (* Sort and remove duplicates per vertex. *)
  let m = ref 0 in
  let adj =
    Array.map
      (fun nbrs ->
        Array.sort compare nbrs;
        let len = Array.length nbrs in
        if len = 0 then nbrs
        else begin
          let uniq = ref 1 in
          for i = 1 to len - 1 do
            if nbrs.(i) <> nbrs.(i - 1) then begin
              nbrs.(!uniq) <- nbrs.(i);
              incr uniq
            end
          done;
          Array.sub nbrs 0 !uniq
        end)
      adj
  in
  Array.iter (fun nbrs -> m := !m + Array.length nbrs) adj;
  { n; adj; m = !m / 2 }

let empty n = of_edges ~n []
let order g = g.n
let size g = g.m

let neighbors g u =
  check_endpoint g.n u;
  g.adj.(u)

let degree g u = Array.length (neighbors g u)

let mem_edge g u v =
  check_endpoint g.n u;
  check_endpoint g.n v;
  let nbrs = g.adj.(u) in
  let rec bsearch lo hi =
    if lo >= hi then false
    else begin
      let mid = (lo + hi) / 2 in
      if nbrs.(mid) = v then true
      else if nbrs.(mid) < v then bsearch (mid + 1) hi
      else bsearch lo mid
    end
  in
  bsearch 0 (Array.length nbrs)

let iter_edges f g =
  for u = 0 to g.n - 1 do
    Array.iter (fun v -> if u < v then f u v) g.adj.(u)
  done

let edges g =
  let acc = ref [] in
  iter_edges (fun u v -> acc := (u, v) :: !acc) g;
  List.rev !acc

let fold_vertices f g init =
  let acc = ref init in
  for u = 0 to g.n - 1 do
    acc := f u !acc
  done;
  !acc

let add_edges g extra = of_edges ~n:g.n (List.rev_append (edges g) extra)

let remove_vertex_edges g u =
  check_endpoint g.n u;
  let keep = List.filter (fun (a, b) -> a <> u && b <> u) (edges g) in
  of_edges ~n:g.n keep

let equal a b =
  a.n = b.n
  && a.m = b.m
  && begin
       let rec all u = u >= a.n || (a.adj.(u) = b.adj.(u) && all (u + 1)) in
       all 0
     end

let pp ppf g = Format.fprintf ppf "graph(n=%d, m=%d)" g.n g.m
