(** Vertex centralities.

    Closeness is the inverse of a player's SumNCG usage cost, and
    betweenness identifies the brokers that emerge in equilibrium networks
    (the near-universal hubs of Figure 8 have extreme values of both) —
    worth having first-class when analyzing the dynamics' outputs. *)

(** [closeness g u] is (n−1) / Σ_v d(u,v), or 0.0 when [u] cannot reach
    everyone (the standard convention) or n = 1. In [0, 1]; 1 iff [u] is
    adjacent to everyone. *)
val closeness : Graph.t -> int -> float

(** All closeness values, one BFS per vertex. *)
val closeness_all : Graph.t -> float array

(** Betweenness centrality of every vertex (Brandes' algorithm,
    O(n·m) for unweighted graphs). Each unordered pair {s, t} with
    s ≠ v ≠ t contributes σ_st(v)/σ_st, where σ_st counts shortest
    s–t paths and σ_st(v) those through [v]. Unnormalized. *)
val betweenness : Graph.t -> float array
