(** Connected components. *)

(** [labels g] maps each vertex to a component id in [0, count); ids are
    assigned in order of smallest member. *)
val labels : Graph.t -> int array

(** Number of connected components (0 for the empty graph). *)
val count : Graph.t -> int

(** The components as sorted vertex lists, ordered by smallest member. *)
val components : Graph.t -> int list list

(** [same_component g u v]. *)
val same_component : Graph.t -> int -> int -> bool
