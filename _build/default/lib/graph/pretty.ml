let to_dot ?(name = "g") g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  for u = 0 to Graph.order g - 1 do
    Buffer.add_string buf (Printf.sprintf "  %d;\n" u)
  done;
  Graph.iter_edges (fun u v -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v)) g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_edge_list_string g =
  let buf = Buffer.create 256 in
  Graph.iter_edges (fun u v -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v)) g;
  Buffer.contents buf

let of_edge_list_string ~n s =
  let edges =
    String.split_on_char '\n' s
    |> List.filter_map (fun line ->
           let line = String.trim line in
           if line = "" then None
           else begin
             match String.split_on_char ' ' line with
             | [a; b] -> begin
                 match (int_of_string_opt a, int_of_string_opt b) with
                 | Some u, Some v -> Some (u, v)
                 | _ -> invalid_arg "Pretty.of_edge_list_string: bad integers"
               end
             | _ -> invalid_arg "Pretty.of_edge_list_string: bad line"
           end)
  in
  Graph.of_edges ~n edges

let to_adjacency_string g =
  let buf = Buffer.create 256 in
  for u = 0 to Graph.order g - 1 do
    Buffer.add_string buf (string_of_int u);
    Buffer.add_char buf ':';
    Array.iter
      (fun v ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (string_of_int v))
      (Graph.neighbors g u);
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
