(** Textual renderings of graphs (debugging, examples, DOT export). *)

(** Graphviz DOT source for an undirected graph. *)
val to_dot : ?name:string -> Graph.t -> string

(** One edge per line: ["u v"]. Parsable by {!of_edge_list_string}. *)
val to_edge_list_string : Graph.t -> string

(** Parse the format produced by {!to_edge_list_string}.
    @raise Invalid_argument on malformed input. *)
val of_edge_list_string : n:int -> string -> Graph.t

(** Compact adjacency dump for small graphs: ["0: 1 2\n1: 0\n..."]. *)
val to_adjacency_string : Graph.t -> string
