(** Immutable, simple, undirected graphs on vertices [0 .. n-1].

    The representation is an adjacency array ([int array array]) with sorted
    neighbour lists, built once from an edge list — the sparse-graph shape
    all algorithms in this project (BFS-heavy) want. Self loops are rejected
    and parallel edges collapse.

    Mutation is not supported on purpose: in the network creation game the
    source of truth is the strategy profile and the graph is re-derived from
    it after a move (see {!Ncg.Strategy}). *)

type t

(** {1 Construction} *)

(** [of_edges ~n edges] builds a graph on [n] vertices. Duplicate edges
    (in either orientation) are collapsed.
    @raise Invalid_argument on a self loop or an endpoint outside [0, n). *)
val of_edges : n:int -> (int * int) list -> t

(** [empty n] has [n] vertices and no edges. *)
val empty : int -> t

(** {1 Observation} *)

(** Number of vertices. *)
val order : t -> int

(** Number of edges. *)
val size : t -> int

(** [neighbors g u] is the sorted array of neighbours of [u]. The returned
    array is owned by the graph: do not mutate it. *)
val neighbors : t -> int -> int array

(** [degree g u] is the number of neighbours of [u]. *)
val degree : t -> int -> int

(** [mem_edge g u v] tests adjacency in O(log degree). *)
val mem_edge : t -> int -> int -> bool

(** Every edge [(u, v)] with [u < v], in lexicographic order. *)
val edges : t -> (int * int) list

(** [iter_edges f g] applies [f u v] to every edge with [u < v]. *)
val iter_edges : (int -> int -> unit) -> t -> unit

(** [fold_vertices f g init] folds over [0 .. n-1] in order. *)
val fold_vertices : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** {1 Derivation} *)

(** [add_edges g extra] is a fresh graph with the additional edges. *)
val add_edges : t -> (int * int) list -> t

(** [remove_vertex_edges g u] removes every edge incident to [u] (the vertex
    itself remains, isolated). *)
val remove_vertex_edges : t -> int -> t

(** Structural equality (same order, same edge set). *)
val equal : t -> t -> bool

(** Pretty-printer: ["graph(n=5, m=4)"]. *)
val pp : Format.formatter -> t -> unit
