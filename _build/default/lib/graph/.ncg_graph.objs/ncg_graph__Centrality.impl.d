lib/graph/centrality.ml: Array Bfs Graph List Ncg_util
