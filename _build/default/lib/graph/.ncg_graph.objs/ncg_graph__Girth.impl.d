lib/graph/girth.ml: Array Graph Ncg_util
