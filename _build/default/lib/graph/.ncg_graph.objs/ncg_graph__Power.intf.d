lib/graph/power.mli: Graph Ncg_util
