lib/graph/centrality.mli: Graph
