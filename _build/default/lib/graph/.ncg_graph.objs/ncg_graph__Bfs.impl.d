lib/graph/bfs.ml: Array Graph Ncg_util
