lib/graph/pretty.ml: Array Buffer Graph List Printf String
