lib/graph/components.ml: Array Graph Ncg_util
