lib/graph/subgraph.ml: Array Bfs Graph List
