lib/graph/pretty.mli: Graph
