lib/graph/power.ml: Array Bfs Graph Ncg_util
