lib/graph/builder.ml: Array Graph Hashtbl
