lib/graph/traversal.ml: Array Graph List Ncg_util
