(** Girth (length of a shortest cycle).

    Needed twice by the paper: Lemma 3.17 bounds the density of equilibrium
    graphs through their girth, and Lemma 3.2's construction requires
    certified high-girth inputs. *)

(** [girth g] is the length of a shortest cycle, or [None] for a forest.
    One truncated BFS per vertex: O(n·(n+m)) worst case. *)
val girth : Graph.t -> int option

(** [girth_at_least g l] is [true] iff [g] has no cycle shorter than [l]
    (forests qualify for every [l]). Early-exits, so much faster than
    computing the exact girth when only a certificate is needed. *)
val girth_at_least : Graph.t -> int -> bool
