(** Breadth-first search primitives.

    Distances are returned as [int array]s indexed by vertex, with
    {!unreachable} marking vertices in other components. *)

(** Distance value for vertices not reached by the search. *)
val unreachable : int

(** [distances g u] is the array of hop distances from [u];
    [unreachable] where [u] cannot reach. O(n + m). *)
val distances : Graph.t -> int -> int array

(** [distances_within g u ~radius] stops expanding at depth [radius]:
    vertices farther than [radius] get [unreachable]. *)
val distances_within : Graph.t -> int -> radius:int -> int array

(** [ball g u ~radius] is the sorted list of vertices at distance
    ≤ [radius] from [u] ([u] included). *)
val ball : Graph.t -> int -> radius:int -> int list

(** [eccentricity g u] is [Some] of the largest distance from [u], or
    [None] if some vertex is unreachable (infinite eccentricity). *)
val eccentricity : Graph.t -> int -> int option

(** [sum_distances g u] is [Some] of the sum of distances from [u] to every
    other vertex, or [None] if the graph is disconnected from [u]. *)
val sum_distances : Graph.t -> int -> int option

(** [is_connected g] for [order g = 0] is [true]. *)
val is_connected : Graph.t -> bool

(** [shortest_path g u v] is a path [u; ...; v] of minimum length, or
    [None] if unreachable. *)
val shortest_path : Graph.t -> int -> int -> int list option
