let power g h =
  if h < 0 then invalid_arg "Power.power: negative exponent";
  let n = Graph.order g in
  if h = 0 then Graph.empty n
  else begin
    let edges = ref [] in
    for u = 0 to n - 1 do
      let dist = Bfs.distances_within g u ~radius:h in
      for v = u + 1 to n - 1 do
        if dist.(v) <> Bfs.unreachable then edges := (u, v) :: !edges
      done
    done;
    Graph.of_edges ~n !edges
  end

let ball_sets g h =
  let n = Graph.order g in
  Array.init n (fun u ->
      let s = Ncg_util.Bitset.create n in
      let dist = Bfs.distances_within g u ~radius:(max h 0) in
      for v = 0 to n - 1 do
        if dist.(v) <> Bfs.unreachable then Ncg_util.Bitset.add s v
      done;
      s)
