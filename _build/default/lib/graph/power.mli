(** Graph powers.

    The paper's exact best-response algorithm (Section 5.3) reduces
    MaxNCG best response to minimum dominating set on the (h−1)-th power
    of the view minus the player. *)

(** [power g h] has an edge (u, v) iff [0 < d_g(u, v) <= h].
    [power g 1] equals [g]. @raise Invalid_argument if [h < 0].
    [power g 0] is the empty graph on the same vertices. *)
val power : Graph.t -> int -> Graph.t

(** [ball_sets g h] is, for each vertex [u], the closed ball
    {v : d(u,v) ≤ h} as a bitset — the covering sets of the dominating-set
    instance, computed without materializing the power graph. *)
val ball_sets : Graph.t -> int -> Ncg_util.Bitset.t array
