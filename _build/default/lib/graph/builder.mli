(** Mutable graph builder for generators.

    Generators that add edges incrementally under constraints (degree
    caps, girth checks) need O(1) membership and degree queries before
    committing an edge; building throwaway immutable graphs per step
    would be quadratic. The builder offers exactly that and converts to
    an immutable {!Graph.t} at the end. *)

type t

(** [create n] — an empty builder on vertices [0, n). *)
val create : int -> t

val order : t -> int

(** Number of edges currently added. *)
val size : t -> int

(** [add_edge b u v] — no-op if the edge already exists.
    @raise Invalid_argument on self loops or out-of-range endpoints. *)
val add_edge : t -> int -> int -> unit

(** [remove_edge b u v] — no-op if absent. *)
val remove_edge : t -> int -> int -> unit

val mem_edge : t -> int -> int -> bool
val degree : t -> int -> int

(** Current neighbours (unsorted, fresh list). *)
val neighbors : t -> int -> int list

(** [iter_neighbors f b u] avoids the list allocation of {!neighbors}. *)
val iter_neighbors : (int -> unit) -> t -> int -> unit

(** Freeze into an immutable graph. The builder remains usable. *)
val to_graph : t -> Graph.t

(** Seed a builder from an existing graph. *)
val of_graph : Graph.t -> t
