(** Small array helpers shared across the project. *)

(** [max_elt a] is the maximum of a non-empty int array.
    @raise Invalid_argument on an empty array. *)
val max_elt : int array -> int

(** [min_elt a] is the minimum of a non-empty int array.
    @raise Invalid_argument on an empty array. *)
val min_elt : int array -> int

(** [sum a] is the sum of the elements (no overflow checking). *)
val sum : int array -> int

(** [sum_float a] is the sum of a float array. *)
val sum_float : float array -> float

(** [mean a] is the arithmetic mean of a non-empty float array. *)
val mean : float array -> float

(** [count p a] is the number of elements satisfying [p]. *)
val count : (int -> bool) -> int array -> int

(** [swap a i j] exchanges [a.(i)] and [a.(j)]. *)
val swap : 'a array -> int -> int -> unit

(** [argmax a] is the least index of a maximum element of a non-empty array. *)
val argmax : int array -> int
