lib/util/arrayx.ml: Array
