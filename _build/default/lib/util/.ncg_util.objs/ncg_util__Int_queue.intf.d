lib/util/int_queue.mli:
