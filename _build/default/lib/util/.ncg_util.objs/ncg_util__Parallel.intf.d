lib/util/parallel.mli:
