lib/util/arrayx.mli:
