(** Unboxed FIFO queue of ints, tuned for BFS.

    A growable ring buffer; no allocation per [push] once the buffer is warm.
    Not thread-safe. *)

type t

(** [create ?initial_capacity ()] is an empty queue. *)
val create : ?initial_capacity:int -> unit -> t

(** Number of queued elements. *)
val length : t -> int

val is_empty : t -> bool

(** [push q x] enqueues [x] at the back. Amortized O(1). *)
val push : t -> int -> unit

(** [pop q] dequeues the front element. @raise Invalid_argument if empty. *)
val pop : t -> int

(** Remove all elements, keeping the buffer. *)
val clear : t -> unit
