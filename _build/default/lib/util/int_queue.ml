type t = { mutable buf : int array; mutable head : int; mutable len : int }

let create ?(initial_capacity = 16) () =
  let cap = max 1 initial_capacity in
  { buf = Array.make cap 0; head = 0; len = 0 }

let length q = q.len
let is_empty q = q.len = 0

let grow q =
  let cap = Array.length q.buf in
  let buf' = Array.make (2 * cap) 0 in
  for i = 0 to q.len - 1 do
    buf'.(i) <- q.buf.((q.head + i) mod cap)
  done;
  q.buf <- buf';
  q.head <- 0

let push q x =
  if q.len = Array.length q.buf then grow q;
  let cap = Array.length q.buf in
  q.buf.((q.head + q.len) mod cap) <- x;
  q.len <- q.len + 1

let pop q =
  if q.len = 0 then invalid_arg "Int_queue.pop: empty";
  let x = q.buf.(q.head) in
  q.head <- (q.head + 1) mod Array.length q.buf;
  q.len <- q.len - 1;
  x

let clear q =
  q.head <- 0;
  q.len <- 0
