let sequential_map f xs = List.map f xs

let chunked_map ~domains f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let domains = min domains n in
  if domains <= 1 then sequential_map f xs
  else begin
    (* Contiguous chunk boundaries; the first [n mod domains] chunks get
       one extra element. *)
    let base = n / domains and extra = n mod domains in
    let bounds =
      Array.init domains (fun i ->
          let start = (i * base) + min i extra in
          let len = base + if i < extra then 1 else 0 in
          (start, len))
    in
    let out = Array.make n None in
    let worker (start, len) () =
      for j = start to start + len - 1 do
        out.(j) <- Some (f arr.(j))
      done
    in
    (* Run the first chunk in the calling domain, spawn the rest. *)
    let spawned =
      Array.to_list
        (Array.map (fun b -> Domain.spawn (worker b)) (Array.sub bounds 1 (domains - 1)))
    in
    let first_exn =
      match worker bounds.(0) () with () -> None | exception e -> Some e
    in
    let join_exns =
      List.filter_map
        (fun d -> match Domain.join d with () -> None | exception e -> Some e)
        spawned
    in
    (match (first_exn, join_exns) with
    | Some e, _ -> raise e
    | None, e :: _ -> raise e
    | None, [] -> ());
    Array.to_list
      (Array.map (function Some x -> x | None -> assert false) out)
  end

let map ?domains f xs =
  let domains =
    match domains with Some d -> d | None -> Domain.recommended_domain_count ()
  in
  chunked_map ~domains f xs

let init ?domains n f =
  if n < 0 then invalid_arg "Parallel.init: negative length";
  map ?domains f (List.init n Fun.id)
