let max_elt a =
  if Array.length a = 0 then invalid_arg "Arrayx.max_elt: empty";
  Array.fold_left max a.(0) a

let min_elt a =
  if Array.length a = 0 then invalid_arg "Arrayx.min_elt: empty";
  Array.fold_left min a.(0) a

let sum a = Array.fold_left ( + ) 0 a
let sum_float a = Array.fold_left ( +. ) 0.0 a

let mean a =
  if Array.length a = 0 then invalid_arg "Arrayx.mean: empty";
  sum_float a /. float_of_int (Array.length a)

let count p a =
  Array.fold_left (fun acc x -> if p x then acc + 1 else acc) 0 a

let swap a i j =
  let t = a.(i) in
  a.(i) <- a.(j);
  a.(j) <- t

let argmax a =
  if Array.length a = 0 then invalid_arg "Arrayx.argmax: empty";
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if a.(i) > a.(!best) then best := i
  done;
  !best
