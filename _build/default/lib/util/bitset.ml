(* Dense bitset over an int array. We use the full native int width (63 bits
   on 64-bit platforms) per word; [bits] is computed from [Sys.int_size] so
   the module also works on 32-bit platforms. *)

let bits = Sys.int_size

type t = { capacity : int; words : int array }

let words_for n = if n = 0 then 0 else ((n - 1) / bits) + 1

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { capacity = n; words = Array.make (words_for n) 0 }

let capacity s = s.capacity
let copy s = { capacity = s.capacity; words = Array.copy s.words }

let check s i =
  if i < 0 || i >= s.capacity then invalid_arg "Bitset: index out of bounds"

let add s i =
  check s i;
  s.words.(i / bits) <- s.words.(i / bits) lor (1 lsl (i mod bits))

let remove s i =
  check s i;
  s.words.(i / bits) <- s.words.(i / bits) land lnot (1 lsl (i mod bits))

let mem s i =
  check s i;
  s.words.(i / bits) land (1 lsl (i mod bits)) <> 0

(* Population count of one word, folding the word in halves. *)
let popcount w =
  let rec go acc w = if w = 0 then acc else go (acc + (w land 1)) (w lsr 1) in
  (* Kernighan's trick is faster for sparse words: clear lowest set bit. *)
  let rec kern acc w = if w = 0 then acc else kern (acc + 1) (w land (w - 1)) in
  ignore go;
  kern 0 w

let cardinal s = Array.fold_left (fun acc w -> acc + popcount w) 0 s.words
let is_empty s = Array.for_all (fun w -> w = 0) s.words
let clear s = Array.fill s.words 0 (Array.length s.words) 0

let fill s =
  Array.fill s.words 0 (Array.length s.words) (-1);
  (* Mask out the bits beyond [capacity] in the last word so that cardinal
     and iteration stay correct. *)
  let n = s.capacity in
  if n > 0 then begin
    let last = Array.length s.words - 1 in
    let used = n - (last * bits) in
    if used < bits then s.words.(last) <- (1 lsl used) - 1
  end

let same_capacity a b =
  if a.capacity <> b.capacity then
    invalid_arg "Bitset: operands have different capacities"

let union_into ~into s =
  same_capacity into s;
  for i = 0 to Array.length into.words - 1 do
    into.words.(i) <- into.words.(i) lor s.words.(i)
  done

let inter_into ~into s =
  same_capacity into s;
  for i = 0 to Array.length into.words - 1 do
    into.words.(i) <- into.words.(i) land s.words.(i)
  done

let diff_into ~into s =
  same_capacity into s;
  for i = 0 to Array.length into.words - 1 do
    into.words.(i) <- into.words.(i) land lnot s.words.(i)
  done

let union a b = let r = copy a in union_into ~into:r b; r
let inter a b = let r = copy a in inter_into ~into:r b; r
let diff a b = let r = copy a in diff_into ~into:r b; r

let subset a b =
  same_capacity a b;
  let n = Array.length a.words in
  let rec go i = i >= n || (a.words.(i) land lnot b.words.(i) = 0 && go (i + 1)) in
  go 0

let equal a b =
  same_capacity a b;
  let n = Array.length a.words in
  let rec go i = i >= n || (a.words.(i) = b.words.(i) && go (i + 1)) in
  go 0

let disjoint a b =
  same_capacity a b;
  let n = Array.length a.words in
  let rec go i = i >= n || (a.words.(i) land b.words.(i) = 0 && go (i + 1)) in
  go 0

let inter_cardinal a b =
  same_capacity a b;
  let acc = ref 0 in
  for i = 0 to Array.length a.words - 1 do
    acc := !acc + popcount (a.words.(i) land b.words.(i))
  done;
  !acc

let diff_cardinal a b =
  same_capacity a b;
  let acc = ref 0 in
  for i = 0 to Array.length a.words - 1 do
    acc := !acc + popcount (a.words.(i) land lnot b.words.(i))
  done;
  !acc

let iter f s =
  for wi = 0 to Array.length s.words - 1 do
    let w = ref s.words.(wi) in
    while !w <> 0 do
      (* Lowest set bit of !w. *)
      let low = !w land - !w in
      let rec log2 acc v = if v = 1 then acc else log2 (acc + 1) (v lsr 1) in
      f ((wi * bits) + log2 0 low);
      w := !w land (!w - 1)
    done
  done

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let to_list s = List.rev (fold (fun i acc -> i :: acc) s [])

let of_list n xs =
  let s = create n in
  List.iter (fun i -> add s i) xs;
  s

let choose_from s i0 =
  let n = s.capacity in
  let rec go i =
    if i >= n then None
    else begin
      let wi = i / bits in
      let w = s.words.(wi) lsr (i mod bits) in
      if w = 0 then go ((wi + 1) * bits)
      else begin
        let rec first j w = if w land 1 = 1 then j else first (j + 1) (w lsr 1) in
        Some (first i w)
      end
    end
  in
  if i0 < 0 then go 0 else go i0

let min_elt s =
  match choose_from s 0 with Some i -> i | None -> raise Not_found

let pp ppf s =
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Format.pp_print_int)
    (to_list s)
