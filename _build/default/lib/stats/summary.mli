(** A mean ± 95% confidence interval, the unit in which every table and
    figure of the paper reports its data. *)

type t = {
  n : int;  (** sample size *)
  mean : float;
  ci95 : float;  (** half-width of the 95% confidence interval *)
  min : float;
  max : float;
  std_dev : float;
}

(** [of_floats xs] summarizes a non-empty sample with a Student-t 95% CI.
    For [n = 1] the CI half-width is 0 (a single observation carries no
    spread information). @raise Invalid_argument on empty input. *)
val of_floats : float array -> t

(** [of_ints xs] is [of_floats] after conversion. *)
val of_ints : int array -> t

(** Render as ["12.34 ± 0.56"], matching the paper's table style. *)
val to_string : ?digits:int -> t -> string

(** Formatter version of {!to_string}. *)
val pp : Format.formatter -> t -> unit
