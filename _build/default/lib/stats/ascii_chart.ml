type series = { label : string; points : (float * float) list }

let markers = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |]

let render ?(width = 60) ?(height = 16) ?(logx = false) series =
  let all_points = List.concat_map (fun s -> s.points) series in
  if all_points = [] then "(no data)\n"
  else begin
    let xform x =
      if logx then begin
        if x <= 0.0 then invalid_arg "Ascii_chart.render: logx needs x > 0";
        log x
      end
      else x
    in
    let xs = List.map (fun (x, _) -> xform x) all_points in
    let ys = List.map snd all_points in
    let fold f = function [] -> 0.0 | h :: t -> List.fold_left f h t in
    let xmin = fold min xs and xmax = fold max xs in
    let ymin = fold min ys and ymax = fold max ys in
    (* Pad degenerate ranges so everything maps inside the grid. *)
    let pad lo hi = if hi -. lo < 1e-12 then (lo -. 1.0, hi +. 1.0) else (lo, hi) in
    let xmin, xmax = pad xmin xmax in
    let ymin, ymax = pad ymin ymax in
    let grid = Array.make_matrix height width ' ' in
    let place marker (x, y) =
      let fx = (xform x -. xmin) /. (xmax -. xmin) in
      let fy = (y -. ymin) /. (ymax -. ymin) in
      let col = min (width - 1) (int_of_float (fx *. float_of_int (width - 1) +. 0.5)) in
      let row =
        height - 1 - min (height - 1) (int_of_float (fy *. float_of_int (height - 1) +. 0.5))
      in
      if grid.(row).(col) = ' ' then grid.(row).(col) <- marker
    in
    List.iteri
      (fun i s ->
        let marker = markers.(i mod Array.length markers) in
        List.iter (place marker) s.points)
      series;
    let buf = Buffer.create ((width + 12) * (height + 4)) in
    let y_label row =
      if row = 0 then Printf.sprintf "%8.3g" ymax
      else if row = height - 1 then Printf.sprintf "%8.3g" ymin
      else String.make 8 ' '
    in
    Array.iteri
      (fun row line ->
        Buffer.add_string buf (y_label row);
        Buffer.add_string buf " |";
        Array.iter (Buffer.add_char buf) line;
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (String.make 9 ' ');
    Buffer.add_char buf '+';
    Buffer.add_string buf (String.make width '-');
    Buffer.add_char buf '\n';
    let xmin_str = Printf.sprintf "%.3g" (if logx then exp xmin else xmin) in
    let xmax_str = Printf.sprintf "%.3g" (if logx then exp xmax else xmax) in
    Buffer.add_string buf (String.make 10 ' ');
    Buffer.add_string buf xmin_str;
    let gap = width - String.length xmin_str - String.length xmax_str in
    Buffer.add_string buf (String.make (max 1 gap) ' ');
    Buffer.add_string buf xmax_str;
    Buffer.add_char buf '\n';
    List.iteri
      (fun i s ->
        Buffer.add_string buf
          (Printf.sprintf "%10s %s\n"
             (String.make 1 markers.(i mod Array.length markers))
             s.label))
      series;
    Buffer.contents buf
  end
