(* Tabulated two-sided critical values; standard tables. Index = df - 1. *)

let table_95 =
  [|
    12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
    2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
    2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042;
  |]

let table_99 =
  [|
    63.657; 9.925; 5.841; 4.604; 4.032; 3.707; 3.499; 3.355; 3.250; 3.169;
    3.106; 3.055; 3.012; 2.977; 2.947; 2.921; 2.898; 2.878; 2.861; 2.845;
    2.831; 2.819; 2.807; 2.797; 2.787; 2.779; 2.771; 2.763; 2.756; 2.750;
  |]

(* Beyond the table, interpolate towards the normal quantile with the
   classical 1/df expansion  t*(df) ≈ z + (z^3 + z) / (4 df). *)
let extrapolate z df = z +. (((z ** 3.0) +. z) /. (4.0 *. float_of_int df))

let lookup table z df =
  if df < 1 then invalid_arg "Student_t: df must be >= 1";
  if df <= Array.length table then table.(df - 1) else extrapolate z df

let critical_95 df = lookup table_95 1.959964 df
let critical_99 df = lookup table_99 2.575829 df
