type t = {
  n : int;
  mean : float;
  ci95 : float;
  min : float;
  max : float;
  std_dev : float;
}

let of_floats xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Summary.of_floats: empty sample";
  let mean = Descriptive.mean xs in
  let std_dev = Descriptive.std_dev xs in
  let ci95 =
    if n < 2 then 0.0
    else Student_t.critical_95 (n - 1) *. std_dev /. sqrt (float_of_int n)
  in
  { n; mean; ci95; min = Descriptive.min xs; max = Descriptive.max xs; std_dev }

let of_ints xs = of_floats (Descriptive.of_int_array xs)

let to_string ?(digits = 2) t =
  Printf.sprintf "%.*f ± %.*f" digits t.mean digits t.ci95

let pp ppf t = Format.pp_print_string ppf (to_string t)
