(** Online mean/variance accumulator (Welford's algorithm).

    Numerically stable single-pass accumulation; used by the dynamics engine
    to collect per-round features without storing every sample. *)

type t

(** A fresh, empty accumulator. *)
val create : unit -> t

(** [add t x] folds one observation in. *)
val add : t -> float -> unit

(** Number of observations so far. *)
val count : t -> int

(** Mean of the observations. @raise Invalid_argument if empty. *)
val mean : t -> float

(** Unbiased sample variance. 0 for fewer than two observations. *)
val variance : t -> float

val std_dev : t -> float

(** Smallest observation. @raise Invalid_argument if empty. *)
val min : t -> float

(** Largest observation. @raise Invalid_argument if empty. *)
val max : t -> float

(** [merge a b] is a fresh accumulator equivalent to having seen both
    streams (Chan et al. parallel combination). *)
val merge : t -> t -> t
