lib/stats/student_t.ml: Array
