lib/stats/ascii_chart.ml: Array Buffer List Printf String
