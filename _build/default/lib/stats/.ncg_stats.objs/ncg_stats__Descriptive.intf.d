lib/stats/descriptive.mli:
