lib/stats/welford.mli:
