lib/stats/ascii_chart.mli:
