lib/stats/summary.ml: Array Descriptive Format Printf Student_t
