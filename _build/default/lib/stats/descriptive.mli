(** Descriptive statistics over float arrays.

    All functions raise [Invalid_argument] on empty input unless stated
    otherwise. Input arrays are never mutated (functions that need sorted
    data sort a copy). *)

val mean : float array -> float

(** Unbiased sample variance (divides by n−1). Returns 0 for a singleton. *)
val variance : float array -> float

(** Square root of {!variance}. *)
val std_dev : float array -> float

(** Standard error of the mean: std_dev / sqrt n. *)
val std_error : float array -> float

val min : float array -> float
val max : float array -> float

(** Median (mean of the two central order statistics for even n). *)
val median : float array -> float

(** [quantile q xs] for [q] in [0,1], by linear interpolation between
    order statistics (type-7, the R default). *)
val quantile : float -> float array -> float

(** [of_int_array a] converts for convenience. *)
val of_int_array : int array -> float array
