(** Two-sided critical values of Student's t distribution.

    The paper reports every experimental point as a mean over 20 trials with
    a 95% confidence interval; with 19 degrees of freedom the normal
    approximation is noticeably off, so we carry the proper t quantiles. *)

(** [critical_95 df] is the two-sided 97.5% quantile t*(df), i.e. the factor
    such that mean ± t* · stderr is a 95% CI. Exact tabulated values for
    df ≤ 30, smooth interpolation towards the normal quantile 1.960 beyond.
    @raise Invalid_argument if [df < 1]. *)
val critical_95 : int -> float

(** [critical_99 df] is the two-sided 99.5% quantile (99% CI factor). *)
val critical_99 : int -> float
