let nonempty name a =
  if Array.length a = 0 then invalid_arg ("Descriptive." ^ name ^ ": empty")

let mean a =
  nonempty "mean" a;
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let variance a =
  nonempty "variance" a;
  let n = Array.length a in
  if n = 1 then 0.0
  else begin
    let m = mean a in
    let acc = ref 0.0 in
    Array.iter
      (fun x ->
        let d = x -. m in
        acc := !acc +. (d *. d))
      a;
    !acc /. float_of_int (n - 1)
  end

let std_dev a = sqrt (variance a)

let std_error a =
  nonempty "std_error" a;
  std_dev a /. sqrt (float_of_int (Array.length a))

let min a =
  nonempty "min" a;
  Array.fold_left Stdlib.min a.(0) a

let max a =
  nonempty "max" a;
  Array.fold_left Stdlib.max a.(0) a

let sorted_copy a =
  let b = Array.copy a in
  Array.sort compare b;
  b

let quantile q a =
  nonempty "quantile" a;
  if q < 0.0 || q > 1.0 then invalid_arg "Descriptive.quantile: q outside [0,1]";
  let b = sorted_copy a in
  let n = Array.length b in
  let h = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor h) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let frac = h -. float_of_int lo in
  b.(lo) +. (frac *. (b.(hi) -. b.(lo)))

let median a = quantile 0.5 a
let of_int_array a = Array.map float_of_int a
