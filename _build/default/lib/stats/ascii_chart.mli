(** Plain-text scatter/line charts.

    The paper's Figures 5–10 are plots; rendering the reproduced series
    as text charts makes shape comparisons possible directly from the
    bench output, with no plotting dependency. Each series gets its own
    marker character; points are mapped onto a character grid with the
    y-range annotated on the left and the x-range underneath. *)

type series = {
  label : string;
  points : (float * float) list;  (** (x, y) pairs, any order *)
}

(** [render ?width ?height ?logx series] draws all series on one grid
    ([width] × [height] interior cells, defaults 60 × 16). When two
    series hit the same cell the earlier series' marker wins. [logx]
    spaces the x axis logarithmically (useful for k = 2 … 1000 sweeps;
    requires every x > 0). Series beyond the 8 available markers reuse
    them cyclically. Returns a string ending in a legend, one line per
    series. Empty input or all-empty series yield a short placeholder. *)
val render : ?width:int -> ?height:int -> ?logx:bool -> series list -> string
