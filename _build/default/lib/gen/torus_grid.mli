(** The stretched d-dimensional toroidal grid of Section 3.1 — the paper's
    main lower-bound construction (Lemmas 3.3–3.11, Theorem 3.12 for
    MaxNCG; reused with d = 2, ℓ = 2 in Lemma 4.1 / Theorem 4.2 for
    SumNCG).

    The construction starts from "intersection vertices": d-tuples
    (ℓ·a₁, …, ℓ·a_d) with all aᵢ of the same parity, the i-th coordinate
    taken modulo 2δᵢℓ. Each intersection vertex is joined to the 2^d
    vertices (x₁±ℓ, …, x_d±ℓ) by a fresh path of length ℓ, whose ℓ−1
    interior vertices are the "non-intersection vertices". Interior
    vertices of two distinct paths may carry the same interpolated
    coordinates (the grid is a 45°-rotated torus whose paths cross without
    intersecting), so vertices are identified by (path, step), with
    coordinates kept as metadata.

    Edge ownership follows the paper: walking a path
    ⟨u = x₀, x₁, …, x_ℓ = u′⟩, vertex xᵢ buys the edge towards xᵢ₋₁ for
    i = 1..ℓ−1 and x_{ℓ−1} additionally buys the edge towards u′;
    intersection vertices buy nothing. For ℓ = 1 there are no interior
    vertices and each edge is bought by its smaller-id endpoint (a
    convention; the paper only uses ℓ ≥ 2 when ownership matters). *)

type t = {
  graph : Ncg_graph.Graph.t;
  buys : (int * int) list;  (** [(buyer, target)] pairs covering every edge *)
  coords : int array array;  (** metadata; may repeat on interior vertices *)
  is_intersection : bool array;
  d : int;
  ell : int;
  deltas : int array;
}

(** [closed ~d ~ell ~deltas] builds the toroidal version.
    Number of vertices: 2·Πδᵢ·(2^{d-1}(ℓ−1) + 1).
    @raise Invalid_argument unless [d >= 1], [ell >= 1], [Array.length
    deltas = d] and every [δᵢ >= 2] (δᵢ = 1 would create parallel paths). *)
val closed : d:int -> ell:int -> deltas:int array -> t

(** [open_grid ~d ~ell ~deltas] is the non-modular variant used in Lemma
    3.5: intersection vertices have aᵢ ∈ [0, δᵢ], and two are joined iff
    every coordinate differs by exactly ℓ. *)
val open_grid : d:int -> ell:int -> deltas:int array -> t

(** [intersection_at t coords] finds the intersection vertex with the given
    coordinates (each reduced modulo 2δᵢℓ for the closed variant), if any. *)
val intersection_at : t -> int array -> int option

(** Right-hand side of Lemma 3.3: the coordinate lower bound
    maxᵢ min(|xᵢ−yᵢ|, 2δᵢℓ−|xᵢ−yᵢ|) on the distance between two vertices
    of the closed grid. *)
val coordinate_distance_lower_bound : t -> int -> int -> int

(** Parameters used by Theorem 3.12 for given α > 1 and k ≥ α:
    ℓ = ⌈α⌉, d = max 2 ⌈log₂(k/ℓ + 2)⌉, δ₁..δ_{d−1} = ⌈k/ℓ⌉ + 1, and δ_d
    the largest value fitting a graph of at most [n_budget] vertices
    (clamped to δ₁ or more so that the last dimension is the longest).
    Returns [None] when the budget cannot accommodate δ_d ≥ δ₁. *)
val params_for_theorem_3_12 :
  alpha:float -> k:int -> n_budget:int -> (int * int * int array) option

(** Parameters used by Theorem 4.2 (SumNCG): d = 2, ℓ = 2,
    δ₁ = ⌈k/2⌉ + 1, δ_d as large as the budget allows. [None] when
    δ₂ ≥ δ₁ does not fit. *)
val params_for_theorem_4_2 : k:int -> n_budget:int -> (int * int * int array) option
