module Graph = Ncg_graph.Graph
module Builder = Ncg_graph.Builder
module Rng = Ncg_prng.Rng

(* Adding an edge (u, v) creates a cycle of length d(u,v) + 1, so the edge
   is safe for girth g iff the current distance between u and v is at
   least g - 1. The distance check is a depth-capped BFS on the builder. *)

let distance_at_least b u v ~bound =
  let n = Builder.order b in
  let dist = Array.make n (-1) in
  let q = Ncg_util.Int_queue.create ~initial_capacity:n () in
  dist.(u) <- 0;
  Ncg_util.Int_queue.push q u;
  let reached = ref false in
  while not (Ncg_util.Int_queue.is_empty q || !reached) do
    let x = Ncg_util.Int_queue.pop q in
    if dist.(x) < bound - 1 then
      Builder.iter_neighbors
        (fun y ->
          if dist.(y) = -1 then begin
            dist.(y) <- dist.(x) + 1;
            if y = v then reached := true;
            Ncg_util.Int_queue.push q y
          end)
        b x
  done;
  not !reached

let generate rng ~n ~max_degree ~girth =
  if girth < 4 then invalid_arg "High_girth.generate: need girth >= 4";
  if n < girth then invalid_arg "High_girth.generate: need n >= girth";
  if max_degree < 2 then invalid_arg "High_girth.generate: need max_degree >= 2";
  let b = Builder.create n in
  (* Seed cycle keeps the graph connected; its length n >= girth. *)
  for i = 0 to n - 1 do
    Builder.add_edge b i ((i + 1) mod n)
  done;
  (* Randomized augmentation: sweep vertices in random order, a few random
     partner attempts each, until a full sweep adds nothing. *)
  let progress = ref true in
  let order = Array.init n Fun.id in
  while !progress do
    progress := false;
    Rng.shuffle rng order;
    Array.iter
      (fun u ->
        if Builder.degree b u < max_degree then
          for _ = 1 to 8 do
            let v = Rng.int rng n in
            if
              v <> u
              && Builder.degree b u < max_degree
              && Builder.degree b v < max_degree
              && (not (Builder.mem_edge b u v))
              && distance_at_least b u v ~bound:(girth - 1)
            then begin
              Builder.add_edge b u v;
              progress := true
            end
          done)
      order
  done;
  Builder.to_graph b
