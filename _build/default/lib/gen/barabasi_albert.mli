(** Barabási–Albert preferential attachment graphs.

    Scale-free networks are the paper's motivating setting (decentralized
    Internet-like network formation); they serve as an additional initial
    class for the dynamics beyond the trees and G(n,p) of Section 5. *)

(** [generate rng ~n ~m] — start from a star on [m + 1] vertices, then
    attach each new vertex to [m] distinct existing vertices chosen with
    probability proportional to their degree. Always connected; [n·m −
    m(m+1)/2]-ish edges. @raise Invalid_argument unless [1 <= m < n]. *)
val generate : Ncg_prng.Rng.t -> n:int -> m:int -> Ncg_graph.Graph.t
