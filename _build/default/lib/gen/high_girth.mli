(** High-girth graph generation for Lemma 3.2 beyond the girth-6 case.

    {!Projective_plane.incidence} gives exact extremal graphs for girth 6.
    For larger (even) girth — k > 2 in the lemma — no simple exact
    construction exists at small sizes, so we provide a randomized
    generator: starting from a Hamiltonian cycle (which guarantees
    connectivity), it repeatedly adds random edges that (a) keep both
    endpoint degrees below the cap and (b) keep the girth at least the
    target, until a full pass finds no addable edge. The result is not
    extremal but is connected, has certified girth ≥ the target, and is as
    locally tree-like as the lemma's construction — which is all the
    equilibrium argument of Lemma 3.2 / Theorem 4.3 uses. *)

(** [generate rng ~n ~max_degree ~girth] — girth must be ≥ 4 and n ≥ girth
    (otherwise even the initial cycle violates it); [max_degree ≥ 2].
    @raise Invalid_argument on parameter violations. *)
val generate :
  Ncg_prng.Rng.t -> n:int -> max_degree:int -> girth:int -> Ncg_graph.Graph.t
