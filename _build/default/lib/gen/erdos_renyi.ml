module Graph = Ncg_graph.Graph
module Bfs = Ncg_graph.Bfs
module Rng = Ncg_prng.Rng

let generate rng ~n ~p =
  if n < 0 then invalid_arg "Erdos_renyi.generate: negative n";
  if p < 0.0 || p > 1.0 then invalid_arg "Erdos_renyi.generate: p outside [0,1]";
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Rng.bernoulli rng p then edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let connected rng ~n ~p ~max_attempts =
  let rec attempt remaining =
    if remaining = 0 then
      failwith "Erdos_renyi.connected: exceeded max_attempts"
    else begin
      let g = generate rng ~n ~p in
      if Bfs.is_connected g then g else attempt (remaining - 1)
    end
  in
  attempt max_attempts
