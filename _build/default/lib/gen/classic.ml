module Graph = Ncg_graph.Graph

let path n =
  Graph.of_edges ~n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Classic.cycle: need n >= 3";
  Graph.of_edges ~n (List.init n (fun i -> (i, (i + 1) mod n)))

let cycle_buys n =
  if n < 3 then invalid_arg "Classic.cycle_buys: need n >= 3";
  List.init n (fun i -> (i, (i + 1) mod n))

let star n =
  if n < 1 then invalid_arg "Classic.star: need n >= 1";
  Graph.of_edges ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let star_buys n =
  if n < 1 then invalid_arg "Classic.star_buys: need n >= 1";
  List.init (n - 1) (fun i -> (0, i + 1))

let complete n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let grid rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Classic.grid: need positive dims";
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c) :: !edges
    done
  done;
  Graph.of_edges ~n:(rows * cols) !edges

let hypercube d =
  if d < 0 then invalid_arg "Classic.hypercube: negative dimension";
  let n = 1 lsl d in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for b = 0 to d - 1 do
      let v = u lxor (1 lsl b) in
      if u < v then edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n !edges
