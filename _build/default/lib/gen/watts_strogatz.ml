module Builder = Ncg_graph.Builder
module Rng = Ncg_prng.Rng

let generate rng ~n ~k ~beta =
  if k < 2 || k mod 2 <> 0 then
    invalid_arg "Watts_strogatz.generate: k must be even and >= 2";
  if k >= n then invalid_arg "Watts_strogatz.generate: need k < n";
  if beta < 0.0 || beta > 1.0 then
    invalid_arg "Watts_strogatz.generate: beta outside [0,1]";
  let b = Builder.create n in
  for u = 0 to n - 1 do
    for j = 1 to k / 2 do
      Builder.add_edge b u ((u + j) mod n)
    done
  done;
  (* Rewire clockwise lattice edges (u, u+j): replace the far endpoint by
     a uniform vertex, skipping self loops and existing edges. *)
  for u = 0 to n - 1 do
    for j = 1 to k / 2 do
      let v = (u + j) mod n in
      if Rng.bernoulli rng beta && Builder.mem_edge b u v then begin
        let attempts = ref 0 in
        let placed = ref false in
        while (not !placed) && !attempts < 32 do
          incr attempts;
          let w = Rng.int rng n in
          if w <> u && not (Builder.mem_edge b u w) then begin
            Builder.remove_edge b u v;
            Builder.add_edge b u w;
            placed := true
          end
        done
      end
    done
  done;
  Builder.to_graph b
