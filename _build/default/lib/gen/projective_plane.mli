(** Incidence graphs of projective planes PG(2, q).

    For a prime q, the point–line incidence graph of PG(2, q) is bipartite,
    (q+1)-regular, has 2(q² + q + 1) vertices and girth exactly 6. This is
    our certified stand-in for the Lazebnik–Ustimenko–Woldar dense
    high-girth graphs of Lemma 3.2 in its strongest case (g = 6, i.e.
    k = 2): every player's view is a tree of height 2, and the edge count
    Θ(n^{3/2}) matches the lemma's Ω(n^{1 + 1/(g-4)}) bound. *)

(** [incidence q] for a prime [q]: vertices [0 .. q²+q] are the points,
    [q²+q+1 .. 2(q²+q+1)-1] the lines; edges join incident point–line
    pairs. @raise Invalid_argument if [q] is not prime. *)
val incidence : int -> Ncg_graph.Graph.t

(** Number of points (= number of lines) of PG(2, q). *)
val plane_size : int -> int
