let is_prime p =
  if p < 2 then false
  else begin
    let rec go i = i * i > p || (p mod i <> 0 && go (i + 1)) in
    go 2
  end

type t = { p : int }

let create p =
  if not (is_prime p) then invalid_arg "Gf.create: modulus must be prime";
  { p }

let order f = f.p
let norm f x = ((x mod f.p) + f.p) mod f.p
let add f a b = norm f (a + b)
let sub f a b = norm f (a - b)
let mul f a b = norm f (a * b)

let pow f x e =
  if e < 0 then invalid_arg "Gf.pow: negative exponent";
  let rec go acc base e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul f acc base else acc in
      go acc (mul f base base) (e lsr 1)
    end
  in
  go 1 (norm f x) e

let inv f x =
  let x = norm f x in
  if x = 0 then raise Division_by_zero;
  pow f x (f.p - 2)
