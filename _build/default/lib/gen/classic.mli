(** Deterministic graph families.

    Where a family comes with a natural edge ownership in the paper (the
    cycle of Lemma 3.1, the star social optimum), a [..._buys] companion
    returns the list of [(buyer, target)] pairs. *)

val path : int -> Ncg_graph.Graph.t
val cycle : int -> Ncg_graph.Graph.t

(** Ownership of {!cycle}: player [i] buys the edge to [(i+1) mod n], so
    every player owns exactly one edge (Lemma 3.1's profile).
    @raise Invalid_argument if [n < 3]. *)
val cycle_buys : int -> (int * int) list

(** [star n] has center [0] and leaves [1 .. n-1]. *)
val star : int -> Ncg_graph.Graph.t

(** Ownership of {!star}: the center buys every edge (the social optimum
    profile for α > 1). *)
val star_buys : int -> (int * int) list

val complete : int -> Ncg_graph.Graph.t

(** [grid rows cols] is the rows×cols king-less (4-neighbour) grid. *)
val grid : int -> int -> Ncg_graph.Graph.t

(** [hypercube d] is the d-dimensional hypercube on 2^d vertices. *)
val hypercube : int -> Ncg_graph.Graph.t
