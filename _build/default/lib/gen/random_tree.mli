(** Uniform random labelled trees via Prüfer sequences.

    The paper's Table I / Figures 5–10 experiments start best-response
    dynamics from trees "picked uniformly at random from the set of all
    possible trees on n vertices" — exactly the distribution a uniform
    Prüfer sequence decodes to (Cayley's bijection). *)

(** [generate rng n] is a uniform random tree on [n] labelled vertices.
    @raise Invalid_argument if [n < 1]. *)
val generate : Ncg_prng.Rng.t -> int -> Ncg_graph.Graph.t

(** [decode_pruefer ~n seq] decodes a Prüfer sequence of length [n-2] with
    entries in [0, n); exposed for testing the bijection.
    @raise Invalid_argument on wrong length or out-of-range entries. *)
val decode_pruefer : n:int -> int array -> Ncg_graph.Graph.t
