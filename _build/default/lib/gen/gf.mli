(** Arithmetic in prime fields GF(p).

    Just enough finite-field machinery to build projective-plane incidence
    graphs (the certified high-girth inputs of Lemma 3.2). Prime fields
    only: the experiments never need proper prime powers, and Z/p keeps the
    module tiny and obviously correct. *)

(** [is_prime p] by trial division; intended for small moduli. *)
val is_prime : int -> bool

type t
(** The field GF(p). *)

(** @raise Invalid_argument if [p] is not prime. *)
val create : int -> t

val order : t -> int
val add : t -> int -> int -> int
val sub : t -> int -> int -> int
val mul : t -> int -> int -> int

(** Multiplicative inverse by Fermat's little theorem.
    @raise Division_by_zero on 0. *)
val inv : t -> int -> int

(** [pow f x e] is x^e mod p, fast exponentiation, [e >= 0]. *)
val pow : t -> int -> int -> int
