module Graph = Ncg_graph.Graph
module Rng = Ncg_prng.Rng

let decode_pruefer ~n seq =
  if n < 1 then invalid_arg "Random_tree.decode_pruefer: need n >= 1";
  if Array.length seq <> max 0 (n - 2) then
    invalid_arg "Random_tree.decode_pruefer: sequence must have length n-2";
  Array.iter
    (fun x ->
      if x < 0 || x >= n then
        invalid_arg "Random_tree.decode_pruefer: entry out of range")
    seq;
  if n = 1 then Graph.empty 1
  else if n = 2 then Graph.of_edges ~n [ (0, 1) ]
  else begin
    (* Standard linear-time decoding: [degree] starts at 1 + multiplicity
       in the sequence; repeatedly match the smallest leaf with the next
       sequence element. *)
    let degree = Array.make n 1 in
    Array.iter (fun x -> degree.(x) <- degree.(x) + 1) seq;
    let edges = ref [] in
    (* [ptr] scans for leaves in increasing order; [leaf] is the current
       smallest unused leaf. *)
    let ptr = ref 0 in
    while degree.(!ptr) <> 1 do
      incr ptr
    done;
    let leaf = ref !ptr in
    Array.iter
      (fun v ->
        edges := (!leaf, v) :: !edges;
        degree.(v) <- degree.(v) - 1;
        if degree.(v) = 1 && v < !ptr then leaf := v
        else begin
          incr ptr;
          while degree.(!ptr) <> 1 do
            incr ptr
          done;
          leaf := !ptr
        end)
      seq;
    (* The last two vertices with degree 1 are the leaf and vertex n-1. *)
    edges := (!leaf, n - 1) :: !edges;
    Graph.of_edges ~n !edges
  end

let generate rng n =
  if n < 1 then invalid_arg "Random_tree.generate: need n >= 1";
  let seq = Array.init (max 0 (n - 2)) (fun _ -> Rng.int rng n) in
  decode_pruefer ~n seq
