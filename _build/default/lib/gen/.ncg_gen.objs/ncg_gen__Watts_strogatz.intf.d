lib/gen/watts_strogatz.mli: Ncg_graph Ncg_prng
