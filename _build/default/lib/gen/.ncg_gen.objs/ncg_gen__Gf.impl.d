lib/gen/gf.ml:
