lib/gen/classic.ml: List Ncg_graph
