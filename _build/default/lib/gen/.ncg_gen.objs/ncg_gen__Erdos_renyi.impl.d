lib/gen/erdos_renyi.ml: Ncg_graph Ncg_prng
