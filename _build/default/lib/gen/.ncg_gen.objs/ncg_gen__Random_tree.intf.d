lib/gen/random_tree.mli: Ncg_graph Ncg_prng
