lib/gen/watts_strogatz.ml: Ncg_graph Ncg_prng
