lib/gen/gf.mli:
