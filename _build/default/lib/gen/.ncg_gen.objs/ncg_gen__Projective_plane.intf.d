lib/gen/projective_plane.mli: Ncg_graph
