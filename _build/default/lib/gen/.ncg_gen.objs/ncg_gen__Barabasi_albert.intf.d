lib/gen/barabasi_albert.mli: Ncg_graph Ncg_prng
