lib/gen/torus_grid.ml: Array Fun Hashtbl List Ncg_graph
