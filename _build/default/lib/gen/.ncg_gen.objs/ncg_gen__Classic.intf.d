lib/gen/classic.mli: Ncg_graph
