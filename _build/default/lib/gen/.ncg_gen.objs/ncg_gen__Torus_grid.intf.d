lib/gen/torus_grid.mli: Ncg_graph
