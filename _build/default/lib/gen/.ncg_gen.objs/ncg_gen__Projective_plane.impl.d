lib/gen/projective_plane.ml: Array Gf List Ncg_graph
