lib/gen/high_girth.ml: Array Fun Ncg_graph Ncg_prng Ncg_util
