lib/gen/erdos_renyi.mli: Ncg_graph Ncg_prng
