lib/gen/high_girth.mli: Ncg_graph Ncg_prng
