lib/gen/random_tree.ml: Array Ncg_graph Ncg_prng
