lib/gen/barabasi_albert.ml: Array Hashtbl Ncg_graph Ncg_prng
