(** Erdős–Rényi G(n, p) random graphs.

    Used by Table II and Figures 7–9: the paper samples G(n,p), discards
    disconnected graphs and regenerates from scratch — {!connected}
    reproduces that protocol. *)

(** [generate rng ~n ~p] includes each of the n(n−1)/2 possible edges
    independently with probability [p].
    @raise Invalid_argument if [p] outside [0,1] or [n < 0]. *)
val generate : Ncg_prng.Rng.t -> n:int -> p:float -> Ncg_graph.Graph.t

(** [connected rng ~n ~p ~max_attempts] resamples until the graph is
    connected. @raise Failure after [max_attempts] rejections (p far below
    the connectivity threshold). *)
val connected :
  Ncg_prng.Rng.t -> n:int -> p:float -> max_attempts:int -> Ncg_graph.Graph.t
