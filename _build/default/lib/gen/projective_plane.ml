module Graph = Ncg_graph.Graph

let plane_size q = (q * q) + q + 1

(* Canonical representatives of the projective points of GF(q)³: the first
   non-zero coordinate is 1. Lines use the same representatives (PG(2,q)
   is self-dual); point (x:y:z) lies on line [a:b:c] iff ax+by+cz = 0. *)
let representatives q =
  let reps = ref [] in
  (* (0 : 0 : 1) *)
  reps := [| 0; 0; 1 |] :: !reps;
  (* (0 : 1 : z) *)
  for z = 0 to q - 1 do
    reps := [| 0; 1; z |] :: !reps
  done;
  (* (1 : y : z) *)
  for y = 0 to q - 1 do
    for z = 0 to q - 1 do
      reps := [| 1; y; z |] :: !reps
    done
  done;
  Array.of_list (List.rev !reps)

let incidence q =
  let f = Gf.create q in
  let reps = representatives q in
  let np = plane_size q in
  assert (Array.length reps = np);
  let dot a b =
    Gf.add f (Gf.mul f a.(0) b.(0)) (Gf.add f (Gf.mul f a.(1) b.(1)) (Gf.mul f a.(2) b.(2)))
  in
  let edges = ref [] in
  for p = 0 to np - 1 do
    for l = 0 to np - 1 do
      if dot reps.(p) reps.(l) = 0 then edges := (p, np + l) :: !edges
    done
  done;
  Graph.of_edges ~n:(2 * np) !edges
