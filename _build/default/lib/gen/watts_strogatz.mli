(** Watts–Strogatz small-world graphs.

    Another realistic initial class for the dynamics: high clustering with
    short paths, interpolating between the ring lattice (β = 0) and an
    Erdős–Rényi-like graph (β = 1). *)

(** [generate rng ~n ~k ~beta] — ring lattice where each vertex connects
    to its [k] nearest neighbours ([k] even, [k < n]), then each edge is
    rewired with probability [beta] to a uniform non-duplicate endpoint.
    Connectivity is typical but not guaranteed for large [beta]; pair with
    a resampling loop if you need it. @raise Invalid_argument on odd [k],
    [k >= n], [k < 2], or [beta] outside [0, 1]. *)
val generate :
  Ncg_prng.Rng.t -> n:int -> k:int -> beta:float -> Ncg_graph.Graph.t
