(** Swap deviations and swap stability.

    The swap game (Alon et al. 2013; Mihalák–Schlegel's asymmetric swap
    equilibrium, both cited by the paper) restricts a player to replacing
    one endpoint of one owned edge, keeping her edge count — so the α
    term cancels and stability is about distances only. Every LKE is
    swap-stable (swaps are a subset of the LKE deviation space), which
    makes swap stability a cheap necessary condition: the dynamics
    engines use full best responses, but a quick swap check filters
    non-equilibria in O(n · deg · view) before invoking the solver. *)

(** [swap_deviations view] — all strategies obtained from the current one
    by replacing exactly one owned target with a different view vertex.
    View coordinates. *)
val swap_deviations : View.t -> int list list

(** [is_swap_stable_max ~k strategy] — no player can strictly decrease
    her view-eccentricity by a single swap. Necessary for a MaxNCG LKE at
    the same k (for any α, since the building cost is unchanged). *)
val is_swap_stable_max : k:int -> Strategy.t -> bool

(** SumNCG version: no admissible swap strictly decreases the
    view-distance sum. Necessary for a SumNCG LKE. *)
val is_swap_stable_sum : k:int -> Strategy.t -> bool

(** Players with an improving swap (Max), with one improving deviation
    each. Empty iff swap stable. *)
val max_swap_violations : k:int -> Strategy.t -> (int * int list) list
