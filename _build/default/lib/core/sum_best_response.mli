(** Best responses for SumNCG under local knowledge.

    Proposition 2.2 splits the deviation space in two: strategies that
    increase the (modified-view) distance of some vertex at distance
    exactly k are never improving — arbitrarily many invisible vertices
    could hang off such a frontier vertex — and for every other strategy
    the worst-case network is the view itself. Hence a best response
    minimizes α·|σ′| + Σ_v d_{H′}(u, v) over the {e admissible} strategies
    only.

    Computing this exactly is NP-hard (the paper proves it for k ≥ 2 and
    1 < α < 2), and unlike MaxNCG there is no dominating-set shortcut, so
    we provide an exhaustive solver for small views — used by the tests
    and by the SumNCG equilibrium certification of the torus construction
    (Theorem 4.2 uses k = 2, where views are tiny) — plus a steepest-
    descent local search (add / drop / swap one edge) for larger views. *)

type outcome = {
  targets : int list;  (** σ′ in view coordinates *)
  usage : int;  (** Σ_v d_{H′}(u,v) *)
  cost : float;
}

(** [admissible view targets] — does the deviation keep every frontier
    vertex (distance exactly k) within distance k in H′? (Frontier
    vertices must not get farther; Proposition 2.2.) Disconnecting any
    vertex of the view is inadmissible too. *)
val admissible : View.t -> int list -> bool

(** [cost_on_view ~alpha view targets] = α·|targets| + Σ_v d_{H′}(u,v),
    or [None] if some view vertex becomes unreachable from the player. *)
val cost_on_view : alpha:float -> View.t -> int list -> float option

(** Cost of the current strategy on the view. *)
val current_cost : alpha:float -> View.t -> float

(** [exact ?max_view ~alpha view] enumerates all 2^(size-1) strategies.
    @raise Invalid_argument if [View.size view - 1 > max_view] (default
    [16]) — the search would not finish. *)
val exact : ?max_view:int -> alpha:float -> View.t -> outcome

(** [branch_and_bound ?max_candidates ~alpha view] is an exact best
    response, like {!exact}, but searched by branch and bound over the
    candidate targets (ordered farthest-first) instead of plain
    enumeration: at each node the completion cost is lower-bounded by
    α·|included so far| + the distance sum when *every* undecided vertex
    is bought (more edges can only shorten distances), and subtrees above
    the incumbent — warm-started from {!local_search} — are pruned. This
    typically handles views of 25–35 vertices where the 2^m enumeration
    is hopeless.
    @raise Invalid_argument when the view has more than [max_candidates]
    (default 34) non-player vertices. *)
val branch_and_bound : ?max_candidates:int -> alpha:float -> View.t -> outcome

(** Steepest-descent local search from the current strategy; each step
    applies the best admissible single-edge addition, deletion or swap.
    Returns a local optimum (not necessarily a best response). *)
val local_search : alpha:float -> View.t -> outcome

(** [improving ?epsilon ~alpha ~mode view] — [Some] iff the chosen engine
    strictly improves on the current strategy. The payload of [`Exact]
    and [`Branch_and_bound] is the size guard ([max_view] resp.
    [max_candidates]). *)
val improving :
  ?epsilon:float ->
  alpha:float ->
  mode:[ `Exact of int | `Branch_and_bound of int | `Local_search ] ->
  View.t ->
  outcome option
