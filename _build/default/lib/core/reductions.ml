module Graph = Ncg_graph.Graph

let entrant_best_targets ?solver g ~alpha =
  let n = Graph.order g in
  if n = 0 then invalid_arg "Reductions.entrant_best_targets: empty graph";
  (* Join the entrant as player n, initially buying every edge (the best
     response is independent of her current strategy; starting from
     buy-everything also keeps the network connected, as Section 2 of the
     paper assumes). Ownership of the existing edges is irrelevant to the
     entrant's optimization; assign to the smaller endpoint. *)
  let existing = Graph.edges g in
  let entrant = n in
  let buys = List.init n (fun v -> (entrant, v)) @ existing in
  let s = Strategy.of_buys ~n:(n + 1) buys in
  let host = Strategy.graph s in
  let view = View.extract s host ~k:(n + 1) entrant in
  let br = Best_response.compute ?solver ~alpha view in
  List.sort compare (View.to_host view br.Best_response.targets)

let dominating_set_via_game g =
  let n = Graph.order g in
  if n = 0 then invalid_arg "Reductions.dominating_set_via_game: empty graph";
  if n = 1 then [ 0 ]
  else begin
    (* alpha = 2/n is the paper's hard regime for MaxNCG: buying a minimum
       dominating set (eccentricity 2) strictly beats buying everyone
       (eccentricity 1) whenever the domination number is below n/2, and
       beats any sparser strategy of eccentricity >= 3. *)
    let alpha = 2.0 /. float_of_int n in
    let targets = entrant_best_targets g ~alpha in
    (* Buying everyone (eccentricity 1) means the dominating-set route was
       not strictly cheaper — exactly the gamma >= n/2 boundary. *)
    if List.length targets = n then
      invalid_arg
        "Reductions.dominating_set_via_game: graph outside the reduction's \
         regime (domination number >= n/2)";
    let problem =
      {
        Ncg_solver.Dominating_set.graph = g;
        radius = 1;
        free_dominators = [];
        forbidden = [];
      }
    in
    if not (Ncg_solver.Dominating_set.dominates problem targets) then
      invalid_arg
        "Reductions.dominating_set_via_game: graph outside the reduction's \
         regime (domination number >= n/2)";
    targets
  end
