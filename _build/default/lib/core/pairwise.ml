module Graph = Ncg_graph.Graph
module Bfs = Ncg_graph.Bfs

type costs = { activation : int -> int -> float }

let uniform_costs ~alpha = { activation = (fun _ _ -> alpha) }

let player_cost costs g i =
  Option.map
    (fun dist ->
      let building =
        Array.fold_left ( +. ) 0.0
          (Array.map (fun j -> costs.activation i j) (Graph.neighbors g i))
      in
      building +. float_of_int dist)
    (Bfs.sum_distances g i)

let social_cost costs g =
  let n = Graph.order g in
  let rec go i acc =
    if i >= n then Some acc
    else begin
      match player_cost costs g i with
      | Some c -> go (i + 1) (acc +. c)
      | None -> None
    end
  in
  go 0 0.0

type instability = Wants_to_cut of int * int | Wants_to_link of int * int

let cost_or_inf costs g i =
  match player_cost costs g i with Some c -> c | None -> infinity

let instabilities costs g =
  let n = Graph.order g in
  let acc = ref [] in
  (* Unilateral cuts. *)
  Graph.iter_edges
    (fun i j ->
      let cut = Graph.of_edges ~n (List.filter (fun e -> e <> (i, j)) (Graph.edges g)) in
      let test a =
        if cost_or_inf costs cut a < cost_or_inf costs g a -. 1e-9 then
          acc := Wants_to_cut (a, (if a = i then j else i)) :: !acc
      in
      test i;
      test j)
    g;
  (* Bilateral additions. *)
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not (Graph.mem_edge g i j) then begin
        let linked = Graph.add_edges g [ (i, j) ] in
        let ci = cost_or_inf costs g i and cj = cost_or_inf costs g j in
        let ci' = cost_or_inf costs linked i and cj' = cost_or_inf costs linked j in
        let strict a b = a < b -. 1e-9 in
        let weak a b = a <= b +. 1e-9 in
        if (strict ci' ci && weak cj' cj) || (strict cj' cj && weak ci' ci) then
          acc := Wants_to_link (i, j) :: !acc
      end
    done
  done;
  List.rev !acc

let is_pairwise_stable costs g = instabilities costs g = []

let improve ?(max_steps = 1000) costs g =
  let rec go g steps =
    if steps >= max_steps then (g, steps)
    else begin
      match instabilities costs g with
      | [] -> (g, steps)
      | Wants_to_cut (a, b) :: _ ->
          let n = Graph.order g in
          let e = (min a b, max a b) in
          go (Graph.of_edges ~n (List.filter (( <> ) e) (Graph.edges g))) (steps + 1)
      | Wants_to_link (i, j) :: _ -> go (Graph.add_edges g [ (i, j) ]) (steps + 1)
    end
  in
  go g 0
