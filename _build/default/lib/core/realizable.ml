module Graph = Ncg_graph.Graph
module Subgraph = Ncg_graph.Subgraph
module Rng = Ncg_prng.Rng

type t = { graph : Graph.t; view_size : int }

let extend rng (v : View.t) ~extra =
  let base = View.size v in
  if extra = 0 then { graph = v.View.graph; view_size = base }
  else begin
    let frontier = Array.of_list (View.frontier v) in
    if Array.length frontier = 0 then
      invalid_arg "Realizable.extend: view has no frontier";
    let edges = ref (Graph.edges v.View.graph) in
    (* Each invisible vertex attaches to a random frontier vertex or to an
       earlier invisible vertex: distance from the player stays > k. *)
    for w = base to base + extra - 1 do
      let anchor =
        if w > base && Rng.bool rng then Rng.int_in_range rng ~lo:base ~hi:(w - 1)
        else frontier.(Rng.int rng (Array.length frontier))
      in
      edges := (w, anchor) :: !edges;
      (* Occasional extra edge for denser invisible regions. *)
      if Rng.bernoulli rng 0.3 then begin
        let other =
          if w > base && Rng.bool rng then Rng.int_in_range rng ~lo:base ~hi:(w - 1)
          else frontier.(Rng.int rng (Array.length frontier))
        in
        if other <> w then edges := (w, other) :: !edges
      end
    done;
    { graph = Graph.of_edges ~n:(base + extra) !edges; view_size = base }
  end

let attach_chain (v : View.t) ~anchor ~length =
  if not (List.mem anchor (View.frontier v)) then
    invalid_arg "Realizable.attach_chain: anchor must be a frontier vertex";
  let base = View.size v in
  let edges = ref (Graph.edges v.View.graph) in
  let prev = ref anchor in
  for w = base to base + length - 1 do
    edges := (!prev, w) :: !edges;
    prev := w
  done;
  { graph = Graph.of_edges ~n:(base + length) !edges; view_size = base }

let is_realizable (v : View.t) g =
  let base = View.size v in
  Graph.order g >= base
  &&
  let ball, mapping = Subgraph.ball_induced g v.View.player ~radius:v.View.k in
  (* The ball must be exactly the view's vertex set (identity renaming,
     since view vertices come first and keep their indices). *)
  Array.length mapping.Subgraph.to_host = base
  && Array.for_all (fun i -> mapping.Subgraph.to_host.(i) = i)
       (Array.init (Array.length mapping.Subgraph.to_host) Fun.id)
  && Graph.equal ball v.View.graph
