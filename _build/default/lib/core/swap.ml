module Graph = Ncg_graph.Graph
module Bfs = Ncg_graph.Bfs

let swap_deviations (v : View.t) =
  let nv = Graph.order v.View.graph in
  let all = List.filter (fun x -> x <> v.View.player) (List.init nv Fun.id) in
  List.concat_map
    (fun out ->
      let kept = List.filter (( <> ) out) v.View.owned in
      List.filter_map
        (fun inn -> if List.mem inn v.View.owned then None else Some (inn :: kept))
        all)
    v.View.owned

let improving_swap_max (v : View.t) =
  let current = Best_response.current_usage v in
  List.find_opt
    (fun targets ->
      match Bfs.eccentricity (View.with_strategy v targets) v.View.player with
      | Some ecc -> ecc < current
      | None -> false)
    (swap_deviations v)

let improving_swap_sum (v : View.t) =
  let current = float_of_int (Ncg_util.Arrayx.sum v.View.dist) in
  List.find_opt
    (fun targets ->
      (* alpha = 0: the building cost cancels in swaps, only distance
         matters; admissibility (Prop. 2.2) still applies. *)
      match Sum_best_response.cost_on_view ~alpha:0.0 v targets with
      | Some cost ->
          cost < current -. 1e-9 && Sum_best_response.admissible v targets
      | None -> false)
    (swap_deviations v)

let each_player_stable strategy ~k has_improvement =
  let g = Strategy.graph strategy in
  let n = Strategy.n_players strategy in
  let rec go u =
    u >= n
    ||
    let view = View.extract strategy g ~k u in
    has_improvement view = None && go (u + 1)
  in
  go 0

let is_swap_stable_max ~k strategy = each_player_stable strategy ~k improving_swap_max
let is_swap_stable_sum ~k strategy = each_player_stable strategy ~k improving_swap_sum

let max_swap_violations ~k strategy =
  let g = Strategy.graph strategy in
  let n = Strategy.n_players strategy in
  List.filter_map
    (fun u ->
      let view = View.extract strategy g ~k u in
      Option.map
        (fun targets -> (u, View.to_host view targets))
        (improving_swap_max view))
    (List.init n Fun.id)
