(** Exhaustive equilibrium analysis of tiny games.

    For very small player counts the entire profile space — each player
    independently picks any subset of the other players — can be walked,
    every Nash Equilibrium and every Local Knowledge Equilibrium
    identified, and the *exact* Price of Anarchy computed. This gives
    machine-checked instances of the paper's structural claims:

    - every NE is an LKE (the LKE deviation test is weaker), hence
      PoA_LKE ≥ PoA_NE (Section 1, "the PoA in our model can only be
      worse");
    - for k large enough the two equilibrium sets coincide
      (Corollary 3.14 / Theorem 4.4 in miniature).

    The profile space has 2^{n(n-1)} points, so this is for n ≤ 4 (and a
    patient n = 5); the [guard] parameter refuses anything larger. *)

type analysis = {
  n : int;
  alpha : float;
  k : int;
  profiles : int;  (** number of profiles examined *)
  nash : Strategy.t list;  (** all pure Nash equilibria *)
  lke : Strategy.t list;  (** all Local Knowledge Equilibria *)
  optimum : float;  (** minimum social cost over all profiles *)
  worst_nash : float option;  (** max social cost over NE, if any *)
  worst_lke : float option;
}

(** [analyze ?guard variant ~alpha ~k ~n] walks all profiles.
    Disconnected profiles are skipped as equilibrium candidates (their
    cost is infinite) but still count towards [profiles]. [guard]
    defaults to 4; pass 5 explicitly if you mean it.
    @raise Invalid_argument if [n > guard] or [n < 2]. *)
val analyze :
  ?guard:int -> Game.variant -> alpha:float -> k:int -> n:int -> analysis

(** Exact PoA over LKEs: worst_lke / optimum ([None] without equilibria). *)
val poa_lke : analysis -> float option

(** Exact PoA over NEs. *)
val poa_nash : analysis -> float option

(** Is every NE also an LKE? (Should always hold; exposed for tests.) *)
val nash_subset_of_lke : analysis -> bool
