module Graph = Ncg_graph.Graph
module Bfs = Ncg_graph.Bfs
module Metrics = Ncg_graph.Metrics

type t = {
  round : int;
  changes : int;
  diameter : int;
  social_cost : float;
  max_degree : int;
  avg_degree : float;
  min_bought : int;
  max_bought : int;
  avg_bought : float;
  min_view : int;
  max_view : int;
  avg_view : float;
}

let view_sizes ~k g =
  Array.init (Graph.order g) (fun u -> List.length (Bfs.ball g u ~radius:k))

let collect variant ~alpha ~k ~round ~changes strategy g =
  let n = Graph.order g in
  let bought = Array.init n (Strategy.bought_count strategy) in
  let views = view_sizes ~k g in
  let fsum a = float_of_int (Ncg_util.Arrayx.sum a) in
  {
    round;
    changes;
    diameter = (match Metrics.diameter g with Some d -> d | None -> -1);
    social_cost =
      (match Game.social_cost variant ~alpha strategy with
      | Some c -> c
      | None -> nan);
    max_degree = Metrics.max_degree g;
    avg_degree = Metrics.avg_degree g;
    min_bought = Ncg_util.Arrayx.min_elt bought;
    max_bought = Ncg_util.Arrayx.max_elt bought;
    avg_bought = fsum bought /. float_of_int n;
    min_view = Ncg_util.Arrayx.min_elt views;
    max_view = Ncg_util.Arrayx.max_elt views;
    avg_view = fsum views /. float_of_int n;
  }

let csv_header =
  "round,changes,diameter,social_cost,max_degree,avg_degree,min_bought,max_bought,avg_bought,min_view,max_view,avg_view"

let to_csv_row t =
  Printf.sprintf "%d,%d,%d,%.4f,%d,%.4f,%d,%d,%.4f,%d,%d,%.4f" t.round t.changes
    t.diameter t.social_cost t.max_degree t.avg_degree t.min_bought t.max_bought
    t.avg_bought t.min_view t.max_view t.avg_view
