(** Strategy profiles.

    A profile assigns to every player [u] the set of players she buys an
    edge towards ([σ_u] in the paper). The underlying network G(σ) is the
    undirected graph with an edge (u,v) whenever [v ∈ σ_u] or [u ∈ σ_v];
    if both bought, the edge collapses in the graph but both still pay α.

    Profiles are immutable; {!with_owned} copies. The profile — not the
    graph — is the source of truth in a game: the graph is always derived
    from it with {!graph}. *)

type t

(** [create ~n] is the empty profile on [n] players. *)
val create : n:int -> t

(** [of_buys ~n buys] builds a profile from [(buyer, target)] pairs.
    Duplicate pairs collapse. @raise Invalid_argument on self purchases or
    out-of-range players. *)
val of_buys : n:int -> (int * int) list -> t

val n_players : t -> int

(** Sorted list of [u]'s targets. *)
val owned : t -> int -> int list

(** [owns t u v] — does [u] buy the edge towards [v]? *)
val owns : t -> int -> int -> bool

(** Number of edges [u] buys. *)
val bought_count : t -> int -> int

(** Total purchases [Σ_u |σ_u|] (an edge bought from both sides counts
    twice, as in the players' building costs). *)
val total_bought : t -> int

(** [with_owned t u targets] replaces [u]'s strategy. Duplicates collapse.
    @raise Invalid_argument on self purchase or out-of-range target. *)
val with_owned : t -> int -> int list -> t

(** Players [v] with [u ∈ σ_v] (they bought an edge towards [u]). *)
val in_buyers : t -> int -> int list

(** The network G(σ). *)
val graph : t -> Ncg_graph.Graph.t

(** [random_orientation rng g] gives each edge of [g] to a uniformly random
    endpoint — the paper's protocol for initial trees and G(n,p) graphs. *)
val random_orientation : Ncg_prng.Rng.t -> Ncg_graph.Graph.t -> t

val equal : t -> t -> bool

(** Text serialization: first line [n], then one line per player with her
    space-separated targets (possibly empty). Round-trips with
    {!of_string}. *)
val to_string : t -> string

(** Parse the {!to_string} format. @raise Invalid_argument on malformed
    input (wrong line count, non-integers, self edges, out of range). *)
val of_string : string -> t

(** Canonical string key of the profile — used by the dynamics engine to
    detect best-response cycles by exact profile recurrence. *)
val to_key : t -> string

val pp : Format.formatter -> t -> unit
