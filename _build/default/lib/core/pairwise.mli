(** The original network creation model of Jackson & Wolinsky (1996), as
    described in the paper's introduction: forming an edge (i, j) needs
    the {e consent of both} endpoints (each paying her own activation
    cost c_ij resp. c_ji), while severance is unilateral; the routing
    cost is the sum of distances. The matching solution concept is
    {e pairwise stability}:

    - no player strictly gains by deleting one of her incident edges, and
    - no pair of non-adjacent players can add their edge so that one
      strictly gains and the other does not lose.

    This module provides the cost model and the stability check as a
    full-knowledge baseline next to the paper's LKE machinery; it also
    generalizes the α-uniform SumNCG cost ({!uniform_costs}). The network
    here is undirected with symmetric consent, so a configuration is just
    a {!Ncg_graph.Graph.t} plus the cost matrix. *)

type costs = {
  activation : int -> int -> float;
      (** [activation i j] — what player [i] pays for edge (i, j). Needs
          only be defined for [i <> j]; not necessarily symmetric. *)
}

(** The uniform cost matrix c_ij = α (Fabrikant et al.'s simplification). *)
val uniform_costs : alpha:float -> costs

(** [player_cost costs g i] = Σ_{j adjacent} activation i j + Σ_j d(i,j);
    [None] when [i] cannot reach everyone. *)
val player_cost : costs -> Ncg_graph.Graph.t -> int -> float option

(** [social_cost costs g] — sum over players; [None] if disconnected. *)
val social_cost : costs -> Ncg_graph.Graph.t -> float option

type instability =
  | Wants_to_cut of int * int  (** player (fst) strictly gains by cutting *)
  | Wants_to_link of int * int
      (** adding the edge strictly helps one endpoint and does not hurt
          the other *)

(** [instabilities costs g] — all violations of pairwise stability.
    Deviations that disconnect the network count as infinitely bad for
    the cutter, hence never chosen. *)
val instabilities : costs -> Ncg_graph.Graph.t -> instability list

val is_pairwise_stable : costs -> Ncg_graph.Graph.t -> bool

(** Greedy improving dynamics: repeatedly apply the first instability
    (cut or link) until stable or [max_steps]. Returns the final network
    and the number of steps taken. *)
val improve : ?max_steps:int -> costs -> Ncg_graph.Graph.t -> Ncg_graph.Graph.t * int
