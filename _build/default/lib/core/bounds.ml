(* All Θ/O/Ω constants are 1; log is base 2. Validity cutoffs that the
   paper states asymptotically (k = o(log n), "for a suitable constant c")
   are realized as: o(log n) ↦ k ≤ (log₂ n)/2, and c ↦ 1. *)

let log2 x = log x /. log 2.0

type max_region = Max_full_knowledge | Max_region of int

let lb_cycle ~n ~alpha = float_of_int n /. (1.0 +. alpha)

let lb_girth ~n ~k =
  if k < 2 then invalid_arg "Bounds.lb_girth: need k >= 2";
  float_of_int n ** (1.0 /. float_of_int ((2 * k) - 2))

let lb_torus ~n ~alpha ~k =
  (* Theorem 3.12 with ℓ = α: n / (α · 2^{(log(k/α)+3)·log(k/α)}). *)
  let q = log2 (float_of_int k /. alpha) in
  let q = max q 0.0 in
  float_of_int n /. (alpha *. (2.0 ** ((q +. 3.0) *. q)))

(* Validity predicates. *)
let cycle_valid ~alpha ~k = alpha >= float_of_int (k - 1)
let girth_valid ~n ~k = k >= 2 && float_of_int k <= log2 (float_of_int n) /. 2.0

let torus_valid ~n ~alpha ~k =
  alpha > 1.0
  && alpha <= float_of_int k
  && float_of_int k <= 2.0 ** (sqrt (log2 (float_of_int n)) -. 3.0)

(* Corollary 3.14: for α ≤ k−1 and k above the smallest of the three
   thresholds, every player sees the whole equilibrium graph. *)
let max_full_knowledge ~n ~alpha ~k =
  k >= n
  || alpha <= float_of_int (k - 1)
     &&
     let nf = float_of_int n in
     let kf = float_of_int k in
     let threshold =
       min nf
         (min ((nf *. alpha *. alpha) ** (1.0 /. 3.0))
            (alpha *. (4.0 ** sqrt (log2 nf))))
     in
     kf > threshold

let max_region ~n ~alpha ~k =
  if max_full_knowledge ~n ~alpha ~k then Max_full_knowledge
  else begin
    let nf = float_of_int n in
    let kf = float_of_int k in
    let logn = log2 nf in
    if alpha >= kf -. 1.0 then
      (* Below the k = α+1 line: regions ⑥, ②, ③. *)
      if alpha <= logn then Max_region 6
      else if girth_valid ~n ~k && 1.0 +. alpha >= nf ** (1.0 -. (1.0 /. float_of_int (max 1 ((2 * k) - 2)))) then
        Max_region 3
      else Max_region 2
    else if kf > 2.0 ** sqrt logn then
      (* Too local for any of our lower bounds: ⑦ (small α) or ⑧. *)
      if alpha <= logn then Max_region 7 else Max_region 8
    else if alpha <= logn then
      if girth_valid ~n ~k then Max_region 1 else Max_region 4
    else Max_region 5
  end

let max_lower_bound ~n ~alpha ~k =
  let candidates =
    List.concat
      [
        (if cycle_valid ~alpha ~k then [ ("cycle (Lemma 3.1)", lb_cycle ~n ~alpha) ]
         else []);
        (if girth_valid ~n ~k then [ ("girth (Lemma 3.2)", lb_girth ~n ~k) ] else []);
        (if torus_valid ~n ~alpha ~k then
           [ ("torus (Theorem 3.12)", lb_torus ~n ~alpha ~k) ]
         else []);
      ]
  in
  List.fold_left
    (fun acc (name, v) ->
      match acc with
      | Some (_, best) when best >= v -> acc
      | _ -> Some (name, v))
    None candidates

let max_upper_bound ~n ~alpha ~k =
  let nf = float_of_int n in
  let kf = float_of_int k in
  let density_term = nf ** (2.0 /. min alpha (2.0 *. kf)) in
  if alpha >= kf -. 1.0 then
    (* Theorem 3.18, first branch: diameter can reach Θ(n). *)
    density_term +. (nf /. (1.0 +. alpha))
  else begin
    let q = max (log2 (kf /. alpha)) 0.0 in
    let diameter_term =
      min (nf *. alpha /. (kf *. kf)) (nf *. kf /. (alpha *. (2.0 ** (q *. q))))
    in
    (nf ** (2.0 /. alpha)) +. diameter_term
  end

type sum_region = Sum_full_knowledge | Sum_strong_lb | Sum_girth_lb | Sum_open

let sum_full_knowledge ~alpha ~k = float_of_int k > 1.0 +. (2.0 *. sqrt alpha)

let sum_region ~n ~alpha ~k =
  if sum_full_knowledge ~alpha ~k then Sum_full_knowledge
  else if alpha >= float_of_int (k * n) && k >= 2 then Sum_girth_lb
  else if float_of_int k <= (alpha /. 4.0) ** (1.0 /. 3.0) then Sum_strong_lb
  else Sum_open

let lb_sum_torus ~n ~alpha ~k =
  let nf = float_of_int n and kf = float_of_int k in
  if alpha <= nf then nf /. kf else 1.0 +. (nf *. nf /. (kf *. alpha))

let lb_sum_girth ~n ~k = lb_girth ~n ~k

let sum_lower_bound ~n ~alpha ~k =
  let nf = float_of_int n and kf = float_of_int k in
  let torus_ok =
    alpha >= 4.0 *. (kf ** 3.0) && kf <= sqrt (2.0 *. nf /. 3.0) -. 4.0
  in
  let girth_ok = alpha >= kf *. nf && k >= 2 in
  let candidates =
    List.concat
      [
        (if torus_ok then [ ("torus (Theorem 4.2)", lb_sum_torus ~n ~alpha ~k) ]
         else []);
        (if girth_ok then [ ("girth (Theorem 4.3)", lb_sum_girth ~n ~k) ] else []);
      ]
  in
  List.fold_left
    (fun acc (name, v) ->
      match acc with
      | Some (_, best) when best >= v -> acc
      | _ -> Some (name, v))
    None candidates

let equilibrium_girth_bound ~alpha ~k = 2.0 +. Float.min alpha (2.0 *. float_of_int k)

let check_equilibrium_girth g ~alpha ~k =
  let bound = equilibrium_girth_bound ~alpha ~k in
  match Ncg_graph.Girth.girth g with
  | None -> true
  | Some girth -> float_of_int girth >= bound

let equilibrium_edge_bound ~n ~alpha ~k =
  let nf = float_of_int n in
  nf ** (1.0 +. (2.0 /. Float.min alpha (2.0 *. float_of_int k)))

let ball_growth_diagnostics g ~alpha ~k =
  let n = Ncg_graph.Graph.order g in
  let acc = ref [] in
  for u = 0 to n - 1 do
    let dist = Ncg_graph.Bfs.distances_within g u ~radius:k in
    let view_ecc = Array.fold_left max 0 dist in
    if view_ecc = k then
      for i = 1 to k / 2 do
        let layer =
          Ncg_util.Arrayx.count (fun d -> d = i) dist
        in
        acc := (u, i, layer, float_of_int (i - 1) /. alpha) :: !acc
      done
  done;
  List.rev !acc

let check_ball_growth g ~alpha ~k =
  List.for_all
    (fun (_, _, layer, required) -> float_of_int layer >= required -. 1e-9)
    (ball_growth_diagnostics g ~alpha ~k)

let fig7_trend ~n ~alpha ~anchor_k ~anchor_value k =
  (* Once alpha >= 2 and n are fixed, the paper reduces its upper bound to
     f(k) = k / 2^{log^2 k} (Section 5.4) — the red benchmark curve of
     Figure 7. n and alpha only matter through the anchor. *)
  ignore n;
  ignore alpha;
  let f k =
    let kf = float_of_int k in
    kf /. (2.0 ** (log2 kf ** 2.0))
  in
  let base = f anchor_k in
  if base = 0.0 then nan else anchor_value *. f k /. base

let region_to_string = function
  | Max_full_knowledge -> "NE==LKE"
  | Max_region i -> Printf.sprintf "region %d" i

let sum_region_to_string = function
  | Sum_full_knowledge -> "NE==LKE"
  | Sum_strong_lb -> "strong-LB"
  | Sum_girth_lb -> "girth-LB"
  | Sum_open -> "open"

let max_table ~n ~alphas ~ks =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "MaxNCG PoA bounds, n = %d (constants set to 1)\n" n);
  Buffer.add_string buf
    "alpha      k        region      lower-bound              upper-bound\n";
  List.iter
    (fun alpha ->
      List.iter
        (fun k ->
          let region = region_to_string (max_region ~n ~alpha ~k) in
          let lb =
            match max_lower_bound ~n ~alpha ~k with
            | Some (name, v) -> Printf.sprintf "%.3g  [%s]" v name
            | None -> "-"
          in
          let ub = max_upper_bound ~n ~alpha ~k in
          Buffer.add_string buf
            (Printf.sprintf "%-10.3g %-8d %-11s %-25s %.3g\n" alpha k region lb ub))
        ks)
    alphas;
  Buffer.contents buf

let sum_table ~n ~alphas ~ks =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "SumNCG PoA bounds, n = %d (constants set to 1)\n" n);
  Buffer.add_string buf "alpha      k        region      lower-bound\n";
  List.iter
    (fun alpha ->
      List.iter
        (fun k ->
          let region = sum_region_to_string (sum_region ~n ~alpha ~k) in
          let lb =
            match sum_lower_bound ~n ~alpha ~k with
            | Some (name, v) -> Printf.sprintf "%.3g  [%s]" v name
            | None -> "-"
          in
          Buffer.add_string buf
            (Printf.sprintf "%-10.3g %-8d %-11s %s\n" alpha k region lb))
        ks)
    alphas;
  Buffer.contents buf
