(** Network features collected after every round of dynamics — the raw
    series behind Tables I–II and Figures 5–10. *)

type t = {
  round : int;
  changes : int;  (** strategy changes performed during the round *)
  diameter : int;  (** -1 if disconnected *)
  social_cost : float;  (** [nan] if disconnected *)
  max_degree : int;
  avg_degree : float;
  min_bought : int;
  max_bought : int;
  avg_bought : float;
  min_view : int;  (** smallest |β_{G,k}(u)| over players *)
  max_view : int;
  avg_view : float;
}

(** [collect variant ~alpha ~k ~round ~changes strategy g] — [g] must be
    [Strategy.graph strategy]. *)
val collect :
  Game.variant ->
  alpha:float ->
  k:int ->
  round:int ->
  changes:int ->
  Strategy.t ->
  Ncg_graph.Graph.t ->
  t

(** [view_sizes ~k g] is |β_{G,k}(u)| for every u. *)
val view_sizes : k:int -> Ncg_graph.Graph.t -> int array

(** Header and row for CSV output of a feature record. *)
val csv_header : string

val to_csv_row : t -> string
