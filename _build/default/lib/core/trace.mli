(** Move traces of dynamics runs.

    A trace records every accepted strategy change — (round, player, old
    targets, new targets) — so a run can be audited, serialized, diffed
    across solver configurations, and {e replayed}: applying the moves to
    the initial profile must reproduce the final profile exactly, which
    the test suite uses as an end-to-end invariant of the engine. *)

type move = {
  round : int;  (** 1-based round in which the move happened *)
  player : int;
  before : int list;  (** owned targets before, host ids, sorted *)
  after : int list;  (** owned targets after, host ids, sorted *)
}

type t = {
  n : int;  (** number of players *)
  moves : move list;  (** chronological *)
}

val empty : int -> t

(** [replay initial t] applies the moves in order.
    @raise Invalid_argument if a move's [before] does not match the
    profile state when its turn comes (a corrupted or misordered trace),
    or player counts mismatch. *)
val replay : Strategy.t -> t -> Strategy.t

(** Number of moves. *)
val length : t -> int

(** Moves of one player, chronological. *)
val by_player : t -> int -> move list

(** Text serialization, one move per line:
    ["round player | before... | after..."]; round-trips with
    {!of_string}. *)
val to_string : t -> string

(** @raise Invalid_argument on malformed input. *)
val of_string : string -> t
