(** The paper's theoretical PoA bounds, as executable formulas.

    Every asymptotic bound of Sections 3 and 4 is implemented with its
    hidden constants set to 1, so the values are trend references (the red
    curve of Figure 7, the per-region entries of Figures 3 and 4), not
    certified inequalities. Region classification follows the geometry of
    Figure 3 (MaxNCG) and Figure 4 (SumNCG); the o(·)/Θ(·) boundaries are
    realized with explicit, documented cutoffs. *)

(** {1 MaxNCG (Figure 3)} *)

type max_region =
  | Max_full_knowledge  (** gray region: LKE ≡ NE (Corollary 3.14) *)
  | Max_region of int  (** numbered region ① … ⑧ of Figure 3 *)

val max_region : n:int -> alpha:float -> k:int -> max_region

(** Lemma 3.1: Ω(n / (1+α)), valid for α ≥ k−1. *)
val lb_cycle : n:int -> alpha:float -> float

(** Lemma 3.2: Ω(n^{1/(2k−2)}), valid for 2 ≤ k = o(log n). *)
val lb_girth : n:int -> k:int -> float

(** Theorem 3.12: Ω(n / (α·2^{(log(k/α)+3)·log(k/α)})), valid for
    1 < α ≤ k ≤ 2^{√(log n) − 3}. *)
val lb_torus : n:int -> alpha:float -> k:int -> float

(** The best applicable lower bound at (n, α, k) with its name, honouring
    each bound's validity range; [None] when none applies (regions ⑦⑧ and
    the full-knowledge region, where the trivial bound is meant). *)
val max_lower_bound : n:int -> alpha:float -> k:int -> (string * float) option

(** Theorem 3.18 upper bound (both branches, α ≥ k−1 and α ≤ k−1). *)
val max_upper_bound : n:int -> alpha:float -> k:int -> float

(** {1 SumNCG (Figure 4)} *)

type sum_region =
  | Sum_full_knowledge  (** k > 1 + 2√α: LKE ≡ NE (Theorem 4.4) *)
  | Sum_strong_lb  (** k ≤ (α/4)^{1/3}: Theorem 4.2 applies *)
  | Sum_girth_lb  (** α ≥ kn, k ≥ 2: Theorem 4.3 applies *)
  | Sum_open  (** between Θ(∛α) and Θ(√α): open in the paper *)

val sum_region : n:int -> alpha:float -> k:int -> sum_region

(** Theorem 4.2: Ω(n/k) for α ≤ n, Ω(1 + n²/(kα)) for α > n;
    valid for α ≥ 4k³ and k ≤ √(2n/3) − 4. *)
val lb_sum_torus : n:int -> alpha:float -> k:int -> float

(** Theorem 4.3: Ω(n^{1/(2k−2)}), valid for α ≥ kn, k ≥ 2. *)
val lb_sum_girth : n:int -> k:int -> float

val sum_lower_bound : n:int -> alpha:float -> k:int -> (string * float) option

(** {1 Structural invariants of equilibrium graphs} *)

(** Lemma 3.17's girth threshold: every MaxNCG LKE graph has girth at
    least [2 + min(α, 2k)] (a shorter cycle lets its seeing owner drop an
    edge and save α at a distance penalty below α). *)
val equilibrium_girth_bound : alpha:float -> k:int -> float

(** [check_equilibrium_girth g ~alpha ~k] — does [g] satisfy the Lemma
    3.17 girth invariant? Must hold for every LKE the engine certifies or
    the dynamics produce. *)
val check_equilibrium_girth : Ncg_graph.Graph.t -> alpha:float -> k:int -> bool

(** Lemma 3.17's edge-count consequence: O(n^{1 + 2/min(α,2k)}) edges
    (constant = 1). *)
val equilibrium_edge_bound : n:int -> alpha:float -> k:int -> float

(** Lemma 3.13's layer-growth machinery, in its safe constant-exact form:
    in a MaxNCG LKE, a player u whose view-eccentricity equals k could,
    by buying edges to her entire i-th layer L_i (i ≤ k/2, all visible),
    cut her view-eccentricity to at most 1 + k − i; stability therefore
    forces α·|L_i| ≥ i − 1. [check_ball_growth g ~alpha ~k] verifies
    |L_i| ≥ (i−1)/α for every such player and layer — a falsifiable
    invariant of every equilibrium this library produces. *)
val check_ball_growth : Ncg_graph.Graph.t -> alpha:float -> k:int -> bool

(** The raw diagnostic behind {!check_ball_growth}: for each player with
    view-eccentricity k, the list of (layer index, measured |L_i|,
    required lower bound). *)
val ball_growth_diagnostics :
  Ncg_graph.Graph.t -> alpha:float -> k:int -> (int * int * int * float) list

(** {1 Trend curves and tables} *)

(** The Figure 7 benchmark: the α ≤ k−1 upper-bound expression evaluated
    at fixed n and α as a function of k, scaled so that its value at
    [anchor_k] equals [anchor_value] (the paper overlays the trend on the
    measured series). *)
val fig7_trend :
  n:int -> alpha:float -> anchor_k:int -> anchor_value:float -> int -> float

(** Human-readable bound table for a grid of (α, k) pairs at given n:
    region, lower bound, upper bound per row (Figure 3 as text). *)
val max_table : n:int -> alphas:float list -> ks:int list -> string

(** Figure 4 as text. *)
val sum_table : n:int -> alphas:float list -> ks:int list -> string
