lib/core/trace.mli: Strategy
