lib/core/experiment.ml: Array Dynamics Features Game List Ncg_gen Ncg_graph Ncg_prng Ncg_stats Ncg_util Strategy
