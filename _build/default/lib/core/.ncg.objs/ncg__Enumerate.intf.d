lib/core/enumerate.mli: Game Strategy
