lib/core/strategy.mli: Format Ncg_graph Ncg_prng
