lib/core/pairwise.mli: Ncg_graph
