lib/core/reductions.ml: Best_response List Ncg_graph Ncg_solver Strategy View
