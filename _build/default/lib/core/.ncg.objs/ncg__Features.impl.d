lib/core/features.ml: Array Game List Ncg_graph Ncg_util Printf Strategy
