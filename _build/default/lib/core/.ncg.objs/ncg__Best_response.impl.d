lib/core/best_response.ml: Array Fun List Ncg_graph Ncg_solver Ncg_util Option View
