lib/core/swap.ml: Best_response Fun List Ncg_graph Ncg_util Option Strategy Sum_best_response View
