lib/core/enumerate.ml: Array Fun Game List Lke Ncg_graph Option Strategy View
