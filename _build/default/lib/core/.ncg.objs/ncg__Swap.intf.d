lib/core/swap.mli: Strategy View
