lib/core/view.mli: Ncg_graph Strategy
