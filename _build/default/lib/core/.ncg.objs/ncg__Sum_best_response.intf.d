lib/core/sum_best_response.mli: View
