lib/core/reductions.mli: Ncg_graph
