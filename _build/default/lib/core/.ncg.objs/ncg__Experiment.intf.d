lib/core/experiment.mli: Dynamics Ncg_stats Strategy
