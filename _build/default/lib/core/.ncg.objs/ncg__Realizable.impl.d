lib/core/realizable.ml: Array Fun List Ncg_graph Ncg_prng View
