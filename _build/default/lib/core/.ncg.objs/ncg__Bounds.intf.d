lib/core/bounds.mli: Ncg_graph
