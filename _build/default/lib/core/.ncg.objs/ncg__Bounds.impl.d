lib/core/bounds.ml: Array Buffer Float List Ncg_graph Ncg_util Printf
