lib/core/realizable.mli: Ncg_graph Ncg_prng View
