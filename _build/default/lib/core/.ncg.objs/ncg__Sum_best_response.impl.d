lib/core/sum_best_response.ml: Array Float Fun List Ncg_graph Ncg_util Option View
