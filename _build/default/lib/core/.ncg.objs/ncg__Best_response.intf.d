lib/core/best_response.mli: View
