lib/core/view.ml: Array List Ncg_graph Strategy
