lib/core/lke.mli: Best_response Strategy View
