lib/core/pairwise.ml: Array List Ncg_graph Option
