lib/core/strategy.ml: Array Buffer Format List Ncg_graph Ncg_prng String
