lib/core/game.ml: Array Ncg_graph Option Strategy
