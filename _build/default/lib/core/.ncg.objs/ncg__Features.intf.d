lib/core/features.mli: Game Ncg_graph Strategy
