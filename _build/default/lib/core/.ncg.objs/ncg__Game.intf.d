lib/core/game.mli: Ncg_graph Strategy
