lib/core/dynamics.ml: Array Best_response Features Fun Game Hashtbl List Ncg_graph Ncg_prng Option Strategy Sum_best_response Trace View
