lib/core/trace.ml: Buffer List Printf Strategy String
