lib/core/lke.ml: Best_response Fun List Ncg_graph Option Strategy Sum_best_response View
