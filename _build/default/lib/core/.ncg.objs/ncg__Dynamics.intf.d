lib/core/dynamics.mli: Features Game Ncg_graph Strategy Trace
