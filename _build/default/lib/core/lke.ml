module Graph = Ncg_graph.Graph
module Bfs = Ncg_graph.Bfs

let delta_max ~alpha (v : View.t) targets =
  let h' = View.with_strategy v targets in
  match Bfs.eccentricity h' v.View.player with
  | None -> infinity
  | Some ecc' ->
      let ecc = Best_response.current_usage v in
      let d_edges = List.length targets - List.length v.View.owned in
      (alpha *. float_of_int d_edges) +. float_of_int (ecc' - ecc)

let delta_sum ~alpha (v : View.t) targets =
  match Sum_best_response.cost_on_view ~alpha v targets with
  | None -> infinity
  | Some cost' ->
      if not (Sum_best_response.admissible v targets) then infinity
      else cost' -. Sum_best_response.current_cost ~alpha v

let default_players strategy = List.init (Strategy.n_players strategy) Fun.id

let violations_max ?solver ?epsilon ?players ~alpha ~k strategy =
  let g = Strategy.graph strategy in
  let players = match players with Some p -> p | None -> default_players strategy in
  List.filter_map
    (fun u ->
      let view = View.extract strategy g ~k u in
      Option.map
        (fun outcome -> (u, outcome))
        (Best_response.improving ?solver ?epsilon ~alpha view))
    players

let is_lke_max ?solver ?epsilon ?players ~alpha ~k strategy =
  violations_max ?solver ?epsilon ?players ~alpha ~k strategy = []

let is_lke_sum_exact ?max_view ?(epsilon = 1e-9) ?players ~alpha ~k strategy =
  let g = Strategy.graph strategy in
  let players = match players with Some p -> p | None -> default_players strategy in
  List.for_all
    (fun u ->
      let view = View.extract strategy g ~k u in
      let best = Sum_best_response.exact ?max_view ~alpha view in
      best.Sum_best_response.cost
      >= Sum_best_response.current_cost ~alpha view -. epsilon)
    players

let is_single_move_stable_sum ?(epsilon = 1e-9) ?players ~alpha ~k strategy =
  let g = Strategy.graph strategy in
  let players = match players with Some p -> p | None -> default_players strategy in
  List.for_all
    (fun u ->
      let view = View.extract strategy g ~k u in
      let best = Sum_best_response.local_search ~alpha view in
      best.Sum_best_response.cost
      >= Sum_best_response.current_cost ~alpha view -. epsilon)
    players
