(** Networks realizable with respect to a player's view — the set Σ|σ_u
    that the LKE definition (Eq. (3) of the paper) quantifies over.

    A network G is realizable w.r.t. the view H of player u at radius k
    iff the ball β_{G,k}(u) induces exactly H (with the same ownership of
    u's and her in-neighbours' edges). Equivalently: G extends H with new
    vertices whose only connections into the ball are edges to *frontier*
    vertices (distance exactly k from u) — anything closer would have
    been visible, and extra edges inside the ball would change the
    induced subgraph.

    This module generates random such extensions. It exists to test the
    model (Propositions 2.1 and 2.2 bound the player's worst case over
    all realizable networks, and {!attach_chain} realizes the
    unboundedness argument of Prop. 2.2), and to let library users build
    intuition for what a player can and cannot rule out. *)

(** A realizable extension of a view. Vertices [0 .. View.size - 1] are
    the view's vertices under the view's own numbering; the extension's
    extra vertices follow. *)
type t = {
  graph : Ncg_graph.Graph.t;
  view_size : int;  (** vertices below this index are the view's *)
}

(** [extend rng view ~extra] adds [extra] invisible vertices, each
    attached to at least one random frontier vertex or previously added
    invisible vertex (keeping the network connected), with a sprinkling
    of additional random edges among the invisible part. Returns the view
    graph itself when [extra = 0].
    @raise Invalid_argument if [extra > 0] but the view has no frontier
    (the player provably sees the whole network — no strict extension is
    realizable). *)
val extend : Ncg_prng.Rng.t -> View.t -> extra:int -> t

(** [attach_chain view ~anchor ~length] appends a path of [length] new
    vertices behind the frontier vertex [anchor] (view coordinates) — the
    paper's device for making a deviation that pushes [anchor] beyond
    distance k arbitrarily bad. @raise Invalid_argument if [anchor] is
    not a frontier vertex. *)
val attach_chain : View.t -> anchor:int -> length:int -> t

(** [is_realizable view g] checks the defining property: the ball of the
    view's radius around the player in [g] induces the view graph again.
    [g]'s first [View.size view] vertices must be the view's. *)
val is_realizable : View.t -> Ncg_graph.Graph.t -> bool
