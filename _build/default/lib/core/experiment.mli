(** Reusable experiment harness behind Tables I–II and Figures 5–10.

    Builds seeded initial configurations (uniform random trees or
    connected G(n,p) with fair-coin edge ownership — the paper's setup),
    runs the round-robin dynamics, and aggregates per-trial statistics
    into mean ± 95% CI summaries. Every entry point takes a [seed];
    trial [i] uses an independent stream split from it, so any data point
    is reproducible in isolation. *)

(** The α grid of Section 5.1. *)
val paper_alphas : float list

(** The k grid of Section 5.1; 1000 plays the full-knowledge game. *)
val paper_ks : int list

(** [initial_tree ~seed ~n] is a uniform random tree with random edge
    ownership. *)
val initial_tree : seed:int -> n:int -> Strategy.t

(** [initial_gnp ~seed ~n ~p] resamples G(n,p) until connected, then
    assigns random ownership. *)
val initial_gnp : seed:int -> n:int -> p:float -> Strategy.t

(** Barabási–Albert initial configuration (scale-free; always connected),
    random ownership. Not used by the paper — an extra robustness class. *)
val initial_ba : seed:int -> n:int -> m:int -> Strategy.t

(** Watts–Strogatz initial configuration, resampled until connected. *)
val initial_ws : seed:int -> n:int -> k:int -> beta:float -> Strategy.t

(** Statistics of an initial configuration (Tables I and II). *)
type graph_stats = {
  edges : int;
  diameter : int;
  max_degree : int;
  max_bought : int;
}

val initial_stats : Strategy.t -> graph_stats

(** Per-run statistics extracted from a finished dynamics. *)
type run_stats = {
  converged : bool;
  cycled : bool;
  rounds : int;  (** rounds that performed at least one change *)
  total_moves : int;
  quality : float;  (** social cost / social optimum at the end *)
  unfairness : float;
  diameter : int;
  max_degree : int;
  max_bought : int;
  min_view : int;
  avg_view : float;
  social_cost : float;
}

(** [run_one config strategy] runs the dynamics and summarizes. *)
val run_one : Dynamics.config -> Strategy.t -> run_stats

(** [trials ~make_initial ~config ~trials ~seed] runs several seeds
    sequentially. *)
val trials :
  make_initial:(seed:int -> Strategy.t) ->
  config:Dynamics.config ->
  trials:int ->
  seed:int ->
  run_stats list

(** [trials_parallel ~domains …] fans the trials out over OCaml domains.
    Trials are independent and individually seeded, so the result list is
    identical to {!trials} regardless of [domains]. *)
val trials_parallel :
  domains:int ->
  make_initial:(seed:int -> Strategy.t) ->
  config:Dynamics.config ->
  trials:int ->
  seed:int ->
  run_stats list

(** [summarize f runs] is the mean ± CI of [f] over the runs. *)
val summarize : (run_stats -> float) -> run_stats list -> Ncg_stats.Summary.t

(** Fraction of runs satisfying a predicate. *)
val fraction : (run_stats -> bool) -> run_stats list -> float
