module Graph = Ncg_graph.Graph
module Rng = Ncg_prng.Rng

type t = { n : int; owned : int list array }

let check_player n u =
  if u < 0 || u >= n then invalid_arg "Strategy: player out of range"

let normalize n u targets =
  let targets = List.sort_uniq compare targets in
  List.iter
    (fun v ->
      check_player n v;
      if v = u then invalid_arg "Strategy: a player cannot buy a self edge")
    targets;
  targets

let create ~n =
  if n < 0 then invalid_arg "Strategy.create: negative n";
  { n; owned = Array.make n [] }

let of_buys ~n buys =
  let t = create ~n in
  let acc = Array.make n [] in
  List.iter
    (fun (u, v) ->
      check_player n u;
      acc.(u) <- v :: acc.(u))
    buys;
  { t with owned = Array.mapi (fun u l -> normalize n u l) acc }

let n_players t = t.n

let owned t u =
  check_player t.n u;
  t.owned.(u)

let owns t u v = List.mem v (owned t u)
let bought_count t u = List.length (owned t u)
let total_bought t = Array.fold_left (fun acc l -> acc + List.length l) 0 t.owned

let with_owned t u targets =
  check_player t.n u;
  let owned = Array.copy t.owned in
  owned.(u) <- normalize t.n u targets;
  { t with owned }

let in_buyers t u =
  check_player t.n u;
  let acc = ref [] in
  for v = t.n - 1 downto 0 do
    if v <> u && List.mem u t.owned.(v) then acc := v :: !acc
  done;
  !acc

let graph t =
  let edges = ref [] in
  Array.iteri
    (fun u targets -> List.iter (fun v -> edges := (u, v) :: !edges) targets)
    t.owned;
  Graph.of_edges ~n:t.n !edges

let random_orientation rng g =
  let buys =
    List.map
      (fun (u, v) -> if Rng.bool rng then (u, v) else (v, u))
      (Graph.edges g)
  in
  of_buys ~n:(Graph.order g) buys

let equal a b = a.n = b.n && a.owned = b.owned

let to_string t =
  let buf = Buffer.create (16 * t.n) in
  Buffer.add_string buf (string_of_int t.n);
  Buffer.add_char buf '\n';
  Array.iter
    (fun targets ->
      Buffer.add_string buf (String.concat " " (List.map string_of_int targets));
      Buffer.add_char buf '\n')
    t.owned;
  Buffer.contents buf

let of_string s =
  match String.split_on_char '\n' s with
  | [] | [ "" ] -> invalid_arg "Strategy.of_string: empty input"
  | header :: body -> begin
      match int_of_string_opt (String.trim header) with
      | None -> invalid_arg "Strategy.of_string: bad player count"
      | Some n ->
          if n < 0 then invalid_arg "Strategy.of_string: negative player count";
          (* Exactly n player lines, then only blank trailing lines. *)
          let rec split_body i acc = function
            | rest when i = n ->
                if List.exists (fun l -> String.trim l <> "") rest then
                  invalid_arg "Strategy.of_string: wrong number of player lines";
                List.rev acc
            | [] -> invalid_arg "Strategy.of_string: wrong number of player lines"
            | line :: rest -> split_body (i + 1) (line :: acc) rest
          in
          let player_lines = split_body 0 [] body in
          let parse_line u line =
            String.split_on_char ' ' (String.trim line)
            |> List.filter (fun tok -> tok <> "")
            |> List.map (fun tok ->
                   match int_of_string_opt tok with
                   | Some v -> (u, v)
                   | None -> invalid_arg "Strategy.of_string: bad target")
          in
          of_buys ~n (List.concat (List.mapi parse_line player_lines))
    end

let to_key t =
  let buf = Buffer.create (8 * t.n) in
  Array.iter
    (fun targets ->
      List.iter
        (fun v ->
          Buffer.add_string buf (string_of_int v);
          Buffer.add_char buf ',')
        targets;
      Buffer.add_char buf ';')
    t.owned;
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun u targets ->
      Format.fprintf ppf "%d -> {%a}@," u
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           Format.pp_print_int)
        targets)
    t.owned;
  Format.fprintf ppf "@]"
