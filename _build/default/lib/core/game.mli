(** The two games: cost functions, social cost, social optimum.

    MaxNCG (Eq. (2) of the paper): a player pays α per bought edge plus her
    eccentricity. SumNCG (Eq. (1)): α per bought edge plus the sum of her
    distances to all other players. Disconnected usage is treated as
    infinite: cost functions return [None]. *)

type variant = Max | Sum

val variant_to_string : variant -> string

(** [usage variant g u] is the eccentricity (Max) or the status/sum of
    distances (Sum) of [u] in [g]; [None] if [u] cannot reach everyone. *)
val usage : variant -> Ncg_graph.Graph.t -> int -> int option

(** [player_cost variant ~alpha strategy g u] = α·|σ_u| + usage. [g] must
    be [Strategy.graph strategy] (passed in to avoid rebuilding). *)
val player_cost :
  variant -> alpha:float -> Strategy.t -> Ncg_graph.Graph.t -> int -> float option

(** All player costs at once (one BFS per player). *)
val player_costs :
  variant -> alpha:float -> Strategy.t -> Ncg_graph.Graph.t -> float array option

(** [social_cost variant ~alpha strategy] = Σ_u player_cost u. *)
val social_cost : variant -> alpha:float -> Strategy.t -> float option

(** The reference social optimum used for the quality-of-equilibrium and
    PoA measurements: the better of the spanning star (optimal for α ≥ 1
    in Max, α ≥ 2 in Sum — the paper's regime of interest) and the clique
    (optimal for small α). Closed forms, O(1).
    @raise Invalid_argument if [n < 1]. *)
val social_optimum : variant -> alpha:float -> n:int -> float

(** Quality of a configuration: social cost / {!social_optimum}. [None] on
    disconnection. This is the paper's "quality of equilibrium" when the
    strategy is an LKE. *)
val quality : variant -> alpha:float -> Strategy.t -> float option

(** [unfairness variant ~alpha strategy g] is max player cost / min player
    cost (Figure 9's "unfairness ratio"). [None] on disconnection. *)
val unfairness :
  variant -> alpha:float -> Strategy.t -> Ncg_graph.Graph.t -> float option
