type move = { round : int; player : int; before : int list; after : int list }
type t = { n : int; moves : move list }

let empty n = { n; moves = [] }
let length t = List.length t.moves
let by_player t u = List.filter (fun m -> m.player = u) t.moves

let replay initial t =
  if Strategy.n_players initial <> t.n then
    invalid_arg "Trace.replay: player count mismatch";
  List.fold_left
    (fun s m ->
      if Strategy.owned s m.player <> m.before then
        invalid_arg "Trace.replay: move does not match the profile state";
      Strategy.with_owned s m.player m.after)
    initial t.moves

let ints_to_string xs = String.concat " " (List.map string_of_int xs)

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (string_of_int t.n);
  Buffer.add_char buf '\n';
  List.iter
    (fun m ->
      Buffer.add_string buf
        (Printf.sprintf "%d %d | %s | %s\n" m.round m.player
           (ints_to_string m.before) (ints_to_string m.after)))
    t.moves;
  Buffer.contents buf

let parse_ints s =
  String.split_on_char ' ' (String.trim s)
  |> List.filter (fun tok -> tok <> "")
  |> List.map (fun tok ->
         match int_of_string_opt tok with
         | Some v -> v
         | None -> invalid_arg "Trace.of_string: bad integer")

let of_string s =
  match String.split_on_char '\n' s with
  | [] | [ "" ] -> invalid_arg "Trace.of_string: empty input"
  | header :: body -> begin
      match int_of_string_opt (String.trim header) with
      | None -> invalid_arg "Trace.of_string: bad player count"
      | Some n ->
          let moves =
            List.filter_map
              (fun line ->
                if String.trim line = "" then None
                else begin
                  match String.split_on_char '|' line with
                  | [ head; before; after ] -> begin
                      match parse_ints head with
                      | [ round; player ] ->
                          Some
                            {
                              round;
                              player;
                              before = parse_ints before;
                              after = parse_ints after;
                            }
                      | _ -> invalid_arg "Trace.of_string: bad move header"
                    end
                  | _ -> invalid_arg "Trace.of_string: bad move line"
                end)
              body
          in
          { n; moves }
    end
