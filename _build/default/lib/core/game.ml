module Graph = Ncg_graph.Graph
module Bfs = Ncg_graph.Bfs

type variant = Max | Sum

let variant_to_string = function Max -> "max" | Sum -> "sum"

let usage variant g u =
  match variant with
  | Max -> Bfs.eccentricity g u
  | Sum -> Bfs.sum_distances g u

let player_cost variant ~alpha strategy g u =
  Option.map
    (fun use ->
      (alpha *. float_of_int (Strategy.bought_count strategy u)) +. float_of_int use)
    (usage variant g u)

let player_costs variant ~alpha strategy g =
  let n = Strategy.n_players strategy in
  let costs = Array.make n 0.0 in
  let ok = ref true in
  let u = ref 0 in
  while !ok && !u < n do
    (match player_cost variant ~alpha strategy g !u with
    | Some c -> costs.(!u) <- c
    | None -> ok := false);
    incr u
  done;
  if !ok then Some costs else None

let social_cost variant ~alpha strategy =
  let g = Strategy.graph strategy in
  Option.map (Array.fold_left ( +. ) 0.0) (player_costs variant ~alpha strategy g)

let star_cost variant ~alpha ~n =
  if n = 1 then 0.0
  else begin
    let nf = float_of_int n in
    let building = alpha *. (nf -. 1.0) in
    match variant with
    | Max ->
        (* Center eccentricity 1, each of the n-1 leaves eccentricity 2
           (or 1 when n = 2). *)
        if n = 2 then building +. 2.0
        else building +. 1.0 +. (2.0 *. (nf -. 1.0))
    | Sum ->
        (* Center status n-1; each leaf 1 + 2(n-2). *)
        building +. (nf -. 1.0) +. ((nf -. 1.0) *. ((2.0 *. nf) -. 3.0))
  end

let clique_cost variant ~alpha ~n =
  if n = 1 then 0.0
  else begin
    let nf = float_of_int n in
    let building = alpha *. nf *. (nf -. 1.0) /. 2.0 in
    match variant with
    | Max -> building +. nf
    | Sum -> building +. (nf *. (nf -. 1.0))
  end

let social_optimum variant ~alpha ~n =
  if n < 1 then invalid_arg "Game.social_optimum: need n >= 1";
  min (star_cost variant ~alpha ~n) (clique_cost variant ~alpha ~n)

let quality variant ~alpha strategy =
  let n = Strategy.n_players strategy in
  Option.map
    (fun cost -> cost /. social_optimum variant ~alpha ~n)
    (social_cost variant ~alpha strategy)

let unfairness variant ~alpha strategy g =
  Option.map
    (fun costs ->
      let mx = Array.fold_left max neg_infinity costs in
      let mn = Array.fold_left min infinity costs in
      if mn <= 0.0 then infinity else mx /. mn)
    (player_costs variant ~alpha strategy g)
