(** Local Knowledge Equilibrium (LKE) — the paper's solution concept.

    A profile σ̄ is an LKE when for every player u and every alternative
    strategy σ_u, the worst-case cost difference Δ(σ̄_u, σ_u) over all
    networks realizable given u's view is non-negative (Eq. (3)).
    Propositions 2.1 and 2.2 turn the quantification over infinitely many
    realizable networks into finite checks on the view, which is what this
    module implements. *)

(** [delta_max ~alpha view targets] is Δ(σ_u, σ′_u) for MaxNCG: by
    Proposition 2.1 it equals
    α(|σ′|−|σ|) + ecc_{H′}(u) − ecc_H(u),
    with [infinity] when the deviation disconnects the view. *)
val delta_max : alpha:float -> View.t -> int list -> float

(** [delta_sum ~alpha view targets] is Δ(σ_u, σ′_u) for SumNCG: by
    Proposition 2.2, [infinity] when the deviation pushes a frontier
    vertex beyond distance k (unboundedly many invisible vertices could
    sit behind it) or disconnects the view; otherwise the cost difference
    on the view. *)
val delta_sum : alpha:float -> View.t -> int list -> float

(** [is_lke_max ?solver ?epsilon ~alpha ~k strategy] — no player has a
    deviation with negative Δ. Exact when [solver = `Exact] (default). *)
val is_lke_max :
  ?solver:[ `Exact | `Budgeted of int | `Greedy ] ->
  ?epsilon:float ->
  ?players:int list ->
  alpha:float ->
  k:int ->
  Strategy.t ->
  bool

(** The players with an improving MaxNCG deviation, with their best
    responses. Empty iff LKE. [players] restricts the check (useful on
    vertex-transitive constructions where one orbit representative
    suffices). *)
val violations_max :
  ?solver:[ `Exact | `Budgeted of int | `Greedy ] ->
  ?epsilon:float ->
  ?players:int list ->
  alpha:float ->
  k:int ->
  Strategy.t ->
  (int * Best_response.outcome) list

(** Exact SumNCG LKE check by exhaustive search over every player's view.
    @raise Invalid_argument when some view exceeds [max_view] vertices
    (default 16 non-player vertices). *)
val is_lke_sum_exact :
  ?max_view:int ->
  ?epsilon:float ->
  ?players:int list ->
  alpha:float ->
  k:int ->
  Strategy.t ->
  bool

(** Necessary condition for a SumNCG LKE that scales to large views: no
    admissible single-edge addition, deletion or swap improves any player.
    (A profile failing this is certainly not an LKE.) *)
val is_single_move_stable_sum :
  ?epsilon:float ->
  ?players:int list ->
  alpha:float ->
  k:int ->
  Strategy.t ->
  bool
