module Graph = Ncg_graph.Graph
module Bfs = Ncg_graph.Bfs

type analysis = {
  n : int;
  alpha : float;
  k : int;
  profiles : int;
  nash : Strategy.t list;
  lke : Strategy.t list;
  optimum : float;
  worst_nash : float option;
  worst_lke : float option;
}

(* Strategy of player [u] encoded as a bitmask over the other players in
   increasing order. *)
let targets_of_mask ~n u mask =
  let others = List.filter (fun x -> x <> u) (List.init n Fun.id) in
  List.filteri (fun i _ -> mask land (1 lsl i) <> 0) others

let profile_of_masks ~n masks =
  let buys = ref [] in
  Array.iteri
    (fun u mask -> List.iter (fun v -> buys := (u, v) :: !buys) (targets_of_mask ~n u mask))
    masks;
  Strategy.of_buys ~n !buys

(* Player u's full-knowledge cost under an alternative mask, [infinity]
   when she cannot reach everyone. *)
let deviation_cost variant ~alpha ~n masks u mask' =
  let saved = masks.(u) in
  masks.(u) <- mask';
  let s = profile_of_masks ~n masks in
  masks.(u) <- saved;
  match Game.player_cost variant ~alpha s (Strategy.graph s) u with
  | Some c -> c
  | None -> infinity

let is_nash variant ~alpha ~n masks current_costs =
  let m = 1 lsl (n - 1) in
  let rec player u =
    u >= n
    ||
    let rec deviation mask' =
      mask' >= m
      || (mask' = masks.(u)
         || deviation_cost variant ~alpha ~n masks u mask'
            >= current_costs.(u) -. 1e-9)
         && deviation (mask' + 1)
    in
    deviation 0 && player (u + 1)
  in
  player 0

let is_lke variant ~alpha ~k ~n strategy g =
  let delta =
    match variant with
    | Game.Max -> Lke.delta_max ~alpha
    | Game.Sum -> Lke.delta_sum ~alpha
  in
  let rec player u =
    u >= n
    ||
    let view = View.extract strategy g ~k u in
    let others =
      Array.of_list
        (List.filter (fun x -> x <> view.View.player) (List.init (View.size view) Fun.id))
    in
    let m = 1 lsl Array.length others in
    let rec deviation mask =
      mask >= m
      ||
      let targets = ref [] in
      Array.iteri (fun i x -> if mask land (1 lsl i) <> 0 then targets := x :: !targets) others;
      delta view !targets >= -1e-9 && deviation (mask + 1)
    in
    deviation 0 && player (u + 1)
  in
  player 0

let analyze ?(guard = 4) variant ~alpha ~k ~n =
  if n < 2 then invalid_arg "Enumerate.analyze: need n >= 2";
  if n > guard then invalid_arg "Enumerate.analyze: n exceeds the guard";
  let m = 1 lsl (n - 1) in
  let masks = Array.make n 0 in
  let profiles = ref 0 in
  let nash = ref [] and lke = ref [] in
  let optimum = ref infinity in
  let worst_nash = ref neg_infinity and worst_lke = ref neg_infinity in
  let rec walk u =
    if u = n then begin
      incr profiles;
      let s = profile_of_masks ~n masks in
      let g = Strategy.graph s in
      if Bfs.is_connected g then begin
        match Game.player_costs variant ~alpha s g with
        | None -> ()
        | Some costs ->
            let social = Array.fold_left ( +. ) 0.0 costs in
            if social < !optimum then optimum := social;
            if is_nash variant ~alpha ~n masks costs then begin
              nash := s :: !nash;
              if social > !worst_nash then worst_nash := social
            end;
            if is_lke variant ~alpha ~k ~n s g then begin
              lke := s :: !lke;
              if social > !worst_lke then worst_lke := social
            end
      end
    end
    else
      for mask = 0 to m - 1 do
        masks.(u) <- mask;
        walk (u + 1)
      done
  in
  walk 0;
  {
    n;
    alpha;
    k;
    profiles = !profiles;
    nash = List.rev !nash;
    lke = List.rev !lke;
    optimum = !optimum;
    worst_nash = (if !worst_nash > neg_infinity then Some !worst_nash else None);
    worst_lke = (if !worst_lke > neg_infinity then Some !worst_lke else None);
  }

let poa_lke a = Option.map (fun w -> w /. a.optimum) a.worst_lke
let poa_nash a = Option.map (fun w -> w /. a.optimum) a.worst_nash

let nash_subset_of_lke a =
  List.for_all (fun ne -> List.exists (Strategy.equal ne) a.lke) a.nash
