(** The dominating-set connection of Section 2.

    The paper's NP-hardness arguments rest on one structural fact: when a
    fresh player joins an existing network G of n players (with α in the
    hard regime), her best response is to buy edges towards a minimum
    dominating set of G — for MaxNCG this yields eccentricity 2 at minimum
    building cost. This module makes the two directions of that argument
    executable:

    - {!entrant_best_targets}: the optimal join strategy, computed with
      the exact solver;
    - {!dominating_set_via_game}: recover a minimum dominating set of an
      arbitrary graph by asking the game engine for the entrant's best
      response — the reduction MINIMUM DOMINATING SET ≤ BEST RESPONSE
      run in the hardness direction, demonstrating that best response is
      at least as hard as MDS. *)

(** [entrant_best_targets ?solver g ~alpha] — targets in [g] (host ids)
    an entrant should buy, assuming [2/n < alpha < 1] so that eccentricity
    2 at minimum edges beats both a single edge (eccentricity ≥ 3 when G
    is not dominated by one vertex... evaluated exactly, no assumption
    actually needed: the full best-response optimization is run).
    @raise Invalid_argument on an empty graph. *)
val entrant_best_targets :
  ?solver:[ `Exact | `Budgeted of int | `Greedy ] ->
  Ncg_graph.Graph.t ->
  alpha:float ->
  int list

(** [dominating_set_via_game g] is a *minimum* dominating set of a
    non-empty connected graph [g], obtained purely through the game
    engine (entrant best response at an α chosen inside the reduction's
    hard regime). Falls back to radius-aware handling: if some vertex
    dominates everything the singleton is returned. *)
val dominating_set_via_game : Ncg_graph.Graph.t -> int list
