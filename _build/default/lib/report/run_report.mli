(** Markdown reports of dynamics runs and experiment grids.

    Self-contained documents: configuration, outcome, the per-round
    feature table, an ASCII social-cost chart, the move trace summary,
    and final-network statistics — everything needed to archive or review
    an experiment without rerunning it. *)

(** [of_run ~title config initial result] — report of one dynamics run.
    [initial] must be the profile the run started from. *)
val of_run :
  title:string ->
  Ncg.Dynamics.config ->
  Ncg.Strategy.t ->
  Ncg.Dynamics.result ->
  string

(** [of_grid ~title ~rows] — report of a parameter grid: one table row per
    cell, columns = (label, summaries). Free-form: callers supply
    pre-rendered cells. *)
val of_grid :
  title:string -> header:string list -> rows:string list list -> string
