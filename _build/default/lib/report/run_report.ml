module Dynamics = Ncg.Dynamics
module Strategy = Ncg.Strategy
module Features = Ncg.Features
module Game = Ncg.Game
module Graph = Ncg_graph.Graph
module Metrics = Ncg_graph.Metrics

let outcome_to_string = function
  | Dynamics.Converged r ->
      Printf.sprintf "converged (equilibrium) after %d changing round(s)" (r - 1)
  | Dynamics.Cycle_detected r -> Printf.sprintf "best-response cycle detected at round %d" r
  | Dynamics.Max_rounds_exceeded -> "round budget exhausted without convergence"

let solver_to_string = function
  | `Exact -> "exact branch & bound"
  | `Budgeted b -> Printf.sprintf "branch & bound, %d-node budget" b
  | `Greedy -> "greedy"

let of_run ~title (config : Dynamics.config) initial (result : Dynamics.result) =
  let md = Markdown.create () in
  Markdown.heading md 1 title;
  let n = Strategy.n_players initial in
  Markdown.heading md 2 "Configuration";
  Markdown.bullet_list md
    [
      Printf.sprintf "game: %sNCG" (Game.variant_to_string config.Dynamics.variant);
      Printf.sprintf "players: %d" n;
      Printf.sprintf "alpha = %g, k = %d" config.Dynamics.alpha config.Dynamics.k;
      Printf.sprintf "solver: %s" (solver_to_string config.Dynamics.solver);
      Printf.sprintf "order: %s"
        (match config.Dynamics.order with
        | `Round_robin -> "round robin"
        | `Random_sweep seed -> Printf.sprintf "random sweeps (seed %d)" seed);
    ];
  Markdown.heading md 2 "Outcome";
  let final = result.Dynamics.final in
  let g = Strategy.graph final in
  Markdown.bullet_list md
    [
      outcome_to_string result.Dynamics.outcome;
      Printf.sprintf "total moves: %d" result.Dynamics.total_moves;
      Printf.sprintf "final diameter: %s"
        (match Metrics.diameter g with Some d -> string_of_int d | None -> "inf");
      Printf.sprintf "final edges: %d" (Graph.size g);
      (match Game.quality config.Dynamics.variant ~alpha:config.Dynamics.alpha final with
      | Some q -> Printf.sprintf "quality (social cost / optimum): %.4f" q
      | None -> "final network disconnected");
    ];
  if result.Dynamics.features <> [] then begin
    Markdown.heading md 2 "Per-round features";
    Markdown.table md
      ~header:
        [ "round"; "changes"; "diameter"; "social cost"; "max deg"; "max bought"; "min view" ]
      (List.map
         (fun f ->
           [
             string_of_int f.Features.round;
             string_of_int f.Features.changes;
             string_of_int f.Features.diameter;
             Printf.sprintf "%.2f" f.Features.social_cost;
             string_of_int f.Features.max_degree;
             string_of_int f.Features.max_bought;
             string_of_int f.Features.min_view;
           ])
         result.Dynamics.features);
    let points =
      List.map
        (fun f -> (float_of_int f.Features.round, f.Features.social_cost))
        result.Dynamics.features
    in
    if List.length points >= 2 then begin
      Markdown.heading md 2 "Social cost per round";
      Markdown.code_block md
        (Ncg_stats.Ascii_chart.render ~width:50 ~height:10
           [ { Ncg_stats.Ascii_chart.label = "social cost"; points } ])
    end
  end;
  Markdown.heading md 2 "Trace";
  let trace = result.Dynamics.trace in
  Markdown.paragraph md
    (Printf.sprintf
       "%d move(s); replaying them on the initial profile reproduces the final \
        profile. Most active players:"
       (Ncg.Trace.length trace));
  let activity =
    List.init n (fun u -> (u, List.length (Ncg.Trace.by_player trace u)))
    |> List.filter (fun (_, c) -> c > 0)
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  let top = List.filteri (fun i _ -> i < 5) activity in
  if top = [] then Markdown.paragraph md "(no moves — already stable)"
  else
    Markdown.table md ~header:[ "player"; "moves" ]
      (List.map (fun (u, c) -> [ string_of_int u; string_of_int c ]) top);
  Markdown.to_string md

let of_grid ~title ~header ~rows =
  let md = Markdown.create () in
  Markdown.heading md 1 title;
  Markdown.table md ~header rows;
  Markdown.to_string md
