lib/report/markdown.mli:
