lib/report/run_report.mli: Ncg
