lib/report/run_report.ml: List Markdown Ncg Ncg_graph Ncg_stats Printf
