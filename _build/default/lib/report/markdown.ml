type t = Buffer.t

let create () = Buffer.create 1024

let blank_line t =
  let len = Buffer.length t in
  if len > 0 && Buffer.nth t (len - 1) <> '\n' then Buffer.add_char t '\n';
  Buffer.add_char t '\n'

let heading t level text =
  let level = max 1 (min 6 level) in
  blank_line t;
  Buffer.add_string t (String.make level '#');
  Buffer.add_char t ' ';
  Buffer.add_string t text;
  Buffer.add_char t '\n'

let paragraph t text =
  blank_line t;
  Buffer.add_string t text;
  Buffer.add_char t '\n'

let bullet_list t items =
  blank_line t;
  List.iter
    (fun item ->
      Buffer.add_string t "- ";
      Buffer.add_string t item;
      Buffer.add_char t '\n')
    items

let escape_cell cell =
  String.concat "\\|" (String.split_on_char '|' cell)

let table t ~header rows =
  let width = List.length header in
  let pad row =
    let len = List.length row in
    if len >= width then List.filteri (fun i _ -> i < width) row
    else row @ List.init (width - len) (fun _ -> "")
  in
  let emit_row cells =
    Buffer.add_string t "| ";
    Buffer.add_string t (String.concat " | " (List.map escape_cell cells));
    Buffer.add_string t " |\n"
  in
  blank_line t;
  emit_row header;
  emit_row (List.map (fun _ -> "---") header);
  List.iter (fun row -> emit_row (pad row)) rows

let code_block ?lang t text =
  (* A fence strictly longer than any backtick run inside the text. *)
  let longest_backtick_run =
    let best = ref 0 and current = ref 0 in
    String.iter
      (fun c ->
        if c = '`' then begin
          incr current;
          if !current > !best then best := !current
        end
        else current := 0)
      text;
    !best
  in
  let fence = String.make (max 3 (longest_backtick_run + 1)) '`' in
  blank_line t;
  Buffer.add_string t fence;
  (match lang with Some l -> Buffer.add_string t l | None -> ());
  Buffer.add_char t '\n';
  Buffer.add_string t text;
  if text = "" || text.[String.length text - 1] <> '\n' then Buffer.add_char t '\n';
  Buffer.add_string t fence;
  Buffer.add_char t '\n'

let to_string t = Buffer.contents t
