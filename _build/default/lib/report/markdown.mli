(** Minimal markdown document builder.

    Just the constructs the experiment reports need — headings, paragraphs,
    pipe tables, fenced code blocks, bullet lists — rendered with the
    escaping rules pipe tables require. *)

type t

val create : unit -> t

val heading : t -> int -> string -> unit
(** [heading t level text] — [level] clamped to 1..6. *)

val paragraph : t -> string -> unit

val bullet_list : t -> string list -> unit

(** [table t ~header rows] renders a pipe table; every row is padded or
    truncated to the header width. Cell text has [|] escaped. *)
val table : t -> header:string list -> string list list -> unit

(** [code_block ?lang t text] — fenced block; fences inside [text] are
    lengthened around as needed. *)
val code_block : ?lang:string -> t -> string -> unit

val to_string : t -> string
