lib/solver/set_cover.ml: Array List Ncg_util
