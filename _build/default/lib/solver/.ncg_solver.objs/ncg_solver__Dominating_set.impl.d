lib/solver/dominating_set.ml: Array List Ncg_graph Ncg_util Option Set_cover
