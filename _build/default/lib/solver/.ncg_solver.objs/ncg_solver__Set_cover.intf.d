lib/solver/set_cover.mli: Ncg_util
