lib/solver/dominating_set.mli: Ncg_graph
