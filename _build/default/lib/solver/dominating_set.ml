module Bitset = Ncg_util.Bitset
module Graph = Ncg_graph.Graph
module Power = Ncg_graph.Power

type problem = {
  graph : Graph.t;
  radius : int;
  free_dominators : int list;
  forbidden : int list;
}

let to_instance p =
  let n = Graph.order p.graph in
  let balls = Power.ball_sets p.graph p.radius in
  let pre = Bitset.create n in
  List.iter (fun v -> Bitset.union_into ~into:pre balls.(v)) p.free_dominators;
  let forbidden = Bitset.of_list n p.forbidden in
  (* Forbidden vertices get an empty candidate set so that they can never
     be selected, without disturbing vertex numbering. *)
  let sets =
    Array.init n (fun v -> if Bitset.mem forbidden v then Bitset.create n else balls.(v))
  in
  { Set_cover.universe = n; sets; pre_covered = Some pre }

let of_solution (s : Set_cover.solution) = s.Set_cover.chosen

let solve ?max_size ?node_budget p =
  Option.map of_solution (Set_cover.solve ?max_size ?node_budget (to_instance p))

let greedy p = Option.map of_solution (Set_cover.greedy (to_instance p))

let dominates p chosen = Set_cover.is_cover (to_instance p) chosen
