(** Minimum dominating set with forced and forbidden vertices, on top of
    {!Set_cover}.

    This is exactly the optimization problem the paper reduces MaxNCG best
    response to (Section 5.3): dominate the (h−1)-th power of the view
    minus the player, where the vertices that already bought an edge
    towards the player dominate for free ("constrained to be included"
    in the paper's phrasing — equivalently their domination is free since
    the player keeps those edges either way). *)

type problem = {
  graph : Ncg_graph.Graph.t;
  radius : int;
      (** a vertex dominates all vertices within this distance; 1 = the
          classical dominating set *)
  free_dominators : int list;
      (** vertices whose closed balls are covered at no cost *)
  forbidden : int list;  (** vertices that may not be chosen as dominators *)
}

(** [solve ?max_size ?node_budget p] is a minimum list of chosen
    dominators (excluding the free ones), or [None] if infeasible / above
    [max_size]. [node_budget] bounds the branch-and-bound search as in
    {!Set_cover.solve}. *)
val solve : ?max_size:int -> ?node_budget:int -> problem -> int list option

(** Greedy variant with the same interface. *)
val greedy : problem -> int list option

(** [dominates p chosen] checks that the free dominators plus [chosen]
    cover every vertex of the graph. *)
val dominates : problem -> int list -> bool
