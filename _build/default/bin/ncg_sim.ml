(* ncg_sim: run one round-robin best-response dynamics and print per-round
   features as CSV.

   Example:
     dune exec bin/ncg_sim.exe -- --class tree -n 50 --alpha 2 -k 3 --seed 7
     dune exec bin/ncg_sim.exe -- --class gnp -n 100 -p 0.1 --alpha 0.5 -k 5 *)

open Cmdliner

let run graph_class n p alpha k seed variant solver max_rounds quiet =
  let strategy =
    match graph_class with
    | "tree" -> Ncg.Experiment.initial_tree ~seed ~n
    | "gnp" -> Ncg.Experiment.initial_gnp ~seed ~n ~p
    | "cycle" -> Ncg.Strategy.of_buys ~n (Ncg_gen.Classic.cycle_buys n)
    | "star" -> Ncg.Strategy.of_buys ~n (Ncg_gen.Classic.star_buys n)
    | other -> failwith (Printf.sprintf "unknown graph class %S" other)
  in
  let variant = match variant with "max" -> Ncg.Game.Max | "sum" -> Ncg.Game.Sum | v -> failwith ("unknown variant " ^ v) in
  let solver =
    match solver with
    | "exact" -> `Exact
    | "greedy" -> `Greedy
    | s -> begin
        match int_of_string_opt s with
        | Some budget -> `Budgeted budget
        | None -> failwith "solver must be exact, greedy, or a node budget"
      end
  in
  let config =
    {
      (Ncg.Dynamics.default_config ~alpha ~k) with
      Ncg.Dynamics.variant;
      solver;
      max_rounds;
    }
  in
  let result = Ncg.Dynamics.run config strategy in
  if not quiet then begin
    print_endline Ncg.Features.csv_header;
    List.iter
      (fun f -> print_endline (Ncg.Features.to_csv_row f))
      result.Ncg.Dynamics.features
  end;
  let outcome =
    match result.Ncg.Dynamics.outcome with
    | Ncg.Dynamics.Converged r -> Printf.sprintf "converged after %d changing round(s)" (r - 1)
    | Ncg.Dynamics.Cycle_detected r -> Printf.sprintf "best-response cycle detected at round %d" r
    | Ncg.Dynamics.Max_rounds_exceeded -> "max rounds exceeded"
  in
  Printf.printf "# outcome: %s; total moves: %d\n" outcome result.Ncg.Dynamics.total_moves;
  (match Ncg.Game.quality variant ~alpha result.Ncg.Dynamics.final with
  | Some q -> Printf.printf "# quality of final configuration: %.4f\n" q
  | None -> Printf.printf "# final configuration disconnected\n");
  let lke =
    match variant with
    | Ncg.Game.Max -> Ncg.Lke.is_lke_max ~solver ~alpha ~k result.Ncg.Dynamics.final
    | Ncg.Game.Sum -> Ncg.Lke.is_single_move_stable_sum ~alpha ~k result.Ncg.Dynamics.final
  in
  Printf.printf "# certified stable: %b\n" lke

let graph_class =
  Arg.(value & opt string "tree" & info [ "class" ] ~docv:"CLASS"
         ~doc:"Initial graph class: tree, gnp, cycle or star.")

let n = Arg.(value & opt int 50 & info [ "n" ] ~docv:"N" ~doc:"Number of players.")
let p = Arg.(value & opt float 0.1 & info [ "p" ] ~docv:"P" ~doc:"Edge probability for gnp.")
let alpha = Arg.(value & opt float 2.0 & info [ "alpha"; "a" ] ~docv:"ALPHA" ~doc:"Edge price.")
let k = Arg.(value & opt int 3 & info [ "k" ] ~docv:"K" ~doc:"View radius (1000 = full knowledge).")
let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")
let variant = Arg.(value & opt string "max" & info [ "variant" ] ~docv:"V" ~doc:"Game variant: max or sum.")

let solver =
  Arg.(value & opt string "exact" & info [ "solver" ] ~docv:"S"
         ~doc:"Best-response solver: exact, greedy, or an integer node budget.")

let max_rounds = Arg.(value & opt int 200 & info [ "max-rounds" ] ~doc:"Round cap.")
let quiet = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress the per-round CSV.")

let cmd =
  let doc = "simulate locality-based network creation dynamics" in
  Cmd.v
    (Cmd.info "ncg_sim" ~doc)
    Term.(const run $ graph_class $ n $ p $ alpha $ k $ seed $ variant $ solver $ max_rounds $ quiet)

let () = exit (Cmd.eval cmd)
