(* ncg_experiment: run a parameter grid of best-response dynamics and print
   one CSV row per (alpha, k) cell — the raw series behind the paper's
   Figures 5-10.

   Examples:
     # Figure 5 series (view sizes) on 50-vertex trees, 5 seeds per cell
     dune exec bin/ncg_experiment.exe -- --class tree -n 50 --trials 5

     # Figure 8/9 series on G(100, 0.1) for specific alphas
     dune exec bin/ncg_experiment.exe -- --class gnp -n 100 -p 0.1 \
         --alphas 0.5,1,2 --ks 2,3,1000 *)

open Cmdliner

let default_alphas = [ 0.5; 1.0; 2.0; 5.0 ]
let default_ks = [ 2; 3; 4; 5; 1000 ]

let header =
  "class,n,p,alpha,k,trials,converged_frac,cycled_frac,rounds_mean,rounds_ci,\
   quality_mean,quality_ci,unfairness_mean,unfairness_ci,diameter_mean,\
   max_degree_mean,max_bought_mean,min_view_mean,avg_view_mean,social_cost_mean"

let run graph_class n p alphas ks trials seed budget =
  let alphas = if alphas = [] then default_alphas else alphas in
  let ks = if ks = [] then default_ks else ks in
  let make_initial =
    match graph_class with
    | "tree" -> fun ~seed -> Ncg.Experiment.initial_tree ~seed ~n
    | "gnp" -> fun ~seed -> Ncg.Experiment.initial_gnp ~seed ~n ~p
    | "ba" -> fun ~seed -> Ncg.Experiment.initial_ba ~seed ~n ~m:2
    | "ws" -> fun ~seed -> Ncg.Experiment.initial_ws ~seed ~n ~k:4 ~beta:0.2
    | other -> failwith (Printf.sprintf "unknown graph class %S" other)
  in
  print_endline header;
  List.iter
    (fun alpha ->
      List.iter
        (fun k ->
          let config =
            {
              (Ncg.Dynamics.default_config ~alpha ~k) with
              Ncg.Dynamics.solver = `Budgeted budget;
              collect_features = false;
            }
          in
          let runs = Ncg.Experiment.trials ~make_initial ~config ~trials ~seed in
          let s f = Ncg.Experiment.summarize f runs in
          let mean f = (s f).Ncg_stats.Summary.mean in
          let quality = s (fun r -> r.Ncg.Experiment.quality) in
          let rounds = s (fun r -> float_of_int r.Ncg.Experiment.rounds) in
          let unfair = s (fun r -> r.Ncg.Experiment.unfairness) in
          Printf.printf "%s,%d,%g,%g,%d,%d,%.2f,%.2f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f\n%!"
            graph_class n p alpha k trials
            (Ncg.Experiment.fraction (fun r -> r.Ncg.Experiment.converged) runs)
            (Ncg.Experiment.fraction (fun r -> r.Ncg.Experiment.cycled) runs)
            rounds.Ncg_stats.Summary.mean rounds.Ncg_stats.Summary.ci95
            quality.Ncg_stats.Summary.mean quality.Ncg_stats.Summary.ci95
            unfair.Ncg_stats.Summary.mean unfair.Ncg_stats.Summary.ci95
            (mean (fun r -> float_of_int r.Ncg.Experiment.diameter))
            (mean (fun r -> float_of_int r.Ncg.Experiment.max_degree))
            (mean (fun r -> float_of_int r.Ncg.Experiment.max_bought))
            (mean (fun r -> float_of_int r.Ncg.Experiment.min_view))
            (mean (fun r -> r.Ncg.Experiment.avg_view))
            (mean (fun r -> r.Ncg.Experiment.social_cost)))
        ks)
    alphas

let graph_class =
  Arg.(value & opt string "tree" & info [ "class" ] ~docv:"CLASS"
         ~doc:"tree, gnp, ba (Barabasi-Albert) or ws (Watts-Strogatz).")

let n = Arg.(value & opt int 50 & info [ "n" ] ~docv:"N" ~doc:"Players.")
let p = Arg.(value & opt float 0.1 & info [ "p" ] ~docv:"P" ~doc:"Edge probability (gnp).")

let alphas =
  Arg.(value & opt (list float) [] & info [ "alphas" ] ~docv:"LIST" ~doc:"Alpha grid.")

let ks = Arg.(value & opt (list int) [] & info [ "ks" ] ~docv:"LIST" ~doc:"View radius grid.")
let trials = Arg.(value & opt int 5 & info [ "trials" ] ~docv:"T" ~doc:"Seeds per cell.")
let seed = Arg.(value & opt int 2014 & info [ "seed" ] ~doc:"Base seed.")

let budget =
  Arg.(value & opt int 50_000 & info [ "budget" ] ~doc:"Branch-and-bound node budget per best response.")

let cmd =
  let doc = "grid experiments over (alpha, k) printing CSV series" in
  Cmd.v
    (Cmd.info "ncg_experiment" ~doc)
    Term.(const run $ graph_class $ n $ p $ alphas $ ks $ trials $ seed $ budget)

let () = exit (Cmd.eval cmd)
