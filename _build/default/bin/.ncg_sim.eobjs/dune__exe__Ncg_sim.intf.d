bin/ncg_sim.mli:
