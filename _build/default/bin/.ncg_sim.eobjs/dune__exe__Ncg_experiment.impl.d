bin/ncg_experiment.ml: Arg Cmd Cmdliner List Ncg Ncg_stats Printf Term
