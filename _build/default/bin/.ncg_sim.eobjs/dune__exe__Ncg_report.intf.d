bin/ncg_report.mli:
