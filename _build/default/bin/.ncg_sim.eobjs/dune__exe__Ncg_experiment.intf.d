bin/ncg_experiment.mli:
