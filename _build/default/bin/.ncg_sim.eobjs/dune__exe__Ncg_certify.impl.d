bin/ncg_certify.ml: Arg Cmd Cmdliner List Ncg Ncg_gen Ncg_graph Printf Term
