bin/ncg_bounds.mli:
