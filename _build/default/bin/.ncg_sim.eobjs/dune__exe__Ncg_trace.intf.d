bin/ncg_trace.mli:
