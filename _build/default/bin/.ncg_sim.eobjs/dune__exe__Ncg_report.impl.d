bin/ncg_report.ml: Arg Cmd Cmdliner Ncg Ncg_reporting Printf String Term
