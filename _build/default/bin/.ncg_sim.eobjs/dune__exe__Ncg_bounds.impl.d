bin/ncg_bounds.ml: Arg Cmd Cmdliner Ncg Printf Term
