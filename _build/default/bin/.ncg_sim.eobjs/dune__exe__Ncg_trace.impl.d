bin/ncg_trace.ml: Arg Cmd Cmdliner Ncg Printf Term
