bin/ncg_sim.ml: Arg Cmd Cmdliner List Ncg Ncg_gen Printf Term
