bin/ncg_certify.mli:
