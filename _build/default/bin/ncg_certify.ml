(* ncg_certify: certify that one of the paper's lower-bound constructions
   is a Local Knowledge Equilibrium, using the exact best-response engines.

   Examples:
     dune exec bin/ncg_certify.exe -- cycle -n 24 -k 3 --alpha 2.5
     dune exec bin/ncg_certify.exe -- pg -q 3 --alpha 1.5
     dune exec bin/ncg_certify.exe -- torus-max --alpha 2 -k 2 --delta 8
     dune exec bin/ncg_certify.exe -- torus-sum -k 2 --alpha 33 --delta 6 *)

open Cmdliner

module Graph = Ncg_graph.Graph

let report ~name ~n ~alpha ~k ~lke ~quality ~theory =
  Printf.printf "construction : %s\n" name;
  Printf.printf "players      : %d\n" n;
  Printf.printf "alpha, k     : %g, %d\n" alpha k;
  Printf.printf "certified LKE: %b\n" lke;
  (match quality with
  | Some q -> Printf.printf "quality      : %.3f (social cost / optimum)\n" q
  | None -> Printf.printf "quality      : disconnected?!\n");
  (match theory with
  | Some (label, v) -> Printf.printf "paper bound  : %s = %.3f (constants 1)\n" label v
  | None -> ());
  if not lke then exit 2

let certify_cycle n k alpha =
  let s = Ncg.Strategy.of_buys ~n (Ncg_gen.Classic.cycle_buys n) in
  report ~name:"cycle (Lemma 3.1)" ~n ~alpha ~k
    ~lke:(Ncg.Lke.is_lke_max ~alpha ~k s)
    ~quality:(Ncg.Game.quality Ncg.Game.Max ~alpha s)
    ~theory:(Some ("Omega(n/(1+alpha))", Ncg.Bounds.lb_cycle ~n ~alpha))

let certify_pg q alpha =
  let g = Ncg_gen.Projective_plane.incidence q in
  let np = Ncg_gen.Projective_plane.plane_size q in
  let buys =
    List.map (fun (u, v) -> if u < np then (u, v) else (v, u)) (Graph.edges g)
  in
  let n = Graph.order g in
  let s = Ncg.Strategy.of_buys ~n buys in
  report
    ~name:(Printf.sprintf "PG(2,%d) incidence (Lemma 3.2, k=2)" q)
    ~n ~alpha ~k:2
    ~lke:(Ncg.Lke.is_lke_max ~alpha ~k:2 s)
    ~quality:(Ncg.Game.quality Ncg.Game.Max ~alpha s)
    ~theory:(Some ("Omega(sqrt n)", Ncg.Bounds.lb_girth ~n ~k:2))

let torus ~alpha ~k ~delta =
  let ell = int_of_float (ceil alpha) in
  let side = ((k + ell - 1) / ell) + 1 in
  let t = Ncg_gen.Torus_grid.closed ~d:2 ~ell ~deltas:[| side; max delta side |] in
  let n = Graph.order t.Ncg_gen.Torus_grid.graph in
  (Ncg.Strategy.of_buys ~n t.Ncg_gen.Torus_grid.buys, n)

let certify_torus_max k alpha delta =
  let s, n = torus ~alpha ~k ~delta in
  report ~name:"stretched torus (Theorem 3.12)" ~n ~alpha ~k
    ~lke:(Ncg.Lke.is_lke_max ~alpha ~k s)
    ~quality:(Ncg.Game.quality Ncg.Game.Max ~alpha s)
    ~theory:(Some ("Theorem 3.12 LB", Ncg.Bounds.lb_torus ~n ~alpha ~k))

let certify_torus_sum k alpha delta =
  if k > 2 then
    failwith "torus-sum: only k = 2 is certifiable exactly (larger views explode)";
  let t = Ncg_gen.Torus_grid.closed ~d:2 ~ell:2 ~deltas:[| 2; max delta 2 |] in
  let n = Graph.order t.Ncg_gen.Torus_grid.graph in
  let s = Ncg.Strategy.of_buys ~n t.Ncg_gen.Torus_grid.buys in
  report ~name:"stretched torus (Theorem 4.2, SumNCG)" ~n ~alpha ~k
    ~lke:(Ncg.Lke.is_lke_sum_exact ~alpha ~k s)
    ~quality:(Ncg.Game.quality Ncg.Game.Sum ~alpha s)
    ~theory:(Some ("Omega(n/k)", float_of_int n /. float_of_int k))

let n_arg = Arg.(value & opt int 24 & info [ "n" ] ~doc:"Players (cycle).")
let k_arg = Arg.(value & opt int 2 & info [ "k" ] ~doc:"View radius.")
let alpha_arg = Arg.(value & opt float 2.0 & info [ "alpha"; "a" ] ~doc:"Edge price.")
let q_arg = Arg.(value & opt int 3 & info [ "q" ] ~doc:"Prime order of the plane.")
let delta_arg = Arg.(value & opt int 6 & info [ "delta" ] ~doc:"Long torus dimension.")

let cycle_cmd =
  Cmd.v (Cmd.info "cycle" ~doc:"certify the Lemma 3.1 cycle")
    Term.(const certify_cycle $ n_arg $ k_arg $ alpha_arg)

let pg_cmd =
  Cmd.v (Cmd.info "pg" ~doc:"certify the PG(2,q) incidence graph (Lemma 3.2)")
    Term.(const certify_pg $ q_arg $ alpha_arg)

let torus_max_cmd =
  Cmd.v (Cmd.info "torus-max" ~doc:"certify the Theorem 3.12 torus (MaxNCG)")
    Term.(const certify_torus_max $ k_arg $ alpha_arg $ delta_arg)

let torus_sum_cmd =
  Cmd.v (Cmd.info "torus-sum" ~doc:"certify the Theorem 4.2 torus (SumNCG)")
    Term.(const certify_torus_sum $ k_arg $ alpha_arg $ delta_arg)

let cmd =
  Cmd.group
    (Cmd.info "ncg_certify" ~doc:"certify the paper's equilibrium constructions")
    [ cycle_cmd; pg_cmd; torus_max_cmd; torus_sum_cmd ]

let () = exit (Cmd.eval cmd)
