(* ncg_bounds: print the paper's theoretical PoA bound tables (the textual
   form of Figures 3 and 4) for a given number of players.

   Example:
     dune exec bin/ncg_bounds.exe -- -n 100000
     dune exec bin/ncg_bounds.exe -- -n 1000 --game sum *)

open Cmdliner

let default_alphas = [ 0.5; 1.0; 2.0; 5.0; 10.0; 100.0; 1000.0 ]
let default_ks = [ 1; 2; 3; 5; 10; 30; 100 ]

let run n game alphas ks =
  let alphas = if alphas = [] then default_alphas else alphas in
  let ks = if ks = [] then default_ks else ks in
  match game with
  | "max" -> print_string (Ncg.Bounds.max_table ~n ~alphas ~ks)
  | "sum" -> print_string (Ncg.Bounds.sum_table ~n ~alphas ~ks)
  | "both" ->
      print_string (Ncg.Bounds.max_table ~n ~alphas ~ks);
      print_newline ();
      print_string (Ncg.Bounds.sum_table ~n ~alphas ~ks)
  | other -> failwith (Printf.sprintf "unknown game %S (max, sum or both)" other)

let n = Arg.(value & opt int 100_000 & info [ "n" ] ~docv:"N" ~doc:"Number of players.")
let game = Arg.(value & opt string "both" & info [ "game" ] ~docv:"G" ~doc:"max, sum or both.")

let alphas =
  Arg.(value & opt (list float) [] & info [ "alphas" ] ~docv:"LIST" ~doc:"Comma-separated alpha values.")

let ks = Arg.(value & opt (list int) [] & info [ "ks" ] ~docv:"LIST" ~doc:"Comma-separated k values.")

let cmd =
  let doc = "print the theoretical PoA bound tables (Figures 3 and 4)" in
  Cmd.v (Cmd.info "ncg_bounds" ~doc) Term.(const run $ n $ game $ alphas $ ks)

let () = exit (Cmd.eval cmd)
