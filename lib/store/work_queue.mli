(** Persistent lease/complete/requeue work queue over a {!Record_log}.

    The coordination substrate of the sweep daemon ([lib/service]): the
    daemon enqueues cells, workers lease them one at a time, and every
    transition — enqueue, lease, complete, requeue, cancel — is one
    CRC-framed record appended to [queue.log], so the queue state is a
    pure fold over the log and survives a SIGKILL of the daemon at any
    byte offset (torn tails are truncated by {!Record_log} recovery).

    {b Lease semantics.} A lease hands the oldest pending entry (lowest
    id — deterministic, FIFO) to a named worker. Leases are
    process-lifetime claims, not time-based: a worker that crashes never
    returns its lease, so
    - at runtime the {e daemon} detects the dead worker (connection
      drop) and calls {!requeue}, and
    - on {!openfile} every entry that was left leased is {e reclaimed}
      to pending (counted in [recovery.reclaimed]) — a restarted daemon
      re-dispatches exactly the in-flight cells.

    Re-leasing after a requeue increments the entry's [attempts], which
    is how the daemon's retry budget is expressed.

    A handle is not thread-safe; callers serialize (the daemon's
    scheduler holds one mutex over queue + store). {!lease} passes
    through the ["queue.lease"] fault site
    ({!Ncg_fault.Inject.queue_lease}) {e before} touching any state, so
    an injected raise leaves the queue intact. *)

type t

(** One queue entry. [payload] is opaque to the queue (the daemon stores
    a serialized cell task). [attempts] starts at 1 on the first lease
    and grows by 1 per requeue. *)
type entry = { id : int; payload : string; attempts : int }

(** Replay facts from {!openfile}. *)
type recovery = {
  replayed : int;  (** complete records recovered *)
  dropped_bytes : int;  (** torn-tail bytes truncated *)
  reclaimed : int;  (** leased entries reverted to pending *)
}

(** [openfile ?sync path] opens (creating if necessary) the queue log at
    [path], folds the records into the in-memory state, and reclaims
    orphaned leases. [sync] as in {!Record_log.openfile}. *)
val openfile : ?sync:bool -> string -> t * recovery

(** [enqueue t ~payload] appends an enqueue record and returns the new
    entry's id (ids are dense, starting at 0, never reused). *)
val enqueue : t -> payload:string -> int

(** [lease t ~worker] leases the oldest pending entry to [worker], or
    [None] when nothing is pending. Fires ["queue.lease"] first. *)
val lease : t -> worker:string -> entry option

(** [lease_id t ~worker ~id] leases the {e specific} pending entry [id]
    to [worker] — how the daemon's fairness policy picks a particular
    client's oldest cell instead of the global FIFO head. [None] when
    [id] is not pending. Fires ["queue.lease"] first. *)
val lease_id : t -> worker:string -> id:int -> entry option

(** [complete t ~id] marks a leased entry done. Raises [Invalid_argument]
    if [id] is not currently leased. *)
val complete : t -> id:int -> unit

(** [requeue t ~id] returns a leased entry to pending (attempts + 1) —
    the dead-worker and failed-attempt path. Raises [Invalid_argument]
    if [id] is not currently leased. *)
val requeue : t -> id:int -> unit

(** [cancel t ~id] drops a {e pending} entry (expired client, quarantined
    cell). No-op when [id] is not pending. *)
val cancel : t -> id:int -> unit

(** [leases_of t ~worker] is the ids currently leased to [worker], oldest
    first — the set a daemon requeues when the worker's connection
    drops. *)
val leases_of : t -> worker:string -> int list

(** [reclaim t ~worker] durably requeues everything leased to [worker]
    and returns the reclaimed ids, oldest first. The same append path
    {!openfile} uses for orphaned leases, so runtime heartbeat expiry
    and restart recovery cannot diverge: each reclaimed entry gets one
    requeue record and its attempts grow by 1 on the next lease. *)
val reclaim : t -> worker:string -> int list

(** Every pending entry, oldest first — how a restarted daemon re-adopts
    work recovered from the log (including just-reclaimed leases). *)
val pending_entries : t -> entry list

(** Current state counts. *)
val pending : t -> int

val leased : t -> int
val completed : t -> int
val cancelled : t -> int

(** Attempts a pending or leased entry has accumulated (1 before the
    first lease). Raises [Not_found] for unknown ids. *)
val attempts : t -> id:int -> int

val close : t -> unit

val stats_to_json : t -> Ncg_obs.Json.t
