(* Append-only CRC-framed record log. See the mli for the frame layout
   and recovery contract. Implemented directly over Unix file
   descriptors: recovery needs ftruncate, and appends must be a single
   write followed by fsync. *)

let magic = "NCGLOG01"
let header_len = String.length magic
let frame_header_len = 8 (* u32 length + u32 crc *)
let max_payload = 64 * 1024 * 1024

type t = {
  fd : Unix.file_descr;
  log_path : string;
  sync_on_append : bool;
  mutable pos : int; (* current end of the valid log == append offset *)
  mutable closed : bool;
  mutable poisoned : bool; (* a failed append left an unknown tail on disk *)
}

type recovery = { replayed : int; dropped_bytes : int }

(* [read_exact fd buf] fills [buf] or returns the number of bytes that
   were available — short reads at EOF are how the scan detects a torn
   tail frame. *)
let read_available fd buf =
  let len = Bytes.length buf in
  let rec go off =
    if off = len then off
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> off
      | n -> go (off + n)
  in
  go 0

let write_all fd buf =
  let len = Bytes.length buf in
  let rec go off =
    if off < len then go (off + Unix.write fd buf off (len - off))
  in
  go 0

let u32_le_of_bytes buf off = Int32.to_int (Bytes.get_int32_le buf off) land 0xFFFFFFFF

let frame payload =
  let len = String.length payload in
  let buf = Bytes.create (frame_header_len + len) in
  Bytes.set_int32_le buf 0 (Int32.of_int len);
  Bytes.set_int32_le buf 4 (Int32.of_int (Crc32.digest payload));
  Bytes.blit_string payload 0 buf frame_header_len len;
  buf

let openfile ?(sync = true) log_path ~replay =
  let fd = Unix.openfile log_path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  match
    let file_size = (Unix.fstat fd).Unix.st_size in
    if file_size = 0 then begin
      write_all fd (Bytes.of_string magic);
      if sync then Unix.fsync fd;
      ({ fd; log_path; sync_on_append = sync; pos = header_len; closed = false; poisoned = false },
       { replayed = 0; dropped_bytes = 0 })
    end
    else begin
      (* Validate the magic. A file shorter than the header that is a
         prefix of the magic is a torn initial write — reset it; anything
         else is not ours. *)
      let head = Bytes.create (min file_size header_len) in
      let got = read_available fd head in
      let head = Bytes.sub_string head 0 got in
      if head <> String.sub magic 0 got then
        raise
          (Sys_error
             (Printf.sprintf "%s: not a record log (bad magic)" log_path));
      if got < header_len then begin
        ignore (Unix.lseek fd 0 Unix.SEEK_SET);
        Unix.ftruncate fd 0;
        write_all fd (Bytes.of_string magic);
        if sync then Unix.fsync fd;
        ({ fd; log_path; sync_on_append = sync; pos = header_len; closed = false; poisoned = false },
         { replayed = 0; dropped_bytes = file_size })
      end
      else begin
        (* Scan: replay valid records, stop at the first bad frame. *)
        let replayed = ref 0 in
        let good_end = ref header_len in
        let frame_header = Bytes.create frame_header_len in
        let continue = ref true in
        while !continue do
          if read_available fd frame_header < frame_header_len then
            continue := false
          else begin
            let len = u32_le_of_bytes frame_header 0 in
            let crc = u32_le_of_bytes frame_header 4 in
            if len > max_payload || !good_end + frame_header_len + len > file_size
            then continue := false
            else begin
              let payload = Bytes.create len in
              if read_available fd payload < len then continue := false
              else begin
                let payload = Bytes.unsafe_to_string payload in
                if Crc32.digest payload <> crc then continue := false
                else begin
                  replay payload;
                  incr replayed;
                  good_end := !good_end + frame_header_len + len
                end
              end
            end
          end
        done;
        let dropped = file_size - !good_end in
        if dropped > 0 then Unix.ftruncate fd !good_end;
        ignore (Unix.lseek fd !good_end Unix.SEEK_SET);
        ({ fd; log_path; sync_on_append = sync; pos = !good_end; closed = false; poisoned = false },
         { replayed = !replayed; dropped_bytes = dropped })
      end
    end
  with
  | result -> result
  | exception e ->
      Unix.close fd;
      raise e

let append t payload =
  if t.closed then invalid_arg "Record_log.append: closed";
  if t.poisoned then
    invalid_arg
      "Record_log.append: handle poisoned by an earlier failed append; \
       reopen to recover";
  if String.length payload > max_payload then
    invalid_arg "Record_log.append: payload exceeds max_payload";
  let buf = frame payload in
  match Ncg_fault.Inject.(short_write record_log_append ~len:(Bytes.length buf))
  with
  | Some cut ->
      (* Injected short write: leave a real torn frame on disk — the same
         state a crash mid-write leaves — and poison the handle so later
         appends cannot land after the torn tail. *)
      t.poisoned <- true;
      write_all t.fd (Bytes.sub buf 0 cut);
      if t.sync_on_append then Unix.fsync t.fd;
      raise Ncg_fault.Inject.(short_write_fault record_log_append)
  | None -> (
      match write_all t.fd buf with
      | () ->
          if t.sync_on_append then Unix.fsync t.fd;
          t.pos <- t.pos + Bytes.length buf
      | exception e ->
          t.poisoned <- true;
          raise e)

let sync t = if not t.closed then Unix.fsync t.fd
let poisoned t = t.poisoned
let path t = t.log_path
let size t = t.pos

let close t =
  if not t.closed then begin
    t.closed <- true;
    Unix.close t.fd
  end
