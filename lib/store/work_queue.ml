module Json = Ncg_obs.Json

type status =
  | Pending of { attempts : int }
  | Leased of { attempts : int; worker : string }
  | Completed
  | Cancelled

type entry = { id : int; payload : string; attempts : int }

type recovery = { replayed : int; dropped_bytes : int; reclaimed : int }

type t = {
  mutable log : Record_log.t;
  payloads : (int, string) Hashtbl.t; (* id -> payload, live entries only *)
  state : (int, status) Hashtbl.t;
  mutable next_id : int;
  mutable n_pending : int;
  mutable n_leased : int;
  mutable n_completed : int;
  mutable n_cancelled : int;
}

(* Records are one compact JSON object each: debuggable with any JSONL
   tool, and the payload rides along only on the enqueue record. *)
let rec_enqueue id payload =
  Json.to_string
    (Json.Obj
       [
         ("op", Json.String "enqueue");
         ("id", Json.Int id);
         ("payload", Json.String payload);
       ])

let rec_op op id extra =
  Json.to_string (Json.Obj ([ ("op", Json.String op); ("id", Json.Int id) ] @ extra))

let apply t op id payload worker =
  match op with
  | "enqueue" ->
      Hashtbl.replace t.payloads id payload;
      Hashtbl.replace t.state id (Pending { attempts = 1 });
      if id >= t.next_id then t.next_id <- id + 1
  | "lease" -> (
      match Hashtbl.find_opt t.state id with
      | Some (Pending { attempts }) ->
          Hashtbl.replace t.state id (Leased { attempts; worker })
      | _ -> ())
  | "complete" ->
      Hashtbl.replace t.state id Completed;
      Hashtbl.remove t.payloads id
  | "requeue" -> (
      match Hashtbl.find_opt t.state id with
      | Some (Leased { attempts; _ }) ->
          Hashtbl.replace t.state id (Pending { attempts = attempts + 1 })
      | _ -> ())
  | "cancel" -> (
      match Hashtbl.find_opt t.state id with
      | Some (Pending _) ->
          Hashtbl.replace t.state id Cancelled;
          Hashtbl.remove t.payloads id
      | _ -> ())
  | _ -> () (* unknown op from a future version: skip, keep folding *)

let replay_record t payload =
  match Json.of_string payload with
  | Error _ -> ()
  | Ok j -> (
      let member name = match j with Json.Obj f -> List.assoc_opt name f | _ -> None in
      match (member "op", member "id") with
      | Some (Json.String op), Some (Json.Int id) ->
          let pl = match member "payload" with Some (Json.String s) -> s | _ -> "" in
          let worker = match member "worker" with Some (Json.String s) -> s | _ -> "" in
          apply t op id pl worker
      | _ -> ())

let recount t =
  t.n_pending <- 0;
  t.n_leased <- 0;
  t.n_completed <- 0;
  t.n_cancelled <- 0;
  (Hashtbl.iter [@lint.allow "D3" "order-independent counting"])
    (fun _ s ->
      match s with
      | Pending _ -> t.n_pending <- t.n_pending + 1
      | Leased _ -> t.n_leased <- t.n_leased + 1
      | Completed -> t.n_completed <- t.n_completed + 1
      | Cancelled -> t.n_cancelled <- t.n_cancelled + 1)
    t.state

(* Durable batch requeue shared by [openfile]'s orphan pass and the
   runtime [reclaim]: one requeue record per id, appended in id order so
   a replay of the log reproduces exactly the live transitions. Callers
   recount afterwards. *)
let reclaim_ids t ids =
  let ids = List.sort compare ids in
  List.iter
    (fun id ->
      Record_log.append t.log (rec_op "requeue" id []);
      apply t "requeue" id "" "")
    ids;
  ids

let openfile ?(sync = true) path =
  (* Buffer the raw records during the log scan, then fold them into the
     fresh handle: the replay callback runs before [t] can exist. *)
  let raw = ref [] in
  let log, { Record_log.replayed; dropped_bytes } =
    Record_log.openfile ~sync path ~replay:(fun payload -> raw := payload :: !raw)
  in
  let t =
    {
      log;
      payloads = Hashtbl.create 64;
      state = Hashtbl.create 64;
      next_id = 0;
      n_pending = 0;
      n_leased = 0;
      n_completed = 0;
      n_cancelled = 0;
    }
  in
  List.iter (replay_record t) (List.rev !raw);
  (* Orphaned leases: the previous daemon (or its worker) died with the
     entry in flight. Revert to pending, durably, so a subsequent crash
     before the first fresh lease does not resurrect the lease. *)
  let orphans = ref [] in
  (Hashtbl.iter [@lint.allow "D3" "sorted before use"])
    (fun id s -> match s with Leased _ -> orphans := id :: !orphans | _ -> ())
    t.state;
  let orphans = reclaim_ids t !orphans in
  recount t;
  (t, { replayed; dropped_bytes; reclaimed = List.length orphans })

let enqueue t ~payload =
  let id = t.next_id in
  Record_log.append t.log (rec_enqueue id payload);
  apply t "enqueue" id payload "";
  t.n_pending <- t.n_pending + 1;
  Ncg_obs.Metrics.(incr queue_enqueues);
  id

(* Oldest pending id: a linear scan over the live table. Queue depth is
   bounded by in-flight cells (thousands at most), and the daemon holds
   its scheduler mutex across this anyway. *)
let oldest_pending t =
  (Hashtbl.fold [@lint.allow "D3" "min is order-independent"])
    (fun id s best ->
      match s with
      | Pending _ -> ( match best with Some b when b <= id -> best | _ -> Some id)
      | _ -> best)
    t.state None

let grant t ~worker ~id =
  match Hashtbl.find_opt t.state id with
  | Some (Pending { attempts }) ->
      Record_log.append t.log (rec_op "lease" id [ ("worker", Json.String worker) ]);
      apply t "lease" id "" worker;
      t.n_pending <- t.n_pending - 1;
      t.n_leased <- t.n_leased + 1;
      Ncg_obs.Metrics.(incr queue_leases);
      Some { id; payload = Hashtbl.find t.payloads id; attempts }
  | _ -> None

let lease t ~worker =
  Ncg_fault.Inject.(hit queue_lease);
  match oldest_pending t with
  | None -> None
  | Some id -> grant t ~worker ~id

let lease_id t ~worker ~id =
  Ncg_fault.Inject.(hit queue_lease);
  grant t ~worker ~id

let complete t ~id =
  match Hashtbl.find_opt t.state id with
  | Some (Leased _) ->
      Record_log.append t.log (rec_op "complete" id []);
      apply t "complete" id "" "";
      t.n_leased <- t.n_leased - 1;
      t.n_completed <- t.n_completed + 1
  | _ -> invalid_arg (Printf.sprintf "Work_queue.complete: entry %d is not leased" id)

let requeue t ~id =
  match Hashtbl.find_opt t.state id with
  | Some (Leased _) ->
      Record_log.append t.log (rec_op "requeue" id []);
      apply t "requeue" id "" "";
      t.n_leased <- t.n_leased - 1;
      t.n_pending <- t.n_pending + 1
  | _ -> invalid_arg (Printf.sprintf "Work_queue.requeue: entry %d is not leased" id)

let cancel t ~id =
  match Hashtbl.find_opt t.state id with
  | Some (Pending _) ->
      Record_log.append t.log (rec_op "cancel" id []);
      apply t "cancel" id "" "";
      t.n_pending <- t.n_pending - 1;
      t.n_cancelled <- t.n_cancelled + 1
  | _ -> ()

let pending_entries t =
  (Hashtbl.fold [@lint.allow "D3" "sorted before return"])
    (fun id s acc ->
      match s with Pending { attempts } -> (id, attempts) :: acc | _ -> acc)
    t.state []
  |> List.sort compare
  |> List.map (fun (id, attempts) ->
         { id; payload = Hashtbl.find t.payloads id; attempts })

let leases_of t ~worker =
  (Hashtbl.fold [@lint.allow "D3" "sorted before return"])
    (fun id s acc ->
      match s with
      | Leased { worker = w; _ } when String.equal w worker -> id :: acc
      | _ -> acc)
    t.state []
  |> List.sort compare

let reclaim t ~worker =
  let ids = reclaim_ids t (leases_of t ~worker) in
  recount t;
  ids

let pending t = t.n_pending
let leased t = t.n_leased
let completed t = t.n_completed
let cancelled t = t.n_cancelled

let attempts t ~id =
  match Hashtbl.find_opt t.state id with
  | Some (Pending { attempts } | Leased { attempts; _ }) -> attempts
  | Some (Completed | Cancelled) | None -> raise Not_found

let close t = Record_log.close t.log

let stats_to_json t =
  Json.Obj
    [
      ("pending", Json.Int t.n_pending);
      ("leased", Json.Int t.n_leased);
      ("completed", Json.Int t.n_completed);
      ("cancelled", Json.Int t.n_cancelled);
    ]
