module Json = Ncg_obs.Json
module Metrics = Ncg_obs.Metrics

(* Registered at module init from the main domain (the Metrics
   contract); linking ncg_store is enough to make these visible. *)
let m_hits = Metrics.register "store.hits"
let m_misses = Metrics.register "store.misses"
let m_inserts = Metrics.register "store.inserts"
let m_evictions = Metrics.register "store.evictions"
let m_heals = Metrics.register "store.heals"

let manifest_name = "MANIFEST.json"
let records_name = "records.log"
let lock_name = "LOCK"

exception Locked of { dir : string; pid : int }

let () =
  Printexc.register_printer (function
    | Locked { dir; pid } ->
        Some
          (Printf.sprintf
             "Ncg_store.Store.Locked(store %S is in use by pid %d; remove %s \
              if that process is gone)"
             dir pid
             (Filename.concat dir lock_name))
    | _ -> None)

(* Advisory lock: DIR/LOCK is created with O_EXCL and holds the owning
   PID. Stale locks (owner no longer running) are detected with a
   kill-0 probe and swept; EPERM means the owner exists but belongs to
   someone else, which still counts as held. *)

let read_lock_pid path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      let contents =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (min 64 (in_channel_length ic)))
      in
      int_of_string_opt (String.trim contents)

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error (_, _, _) -> true

let stale_pid = function
  | None -> true (* unreadable/torn lock file *)
  | Some pid -> pid <> Unix.getpid () && not (pid_alive pid)

(* Stale-lock takeover must be atomic: the naive check-then-remove lets
   two simultaneous openers both sweep, with the second remove deleting
   the first opener's *fresh* lock — two handles on one log. Instead a
   contender claims the observed-stale lock file with rename(2) (exactly
   one rename of a given file succeeds; losers see ENOENT and re-race
   the O_EXCL create), then re-checks the claimed file's contents: if it
   turns out live — the file was replaced by a fresh lock between the
   staleness probe and the rename — it is restored with link(2) (atomic,
   fails EEXIST rather than clobbering) and the opener reports Locked. *)
let rec acquire_lock ?(sweep_stale = true) dir =
  let path = Filename.concat dir lock_name in
  match Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644 with
  | fd ->
      let line = Bytes.of_string (string_of_int (Unix.getpid ()) ^ "\n") in
      let rec w off =
        if off < Bytes.length line then
          w (off + Unix.write fd line off (Bytes.length line - off))
      in
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> w 0)
  | exception Unix.Unix_error (Unix.EEXIST, _, _) ->
      let holder = read_lock_pid path in
      let stale = stale_pid holder in
      if stale && sweep_stale then begin
        let claim = path ^ ".claim." ^ string_of_int (Unix.getpid ()) in
        (match Unix.rename path claim with
        | () ->
            let claimed = read_lock_pid claim in
            if stale_pid claimed then
              (* Confirmed stale; we own the claim file exclusively, so
                 this remove can never hit a live lock. *)
              try Sys.remove claim with Sys_error _ -> ()
            else begin
              (* We raced a fresh acquisition: restore the live lock
                 (unless yet another opener already created a new one)
                 and report the holder. *)
              (try Unix.link claim path
               with Unix.Unix_error ((Unix.EEXIST | Unix.EPERM), _, _) -> ());
              (try Sys.remove claim with Sys_error _ -> ());
              raise (Locked { dir; pid = Option.value claimed ~default:(-1) })
            end
        | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
            (* Another contender claimed it first; fall through and
               re-race the create below. *)
            ());
        (* One retry: if we lose the O_EXCL race after the sweep, the
           new owner is alive and we report it. *)
        acquire_lock ~sweep_stale:false dir
      end
      else raise (Locked { dir; pid = Option.value holder ~default:(-1) })

let release_lock dir =
  try Sys.remove (Filename.concat dir lock_name) with Sys_error _ -> ()

type t = {
  dir : string;
  sync : bool;
  mutable log : Record_log.t;
  index : (string, string) Hashtbl.t; (* canonical key -> latest payload *)
  mutable order : string list; (* reverse first-insertion order of live keys *)
  mutex : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable inserts : int;
  mutable superseded : int; (* dead records currently in the log *)
  mutable replayed : int;
  mutable dropped_bytes : int;
  mutable compactions : int; (* whole-history count, persisted in the manifest *)
  mutable heals : int; (* log reopens after a failed append *)
  mutable closed : bool;
}

type stats = {
  hits : int;
  misses : int;
  inserts : int;
  superseded : int;
  live : int;
  replayed : int;
  dropped_bytes : int;
  compactions : int;
  heals : int;
}

(* Record payload layout: u32 LE key length, key bytes, value bytes.
   The Record_log CRC covers the whole payload, key included. *)
let encode_record key value =
  let klen = String.length key in
  let buf = Bytes.create (4 + klen + String.length value) in
  Bytes.set_int32_le buf 0 (Int32.of_int klen);
  Bytes.blit_string key 0 buf 4 klen;
  Bytes.blit_string value 0 buf (4 + klen) (String.length value);
  Bytes.unsafe_to_string buf

let decode_record payload =
  if String.length payload < 4 then None
  else begin
    let klen = Int32.to_int (String.get_int32_le payload 0) land 0xFFFFFFFF in
    if klen < 0 || 4 + klen > String.length payload then None
    else
      Some
        ( String.sub payload 4 klen,
          String.sub payload (4 + klen) (String.length payload - 4 - klen) )
  end

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let manifest_json t =
  Json.Obj
    [
      ("schema", Json.String Ncg_obs.Schema.store_manifest);
      ("key_schema", Json.Int Cache_key.schema_version);
      ("records_file", Json.String records_name);
      ("live", Json.Int (Hashtbl.length t.index));
      ("superseded", Json.Int t.superseded);
      ("log_bytes", Json.Int (Record_log.size t.log));
      ("last_open_replayed", Json.Int t.replayed);
      ("last_open_dropped_bytes", Json.Int t.dropped_bytes);
      ("compactions", Json.Int t.compactions);
    ]

(* Json.to_file is atomic (temp file + rename), so a crash mid-write
   never leaves a partial manifest. *)
let write_manifest t = Json.to_file (Filename.concat t.dir manifest_name) (manifest_json t)

let read_manifest_compactions dir =
  let path = Filename.concat dir manifest_name in
  if not (Sys.file_exists path) then 0
  else begin
    let contents =
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Json.of_string contents with
    | Ok (Json.Obj fields) -> (
        match List.assoc_opt "compactions" fields with
        | Some (Json.Int n) -> n
        | _ -> 0)
    | Ok _ | Error _ -> 0
  end

let open_dir ?(sync = true) dir =
  mkdir_p dir;
  acquire_lock dir;
  match
  let index = Hashtbl.create 64 in
  let order = ref [] in
  let superseded = ref 0 in
  let replay payload =
    match decode_record payload with
    | None -> () (* valid frame, unintelligible payload: skip, keep scanning *)
    | Some (key, value) ->
        if Hashtbl.mem index key then incr superseded
        else order := key :: !order;
        Hashtbl.replace index key value
  in
  let log, { Record_log.replayed; dropped_bytes } =
    Record_log.openfile ~sync (Filename.concat dir records_name) ~replay
  in
  let t =
    {
      dir;
      sync;
      log;
      index;
      order = !order;
      mutex = Mutex.create ();
      hits = 0;
      misses = 0;
      inserts = 0;
      superseded = !superseded;
      replayed;
      dropped_bytes;
      compactions = read_manifest_compactions dir;
      heals = 0;
      closed = false;
    }
  in
  write_manifest t;
  t
  with
  | t -> t
  | exception e ->
      release_lock dir;
      raise e

let check_open t = if t.closed then invalid_arg "Ncg_store.Store: closed"

let lookup t key =
  Mutex.protect t.mutex (fun () ->
      check_open t;
      match Hashtbl.find_opt t.index (Cache_key.to_string key) with
      | Some payload ->
          t.hits <- t.hits + 1;
          Metrics.incr m_hits;
          Some payload
      | None ->
          t.misses <- t.misses + 1;
          Metrics.incr m_misses;
          None)

let mem t key =
  Mutex.protect t.mutex (fun () ->
      check_open t;
      Hashtbl.mem t.index (Cache_key.to_string key))

(* A failed append (injected short write or a real write error) leaves a
   torn frame on disk and a poisoned log handle. Reopen the log in place:
   recovery truncates the tail back to the last complete record, and the
   in-memory index is still exact because it is only updated after a
   successful append — so the failure costs one record, not the store. *)
let heal_log t =
  (try Record_log.close t.log with _ -> ());
  let log, _ =
    Record_log.openfile ~sync:t.sync
      (Filename.concat t.dir records_name)
      ~replay:ignore
  in
  t.log <- log;
  t.heals <- t.heals + 1;
  Metrics.incr m_heals

let insert t key payload =
  Mutex.protect t.mutex (fun () ->
      check_open t;
      let key = Cache_key.to_string key in
      (match Record_log.append t.log (encode_record key payload) with
      | () -> ()
      | exception e ->
          heal_log t;
          raise e);
      if Hashtbl.mem t.index key then t.superseded <- t.superseded + 1
      else t.order <- key :: t.order;
      Hashtbl.replace t.index key payload;
      t.inserts <- t.inserts + 1;
      Metrics.incr m_inserts)

let live_count t = Mutex.protect t.mutex (fun () -> Hashtbl.length t.index)
let log_size t = Mutex.protect t.mutex (fun () -> Record_log.size t.log)

let compact t =
  Mutex.protect t.mutex (fun () ->
      check_open t;
      if t.superseded > 0 then begin
        let evicted = t.superseded in
        let live_path = Filename.concat t.dir records_name in
        let tmp_path = live_path ^ ".compact" in
        if Sys.file_exists tmp_path then Sys.remove tmp_path;
        let fresh, _ = Record_log.openfile ~sync:false tmp_path ~replay:ignore in
        (match
           List.iter
             (fun key ->
               Record_log.append fresh
                 (encode_record key (Hashtbl.find t.index key)))
             (List.rev t.order);
           Record_log.sync fresh
         with
        | () -> Record_log.close fresh
        | exception e ->
            Record_log.close fresh;
            (try Sys.remove tmp_path with Sys_error _ -> ());
            raise e);
        (* The swap point: rename is atomic, so a crash leaves either the
           old log (with dead records) or the new one — never a mix. *)
        Record_log.close t.log;
        Sys.rename tmp_path live_path;
        let log, _ = Record_log.openfile ~sync:t.sync live_path ~replay:ignore in
        t.log <- log;
        t.superseded <- 0;
        t.compactions <- t.compactions + 1;
        Metrics.add m_evictions evicted;
        write_manifest t
      end)

let stats t =
  Mutex.protect t.mutex (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        inserts = t.inserts;
        superseded = t.superseded;
        live = Hashtbl.length t.index;
        replayed = t.replayed;
        dropped_bytes = t.dropped_bytes;
        compactions = t.compactions;
        heals = t.heals;
      })

let close t =
  Mutex.protect t.mutex (fun () ->
      if not t.closed then begin
        write_manifest t;
        Record_log.close t.log;
        release_lock t.dir;
        t.closed <- true
      end)

let with_dir ?sync dir f =
  let t = open_dir ?sync dir in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let stats_to_json s =
  Json.Obj
    [
      ("hits", Json.Int s.hits);
      ("misses", Json.Int s.misses);
      ("inserts", Json.Int s.inserts);
      ("superseded", Json.Int s.superseded);
      ("live", Json.Int s.live);
      ("replayed", Json.Int s.replayed);
      ("dropped_bytes", Json.Int s.dropped_bytes);
      ("compactions", Json.Int s.compactions);
      ("heals", Json.Int s.heals);
    ]
