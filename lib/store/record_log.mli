(** Append-only record log with CRC-framed records and torn-tail recovery.

    The persistence primitive under {!Store}: a single file holding an
    8-byte magic header followed by framed records. Each record is

    {v
    +----------------+----------------+------------------+
    | length u32 LE  | crc32 u32 LE   | payload bytes    |
    +----------------+----------------+------------------+
    v}

    where [crc32] is the CRC-32 ({!Crc32}) of the payload. An append is
    one [write] of the whole frame followed (by default) by an [fsync],
    so after a crash the file is a sequence of complete records plus at
    most one torn frame at the tail.

    {b Recovery.} {!openfile} scans the file from the start and stops at
    the first frame that is incomplete, fails its checksum, or declares
    an impossible length; the file is then truncated back to the end of
    the last valid record, so a crashed writer never poisons future
    appends. Recovery therefore keeps the longest valid prefix — exactly
    the records whose append completed.

    A log handle is not thread-safe; callers ({!Store}) serialize access. *)

type t

(** Result of the opening scan. *)
type recovery = {
  replayed : int;  (** complete records handed to [replay] *)
  dropped_bytes : int;
      (** bytes truncated from a torn or corrupt tail (0 for a clean file) *)
}

(** [openfile ?sync path ~replay] opens (creating if necessary) the log
    at [path], streams every valid record through [replay] in append
    order, repairs the tail as described above, and positions the handle
    for appending. [sync] (default [true]) controls whether {!append}
    fsyncs; with [false] appends are buffered by the OS (faster, but a
    crash may lose recent records — they are still framed, so recovery
    stays safe).

    @raise Sys_error if [path] exists but does not start with this log's
    magic bytes (it is some other file — refusing beats truncating it). *)
val openfile : ?sync:bool -> string -> replay:(string -> unit) -> t * recovery

(** [append t payload] writes one framed record and (if [sync]) fsyncs.

    The write passes through the ["record_log.append"] fault site
    ({!Ncg_fault.Inject.record_log_append}): an armed short-write rule
    makes [append] write only a prefix of the frame — a genuine torn
    tail on disk, byte-for-byte what a crash mid-write leaves — and
    raise [Ncg_fault.Inject.Fault]. After any failed append (injected or
    real) the handle is {e poisoned}: further appends raise, because the
    on-disk tail is unknown and writing after it would corrupt the log.
    Reopening the file recovers (truncates the torn tail) as usual;
    {!Store} does this automatically.

    @raise Invalid_argument on a payload larger than {!max_payload} or
    on a poisoned handle. *)
val append : t -> string -> unit

(** True once an append has failed on this handle. *)
val poisoned : t -> bool

(** Force buffered appends to disk (no-op when [sync] is on). *)
val sync : t -> unit

val path : t -> string

(** Current file size in bytes (header + all records). *)
val size : t -> int

val close : t -> unit

(** Records larger than this (64 MiB) are rejected on append and treated
    as corruption on recovery — a fence against a corrupt length field
    asking the replayer to allocate gigabytes. *)
val max_payload : int
