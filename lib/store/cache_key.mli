(** Content-addressed cache keys for sweep cells.

    A key fingerprints {e everything that determines a cell's output}:
    the store schema version (bumped whenever the serialized record
    format changes, invalidating every old record at once), plus the
    caller's fields — graph class, [n], [p], the cell's alpha and [k],
    trial count, dynamics configuration, and the cell seed derived via
    [Experiment.derive_seeds]. Two keys are equal exactly when their
    canonical forms are byte-equal, so lookup is exact-match — no hash
    collisions can alias two different configurations.

    The canonical form is the compact JSON rendering of the field list
    with [("store_schema", Int schema_version)] prepended. Field {e
    order matters} (it is part of the bytes); callers must build the
    list deterministically. The 64-bit FNV-1a {!fingerprint} is a
    convenience for logs and manifests, never for lookup. *)

type t

(** Version of the record payload format. Bump on any incompatible
    change to what {!Store} clients serialize; old records then miss. *)
val schema_version : int

(** [make fields] builds the key. Fields must be renderable JSON
    (NaN/infinity floats serialize as [null] — avoid them in keys). *)
val make : (string * Ncg_obs.Json.t) list -> t

(** The canonical byte form (compact JSON). *)
val to_string : t -> string

val equal : t -> t -> bool
val compare : t -> t -> int

(** FNV-1a 64-bit hash of the canonical form. *)
val fingerprint : t -> int64

(** [fingerprint] as 16 lowercase hex digits. *)
val fingerprint_hex : t -> string
