(** Persistent, crash-safe key/value store for sweep-cell results.

    A store is a directory:

    {v
    DIR/
      MANIFEST.json    small human-readable summary, rewritten atomically
      records.log      CRC-framed append-only record log (Record_log)
    v}

    Records map a {!Cache_key} to an opaque payload (the serialized cell
    result). Appends are framed, written in one [write] and fsync'd, so
    a SIGKILL at any byte offset loses at most the record being written;
    on the next {!open_dir} the torn tail is truncated and every
    completed record is recovered. Re-inserting an existing key appends
    a new record that {e supersedes} the old one (last write wins on
    replay); {!compact} rewrites the log with only live records and
    atomically swaps it in.

    Lookups are exact-match on the key's canonical bytes. All operations
    are serialized by an internal mutex, so a parallel sweep may insert
    from several domains concurrently.

    Hits, misses, inserts and compaction evictions are counted both in
    {!stats} (always) and into the {!Ncg_obs.Metrics} counters
    [store.hits] / [store.misses] / [store.inserts] / [store.evictions]
    (observed while a Metrics collector is installed in the calling
    domain). *)

type t

(** Raised by {!open_dir} when [dir/LOCK] is held by a live process:
    two concurrent sweeps must not interleave appends into one log.
    [pid] is the holder ([-1] when the lock file was unreadable). *)
exception Locked of { dir : string; pid : int }

(** Lifetime-of-this-handle operation counts plus recovery facts. *)
type stats = {
  hits : int;
  misses : int;
  inserts : int;
  superseded : int;  (** dead records in the log (re-inserted keys) *)
  live : int;  (** distinct keys *)
  replayed : int;  (** records recovered at open *)
  dropped_bytes : int;  (** torn-tail bytes truncated at open *)
  compactions : int;  (** over the store's whole history (from manifest) *)
  heals : int;  (** in-place log reopens after a failed append *)
}

(** [open_dir ?sync dir] opens (creating directories as needed) the
    store at [dir], replays the record log (repairing a torn tail) and
    rewrites the manifest. [sync] (default [true]) is passed to
    {!Record_log.openfile}.

    At most one handle per directory, process-wide: [open_dir] takes an
    advisory lock ([dir/LOCK], containing the owner's PID) released by
    {!close}. A lock whose owner is no longer running — the sweep was
    SIGKILLed — is detected with a PID probe and swept automatically, so
    crashes never wedge a store.

    @raise Locked when another live process (or this one) already holds
    the store open.
    @raise Sys_error when [dir/records.log] exists but is not a record
    log. *)
val open_dir : ?sync:bool -> string -> t

(** [lookup t key] is the most recently inserted payload for [key]. *)
val lookup : t -> Cache_key.t -> string option

(** [insert t key payload] durably appends the record; visible to
    {!lookup} immediately, and to future opens as soon as the append
    completed.

    If the append fails partway (an injected short write through the
    ["record_log.append"] fault site, or a real write error), the store
    {e heals} before re-raising: the log is reopened in place, which
    truncates the torn frame, so the failure costs exactly the record
    being written and subsequent inserts proceed normally. Heals are
    counted in {!stats} and the [store.heals] metric. *)
val insert : t -> Cache_key.t -> string -> unit

val mem : t -> Cache_key.t -> bool

(** Number of distinct live keys. *)
val live_count : t -> int

(** Bytes currently occupied by the record log. *)
val log_size : t -> int

(** [compact t] rewrites the log keeping only live records (in first-
    insertion order), fsyncs the replacement and atomically renames it
    over the old log. A crash during compaction leaves the old log
    intact. No-op when nothing is superseded. *)
val compact : t -> unit

val stats : t -> stats

(** Rewrite the manifest and close the log. Further operations raise. *)
val close : t -> unit

(** [with_dir ?sync dir f] opens, runs [f], and closes (also on
    exceptions). *)
val with_dir : ?sync:bool -> string -> (t -> 'a) -> 'a

(** [stats_to_json] for telemetry export. *)
val stats_to_json : stats -> Ncg_obs.Json.t
