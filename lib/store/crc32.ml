(* CRC-32, reflected form, polynomial 0xEDB88320 (zlib/PNG/IEEE 802.3).
   The running state is the ones-complemented register, so [empty] is
   0xFFFFFFFF and [finalize] flips it back. All arithmetic stays within
   OCaml's native int (the register is 32 bits). *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let empty = 0xFFFFFFFF

let update_sub crc s pos len =
  let table = Lazy.force table in
  let c = ref crc in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code s.[i]) land 0xFF) lxor (!c lsr 8)
  done;
  !c

let update crc s = update_sub crc s 0 (String.length s)
let finalize crc = crc lxor 0xFFFFFFFF

let digest_sub s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.digest_sub";
  finalize (update_sub empty s pos len)

let digest s = finalize (update empty s)
