(** CRC-32 (IEEE 802.3 / zlib polynomial 0xEDB88320), table-driven.

    Used by {!Record_log} to frame records: a mismatch between the stored
    and recomputed checksum marks a torn or corrupted record. Pure OCaml,
    no dependency — the whole digest fits in an OCaml [int]
    ([0 .. 0xFFFFFFFF]). *)

(** [digest s] is the CRC-32 of the whole string. *)
val digest : string -> int

(** [digest_sub s ~pos ~len] checksums a substring without copying.
    @raise Invalid_argument on an invalid range. *)
val digest_sub : string -> pos:int -> len:int -> int

(** Incremental interface: [update crc s] extends a running checksum
    (start from {!empty}, finish with {!finalize}). *)
val empty : int

val update : int -> string -> int
val finalize : int -> int
