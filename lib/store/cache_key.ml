module Json = Ncg_obs.Json

type t = string (* the canonical compact-JSON form *)

let schema_version = 1

let make fields =
  Json.to_string (Json.Obj (("store_schema", Json.Int schema_version) :: fields))

let to_string t = t
let equal = String.equal
let compare = String.compare

(* FNV-1a, 64-bit: offset basis 14695981039346656037, prime 1099511628211. *)
let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let fingerprint t =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    t;
  !h

let fingerprint_hex t = Printf.sprintf "%016Lx" (fingerprint t)
