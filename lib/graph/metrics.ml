let eccentricities g =
  let n = Graph.order g in
  let ecc = Array.make n 0 in
  let s = Bfs.create_scratch ~capacity:n () in
  let ok = ref true in
  let u = ref 0 in
  while !ok && !u < n do
    let visited = Bfs.run s g !u ~radius:max_int in
    if visited = n then
      ecc.(!u) <- (Bfs.dist_array s).((Bfs.visit_order s).(visited - 1))
    else ok := false;
    incr u
  done;
  if !ok then Some ecc else None

let diameter g =
  if Graph.order g = 0 then None
  else Option.map (fun ecc -> Array.fold_left max 0 ecc) (eccentricities g)

let radius g =
  if Graph.order g = 0 then None
  else Option.map (fun ecc -> Array.fold_left min max_int ecc) (eccentricities g)

let max_degree g =
  Graph.fold_vertices (fun u acc -> max acc (Graph.degree g u)) g 0

let avg_degree g =
  let n = Graph.order g in
  if n = 0 then 0.0 else 2.0 *. float_of_int (Graph.size g) /. float_of_int n

let total_distance g =
  let n = Graph.order g in
  let s = Bfs.create_scratch ~capacity:n () in
  let total = ref 0 in
  let ok = ref true in
  let u = ref 0 in
  while !ok && !u < n do
    let visited = Bfs.run s g !u ~radius:max_int in
    if visited = n then begin
      let dist = Bfs.dist_array s in
      for i = 0 to visited - 1 do
        total := !total + dist.((Bfs.visit_order s).(i))
      done
    end
    else ok := false;
    incr u
  done;
  if !ok then Some !total else None

let distance_matrix g =
  Array.init (Graph.order g) (fun u -> Bfs.distances g u)

let density g =
  let n = Graph.order g in
  if n < 2 then 0.0
  else 2.0 *. float_of_int (Graph.size g) /. float_of_int (n * (n - 1))

let degree_histogram g =
  let hist = Array.make (max_degree g + 1) 0 in
  Graph.fold_vertices
    (fun u () ->
      let d = Graph.degree g u in
      hist.(d) <- hist.(d) + 1)
    g ();
  hist

let local_clustering g u =
  let d = Graph.degree g u in
  if d < 2 then 0.0
  else begin
    let offsets = Graph.csr_offsets g and packed = Graph.csr_packed g in
    let links = ref 0 in
    for i = offsets.(u) to offsets.(u + 1) - 1 do
      for j = i + 1 to offsets.(u + 1) - 1 do
        if Graph.mem_edge g packed.(i) packed.(j) then incr links
      done
    done;
    2.0 *. float_of_int !links /. float_of_int (d * (d - 1))
  end

let avg_clustering g =
  let n = Graph.order g in
  if n = 0 then 0.0
  else
    Graph.fold_vertices (fun u acc -> acc +. local_clustering g u) g 0.0
    /. float_of_int n
