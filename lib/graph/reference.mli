(** Naive adjacency-array reference implementations, kept as an executable
    oracle for the CSR engine.

    These are the seed engine's algorithms (list-frontier BFS, edge-list
    subgraph extraction) preserved so property tests can prove the
    optimised {!Graph}/{!Bfs}/{!Power}/{!Subgraph} fast paths agree with
    them on arbitrary graphs. Not for production use. *)

type t

(** Same contract as {!Graph.of_edges}: duplicates collapse, self loops and
    out-of-range endpoints rejected. *)
val of_edges : n:int -> (int * int) list -> t

val order : t -> int
val size : t -> int

(** Sorted neighbour array of [u]. *)
val neighbors : t -> int -> int array

(** Every edge [(u, v)] with [u < v], in lexicographic order. *)
val edges : t -> (int * int) list

(** Same value as {!Bfs.unreachable}. *)
val unreachable : int

val distances : t -> int -> int array
val distances_within : t -> int -> radius:int -> int array

(** Sorted list of vertices within [radius] of the source. *)
val ball : t -> int -> radius:int -> int list

(** Edge list of the [h]-th graph power, lexicographic, [u < v]. *)
val power_edges : t -> int -> (int * int) list

(** [induced_edges g vs] is the renamed edge list of the induced subgraph
    (lexicographic) together with the sub → host name table. *)
val induced_edges : t -> int list -> (int * int) list * int array
