(* The seed engine's adjacency-array algorithms, retained verbatim in
   spirit as an executable oracle: the qcheck equivalence suite checks the
   CSR fast paths in [Graph]/[Bfs]/[Power]/[Subgraph] against these naive
   implementations on arbitrary generated graphs. Nothing here is
   performance-sensitive — clarity over speed on purpose. *)

type t = { n : int; adj : int array array }

let of_edges ~n edges =
  if n < 0 then invalid_arg "Reference.of_edges: negative order";
  let check v =
    if v < 0 || v >= n then invalid_arg "Reference.of_edges: vertex out of range"
  in
  let adj = Array.make n [] in
  List.iter
    (fun (u, v) ->
      check u;
      check v;
      if u = v then invalid_arg "Reference.of_edges: self loop";
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    edges;
  { n; adj = Array.map (fun l -> Array.of_list (List.sort_uniq compare l)) adj }

let order g = g.n
let neighbors g u = g.adj.(u)

let size g =
  Array.fold_left (fun acc nbrs -> acc + Array.length nbrs) 0 g.adj / 2

let edges g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    Array.iter (fun v -> if u < v then acc := (u, v) :: !acc) g.adj.(u)
  done;
  List.sort compare !acc

let unreachable = -1

let distances_within g src ~radius =
  let dist = Array.make g.n unreachable in
  dist.(src) <- 0;
  let frontier = ref [ src ] in
  let d = ref 0 in
  while !frontier <> [] && !d < radius do
    let next = ref [] in
    List.iter
      (fun u ->
        Array.iter
          (fun v ->
            if dist.(v) = unreachable then begin
              dist.(v) <- !d + 1;
              next := v :: !next
            end)
          g.adj.(u))
      !frontier;
    frontier := List.rev !next;
    incr d
  done;
  dist

let distances g src = distances_within g src ~radius:max_int

let ball g src ~radius =
  let dist = distances_within g src ~radius in
  let acc = ref [] in
  for v = g.n - 1 downto 0 do
    if dist.(v) <> unreachable then acc := v :: !acc
  done;
  !acc

(* Edge list of the h-th power: (u, v) with u < v and 0 < d(u, v) <= h. *)
let power_edges g h =
  if h < 0 then invalid_arg "Reference.power_edges: negative exponent";
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    let dist = distances_within g u ~radius:h in
    for v = g.n - 1 downto u + 1 do
      if dist.(v) <> unreachable then acc := (u, v) :: !acc
    done
  done;
  List.sort compare !acc

(* Induced subgraph as (renamed edge list, host names in increasing order). *)
let induced_edges g vertices =
  let sorted = List.sort_uniq compare vertices in
  List.iter
    (fun v ->
      if v < 0 || v >= g.n then
        invalid_arg "Reference.induced_edges: vertex out of range")
    sorted;
  let to_host = Array.of_list sorted in
  let to_sub = Array.make g.n (-1) in
  Array.iteri (fun i v -> to_sub.(v) <- i) to_host;
  let acc = ref [] in
  Array.iteri
    (fun i v ->
      Array.iter
        (fun w ->
          let j = to_sub.(w) in
          if j >= 0 && i < j then acc := (i, j) :: !acc)
        g.adj.(v))
    to_host;
  (List.sort compare !acc, to_host)
