let closeness g u =
  let n = Graph.order g in
  if n <= 1 then 0.0
  else begin
    match Bfs.sum_distances g u with
    | Some total when total > 0 -> float_of_int (n - 1) /. float_of_int total
    | Some _ -> 0.0 (* n > 1 and total = 0 cannot happen in simple graphs *)
    | None -> 0.0
  end

let closeness_all g = Array.init (Graph.order g) (closeness g)

(* Brandes (2001). One BFS per source; back-propagation of pair
   dependencies along the shortest-path DAG. *)
let betweenness g =
  let n = Graph.order g in
  let cb = Array.make n 0.0 in
  let dist = Array.make n (-1) in
  let sigma = Array.make n 0.0 in
  let delta = Array.make n 0.0 in
  let preds = Array.make n [] in
  let order = Array.make n 0 in
  let queue = Ncg_util.Int_queue.create ~initial_capacity:n () in
  for s = 0 to n - 1 do
    Array.fill dist 0 n (-1);
    Array.fill sigma 0 n 0.0;
    Array.fill delta 0 n 0.0;
    Array.fill preds 0 n [];
    let visited = ref 0 in
    dist.(s) <- 0;
    sigma.(s) <- 1.0;
    Ncg_util.Int_queue.clear queue;
    Ncg_util.Int_queue.push queue s;
    while not (Ncg_util.Int_queue.is_empty queue) do
      let v = Ncg_util.Int_queue.pop queue in
      order.(!visited) <- v;
      incr visited;
      Graph.iter_neighbors
        (fun w ->
          if dist.(w) < 0 then begin
            dist.(w) <- dist.(v) + 1;
            Ncg_util.Int_queue.push queue w
          end;
          if dist.(w) = dist.(v) + 1 then begin
            sigma.(w) <- sigma.(w) +. sigma.(v);
            preds.(w) <- v :: preds.(w)
          end)
        g v
    done;
    (* Reverse BFS order: accumulate dependencies. *)
    for i = !visited - 1 downto 0 do
      let w = order.(i) in
      List.iter
        (fun v -> delta.(v) <- delta.(v) +. (sigma.(v) /. sigma.(w) *. (1.0 +. delta.(w))))
        preds.(w);
      if w <> s then cb.(w) <- cb.(w) +. delta.(w)
    done
  done;
  (* Each unordered pair was counted from both endpoints. *)
  Array.map (fun x -> x /. 2.0) cb
