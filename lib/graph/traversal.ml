let dfs_preorder g root =
  let n = Graph.order g in
  if root < 0 || root >= n then invalid_arg "Traversal.dfs_preorder: bad root";
  let seen = Array.make n false in
  let order = ref [] in
  (* Explicit stack; neighbours are pushed in reverse so that the
     smallest is visited first. *)
  let stack = ref [ root ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | u :: rest ->
        stack := rest;
        if not seen.(u) then begin
          seen.(u) <- true;
          order := u :: !order;
          let offsets = Graph.csr_offsets g and packed = Graph.csr_packed g in
          for i = offsets.(u + 1) - 1 downto offsets.(u) do
            if not seen.(packed.(i)) then stack := packed.(i) :: !stack
          done
        end
  done;
  List.rev !order

let bipartition g =
  let n = Graph.order g in
  let color = Array.make n (-1) in
  let ok = ref true in
  let q = Ncg_util.Int_queue.create ~initial_capacity:n () in
  for s = 0 to n - 1 do
    if !ok && color.(s) < 0 then begin
      color.(s) <- 0;
      Ncg_util.Int_queue.push q s;
      while not (Ncg_util.Int_queue.is_empty q) do
        let u = Ncg_util.Int_queue.pop q in
        Graph.iter_neighbors
          (fun v ->
            if color.(v) < 0 then begin
              color.(v) <- 1 - color.(u);
              Ncg_util.Int_queue.push q v
            end
            else if color.(v) = color.(u) then ok := false)
          g u
      done
    end
  done;
  if !ok then Some color else None

let is_bipartite g = bipartition g <> None

(* Hopcroft–Tarjan low-link computation, iterative to survive deep
   graphs. Returns (articulation point flags, bridge list). *)
let lowlink_scan g =
  let n = Graph.order g in
  let disc = Array.make n (-1) in
  let low = Array.make n 0 in
  let parent = Array.make n (-1) in
  let is_cut = Array.make n false in
  let bridges = ref [] in
  let timer = ref 0 in
  for root = 0 to n - 1 do
    if disc.(root) = -1 then begin
      let root_children = ref 0 in
      (* Frame: (vertex, index of next neighbour to process). *)
      let stack = ref [ (root, ref 0) ] in
      disc.(root) <- !timer;
      low.(root) <- !timer;
      incr timer;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (u, next) :: rest ->
            let offsets = Graph.csr_offsets g and packed = Graph.csr_packed g in
            if !next < offsets.(u + 1) - offsets.(u) then begin
              let v = packed.(offsets.(u) + !next) in
              incr next;
              if disc.(v) = -1 then begin
                parent.(v) <- u;
                if u = root then incr root_children;
                disc.(v) <- !timer;
                low.(v) <- !timer;
                incr timer;
                stack := (v, ref 0) :: !stack
              end
              else if v <> parent.(u) then low.(u) <- min low.(u) disc.(v)
            end
            else begin
              (* Post-order: propagate low-link to the parent. *)
              stack := rest;
              let p = parent.(u) in
              if p >= 0 then begin
                low.(p) <- min low.(p) low.(u);
                if low.(u) > disc.(p) then
                  bridges := ((min p u, max p u)) :: !bridges;
                if p <> root && low.(u) >= disc.(p) then is_cut.(p) <- true
              end
            end
      done;
      if !root_children >= 2 then is_cut.(root) <- true
    end
  done;
  (is_cut, List.sort compare !bridges)

let articulation_points g =
  let is_cut, _ = lowlink_scan g in
  let acc = ref [] in
  for v = Graph.order g - 1 downto 0 do
    if is_cut.(v) then acc := v :: !acc
  done;
  !acc

let bridges g = snd (lowlink_scan g)
