type t = { n : int; adj : (int, unit) Hashtbl.t array; mutable m : int }

let create n =
  if n < 0 then invalid_arg "Builder.create: negative order";
  { n; adj = Array.init n (fun _ -> Hashtbl.create 4); m = 0 }

let order b = b.n
let size b = b.m

let check b v =
  if v < 0 || v >= b.n then invalid_arg "Builder: vertex out of range"

let mem_edge b u v =
  check b u;
  check b v;
  Hashtbl.mem b.adj.(u) v

let add_edge b u v =
  check b u;
  check b v;
  if u = v then invalid_arg "Builder.add_edge: self loop";
  if not (Hashtbl.mem b.adj.(u) v) then begin
    Hashtbl.replace b.adj.(u) v ();
    Hashtbl.replace b.adj.(v) u ();
    b.m <- b.m + 1
  end

let remove_edge b u v =
  check b u;
  check b v;
  if Hashtbl.mem b.adj.(u) v then begin
    Hashtbl.remove b.adj.(u) v;
    Hashtbl.remove b.adj.(v) u;
    b.m <- b.m - 1
  end

let degree b u =
  check b u;
  Hashtbl.length b.adj.(u)

let neighbors b u =
  check b u;
  (* Sorted so the result never exposes hash-bucket order. *)
  List.sort compare
    ((Hashtbl.fold [@lint.allow "D3" "collected neighbours are sorted before escaping"])
       (fun v () acc -> v :: acc)
       b.adj.(u) [])

let iter_neighbors f b u = List.iter f (neighbors b u)

let to_graph b =
  let edges = ref [] in
  for u = 0 to b.n - 1 do
    (Hashtbl.iter [@lint.allow "D3" "Graph.of_edges sorts and dedupes per vertex"])
      (fun v () -> if u < v then edges := (u, v) :: !edges)
      b.adj.(u)
  done;
  Graph.of_edges ~n:b.n !edges

let of_graph g =
  let b = create (Graph.order g) in
  Graph.iter_edges (fun u v -> add_edge b u v) g;
  b
