(* Immutable flat-CSR representation: [offsets] has n+1 entries and
   [packed] holds the 2m neighbour entries, each per-vertex segment sorted
   ascending. A canonical form (sorted, deduped segments) makes structural
   equality a plain array comparison and lets subgraph extraction copy
   segments without re-sorting. *)

type t = { n : int; m : int; offsets : int array; packed : int array }

let check_endpoint n v =
  if v < 0 || v >= n then invalid_arg "Graph: vertex out of range"

(* Build from a sorted array of codes [u * n + v], one per directed arc,
   duplicates allowed (they collapse). Shared by [of_edges]/[add_edges]. *)
let of_sorted_codes ~n codes =
  let len = Array.length codes in
  (* Count unique codes. *)
  let total = ref 0 in
  for i = 0 to len - 1 do
    if i = 0 || codes.(i) <> codes.(i - 1) then incr total
  done;
  let total = !total in
  let offsets = Array.make (n + 1) 0 in
  let packed = Array.make total 0 in
  let idx = ref 0 in
  for i = 0 to len - 1 do
    if i = 0 || codes.(i) <> codes.(i - 1) then begin
      let u = codes.(i) / n and v = codes.(i) mod n in
      offsets.(u + 1) <- offsets.(u + 1) + 1;
      packed.(!idx) <- v;
      incr idx
    end
  done;
  for u = 0 to n - 1 do
    offsets.(u + 1) <- offsets.(u) + offsets.(u + 1)
  done;
  { n; m = total / 2; offsets; packed }

let of_edges ~n edges =
  if n < 0 then invalid_arg "Graph.of_edges: negative order";
  let len = List.length edges in
  let codes = Array.make (2 * len) 0 in
  let i = ref 0 in
  List.iter
    (fun (u, v) ->
      check_endpoint n u;
      check_endpoint n v;
      if u = v then invalid_arg "Graph.of_edges: self loop";
      codes.(!i) <- (u * n) + v;
      codes.(!i + 1) <- (v * n) + u;
      i := !i + 2)
    edges;
  Array.sort (fun (a : int) b -> compare a b) codes;
  of_sorted_codes ~n codes

let empty n =
  if n < 0 then invalid_arg "Graph.empty: negative order";
  { n; m = 0; offsets = Array.make (n + 1) 0; packed = [||] }

let order g = g.n
let size g = g.m
let csr_offsets g = g.offsets
let csr_packed g = g.packed

let unsafe_of_csr ~n ~m ~offsets ~packed =
  (* Cheap shape checks only; callers promise sorted, deduped, symmetric
     segments with no self loops and exclusive ownership of the arrays. *)
  if
    n < 0
    || Array.length offsets <> n + 1
    || offsets.(0) <> 0
    || offsets.(n) <> Array.length packed
    || Array.length packed <> 2 * m
  then invalid_arg "Graph.unsafe_of_csr: inconsistent shape";
  { n; m; offsets; packed }

let neighbors g u =
  check_endpoint g.n u;
  let off = g.offsets.(u) in
  Array.sub g.packed off (g.offsets.(u + 1) - off)

let degree g u =
  check_endpoint g.n u;
  g.offsets.(u + 1) - g.offsets.(u)

let iter_neighbors f g u =
  check_endpoint g.n u;
  for i = g.offsets.(u) to g.offsets.(u + 1) - 1 do
    f g.packed.(i)
  done

let fold_neighbors f g u init =
  check_endpoint g.n u;
  let acc = ref init in
  for i = g.offsets.(u) to g.offsets.(u + 1) - 1 do
    acc := f g.packed.(i) !acc
  done;
  !acc

let mem_edge g u v =
  check_endpoint g.n u;
  check_endpoint g.n v;
  let packed = g.packed in
  let rec bsearch lo hi =
    if lo >= hi then false
    else begin
      let mid = (lo + hi) / 2 in
      if packed.(mid) = v then true
      else if packed.(mid) < v then bsearch (mid + 1) hi
      else bsearch lo mid
    end
  in
  bsearch g.offsets.(u) g.offsets.(u + 1)

let iter_edges f g =
  for u = 0 to g.n - 1 do
    for i = g.offsets.(u) to g.offsets.(u + 1) - 1 do
      let v = g.packed.(i) in
      if u < v then f u v
    done
  done

let edges g =
  let acc = ref [] in
  iter_edges (fun u v -> acc := (u, v) :: !acc) g;
  List.rev !acc

let fold_vertices f g init =
  let acc = ref init in
  for u = 0 to g.n - 1 do
    acc := f u !acc
  done;
  !acc

let add_edges g extra =
  let n = g.n in
  let extra_len = List.length extra in
  let codes = Array.make (Array.length g.packed + (2 * extra_len)) 0 in
  let i = ref 0 in
  for u = 0 to n - 1 do
    for j = g.offsets.(u) to g.offsets.(u + 1) - 1 do
      codes.(!i) <- (u * n) + g.packed.(j);
      incr i
    done
  done;
  List.iter
    (fun (u, v) ->
      check_endpoint n u;
      check_endpoint n v;
      if u = v then invalid_arg "Graph.add_edges: self loop";
      codes.(!i) <- (u * n) + v;
      codes.(!i + 1) <- (v * n) + u;
      i := !i + 2)
    extra;
  Array.sort (fun (a : int) b -> compare a b) codes;
  of_sorted_codes ~n codes

let remove_vertex_edges g u =
  check_endpoint g.n u;
  let n = g.n in
  let du = degree g u in
  let total = Array.length g.packed - (2 * du) in
  let offsets = Array.make (n + 1) 0 in
  let packed = Array.make total 0 in
  let idx = ref 0 in
  for w = 0 to n - 1 do
    if w <> u then
      for i = g.offsets.(w) to g.offsets.(w + 1) - 1 do
        let v = g.packed.(i) in
        if v <> u then begin
          packed.(!idx) <- v;
          incr idx
        end
      done;
    offsets.(w + 1) <- !idx
  done;
  { n; m = total / 2; offsets; packed }

(* [with_star g u star] is [g] with every edge incident to [u] replaced by
   edges from [u] to exactly the members of [star] (sorted, unique, no [u]).
   One O(n + m) pass; the hot primitive behind {!Ncg.View.with_strategy}. *)
let with_star g u star =
  check_endpoint g.n u;
  let n = g.n in
  let ds = Array.length star in
  Array.iteri
    (fun i v ->
      check_endpoint n v;
      if v = u then invalid_arg "Graph.with_star: self loop";
      if i > 0 && star.(i - 1) >= v then
        invalid_arg "Graph.with_star: star not sorted strictly ascending")
    star;
  (* New total arc count: u's segment becomes [star]; every other vertex w
     drops u if it had it and gains u iff w is in [star]. *)
  let old_du = degree g u in
  let had_u w = mem_edge g w u in
  let total = Array.length g.packed - (2 * old_du) + (2 * ds) in
  let offsets = Array.make (n + 1) 0 in
  let packed = Array.make total 0 in
  let idx = ref 0 in
  let si = ref 0 in
  for w = 0 to n - 1 do
    if w = u then begin
      Array.blit star 0 packed !idx ds;
      idx := !idx + ds
    end
    else begin
      let in_star = !si < ds && star.(!si) = w in
      if !si < ds && star.(!si) <= w then incr si;
      let drop_u = had_u w in
      if in_star || drop_u then begin
        (* Copy w's segment with u removed, then u merged back in sorted
           position when w buys into the new star. *)
        let placed = ref false in
        for i = g.offsets.(w) to g.offsets.(w + 1) - 1 do
          let v = g.packed.(i) in
          if v <> u then begin
            if in_star && (not !placed) && v > u then begin
              packed.(!idx) <- u;
              incr idx;
              placed := true
            end;
            packed.(!idx) <- v;
            incr idx
          end
        done;
        if in_star && not !placed then begin
          packed.(!idx) <- u;
          incr idx
        end
      end
      else begin
        let off = g.offsets.(w) in
        let len = g.offsets.(w + 1) - off in
        Array.blit g.packed off packed !idx len;
        idx := !idx + len
      end
    end;
    offsets.(w + 1) <- !idx
  done;
  { n; m = total / 2; offsets; packed }

let equal a b =
  a.n = b.n && a.m = b.m && a.offsets = b.offsets && a.packed = b.packed

let pp ppf g = Format.fprintf ppf "graph(n=%d, m=%d)" g.n g.m
