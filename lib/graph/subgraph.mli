(** Induced subgraphs with vertex renaming.

    Extracting a player's k-neighbourhood view is the central operation of
    the locality model, and it needs a bidirectional map between the names
    of vertices in the host graph and in the extracted subgraph. *)

type mapping = {
  to_sub : int array;
      (** host vertex → subgraph vertex, or [-1] if not included *)
  to_host : int array;  (** subgraph vertex → host vertex *)
}

(** [induced g vertices] is the subgraph induced by [vertices] (need not be
    sorted; duplicates collapse) together with the renaming. Vertices are
    renamed in increasing host order. *)
val induced : Graph.t -> int list -> Graph.t * mapping

(** [ball_induced g u ~radius] is [induced] on the ball of radius [radius]
    around [u] — a player's view, graph-side. [?scratch] lends reusable BFS
    buffers (the result does not alias them); without it a fresh scratch is
    allocated per call. *)
val ball_induced :
  ?scratch:Bfs.scratch -> Graph.t -> int -> radius:int -> Graph.t * mapping
