type mapping = { to_sub : int array; to_host : int array }

(* Build the induced CSR directly from [to_sub]/[to_host]: because renaming
   preserves host order and host segments are sorted, filtered segments stay
   sorted — two passes (count, fill) and no re-sort or dedupe. *)
let induced_of_mapping g to_sub to_host =
  let nv = Array.length to_host in
  let offsets = Array.make (nv + 1) 0 in
  let host_off = Graph.csr_offsets g and host_packed = Graph.csr_packed g in
  for i = 0 to nv - 1 do
    let v = to_host.(i) in
    let deg = ref 0 in
    for p = host_off.(v) to host_off.(v + 1) - 1 do
      if to_sub.(host_packed.(p)) >= 0 then incr deg
    done;
    offsets.(i + 1) <- offsets.(i) + !deg
  done;
  let total = offsets.(nv) in
  let packed = Array.make total 0 in
  let idx = ref 0 in
  for i = 0 to nv - 1 do
    let v = to_host.(i) in
    for p = host_off.(v) to host_off.(v + 1) - 1 do
      let j = to_sub.(host_packed.(p)) in
      if j >= 0 then begin
        packed.(!idx) <- j;
        incr idx
      end
    done
  done;
  Graph.unsafe_of_csr ~n:nv ~m:(total / 2) ~offsets ~packed

let induced g vertices =
  let n = Graph.order g in
  let to_sub = Array.make n (-1) in
  let sorted = List.sort_uniq compare vertices in
  List.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Subgraph.induced: vertex out of range")
    sorted;
  let to_host = Array.of_list sorted in
  Array.iteri (fun i v -> to_sub.(v) <- i) to_host;
  (induced_of_mapping g to_sub to_host, { to_sub; to_host })

let ball_induced ?scratch g u ~radius =
  let n = Graph.order g in
  let s =
    match scratch with
    | Some s -> s
    | None -> Bfs.create_scratch ~capacity:n ()
  in
  let visited = Bfs.run s g u ~radius in
  (* The ball in increasing host order: a pass over the dist buffer keeps
     the mapping arrays exactly as [induced] would build them. *)
  let dist = Bfs.dist_array s in
  let to_sub = Array.make n (-1) in
  let to_host = Array.make visited 0 in
  let i = ref 0 in
  for v = 0 to n - 1 do
    if dist.(v) >= 0 then begin
      to_sub.(v) <- !i;
      to_host.(!i) <- v;
      incr i
    end
  done;
  (induced_of_mapping g to_sub to_host, { to_sub; to_host })
