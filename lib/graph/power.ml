let power g h =
  if h < 0 then invalid_arg "Power.power: negative exponent";
  let n = Graph.order g in
  if h = 0 then Graph.empty n
  else begin
    (* Per-vertex segment of the power graph = ball(u) \ {u}, already in
       ascending order when read off the distance buffer; assemble the CSR
       directly with one BFS per vertex and one shared scratch. *)
    let s = Bfs.create_scratch ~capacity:n () in
    let rows = Array.make n [||] in
    for u = 0 to n - 1 do
      let visited = Bfs.run s g u ~radius:h in
      let dist = Bfs.dist_array s in
      let row = Array.make (visited - 1) 0 in
      let i = ref 0 in
      for v = 0 to n - 1 do
        if v <> u && dist.(v) >= 0 then begin
          row.(!i) <- v;
          incr i
        end
      done;
      rows.(u) <- row
    done;
    let offsets = Array.make (n + 1) 0 in
    for u = 0 to n - 1 do
      offsets.(u + 1) <- offsets.(u) + Array.length rows.(u)
    done;
    let total = offsets.(n) in
    let packed = Array.make total 0 in
    Array.iteri (fun u row -> Array.blit row 0 packed offsets.(u) (Array.length row)) rows;
    Graph.unsafe_of_csr ~n ~m:(total / 2) ~offsets ~packed
  end

let ball_sets g h =
  let n = Graph.order g in
  let s = Bfs.create_scratch ~capacity:n () in
  Array.init n (fun u ->
      let set = Ncg_util.Bitset.create n in
      let visited = Bfs.run s g u ~radius:(max h 0) in
      let order = Bfs.visit_order s in
      for i = 0 to visited - 1 do
        Ncg_util.Bitset.add set order.(i)
      done;
      set)
