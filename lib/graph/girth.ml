(* Classic BFS-based girth: a BFS from [s] finds, at the first non-tree
   edge joining two vertices u, v already reached, a cycle of length
   dist(u) + dist(v) + 1 through s. Taking the minimum over all roots is
   exact for unweighted graphs. We cap the BFS depth at the best bound
   found so far for speed. *)

let cycle_through g s ~cap =
  let n = Graph.order g in
  let dist = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let q = Ncg_util.Int_queue.create ~initial_capacity:n () in
  dist.(s) <- 0;
  Ncg_util.Int_queue.push q s;
  let best = ref cap in
  (try
     while not (Ncg_util.Int_queue.is_empty q) do
       let u = Ncg_util.Int_queue.pop q in
       if 2 * dist.(u) >= !best then raise Exit;
       Graph.iter_neighbors
         (fun v ->
           if v <> parent.(u) then
             if dist.(v) = -1 then begin
               dist.(v) <- dist.(u) + 1;
               parent.(v) <- u;
               Ncg_util.Int_queue.push q v
             end
             else begin
               (* Non-tree edge: cycle through s of this length. *)
               let len = dist.(u) + dist.(v) + 1 in
               if len < !best then best := len
             end)
         g u
     done
   with Exit -> ());
  !best

let girth g =
  let n = Graph.order g in
  let best = ref max_int in
  for s = 0 to n - 1 do
    best := cycle_through g s ~cap:!best
  done;
  if !best = max_int then None else Some !best

let girth_at_least g l =
  match girth g with None -> true | Some gg -> gg >= l
