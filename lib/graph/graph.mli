(** Immutable, simple, undirected graphs on vertices [0 .. n-1].

    The representation is flat CSR: one [int array] of per-vertex offsets
    (length [n + 1]) and one packed neighbour array (length [2m]) whose
    per-vertex segments are sorted ascending. This canonical form is built
    once from an edge list — the cache-friendly shape the BFS-heavy
    algorithms in this project want — and makes structural equality a plain
    array comparison. Self loops are rejected and parallel edges collapse.

    Mutation is not supported on purpose: in the network creation game the
    source of truth is the strategy profile and the graph is re-derived from
    it after a move (see {!Ncg.Strategy}). *)

type t

(** {1 Construction} *)

(** [of_edges ~n edges] builds a graph on [n] vertices. Duplicate edges
    (in either orientation) are collapsed.
    @raise Invalid_argument on a self loop or an endpoint outside [0, n). *)
val of_edges : n:int -> (int * int) list -> t

(** [empty n] has [n] vertices and no edges. *)
val empty : int -> t

(** [unsafe_of_csr ~n ~m ~offsets ~packed] wraps pre-built CSR arrays without
    normalising them. The caller promises: per-vertex segments sorted
    strictly ascending, symmetric (each arc present in both directions), no
    self loops, and that it transfers ownership of both arrays (they must
    never be mutated afterwards). Only cheap shape invariants are checked.
    Intended for internal fast paths ({!Ncg_graph.Subgraph}, {!with_star});
    prefer {!of_edges} everywhere else.
    @raise Invalid_argument when the array shapes are inconsistent. *)
val unsafe_of_csr : n:int -> m:int -> offsets:int array -> packed:int array -> t

(** {1 Observation} *)

(** Number of vertices. *)
val order : t -> int

(** Number of edges. *)
val size : t -> int

(** [neighbors g u] is the sorted array of neighbours of [u], freshly
    allocated on every call. Hot paths should use {!iter_neighbors} /
    {!fold_neighbors} or index {!csr_packed} directly instead. *)
val neighbors : t -> int -> int array

(** [degree g u] is the number of neighbours of [u]. *)
val degree : t -> int -> int

(** [iter_neighbors f g u] applies [f] to each neighbour of [u] in
    ascending order, without allocating. *)
val iter_neighbors : (int -> unit) -> t -> int -> unit

(** [fold_neighbors f g u init] folds over the neighbours of [u] in
    ascending order, without allocating. *)
val fold_neighbors : (int -> 'a -> 'a) -> t -> int -> 'a -> 'a

(** The CSR offset array (length [order g + 1]): the neighbours of [u] live
    at indices [offsets.(u) .. offsets.(u+1) - 1] of {!csr_packed}. The
    returned array is the graph's own storage — treat it as read-only. *)
val csr_offsets : t -> int array

(** The packed neighbour array (length [2 * size g]), segments sorted
    ascending. The graph's own storage — treat it as read-only. *)
val csr_packed : t -> int array

(** [mem_edge g u v] tests adjacency in O(log degree). *)
val mem_edge : t -> int -> int -> bool

(** Every edge [(u, v)] with [u < v], in lexicographic order. *)
val edges : t -> (int * int) list

(** [iter_edges f g] applies [f u v] to every edge with [u < v]. *)
val iter_edges : (int -> int -> unit) -> t -> unit

(** [fold_vertices f g init] folds over [0 .. n-1] in order. *)
val fold_vertices : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** {1 Derivation} *)

(** [add_edges g extra] is a fresh graph with the additional edges. *)
val add_edges : t -> (int * int) list -> t

(** [remove_vertex_edges g u] removes every edge incident to [u] (the vertex
    itself remains, isolated). *)
val remove_vertex_edges : t -> int -> t

(** [with_star g u star] replaces every edge incident to [u] with edges from
    [u] to exactly the members of [star], in one O(n + m) pass. [star] must
    be sorted strictly ascending and must not contain [u]; the array is not
    retained. This is the hot primitive behind {!Ncg.View.with_strategy}.
    @raise Invalid_argument on an unsorted star or an endpoint violation. *)
val with_star : t -> int -> int array -> t

(** Structural equality (same order, same edge set). *)
val equal : t -> t -> bool

(** Pretty-printer: ["graph(n=5, m=4)"]. *)
val pp : Format.formatter -> t -> unit
