let labels g =
  let n = Graph.order g in
  let label = Array.make n (-1) in
  let next = ref 0 in
  let q = Ncg_util.Int_queue.create ~initial_capacity:n () in
  for s = 0 to n - 1 do
    if label.(s) < 0 then begin
      let id = !next in
      incr next;
      label.(s) <- id;
      Ncg_util.Int_queue.push q s;
      while not (Ncg_util.Int_queue.is_empty q) do
        let u = Ncg_util.Int_queue.pop q in
        Graph.iter_neighbors
          (fun v ->
            if label.(v) < 0 then begin
              label.(v) <- id;
              Ncg_util.Int_queue.push q v
            end)
          g u
      done
    end
  done;
  label

let count g =
  let label = labels g in
  Array.fold_left max (-1) label + 1

let components g =
  let label = labels g in
  let n = Graph.order g in
  let k = Array.fold_left max (-1) label + 1 in
  let buckets = Array.make k [] in
  for v = n - 1 downto 0 do
    buckets.(label.(v)) <- v :: buckets.(label.(v))
  done;
  Array.to_list buckets

let same_component g u v =
  let label = labels g in
  label.(u) = label.(v)
