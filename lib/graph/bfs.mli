(** Breadth-first search primitives.

    Distances are returned as [int array]s indexed by vertex, with
    {!unreachable} marking vertices in other components.

    The allocating helpers ({!distances}, {!ball}, ...) are convenient and
    deterministic but cost two length-n arrays per call; hot paths should
    create one {!scratch} per logical run (e.g. per dynamics trajectory) and
    call {!run} repeatedly. See docs/PERFORMANCE.md for the ownership
    rules. *)

(** Distance value for vertices not reached by the search. *)
val unreachable : int

(** {1 Scratch-buffer searches} *)

(** Reusable search buffers. A scratch grows on demand and may be reused
    across graphs of different orders; it must not be shared between domains
    or used re-entrantly (each {!run} invalidates the previous results). *)
type scratch

(** [create_scratch ~capacity ()] pre-sizes the buffers for graphs of order
    ≤ [capacity] (default 0: grow on first use). *)
val create_scratch : ?capacity:int -> unit -> scratch

(** [run s g src ~radius] searches from [src], stopping at depth [radius]
    (pass [max_int] for unbounded), and returns the number of vertices
    reached. Afterwards [dist_array s] holds distances for all of
    [0 .. order g - 1] ([unreachable] outside the ball) and the first
    [visited] entries of [visit_order s] list the reached vertices in BFS
    order (so non-decreasing distance, [src] first).
    @raise Invalid_argument if [src] is outside [0, order g). *)
val run : scratch -> Graph.t -> int -> radius:int -> int

(** The scratch's distance buffer. Owned by the scratch: valid only until
    the next [run], entries at indices ≥ the searched graph's order are
    garbage, and callers must not mutate it. *)
val dist_array : scratch -> int array

(** The scratch's BFS-order buffer; same ownership rules as
    {!dist_array}. Only the first [run]-returned count of entries are
    meaningful. *)
val visit_order : scratch -> int array

(** {1 Allocating helpers} *)

(** [distances g u] is the array of hop distances from [u];
    [unreachable] where [u] cannot reach. O(n + m). *)
val distances : Graph.t -> int -> int array

(** [distances_within g u ~radius] stops expanding at depth [radius]:
    vertices farther than [radius] get [unreachable]. *)
val distances_within : Graph.t -> int -> radius:int -> int array

(** [ball g u ~radius] is the sorted list of vertices at distance
    ≤ [radius] from [u] ([u] included). *)
val ball : Graph.t -> int -> radius:int -> int list

(** [eccentricity g u] is [Some] of the largest distance from [u], or
    [None] if some vertex is unreachable (infinite eccentricity). *)
val eccentricity : Graph.t -> int -> int option

(** [sum_distances g u] is [Some] of the sum of distances from [u] to every
    other vertex, or [None] if the graph is disconnected from [u]. *)
val sum_distances : Graph.t -> int -> int option

(** [is_connected g] for [order g = 0] is [true]. *)
val is_connected : Graph.t -> bool

(** [shortest_path g u v] is a path [u; ...; v] of minimum length, or
    [None] if unreachable. *)
val shortest_path : Graph.t -> int -> int -> int list option
