let unreachable = -1

let distances_within g src ~radius =
  Ncg_obs.Metrics.(incr bfs_calls);
  Ncg_fault.Inject.(hit bfs);
  let n = Graph.order g in
  let dist = Array.make n unreachable in
  let q = Ncg_util.Int_queue.create ~initial_capacity:n () in
  dist.(src) <- 0;
  Ncg_util.Int_queue.push q src;
  while not (Ncg_util.Int_queue.is_empty q) do
    let u = Ncg_util.Int_queue.pop q in
    let du = dist.(u) in
    if du < radius then
      Array.iter
        (fun v ->
          if dist.(v) = unreachable then begin
            dist.(v) <- du + 1;
            Ncg_util.Int_queue.push q v
          end)
        (Graph.neighbors g u)
  done;
  dist

let distances g src = distances_within g src ~radius:max_int

let ball g src ~radius =
  let dist = distances_within g src ~radius in
  let acc = ref [] in
  for v = Graph.order g - 1 downto 0 do
    if dist.(v) <> unreachable then acc := v :: !acc
  done;
  !acc

let eccentricity g src =
  let dist = distances g src in
  let ecc = ref 0 in
  let connected = ref true in
  Array.iter
    (fun d -> if d = unreachable then connected := false else if d > !ecc then ecc := d)
    dist;
  if !connected then Some !ecc else None

let sum_distances g src =
  let dist = distances g src in
  let sum = ref 0 in
  let connected = ref true in
  Array.iter (fun d -> if d = unreachable then connected := false else sum := !sum + d) dist;
  if !connected then Some !sum else None

let is_connected g =
  let n = Graph.order g in
  n = 0
  ||
  let dist = distances g 0 in
  Array.for_all (fun d -> d <> unreachable) dist

let shortest_path g u v =
  let dist = distances g u in
  if dist.(v) = unreachable then None
  else begin
    (* Walk back from [v] following any neighbour one step closer to [u]. *)
    let rec back w acc =
      if w = u then w :: acc
      else begin
        let nbrs = Graph.neighbors g w in
        let pred = ref (-1) in
        Array.iter (fun x -> if !pred < 0 && dist.(x) = dist.(w) - 1 then pred := x) nbrs;
        back !pred (w :: acc)
      end
    in
    Some (back v [])
  end
