let unreachable = -1

(* Reusable per-search buffers: [dist] doubles as the visited marker and
   [queue] is a flat FIFO whose first [visited] entries after a run list the
   reached vertices in BFS order. Growing on demand means one scratch can
   serve graphs of any size; threading one scratch through a dynamics run
   is what keeps repeated best-response calls off the minor heap. *)
type scratch = { mutable dist : int array; mutable queue : int array }

let create_scratch ?(capacity = 0) () =
  { dist = Array.make capacity unreachable; queue = Array.make capacity 0 }

let ensure s n =
  if Array.length s.dist < n then begin
    s.dist <- Array.make n unreachable;
    s.queue <- Array.make n 0
  end

let dist_array s = s.dist
let visit_order s = s.queue

let run s g src ~radius =
  Ncg_obs.Metrics.(incr bfs_calls);
  Ncg_fault.Inject.(hit bfs);
  let n = Graph.order g in
  if src < 0 || src >= n then invalid_arg "Bfs.run: source out of range";
  ensure s n;
  let dist = s.dist and queue = s.queue in
  Array.fill dist 0 n unreachable;
  let offsets = Graph.csr_offsets g and packed = Graph.csr_packed g in
  dist.(src) <- 0;
  queue.(0) <- src;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    let du = dist.(u) in
    if du < radius then begin
      let stop = offsets.(u + 1) in
      for i = offsets.(u) to stop - 1 do
        let v = packed.(i) in
        if dist.(v) < 0 then begin
          dist.(v) <- du + 1;
          queue.(!tail) <- v;
          incr tail
        end
      done
    end
  done;
  !tail

let distances_within g src ~radius =
  let s = create_scratch ~capacity:(Graph.order g) () in
  ignore (run s g src ~radius);
  s.dist

let distances g src = distances_within g src ~radius:max_int

let ball g src ~radius =
  let s = create_scratch ~capacity:(Graph.order g) () in
  ignore (run s g src ~radius);
  let acc = ref [] in
  for v = Graph.order g - 1 downto 0 do
    if s.dist.(v) <> unreachable then acc := v :: !acc
  done;
  !acc

let eccentricity g src =
  let n = Graph.order g in
  let s = create_scratch ~capacity:n () in
  let visited = run s g src ~radius:max_int in
  (* The last vertex dequeued is a farthest one: BFS order is by distance. *)
  if visited = n then Some s.dist.(s.queue.(visited - 1)) else None

let sum_distances g src =
  let n = Graph.order g in
  let s = create_scratch ~capacity:n () in
  let visited = run s g src ~radius:max_int in
  if visited < n then None
  else begin
    let sum = ref 0 in
    for i = 0 to visited - 1 do
      sum := !sum + s.dist.(s.queue.(i))
    done;
    Some !sum
  end

let is_connected g =
  let n = Graph.order g in
  n = 0
  ||
  let s = create_scratch ~capacity:n () in
  run s g 0 ~radius:max_int = n

let shortest_path g u v =
  let dist = distances g u in
  if dist.(v) = unreachable then None
  else begin
    (* Walk back from [v] following any neighbour one step closer to [u]. *)
    let rec back w acc =
      if w = u then w :: acc
      else begin
        let pred = ref (-1) in
        Graph.iter_neighbors
          (fun x -> if !pred < 0 && dist.(x) = dist.(w) - 1 then pred := x)
          g w;
        back !pred (w :: acc)
      end
    in
    Some (back v [])
  end
