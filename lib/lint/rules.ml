type id = D1 | D2 | D3 | D4 | P1 | A1 | F1 | O1 | L1

let all = [ D1; D2; D3; D4; P1; A1; F1; O1; L1 ]

let to_string = function
  | D1 -> "D1"
  | D2 -> "D2"
  | D3 -> "D3"
  | D4 -> "D4"
  | P1 -> "P1"
  | A1 -> "A1"
  | F1 -> "F1"
  | O1 -> "O1"
  | L1 -> "L1"

let of_string = function
  | "D1" -> Some D1
  | "D2" -> Some D2
  | "D3" -> Some D3
  | "D4" -> Some D4
  | "P1" -> Some P1
  | "A1" -> Some A1
  | "F1" -> Some F1
  | "O1" -> Some O1
  | "L1" -> Some L1
  | _ -> None

let title = function
  | D1 -> "stdlib randomness outside lib/prng"
  | D2 -> "wall-clock read outside lib/obs"
  | D3 -> "hash-order iteration"
  | D4 -> "lossy float formatting"
  | P1 -> "unsynchronized top-level mutable state"
  | A1 -> "bare output channel for artifact writes"
  | F1 -> "unregistered fault site"
  | O1 -> "unregistered probe name"
  | L1 -> "malformed lint annotation"

let contract = function
  | D1 ->
      "All randomness flows through Ncg_prng's SplitMix64 seed streams; \
       Stdlib.Random has process-global state and an unseeded self_init, either \
       of which breaks bit-identical sweeps."
  | D2 ->
      "Wall-clock reads live behind Ncg_obs.Clock (monotonic); scattered \
       Unix.gettimeofday / Unix.time / Sys.time calls make timings \
       incomparable and leak nondeterminism into outputs."
  | D3 ->
      "Hashtbl.iter/fold visit keys in hash-bucket order, which is not part of \
       any contract; an order change (hash function, randomized hashing, \
       resize policy) would silently reorder telemetry, CSV and JSON output."
  | D4 ->
      "Serialized floats must round-trip: string_of_float and bare %f truncate \
       (12 digits / 6 digits) and lose NaN/infinity, so crash/resume replays \
       would diverge byte-wise from fresh runs."
  | P1 ->
      "Libraries run on multiple domains under Parallel/Executor; top-level \
       mutable state must be Atomic.t, Domain.DLS, mutex-guarded, or \
       explicitly marked [@lint.domain_local] with a written justification."
  | A1 ->
      "Artifact files are written via the atomic temp+fsync+rename helpers in \
       lib/obs and lib/store; a bare open_out can leave a torn file behind on \
       crash, breaking the crash/resume byte-identity contract."
  | F1 ->
      "Every fault site named in code must exist in Inject's registered site \
       list; an orphan name would silently never fire, making a fault plan \
       test vacuous."
  | O1 ->
      "Probe names form a closed namespace like fault sites: every probe \
       name literal handed to Ncg_obs.Probe.find or Probe.register must be \
       in the live registry (Probe.names ()), or a dashboard filter / probe \
       lookup silently matches nothing."
  | L1 ->
      "[@lint.allow \"RULE\" \"why\"] must name a known rule and carry a \
       non-empty justification; [@lint.domain_local \"why\"] likewise — \
       suppressions are part of the audit trail."

let hint = function
  | D1 -> "draw from an Ncg_prng.Rng stream threaded from the experiment seed"
  | D2 -> "use Ncg_obs.Clock.now_ns / Clock.elapsed_ns"
  | D3 ->
      "iterate sorted keys, or sort the collected result before it escapes \
       (then suppress with a justification)"
  | D4 -> "use Ncg_obs.Json.Float, or an explicit-precision format like %.17g/%g"
  | P1 ->
      "wrap in Atomic.make / Domain.DLS.new_key / Mutex.create, or annotate \
       [@@lint.domain_local \"why this is safe\"]"
  | A1 -> "use Ncg_obs.Json.to_file, Ncg_obs.Atomic_file.write, or lib/store"
  | F1 -> "register the site in lib/fault/inject.ml next to the built-ins"
  | O1 -> "register the probe in lib/obs/probe.ml next to the built-ins"
  | L1 -> "write [@lint.allow \"RULE\" \"justification\"] with both parts present"
