type id = D1 | D2 | D3 | D4 | P1 | P2 | A1 | F1 | O1 | S1 | R1 | L1 | L2

let all = [ D1; D2; D3; D4; P1; P2; A1; F1; O1; S1; R1; L1; L2 ]

let to_string = function
  | D1 -> "D1"
  | D2 -> "D2"
  | D3 -> "D3"
  | D4 -> "D4"
  | P1 -> "P1"
  | P2 -> "P2"
  | A1 -> "A1"
  | F1 -> "F1"
  | O1 -> "O1"
  | S1 -> "S1"
  | R1 -> "R1"
  | L1 -> "L1"
  | L2 -> "L2"

let of_string = function
  | "D1" -> Some D1
  | "D2" -> Some D2
  | "D3" -> Some D3
  | "D4" -> Some D4
  | "P1" -> Some P1
  | "P2" -> Some P2
  | "A1" -> Some A1
  | "F1" -> Some F1
  | "O1" -> Some O1
  | "S1" -> Some S1
  | "R1" -> Some R1
  | "L1" -> Some L1
  | "L2" -> Some L2
  | _ -> None

let title = function
  | D1 -> "stdlib randomness outside lib/prng"
  | D2 -> "wall-clock read outside lib/obs"
  | D3 -> "hash-order iteration"
  | D4 -> "lossy float formatting"
  | P1 -> "unsynchronized top-level mutable state"
  | P2 -> "cross-domain capture of unsynchronized mutable state"
  | A1 -> "bare output channel for artifact writes"
  | F1 -> "unregistered fault site"
  | O1 -> "unregistered probe name"
  | S1 -> "borrowed scratch view escapes its lender"
  | R1 -> "schema literal outside the registry"
  | L1 -> "malformed lint annotation"
  | L2 -> "stale lint suppression"

let contract = function
  | D1 ->
      "All randomness flows through Ncg_prng's SplitMix64 seed streams; \
       Stdlib.Random has process-global state and an unseeded self_init, either \
       of which breaks bit-identical sweeps."
  | D2 ->
      "Wall-clock reads live behind Ncg_obs.Clock (monotonic); scattered \
       Unix.gettimeofday / Unix.time / Sys.time calls make timings \
       incomparable and leak nondeterminism into outputs."
  | D3 ->
      "Hashtbl.iter/fold visit keys in hash-bucket order, which is not part of \
       any contract; an order change (hash function, randomized hashing, \
       resize policy) would silently reorder telemetry, CSV and JSON output."
  | D4 ->
      "Serialized floats must round-trip: string_of_float and bare %f truncate \
       (12 digits / 6 digits) and lose NaN/infinity, so crash/resume replays \
       would diverge byte-wise from fresh runs."
  | P1 ->
      "Libraries run on multiple domains under Parallel/Executor; top-level \
       mutable state must be Atomic.t, Domain.DLS, mutex-guarded, or \
       explicitly marked [@lint.domain_local] with a written justification."
  | P2 ->
      "A closure handed to a fan-out point (Parallel.chunked_map, \
       Executor.map, Domain.spawn) runs on another domain: any plain mutable \
       state it captures from an enclosing scope (ref, array, Hashtbl, \
       Buffer, Bytes, Queue, Stack) is a data race unless it is Atomic, \
       domain-local, or provably guarded — and a guard the checker cannot \
       see must be written down in a suppression."
  | A1 ->
      "Artifact files are written via the atomic temp+fsync+rename helpers in \
       lib/obs and lib/store; a bare open_out can leave a torn file behind on \
       crash, breaking the crash/resume byte-identity contract."
  | F1 ->
      "Every fault site named in code must exist in Inject's registered site \
       list; an orphan name would silently never fire, making a fault plan \
       test vacuous."
  | O1 ->
      "Probe names form a closed namespace like fault sites: every probe \
       name literal handed to Ncg_obs.Probe.find or Probe.register must be \
       in the live registry (Probe.names ()), or a dashboard filter / probe \
       lookup silently matches nothing."
  | S1 ->
      "Bfs.dist_array / Bfs.visit_order and the Ncg.Workspace pools lend \
       views into scratch buffers that the next run overwrites \
       (docs/PERFORMANCE.md): a view stored into a ref/field/container, \
       packed into a returned value, captured by an escaping closure, or \
       bound at module level outlives its loan and will be read after it is \
       clobbered."
  | R1 ->
      "Every ncg.*/N schema tag, in emit and parse position alike, comes \
       from the central registry (Ncg_obs.Schema); a local literal can skew \
       from its counterpart across a version bump, silently producing \
       artifacts nothing can read back."
  | L1 ->
      "[@lint.allow \"RULE\" \"why\"] must name a known rule and carry a \
       non-empty justification; [@lint.domain_local \"why\"] likewise — \
       suppressions are part of the audit trail."
  | L2 ->
      "A suppression whose rule no longer fires anywhere in its scope, under \
       any pass that checks that rule, is dead weight that hides future \
       violations at the same site; the audit trail stays honest only if \
       suppressions are removed when the code they excused is gone."

let hint = function
  | D1 -> "draw from an Ncg_prng.Rng stream threaded from the experiment seed"
  | D2 -> "use Ncg_obs.Clock.now_ns / Clock.elapsed_ns"
  | D3 ->
      "iterate sorted keys, or sort the collected result before it escapes \
       (then suppress with a justification)"
  | D4 -> "use Ncg_obs.Json.Float, or an explicit-precision format like %.17g/%g"
  | P1 ->
      "wrap in Atomic.make / Domain.DLS.new_key / Mutex.create, or annotate \
       [@@lint.domain_local \"why this is safe\"]"
  | P2 ->
      "make the captured state Atomic (or per-chunk, merged after the join); \
       if a mutex really guards every access, say so in a [@lint.allow \"P2\"] \
       justification"
  | A1 -> "use Ncg_obs.Json.to_file, Ncg_obs.Atomic_file.write, or lib/store"
  | F1 -> "register the site in lib/fault/inject.ml next to the built-ins"
  | O1 -> "register the probe in lib/obs/probe.ml next to the built-ins"
  | S1 ->
      "copy before it escapes (Array.copy / Array.sub), or restructure so \
       the view is consumed inside the lending call"
  | R1 -> "name the tag in lib/obs/schema.ml and reference Ncg_obs.Schema.<name>"
  | L1 -> "write [@lint.allow \"RULE\" \"justification\"] with both parts present"
  | L2 -> "delete the suppression (or fix the scope if it drifted off its target)"
