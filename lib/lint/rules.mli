(** The rule catalogue of [ncg_lint] (see docs/LINTING.md).

    Each rule mechanizes one convention the reproducibility story already
    relies on: determinism (D1–D4), parallel safety (P1), artifact
    atomicity (A1), fault-site hygiene (F1) and probe-name hygiene (O1).
    L1 polices the suppression annotations themselves. *)

type id =
  | D1  (** no [Random.*] outside lib/prng *)
  | D2  (** no [Unix.gettimeofday]/[Unix.time]/[Sys.time] outside lib/obs *)
  | D3  (** no [Hashtbl.iter]/[Hashtbl.fold] (hash-order iteration) *)
  | D4  (** no [string_of_float]/bare [%f] (lossy float formatting) *)
  | P1  (** top-level mutable state must be synchronized or annotated *)
  | A1  (** no bare [open_out]; artifact writes go through atomic helpers *)
  | F1  (** fault-site literals must be registered in {!Ncg_fault.Inject} *)
  | O1  (** probe-name literals must be registered in [Ncg_obs.Probe] *)
  | L1  (** lint annotations must name a rule and justify themselves *)

(** Every rule, in catalogue order. *)
val all : id list

val to_string : id -> string
val of_string : string -> id option

(** One-line human name, e.g. ["stdlib randomness outside lib/prng"]. *)
val title : id -> string

(** The repo contract the rule guards (shown in the JSON report). *)
val contract : id -> string

(** Fix hint appended to every violation of the rule. *)
val hint : id -> string
