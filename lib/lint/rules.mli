(** The rule catalogue of [ncg_lint] (see docs/LINTING.md).

    Each rule mechanizes one convention the reproducibility story already
    relies on: determinism (D1–D4), parallel safety (P1/P2), artifact
    atomicity (A1), fault-site hygiene (F1), probe-name hygiene (O1),
    scratch-buffer ownership (S1) and schema-tag hygiene (R1). L1
    polices the suppression annotations themselves; L2 polices their
    staleness.

    D1–D4, P1, A1, F1, O1 and L1 are checked by both the syntactic pass
    ({!Lint}) and the typed pass ({!Typed_lint}); S1, P2 and R1 need
    type information and are typed-only; L2 is computed at report-merge
    time ({!Report.merge}). *)

type id =
  | D1  (** no [Random.*] outside lib/prng *)
  | D2  (** no [Unix.gettimeofday]/[Unix.time]/[Sys.time] outside lib/obs *)
  | D3  (** no [Hashtbl.iter]/[Hashtbl.fold] (hash-order iteration) *)
  | D4  (** no [string_of_float]/bare [%f] (lossy float formatting) *)
  | P1  (** top-level mutable state must be synchronized or annotated *)
  | P2  (** closures crossing a domain boundary must not capture plain
            mutable state (typed pass only) *)
  | A1  (** no bare [open_out]; artifact writes go through atomic helpers *)
  | F1  (** fault-site literals must be registered in {!Ncg_fault.Inject} *)
  | O1  (** probe-name literals must be registered in [Ncg_obs.Probe] *)
  | S1  (** borrowed scratch views must not escape their lender
            (typed pass only) *)
  | R1  (** [ncg.*/N] schema literals live only in the registry
            (typed pass only) *)
  | L1  (** lint annotations must name a rule and justify themselves *)
  | L2  (** a suppression whose rule no longer fires is stale
            (report-merge only) *)

(** Every rule, in catalogue order. *)
val all : id list

val to_string : id -> string
val of_string : string -> id option

(** One-line human name, e.g. ["stdlib randomness outside lib/prng"]. *)
val title : id -> string

(** The repo contract the rule guards (shown in the JSON report). *)
val contract : id -> string

(** Fix hint appended to every violation of the rule. *)
val hint : id -> string
