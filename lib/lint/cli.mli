(** Entry point for [bin/ncg_lint.exe] (see docs/LINTING.md).

    Lives in a library because the executable's own compilation unit is
    named [Ncg_lint], shadowing the checker library's wrapper module. *)

(** Parse the command line, lint the tree, print/write reports, exit
    (0 clean, 1 violations or parse errors, 2 usage errors). *)
val main : unit -> unit
