(* AST-level invariant checker. Parses each .ml with the host compiler's
   parser (compiler-libs) and walks the Parsetree with Ast_iterator — no
   typing, no ppx: every rule is a syntactic pattern plus a path-based
   zone (lib/prng may use randomness, lib/obs may read clocks, ...), so
   the checker runs on any tree state, even one that does not build. *)

open Parsetree

type ctx = {
  prng_exempt : bool;  (* D1 off: the blessed randomness source *)
  clock_exempt : bool;  (* D2 off: the blessed clock *)
  fault_registry : bool;  (* F1 also watches bare [site] calls here *)
  global_state : bool;  (* P1 on: library code reachable from the executor *)
  parallel_impl : bool;  (* P2 off: the fan-out machinery itself *)
  scratch_lender : bool;  (* S1 off: the module that owns the scratch *)
  schema_registry : bool;  (* R1 off: the one blessed literal site *)
  known_sites : string list;  (* F1: the registered fault-site names *)
  known_probes : string list;  (* O1: the registered probe names *)
  known_schemas : string list;  (* R1: the registered schema tags *)
}

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let ctx_for_path ~known_sites ~known_probes ~known_schemas path =
  let path = String.map (fun c -> if c = '\\' then '/' else c) path in
  let p = "/" ^ path in
  let in_dir d = contains_sub p ("/" ^ d ^ "/") in
  let is_file f = String.ends_with ~suffix:("/" ^ f) p in
  {
    prng_exempt = in_dir "lib/prng";
    clock_exempt = in_dir "lib/obs";
    fault_registry = in_dir "lib/fault";
    global_state = in_dir "lib";
    parallel_impl = is_file "lib/util/parallel.ml" || is_file "lib/fault/executor.ml";
    scratch_lender = is_file "lib/graph/bfs.ml" || is_file "lib/core/workspace.ml";
    schema_registry = is_file "lib/obs/schema.ml";
    known_sites;
    known_probes;
    known_schemas;
  }

type violation = {
  file : string;
  line : int;
  col : int;
  rule : Rules.id;
  message : string;
}

type suppression = {
  sup_file : string;
  sup_line : int;
  sup_rule : Rules.id;
  sup_justification : string;
  sup_matched : int;  (* raw violations this suppression absorbed *)
}

type file_report = {
  path : string;
  violations : violation list;
  suppressions : suppression list;
  parse_error : string option;
}

(* --- Syntactic helpers ----------------------------------------------------- *)

let flatten_ident txt =
  match Longident.flatten txt with
  | parts -> ( match parts with "Stdlib" :: rest -> rest | l -> l)
  | exception _ -> []

let expr_ident e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> flatten_ident txt
  | _ -> []

let rec payload_strings e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> [ s ]
  | Pexp_apply (f, args) ->
      payload_strings f @ List.concat_map (fun (_, a) -> payload_strings a) args
  | Pexp_tuple es -> List.concat_map payload_strings es
  | _ -> []

let attr_strings (attr : attribute) =
  match attr.attr_payload with
  | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> payload_strings e
  | _ -> []

(* A conversion that prints a float with no explicit precision: '%f' not
   preceded by an escaping '%'. *)
let has_bare_percent_f s =
  let n = String.length s in
  let rec go i =
    if i + 1 >= n then false
    else if s.[i] <> '%' then go (i + 1)
    else if s.[i + 1] = '%' then go (i + 2)
    else if s.[i + 1] = 'f' then true
    else go (i + 1)
  in
  go 0

let printf_family parts =
  match parts with
  | ("Printf" | "Format") :: _ -> true
  | _ -> (
      match List.rev parts with
      | f :: _ ->
          List.mem f
            [
              "printf";
              "sprintf";
              "eprintf";
              "fprintf";
              "bprintf";
              "ksprintf";
              "asprintf";
              "kasprintf";
              "kfprintf";
            ]
      | [] -> false)

(* The P1 shapes: a top-level binding whose right-hand side builds plain
   mutable state. Safe constructors (Atomic.make, Mutex.create,
   Domain.DLS.new_key) simply do not match. *)
let rec mutable_shape ?(env = []) e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) -> mutable_shape ~env e
  (* An initializer block ([let t = Bytes.create n in ...fill...; t]) is
     judged by what it ultimately evaluates to, threading the shapes of
     its local bindings. *)
  | Pexp_let (_, vbs, body) ->
      let env =
        List.fold_left
          (fun env vb ->
            match (vb.pvb_pat.ppat_desc, mutable_shape ~env vb.pvb_expr) with
            | Ppat_var { txt; _ }, Some what -> (txt, what) :: env
            | _ -> env)
          env vbs
      in
      mutable_shape ~env body
  | Pexp_sequence (_, e) -> mutable_shape ~env e
  | Pexp_ident { txt = Longident.Lident x; _ } -> List.assoc_opt x env
  | Pexp_apply (f, _) -> (
      match expr_ident f with
      | [ "ref" ] -> Some "ref cell"
      | [ "Array"; ("make" | "init" | "create_float" | "make_matrix") ] ->
          Some "array"
      | [ "Bytes"; ("create" | "make") ] -> Some "bytes buffer"
      | [ "Hashtbl"; "create" ] -> Some "hash table"
      | [ "Buffer"; "create" ] -> Some "buffer"
      | [ "Queue"; "create" ] -> Some "queue"
      | [ "Stack"; "create" ] -> Some "stack"
      | _ -> None)
  | _ -> None

(* --- Suppression plumbing (shared with Typed_lint) ------------------------- *)

type raw_suppression = {
  rs_rule : Rules.id;
  rs_from : int;  (* cnum range the suppression covers *)
  rs_to : int;
  rs_line : int;
  rs_justification : string;
}

(* [@lint.allow "RULE"... "why"] / [@lint.domain_local "why"], scoped to
   the host node's character range. Attribute payloads are Parsetree in
   both the Parsetree and the Typedtree, so both passes parse them here. *)
let scan_attr ~add_viol ~add_supp ~from_cnum ~to_cnum (attr : attribute) =
  let line = attr.attr_loc.Location.loc_start.Lexing.pos_lnum in
  let supp rule justification =
    add_supp
      {
        rs_rule = rule;
        rs_from = from_cnum;
        rs_to = to_cnum;
        rs_line = line;
        rs_justification = justification;
      }
  in
  match attr.attr_name.Location.txt with
  | "lint.allow" ->
      let strings = attr_strings attr in
      let rec split acc = function
        | s :: rest when Rules.of_string s <> None ->
            split (Option.get (Rules.of_string s) :: acc) rest
        | rest -> (List.rev acc, rest)
      in
      let rules, rest = split [] strings in
      let justification = String.trim (String.concat " " rest) in
      if rules = [] then
        add_viol attr.attr_loc Rules.L1
          "lint.allow names no known rule id (expected e.g. \"D3\")"
      else if justification = "" then
        add_viol attr.attr_loc Rules.L1
          "lint.allow carries no justification string"
      else List.iter (fun r -> supp r justification) rules
  | "lint.domain_local" ->
      let justification = String.trim (String.concat " " (attr_strings attr)) in
      if justification = "" then
        add_viol attr.attr_loc Rules.L1
          "lint.domain_local carries no justification string"
      else supp Rules.P1 justification
  | _ -> ()

(* Apply collected suppressions to collected raw violations: a violation
   is dropped when any suppression of its rule spans its cnum; each
   suppression records how many raw violations it absorbed (the L2
   staleness signal, judged at report-merge time). *)
let finish ~filename raw_supps raw_viols =
  let covers s ((v : violation), cnum) =
    s.rs_rule = v.rule && cnum >= s.rs_from && cnum <= s.rs_to
  in
  let violations =
    raw_viols
    |> List.filter (fun rv -> not (List.exists (fun s -> covers s rv) raw_supps))
    |> List.sort (fun (_, a) (_, b) -> compare a b)
    |> List.map fst
  in
  let suppressions =
    raw_supps
    |> List.sort (fun a b -> compare a.rs_line b.rs_line)
    |> List.map (fun s ->
           {
             sup_file = filename;
             sup_line = s.rs_line;
             sup_rule = s.rs_rule;
             sup_justification = s.rs_justification;
             sup_matched = List.length (List.filter (covers s) raw_viols);
           })
  in
  { path = filename; violations; suppressions; parse_error = None }

(* --- The walker ------------------------------------------------------------ *)

let run_checks ~ctx ~filename str =
  let viols = ref [] in
  let supps = ref [] in
  let add_viol loc rule message =
    let p = loc.Location.loc_start in
    viols :=
      ( {
          file = filename;
          line = p.Lexing.pos_lnum;
          col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
          rule;
          message;
        },
        p.Lexing.pos_cnum )
      :: !viols
  in
  let add_supp s = supps := s :: !supps in
  let handle_attr ~from_cnum ~to_cnum attr =
    scan_attr ~add_viol ~add_supp ~from_cnum ~to_cnum attr
  in
  let handle_attrs loc attrs =
    let from_cnum = loc.Location.loc_start.Lexing.pos_cnum in
    let to_cnum = loc.Location.loc_end.Lexing.pos_cnum in
    List.iter (handle_attr ~from_cnum ~to_cnum) attrs
  in
  let check_ident loc parts =
    (match parts with
    | "Random" :: _ when not ctx.prng_exempt ->
        add_viol loc Rules.D1
          (String.concat "." parts ^ ": stdlib randomness (process-global state)")
    | [ "Unix"; ("gettimeofday" | "time") ] | [ "Sys"; "time" ] ->
        if not ctx.clock_exempt then
          add_viol loc Rules.D2
            (String.concat "." parts ^ ": wall-clock read outside the Clock module")
    | [ "string_of_float" ] | [ "Float"; "to_string" ] ->
        add_viol loc Rules.D4
          (String.concat "." parts
         ^ ": lossy float formatting (12 significant digits, no NaN round-trip)")
    | [ ("open_out" | "open_out_bin" | "open_out_gen") ]
    | [
        "Out_channel";
        ( "open_text" | "open_bin" | "open_gen" | "with_open_text" | "with_open_bin"
        | "with_open_gen" );
      ] ->
        add_viol loc Rules.A1
          (String.concat "." parts
          ^ ": bare output channel (a crash here leaves a torn artifact)")
    | _ -> ());
    match List.rev parts with
    | ("iter" | "fold") :: rest when List.mem "Hashtbl" rest ->
        add_viol loc Rules.D3
          (String.concat "." parts ^ ": iteration order is hash-bucket order")
    | _ -> ()
  in
  let check_apply loc f args =
    let parts = expr_ident f in
    (* D4: bare %f in a printf-family format string. *)
    if printf_family parts then
      List.iter
        (fun (_, arg) ->
          match arg.pexp_desc with
          | Pexp_constant (Pconst_string (s, _, _)) when has_bare_percent_f s ->
              add_viol arg.pexp_loc Rules.D4
                "format string uses a bare %f conversion (6-digit truncation)"
          | _ -> ())
        args;
    (* F1: a site literal handed to Inject.site (or a bare [site] call
       inside the registry library itself) must be a registered name. *)
    let is_site_call =
      match List.rev parts with
      | "site" :: rest -> rest <> [] && List.mem "Inject" parts || (rest = [] && ctx.fault_registry)
      | _ -> false
    in
    if is_site_call then
      (match args with
      | (Asttypes.Nolabel, { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ })
        :: _ ->
          if not (List.mem s ctx.known_sites) then
            add_viol loc Rules.F1
              (Printf.sprintf "fault site %S is not in the registered site list" s)
      | _ -> ());
    (* O1: a probe name literal handed to Probe.find or Probe.register
       must already be in the live registry — the namespace is closed,
       like fault sites. (Registrations in lib/obs/probe.ml itself ran at
       lint-process init, so the built-ins are always "known".) *)
    let is_probe_call =
      match List.rev parts with
      | ("find" | "register") :: rest -> rest <> [] && List.mem "Probe" parts
      | _ -> false
    in
    if is_probe_call then
      match args with
      | (Asttypes.Nolabel, { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ })
        :: _ ->
          if not (List.mem s ctx.known_probes) then
            add_viol loc Rules.O1
              (Printf.sprintf "probe name %S is not in the registered probe list" s)
      | _ -> ()
  in
  let default = Ast_iterator.default_iterator in
  let iter =
    {
      default with
      Ast_iterator.expr =
        (fun it e ->
          handle_attrs e.pexp_loc e.pexp_attributes;
          (match e.pexp_desc with
          | Pexp_ident { txt; loc } -> check_ident loc (flatten_ident txt)
          | Pexp_apply (f, args) -> check_apply e.pexp_loc f args
          | _ -> ());
          default.Ast_iterator.expr it e);
      Ast_iterator.value_binding =
        (fun it vb ->
          handle_attrs vb.pvb_loc vb.pvb_attributes;
          default.Ast_iterator.value_binding it vb);
      Ast_iterator.open_declaration =
        (fun it od ->
          (match od.popen_expr.pmod_desc with
          | Pmod_ident { txt; _ } -> (
              match flatten_ident txt with
              | "Random" :: _ when not ctx.prng_exempt ->
                  add_viol od.popen_loc Rules.D1
                    "open Random: stdlib randomness (process-global state)"
              | _ -> ())
          | _ -> ());
          default.Ast_iterator.open_declaration it od);
      Ast_iterator.structure_item =
        (fun it item ->
          (match item.pstr_desc with
          (* [@@@lint.allow ...]: file-wide suppression. *)
          | Pstr_attribute attr -> handle_attr ~from_cnum:0 ~to_cnum:max_int attr
          | _ -> ());
          default.Ast_iterator.structure_item it item);
    }
  in
  iter.Ast_iterator.structure iter str;
  (* P1 runs on a dedicated top-level scan, not the iterator: only
     structure-level bindings (including those inside top-level modules)
     are global state; a ref inside a function body is not. *)
  if ctx.global_state then begin
    let scan_vb vb =
      match mutable_shape vb.pvb_expr with
      | Some what ->
          add_viol vb.pvb_loc Rules.P1
            (Printf.sprintf
               "top-level %s is plain shared mutable state (not Atomic, \
                Domain.DLS or Mutex)"
               what)
      | None -> ()
    in
    let rec scan_items items =
      List.iter
        (fun item ->
          match item.pstr_desc with
          | Pstr_value (_, vbs) -> List.iter scan_vb vbs
          | Pstr_module mb -> scan_mod mb
          | Pstr_recmodule mbs -> List.iter scan_mod mbs
          | Pstr_include
              { pincl_mod = { pmod_desc = Pmod_structure s; _ }; _ } ->
              scan_items s
          | _ -> ())
        items
    and scan_mod mb =
      match mb.pmb_expr.pmod_desc with
      | Pmod_structure s -> scan_items s
      | _ -> ()
    in
    scan_items str
  end;
  finish ~filename (List.rev !supps) !viols

let check_source ~ctx ~filename source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf filename;
  match Parse.implementation lexbuf with
  | str -> run_checks ~ctx ~filename str
  | exception e ->
      let msg =
        match e with
        | Syntaxerr.Error err ->
            let loc = Syntaxerr.location_of_error err in
            Printf.sprintf "syntax error at line %d"
              loc.Location.loc_start.Lexing.pos_lnum
        | e -> Printexc.to_string e
      in
      { path = filename; violations = []; suppressions = []; parse_error = Some msg }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_file ~ctx ?display path =
  let filename = Option.value display ~default:path in
  match read_file path with
  | source -> check_source ~ctx ~filename source
  | exception Sys_error msg ->
      { path = filename; violations = []; suppressions = []; parse_error = Some msg }

(* --- Tree scanning --------------------------------------------------------- *)

(* Root-relative .ml paths under [dirs], sorted, skipping _build and dot
   directories — the same file set for the CLI driver, the CI job and
   the lints-clean test. *)
let ml_files_under ~root ~dirs =
  let out = ref [] in
  let rec walk rel =
    let abs = Filename.concat root rel in
    if Sys.file_exists abs && Sys.is_directory abs then
      Array.iter
        (fun entry ->
          if entry <> "" && entry.[0] <> '.' && entry <> "_build" then begin
            let rel' = if rel = "" then entry else rel ^ "/" ^ entry in
            let abs' = Filename.concat root rel' in
            if Sys.is_directory abs' then walk rel'
            else if Filename.check_suffix entry ".ml" then out := rel' :: !out
          end)
        (Sys.readdir abs)
  in
  List.iter walk dirs;
  List.sort compare !out
