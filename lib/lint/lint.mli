(** Parsetree walker behind [ncg_lint].

    Purely syntactic: each source file is parsed with the host compiler's
    parser (compiler-libs) and checked against the {!Rules} catalogue, so
    the checker works on any tree state — even one that does not build —
    and needs no ppx or type information. Which rules apply where is
    decided by a path-based {!ctx} (lib/prng may use randomness, lib/obs
    may read clocks, ...). *)

type ctx = {
  prng_exempt : bool;  (** D1 off: the blessed randomness source *)
  clock_exempt : bool;  (** D2 off: the blessed clock *)
  fault_registry : bool;  (** F1 also watches bare [site] calls here *)
  global_state : bool;  (** P1 on: library code reachable from the executor *)
  known_sites : string list;  (** F1: the registered fault-site names *)
  known_probes : string list;  (** O1: the registered probe names *)
}

(** Zone assignment for a root-relative path: [lib/prng/*] is
    [prng_exempt], [lib/obs/*] is [clock_exempt], [lib/fault/*] is
    [fault_registry], anything under [lib/] has [global_state]. *)
val ctx_for_path :
  known_sites:string list -> known_probes:string list -> string -> ctx

type violation = {
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as the compiler reports *)
  rule : Rules.id;
  message : string;
}

type suppression = {
  sup_file : string;
  sup_line : int;
  sup_rule : Rules.id;
  sup_justification : string;
}

type file_report = {
  path : string;
  violations : violation list;  (** sorted by position; suppressed ones removed *)
  suppressions : suppression list;  (** every well-formed allow in the file *)
  parse_error : string option;  (** set iff the file failed to parse *)
}

(** Check in-memory source (fixture tests use this directly).
    [filename] is used for locations and the report only. *)
val check_source : ctx:ctx -> filename:string -> string -> file_report

(** Read and check one file. [display] overrides the reported path
    (the driver passes root-relative paths). A read failure is reported
    as [parse_error]. *)
val check_file : ctx:ctx -> ?display:string -> string -> file_report

(** Root-relative paths of every [.ml] under [dirs] (relative to
    [root]), sorted; skips [_build] and dot-directories. *)
val ml_files_under : root:string -> dirs:string list -> string list
