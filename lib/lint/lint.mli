(** Parsetree walker behind [ncg_lint] — the {e syntactic} pass.

    Purely syntactic: each source file is parsed with the host compiler's
    parser (compiler-libs) and checked against the {!Rules} catalogue, so
    the checker works on any tree state — even one that does not build —
    and needs no ppx or type information. Which rules apply where is
    decided by a path-based {!ctx} (lib/prng may use randomness, lib/obs
    may read clocks, ...).

    The price of staying syntactic is that aliases are invisible:
    [module H = Hashtbl], [include Hashtbl], [let f = Hashtbl.iter] and
    functor plumbing all smuggle a forbidden identifier past this pass.
    {!Typed_lint} closes that hole by resolving identifiers on the
    Typedtree; this module additionally hosts the suppression plumbing
    ({!scan_attr}, {!finish}) both passes share. *)

type ctx = {
  prng_exempt : bool;  (** D1 off: the blessed randomness source *)
  clock_exempt : bool;  (** D2 off: the blessed clock *)
  fault_registry : bool;  (** F1 also watches bare [site] calls here *)
  global_state : bool;  (** P1 on: library code reachable from the executor *)
  parallel_impl : bool;  (** P2 off: the fan-out machinery itself *)
  scratch_lender : bool;  (** S1 off: the module that owns the scratch *)
  schema_registry : bool;  (** R1 off: the one blessed literal site *)
  known_sites : string list;  (** F1: the registered fault-site names *)
  known_probes : string list;  (** O1: the registered probe names *)
  known_schemas : string list;  (** R1: the registered schema tags *)
}

(** Zone assignment for a root-relative path: [lib/prng/*] is
    [prng_exempt], [lib/obs/*] is [clock_exempt], [lib/fault/*] is
    [fault_registry], anything under [lib/] has [global_state];
    [lib/util/parallel.ml] and [lib/fault/executor.ml] are
    [parallel_impl], [lib/graph/bfs.ml] and [lib/core/workspace.ml] are
    [scratch_lender], [lib/obs/schema.ml] is [schema_registry]. *)
val ctx_for_path :
  known_sites:string list ->
  known_probes:string list ->
  known_schemas:string list ->
  string ->
  ctx

type violation = {
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as the compiler reports *)
  rule : Rules.id;
  message : string;
}

type suppression = {
  sup_file : string;
  sup_line : int;
  sup_rule : Rules.id;
  sup_justification : string;
  sup_matched : int;
      (** raw violations this suppression absorbed in the pass that
          produced this report — the L2 staleness signal *)
}

type file_report = {
  path : string;
  violations : violation list;  (** sorted by position; suppressed ones removed *)
  suppressions : suppression list;  (** every well-formed allow in the file *)
  parse_error : string option;  (** set iff the file failed to parse *)
}

(** {2 Suppression plumbing shared by both passes} *)

type raw_suppression = {
  rs_rule : Rules.id;
  rs_from : int;  (** cnum range the suppression covers *)
  rs_to : int;
  rs_line : int;
  rs_justification : string;
}

(** Parse one attribute: [[\@lint.allow "RULE"... "why"]] registers a
    {!raw_suppression} per named rule over [[from_cnum, to_cnum]];
    [[\@lint.domain_local "why"]] registers a P1 suppression; malformed
    annotations are reported as L1 through [add_viol]. Attribute
    payloads are Parsetree in both trees, so {!Typed_lint} reuses this
    verbatim. *)
val scan_attr :
  add_viol:(Location.t -> Rules.id -> string -> unit) ->
  add_supp:(raw_suppression -> unit) ->
  from_cnum:int ->
  to_cnum:int ->
  Parsetree.attribute ->
  unit

(** Apply suppressions to raw [(violation, cnum)] pairs: suppressed
    violations are dropped, survivors sorted by position, and every
    suppression's [sup_matched] counts the raw violations it absorbed. *)
val finish :
  filename:string ->
  raw_suppression list ->
  (violation * int) list ->
  file_report

(** True when a format string contains a bare [%f] conversion (not
    [%%f]) — the D4 trigger, shared with the typed pass. *)
val has_bare_percent_f : string -> bool

(** {2 Checking} *)

(** Check in-memory source (fixture tests use this directly).
    [filename] is used for locations and the report only. *)
val check_source : ctx:ctx -> filename:string -> string -> file_report

(** Read and check one file. [display] overrides the reported path
    (the driver passes root-relative paths). A read failure is reported
    as [parse_error]. *)
val check_file : ctx:ctx -> ?display:string -> string -> file_report

(** Root-relative paths of every [.ml] under [dirs] (relative to
    [root]), sorted; skips [_build] and dot-directories. *)
val ml_files_under : root:string -> dirs:string list -> string list
