(* The ncg_lint command line, as a library: the bin/ncg_lint.exe
   compilation unit is itself named Ncg_lint, which shadows this
   library's wrapper module, so the driver logic lives here (wrapped as
   Ncg_lint_cli) and the binary is a one-line trampoline. *)

open Cmdliner

let run root typed cmt_root json_out =
  let files =
    Ncg_lint.Lint.ml_files_under ~root
      ~dirs:[ "lib"; "bin"; "bench"; "test"; "examples" ]
  in
  if files = [] then begin
    Printf.eprintf "ncg_lint: no .ml files under %s/{lib,bin,bench,test,examples}\n"
      root;
    exit 2
  end;
  (* Linking ncg_fault populated the fault-site registry at module-init
     time, so the live registry is the ground truth for F1 — a site
     renamed in inject.ml without updating callers fails the lint. *)
  let known_sites = Ncg_fault.Inject.sites () in
  (* Same trick for O1: linking ncg_obs registered the built-in probes. *)
  let known_probes = Ncg_obs.Probe.names () in
  (* And for R1: the schema registry is a plain module, linked here. *)
  let known_schemas = Ncg_obs.Schema.all in
  let ctx_of rel =
    Ncg_lint.Lint.ctx_for_path ~known_sites ~known_probes ~known_schemas rel
  in
  let syntactic =
    List.map
      (fun rel ->
        Ncg_lint.Lint.check_file ~ctx:(ctx_of rel) ~display:rel
          (Filename.concat root rel))
      files
  in
  let typed_reports =
    if typed then
      Some
        (Ncg_lint.Typed_lint.check_tree ~ctx_of ~root
           ~cmt_root:(Filename.concat root cmt_root)
           files)
    else None
  in
  let merged =
    Ncg_lint.Report.merge ~root ~syntactic ?typed:typed_reports ()
  in
  print_string (Ncg_lint.Report.to_human merged);
  (match json_out with
  | Some path -> Ncg_obs.Json.to_file path (Ncg_lint.Report.to_json merged)
  | None -> ());
  if not (Ncg_lint.Report.clean merged) then exit 1

let root =
  Arg.(
    value & opt string "."
    & info [ "root" ] ~docv:"DIR" ~doc:"Repository root to scan.")

let typed =
  Arg.(
    value & flag
    & info [ "typed" ]
        ~doc:
          "Also run the typed (alias-aware) pass over the .cmt files and \
           merge both passes' findings. Requires a prior $(b,dune build \
           \\@check); a file with no up-to-date .cmt is reported as a parse \
           error. Enables S1/P2/R1 and stale-suppression (L2) detection.")

let cmt_root =
  Arg.(
    value
    & opt string "_build/default"
    & info [ "cmt-root" ] ~docv:"DIR"
        ~doc:
          "Directory (relative to $(b,--root)) searched recursively for .cmt \
           files when $(b,--typed) is given.")

let json_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Also write the ncg.lint.report/2 JSON document here.")

let cmd =
  let doc = "check the determinism/domain-safety/atomicity lint rules" in
  Cmd.v (Cmd.info "ncg_lint" ~doc) Term.(const run $ root $ typed $ cmt_root $ json_out)

let main () = exit (Cmd.eval cmd)
