(* The ncg_lint command line, as a library: the bin/ncg_lint.exe
   compilation unit is itself named Ncg_lint, which shadows this
   library's wrapper module, so the driver logic lives here (wrapped as
   Ncg_lint_cli) and the binary is a one-line trampoline. *)

open Cmdliner

let run root json_out =
  let files =
    Ncg_lint.Lint.ml_files_under ~root
      ~dirs:[ "lib"; "bin"; "bench"; "test"; "examples" ]
  in
  if files = [] then begin
    Printf.eprintf "ncg_lint: no .ml files under %s/{lib,bin,bench,test,examples}\n"
      root;
    exit 2
  end;
  (* Linking ncg_fault populated the fault-site registry at module-init
     time, so the live registry is the ground truth for F1 — a site
     renamed in inject.ml without updating callers fails the lint. *)
  let known_sites = Ncg_fault.Inject.sites () in
  (* Same trick for O1: linking ncg_obs registered the built-in probes. *)
  let known_probes = Ncg_obs.Probe.names () in
  let reports =
    List.map
      (fun rel ->
        let ctx = Ncg_lint.Lint.ctx_for_path ~known_sites ~known_probes rel in
        Ncg_lint.Lint.check_file ~ctx ~display:rel (Filename.concat root rel))
      files
  in
  print_string (Ncg_lint.Report.to_human reports);
  (match json_out with
  | Some path -> Ncg_obs.Json.to_file path (Ncg_lint.Report.to_json ~root reports)
  | None -> ());
  if not (Ncg_lint.Report.clean reports) then exit 1

let root =
  Arg.(
    value & opt string "."
    & info [ "root" ] ~docv:"DIR" ~doc:"Repository root to scan.")

let json_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Also write the ncg.lint.report/1 JSON document here.")

let cmd =
  let doc = "check the determinism/domain-safety/atomicity lint rules" in
  Cmd.v (Cmd.info "ncg_lint" ~doc) Term.(const run $ root $ json_out)

let main () = exit (Cmd.eval cmd)
