(** Merging and rendering of lint results: the [ncg.lint.report/2] JSON
    document and its human-readable rendering (see docs/LINTING.md).

    A report/2 run merges one or two passes over the same file list.
    {!merge} dedupes violations on (file, line, col, rule) with per-pass
    provenance, folds each suppression's per-pass absorption counts
    together, and judges L2 staleness when the typed pass ran. *)

(** ["ncg.lint.report/2"] (= [Ncg_obs.Schema.lint_report]). *)
val schema : string

(** ["syntactic"] — the {!Lint} pass's name in merged reports. *)
val syntactic_pass : string

(** ["merge"] — the provenance of synthesized L2 violations. *)
val merge_pass : string

type merged_violation = {
  mv_file : string;
  mv_line : int;
  mv_col : int;
  mv_rule : Rules.id;
  mv_message : string;
  mv_passes : string list;  (** which passes found it, in run order *)
}

type merged_suppression = {
  ms_file : string;
  ms_line : int;
  ms_rule : Rules.id;
  ms_justification : string;
  ms_matched : (string * int) list;
      (** per pass: raw violations this suppression absorbed *)
  ms_stale : bool;  (** true iff judged stale (typed pass ran, zero total) *)
}

type merged = {
  m_root : string;
  m_passes : string list;
  m_files_checked : int;
  m_violations : merged_violation list;
      (** sorted by position; includes synthesized L2 entries *)
  m_suppressions : merged_suppression list;  (** sorted by position *)
  m_parse_errors : (string * string * string) list;
      (** (pass, file, message) *)
}

(** Merge one or two passes' per-file reports. L2 staleness is judged
    only when [typed] is given (only the typed pass checks the full rule
    catalogue, so only then does "nothing matched" mean the excused code
    is gone), and never for files with a parse error in either pass.
    Each stale suppression is also synthesized as an L2 violation with
    provenance [merge_pass]. *)
val merge :
  root:string ->
  syntactic:Lint.file_report list ->
  ?typed:Lint.file_report list ->
  unit ->
  merged

(** The suppressions judged stale, in report order. *)
val stale_suppressions : merged -> merged_suppression list

(** No violations (including synthesized L2) and no parse errors. *)
val clean : merged -> bool

(** The full [ncg.lint.report/2] document. *)
val to_json : merged -> Ncg_obs.Json.t

(** Parse errors, then one entry per violation
    ([file:line:col: [RULE] message (passes)] plus a hint line), then a
    trailing summary line. *)
val to_human : merged -> string
