(** Rendering of lint results: human-readable text and the
    [ncg.lint.report/1] JSON document (see docs/LINTING.md for the
    schema). *)

(** ["ncg.lint.report/1"] *)
val schema : string

val violation_count : Lint.file_report list -> int
val suppression_count : Lint.file_report list -> int

(** [(path, message)] for every file that failed to parse. *)
val parse_errors : Lint.file_report list -> (string * string) list

(** No violations and no parse errors. *)
val clean : Lint.file_report list -> bool

(** The full [ncg.lint.report/1] document. [root] is recorded verbatim. *)
val to_json : root:string -> Lint.file_report list -> Ncg_obs.Json.t

(** One line per violation ([file:line:col: [RULE] message] plus a hint
    line), parse errors, and a trailing summary line. *)
val to_human : Lint.file_report list -> string
