(** Typedtree walker behind [ncg_lint --typed] — the {e typed} pass.

    Where {!Lint} matches spellings, this pass loads the compiler's
    [.cmt] output (dune's default [-bin-annot]) and resolves every
    identifier to its {e defining} compilation unit through the
    [Shape.Uid.t] carried on [Texp_ident] — so [module H = Hashtbl],
    [include Hashtbl], [let f = Hashtbl.iter] and functor arguments all
    fire the same rules as the idiomatic spelling. It additionally
    checks the three semantic-only rules: S1 (scratch-view escape), P2
    (cross-domain mutable capture) and R1 (schema-literal registry).

    The price is needing a build: a file with no up-to-date [.cmt] is
    reported as a [parse_error], never silently skipped. Reports use the
    same {!Lint.file_report} shape as the syntactic pass; {!Report.merge}
    combines the two with per-pass provenance. *)

(** ["typed"] — this pass's name in merged reports. *)
val pass_name : string

(** Check one already-typed structure (the shared core of the cmt and
    in-process entry points). *)
val check_structure :
  ctx:Lint.ctx -> filename:string -> Typedtree.structure -> Lint.file_report

(** Map root-relative source path → [.cmt] path by reading each cmt's
    recorded sourcefile under [cmt_root] (e.g. [_build/default]).
    Sorted traversal, so duplicates resolve deterministically. *)
val index_cmts : cmt_root:string -> (string, string) Hashtbl.t

(** Check the typedtree stored in [cmt_path]. Reports a [parse_error]
    when the cmt is unreadable, carries no implementation, or records a
    source digest that no longer matches [source_path] (stale build).
    [display] is the reported path. *)
val check_cmt :
  ctx:Lint.ctx ->
  display:string ->
  source_path:string ->
  string ->
  Lint.file_report

(** Check every root-relative file in [files], resolving cmts under
    [cmt_root]; a file with no cmt yields a [parse_error] report. *)
val check_tree :
  ctx_of:(string -> Lint.ctx) ->
  root:string ->
  cmt_root:string ->
  string list ->
  Lint.file_report list

(** Type [source] in-process (fixture tests): parse, then run the host
    compiler's typechecker with [include_dirs] prepended to the load
    path, and check the resulting typedtree. Typing failures are
    reported as [parse_error]. Mutates global compiler state
    (Clflags/Load_path/Env), so not reentrant — fine for tests. *)
val check_source_typed :
  ctx:Lint.ctx ->
  filename:string ->
  ?include_dirs:string list ->
  string ->
  Lint.file_report
