(* Rendering and merging of lint results.

   Since report/2 a run may combine two passes (syntactic + typed) over
   the same file list. [merge] is the single entry point: it dedupes
   violations on (file, line, col, rule) keeping per-pass provenance,
   folds the two passes' views of each suppression together, and — when
   the typed pass ran — judges L2 staleness: a suppression that absorbed
   zero raw violations under every pass that checked its rule is dead
   weight, reported both in [stale_suppressions] and as a synthesized L2
   violation (pass "merge"). Single-pass runs are the degenerate merge:
   L2 is never judged without the typed pass, because only it checks the
   full rule catalogue. *)

let schema = Ncg_obs.Schema.lint_report

module J = Ncg_obs.Json

let syntactic_pass = "syntactic"
let merge_pass = "merge"

type merged_violation = {
  mv_file : string;
  mv_line : int;
  mv_col : int;
  mv_rule : Rules.id;
  mv_message : string;
  mv_passes : string list;
}

type merged_suppression = {
  ms_file : string;
  ms_line : int;
  ms_rule : Rules.id;
  ms_justification : string;
  ms_matched : (string * int) list;  (* pass name -> absorbed violations *)
  ms_stale : bool;
}

type merged = {
  m_root : string;
  m_passes : string list;
  m_files_checked : int;
  m_violations : merged_violation list;
  m_suppressions : merged_suppression list;
  m_parse_errors : (string * string * string) list;  (* pass, file, message *)
}

let merge ~root ~syntactic ?typed () =
  let passes =
    (syntactic_pass, syntactic)
    :: (match typed with Some t -> [ (Typed_lint.pass_name, t) ] | None -> [])
  in
  let files_checked =
    List.length
      (List.sort_uniq compare
         (List.concat_map
            (fun (_, rs) -> List.map (fun (r : Lint.file_report) -> r.path) rs)
            passes))
  in
  let parse_errors =
    List.concat_map
      (fun (name, rs) ->
        List.filter_map
          (fun (r : Lint.file_report) ->
            Option.map (fun msg -> (name, r.path, msg)) r.parse_error)
          rs)
      passes
  in
  let erroring_files =
    List.map (fun (_, file, _) -> file) parse_errors |> List.sort_uniq compare
  in
  (* Violations: dedupe on (file, line, col, rule); a direct Hashtbl.iter
     fires in both passes and becomes one entry with two provenances. *)
  let vtbl = Hashtbl.create 64 in
  let vorder = ref [] in
  List.iter
    (fun (name, rs) ->
      List.iter
        (fun (r : Lint.file_report) ->
          List.iter
            (fun (v : Lint.violation) ->
              let key = (v.file, v.line, v.col, Rules.to_string v.rule) in
              match Hashtbl.find_opt vtbl key with
              | Some mv ->
                  (* Same key twice within one pass (two captures at one
                     lambda, say) stays one entry with one provenance. *)
                  if not (List.mem name mv.mv_passes) then
                    Hashtbl.replace vtbl key
                      { mv with mv_passes = mv.mv_passes @ [ name ] }
              | None ->
                  vorder := key :: !vorder;
                  Hashtbl.replace vtbl key
                    {
                      mv_file = v.file;
                      mv_line = v.line;
                      mv_col = v.col;
                      mv_rule = v.rule;
                      mv_message = v.message;
                      mv_passes = [ name ];
                    })
            r.violations)
        rs)
    passes;
  (* Suppressions: fold the passes' views of each annotation together. *)
  let stbl = Hashtbl.create 64 in
  let sorder = ref [] in
  List.iter
    (fun (name, rs) ->
      List.iter
        (fun (r : Lint.file_report) ->
          List.iter
            (fun (s : Lint.suppression) ->
              let key = (s.sup_file, s.sup_line, Rules.to_string s.sup_rule) in
              match Hashtbl.find_opt stbl key with
              | Some ms ->
                  let ms_matched =
                    if List.mem_assoc name ms.ms_matched then
                      List.map
                        (fun (p, n) ->
                          if p = name then (p, n + s.sup_matched) else (p, n))
                        ms.ms_matched
                    else ms.ms_matched @ [ (name, s.sup_matched) ]
                  in
                  Hashtbl.replace stbl key { ms with ms_matched }
              | None ->
                  sorder := key :: !sorder;
                  Hashtbl.replace stbl key
                    {
                      ms_file = s.sup_file;
                      ms_line = s.sup_line;
                      ms_rule = s.sup_rule;
                      ms_justification = s.sup_justification;
                      ms_matched = [ (name, s.sup_matched) ];
                      ms_stale = false;
                    })
            r.suppressions)
        rs)
    passes;
  (* L2: judged only when the typed pass ran (it checks every rule, so
     "no pass matched" really means the excused code is gone), and never
     for files where a pass failed (absence of evidence there is just a
     broken build). *)
  let judge_stale = typed <> None in
  let suppressions =
    List.rev_map
      (fun key ->
        let ms = Hashtbl.find stbl key in
        let total = List.fold_left (fun n (_, m) -> n + m) 0 ms.ms_matched in
        let stale =
          judge_stale && total = 0 && not (List.mem ms.ms_file erroring_files)
        in
        { ms with ms_stale = stale })
      !sorder
  in
  let stale_violations =
    List.filter_map
      (fun ms ->
        if ms.ms_stale then
          Some
            {
              mv_file = ms.ms_file;
              mv_line = ms.ms_line;
              mv_col = 0;
              mv_rule = Rules.L2;
              mv_message =
                Printf.sprintf
                  "stale suppression: rule %s no longer fires under any pass \
                   at this site (justification: %s)"
                  (Rules.to_string ms.ms_rule) ms.ms_justification;
              mv_passes = [ merge_pass ];
            }
        else None)
      suppressions
  in
  let violations =
    List.rev_map (Hashtbl.find vtbl) !vorder @ stale_violations
    |> List.sort (fun a b ->
           compare
             (a.mv_file, a.mv_line, a.mv_col, Rules.to_string a.mv_rule)
             (b.mv_file, b.mv_line, b.mv_col, Rules.to_string b.mv_rule))
  in
  {
    m_root = root;
    m_passes = List.map fst passes;
    m_files_checked = files_checked;
    m_violations = violations;
    m_suppressions =
      List.sort
        (fun a b ->
          compare
            (a.ms_file, a.ms_line, Rules.to_string a.ms_rule)
            (b.ms_file, b.ms_line, Rules.to_string b.ms_rule))
        suppressions;
    m_parse_errors = parse_errors;
  }

let stale_suppressions m = List.filter (fun ms -> ms.ms_stale) m.m_suppressions
let clean m = m.m_violations = [] && m.m_parse_errors = []

let to_json (m : merged) =
  let violations =
    List.map
      (fun v ->
        J.Obj
          [
            ("file", J.String v.mv_file);
            ("line", J.Int v.mv_line);
            ("col", J.Int v.mv_col);
            ("rule", J.String (Rules.to_string v.mv_rule));
            ("title", J.String (Rules.title v.mv_rule));
            ("message", J.String v.mv_message);
            ("hint", J.String (Rules.hint v.mv_rule));
            ("passes", J.List (List.map (fun p -> J.String p) v.mv_passes));
          ])
      m.m_violations
  in
  let suppressions =
    List.map
      (fun s ->
        J.Obj
          [
            ("file", J.String s.ms_file);
            ("line", J.Int s.ms_line);
            ("rule", J.String (Rules.to_string s.ms_rule));
            ("justification", J.String s.ms_justification);
            ( "matched",
              J.Obj (List.map (fun (p, n) -> (p, J.Int n)) s.ms_matched) );
            ("stale", J.Bool s.ms_stale);
          ])
      m.m_suppressions
  in
  let stale =
    List.map
      (fun s ->
        J.Obj
          [
            ("file", J.String s.ms_file);
            ("line", J.Int s.ms_line);
            ("rule", J.String (Rules.to_string s.ms_rule));
            ("justification", J.String s.ms_justification);
          ])
      (stale_suppressions m)
  in
  let parse_errors =
    List.map
      (fun (pass, path, msg) ->
        J.Obj
          [
            ("pass", J.String pass);
            ("file", J.String path);
            ("message", J.String msg);
          ])
      m.m_parse_errors
  in
  let rules =
    List.map
      (fun id ->
        J.Obj
          [
            ("id", J.String (Rules.to_string id));
            ("title", J.String (Rules.title id));
            ("contract", J.String (Rules.contract id));
          ])
      Rules.all
  in
  J.Obj
    [
      ("schema", J.String schema);
      ("root", J.String m.m_root);
      ("passes", J.List (List.map (fun p -> J.String p) m.m_passes));
      ("files_checked", J.Int m.m_files_checked);
      ("violation_count", J.Int (List.length m.m_violations));
      ("suppression_count", J.Int (List.length m.m_suppressions));
      ("stale_count", J.Int (List.length (stale_suppressions m)));
      ("parse_error_count", J.Int (List.length m.m_parse_errors));
      ("rules", J.List rules);
      ("violations", J.List violations);
      ("suppressions", J.List suppressions);
      ("stale_suppressions", J.List stale);
      ("parse_errors", J.List parse_errors);
    ]

let to_human (m : merged) =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (pass, path, msg) ->
      Buffer.add_string buf
        (Printf.sprintf "%s: PARSE ERROR (%s pass): %s\n" path pass msg))
    m.m_parse_errors;
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "%s:%d:%d: [%s] %s (%s)\n    hint: %s\n" v.mv_file
           v.mv_line v.mv_col
           (Rules.to_string v.mv_rule)
           v.mv_message
           (String.concat "+" v.mv_passes)
           (Rules.hint v.mv_rule)))
    m.m_violations;
  let nv = List.length m.m_violations in
  let ns = List.length m.m_suppressions in
  let nstale = List.length (stale_suppressions m) in
  let np = List.length m.m_parse_errors in
  Buffer.add_string buf
    (Printf.sprintf
       "%d file%s checked (%s): %d violation%s, %d suppression%s (%d stale), \
        %d parse error%s\n"
       m.m_files_checked
       (if m.m_files_checked = 1 then "" else "s")
       (String.concat "+" m.m_passes)
       nv
       (if nv = 1 then "" else "s")
       ns
       (if ns = 1 then "" else "s")
       nstale np
       (if np = 1 then "" else "s"));
  Buffer.contents buf
