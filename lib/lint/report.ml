let schema = "ncg.lint.report/1"

module J = Ncg_obs.Json

let violation_count reports =
  List.fold_left (fun n (r : Lint.file_report) -> n + List.length r.violations) 0 reports

let suppression_count reports =
  List.fold_left
    (fun n (r : Lint.file_report) -> n + List.length r.suppressions)
    0 reports

let parse_errors reports =
  List.filter_map
    (fun (r : Lint.file_report) ->
      Option.map (fun msg -> (r.path, msg)) r.parse_error)
    reports

let clean reports = violation_count reports = 0 && parse_errors reports = []

let to_json ~root reports =
  let violations =
    List.concat_map
      (fun (r : Lint.file_report) ->
        List.map
          (fun (v : Lint.violation) ->
            J.Obj
              [
                ("file", J.String v.file);
                ("line", J.Int v.line);
                ("col", J.Int v.col);
                ("rule", J.String (Rules.to_string v.rule));
                ("title", J.String (Rules.title v.rule));
                ("message", J.String v.message);
                ("hint", J.String (Rules.hint v.rule));
              ])
          r.violations)
      reports
  in
  let suppressions =
    List.concat_map
      (fun (r : Lint.file_report) ->
        List.map
          (fun (s : Lint.suppression) ->
            J.Obj
              [
                ("file", J.String s.sup_file);
                ("line", J.Int s.sup_line);
                ("rule", J.String (Rules.to_string s.sup_rule));
                ("justification", J.String s.sup_justification);
              ])
          r.suppressions)
      reports
  in
  let parse_errors =
    List.map
      (fun (path, msg) ->
        J.Obj [ ("file", J.String path); ("message", J.String msg) ])
      (parse_errors reports)
  in
  let rules =
    List.map
      (fun id ->
        J.Obj
          [
            ("id", J.String (Rules.to_string id));
            ("title", J.String (Rules.title id));
            ("contract", J.String (Rules.contract id));
          ])
      Rules.all
  in
  J.Obj
    [
      ("schema", J.String schema);
      ("root", J.String root);
      ("files_checked", J.Int (List.length reports));
      ("violation_count", J.Int (violation_count reports));
      ("suppression_count", J.Int (suppression_count reports));
      ("parse_error_count", J.Int (List.length parse_errors));
      ("rules", J.List rules);
      ("violations", J.List violations);
      ("suppressions", J.List suppressions);
      ("parse_errors", J.List parse_errors);
    ]

let to_human reports =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (r : Lint.file_report) ->
      (match r.parse_error with
      | Some msg -> Buffer.add_string buf (Printf.sprintf "%s: PARSE ERROR: %s\n" r.path msg)
      | None -> ());
      List.iter
        (fun (v : Lint.violation) ->
          Buffer.add_string buf
            (Printf.sprintf "%s:%d:%d: [%s] %s\n    hint: %s\n" v.file v.line v.col
               (Rules.to_string v.rule) v.message
               (Rules.hint v.rule)))
        r.violations)
    reports;
  let nv = violation_count reports in
  let ns = suppression_count reports in
  let np = List.length (parse_errors reports) in
  Buffer.add_string buf
    (Printf.sprintf "%d file%s checked: %d violation%s, %d suppression%s, %d parse error%s\n"
       (List.length reports)
       (if List.length reports = 1 then "" else "s")
       nv
       (if nv = 1 then "" else "s")
       ns
       (if ns = 1 then "" else "s")
       np
       (if np = 1 then "" else "s"));
  Buffer.contents buf
