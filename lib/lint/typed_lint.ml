(* Typedtree-level, alias-aware lint pass.

   The syntactic pass (Lint) matches spellings, so [module H = Hashtbl],
   [include Hashtbl], [let f = Hashtbl.iter] and functor plumbing all
   smuggle forbidden identifiers past it. This pass works on the
   compiler's own output instead: dune's default [-bin-annot] leaves a
   .cmt per module under _build, whose Typedtree carries a resolved
   [Types.value_description] on every [Texp_ident] — and its
   [val_uid : Shape.Uid.t] names the *defining* compilation unit, no
   matter how many aliases, includes, first-class rebindings or functor
   arguments the reference travelled through. Matching on
   (defining unit, value name) therefore catches every route to
   [Hashtbl.iter] with no environment rehydration at all.

   On top of the resolved tree live the three rules only semantics can
   express: S1 (borrowed scratch views must not escape), P2 (closures
   crossing a domain boundary must not capture plain mutable state) and
   R1 (ncg.*/N schema literals live only in the registry). Suppression
   parsing is shared with the syntactic pass — attribute payloads are
   Parsetree in both trees. *)

open Typedtree

(* --- Identifier resolution ------------------------------------------------- *)

let uid_comp_unit (uid : Shape.Uid.t) =
  match uid with
  | Shape.Uid.Compilation_unit s -> Some s
  | Shape.Uid.Item { comp_unit; _ } -> Some comp_unit
  | Shape.Uid.Internal | Shape.Uid.Predef _ -> None

(* (defining compilation unit, value name, spelling-as-written). *)
let resolve e =
  match e.exp_desc with
  | Texp_ident (path, _, vd) -> (
      match uid_comp_unit vd.Types.val_uid with
      | Some cu -> Some (cu, Path.last path, Path.name path)
      | None -> None)
  | _ -> None

(* "H.iter = Hashtbl.iter" when the spelling hides the origin. *)
let origin_display ~cu ~name ~spelled =
  let origin =
    if cu = "Stdlib" then name
    else
      let m =
        if String.length cu > 8 && String.sub cu 0 8 = "Stdlib__" then
          String.capitalize_ascii (String.sub cu 8 (String.length cu - 8))
        else cu
      in
      m ^ "." ^ name
  in
  if spelled = origin then spelled else spelled ^ " = " ^ origin

let rec path_parts = function
  | Path.Pident id -> [ Ident.name id ]
  | Path.Pdot (p, s) -> path_parts p @ [ s ]
  | Path.Papply (a, b) -> path_parts a @ path_parts b
  | Path.Pextra_ty (p, _) -> path_parts p

(* Is a captured value's type safe to share across domains, plainly
   mutable, or neither? Works without an Env, so type abbreviations are
   judged by their printed path — good enough for the concrete stdlib
   containers P2 polices. *)
let rec type_mutability ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, args, _) ->
      let parts = path_parts p in
      let has n = List.mem n parts in
      let last = Path.last p in
      if has "Atomic" || has "Mutex" || has "Condition" || has "Semaphore" || has "DLS"
      then `Safe
      else if last = "ref" then `Mut "a ref cell"
      else if last = "array" then
        match args with
        | [ elt ] when type_mutability elt = `Safe -> `Safe
        | _ -> `Mut "an array"
      else if last = "bytes" then `Mut "a bytes buffer"
      else if last = "t" && has "Hashtbl" then `Mut "a hash table"
      else if last = "t" && has "Buffer" then `Mut "a buffer"
      else if last = "t" && has "Queue" then `Mut "a queue"
      else if last = "t" && has "Stack" then `Mut "a stack"
      else `Neutral
  | _ -> `Neutral

(* The P1 constructor shapes, uid-resolved (so [module A = Array] and
   friends cannot hide them). [local] resolves idents bound to mutable
   state earlier in the file, so initializer blocks
   ([let t = Bytes.create n in ...fill...; t]) are judged by what they
   ultimately evaluate to. *)
let rec typed_mutable_shape ~local e =
  match e.exp_desc with
  | Texp_let (_, _, body) -> typed_mutable_shape ~local body
  | Texp_sequence (_, body) -> typed_mutable_shape ~local body
  | Texp_ident (Path.Pident id, _, _) -> local id
  | Texp_apply (f, _) -> (
      match resolve f with
      | Some ("Stdlib", "ref", _) -> Some "ref cell"
      | Some ("Stdlib__Array", ("make" | "init" | "create_float" | "make_matrix"), _)
        ->
          Some "array"
      | Some ("Stdlib__Bytes", ("create" | "make"), _) -> Some "bytes buffer"
      | Some ("Stdlib__Hashtbl", "create", _) -> Some "hash table"
      | Some ("Stdlib__Buffer", "create", _) -> Some "buffer"
      | Some ("Stdlib__Queue", "create", _) -> Some "queue"
      | Some ("Stdlib__Stack", "create", _) -> Some "stack"
      | _ -> None)
  | _ -> None

let pat_bound_idents : type k. k general_pattern -> Ident.t list =
 fun p ->
  match p.pat_desc with
  | Tpat_var (id, _) -> [ id ]
  | Tpat_alias (_, id, _) -> [ id ]
  | _ -> []

(* Ident uses in [e0] not bound by a pattern inside [e0] — the free
   variables a closure captures from its enclosing scope. *)
let free_ident_uses e0 =
  let bound = ref [] in
  let uses = ref [] in
  let default = Tast_iterator.default_iterator in
  let it =
    {
      default with
      Tast_iterator.pat =
        (fun it p ->
          List.iter (fun id -> bound := id :: !bound) (pat_bound_idents p);
          default.Tast_iterator.pat it p);
      expr =
        (fun it e ->
          (match e.exp_desc with
          | Texp_ident (Path.Pident id, _, _) -> uses := (id, e) :: !uses
          | _ -> ());
          default.Tast_iterator.expr it e);
    }
  in
  it.Tast_iterator.expr it e0;
  List.filter
    (fun (id, _) -> not (List.exists (Ident.same id) !bound))
    (List.rev !uses)

(* --- The walker ------------------------------------------------------------ *)

let pass_name = "typed"

let printf_unit = function
  | "Stdlib__Printf" | "Stdlib__Format" -> true
  | _ -> false

(* Fan-out points whose function argument runs on another domain. *)
let fanout_point cu name =
  match (cu, name) with
  | "Ncg_util__Parallel", ("map" | "init" | "chunked_map") -> true
  | "Ncg_fault__Executor", "map" -> true
  | "Stdlib__Domain", "spawn" -> true
  | _ -> false

(* Mutable stores: a borrowed view reaching any argument of these
   outlives the expression (or, for Array.set on the view itself,
   mutates a buffer the caller does not own). Copy-out helpers
   (Array.copy / Array.sub / Array.blit) deliberately do not appear —
   passing a view to an ordinary function is the blessed consumption
   idiom. *)
let s1_sink cu name =
  match (cu, name) with
  | "Stdlib", (":=" | "ref") -> true
  | "Stdlib__Atomic", ("make" | "set" | "exchange") -> true
  | "Stdlib__Hashtbl", ("add" | "replace") -> true
  | "Stdlib__Queue", ("add" | "push") -> true
  | "Stdlib__Stack", "push" -> true
  | "Stdlib__Array", ("set" | "unsafe_set" | "fill") -> true
  | _ -> false

let run_checks ~(ctx : Lint.ctx) ~filename (str : structure) =
  let viols = ref [] in
  let supps = ref [] in
  let add_viol loc rule message =
    let p = loc.Location.loc_start in
    viols :=
      ( {
          Lint.file = filename;
          line = p.Lexing.pos_lnum;
          col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
          rule;
          message;
        },
        p.Lexing.pos_cnum )
      :: !viols
  in
  let add_supp s = supps := s :: !supps in
  let handle_attrs loc attrs =
    let from_cnum = loc.Location.loc_start.Lexing.pos_cnum in
    let to_cnum = loc.Location.loc_end.Lexing.pos_cnum in
    List.iter (Lint.scan_attr ~add_viol ~add_supp ~from_cnum ~to_cnum) attrs
  in
  (* S1 taint: idents currently bound to a borrowed scratch view. Idents
     are globally unique, so the list only ever grows. *)
  let tainted = ref [] in
  let is_tainted id = List.exists (Ident.same id) !tainted in
  (* P2 side table: idents bound to plainly-mutable state anywhere in
     the file (the type check below misses abbreviations; this catches
     the common [let acc = ref [] in ... Parallel.map ...] shape). *)
  let local_shapes = ref [] in
  let local_shape id =
    List.find_map
      (fun (i, w) -> if Ident.same i id then Some w else None)
      !local_shapes
  in
  (* Two strengths of borrow. A [`View] (Bfs.dist_array / visit_order
     result) is invalidated by the very next run, so even returning it
     upward is a bug. A [`Pool] (a Workspace field) is a scratch handle:
     projecting it and passing it along within the run is the normal
     plumbing idiom, so pools are only flagged when they reach a store,
     a data structure, or a module-level binding. *)
  let borrow_origin e =
    match e.exp_desc with
    | Texp_apply (f, _) -> (
        match resolve f with
        | Some ("Ncg_graph__Bfs", (("dist_array" | "visit_order") as n), spelled)
          ->
            Some (`View, Printf.sprintf "the view %s (origin Bfs.%s)" spelled n)
        | _ -> None)
    | Texp_field (_, _, lbl) -> (
        match uid_comp_unit lbl.Types.lbl_uid with
        | Some "Ncg__Workspace" ->
            Some
              (`Pool, Printf.sprintf "the workspace pool .%s" lbl.Types.lbl_name)
        | _ -> None)
    | Texp_ident (Path.Pident id, _, _) when is_tainted id ->
        Some (`View, Printf.sprintf "the borrowed view %s" (Ident.name id))
    | _ -> None
  in
  let closure_capture e =
    match e.exp_desc with
    | Texp_function _ -> (
        match
          List.find_opt (fun (id, _) -> is_tainted id) (free_ident_uses e)
        with
        | Some (id, _) ->
            Some
              (Printf.sprintf "a closure capturing the borrowed view %s"
                 (Ident.name id))
        | None -> None)
    | _ -> None
  in
  (* Any borrow (or taint-capturing closure) reaching a store/pack. *)
  let leak_reason e =
    match borrow_origin e with
    | Some (_, what) -> Some what
    | None -> closure_capture e
  in
  (* Only views (and taint-capturing closures) are unsafe to return. *)
  let view_leak_reason e =
    match borrow_origin e with
    | Some (`View, what) -> Some what
    | Some (`Pool, _) -> None
    | None -> closure_capture e
  in
  let s1 loc what how =
    add_viol loc Rules.S1
      (Printf.sprintf
         "%s %s; the scratch buffer behind it is overwritten by the next run"
         what how)
  in
  let s1_on = not ctx.Lint.scratch_lender in
  (* The result positions of an expression: where a function body's
     value comes from. A borrow (or taint) there escapes upward. *)
  let rec result_leaks e =
    match view_leak_reason e with
    | Some what -> Some (e.exp_loc, what)
    | None -> (
        match e.exp_desc with
        | Texp_let (_, _, body) -> result_leaks body
        | Texp_sequence (_, body) -> result_leaks body
        | Texp_ifthenelse (_, t, f) -> (
            match result_leaks t with
            | Some r -> Some r
            | None -> Option.bind f result_leaks)
        | Texp_match (_, cases, _) ->
            List.find_map (fun c -> result_leaks c.c_rhs) cases
        | Texp_try (body, cases) -> (
            match result_leaks body with
            | Some r -> Some r
            | None -> List.find_map (fun c -> result_leaks c.c_rhs) cases)
        | _ -> None)
  in
  let check_leak how e =
    if s1_on then
      match leak_reason e with
      | Some what -> s1 e.exp_loc what how
      | None -> ()
  in
  let check_resolved loc (cu, name, spelled) =
    let d = origin_display ~cu ~name ~spelled in
    match (cu, name) with
    | "Stdlib__Random", _ when not ctx.Lint.prng_exempt ->
        add_viol loc Rules.D1 (d ^ ": stdlib randomness (process-global state)")
    | ("Unix" | "UnixLabels"), ("gettimeofday" | "time") | "Stdlib__Sys", "time"
      ->
        if not ctx.Lint.clock_exempt then
          add_viol loc Rules.D2
            (d ^ ": wall-clock read outside the Clock module")
    | "Stdlib", "string_of_float" | "Stdlib__Float", "to_string" ->
        add_viol loc Rules.D4
          (d
         ^ ": lossy float formatting (12 significant digits, no NaN round-trip)")
    | "Stdlib", ("open_out" | "open_out_bin" | "open_out_gen")
    | ( "Stdlib__Out_channel",
        ( "open_text" | "open_bin" | "open_gen" | "with_open_text"
        | "with_open_bin" | "with_open_gen" ) ) ->
        add_viol loc Rules.A1
          (d ^ ": bare output channel (a crash here leaves a torn artifact)")
    | ("Stdlib__Hashtbl" | "Stdlib__MoreLabels"), ("iter" | "fold") ->
        add_viol loc Rules.D3 (d ^ ": iteration order is hash-bucket order")
    | _ -> ()
  in
  let string_arg args =
    match args with
    | ( Asttypes.Nolabel,
        Some { exp_desc = Texp_constant (Asttypes.Const_string (s, _, _)); _ }
      )
      :: _ ->
        Some s
    | _ -> None
  in
  (* The typechecker elaborates a literal format string into a
     [CamlinternalFormatBasics.Format] construct; the original spelling
     rides along as its final argument. *)
  let format_literal e =
    match e.exp_desc with
    | Texp_constant (Asttypes.Const_string (s, _, _)) -> Some s
    | Texp_construct (_, { Types.cstr_name = "Format"; _ }, args) -> (
        match List.rev args with
        | { exp_desc = Texp_constant (Asttypes.Const_string (s, _, _)); _ }
          :: _ ->
            Some s
        | _ -> None)
    | _ -> None
  in
  let check_apply loc f args =
    match resolve f with
    | None -> ()
    | Some ((cu, name, spelled) as r) ->
        ignore r;
        (* D4: bare %f in a printf-family format string. *)
        if printf_unit cu then
          List.iter
            (fun (_, arg) ->
              match arg with
              | Some a -> (
                  match format_literal a with
                  | Some s when Lint.has_bare_percent_f s ->
                      add_viol a.exp_loc Rules.D4
                        "format string uses a bare %f conversion (6-digit \
                         truncation)"
                  | _ -> ())
              | None -> ())
            args;
        (* F1 / O1: registry-membership checks, alias-proof. *)
        (if cu = "Ncg_fault__Inject" && name = "site" then
           match string_arg args with
           | Some s when not (List.mem s ctx.Lint.known_sites) ->
               add_viol loc Rules.F1
                 (Printf.sprintf
                    "fault site %S is not in the registered site list" s)
           | _ -> ());
        (if cu = "Ncg_obs__Probe" && (name = "find" || name = "register") then
           match string_arg args with
           | Some s when not (List.mem s ctx.Lint.known_probes) ->
               add_viol loc Rules.O1
                 (Printf.sprintf
                    "probe name %S is not in the registered probe list" s)
           | _ -> ());
        (* S1: a borrowed view flowing into a mutable store. *)
        if s1_on && s1_sink cu name then
          List.iter
            (fun (_, arg) ->
              match arg with
              | Some a ->
                  check_leak
                    (Printf.sprintf "flows into the mutable store %s" spelled)
                    a
              | None -> ())
            args;
        (* P2: closure literals handed to a fan-out point must not
           capture plain mutable state from the enclosing scope. *)
        if fanout_point cu name && not ctx.Lint.parallel_impl then
          List.iter
            (fun (_, arg) ->
              match arg with
              | Some ({ exp_desc = Texp_function _; _ } as lam) ->
                  let seen = ref [] in
                  List.iter
                    (fun (id, (use : expression)) ->
                      if not (List.exists (Ident.same id) !seen) then begin
                        seen := id :: !seen;
                        let verdict =
                          match local_shape id with
                          | Some what ->
                              if type_mutability use.exp_type = `Safe then
                                `Neutral
                              else `Mut ("a " ^ what)
                          | None -> type_mutability use.exp_type
                        in
                        match verdict with
                        | `Mut what ->
                            add_viol lam.exp_loc Rules.P2
                              (Printf.sprintf
                                 "closure passed to %s captures %s, %s — \
                                  plain mutable state crossing a domain \
                                  boundary"
                                 spelled (Ident.name id) what)
                        | `Safe | `Neutral -> ()
                      end)
                    (free_ident_uses lam)
              | _ -> ())
            args
  in
  let default = Tast_iterator.default_iterator in
  let iter =
    {
      default with
      Tast_iterator.expr =
        (fun it e ->
          handle_attrs e.exp_loc e.exp_attributes;
          (match e.exp_desc with
          | Texp_ident _ -> (
              match resolve e with
              | Some r -> check_resolved e.exp_loc r
              | None -> ())
          | Texp_constant (Asttypes.Const_string (s, _, _))
            when (not ctx.Lint.schema_registry)
                 && Ncg_obs.Schema.is_schema_shaped s ->
              if List.mem s ctx.Lint.known_schemas then
                add_viol e.exp_loc Rules.R1
                  (Printf.sprintf
                     "schema literal %S bypasses the registry (reference the \
                      Ncg_obs.Schema value instead)"
                     s)
              else
                add_viol e.exp_loc Rules.R1
                  (Printf.sprintf
                     "schema literal %S is not a registered schema tag" s)
          | Texp_apply (f, args) -> check_apply e.exp_loc f args
          | Texp_tuple es -> List.iter (check_leak "is packed into a tuple") es
          (* Passing [~lbl:x] to an optional parameter elaborates to an
             invisible [Some x] sharing [x]'s location — that is argument
             passing, not packing, so it is exempt. *)
          | Texp_construct (_, { Types.cstr_name = "Some"; _ }, [ x ])
            when x.exp_loc = e.exp_loc ->
              ()
          | Texp_construct (_, _, es) ->
              List.iter (check_leak "is packed into a constructor") es
          | Texp_variant (_, Some x) -> check_leak "is packed into a variant" x
          | Texp_record { fields; _ } ->
              Array.iter
                (fun (_, def) ->
                  match def with
                  | Overridden (_, x) ->
                      check_leak "is stored in a record field" x
                  | Kept _ -> ())
                fields
          | Texp_array es ->
              List.iter (check_leak "is stored in an array literal") es
          | Texp_setfield (_, _, _, rhs) ->
              check_leak "is stored into a mutable field" rhs
          | Texp_function { cases; _ } ->
              if s1_on then
                List.iter
                  (fun c ->
                    match result_leaks c.c_rhs with
                    | Some (loc, what) ->
                        s1 loc what "is returned from a function"
                    | None -> ())
                  cases
          | _ -> ());
          default.Tast_iterator.expr it e);
      value_binding =
        (fun it vb ->
          handle_attrs vb.vb_loc vb.vb_attributes;
          (match pat_bound_idents vb.vb_pat with
          | [ id ] -> (
              match borrow_origin vb.vb_expr with
              | Some (`View, _) when s1_on -> tainted := id :: !tainted
              | _ -> ())
          | _ -> ());
          default.Tast_iterator.value_binding it vb;
          (* Shape registration is post-order, so an initializer block's
             inner bindings are known by the time its own binding is
             judged. *)
          match pat_bound_idents vb.vb_pat with
          | [ id ] -> (
              match typed_mutable_shape ~local:local_shape vb.vb_expr with
              | Some what -> local_shapes := (id, what) :: !local_shapes
              | None -> ())
          | _ -> ());
      structure_item =
        (fun it item ->
          (match item.str_desc with
          | Tstr_attribute attr ->
              List.iter
                (Lint.scan_attr ~add_viol ~add_supp ~from_cnum:0
                   ~to_cnum:max_int)
                [ attr ]
          | _ -> ());
          default.Tast_iterator.structure_item it item);
    }
  in
  iter.Tast_iterator.structure iter str;
  (* P1 and module-level S1 run on a dedicated top-level scan, mirroring
     the syntactic pass: only structure-level bindings are global state. *)
  let scan_vb vb =
    (if ctx.Lint.global_state then
       match typed_mutable_shape ~local:local_shape vb.vb_expr with
       | Some what ->
           add_viol vb.vb_loc Rules.P1
             (Printf.sprintf
                "top-level %s is plain shared mutable state (not Atomic, \
                 Domain.DLS or Mutex)"
                what)
       | None -> ());
    if s1_on then
      match leak_reason vb.vb_expr with
      | Some what ->
          s1 vb.vb_loc what "is bound at module level (outlives every run)"
      | None -> ()
  in
  let rec scan_items items =
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_value (_, vbs) -> List.iter scan_vb vbs
        | Tstr_module mb -> scan_mod mb
        | Tstr_recmodule mbs -> List.iter scan_mod mbs
        | Tstr_include { incl_mod = { mod_desc = Tmod_structure s; _ }; _ } ->
            scan_items s.str_items
        | _ -> ())
      items
  and scan_mod mb =
    match mb.mb_expr.mod_desc with
    | Tmod_structure s -> scan_items s.str_items
    | Tmod_constraint ({ mod_desc = Tmod_structure s; _ }, _, _, _) ->
        scan_items s.str_items
    | _ -> ()
  in
  scan_items str.str_items;
  Lint.finish ~filename (List.rev !supps) !viols

let check_structure ~ctx ~filename str = run_checks ~ctx ~filename str

(* --- cmt discovery and checking -------------------------------------------- *)

let error_report path msg =
  {
    Lint.path;
    violations = [];
    suppressions = [];
    parse_error = Some msg;
  }

(* Map root-relative source path -> .cmt path by reading each cmt's
   recorded sourcefile — no name-mangling heuristics. Entries are
   visited in sorted order so duplicate sources resolve
   deterministically; only the header fields are kept, so memory stays
   bounded at one cmt at a time. *)
let index_cmts ~cmt_root =
  let tbl = Hashtbl.create 256 in
  let rec walk dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> ()
    | entries ->
        Array.sort compare entries;
        Array.iter
          (fun ent ->
            let p = Filename.concat dir ent in
            if Sys.is_directory p then walk p
            else if Filename.check_suffix ent ".cmt" then
              match Cmt_format.read_cmt p with
              | exception _ -> ()
              | infos -> (
                  match infos.Cmt_format.cmt_sourcefile with
                  | Some src ->
                      let src =
                        if String.length src > 2 && String.sub src 0 2 = "./"
                        then String.sub src 2 (String.length src - 2)
                        else src
                      in
                      if not (Hashtbl.mem tbl src) then Hashtbl.add tbl src p
                  | None -> ()))
          entries
  in
  walk cmt_root;
  tbl

let check_cmt ~ctx ~display ~source_path cmt_path =
  match Cmt_format.read_cmt cmt_path with
  | exception e ->
      error_report display
        (Printf.sprintf "cannot read %s: %s" cmt_path (Printexc.to_string e))
  | infos -> (
      (* Staleness is judged by content, not mtime: dune's shared cache
         restores artifacts as hardlinks whose timestamps predate the
         source copy, so mtimes prove nothing. The cmt records a digest
         of the source it was compiled from. *)
      let stale =
        match infos.Cmt_format.cmt_source_digest with
        | Some d -> (
            match Digest.file source_path with
            | exception _ -> false
            | d' -> d <> d')
        | None -> false
      in
      if stale then
        error_report display
          "stale .cmt: the source has changed since the build (rerun `dune \
           build @check`)"
      else
        match infos.Cmt_format.cmt_annots with
        | Cmt_format.Implementation str -> run_checks ~ctx ~filename:display str
        | _ -> error_report display "cmt carries no implementation typedtree")

let check_tree ~ctx_of ~root ~cmt_root files =
  let idx = index_cmts ~cmt_root in
  List.map
    (fun rel ->
      match Hashtbl.find_opt idx rel with
      | Some cmt ->
          check_cmt ~ctx:(ctx_of rel) ~display:rel
            ~source_path:(Filename.concat root rel) cmt
      | None ->
          error_report rel "no .cmt found (run `dune build @check` first)")
    files

(* --- In-process typing (fixture tests) ------------------------------------- *)

let check_source_typed ~ctx ~filename ?(include_dirs = []) source =
  match
    let lexbuf = Lexing.from_string source in
    Location.init lexbuf filename;
    let past = Parse.implementation lexbuf in
    ignore (Warnings.parse_options false "-a");
    Clflags.include_dirs := include_dirs;
    Compmisc.init_path ~auto_include:Load_path.no_auto_include ();
    Env.reset_cache ();
    let env = Compmisc.initial_env () in
    let tstr, _, _, _, _ = Typemod.type_structure env past in
    tstr
  with
  | tstr -> run_checks ~ctx ~filename tstr
  | exception e ->
      let msg =
        match Location.error_of_exn e with
        | Some (`Ok err) -> Format.asprintf "%a" Location.print_report err
        | _ -> Printexc.to_string e
      in
      error_report filename msg
