module Json = Ncg_obs.Json
module Events = Ncg_obs.Events
module Metrics = Ncg_obs.Metrics
module Store = Ncg_store.Store
module Work_queue = Ncg_store.Work_queue
module Cache_key = Ncg_store.Cache_key
module Sweep_spec = Ncg.Sweep_spec
module Experiment = Ncg.Experiment

type config = {
  store_dir : string;
  max_retries : int;
  default_deadline_ms : int option;
  max_cells : int option;
  heartbeat_timeout_ms : int;
  quarantine_failures : int;
  quarantine_cooldown_ms : int;
}

type job_state = Running | Done | Expired | Cancelled

type job = {
  id : int;
  client : string;
  spec : Sweep_spec.t;
  cells : Experiment.cell array;
  keys : string array;  (** canonical key bytes, index-aligned with cells *)
  results : Experiment.cell_result option array;
  mutable quarantined : (int * string) list;  (** (cell index, error) *)
  mutable remaining : int;
  deadline_ns : int64 option;  (** absolute, monotonic clock *)
  mutable state : job_state;
}

type task = {
  task_id : int;
  spec : Sweep_spec.t;
  cell : Experiment.cell;
  attempts : int;
  revoked : bool Atomic.t;
}

type grant = Granted of task | Empty | Rejected of { state : string }

type leased = { l_key : Cache_key.t; l_spec : Sweep_spec.t;
                l_cell : Experiment.cell; l_worker : string;
                l_revoked : bool Atomic.t }

(* Client name credited with work recovered from a previous daemon's
   queue log: its submitting client died with that process. *)
let recovered_client = "(recovered)"

type t = {
  config : config;
  store : Store.t;
  queue : Work_queue.t;
  pool : Worker_pool.t;
  mutex : Mutex.t;
  jobs : (int, job) Hashtbl.t;
  mutable next_job : int;
  (* Cross-client dedup registry. [waiters]: canonical key -> (job id,
     cell index) list still expecting that cell. [inflight]: canonical
     key -> queue entry id, present from enqueue to terminal state.
     [leased_tasks]: queue id -> decoded task while leased. *)
  waiters : (string, (int * int) list ref) Hashtbl.t;
  inflight : (string, int) Hashtbl.t;
  leased_tasks : (int, leased) Hashtbl.t;
  (* Fairness: queue entry id -> enqueuing client, and the round-robin
     ring of client names (first-enqueue order). *)
  entry_client : (int, string) Hashtbl.t;
  mutable ring : string list;
  (* Lease revocations not yet delivered to a remote worker; drained by
     its next heartbeat reply. *)
  revoked_wire : (string, int list ref) Hashtbl.t;
  (* Plain counters for the stats verb — [Metrics] counters only record
     under a collector, a daemon wants always-on numbers. *)
  mutable n_requests : int;
  mutable n_cache_hits : int;
  mutable n_dedup_hits : int;
  mutable n_completions : int;
  mutable n_requeues : int;
  mutable n_quarantines : int;
  mutable n_heartbeats : int;
  mutable n_lease_expiries : int;
  mutable n_worker_quarantines : int;
  mutable n_cancels : int;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* --- Task payloads ------------------------------------------------------- *)

let task_schema = Ncg_obs.Schema.service_task

let task_payload spec (cell : Experiment.cell) =
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.String task_schema);
         ("spec", Sweep_spec.to_json spec);
         ("alpha", Json.Float cell.Experiment.alpha);
         ("k", Json.Int cell.Experiment.k);
       ])

let task_of_payload payload =
  let ( let* ) = Result.bind in
  let* j = Json.of_string payload in
  let member name =
    match j with Json.Obj f -> List.assoc_opt name f | _ -> None
  in
  let* () =
    match member "schema" with
    | Some (Json.String s) when String.equal s task_schema -> Ok ()
    | _ -> Error "task: bad schema"
  in
  let* spec =
    match member "spec" with
    | Some s -> Sweep_spec.of_json s
    | None -> Error "task: missing spec"
  in
  let* alpha =
    match member "alpha" with
    | Some (Json.Float a) -> Ok a
    | Some (Json.Int a) -> Ok (float_of_int a)
    | _ -> Error "task: missing alpha"
  in
  let* k =
    match member "k" with
    | Some (Json.Int k) -> Ok k
    | _ -> Error "task: missing k"
  in
  Ok (spec, { Experiment.alpha; k })

(* --- Worker pool events -------------------------------------------------- *)

let note_transition t name tr =
  match (tr : Worker_pool.transition) with
  | Worker_pool.Noted -> ()
  | Worker_pool.Registered ->
      if Events.active () then
        Events.emit "service.worker_registered"
          [ ("worker", Json.String name) ]
  | Worker_pool.Readmitted ->
      if Events.active () then
        Events.emit ~severity:Events.Warn "service.worker_readmitted"
          [ ("worker", Json.String name) ]
  | Worker_pool.Recovered ->
      if Events.active () then
        Events.emit "service.worker_recovered" [ ("worker", Json.String name) ]
  | Worker_pool.Suspected ->
      if Events.active () then
        Events.emit ~severity:Events.Warn "service.worker_suspect"
          [ ("worker", Json.String name) ]
  | Worker_pool.Sick ->
      t.n_worker_quarantines <- t.n_worker_quarantines + 1;
      Metrics.(incr service_worker_quarantines);
      if Events.active () then
        Events.emit ~severity:Events.Error "service.worker_quarantined"
          [ ("worker", Json.String name) ]

(* --- Lifecycle ----------------------------------------------------------- *)

let create config =
  let store = Store.open_dir config.store_dir in
  let queue_path = Filename.concat config.store_dir "queue.log" in
  let queue, recovery = Work_queue.openfile queue_path in
  let t =
    {
      config;
      store;
      queue;
      pool =
        Worker_pool.create
          {
            Worker_pool.heartbeat_timeout_ms = config.heartbeat_timeout_ms;
            quarantine_failures = config.quarantine_failures;
            quarantine_cooldown_ms = config.quarantine_cooldown_ms;
          };
      mutex = Mutex.create ();
      jobs = Hashtbl.create 16;
      next_job = 0;
      waiters = Hashtbl.create 64;
      inflight = Hashtbl.create 64;
      leased_tasks = Hashtbl.create 16;
      entry_client = Hashtbl.create 64;
      ring = [];
      revoked_wire = Hashtbl.create 8;
      n_requests = 0;
      n_cache_hits = 0;
      n_dedup_hits = 0;
      n_completions = 0;
      n_requeues = 0;
      n_quarantines = 0;
      n_heartbeats = 0;
      n_lease_expiries = 0;
      n_worker_quarantines = 0;
      n_cancels = 0;
    }
  in
  (* Re-adopt work recovered from the log: entries of a previous daemon
     whose clients are gone. Completed results will land in the store
     (warming it for resubmissions); entries whose payload no longer
     decodes (schema drift) are dropped. *)
  List.iter
    (fun (e : Work_queue.entry) ->
      match task_of_payload e.Work_queue.payload with
      | Ok (spec, cell) ->
          let key = Sweep_spec.cache_key spec cell in
          Hashtbl.replace t.inflight (Cache_key.to_string key) e.Work_queue.id;
          Hashtbl.replace t.entry_client e.Work_queue.id recovered_client
      | Error _ -> Work_queue.cancel queue ~id:e.Work_queue.id)
    (Work_queue.pending_entries queue);
  if Hashtbl.length t.entry_client > 0 then t.ring <- [ recovered_client ];
  if Events.active () then
    Events.emit "service.queue_recovered"
      [
        ("replayed", Json.Int recovery.Work_queue.replayed);
        ("reclaimed", Json.Int recovery.Work_queue.reclaimed);
        ("dropped_bytes", Json.Int recovery.Work_queue.dropped_bytes);
        ("pending", Json.Int (Work_queue.pending queue));
      ];
  t

let close t =
  locked t (fun () ->
      Work_queue.close t.queue;
      Store.close t.store)

let store t = t.store

let register_worker ?(local = false) t ~worker =
  locked t (fun () ->
      let now = Ncg_obs.Clock.now_ns () in
      note_transition t worker
        (Worker_pool.touch t.pool ~name:worker ~local ~now))

(* --- Job resolution ------------------------------------------------------ *)

let emit_job_done job =
  if Events.active () then
    Events.emit "service.job_done"
      [
        ("job", Json.Int job.id);
        ("client", Json.String job.client);
        ("total", Json.Int (Array.length job.cells));
        ("quarantined", Json.Int (List.length job.quarantined));
      ]

let resolve_cell job idx outcome =
  (match outcome with
  | Ok r -> job.results.(idx) <- Some r
  | Error msg -> job.quarantined <- (idx, msg) :: job.quarantined);
  job.remaining <- job.remaining - 1;
  if job.remaining = 0 && job.state = Running then begin
    job.state <- Done;
    emit_job_done job
  end

(* Hand [outcome] to every job still waiting on [key]. *)
let resolve_waiters t key outcome =
  match Hashtbl.find_opt t.waiters key with
  | None -> ()
  | Some lst ->
      Hashtbl.remove t.waiters key;
      List.iter
        (fun (job_id, idx) ->
          match Hashtbl.find_opt t.jobs job_id with
          | Some job when job.state = Running -> resolve_cell job idx outcome
          | _ -> ())
        (List.rev !lst)

(* --- Submit -------------------------------------------------------------- *)

type submit_info = {
  job : int;
  total : int;
  cached : int;
  deduped : int;
  queued : int;
}

let ring_add t client =
  if not (List.exists (String.equal client) t.ring) then
    t.ring <- t.ring @ [ client ]

let submit t ~client ?deadline_ms spec =
  locked t (fun () ->
      t.n_requests <- t.n_requests + 1;
      match Sweep_spec.validate spec with
      | Error msg -> Error msg
      | Ok () -> (
          let cells = Array.of_list (Sweep_spec.cells spec) in
          let total = Array.length cells in
          match t.config.max_cells with
          | Some cap when total > cap ->
              Error
                (Printf.sprintf "grid has %d cells, server caps jobs at %d"
                   total cap)
          | _ ->
              let deadline_ms =
                match deadline_ms with
                | Some _ as d -> d
                | None -> t.config.default_deadline_ms
              in
              let deadline_ns =
                Option.map
                  (fun ms ->
                    Int64.add (Ncg_obs.Clock.now_ns ())
                      (Int64.of_float (float_of_int ms *. 1e6)))
                  deadline_ms
              in
              let keys = Array.map (Sweep_spec.cache_key spec) cells in
              let job =
                {
                  id = t.next_job;
                  client;
                  spec;
                  cells;
                  keys = Array.map Cache_key.to_string keys;
                  results = Array.make total None;
                  quarantined = [];
                  remaining = total;
                  deadline_ns;
                  state = Running;
                }
              in
              t.next_job <- t.next_job + 1;
              Hashtbl.replace t.jobs job.id job;
              let cached = ref 0 and deduped = ref 0 and queued = ref 0 in
              Array.iteri
                (fun idx key ->
                  let key_s = job.keys.(idx) in
                  match Experiment.store_lookup t.store key with
                  | Some r ->
                      incr cached;
                      t.n_cache_hits <- t.n_cache_hits + 1;
                      Metrics.(incr service_cache_hits);
                      resolve_cell job idx (Ok r)
                  | None ->
                      let waiters =
                        match Hashtbl.find_opt t.waiters key_s with
                        | Some lst -> lst
                        | None ->
                            let lst = ref [] in
                            Hashtbl.replace t.waiters key_s lst;
                            lst
                      in
                      waiters := (job.id, idx) :: !waiters;
                      if Hashtbl.mem t.inflight key_s then begin
                        incr deduped;
                        t.n_dedup_hits <- t.n_dedup_hits + 1;
                        Metrics.(incr service_dedup_hits)
                      end
                      else begin
                        let payload = task_payload spec cells.(idx) in
                        let id = Work_queue.enqueue t.queue ~payload in
                        Hashtbl.replace t.inflight key_s id;
                        Hashtbl.replace t.entry_client id client;
                        incr queued
                      end)
                keys;
              if !queued > 0 then ring_add t client;
              if Events.active () then
                Events.emit "service.submit"
                  [
                    ("job", Json.Int job.id);
                    ("client", Json.String client);
                    ("total", Json.Int total);
                    ("cached", Json.Int !cached);
                    ("deduped", Json.Int !deduped);
                    ("queued", Json.Int !queued);
                    ("queue_depth", Json.Int (Work_queue.pending t.queue));
                  ];
              Ok
                {
                  job = job.id;
                  total;
                  cached = !cached;
                  deduped = !deduped;
                  queued = !queued;
                }))

(* --- Introspection ------------------------------------------------------- *)

let job_state_string = function
  | Running -> "running"
  | Done -> "done"
  | Expired -> "expired"
  | Cancelled -> "cancelled"

let status t ~job =
  locked t (fun () ->
      t.n_requests <- t.n_requests + 1;
      Option.map
        (fun j ->
          [
            ("job", Json.Int j.id);
            ("state", Json.String (job_state_string j.state));
            ("total", Json.Int (Array.length j.cells));
            ("done", Json.Int (Array.length j.cells - j.remaining));
            ("quarantined", Json.Int (List.length j.quarantined));
          ])
        (Hashtbl.find_opt t.jobs job))

let results t ~job =
  locked t (fun () ->
      t.n_requests <- t.n_requests + 1;
      match Hashtbl.find_opt t.jobs job with
      | None -> Error (Printf.sprintf "unknown job %d" job)
      | Some j when j.state = Running ->
          Error
            (Printf.sprintf "job %d still running (%d/%d cells)" job
               (Array.length j.cells - j.remaining)
               (Array.length j.cells))
      | Some j when j.state = Expired ->
          Error (Printf.sprintf "job %d expired before completing" job)
      | Some j when j.state = Cancelled ->
          Error (Printf.sprintf "job %d was cancelled" job)
      | Some j ->
          let rows = ref [] in
          for idx = Array.length j.cells - 1 downto 0 do
            match j.results.(idx) with
            | Some r -> rows := Sweep_spec.csv_row j.spec r :: !rows
            | None -> ()
          done;
          let quarantined =
            List.rev_map
              (fun (idx, msg) ->
                (j.cells.(idx).Experiment.alpha, j.cells.(idx).Experiment.k, msg))
              j.quarantined
          in
          Ok (!rows, quarantined))

(* --- Worker plane -------------------------------------------------------- *)

let client_of_entry t id =
  match Hashtbl.find_opt t.entry_client id with
  | Some c -> c
  | None -> recovered_client

let client_live t c =
  (Hashtbl.fold [@lint.allow "D3" "existence is order-independent"])
    (fun _ c' acc -> acc || String.equal c' c)
    t.entry_client false

(* Round-robin across clients with pending cells: walk the ring from
   the front, grant the first client that still has pending work its
   oldest cell, and rotate that client to the back. Clients whose
   entries are all resolved fall out of the ring (a later submit
   re-adds them); clients with work merely in flight keep their turn.
   A huge early submission therefore no longer starves later small
   ones — each client with pending cells gets every k-th lease. *)
let pick_fair t =
  let pending = Work_queue.pending_entries t.queue in
  match pending with
  | [] -> None
  | first :: _ ->
      let oldest_of c =
        List.find_opt
          (fun (e : Work_queue.entry) ->
            String.equal (client_of_entry t e.Work_queue.id) c)
          pending
      in
      let rec go kept = function
        | [] ->
            (* no ring client owns pending work (mapping lost): fall
               back to global FIFO so nothing is stranded *)
            t.ring <- List.rev kept;
            Some first.Work_queue.id
        | c :: rest -> (
            match oldest_of c with
            | Some e ->
                t.ring <- List.rev_append kept rest @ [ c ];
                Some e.Work_queue.id
            | None -> if client_live t c then go (c :: kept) rest else go kept rest)
      in
      go [] t.ring

let pool_state_string t worker =
  match Worker_pool.state_of t.pool ~name:worker with
  | Some s -> Worker_pool.state_to_string s
  | None -> "unknown"

let lease ?(local = false) t ~worker =
  locked t (fun () ->
      t.n_requests <- t.n_requests + 1;
      let now = Ncg_obs.Clock.now_ns () in
      note_transition t worker (Worker_pool.touch t.pool ~name:worker ~local ~now);
      if not (Worker_pool.can_lease t.pool ~name:worker) then
        Rejected { state = pool_state_string t worker }
      else begin
        Ncg_fault.Inject.(hit service_dispatch);
        match pick_fair t with
        | None -> Empty
        | Some id -> (
            match Work_queue.lease_id t.queue ~worker ~id with
            | None -> Empty
            | Some entry -> (
                match task_of_payload entry.Work_queue.payload with
                | Error _ ->
                    (* Undecodable payloads were culled at [create]; one
                       here means in-memory corruption — drop the entry. *)
                    Work_queue.requeue t.queue ~id:entry.Work_queue.id;
                    Work_queue.cancel t.queue ~id:entry.Work_queue.id;
                    Hashtbl.remove t.entry_client entry.Work_queue.id;
                    Empty
                | Ok (spec, cell) ->
                    let key = Sweep_spec.cache_key spec cell in
                    let revoked = Atomic.make false in
                    Hashtbl.replace t.leased_tasks entry.Work_queue.id
                      { l_key = key; l_spec = spec; l_cell = cell;
                        l_worker = worker; l_revoked = revoked };
                    Worker_pool.note_lease t.pool ~name:worker;
                    if Events.active () then
                      Events.emit "service.lease"
                        [
                          ("task", Json.Int entry.Work_queue.id);
                          ("worker", Json.String worker);
                          ("alpha", Json.Float cell.Experiment.alpha);
                          ("k", Json.Int cell.Experiment.k);
                          ("attempts", Json.Int entry.Work_queue.attempts);
                        ];
                    Granted
                      {
                        task_id = entry.Work_queue.id;
                        spec;
                        cell;
                        attempts = entry.Work_queue.attempts;
                        revoked;
                      }))
      end)

let requeue_task t id (l : leased) reason =
  Work_queue.requeue t.queue ~id;
  Hashtbl.remove t.leased_tasks id;
  t.n_requeues <- t.n_requeues + 1;
  Metrics.(incr service_requeues);
  if Events.active () then
    Events.emit ~severity:Events.Warn "service.requeue"
      [
        ("task", Json.Int id);
        ("worker", Json.String l.l_worker);
        ("alpha", Json.Float l.l_cell.Experiment.alpha);
        ("k", Json.Int l.l_cell.Experiment.k);
        ("reason", Json.String reason);
      ]

let quarantine_task t id (l : leased) error =
  (* Terminal state for a queue entry that keeps failing: return it to
     pending, then cancel — both transitions are durable records, so a
     restarted daemon sees it as resolved, not as work. *)
  Work_queue.requeue t.queue ~id;
  Work_queue.cancel t.queue ~id;
  Hashtbl.remove t.leased_tasks id;
  Hashtbl.remove t.entry_client id;
  let key_s = Cache_key.to_string l.l_key in
  Hashtbl.remove t.inflight key_s;
  t.n_quarantines <- t.n_quarantines + 1;
  Metrics.(incr service_quarantines);
  if Events.active () then
    Events.emit ~severity:Events.Error "service.quarantine"
      [
        ("task", Json.Int id);
        ("alpha", Json.Float l.l_cell.Experiment.alpha);
        ("k", Json.Int l.l_cell.Experiment.k);
        ("error", Json.String error);
      ];
  resolve_waiters t key_s (Error error)

let complete t ~worker ~task result_json =
  locked t (fun () ->
      t.n_requests <- t.n_requests + 1;
      let now = Ncg_obs.Clock.now_ns () in
      note_transition t worker
        (Worker_pool.touch t.pool ~name:worker ~local:false ~now);
      match Hashtbl.find_opt t.leased_tasks task with
      | None -> Error (Printf.sprintf "task %d is not leased" task)
      | Some l when not (String.equal l.l_worker worker) ->
          Error
            (Printf.sprintf "task %d is leased to %S, not %S" task l.l_worker
               worker)
      | Some l -> (
          match Experiment.cell_result_of_json result_json with
          | Error msg ->
              requeue_task t task l ("undecodable result: " ^ msg);
              note_transition t worker
                (Worker_pool.note_failure t.pool ~name:worker ~now);
              Error (Printf.sprintf "task %d: undecodable result (%s)" task msg)
          | Ok r ->
              (* Single store write per distinct cell, by the daemon:
                 the store's inserts counter counts unique executions. *)
              Experiment.store_insert t.store l.l_key r;
              Work_queue.complete t.queue ~id:task;
              Hashtbl.remove t.leased_tasks task;
              Hashtbl.remove t.entry_client task;
              let key_s = Cache_key.to_string l.l_key in
              Hashtbl.remove t.inflight key_s;
              t.n_completions <- t.n_completions + 1;
              Metrics.(incr service_completions);
              note_transition t worker (Worker_pool.note_success t.pool ~name:worker);
              if Events.active () then
                Events.emit "service.complete"
                  [
                    ("task", Json.Int task);
                    ("worker", Json.String worker);
                    ("alpha", Json.Float l.l_cell.Experiment.alpha);
                    ("k", Json.Int l.l_cell.Experiment.k);
                    ("queue_depth", Json.Int (Work_queue.pending t.queue));
                  ];
              resolve_waiters t key_s (Ok r);
              Ok ()))

let fail t ~worker ~task ~error =
  locked t (fun () ->
      t.n_requests <- t.n_requests + 1;
      let now = Ncg_obs.Clock.now_ns () in
      note_transition t worker
        (Worker_pool.touch t.pool ~name:worker ~local:false ~now);
      match Hashtbl.find_opt t.leased_tasks task with
      | None -> Error (Printf.sprintf "task %d is not leased" task)
      | Some l when not (String.equal l.l_worker worker) ->
          Error
            (Printf.sprintf "task %d is leased to %S, not %S" task l.l_worker
               worker)
      | Some l ->
          let attempts = Work_queue.attempts t.queue ~id:task in
          if attempts > t.config.max_retries then
            quarantine_task t task l error
          else requeue_task t task l error;
          note_transition t worker
            (Worker_pool.note_failure t.pool ~name:worker ~now);
          Ok ())

let worker_lost t ~worker =
  locked t (fun () ->
      let ids = Work_queue.leases_of t.queue ~worker in
      List.iter
        (fun id ->
          match Hashtbl.find_opt t.leased_tasks id with
          | Some l -> requeue_task t id l "worker connection lost"
          | None ->
              (* leased directly through the queue (tests) — still
                 return it *)
              Work_queue.requeue t.queue ~id)
        ids;
      Worker_pool.drain t.pool ~name:worker;
      List.length ids)

(* --- Heartbeats ---------------------------------------------------------- *)

let heartbeat t ~worker =
  locked t (fun () ->
      t.n_requests <- t.n_requests + 1;
      (* A firing raise here drops the beat before any state changes:
         the worker stays silent this interval, exactly the failure the
         monitor exists to absorb. *)
      Ncg_fault.Inject.(hit service_heartbeat);
      let now = Ncg_obs.Clock.now_ns () in
      let tr = Worker_pool.heartbeat t.pool ~name:worker ~local:false ~now in
      t.n_heartbeats <- t.n_heartbeats + 1;
      Metrics.(incr service_heartbeats);
      note_transition t worker tr;
      let revoked =
        match Hashtbl.find_opt t.revoked_wire worker with
        | Some lst ->
            Hashtbl.remove t.revoked_wire worker;
            List.sort compare !lst
        | None -> []
      in
      (pool_state_string t worker, revoked))

(* --- Cancellation -------------------------------------------------------- *)

(* Detach [job] from every cell it still waits on; queue entries nobody
   else waits for are dropped. With [revoke], leased entries are
   resolved too: the durable requeue+cancel pair retires the queue
   entry, the in-process computation's revocation flag is set (tripping
   its next [Cancel] checkpoint), and remote owners learn via their
   next heartbeat reply. Without [revoke] (job expiry) leased cells are
   left to finish into the store. Returns (released, revoked). *)
let detach_job t job ~revoke =
  let released = ref 0 and revoked_n = ref 0 in
  Array.iteri
    (fun idx key_s ->
      if job.results.(idx) = None && not (List.mem_assoc idx job.quarantined)
      then
        match Hashtbl.find_opt t.waiters key_s with
        | None -> ()
        | Some lst ->
            lst :=
              List.filter
                (fun (jid, i) -> not (jid = job.id && i = idx))
                !lst;
            if !lst = [] then begin
              Hashtbl.remove t.waiters key_s;
              match Hashtbl.find_opt t.inflight key_s with
              | None -> ()
              | Some qid -> (
                  match Hashtbl.find_opt t.leased_tasks qid with
                  | None ->
                      Work_queue.cancel t.queue ~id:qid;
                      Hashtbl.remove t.entry_client qid;
                      Hashtbl.remove t.inflight key_s;
                      incr released
                  | Some l when revoke ->
                      Atomic.set l.l_revoked true;
                      (match Worker_pool.find t.pool l.l_worker with
                      | Some w when not w.Worker_pool.local ->
                          let pending_rev =
                            match Hashtbl.find_opt t.revoked_wire l.l_worker with
                            | Some r -> r
                            | None ->
                                let r = ref [] in
                                Hashtbl.replace t.revoked_wire l.l_worker r;
                                r
                          in
                          pending_rev := qid :: !pending_rev
                      | _ -> ());
                      Work_queue.requeue t.queue ~id:qid;
                      Work_queue.cancel t.queue ~id:qid;
                      Hashtbl.remove t.leased_tasks qid;
                      Hashtbl.remove t.entry_client qid;
                      Hashtbl.remove t.inflight key_s;
                      incr revoked_n;
                      if Events.active () then
                        Events.emit ~severity:Events.Warn
                          "service.lease_revoked"
                          [
                            ("task", Json.Int qid);
                            ("worker", Json.String l.l_worker);
                            ("alpha", Json.Float l.l_cell.Experiment.alpha);
                            ("k", Json.Int l.l_cell.Experiment.k);
                          ]
                  | Some _ -> ())
            end)
    job.keys;
  (!released, !revoked_n)

let cancel t ~job =
  locked t (fun () ->
      t.n_requests <- t.n_requests + 1;
      Ncg_fault.Inject.(hit service_cancel);
      match Hashtbl.find_opt t.jobs job with
      | None -> Error (Printf.sprintf "unknown job %d" job)
      | Some j when j.state <> Running ->
          Error
            (Printf.sprintf "job %d is already %s" job
               (job_state_string j.state))
      | Some j ->
          j.state <- Cancelled;
          let released, revoked = detach_job t j ~revoke:true in
          t.n_cancels <- t.n_cancels + 1;
          Metrics.(incr service_cancels);
          if Events.active () then
            Events.emit ~severity:Events.Warn "service.cancel"
              [
                ("job", Json.Int j.id);
                ("client", Json.String j.client);
                ("released", Json.Int released);
                ("revoked", Json.Int revoked);
              ];
          Ok (released, revoked))

(* --- Deadlines and the heartbeat monitor --------------------------------- *)

(* Reclaim every lease a heartbeat-silent worker holds — the same
   durable requeue path [Work_queue.openfile] uses for orphans, so disk
   and memory cannot diverge — and count the expiry as a strike against
   the worker. Silent workers holding nothing are merely suspected. *)
let expire_silent_workers t now =
  List.iter
    (fun name ->
      let ids = Work_queue.reclaim t.queue ~worker:name in
      if ids = [] then
        note_transition t name (Worker_pool.suspect t.pool ~name)
      else begin
        List.iter
          (fun id ->
            t.n_lease_expiries <- t.n_lease_expiries + 1;
            Metrics.(incr service_lease_expiries);
            match Hashtbl.find_opt t.leased_tasks id with
            | Some l ->
                Hashtbl.remove t.leased_tasks id;
                if Events.active () then
                  Events.emit ~severity:Events.Warn "service.lease_expired"
                    [
                      ("task", Json.Int id);
                      ("worker", Json.String name);
                      ("alpha", Json.Float l.l_cell.Experiment.alpha);
                      ("k", Json.Int l.l_cell.Experiment.k);
                    ]
            | None ->
                if Events.active () then
                  Events.emit ~severity:Events.Warn "service.lease_expired"
                    [ ("task", Json.Int id); ("worker", Json.String name) ])
          ids;
        note_transition t name (Worker_pool.note_expiry t.pool ~name ~now)
      end)
    (Worker_pool.stale t.pool ~now)

let tick t =
  locked t (fun () ->
      let now = Ncg_obs.Clock.now_ns () in
      (Hashtbl.iter [@lint.allow "D3" "per-job expiry is order-independent"])
        (fun _ job ->
          match (job.state, job.deadline_ns) with
          | Running, Some deadline when Int64.compare now deadline > 0 ->
              job.state <- Expired;
              if Events.active () then
                Events.emit ~severity:Events.Warn "service.job_expired"
                  [
                    ("job", Json.Int job.id);
                    ("client", Json.String job.client);
                    ("remaining", Json.Int job.remaining);
                  ];
              (* Release queued cells nobody else waits for. *)
              ignore (detach_job t job ~revoke:false)
          | _ -> ())
        t.jobs;
      expire_silent_workers t now)

let idle t =
  locked t (fun () ->
      Work_queue.pending t.queue = 0
      && Work_queue.leased t.queue = 0
      && (Hashtbl.fold [@lint.allow "D3" "conjunction is order-independent"])
           (fun _ job acc -> acc && job.state <> Running)
           t.jobs true)

let stats_fields t =
  locked t (fun () ->
      let count state =
        (Hashtbl.fold [@lint.allow "D3" "order-independent counting"])
          (fun _ j acc -> if j.state = state then acc + 1 else acc)
          t.jobs 0
      in
      [
        ( "jobs",
          Json.Obj
            [
              ("running", Json.Int (count Running));
              ("done", Json.Int (count Done));
              ("expired", Json.Int (count Expired));
              ("cancelled", Json.Int (count Cancelled));
            ] );
        ("queue", Work_queue.stats_to_json t.queue);
        ("store", Store.stats_to_json (Store.stats t.store));
        ("workers", Worker_pool.stats_to_json t.pool);
        ( "counters",
          Json.Obj
            [
              ("requests", Json.Int t.n_requests);
              ("cache_hits", Json.Int t.n_cache_hits);
              ("dedup_hits", Json.Int t.n_dedup_hits);
              ("completions", Json.Int t.n_completions);
              ("requeues", Json.Int t.n_requeues);
              ("quarantines", Json.Int t.n_quarantines);
              ("heartbeats", Json.Int t.n_heartbeats);
              ("lease_expiries", Json.Int t.n_lease_expiries);
              ("worker_quarantines", Json.Int t.n_worker_quarantines);
              ("cancels", Json.Int t.n_cancels);
            ] );
      ])
