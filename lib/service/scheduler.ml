module Json = Ncg_obs.Json
module Events = Ncg_obs.Events
module Metrics = Ncg_obs.Metrics
module Store = Ncg_store.Store
module Work_queue = Ncg_store.Work_queue
module Cache_key = Ncg_store.Cache_key
module Sweep_spec = Ncg.Sweep_spec
module Experiment = Ncg.Experiment

type config = {
  store_dir : string;
  max_retries : int;
  default_deadline_ms : int option;
  max_cells : int option;
}

type job_state = Running | Done | Expired

type job = {
  id : int;
  client : string;
  spec : Sweep_spec.t;
  cells : Experiment.cell array;
  keys : string array;  (** canonical key bytes, index-aligned with cells *)
  results : Experiment.cell_result option array;
  mutable quarantined : (int * string) list;  (** (cell index, error) *)
  mutable remaining : int;
  deadline_ns : int64 option;  (** absolute, monotonic clock *)
  mutable state : job_state;
}

type task = {
  task_id : int;
  spec : Sweep_spec.t;
  cell : Experiment.cell;
  attempts : int;
}

type leased = { l_key : Cache_key.t; l_spec : Sweep_spec.t;
                l_cell : Experiment.cell; l_worker : string }

type t = {
  config : config;
  store : Store.t;
  queue : Work_queue.t;
  mutex : Mutex.t;
  jobs : (int, job) Hashtbl.t;
  mutable next_job : int;
  (* Cross-client dedup registry. [waiters]: canonical key -> (job id,
     cell index) list still expecting that cell. [inflight]: canonical
     key -> queue entry id, present from enqueue to terminal state.
     [leased_tasks]: queue id -> decoded task while leased. *)
  waiters : (string, (int * int) list ref) Hashtbl.t;
  inflight : (string, int) Hashtbl.t;
  leased_tasks : (int, leased) Hashtbl.t;
  (* Plain counters for the stats verb — [Metrics] counters only record
     under a collector, a daemon wants always-on numbers. *)
  mutable n_requests : int;
  mutable n_cache_hits : int;
  mutable n_dedup_hits : int;
  mutable n_completions : int;
  mutable n_requeues : int;
  mutable n_quarantines : int;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* --- Task payloads ------------------------------------------------------- *)

let task_schema = "ncg.service.task/1"

let task_payload spec (cell : Experiment.cell) =
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.String task_schema);
         ("spec", Sweep_spec.to_json spec);
         ("alpha", Json.Float cell.Experiment.alpha);
         ("k", Json.Int cell.Experiment.k);
       ])

let task_of_payload payload =
  let ( let* ) = Result.bind in
  let* j = Json.of_string payload in
  let member name =
    match j with Json.Obj f -> List.assoc_opt name f | _ -> None
  in
  let* () =
    match member "schema" with
    | Some (Json.String s) when String.equal s task_schema -> Ok ()
    | _ -> Error "task: bad schema"
  in
  let* spec =
    match member "spec" with
    | Some s -> Sweep_spec.of_json s
    | None -> Error "task: missing spec"
  in
  let* alpha =
    match member "alpha" with
    | Some (Json.Float a) -> Ok a
    | Some (Json.Int a) -> Ok (float_of_int a)
    | _ -> Error "task: missing alpha"
  in
  let* k =
    match member "k" with
    | Some (Json.Int k) -> Ok k
    | _ -> Error "task: missing k"
  in
  Ok (spec, { Experiment.alpha; k })

(* --- Lifecycle ----------------------------------------------------------- *)

let create config =
  let store = Store.open_dir config.store_dir in
  let queue_path = Filename.concat config.store_dir "queue.log" in
  let queue, recovery = Work_queue.openfile queue_path in
  let t =
    {
      config;
      store;
      queue;
      mutex = Mutex.create ();
      jobs = Hashtbl.create 16;
      next_job = 0;
      waiters = Hashtbl.create 64;
      inflight = Hashtbl.create 64;
      leased_tasks = Hashtbl.create 16;
      n_requests = 0;
      n_cache_hits = 0;
      n_dedup_hits = 0;
      n_completions = 0;
      n_requeues = 0;
      n_quarantines = 0;
    }
  in
  (* Re-adopt work recovered from the log: entries of a previous daemon
     whose clients are gone. Completed results will land in the store
     (warming it for resubmissions); entries whose payload no longer
     decodes (schema drift) are dropped. *)
  List.iter
    (fun (e : Work_queue.entry) ->
      match task_of_payload e.Work_queue.payload with
      | Ok (spec, cell) ->
          let key = Sweep_spec.cache_key spec cell in
          Hashtbl.replace t.inflight (Cache_key.to_string key) e.Work_queue.id
      | Error _ -> Work_queue.cancel queue ~id:e.Work_queue.id)
    (Work_queue.pending_entries queue);
  if Events.active () then
    Events.emit "service.queue_recovered"
      [
        ("replayed", Json.Int recovery.Work_queue.replayed);
        ("reclaimed", Json.Int recovery.Work_queue.reclaimed);
        ("dropped_bytes", Json.Int recovery.Work_queue.dropped_bytes);
        ("pending", Json.Int (Work_queue.pending queue));
      ];
  t

let close t =
  locked t (fun () ->
      Work_queue.close t.queue;
      Store.close t.store)

let store t = t.store

(* --- Job resolution ------------------------------------------------------ *)

let emit_job_done job =
  if Events.active () then
    Events.emit "service.job_done"
      [
        ("job", Json.Int job.id);
        ("client", Json.String job.client);
        ("total", Json.Int (Array.length job.cells));
        ("quarantined", Json.Int (List.length job.quarantined));
      ]

let resolve_cell job idx outcome =
  (match outcome with
  | Ok r -> job.results.(idx) <- Some r
  | Error msg -> job.quarantined <- (idx, msg) :: job.quarantined);
  job.remaining <- job.remaining - 1;
  if job.remaining = 0 && job.state = Running then begin
    job.state <- Done;
    emit_job_done job
  end

(* Hand [outcome] to every job still waiting on [key]. *)
let resolve_waiters t key outcome =
  match Hashtbl.find_opt t.waiters key with
  | None -> ()
  | Some lst ->
      Hashtbl.remove t.waiters key;
      List.iter
        (fun (job_id, idx) ->
          match Hashtbl.find_opt t.jobs job_id with
          | Some job when job.state <> Expired -> resolve_cell job idx outcome
          | _ -> ())
        (List.rev !lst)

(* --- Submit -------------------------------------------------------------- *)

type submit_info = {
  job : int;
  total : int;
  cached : int;
  deduped : int;
  queued : int;
}

let submit t ~client ?deadline_ms spec =
  locked t (fun () ->
      t.n_requests <- t.n_requests + 1;
      match Sweep_spec.validate spec with
      | Error msg -> Error msg
      | Ok () -> (
          let cells = Array.of_list (Sweep_spec.cells spec) in
          let total = Array.length cells in
          match t.config.max_cells with
          | Some cap when total > cap ->
              Error
                (Printf.sprintf "grid has %d cells, server caps jobs at %d"
                   total cap)
          | _ ->
              let deadline_ms =
                match deadline_ms with
                | Some _ as d -> d
                | None -> t.config.default_deadline_ms
              in
              let deadline_ns =
                Option.map
                  (fun ms ->
                    Int64.add (Ncg_obs.Clock.now_ns ())
                      (Int64.of_float (float_of_int ms *. 1e6)))
                  deadline_ms
              in
              let keys = Array.map (Sweep_spec.cache_key spec) cells in
              let job =
                {
                  id = t.next_job;
                  client;
                  spec;
                  cells;
                  keys = Array.map Cache_key.to_string keys;
                  results = Array.make total None;
                  quarantined = [];
                  remaining = total;
                  deadline_ns;
                  state = Running;
                }
              in
              t.next_job <- t.next_job + 1;
              Hashtbl.replace t.jobs job.id job;
              let cached = ref 0 and deduped = ref 0 and queued = ref 0 in
              Array.iteri
                (fun idx key ->
                  let key_s = job.keys.(idx) in
                  match Experiment.store_lookup t.store key with
                  | Some r ->
                      incr cached;
                      t.n_cache_hits <- t.n_cache_hits + 1;
                      Metrics.(incr service_cache_hits);
                      resolve_cell job idx (Ok r)
                  | None ->
                      let waiters =
                        match Hashtbl.find_opt t.waiters key_s with
                        | Some lst -> lst
                        | None ->
                            let lst = ref [] in
                            Hashtbl.replace t.waiters key_s lst;
                            lst
                      in
                      waiters := (job.id, idx) :: !waiters;
                      if Hashtbl.mem t.inflight key_s then begin
                        incr deduped;
                        t.n_dedup_hits <- t.n_dedup_hits + 1;
                        Metrics.(incr service_dedup_hits)
                      end
                      else begin
                        let payload = task_payload spec cells.(idx) in
                        let id = Work_queue.enqueue t.queue ~payload in
                        Hashtbl.replace t.inflight key_s id;
                        incr queued
                      end)
                keys;
              if Events.active () then
                Events.emit "service.submit"
                  [
                    ("job", Json.Int job.id);
                    ("client", Json.String client);
                    ("total", Json.Int total);
                    ("cached", Json.Int !cached);
                    ("deduped", Json.Int !deduped);
                    ("queued", Json.Int !queued);
                    ("queue_depth", Json.Int (Work_queue.pending t.queue));
                  ];
              Ok
                {
                  job = job.id;
                  total;
                  cached = !cached;
                  deduped = !deduped;
                  queued = !queued;
                }))

(* --- Introspection ------------------------------------------------------- *)

let job_state_string = function
  | Running -> "running"
  | Done -> "done"
  | Expired -> "expired"

let status t ~job =
  locked t (fun () ->
      t.n_requests <- t.n_requests + 1;
      Option.map
        (fun j ->
          [
            ("job", Json.Int j.id);
            ("state", Json.String (job_state_string j.state));
            ("total", Json.Int (Array.length j.cells));
            ("done", Json.Int (Array.length j.cells - j.remaining));
            ("quarantined", Json.Int (List.length j.quarantined));
          ])
        (Hashtbl.find_opt t.jobs job))

let results t ~job =
  locked t (fun () ->
      t.n_requests <- t.n_requests + 1;
      match Hashtbl.find_opt t.jobs job with
      | None -> Error (Printf.sprintf "unknown job %d" job)
      | Some j when j.state = Running ->
          Error
            (Printf.sprintf "job %d still running (%d/%d cells)" job
               (Array.length j.cells - j.remaining)
               (Array.length j.cells))
      | Some j when j.state = Expired ->
          Error (Printf.sprintf "job %d expired before completing" job)
      | Some j ->
          let rows = ref [] in
          for idx = Array.length j.cells - 1 downto 0 do
            match j.results.(idx) with
            | Some r -> rows := Sweep_spec.csv_row j.spec r :: !rows
            | None -> ()
          done;
          let quarantined =
            List.rev_map
              (fun (idx, msg) ->
                (j.cells.(idx).Experiment.alpha, j.cells.(idx).Experiment.k, msg))
              j.quarantined
          in
          Ok (!rows, quarantined))

(* --- Worker plane -------------------------------------------------------- *)

let lease t ~worker =
  locked t (fun () ->
      t.n_requests <- t.n_requests + 1;
      Ncg_fault.Inject.(hit service_dispatch);
      match Work_queue.lease t.queue ~worker with
      | None -> None
      | Some entry -> (
          match task_of_payload entry.Work_queue.payload with
          | Error _ ->
              (* Undecodable payloads were culled at [create]; one here
                 means in-memory corruption — drop the entry. *)
              Work_queue.requeue t.queue ~id:entry.Work_queue.id;
              Work_queue.cancel t.queue ~id:entry.Work_queue.id;
              None
          | Ok (spec, cell) ->
              let key = Sweep_spec.cache_key spec cell in
              Hashtbl.replace t.leased_tasks entry.Work_queue.id
                { l_key = key; l_spec = spec; l_cell = cell; l_worker = worker };
              if Events.active () then
                Events.emit "service.lease"
                  [
                    ("task", Json.Int entry.Work_queue.id);
                    ("worker", Json.String worker);
                    ("alpha", Json.Float cell.Experiment.alpha);
                    ("k", Json.Int cell.Experiment.k);
                    ("attempts", Json.Int entry.Work_queue.attempts);
                  ];
              Some
                {
                  task_id = entry.Work_queue.id;
                  spec;
                  cell;
                  attempts = entry.Work_queue.attempts;
                }))

let requeue_task t id (l : leased) reason =
  Work_queue.requeue t.queue ~id;
  Hashtbl.remove t.leased_tasks id;
  t.n_requeues <- t.n_requeues + 1;
  Metrics.(incr service_requeues);
  if Events.active () then
    Events.emit ~severity:Events.Warn "service.requeue"
      [
        ("task", Json.Int id);
        ("worker", Json.String l.l_worker);
        ("alpha", Json.Float l.l_cell.Experiment.alpha);
        ("k", Json.Int l.l_cell.Experiment.k);
        ("reason", Json.String reason);
      ]

let quarantine_task t id (l : leased) error =
  (* Terminal state for a queue entry that keeps failing: return it to
     pending, then cancel — both transitions are durable records, so a
     restarted daemon sees it as resolved, not as work. *)
  Work_queue.requeue t.queue ~id;
  Work_queue.cancel t.queue ~id;
  Hashtbl.remove t.leased_tasks id;
  let key_s = Cache_key.to_string l.l_key in
  Hashtbl.remove t.inflight key_s;
  t.n_quarantines <- t.n_quarantines + 1;
  Metrics.(incr service_quarantines);
  if Events.active () then
    Events.emit ~severity:Events.Error "service.quarantine"
      [
        ("task", Json.Int id);
        ("alpha", Json.Float l.l_cell.Experiment.alpha);
        ("k", Json.Int l.l_cell.Experiment.k);
        ("error", Json.String error);
      ];
  resolve_waiters t key_s (Error error)

let complete t ~worker ~task result_json =
  locked t (fun () ->
      t.n_requests <- t.n_requests + 1;
      match Hashtbl.find_opt t.leased_tasks task with
      | None -> Error (Printf.sprintf "task %d is not leased" task)
      | Some l when not (String.equal l.l_worker worker) ->
          Error
            (Printf.sprintf "task %d is leased to %S, not %S" task l.l_worker
               worker)
      | Some l -> (
          match Experiment.cell_result_of_json result_json with
          | Error msg ->
              requeue_task t task l ("undecodable result: " ^ msg);
              Error (Printf.sprintf "task %d: undecodable result (%s)" task msg)
          | Ok r ->
              (* Single store write per distinct cell, by the daemon:
                 the store's inserts counter counts unique executions. *)
              Experiment.store_insert t.store l.l_key r;
              Work_queue.complete t.queue ~id:task;
              Hashtbl.remove t.leased_tasks task;
              let key_s = Cache_key.to_string l.l_key in
              Hashtbl.remove t.inflight key_s;
              t.n_completions <- t.n_completions + 1;
              Metrics.(incr service_completions);
              if Events.active () then
                Events.emit "service.complete"
                  [
                    ("task", Json.Int task);
                    ("worker", Json.String worker);
                    ("alpha", Json.Float l.l_cell.Experiment.alpha);
                    ("k", Json.Int l.l_cell.Experiment.k);
                    ("queue_depth", Json.Int (Work_queue.pending t.queue));
                  ];
              resolve_waiters t key_s (Ok r);
              Ok ()))

let fail t ~worker ~task ~error =
  locked t (fun () ->
      t.n_requests <- t.n_requests + 1;
      match Hashtbl.find_opt t.leased_tasks task with
      | None -> Error (Printf.sprintf "task %d is not leased" task)
      | Some l when not (String.equal l.l_worker worker) ->
          Error
            (Printf.sprintf "task %d is leased to %S, not %S" task l.l_worker
               worker)
      | Some l ->
          let attempts = Work_queue.attempts t.queue ~id:task in
          if attempts > t.config.max_retries then
            quarantine_task t task l error
          else requeue_task t task l error;
          Ok ())

let worker_lost t ~worker =
  locked t (fun () ->
      let ids = Work_queue.leases_of t.queue ~worker in
      List.iter
        (fun id ->
          match Hashtbl.find_opt t.leased_tasks id with
          | Some l -> requeue_task t id l "worker connection lost"
          | None ->
              (* leased directly through the queue (tests) — still
                 return it *)
              Work_queue.requeue t.queue ~id)
        ids;
      List.length ids)

(* --- Deadlines ----------------------------------------------------------- *)

let tick t =
  locked t (fun () ->
      let now = Ncg_obs.Clock.now_ns () in
      (Hashtbl.iter [@lint.allow "D3" "per-job expiry is order-independent"])
        (fun _ job ->
          match (job.state, job.deadline_ns) with
          | Running, Some deadline when Int64.compare now deadline > 0 ->
              job.state <- Expired;
              if Events.active () then
                Events.emit ~severity:Events.Warn "service.job_expired"
                  [
                    ("job", Json.Int job.id);
                    ("client", Json.String job.client);
                    ("remaining", Json.Int job.remaining);
                  ];
              (* Release queued cells nobody else waits for. *)
              Array.iteri
                (fun idx key_s ->
                  if job.results.(idx) = None
                     && not (List.mem_assoc idx job.quarantined)
                  then begin
                    (match Hashtbl.find_opt t.waiters key_s with
                    | Some lst ->
                        lst :=
                          List.filter
                            (fun (jid, i) -> not (jid = job.id && i = idx))
                            !lst;
                        if !lst = [] then begin
                          Hashtbl.remove t.waiters key_s;
                          match Hashtbl.find_opt t.inflight key_s with
                          | Some qid when not (Hashtbl.mem t.leased_tasks qid)
                            ->
                              Work_queue.cancel t.queue ~id:qid;
                              Hashtbl.remove t.inflight key_s
                          | _ -> ()
                        end
                    | None -> ())
                  end)
                job.keys
          | _ -> ())
        t.jobs)

let idle t =
  locked t (fun () ->
      Work_queue.pending t.queue = 0
      && Work_queue.leased t.queue = 0
      && (Hashtbl.fold [@lint.allow "D3" "conjunction is order-independent"])
           (fun _ job acc -> acc && job.state <> Running)
           t.jobs true)

let stats_fields t =
  locked t (fun () ->
      let count state =
        (Hashtbl.fold [@lint.allow "D3" "order-independent counting"])
          (fun _ j acc -> if j.state = state then acc + 1 else acc)
          t.jobs 0
      in
      [
        ( "jobs",
          Json.Obj
            [
              ("running", Json.Int (count Running));
              ("done", Json.Int (count Done));
              ("expired", Json.Int (count Expired));
            ] );
        ("queue", Work_queue.stats_to_json t.queue);
        ("store", Store.stats_to_json (Store.stats t.store));
        ( "counters",
          Json.Obj
            [
              ("requests", Json.Int t.n_requests);
              ("cache_hits", Json.Int t.n_cache_hits);
              ("dedup_hits", Json.Int t.n_dedup_hits);
              ("completions", Json.Int t.n_completions);
              ("requeues", Json.Int t.n_requeues);
              ("quarantines", Json.Int t.n_quarantines);
            ] );
      ])
