(** Worker health registry for the sweep daemon.

    Every worker that ever said [hello], leased, completed, failed or
    pinged gets a record here. The lifecycle is a small state machine:

    {v
    healthy --(missed heartbeat | failed attempt)--> suspect
    suspect --(N consecutive failed/expired attempts)--> quarantined
    quarantined --(cooldown + ping)--> suspect (probation)
    suspect --(completed cell | clean ping)--> healthy
    any --(connection closed / shutdown)--> drained
    v}

    Quarantined workers are shed: the scheduler answers their lease
    polls with [rejected] until the cooldown passes and they ping again.
    {e Local} workers (in-process domains) share the daemon's fate, so
    they are exempt from heartbeat staleness — only wire workers can go
    silent while alive.

    Not thread-safe: the scheduler calls every function under its own
    mutex. *)

type state = Healthy | Suspect | Quarantined | Drained

val state_to_string : state -> string

type worker = {
  name : string;
  local : bool;  (** in-process domain — exempt from heartbeat expiry *)
  mutable state : state;
  mutable last_seen_ns : int64;  (** monotonic, last sign of life *)
  mutable quarantined_at_ns : int64;
  mutable consecutive_failures : int;  (** failed + expired, reset on success *)
  mutable leases : int;
  mutable completions : int;
  mutable failures : int;
  mutable heartbeats : int;
  mutable expiries : int;
}

type config = {
  heartbeat_timeout_ms : int;
      (** a non-local worker silent this long is stale; [0] disables the
          heartbeat monitor entirely *)
  quarantine_failures : int;
      (** consecutive failed/expired attempts that quarantine a worker *)
  quarantine_cooldown_ms : int;
      (** after this long quarantined, a ping readmits (to suspect);
          [0] means quarantine is permanent for the daemon's lifetime *)
}

type t

(** What a pool operation did to the worker's state — the scheduler
    translates these into [service.worker_*] events. *)
type transition =
  | Registered  (** first contact: a fresh healthy record *)
  | Readmitted  (** quarantined → suspect, cooldown served *)
  | Recovered  (** suspect → healthy *)
  | Suspected  (** healthy → suspect *)
  | Sick  (** → quarantined *)
  | Noted  (** counters only, no state change *)

val create : config -> t

val find : t -> string -> worker option

(** [touch t ~name ~local ~now] records a sign of life: registers
    unknown workers, updates [last_seen_ns], revives drained records,
    and readmits quarantined workers whose cooldown has passed. *)
val touch : t -> name:string -> local:bool -> now:int64 -> transition

(** [heartbeat t ~name ~local ~now] is {!touch} plus the heartbeat
    counter; a clean ping (no outstanding failures) also clears
    suspicion. *)
val heartbeat : t -> name:string -> local:bool -> now:int64 -> transition

(** False exactly when the worker is quarantined — its lease polls are
    answered with [rejected]. Unknown workers may lease. *)
val can_lease : t -> name:string -> bool

val state_of : t -> name:string -> state option
val note_lease : t -> name:string -> unit

(** A completed cell: resets the failure streak, clears suspicion. *)
val note_success : t -> name:string -> transition

(** A failed attempt ([fail] verb or undecodable result). *)
val note_failure : t -> name:string -> now:int64 -> transition

(** A heartbeat expiry that reclaimed the worker's leases — counted as
    a strike exactly like a failed attempt. *)
val note_expiry : t -> name:string -> now:int64 -> transition

(** Heartbeat-silent but holding no leases: healthy → suspect, no
    strike counted. *)
val suspect : t -> name:string -> transition

(** Connection closed or daemon shutting down. Quarantined records keep
    their state (the quarantine outlives the connection). *)
val drain : t -> name:string -> unit

(** Non-local, non-quarantined workers silent for longer than the
    heartbeat timeout, sorted by name. Empty when the monitor is
    disabled ([heartbeat_timeout_ms = 0]). *)
val stale : t -> now:int64 -> string list

val worker_to_json : worker -> Ncg_obs.Json.t

(** All workers as a JSON list, sorted by name — the [workers] field of
    the [stats] verb. *)
val stats_to_json : t -> Ncg_obs.Json.t
