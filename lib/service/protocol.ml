module Json = Ncg_obs.Json

type addr = Unix_sock of string | Tcp of string * int

let parse_addr s =
  match String.index_opt s ':' with
  | None -> Ok (Unix_sock s)
  | Some i -> (
      let kind = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match kind with
      | "unix" ->
          if rest = "" then Error "unix: address needs a path"
          else Ok (Unix_sock rest)
      | "tcp" -> (
          match String.rindex_opt rest ':' with
          | None -> Error "tcp: address needs HOST:PORT"
          | Some j -> (
              let host = String.sub rest 0 j in
              let port = String.sub rest (j + 1) (String.length rest - j - 1) in
              match int_of_string_opt port with
              | Some p when p > 0 && p < 65536 -> Ok (Tcp (host, p))
              | _ -> Error (Printf.sprintf "tcp: bad port %S" port)))
      | _ ->
          (* a bare relative path containing ':' is ambiguous; insist on
             an explicit scheme there *)
          Error (Printf.sprintf "unknown address scheme %S (use unix: or tcp:)" kind))

let addr_to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

type request =
  | Hello of { client : string; worker : bool }
  | Submit of { spec : Ncg.Sweep_spec.t; deadline_ms : int option }
  | Status of { job : int }
  | Results of { job : int }
  | Lease of { worker : string }
  | Complete of { worker : string; task : int; result : Json.t }
  | Fail of { worker : string; task : int; error : string }
  | Ping of { worker : string }
  | Cancel of { job : int }
  | Subscribe
  | Stats

let request_schema = Ncg_obs.Schema.service_request
let request_schema_v1 = Ncg_obs.Schema.service_request_v1
let response_schema = Ncg_obs.Schema.service_response

let request_to_json r =
  let fields =
    match r with
    | Hello { client; worker } ->
        [ ("verb", Json.String "hello"); ("client", Json.String client) ]
        @ if worker then [ ("worker", Json.Bool true) ] else []
    | Submit { spec; deadline_ms } ->
        [ ("verb", Json.String "submit"); ("spec", Ncg.Sweep_spec.to_json spec) ]
        @ (match deadline_ms with
          | None -> []
          | Some ms -> [ ("deadline_ms", Json.Int ms) ])
    | Status { job } -> [ ("verb", Json.String "status"); ("job", Json.Int job) ]
    | Results { job } ->
        [ ("verb", Json.String "results"); ("job", Json.Int job) ]
    | Lease { worker } ->
        [ ("verb", Json.String "lease"); ("worker", Json.String worker) ]
    | Complete { worker; task; result } ->
        [
          ("verb", Json.String "complete");
          ("worker", Json.String worker);
          ("task", Json.Int task);
          ("result", result);
        ]
    | Fail { worker; task; error } ->
        [
          ("verb", Json.String "fail");
          ("worker", Json.String worker);
          ("task", Json.Int task);
          ("error", Json.String error);
        ]
    | Ping { worker } ->
        [ ("verb", Json.String "ping"); ("worker", Json.String worker) ]
    | Cancel { job } -> [ ("verb", Json.String "cancel"); ("job", Json.Int job) ]
    | Subscribe -> [ ("verb", Json.String "subscribe") ]
    | Stats -> [ ("verb", Json.String "stats") ]
  in
  Json.Obj (("schema", Json.String request_schema) :: fields)

let member name = function
  | Json.Obj fields -> List.assoc_opt name fields
  | _ -> None

let str_field name j =
  match member name j with
  | Some (Json.String s) -> Ok s
  | _ -> Error (Printf.sprintf "request: missing string field %S" name)

let int_field name j =
  match member name j with
  | Some (Json.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "request: missing integer field %S" name)

let request_of_json j =
  let ( let* ) = Result.bind in
  let* () =
    match member "schema" j with
    | Some (Json.String s)
      when String.equal s request_schema || String.equal s request_schema_v1 ->
        (* v1 requests are a strict subset: same encodings, fewer
           verbs — PR 8 clients and workers keep working unchanged. *)
        Ok ()
    | Some (Json.String s) ->
        Error (Printf.sprintf "request: unsupported schema %S" s)
    | _ -> Error "request: missing schema"
  in
  let* verb = str_field "verb" j in
  match verb with
  | "hello" ->
      let* client = str_field "client" j in
      let worker =
        match member "worker" j with Some (Json.Bool b) -> b | _ -> false
      in
      Ok (Hello { client; worker })
  | "submit" ->
      let* spec_json =
        match member "spec" j with
        | Some s -> Ok s
        | None -> Error "request: submit needs \"spec\""
      in
      let* spec = Ncg.Sweep_spec.of_json spec_json in
      let* deadline_ms =
        match member "deadline_ms" j with
        | None -> Ok None
        | Some (Json.Int ms) when ms > 0 -> Ok (Some ms)
        | Some _ -> Error "request: \"deadline_ms\" must be a positive integer"
      in
      Ok (Submit { spec; deadline_ms })
  | "status" ->
      let* job = int_field "job" j in
      Ok (Status { job })
  | "results" ->
      let* job = int_field "job" j in
      Ok (Results { job })
  | "lease" ->
      let* worker = str_field "worker" j in
      Ok (Lease { worker })
  | "complete" ->
      let* worker = str_field "worker" j in
      let* task = int_field "task" j in
      let* result =
        match member "result" j with
        | Some r -> Ok r
        | None -> Error "request: complete needs \"result\""
      in
      Ok (Complete { worker; task; result })
  | "fail" ->
      let* worker = str_field "worker" j in
      let* task = int_field "task" j in
      let* error = str_field "error" j in
      Ok (Fail { worker; task; error })
  | "ping" ->
      let* worker = str_field "worker" j in
      Ok (Ping { worker })
  | "cancel" ->
      let* job = int_field "job" j in
      Ok (Cancel { job })
  | "subscribe" -> Ok Subscribe
  | "stats" -> Ok Stats
  | other -> Error (Printf.sprintf "request: unknown verb %S" other)

type response =
  | Resp_ok of (string * Json.t) list
  | Resp_error of string

let response_to_json = function
  | Resp_ok fields ->
      Json.Obj
        (("schema", Json.String response_schema) :: ("ok", Json.Bool true)
        :: fields)
  | Resp_error msg ->
      Json.Obj
        [
          ("schema", Json.String response_schema);
          ("ok", Json.Bool false);
          ("error", Json.String msg);
        ]

let response_of_json j =
  match (member "schema" j, member "ok" j) with
  | Some (Json.String s), _ when not (String.equal s response_schema) ->
      Error (Printf.sprintf "response: unsupported schema %S" s)
  | Some (Json.String _), Some (Json.Bool true) -> (
      match j with
      | Json.Obj fields ->
          Ok
            (Resp_ok
               (List.filter
                  (fun (name, _) ->
                    not (String.equal name "schema" || String.equal name "ok"))
                  fields))
      | _ -> Error "response: not an object")
  | Some (Json.String _), Some (Json.Bool false) -> (
      match member "error" j with
      | Some (Json.String msg) -> Ok (Resp_error msg)
      | _ -> Error "response: missing \"error\"")
  | _ -> Error "response: missing schema or \"ok\""

let send_line oc json =
  output_string oc (Json.to_string json);
  output_char oc '\n';
  flush oc

let recv_line ic =
  match input_line ic with
  | exception End_of_file -> Ok None
  | line -> (
      match Json.of_string line with
      | Ok j -> Ok (Some j)
      | Error msg -> Error (Printf.sprintf "bad line: %s" msg))

let sockaddr_of = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (ip, _); _ } :: _ -> ip
          | _ -> raise (Unix.Unix_error (Unix.EHOSTUNREACH, "getaddrinfo", host)))
      in
      Unix.ADDR_INET (ip, port)

let connect addr =
  let domain =
    match addr with
    | Unix_sock _ -> Unix.PF_UNIX
    | Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (sockaddr_of addr)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  (Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)
