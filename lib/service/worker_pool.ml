module Json = Ncg_obs.Json

type state = Healthy | Suspect | Quarantined | Drained

let state_to_string = function
  | Healthy -> "healthy"
  | Suspect -> "suspect"
  | Quarantined -> "quarantined"
  | Drained -> "drained"

type worker = {
  name : string;
  local : bool;
  mutable state : state;
  mutable last_seen_ns : int64;
  mutable quarantined_at_ns : int64;
  mutable consecutive_failures : int;
  mutable leases : int;
  mutable completions : int;
  mutable failures : int;
  mutable heartbeats : int;
  mutable expiries : int;
}

type config = {
  heartbeat_timeout_ms : int;
  quarantine_failures : int;
  quarantine_cooldown_ms : int;
}

type t = { config : config; workers : (string, worker) Hashtbl.t }

type transition = Registered | Readmitted | Recovered | Suspected | Sick | Noted

let create config = { config; workers = Hashtbl.create 8 }

let find t name = Hashtbl.find_opt t.workers name

let ms_to_ns ms = Int64.of_float (float_of_int ms *. 1e6)

let touch t ~name ~local ~now =
  match Hashtbl.find_opt t.workers name with
  | None ->
      Hashtbl.replace t.workers name
        {
          name;
          local;
          state = Healthy;
          last_seen_ns = now;
          quarantined_at_ns = 0L;
          consecutive_failures = 0;
          leases = 0;
          completions = 0;
          failures = 0;
          heartbeats = 0;
          expiries = 0;
        };
      Registered
  | Some w -> (
      w.last_seen_ns <- now;
      if w.state = Drained then w.state <- Healthy;
      match w.state with
      | Quarantined
        when t.config.quarantine_cooldown_ms > 0
             && Int64.compare (Int64.sub now w.quarantined_at_ns)
                  (ms_to_ns t.config.quarantine_cooldown_ms)
                >= 0 ->
          (* Cooldown served: readmit on probation. The worker must
             complete a cell (or ping with a clean slate) to be healthy
             again. *)
          w.state <- Suspect;
          w.consecutive_failures <- 0;
          Readmitted
      | _ -> Noted)

let heartbeat t ~name ~local ~now =
  let tr = touch t ~name ~local ~now in
  match Hashtbl.find_opt t.workers name with
  | None -> tr
  | Some w -> (
      w.heartbeats <- w.heartbeats + 1;
      match tr with
      | Noted when w.state = Suspect && w.consecutive_failures = 0 ->
          (* Suspect only for silence, not failures: a live ping clears
             it. Failure-tainted workers must complete a cell instead. *)
          w.state <- Healthy;
          Recovered
      | tr -> tr)

let can_lease t ~name =
  match Hashtbl.find_opt t.workers name with
  | None -> true
  | Some w -> ( match w.state with Quarantined -> false | _ -> true)

let state_of t ~name = Option.map (fun w -> w.state) (find t name)

let note_lease t ~name =
  match Hashtbl.find_opt t.workers name with
  | None -> ()
  | Some w -> w.leases <- w.leases + 1

let note_success t ~name =
  match Hashtbl.find_opt t.workers name with
  | None -> Noted
  | Some w ->
      w.completions <- w.completions + 1;
      w.consecutive_failures <- 0;
      if w.state = Suspect then begin
        w.state <- Healthy;
        Recovered
      end
      else Noted

let count_strike t w ~now =
  w.consecutive_failures <- w.consecutive_failures + 1;
  if
    w.state <> Quarantined
    && w.consecutive_failures >= t.config.quarantine_failures
  then begin
    w.state <- Quarantined;
    w.quarantined_at_ns <- now;
    Sick
  end
  else if w.state = Healthy then begin
    w.state <- Suspect;
    Suspected
  end
  else Noted

let note_failure t ~name ~now =
  match Hashtbl.find_opt t.workers name with
  | None -> Noted
  | Some w ->
      w.failures <- w.failures + 1;
      count_strike t w ~now

let note_expiry t ~name ~now =
  match Hashtbl.find_opt t.workers name with
  | None -> Noted
  | Some w ->
      w.expiries <- w.expiries + 1;
      count_strike t w ~now

let suspect t ~name =
  match Hashtbl.find_opt t.workers name with
  | Some w when w.state = Healthy ->
      w.state <- Suspect;
      Suspected
  | _ -> Noted

let drain t ~name =
  match Hashtbl.find_opt t.workers name with
  | None -> ()
  | Some w -> if w.state <> Quarantined then w.state <- Drained

let sorted_workers t =
  (Hashtbl.fold [@lint.allow "D3" "sorted before return"])
    (fun _ w acc -> w :: acc)
    t.workers []
  |> List.sort (fun a b -> compare a.name b.name)

let stale t ~now =
  if t.config.heartbeat_timeout_ms <= 0 then []
  else
    let timeout = ms_to_ns t.config.heartbeat_timeout_ms in
    List.filter
      (fun w ->
        (not w.local)
        && (match w.state with Healthy | Suspect -> true | _ -> false)
        && Int64.compare (Int64.sub now w.last_seen_ns) timeout > 0)
      (sorted_workers t)
    |> List.map (fun w -> w.name)

let worker_to_json w =
  Json.Obj
    [
      ("name", Json.String w.name);
      ("local", Json.Bool w.local);
      ("state", Json.String (state_to_string w.state));
      ("leases", Json.Int w.leases);
      ("completions", Json.Int w.completions);
      ("failures", Json.Int w.failures);
      ("heartbeats", Json.Int w.heartbeats);
      ("expiries", Json.Int w.expiries);
      ("consecutive_failures", Json.Int w.consecutive_failures);
    ]

let stats_to_json t = Json.List (List.map worker_to_json (sorted_workers t))
