module Json = Ncg_obs.Json
module Events = Ncg_obs.Events

type config = {
  addr : Protocol.addr;
  workers : int;
  worker_poll_ms : int;
  events_file : string option;
  tick_ms : int;
  drain : bool;
}

(* Plain atomic flag so a Sys.Signal_handle can request shutdown. *)
let stop_flag = Atomic.make false
let shutdown () = Atomic.set stop_flag true

(* --- Listening ----------------------------------------------------------- *)

let listen addr =
  (match addr with
  | Protocol.Unix_sock path when Sys.file_exists path -> (
      (* Probe the leftover socket: a live daemon accepts, a dead one
         leaves a refusing inode we can safely replace. *)
      let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () ->
          Unix.close probe;
          raise (Unix.Unix_error (Unix.EADDRINUSE, "listen", path))
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
          (try Unix.close probe with Unix.Unix_error _ -> ());
          (try Sys.remove path with Sys_error _ -> ())
      | exception e ->
          (try Unix.close probe with Unix.Unix_error _ -> ());
          raise e)
  | _ -> ());
  let domain, sockaddr =
    match addr with
    | Protocol.Unix_sock path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Protocol.Tcp (host, port) ->
        let ip =
          if host = "" || host = "*" then Unix.inet_addr_any
          else
            try Unix.inet_addr_of_string host
            with Failure _ -> Unix.inet_addr_loopback
        in
        (Unix.PF_INET, Unix.ADDR_INET (ip, port))
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match addr with
  | Protocol.Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
  | Protocol.Unix_sock _ -> ());
  (try
     Unix.bind fd sockaddr;
     Unix.listen fd 64
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

(* --- Subscriber fan-out -------------------------------------------------- *)

type pump = {
  subs_mutex : Mutex.t;
  mutable subs : (int * out_channel) list;  (** id, socket channel *)
  mutable next_sub : int;
  pipe_read : in_channel;
  sink : out_channel;  (** pipe write end, installed as the Events sink *)
  events_file : string option;
  thread : Thread.t option ref;
}

let add_subscriber pump oc =
  Mutex.lock pump.subs_mutex;
  let id = pump.next_sub in
  pump.next_sub <- id + 1;
  pump.subs <- (id, oc) :: pump.subs;
  Mutex.unlock pump.subs_mutex;
  id

let remove_subscriber pump id =
  Mutex.lock pump.subs_mutex;
  pump.subs <- List.filter (fun (i, _) -> i <> id) pump.subs;
  Mutex.unlock pump.subs_mutex

let pump_loop pump =
  let rec loop () =
    match input_line pump.pipe_read with
    | exception End_of_file -> ()
    | line ->
        (match pump.events_file with
        | Some path -> (
            try Ncg_obs.Atomic_file.append_line path line
            with Sys_error _ -> ())
        | None -> ());
        Mutex.lock pump.subs_mutex;
        let subs = pump.subs in
        Mutex.unlock pump.subs_mutex;
        let dead =
          List.filter_map
            (fun (id, oc) ->
              try
                output_string oc line;
                output_char oc '\n';
                flush oc;
                None
              with Sys_error _ | Unix.Unix_error _ -> Some id)
            subs
        in
        List.iter (remove_subscriber pump) dead;
        loop ()
  in
  loop ()

let start_pump events_file =
  let r, w = Unix.pipe ~cloexec:true () in
  let pump =
    {
      subs_mutex = Mutex.create ();
      subs = [];
      next_sub = 0;
      pipe_read = Unix.in_channel_of_descr r;
      sink = Unix.out_channel_of_descr w;
      events_file;
      thread = ref None;
    }
  in
  Events.set_sink (Some pump.sink);
  pump.thread := Some (Thread.create pump_loop pump);
  pump

(* Detach the sink and wait for the pump to deliver everything already
   emitted (closing the write end EOFs the reader); subscriber channels
   stay open so the final events reach them. *)
let drain_pump pump =
  Events.set_sink None;
  (try close_out pump.sink with Sys_error _ -> ());
  (match !(pump.thread) with Some th -> Thread.join th | None -> ());
  (try close_in pump.pipe_read with Sys_error _ -> ())

let close_subscribers pump =
  Mutex.lock pump.subs_mutex;
  let subs = pump.subs in
  pump.subs <- [];
  Mutex.unlock pump.subs_mutex;
  List.iter
    (fun (_, oc) -> try close_out oc with Sys_error _ | Unix.Unix_error _ -> ())
    subs

(* --- In-process workers -------------------------------------------------- *)

let compute_task (task : Scheduler.task) =
  (* Mirror the supervised executor's fault discipline: arm with the
     task id as scope, fire the sweep.cell site, then run — under a
     cancellation control wired to the task's revocation flag, so a
     client cancel trips the next cooperative checkpoint mid-cell. Any
     exception — injected, revoked or real — reports as a failed
     attempt. *)
  Ncg_fault.Inject.arm ~scope:task.Scheduler.task_id;
  Fun.protect ~finally:Ncg_fault.Inject.disarm (fun () ->
      try
        Ncg_fault.Inject.(hit sweep_cell);
        Ncg_fault.Cancel.with_control ~cancel:task.Scheduler.revoked (fun () ->
            Ok
              (Ncg.Experiment.cell_result_to_json
                 (Ncg.Sweep_spec.run_cell task.Scheduler.spec
                    task.Scheduler.cell)))
      with e -> Error (Printexc.to_string e))

let worker_loop ~name ~poll_ms scheduler =
  Scheduler.register_worker ~local:true scheduler ~worker:name;
  let rec loop () =
    if Atomic.get stop_flag then ()
    else
      match
        try Scheduler.lease ~local:true scheduler ~worker:name
        with Ncg_fault.Inject.Fault _ -> Scheduler.Empty
      with
      | Scheduler.Empty | Scheduler.Rejected _ ->
          Unix.sleepf (float_of_int poll_ms /. 1000.);
          loop ()
      | Scheduler.Granted task ->
          (match compute_task task with
          | Ok result ->
              ignore
                (Scheduler.complete scheduler ~worker:name
                   ~task:task.Scheduler.task_id result)
          | Error msg ->
              (* A revoked lease is already resolved daemon-side; the
                 rejected report below is expected and ignored. *)
              ignore
                (Scheduler.fail scheduler ~worker:name
                   ~task:task.Scheduler.task_id ~error:msg));
          loop ()
  in
  loop ()

(* --- Request dispatch ---------------------------------------------------- *)

let handle_request scheduler pump conn_worker oc = function
  | Protocol.Hello { client; worker } ->
      (* A worker hello starts heartbeat monitoring before the first
         lease and binds the connection: dropping it requeues the
         worker's leases. Heartbeat side-connections say
         [worker = false] so their loss cannot spuriously requeue. *)
      if worker then begin
        conn_worker := Some client;
        Scheduler.register_worker scheduler ~worker:client
      end;
      Protocol.Resp_ok
        [ ("server", Json.String "ncg_served"); ("client", Json.String client) ]
  | Protocol.Submit { spec; deadline_ms } -> (
      match Scheduler.submit scheduler ~client:"remote" ?deadline_ms spec with
      | Ok info ->
          Protocol.Resp_ok
            [
              ("job", Json.Int info.Scheduler.job);
              ("total", Json.Int info.Scheduler.total);
              ("cached", Json.Int info.Scheduler.cached);
              ("deduped", Json.Int info.Scheduler.deduped);
              ("queued", Json.Int info.Scheduler.queued);
            ]
      | Error msg -> Protocol.Resp_error msg)
  | Protocol.Status { job } -> (
      match Scheduler.status scheduler ~job with
      | Some fields -> Protocol.Resp_ok fields
      | None -> Protocol.Resp_error (Printf.sprintf "unknown job %d" job))
  | Protocol.Results { job } -> (
      match Scheduler.results scheduler ~job with
      | Ok (rows, quarantined) ->
          Protocol.Resp_ok
            [
              ("header", Json.String Ncg.Experiment.csv_header);
              ("rows", Json.List (List.map (fun r -> Json.String r) rows));
              ( "quarantined",
                Json.List
                  (List.map
                     (fun (alpha, k, msg) ->
                       Json.Obj
                         [
                           ("alpha", Json.Float alpha);
                           ("k", Json.Int k);
                           ("error", Json.String msg);
                         ])
                     quarantined) );
            ]
      | Error msg -> Protocol.Resp_error msg)
  | Protocol.Lease { worker } -> (
      conn_worker := Some worker;
      match
        try Scheduler.lease scheduler ~worker
        with Ncg_fault.Inject.Fault _ as e ->
          (* an injected lease fault answers this poll empty; the
             worker simply polls again *)
          if Events.active () then
            Events.emit ~severity:Events.Warn "service.lease_fault"
              [
                ("worker", Json.String worker);
                ("error", Json.String (Printexc.to_string e));
              ];
          Scheduler.Empty
      with
      | Scheduler.Empty ->
          Protocol.Resp_ok
            [
              ("task", Json.Null);
              ("draining", Json.Bool (Atomic.get stop_flag));
            ]
      | Scheduler.Rejected { state } ->
          Protocol.Resp_ok
            [
              ("task", Json.Null);
              ("rejected", Json.Bool true);
              ("state", Json.String state);
              ("draining", Json.Bool (Atomic.get stop_flag));
            ]
      | Scheduler.Granted task ->
          Protocol.Resp_ok
            [
              ( "task",
                Json.Obj
                  [
                    ("id", Json.Int task.Scheduler.task_id);
                    ("spec", Ncg.Sweep_spec.to_json task.Scheduler.spec);
                    ( "alpha",
                      Json.Float task.Scheduler.cell.Ncg.Experiment.alpha );
                    ("k", Json.Int task.Scheduler.cell.Ncg.Experiment.k);
                    ("attempts", Json.Int task.Scheduler.attempts);
                  ] );
            ])
  | Protocol.Complete { worker; task; result } -> (
      conn_worker := Some worker;
      match Scheduler.complete scheduler ~worker ~task result with
      | Ok () -> Protocol.Resp_ok []
      | Error msg -> Protocol.Resp_error msg)
  | Protocol.Fail { worker; task; error } -> (
      conn_worker := Some worker;
      match Scheduler.fail scheduler ~worker ~task ~error with
      | Ok () -> Protocol.Resp_ok []
      | Error msg -> Protocol.Resp_error msg)
  | Protocol.Ping { worker } -> (
      match Scheduler.heartbeat scheduler ~worker with
      | state, revoked ->
          Protocol.Resp_ok
            [
              ("state", Json.String state);
              ("revoked", Json.List (List.map (fun id -> Json.Int id) revoked));
            ]
      | exception (Ncg_fault.Inject.Fault _ as e) ->
          (* an injected heartbeat fault drops the beat: the worker
             stays silent this interval and the monitor takes over *)
          Protocol.Resp_error (Printexc.to_string e))
  | Protocol.Cancel { job } -> (
      match Scheduler.cancel scheduler ~job with
      | Ok (released, revoked) ->
          Protocol.Resp_ok
            [
              ("job", Json.Int job);
              ("released", Json.Int released);
              ("revoked", Json.Int revoked);
            ]
      | Error msg -> Protocol.Resp_error msg
      | exception (Ncg_fault.Inject.Fault _ as e) ->
          Protocol.Resp_error (Printexc.to_string e))
  | Protocol.Subscribe ->
      (* Reply first, then hand the channel to the pump: every event
         line after this acknowledgment reaches the subscriber. *)
      Protocol.send_line oc
        (Protocol.response_to_json (Protocol.Resp_ok [ ("subscribed", Json.Bool true) ]));
      let id = add_subscriber pump oc in
      ignore id;
      Protocol.Resp_ok [] (* sentinel, not sent — see handler *)
  | Protocol.Stats -> Protocol.Resp_ok (Scheduler.stats_fields scheduler)

let handler scheduler pump fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let conn_worker = ref None in
  let subscribed = ref false in
  let rec loop () =
    match Protocol.recv_line ic with
    | Ok None -> ()
    | Error msg ->
        (try
           Protocol.send_line oc
             (Protocol.response_to_json (Protocol.Resp_error msg))
         with Sys_error _ | Unix.Unix_error _ -> ());
        ()
    | Ok (Some j) -> (
        match Protocol.request_of_json j with
        | Error msg ->
            (try
               Protocol.send_line oc
                 (Protocol.response_to_json (Protocol.Resp_error msg))
             with Sys_error _ | Unix.Unix_error _ -> ());
            loop ()
        | Ok Protocol.Subscribe ->
            ignore
              (handle_request scheduler pump conn_worker oc Protocol.Subscribe);
            subscribed := true;
            (* Drain (and ignore) anything else the subscriber sends;
               EOF ends the stream. The pump owns the out channel now. *)
            let rec drain () =
              match input_line ic with
              | _ -> drain ()
              | exception (End_of_file | Sys_error _) -> ()
            in
            drain ()
        | Ok req ->
            let resp = handle_request scheduler pump conn_worker oc req in
            (try Protocol.send_line oc (Protocol.response_to_json resp)
             with Sys_error _ | Unix.Unix_error _ -> ());
            loop ())
  in
  (try loop () with Sys_error _ | Unix.Unix_error _ -> ());
  (* A dropped worker connection is a worker crash: its leases go back
     to pending immediately. *)
  (match !conn_worker with
  | Some worker ->
      let requeued = Scheduler.worker_lost scheduler ~worker in
      if requeued > 0 && Events.active () then
        Events.emit ~severity:Events.Warn "service.worker_lost"
          [ ("worker", Json.String worker); ("requeued", Json.Int requeued) ]
  | None -> ());
  if not !subscribed then
    (* Subscribers' channels are closed by the pump when it drops them. *)
    try close_out oc with Sys_error _ | Unix.Unix_error _ -> ()

(* --- Serve loop ---------------------------------------------------------- *)

let serve (config : config) scheduler listen_fd =
  Atomic.set stop_flag false;
  (* Writing to a subscriber that vanished must not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let pump = start_pump config.events_file in
  if Events.active () then
    Events.emit "service.start"
      [
        ("addr", Json.String (Protocol.addr_to_string config.addr));
        ("workers", Json.Int config.workers);
      ];
  (* The accept loop (and its handler threads) run in the main domain;
     arm it so daemon-side sites — service.accept, service.dispatch,
     queue.lease — obey an installed plan. *)
  Ncg_fault.Inject.arm ~scope:0;
  let worker_domains =
    List.init config.workers (fun i ->
        Domain.spawn (fun () ->
            worker_loop
              ~name:(Printf.sprintf "domain-%d" i)
              ~poll_ms:config.worker_poll_ms scheduler))
  in
  let handlers = ref [] in
  (* Live connection fds, so shutdown can interrupt handler threads
     parked in blocking reads — close(2) would leave them blocked
     forever, shutdown(2) EOFs them. *)
  let conns = ref [] in
  let conns_mutex = Mutex.create () in
  let register fd =
    Mutex.lock conns_mutex;
    conns := fd :: !conns;
    Mutex.unlock conns_mutex
  in
  let unregister fd =
    Mutex.lock conns_mutex;
    conns := List.filter (fun f -> f <> fd) !conns;
    Mutex.unlock conns_mutex
  in
  let saw_job = ref false in
  let rec accept_loop () =
    if Atomic.get stop_flag then ()
    else begin
      Scheduler.tick scheduler;
      (if config.drain then
         if (not !saw_job) && not (Scheduler.idle scheduler) then
           saw_job := true
         else if !saw_job && Scheduler.idle scheduler then shutdown ());
      let readable, _, _ =
        try Unix.select [ listen_fd ] [] [] (float_of_int config.tick_ms /. 1000.)
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      (match readable with
      | [] -> ()
      | _ :: _ -> (
          match Unix.accept ~cloexec:true listen_fd with
          | exception Unix.Unix_error _ -> ()
          | fd, _ -> (
              match Ncg_fault.Inject.(hit service_accept) with
              | () ->
                  register fd;
                  handlers :=
                    Thread.create
                      (fun () ->
                        Fun.protect
                          ~finally:(fun () -> unregister fd)
                          (fun () -> handler scheduler pump fd))
                      ()
                    :: !handlers
              | exception Ncg_fault.Inject.Fault _ ->
                  (* injected accept fault: drop the connection *)
                  (try Unix.close fd with Unix.Unix_error _ -> ()))));
      accept_loop ()
    end
  in
  accept_loop ();
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (match config.addr with
  | Protocol.Unix_sock path -> (
      try Sys.remove path with Sys_error _ -> ())
  | Protocol.Tcp _ -> ());
  List.iter Domain.join worker_domains;
  if Events.active () then Events.emit "service.stop" [];
  (* Ordering matters: first let the pump deliver every emitted event
     (including service.stop) to subscribers, then shutdown(2) the
     remaining connections so handler threads blocked in read wake with
     EOF, then join them, and only then close the subscriber channels
     they were streaming to. *)
  drain_pump pump;
  Mutex.lock conns_mutex;
  let open_conns = !conns in
  Mutex.unlock conns_mutex;
  List.iter
    (fun fd ->
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    open_conns;
  List.iter
    (fun th -> try Thread.join th with Sys_error _ -> ())
    !handlers;
  close_subscribers pump
