(** Wire protocol of the sweep service: newline-delimited JSON.

    Every request is one compact JSON line tagged
    ["schema": "ncg.service.request/1"], every reply one line tagged
    ["ncg.service.response/1"]. A connection is a sequence of
    request/response pairs — except after a successful {!Subscribe},
    when the server stops reading and streams raw
    {!Ncg_obs.Events}-format JSONL lines until the client disconnects
    ([ncg_top --events unix:PATH] consumes this stream directly).

    The same protocol serves sweep clients ([ncg_submit]: {!Hello},
    {!Submit}, {!Status}, {!Results}, {!Cancel}) and worker processes
    ([ncg_served --worker]: {!Lease}, {!Complete}, {!Fail}, {!Ping});
    the daemon treats a dropped worker connection as a crash and
    requeues its leased cells, and a heartbeat-silent worker the same
    way even when its connection looks alive.

    Schema is ["ncg.service.request/2"]; servers also accept
    ["/1"] requests (a strict subset — same encodings, fewer verbs), so
    PR 8 clients interoperate unchanged. *)

type addr = Unix_sock of string | Tcp of string * int

(** [parse_addr s] accepts [unix:PATH], [tcp:HOST:PORT], and bare
    [PATH] (shorthand for [unix:PATH]). *)
val parse_addr : string -> (addr, string) result

val addr_to_string : addr -> string

type request =
  | Hello of {
      client : string;
      worker : bool;
          (** [true] registers [client] in the daemon's worker pool —
              external workers say this so heartbeat monitoring starts
              before their first lease *)
    }
  | Submit of {
      spec : Ncg.Sweep_spec.t;
      deadline_ms : int option;
          (** job expires this long after submission; expired jobs
              report [state = "expired"] and release queued cells *)
    }
  | Status of { job : int }
  | Results of { job : int }
  | Lease of { worker : string }
  | Complete of { worker : string; task : int; result : Ncg_obs.Json.t }
  | Fail of { worker : string; task : int; error : string }
  | Ping of { worker : string }
      (** heartbeat: proves the worker is alive between leases (long
          cells); also serves as the readmission knock after quarantine *)
  | Cancel of { job : int }
      (** client gives up on a job: queued cells nobody else waits for
          are dropped, leased ones have their lease revoked (the
          worker's in-flight computation is interrupted at the next
          cooperative checkpoint) *)
  | Subscribe
  | Stats

val request_schema : string
val request_to_json : request -> Ncg_obs.Json.t
val request_of_json : Ncg_obs.Json.t -> (request, string) result

(** Replies: [Resp_ok fields] renders as [{"ok": true, ...fields}],
    [Resp_error msg] as [{"ok": false, "error": msg}]. *)
type response =
  | Resp_ok of (string * Ncg_obs.Json.t) list
  | Resp_error of string

val response_schema : string
val response_to_json : response -> Ncg_obs.Json.t
val response_of_json : Ncg_obs.Json.t -> (response, string) result

(** {1 Line transport} *)

(** [send_line oc json] writes the compact rendering plus ['\n'] and
    flushes. *)
val send_line : out_channel -> Ncg_obs.Json.t -> unit

(** [recv_line ic] reads one line and parses it; [Ok None] on EOF. *)
val recv_line : in_channel -> (Ncg_obs.Json.t option, string) result

(** {1 Connecting} *)

(** [connect addr] opens a client socket and returns buffered channels
    over it (closing the returned [out_channel] closes the socket).
    Raises [Unix.Unix_error] on failure. *)
val connect : addr -> in_channel * out_channel
