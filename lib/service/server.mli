(** The daemon's network plane.

    One thread accepts connections ([select] with a short timeout, so
    shutdown and job deadlines are polled); each accepted connection
    gets a handler thread speaking {!Protocol} request/response lines.
    In-process workers are spawned as domains, each looping
    lease → compute → complete against the shared {!Scheduler} — so a
    single [ncg_served] process is a complete sweep engine; external
    worker processes ([ncg_served --worker]) are optional extra
    capacity (and the thing the CI smoke test SIGKILLs).

    {b Event streaming.} [serve] installs a pipe as the global
    {!Ncg_obs.Events} sink: every structured event from any domain —
    scheduler decisions, sweep cells, per-round probe samples — is read
    back line-by-line by a pump thread, appended to [events_file] (if
    any) and fanned out to every subscribed connection. A subscriber
    ([ncg_top --events unix:PATH], [ncg_submit --subscribe]) therefore
    sees exactly the JSONL stream a one-shot run would write to its
    [--events] file, live. Slow or dead subscribers are dropped, never
    waited on.

    The ["service.accept"] fault site fires between [accept] and the
    handler handoff; an injected raise drops that connection (the
    client sees EOF) and the loop continues — connection-level fault
    drills without touching the scheduler. *)

type config = {
  addr : Protocol.addr;
  workers : int;  (** in-process worker domains (0 = none) *)
  worker_poll_ms : int;  (** idle worker sleep between lease attempts *)
  events_file : string option;  (** append every event line here too *)
  tick_ms : int;  (** deadline-check / shutdown-poll period *)
  drain : bool;
      (** exit once at least one job was submitted and all jobs are
          terminal and the queue is empty — CI smoke mode *)
}

(** [listen addr] binds and listens. For a Unix address, a leftover
    socket file from a dead daemon is detected (probe connect) and
    replaced; a live one raises [Unix.Unix_error (EADDRINUSE, _, _)]. *)
val listen : Protocol.addr -> Unix.file_descr

(** [serve config scheduler fd] runs the accept loop until {!shutdown}
    is called (e.g. from a signal handler), or — with [config.drain] —
    until the work is done. Closes [fd], the worker domains and all
    connections before returning; the scheduler is left open (the
    caller closes it). *)
val serve : config -> Scheduler.t -> Unix.file_descr -> unit

(** Ask a running {!serve} to stop. Safe from signal handlers. *)
val shutdown : unit -> unit
