(** The daemon's brain: jobs, cross-client dedup, worker health, and
    the persistent work queue, behind one mutex.

    A {e job} is one client submission: a {!Ncg.Sweep_spec.t} compiled
    to its cell list. On submit every cell is resolved in order of
    preference:

    + {b store hit} — the cell was computed by an earlier job (or an
      earlier daemon, or a one-shot [ncg_experiment --by-cell-seeds]
      sweep over the same store): the cached result is attached
      immediately, no work is queued;
    + {b in-flight hit} — another job already queued the same cell
      (keys are content-addressed, so overlapping grids from different
      clients collide exactly when they should): this job is added to
      the cell's waiter list, no second computation is queued;
    + {b miss} — the cell is enqueued on the {!Ncg_store.Work_queue}.

    When a worker completes a cell, the result is inserted into the
    store {e once} and every waiting job receives it — which is why the
    store's [inserts] counter equals the number of distinct cells
    actually computed, the observable the dedup tests pin down.

    {b Fairness.} Leases are handed out round-robin across clients that
    have pending cells ({!lease} picks each ring client's oldest cell
    in turn), so a huge early submission no longer starves later small
    ones. Entries recovered from a previous daemon's log are credited
    to the pseudo-client ["(recovered)"].

    {b Worker health.} Every worker is tracked in a {!Worker_pool}:
    leases, completions and failures count toward per-worker stats;
    heartbeats ({!heartbeat}, or any lease/complete/fail) refresh
    [last_seen]. {!tick} runs the monitor: leases held by workers
    silent longer than the heartbeat timeout are durably reclaimed
    (charging the attempt), and workers accumulating consecutive
    failed/expired attempts are quarantined — their lease polls answer
    [Rejected] until the cooldown passes and they ping again.

    {b Cancellation.} {!cancel} detaches a job from every unresolved
    cell: queued cells nobody else waits for are dropped, leased ones
    have their lease revoked — the task's [revoked] flag trips the
    in-process computation's next {!Ncg_fault.Cancel} checkpoint, and
    remote owners learn from their next heartbeat reply.

    Failed attempts requeue until the entry's attempts exceed the retry
    budget, then the cell is {e quarantined}: waiters complete with a
    gap (clients report it and exit non-zero). A worker whose
    connection drops has all its leases requeued ({!worker_lost});
    leases held at daemon crash are reclaimed by
    {!Ncg_store.Work_queue.openfile} on restart — the same durable
    requeue path the runtime monitor uses ({!Ncg_store.Work_queue.reclaim}).

    All entry points lock the scheduler mutex; callers (connection
    handler threads, in-process worker domains) need no other
    coordination. The scheduler owns the only handles to the store and
    queue, so the store's single-process lock discipline is
    preserved — remote workers never open the store. *)

type t

type config = {
  store_dir : string;  (** store directory; [queue.log] lives inside it *)
  max_retries : int;  (** attempts allowed per cell = 1 + max_retries *)
  default_deadline_ms : int option;
      (** applied to submissions that carry no deadline *)
  max_cells : int option;  (** per-submission grid-size cap *)
  heartbeat_timeout_ms : int;
      (** reclaim leases from workers silent this long; [0] disables
          the monitor (in-process-only daemons need none) *)
  quarantine_failures : int;
      (** consecutive failed/expired attempts that quarantine a worker *)
  quarantine_cooldown_ms : int;
      (** quarantined workers may knock again (ping) after this long *)
}

(** Opens the store and the work queue. Queue entries recovered from a
    previous daemon run are {b dropped} (cancelled) rather than
    re-executed: their waiter jobs died with the old process, and
    completed cells are in the store anyway. *)
val create : config -> t

val close : t -> unit

(** Facts a submit reply carries. *)
type submit_info = {
  job : int;
  total : int;
  cached : int;  (** cells answered from the store *)
  deduped : int;  (** cells attached to in-flight computations *)
  queued : int;  (** cells newly enqueued *)
}

val submit :
  t -> client:string -> ?deadline_ms:int -> Ncg.Sweep_spec.t ->
  (submit_info, string) result

(** Job progress as response fields: [state] ("running" / "done" /
    "expired" / "cancelled"), [done], [total], [quarantined]. [None]
    for unknown jobs. *)
val status : t -> job:int -> (string * Ncg_obs.Json.t) list option

(** [results t ~job] when the job is done: CSV rows in grid order
    (quarantined cells omitted) plus [(alpha, k, error)] per quarantined
    cell. [Error] while running/expired/cancelled or for unknown jobs. *)
val results :
  t ->
  job:int ->
  (string list * (float * int * string) list, string) result

(** One leased task, self-contained: the worker recomputes the cell
    from [spec] + [cell] alone. *)
type task = {
  task_id : int;  (** queue entry id; echoed in complete/fail *)
  spec : Ncg.Sweep_spec.t;
  cell : Ncg.Experiment.cell;
  attempts : int;
  revoked : bool Atomic.t;
      (** set on cancellation — in-process executors pass it to
          [Ncg_fault.Cancel.with_control] so the next checkpoint
          abandons the cell *)
}

(** A lease poll's outcome: work, no work, or shed (quarantined
    worker — poll again after the cooldown, or keep pinging). *)
type grant = Granted of task | Empty | Rejected of { state : string }

(** [lease t ~worker] registers [worker] in the pool (a lease is a sign
    of life), passes the ["service.dispatch"] fault site, then leases
    the fairness pick. [~local:true] marks in-process domains, exempt
    from heartbeat expiry. *)
val lease : ?local:bool -> t -> worker:string -> grant

(** Register a worker in the pool before its first lease (the [hello]
    with [worker = true], or an in-process domain starting up). *)
val register_worker : ?local:bool -> t -> worker:string -> unit

(** [heartbeat t ~worker] records a ping: fires the
    ["service.heartbeat"] fault site (a raise drops the beat), then
    refreshes the worker's [last_seen], possibly readmitting it from
    quarantine. Returns the worker's pool state and any lease
    revocations queued for it (task ids whose computation it should
    abandon). *)
val heartbeat : t -> worker:string -> string * int list

(** [complete t ~worker ~task result_json] decodes the result, inserts
    it into the store, resolves every waiting job, and completes the
    queue entry. Rejects ids not leased to [worker] and undecodable
    results (the entry is requeued in the latter case). *)
val complete :
  t -> worker:string -> task:int -> Ncg_obs.Json.t -> (unit, string) result

(** [fail t ~worker ~task ~error] records a failed attempt: requeue
    while attempts remain, quarantine otherwise. Counts a strike
    against the worker. *)
val fail : t -> worker:string -> task:int -> error:string -> (unit, string) result

(** Requeue everything leased to [worker] (connection dropped) and mark
    it drained. Returns how many entries were requeued. *)
val worker_lost : t -> worker:string -> int

(** [cancel t ~job] fires the ["service.cancel"] fault site, then marks
    a running job cancelled and detaches it from every unresolved cell.
    Returns [(released, revoked)]: queued cells dropped and leases
    revoked. [Error] for unknown or already-terminal jobs. *)
val cancel : t -> job:int -> (int * int, string) result

(** Expire jobs whose deadline passed (their queued cells are released
    unless another live job waits on them), then run the heartbeat
    monitor: reclaim leases from silent workers and quarantine repeat
    offenders. Call periodically. *)
val tick : t -> unit

(** True when every submitted job is terminal {e and} the queue holds
    no pending or leased work — lets [ncg_served --drain] exit once the
    work is gone. *)
val idle : t -> bool

(** Stats fields for the [stats] verb: jobs, queue counts, store stats,
    per-worker health, request counters. *)
val stats_fields : t -> (string * Ncg_obs.Json.t) list

(** The store handle (the daemon owns the only one). *)
val store : t -> Ncg_store.Store.t
