module Json = Ncg_obs.Json

type t = {
  graph_class : string;
  n : int;
  p : float;
  alphas : float list;
  ks : int list;
  trials : int;
  seed : int;
  budget : int;
  move_budget : int;
  probes : bool;
}

let default =
  {
    graph_class = "tree";
    n = 50;
    p = 0.1;
    alphas = [ 0.5; 1.0; 2.0; 5.0 ];
    ks = [ 2; 3; 4; 5; 1000 ];
    trials = 5;
    seed = 2014;
    budget = 50_000;
    move_budget = 1_000_000;
    probes = true;
  }

let graph_classes = [ "tree"; "gnp"; "ba"; "ws" ]

let validate spec =
  if not (List.mem spec.graph_class graph_classes) then
    Error (Printf.sprintf "unknown graph class %S" spec.graph_class)
  else if spec.n < 2 then Error "n must be at least 2"
  else if spec.trials < 1 then Error "trials must be at least 1"
  else if spec.alphas = [] then Error "empty alpha grid"
  else if spec.ks = [] then Error "empty k grid"
  else if List.exists (fun a -> not (Float.is_finite a)) spec.alphas then
    Error "alphas must be finite"
  else if List.exists (fun k -> k < 1) spec.ks then
    Error "ks must be positive"
  else Ok ()

let make_initial spec =
  match spec.graph_class with
  | "tree" -> fun ~seed -> Experiment.initial_tree ~seed ~n:spec.n
  | "gnp" -> fun ~seed -> Experiment.initial_gnp ~seed ~n:spec.n ~p:spec.p
  | "ba" -> fun ~seed -> Experiment.initial_ba ~seed ~n:spec.n ~m:2
  | "ws" -> fun ~seed -> Experiment.initial_ws ~seed ~n:spec.n ~k:4 ~beta:0.2
  | other -> failwith (Printf.sprintf "unknown graph class %S" other)

let make_config spec (cell : Experiment.cell) =
  {
    (Dynamics.default_config ~alpha:cell.Experiment.alpha ~k:cell.Experiment.k) with
    Dynamics.solver = `Budgeted spec.budget;
    collect_features = false;
    move_budget = spec.move_budget;
  }

let context spec =
  let probe =
    {
      (Dynamics.default_config ~alpha:1.0 ~k:2) with
      Dynamics.solver = `Budgeted spec.budget;
      collect_features = false;
      move_budget = spec.move_budget;
    }
  in
  let solver =
    match probe.Dynamics.solver with
    | `Exact -> "exact"
    | `Greedy -> "greedy"
    | `Budgeted b -> Printf.sprintf "budgeted:%d" b
  in
  let response =
    match probe.Dynamics.response with
    | `Best -> "best"
    | `Local_moves -> "local_moves"
  in
  let sum_mode =
    match probe.Dynamics.sum_mode with
    | `Exact b -> Printf.sprintf "exact:%d" b
    | `Branch_and_bound b -> Printf.sprintf "branch_and_bound:%d" b
    | `Local_search -> "local_search"
  in
  let order =
    match probe.Dynamics.order with
    | `Round_robin -> "round_robin"
    | `Random_sweep s -> Printf.sprintf "random_sweep:%d" s
  in
  [
    ("class", Json.String spec.graph_class);
    ("n", Json.Int spec.n);
    ("p", Json.Float spec.p);
    ("variant", Json.String (Game.variant_to_string probe.Dynamics.variant));
    ("solver", Json.String solver);
    ("response", Json.String response);
    ("sum_mode", Json.String sum_mode);
    ("order", Json.String order);
    ("max_rounds", Json.Int probe.Dynamics.max_rounds);
    ("epsilon", Json.Float probe.Dynamics.epsilon);
    ("move_budget", Json.Int probe.Dynamics.move_budget);
  ]

let cells spec = Experiment.grid ~alphas:spec.alphas ~ks:spec.ks
let cell_seed spec cell = Experiment.cell_seed_of_cell ~seed:spec.seed cell

let cache_key spec cell =
  Experiment.cell_cache_key ~probes:spec.probes ~context:(context spec)
    ~seed:spec.seed ~trials:spec.trials ~cell_seed:(cell_seed spec cell) cell

let run_cell spec cell =
  Experiment.run_cell ~probes:spec.probes ~make_initial:(make_initial spec)
    ~make_config:(make_config spec) ~trials:spec.trials
    ~cell_seed:(cell_seed spec cell) cell

let csv_row spec r =
  Experiment.csv_row ~graph_class:spec.graph_class ~n:spec.n ~p:spec.p
    ~trials:spec.trials r

let schema = Ncg_obs.Schema.service_spec

let to_json spec =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("class", Json.String spec.graph_class);
      ("n", Json.Int spec.n);
      ("p", Json.Float spec.p);
      ("alphas", Json.List (List.map (fun a -> Json.Float a) spec.alphas));
      ("ks", Json.List (List.map (fun k -> Json.Int k) spec.ks));
      ("trials", Json.Int spec.trials);
      ("seed", Json.Int spec.seed);
      ("budget", Json.Int spec.budget);
      ("move_budget", Json.Int spec.move_budget);
      ("probes", Json.Bool spec.probes);
    ]

let of_json j =
  let ( let* ) = Result.bind in
  let member name =
    match j with
    | Json.Obj fields -> (
        match List.assoc_opt name fields with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "spec: missing field %S" name))
    | _ -> Error "spec: not an object"
  in
  let as_int name = function
    | Json.Int i -> Ok i
    | _ -> Error (Printf.sprintf "spec: %S must be an integer" name)
  in
  let as_float name = function
    | Json.Float f -> Ok f
    | Json.Int i -> Ok (float_of_int i)
    | _ -> Error (Printf.sprintf "spec: %S must be a number" name)
  in
  let* s = member "schema" in
  let* () =
    match s with
    | Json.String v when String.equal v schema -> Ok ()
    | Json.String v -> Error (Printf.sprintf "spec: unsupported schema %S" v)
    | _ -> Error "spec: schema must be a string"
  in
  let* graph_class =
    let* v = member "class" in
    match v with
    | Json.String c -> Ok c
    | _ -> Error "spec: \"class\" must be a string"
  in
  let* n = Result.bind (member "n") (as_int "n") in
  let* p = Result.bind (member "p") (as_float "p") in
  let* alphas =
    let* v = member "alphas" in
    match v with
    | Json.List xs ->
        List.fold_left
          (fun acc x ->
            let* acc = acc in
            let* f = as_float "alphas" x in
            Ok (f :: acc))
          (Ok []) xs
        |> Result.map List.rev
    | _ -> Error "spec: \"alphas\" must be a list"
  in
  let* ks =
    let* v = member "ks" in
    match v with
    | Json.List xs ->
        List.fold_left
          (fun acc x ->
            let* acc = acc in
            let* k = as_int "ks" x in
            Ok (k :: acc))
          (Ok []) xs
        |> Result.map List.rev
    | _ -> Error "spec: \"ks\" must be a list"
  in
  let* trials = Result.bind (member "trials") (as_int "trials") in
  let* seed = Result.bind (member "seed") (as_int "seed") in
  let* budget = Result.bind (member "budget") (as_int "budget") in
  let* move_budget = Result.bind (member "move_budget") (as_int "move_budget") in
  let* probes =
    let* v = member "probes" in
    match v with
    | Json.Bool b -> Ok b
    | _ -> Error "spec: \"probes\" must be a boolean"
  in
  let spec =
    {
      graph_class;
      n;
      p;
      alphas;
      ks;
      trials;
      seed;
      budget;
      move_budget;
      probes;
    }
  in
  let* () = validate spec in
  Ok spec
