(** Exact best response for MaxNCG under local knowledge.

    By Proposition 2.1 the worst realizable network for any deviation is
    the view itself, so the best response minimizes
    α·|σ′| + ecc_{H′}(player) over the view H. Following Section 5.3 of
    the paper, for each target eccentricity h the cheapest strategy is a
    minimum dominating set of the (h−1)-th power of H∖{player} in which
    the players that bought an edge towards the player dominate for free;
    we minimize α·|S| + h over h, pruning with h ≥ best-cost-so-far and
    passing the incumbent to the solver as a cardinality cap.

    The [`Exact] solver gives true best responses (what the paper computed
    with Gurobi); [`Budgeted b] caps the branch-and-bound at [b] nodes per
    dominating-set call — exact whenever the search completes, otherwise
    the incumbent (at least greedy quality) is used; [`Greedy] trades
    optimality for speed on very large views. *)

type outcome = {
  targets : int list;  (** the new σ′ in view coordinates *)
  usage : int;  (** eccentricity of the player in H′ *)
  cost : float;  (** α·|targets| + usage *)
}

(** Cost of the player's current strategy evaluated on her view:
    α·|σ_u| + ecc_H(u). Always finite (the view is a ball, hence
    connected). *)
val current_cost : alpha:float -> View.t -> float

(** Eccentricity of the player within her view. *)
val current_usage : View.t -> int

(** [compute ?ws ?solver ?max_edges ?allowed ~alpha view] is an optimal
    outcome; its cost is at most [current_cost]. If no strict improvement
    exists, the current strategy is returned unchanged.

    [ws] lends reusable scratch buffers (BFS + set-cover pool) to the
    radius loop; results never alias them. Pass one {!Workspace.t} per
    logical run, as {!Dynamics.run} does.
    [max_edges] caps the number of bought edges — the bounded-budget
    variant of Ehsani et al. / Bilò et al. (both cited in Section 1).
    [allowed] restricts purchasable targets (view coordinates) — the
    host-graph variant of Bilò et al. 2012b / Demaine et al. 2009.
    @raise Invalid_argument when the player's *current* strategy already
    violates a restriction (the caller owns that invariant). *)
val compute :
  ?ws:Workspace.t ->
  ?solver:[ `Exact | `Budgeted of int | `Greedy ] ->
  ?max_edges:int ->
  ?allowed:int list ->
  alpha:float ->
  View.t ->
  outcome

(** [local_search ~alpha view] is a *better-response* engine: steepest
    descent over single-edge additions, deletions and swaps starting from
    the current strategy. Cheap (no dominating-set solves) and a model of
    boundedly rational play, but only a local optimum — the dynamics it
    induces can stop at profiles that are not LKEs. *)
val local_search : alpha:float -> View.t -> outcome

(** [improving ?ws ?solver ?epsilon ~alpha view] is [Some outcome] iff the
    best response is strictly better than the current strategy by more
    than [epsilon] (default 1e-9). *)
val improving :
  ?ws:Workspace.t ->
  ?solver:[ `Exact | `Budgeted of int | `Greedy ] ->
  ?epsilon:float ->
  alpha:float ->
  View.t ->
  outcome option
