module Graph = Ncg_graph.Graph
module Metrics = Ncg_graph.Metrics
module Rng = Ncg_prng.Rng
module Summary = Ncg_stats.Summary

let paper_alphas =
  [ 0.025; 0.05; 0.1; 0.2; 0.3; 0.4; 0.5; 0.7; 1.0; 1.5; 2.0; 3.0; 5.0; 7.0; 10.0 ]

let paper_ks = [ 2; 3; 4; 5; 6; 7; 10; 15; 20; 25; 30; 1000 ]

let initial_tree ~seed ~n =
  let rng = Rng.create seed in
  let g = Ncg_gen.Random_tree.generate rng n in
  Strategy.random_orientation rng g

let initial_gnp ~seed ~n ~p =
  let rng = Rng.create seed in
  let g = Ncg_gen.Erdos_renyi.connected rng ~n ~p ~max_attempts:10_000 in
  Strategy.random_orientation rng g

let initial_ba ~seed ~n ~m =
  let rng = Rng.create seed in
  let g = Ncg_gen.Barabasi_albert.generate rng ~n ~m in
  Strategy.random_orientation rng g

let initial_ws ~seed ~n ~k ~beta =
  let rng = Rng.create seed in
  let rec attempt tries =
    if tries = 0 then failwith "Experiment.initial_ws: cannot get connected sample"
    else begin
      let g = Ncg_gen.Watts_strogatz.generate rng ~n ~k ~beta in
      if Ncg_graph.Bfs.is_connected g then g else attempt (tries - 1)
    end
  in
  Strategy.random_orientation rng (attempt 1000)

type graph_stats = {
  edges : int;
  diameter : int;
  max_degree : int;
  max_bought : int;
}

let initial_stats strategy =
  let g = Strategy.graph strategy in
  let n = Strategy.n_players strategy in
  let bought = Array.init n (Strategy.bought_count strategy) in
  {
    edges = Graph.size g;
    diameter = (match Metrics.diameter g with Some d -> d | None -> -1);
    max_degree = Metrics.max_degree g;
    max_bought = Ncg_util.Arrayx.max_elt bought;
  }

type run_stats = {
  converged : bool;
  cycled : bool;
  rounds : int;
  total_moves : int;
  quality : float;
  unfairness : float;
  diameter : int;
  max_degree : int;
  max_bought : int;
  min_view : int;
  avg_view : float;
  social_cost : float;
}

let run_one (config : Dynamics.config) strategy0 =
  let result = Dynamics.run config strategy0 in
  let final = result.Dynamics.final in
  let g = Strategy.graph final in
  let n = Strategy.n_players final in
  let bought = Array.init n (Strategy.bought_count final) in
  let views = Features.view_sizes ~k:config.Dynamics.k g in
  let social_cost =
    match Game.social_cost config.Dynamics.variant ~alpha:config.Dynamics.alpha final with
    | Some c -> c
    | None -> nan
  in
  let quality =
    social_cost
    /. Game.social_optimum config.Dynamics.variant ~alpha:config.Dynamics.alpha ~n
  in
  let unfairness =
    match
      Game.unfairness config.Dynamics.variant ~alpha:config.Dynamics.alpha final g
    with
    | Some u -> u
    | None -> nan
  in
  let converged, cycled, rounds =
    match result.Dynamics.outcome with
    | Dynamics.Converged r -> (true, false, r - 1)
    | Dynamics.Cycle_detected r -> (false, true, r)
    | Dynamics.Max_rounds_exceeded -> (false, false, result.Dynamics.rounds)
  in
  {
    converged;
    cycled;
    rounds;
    total_moves = result.Dynamics.total_moves;
    quality;
    unfairness;
    diameter = (match Metrics.diameter g with Some d -> d | None -> -1);
    max_degree = Metrics.max_degree g;
    max_bought = Ncg_util.Arrayx.max_elt bought;
    min_view = Ncg_util.Arrayx.min_elt views;
    avg_view =
      float_of_int (Ncg_util.Arrayx.sum views) /. float_of_int (Array.length views);
    social_cost;
  }

(* Per-trial (and per-cell) seeds come from a SplitMix64 stream keyed on
   the root seed: child [i] gets the stream's [i]-th output. The whole
   array is derived up front, before any fan-out, so the seed a trial
   sees depends only on [(seed, i)] — never on which domain ran it or in
   what order. *)
let derive_seeds ~seed ~count =
  let sm = Ncg_prng.Splitmix64.create (Int64.of_int seed) in
  Array.init count (fun _ -> Int64.to_int (Ncg_prng.Splitmix64.next sm))

let trials_parallel ~domains ~make_initial ~config ~trials:count ~seed =
  let seeds = derive_seeds ~seed ~count in
  (Ncg_util.Parallel.init ~domains count (fun i ->
       run_one config (make_initial ~seed:seeds.(i)))
   [@lint.allow
     "P2"
       "seeds is fully derived before the fan-out and only read by the \
        workers, each at its own index; no domain writes it"])

let trials ~make_initial ~config ~trials:count ~seed =
  trials_parallel ~domains:1 ~make_initial ~config ~trials:count ~seed

(* --- Instrumented parallel sweeps --------------------------------------- *)

type cell = { alpha : float; k : int }

type cell_result = {
  cell : cell;
  runs : run_stats list;
  counters : Ncg_obs.Metrics.snapshot;
  histograms : Ncg_obs.Histogram.snapshot;
  probes : Ncg_obs.Probe.snapshot;
  gc : Ncg_obs.Gc_stats.snapshot;
  spans : Ncg_obs.Span.t;
  wall_ns : int64;
  started_ns : int64;
  domain : int;
}

let grid ~alphas ~ks =
  List.concat_map (fun alpha -> List.map (fun k -> { alpha; k }) ks) alphas

(* Position-independent cell seeds: a pure function of (seed, alpha, k),
   chained through SplitMix64 so nearby cells get unrelated streams. Two
   sweeps that share a cell agree on its seed whatever the rest of their
   grids look like — the property the sweep service's cross-client dedup
   relies on (derive_seeds keys on grid *position*, so overlapping grids
   would disagree on shared cells). *)
let cell_seed_of_cell ~seed (cell : cell) =
  let step state salt =
    Ncg_prng.Splitmix64.next (Ncg_prng.Splitmix64.create (Int64.logxor state salt))
  in
  let s0 = step (Int64.of_int seed) 0x6e63675f63656c6cL (* "ncg_cell" *) in
  let s1 = step s0 (Int64.bits_of_float cell.alpha) in
  let s2 = step s1 (Int64.of_int cell.k) in
  Int64.to_int s2

(* The live progress line: cells done/total, ETA extrapolated from the
   average cell so far, and the just-finished cell's best-response p99.
   Rendered only when stderr is an interactive TTY (or forced on), so
   tests, pipes and CI never see it. *)
let report_progress ~sweep_started ~finished ~total ~histograms =
  let elapsed =
    Ncg_obs.Clock.ns_to_s (Ncg_obs.Clock.elapsed_ns ~since:sweep_started)
  in
  let eta =
    if finished = 0 then nan
    else elapsed /. float_of_int finished *. float_of_int (total - finished)
  in
  let p99 =
    match
      List.assoc_opt
        (Ncg_obs.Histogram.name Ncg_obs.Histogram.best_response)
        histograms
    with
    | Some h when Ncg_obs.Histogram.count h > 0 ->
        Ncg_obs.Histogram.(pp_ns (p99_ns h))
    | Some _ | None -> "-"
  in
  Ncg_obs.Events.progress
    (Printf.sprintf "sweep %d/%d cells  elapsed %.1fs  eta %s  p99(best_response) %s"
       finished total elapsed
       (if Float.is_nan eta then "-" else Printf.sprintf "%.1fs" eta)
       p99)

let run_cell ?(probes = true) ~make_initial ~make_config ~trials:count
    ~cell_seed (cell : cell) =
  let started = Ncg_obs.Clock.now_ns () in
  (* The round-level probe series of the cell's exemplar trajectory
     (trial 0). One trial bounds the payload and the probing overhead
     while still being a pure function of the cell: trial 0's seed comes
     from [derive_seeds] before any fan-out, so the series are identical
     whatever [domains] is. *)
  let probe_snap = ref (Ncg_obs.Probe.empty_snapshot ()) in
  let ((runs, spans, gc, wall_ns), counters), histograms =
    (* Histogram and counter collectors are installed in the domain
       that runs the cell, so the snapshots depend only on the cell's
       own work — the determinism contract under any fan-out. The GC
       word delta likewise: Gc.counters is domain-local. *)
    Ncg_obs.Histogram.collect (fun () ->
        Ncg_obs.Metrics.collect (fun () ->
            let gc_before = Ncg_obs.Gc_stats.capture () in
            let runs, spans =
              Ncg_obs.Span.trace
                (Printf.sprintf "cell alpha=%g k=%d" cell.alpha cell.k)
                (fun () ->
                  let config = make_config cell in
                  let seeds = derive_seeds ~seed:cell_seed ~count in
                  List.init count (fun j ->
                      Ncg_obs.Span.with_span
                        (Printf.sprintf "trial %d" j)
                        (fun () ->
                          if probes && j = 0 then begin
                            let r, snap =
                              Ncg_obs.Probe.collect (fun () ->
                                  run_one config
                                    (make_initial ~seed:seeds.(j)))
                            in
                            probe_snap := snap;
                            r
                          end
                          else run_one config (make_initial ~seed:seeds.(j)))))
            in
            let gc =
              Ncg_obs.Gc_stats.diff ~before:gc_before
                ~after:(Ncg_obs.Gc_stats.capture ())
            in
            let wall_ns = Ncg_obs.Clock.elapsed_ns ~since:started in
            Ncg_obs.Histogram.record_ns Ncg_obs.Histogram.sweep_cell wall_ns;
            (runs, spans, gc, wall_ns)))
  in
  {
    cell;
    runs;
    counters;
    histograms;
    probes = !probe_snap;
    gc;
    spans;
    wall_ns;
    started_ns = started;
    domain = (Domain.self () :> int);
  }

(* --- Persistent cell cache (lib/store) ---------------------------------- *)

module Json = Ncg_obs.Json

(* Bumped on any change to the cell_result serialization below. Distinct
   from Cache_key.schema_version (the key layout); both participate in
   the key, so either bump invalidates old records. /2: the fault layer
   registered new Metrics counters (dynamics.move_steps and friends), so
   counter snapshots from /1 records would decode with different shapes
   than a recompute produces. /3: Cancel checkpoints extended into the
   set-cover solver's inner loops, so dynamics.move_steps counts differ
   from /2 whenever a step budget is active (ncg_experiment always sets
   one) — cached /2 cells would not be byte-identical to recomputes. /4:
   the CSR engine computes distance rows once per best-response call
   instead of once per radius, so bfs.calls (and the other counter
   snapshots) differ from /3 even though the CSV-visible results are
   bit-identical — a cached /3 cell would disagree with a recompute on
   the counters section. /5: the payload gained the round-level probe
   series of the exemplar trial, new branch-and-bound cutoff counters
   registered (shape change), and probing's per-round social-cost BFS
   shifts bfs.calls — /4 records would disagree with a recompute on all
   three. *)
let cell_payload_schema = Ncg_obs.Schema.store_cell

let bool_of_json name = function
  | Json.Bool b -> b
  | _ -> failwith (Printf.sprintf "field %S: expected a bool" name)

let int_of_json name = function
  | Json.Int i -> i
  | _ -> failwith (Printf.sprintf "field %S: expected an int" name)

let float_of_json name = function
  | Json.Float f -> f
  | Json.Int i -> float_of_int i
  | Json.Null -> nan (* NaN serializes as null; restore it *)
  | _ -> failwith (Printf.sprintf "field %S: expected a number" name)

let field fields name =
  match List.assoc_opt name fields with
  | Some v -> v
  | None -> failwith (Printf.sprintf "missing field %S" name)

let run_stats_to_json (r : run_stats) =
  Json.Obj
    [
      ("converged", Json.Bool r.converged);
      ("cycled", Json.Bool r.cycled);
      ("rounds", Json.Int r.rounds);
      ("total_moves", Json.Int r.total_moves);
      ("quality", Json.Float r.quality);
      ("unfairness", Json.Float r.unfairness);
      ("diameter", Json.Int r.diameter);
      ("max_degree", Json.Int r.max_degree);
      ("max_bought", Json.Int r.max_bought);
      ("min_view", Json.Int r.min_view);
      ("avg_view", Json.Float r.avg_view);
      ("social_cost", Json.Float r.social_cost);
    ]

let run_stats_of_json = function
  | Json.Obj fields ->
      let f = field fields in
      {
        converged = bool_of_json "converged" (f "converged");
        cycled = bool_of_json "cycled" (f "cycled");
        rounds = int_of_json "rounds" (f "rounds");
        total_moves = int_of_json "total_moves" (f "total_moves");
        quality = float_of_json "quality" (f "quality");
        unfairness = float_of_json "unfairness" (f "unfairness");
        diameter = int_of_json "diameter" (f "diameter");
        max_degree = int_of_json "max_degree" (f "max_degree");
        max_bought = int_of_json "max_bought" (f "max_bought");
        min_view = int_of_json "min_view" (f "min_view");
        avg_view = float_of_json "avg_view" (f "avg_view");
        social_cost = float_of_json "social_cost" (f "social_cost");
      }
  | _ -> failwith "run_stats: expected an object"

let cell_result_to_json (r : cell_result) =
  Json.Obj
    [
      ("schema", Json.String cell_payload_schema);
      ("alpha", Json.Float r.cell.alpha);
      ("k", Json.Int r.cell.k);
      ("runs", Json.List (List.map run_stats_to_json r.runs));
      ("counters", Ncg_obs.Metrics.to_json r.counters);
      ("histograms", Ncg_obs.Histogram.to_json_exact r.histograms);
      ("probes", Ncg_obs.Probe.to_json r.probes);
      ("gc", Ncg_obs.Gc_stats.to_json r.gc);
      ("spans", Ncg_obs.Span.to_json_exact r.spans);
      ("wall_ns", Json.Int (Int64.to_int r.wall_ns));
      ("started_ns", Json.Int (Int64.to_int r.started_ns));
      ("domain", Json.Int r.domain);
    ]

let cell_result_of_json = function
  | Json.Obj fields -> (
      let f = field fields in
      let sub name decode =
        match decode (f name) with
        | Ok v -> v
        | Error msg -> failwith (Printf.sprintf "field %S: %s" name msg)
      in
      try
        (match f "schema" with
        | Json.String s when s = cell_payload_schema -> ()
        | Json.String s -> failwith (Printf.sprintf "unknown schema %S" s)
        | _ -> failwith "missing schema");
        let runs =
          match f "runs" with
          | Json.List items -> List.map run_stats_of_json items
          | _ -> failwith "field \"runs\": expected a list"
        in
        Ok
          {
            cell =
              {
                alpha = float_of_json "alpha" (f "alpha");
                k = int_of_json "k" (f "k");
              };
            runs;
            counters = sub "counters" Ncg_obs.Metrics.of_json;
            histograms = sub "histograms" Ncg_obs.Histogram.of_json_exact;
            probes = sub "probes" Ncg_obs.Probe.of_json;
            gc = sub "gc" Ncg_obs.Gc_stats.of_json;
            spans = sub "spans" Ncg_obs.Span.of_json_exact;
            wall_ns = Int64.of_int (int_of_json "wall_ns" (f "wall_ns"));
            started_ns = Int64.of_int (int_of_json "started_ns" (f "started_ns"));
            domain = int_of_json "domain" (f "domain");
          }
      with Failure msg -> Error ("cell_result_of_json: " ^ msg))
  | _ -> Error "cell_result_of_json: expected an object"

let cell_cache_key ?(probes = true) ~context ~seed ~trials ~cell_seed
    (cell : cell) =
  Ncg_store.Cache_key.make
    (context
    @ [
        ("payload_schema", Json.String cell_payload_schema);
        ("probes", Json.Bool probes);
        ("seed", Json.Int seed);
        ("alpha", Json.Float cell.alpha);
        ("k", Json.Int cell.k);
        ("trials", Json.Int trials);
        ("cell_seed", Json.Int cell_seed);
      ])

(* A record that fails to parse (schema drift, hand-edited store) is
   treated as a miss: the cell recomputes and the fresh insert
   supersedes the bad record. *)
let store_lookup store key =
  match Ncg_store.Store.lookup store key with
  | None -> None
  | Some payload -> (
      match Json.of_string payload with
      | Error _ -> None
      | Ok json -> (
          match cell_result_of_json json with Ok r -> Some r | Error _ -> None))

let store_insert store key r =
  Ncg_store.Store.insert store key (Json.to_string (cell_result_to_json r))

type cell_failure = {
  index : int;
  cell : cell;
  cell_seed : int;
  attempts : int;
  kind : Ncg_fault.Executor.kind;
  exn_text : string;
  exn : exn;
}

let cell_failure_to_json (f : cell_failure) =
  Json.Obj
    [
      ("index", Json.Int f.index);
      ("alpha", Json.Float f.cell.alpha);
      ("k", Json.Int f.cell.k);
      ("cell_seed", Json.Int f.cell_seed);
      ("attempts", Json.Int f.attempts);
      ("kind", Json.String (Ncg_fault.Executor.kind_to_string f.kind));
      ("error", Json.String f.exn_text);
    ]

let sweep_supervised ?(domains = 1) ?(max_retries = 0) ?(retry_backoff_ns = 0L)
    ?cell_deadline_ns ?store ?(store_context = []) ?(probes = true) ?cell_seeds
    ~make_initial ~make_config ~cells ~trials:count ~seed () =
  let cells = Array.of_list cells in
  let total = Array.length cells in
  let cell_seeds =
    match cell_seeds with
    | Some a ->
        if Array.length a <> total then
          invalid_arg "sweep_supervised: cell_seeds length mismatch";
        a
    | None -> derive_seeds ~seed ~count:total
  in
  let keys =
    match store with
    | None -> [||]
    | Some _ ->
        Array.init total (fun i ->
            cell_cache_key ~probes ~context:store_context ~seed ~trials:count
              ~cell_seed:cell_seeds.(i) cells.(i))
  in
  (* Cached cells are resolved up front on the calling domain, before the
     fan-out: domains then only ever run cells that truly need computing,
     and hit/miss metrics land in the caller's collector. The fault plane
     is only armed inside executor tasks, so cached resolution never
     faults. *)
  let cached =
    match store with
    | None -> [||]
    | Some s -> Array.init total (fun i -> store_lookup s keys.(i))
  in
  let sweep_started = Ncg_obs.Clock.now_ns () in
  let finished = Atomic.make 0 in
  let emit_cell_event ~index ~cell ~wall_ns ~gc ~was_cached ~done_count =
    if Ncg_obs.Events.active () then
      Ncg_obs.Events.emit "sweep.cell"
        [
          ("index", Json.Int index);
          ("alpha", Json.Float cell.alpha);
          ("k", Json.Int cell.k);
          ("trials", Json.Int count);
          ("cached", Json.Bool was_cached);
          ("wall_seconds", Json.Float (Ncg_obs.Clock.ns_to_s wall_ns));
          ( "gc_allocated_words",
            Json.Float (Ncg_obs.Gc_stats.allocated_words gc) );
          ("done", Json.Int done_count);
          ("total", Json.Int total);
        ]
  in
  let task ~index:i ~attempt:_ =
    let cell = cells.(i) in
    match if i < Array.length cached then cached.(i) else None with
    | Some r ->
        let done_count = Atomic.fetch_and_add finished 1 + 1 in
        emit_cell_event ~index:i ~cell ~wall_ns:r.wall_ns ~gc:r.gc
          ~was_cached:true ~done_count;
        report_progress ~sweep_started ~finished:done_count ~total
          ~histograms:r.histograms;
        r
    | None ->
        Ncg_fault.Inject.(hit sweep_cell);
        let r =
          run_cell ~probes ~make_initial ~make_config ~trials:count
            ~cell_seed:cell_seeds.(i) cell
        in
        (* Persist as soon as the cell finishes, on the domain that ran
           it: a SIGKILL later in the sweep loses only in-flight cells.
           An insert that fails (e.g. an injected short write) fails the
           attempt — durability is part of the cell — and the retry
           recomputes and re-appends. *)
        (match store with Some s -> store_insert s keys.(i) r | None -> ());
        let done_count = Atomic.fetch_and_add finished 1 + 1 in
        emit_cell_event ~index:i ~cell ~wall_ns:r.wall_ns ~gc:r.gc
          ~was_cached:false ~done_count;
        report_progress ~sweep_started ~finished:done_count ~total
          ~histograms:r.histograms;
        r
  in
  let on_event (ev : Ncg_fault.Executor.event) =
    match ev with
    | Ncg_fault.Executor.Attempt_started _ -> ()
    | Ncg_fault.Executor.Attempt_failed
        { index; attempt; kind; exn_text; will_retry } ->
        if Ncg_obs.Events.active () then
          Ncg_obs.Events.emit ~severity:Ncg_obs.Events.Warn
            "sweep.cell.attempt_failed"
            [
              ("index", Json.Int index);
              ("alpha", Json.Float cells.(index).alpha);
              ("k", Json.Int cells.(index).k);
              ("attempt", Json.Int attempt);
              ("kind", Json.String (Ncg_fault.Executor.kind_to_string kind));
              ("error", Json.String exn_text);
              ("will_retry", Json.Bool will_retry);
            ]
    | Ncg_fault.Executor.Quarantined fl ->
        let done_count = Atomic.fetch_and_add finished 1 + 1 in
        if Ncg_obs.Events.active () then
          Ncg_obs.Events.emit ~severity:Ncg_obs.Events.Error
            "sweep.cell.quarantined"
            [
              ("index", Json.Int fl.index);
              ("alpha", Json.Float cells.(fl.index).alpha);
              ("k", Json.Int cells.(fl.index).k);
              ("cell_seed", Json.Int cell_seeds.(fl.index));
              ("attempts", Json.Int fl.attempts);
              ("kind", Json.String (Ncg_fault.Executor.kind_to_string fl.kind));
              ("error", Json.String fl.exn_text);
              ("done", Json.Int done_count);
              ("total", Json.Int total);
            ];
        report_progress ~sweep_started ~finished:done_count ~total
          ~histograms:[]
  in
  let outcomes =
    Ncg_fault.Executor.map ~domains ~max_retries ~backoff_ns:retry_backoff_ns
      ?deadline_ns:cell_deadline_ns ~on_event task total
  in
  Ncg_obs.Events.progress_done ();
  Array.to_list outcomes
  |> List.mapi (fun i outcome ->
         match outcome with
         | Ok r -> Ok r
         | Error (fl : Ncg_fault.Executor.failure) ->
             Error
               {
                 index = i;
                 cell = cells.(i);
                 cell_seed = cell_seeds.(i);
                 attempts = fl.attempts;
                 kind = fl.kind;
                 exn_text = fl.exn_text;
                 exn = fl.exn;
               })

let sweep_failures outcomes =
  List.filter_map (function Ok _ -> None | Error f -> Some f) outcomes

let sweep ?domains ?store ?store_context ?probes ~make_initial ~make_config
    ~cells ~trials ~seed () =
  let outcomes =
    sweep_supervised ?domains ?store ?store_context ?probes ~make_initial
      ~make_config ~cells ~trials ~seed ()
  in
  (* Legacy contract: every cell still ran (the executor quarantines
     instead of aborting), then the lowest-index failure re-raises —
     deterministic for a deterministic task, like Parallel.chunked_map. *)
  List.map (function Ok r -> r | Error f -> raise f.exn) outcomes

let sweep_counters results =
  Ncg_obs.Metrics.total (List.map (fun r -> r.counters) results)

let sweep_histograms results =
  Ncg_obs.Histogram.total (List.map (fun r -> r.histograms) results)

let sweep_gc results = Ncg_obs.Gc_stats.total (List.map (fun r -> r.gc) results)

let sweep_wall_ns results =
  List.fold_left (fun acc r -> Int64.add acc r.wall_ns) 0L results

let summarize f runs = Summary.of_floats (Array.of_list (List.map f runs))

let fraction p runs =
  let total = List.length runs in
  if total = 0 then nan
  else
    float_of_int (List.length (List.filter p runs)) /. float_of_int total

(* --- CSV rendering -------------------------------------------------------
   One definition shared by ncg_experiment and the sweep service, so a
   served cell's row is byte-identical to a one-shot run's by
   construction — the cross-process determinism contract is a string
   equality, not a float-formatting coincidence. *)

let csv_header =
  "class,n,p,alpha,k,trials,converged_frac,cycled_frac,rounds_mean,rounds_ci,\
   quality_mean,quality_ci,unfairness_mean,unfairness_ci,diameter_mean,\
   max_degree_mean,max_bought_mean,min_view_mean,avg_view_mean,social_cost_mean"

let csv_row ~graph_class ~n ~p ~trials (r : cell_result) =
  let runs = r.runs in
  let mean f = (summarize f runs).Summary.mean in
  let quality = summarize (fun r -> r.quality) runs in
  let rounds = summarize (fun r -> float_of_int r.rounds) runs in
  let unfair = summarize (fun r -> r.unfairness) runs in
  Printf.sprintf
    "%s,%d,%g,%g,%d,%d,%.2f,%.2f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f"
    graph_class n p r.cell.alpha r.cell.k trials
    (fraction (fun r -> r.converged) runs)
    (fraction (fun r -> r.cycled) runs)
    rounds.Summary.mean rounds.Summary.ci95 quality.Summary.mean
    quality.Summary.ci95 unfair.Summary.mean unfair.Summary.ci95
    (mean (fun r -> float_of_int r.diameter))
    (mean (fun r -> float_of_int r.max_degree))
    (mean (fun r -> float_of_int r.max_bought))
    (mean (fun r -> float_of_int r.min_view))
    (mean (fun r -> r.avg_view))
    (mean (fun r -> r.social_cost))
