type t = {
  bfs : Ncg_graph.Bfs.scratch;
  cover : Ncg_solver.Set_cover.workspace;
  dom : Ncg_solver.Dominating_set.workspace;
}

let create ?(capacity = 0) () =
  {
    bfs = Ncg_graph.Bfs.create_scratch ~capacity ();
    cover = Ncg_solver.Set_cover.create_workspace ();
    dom = Ncg_solver.Dominating_set.create_workspace ();
  }
