(** A player's local knowledge: the subgraph induced by her
    k-neighbourhood, plus the part of the ownership profile she can see.

    Vertices of the view are renamed to [0 .. size-1]; {!to_host} /
    {!of_host} translate. Since every neighbour of the player is at
    distance 1 ≤ k, her own purchases and the edges bought towards her are
    always fully visible. *)

type t = {
  player : int;  (** the player, in view coordinates *)
  k : int;
  graph : Ncg_graph.Graph.t;  (** H, the induced subgraph on β_{G,k}(u) *)
  mapping : Ncg_graph.Subgraph.mapping;
  owned : int list;  (** u's targets, view coordinates *)
  in_buyers : int list;  (** players that bought an edge to u, view coords *)
  dist : int array;  (** distances from the player within H *)
}

(** [extract strategy g ~k u] — [g] must be [Strategy.graph strategy].
    [?scratch] lends reusable BFS buffers for the ball search and the
    distance pass (the view does not alias them afterwards).
    @raise Invalid_argument if [k < 1]. *)
val extract :
  ?scratch:Ncg_graph.Bfs.scratch -> Strategy.t -> Ncg_graph.Graph.t -> k:int -> int -> t

(** Number of vertices the player sees (herself included) — the paper's
    "view size" metric of Figure 5. *)
val size : t -> int

(** Vertices of H at distance exactly [k] from the player — the frontier
    set F of Proposition 2.2. View coordinates. *)
val frontier : t -> int list

(** [with_strategy v targets] is H′: the view graph with the player's
    bought edges replaced by edges towards [targets] (view coordinates).
    Edges bought towards the player are kept.
    @raise Invalid_argument on a self target or out-of-range target. *)
val with_strategy : t -> int list -> Ncg_graph.Graph.t

(** Translate view vertex ids to host graph ids. *)
val to_host : t -> int list -> int list

(** Translate host ids to view ids. @raise Invalid_argument if some vertex
    is not visible. *)
val of_host : t -> int list -> int list
