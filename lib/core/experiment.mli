(** Reusable experiment harness behind Tables I–II and Figures 5–10.

    Builds seeded initial configurations (uniform random trees or
    connected G(n,p) with fair-coin edge ownership — the paper's setup),
    runs the round-robin dynamics, and aggregates per-trial statistics
    into mean ± 95% CI summaries. Every entry point takes a [seed];
    trial [i] uses an independent stream split from it, so any data point
    is reproducible in isolation. *)

(** The α grid of Section 5.1. *)
val paper_alphas : float list

(** The k grid of Section 5.1; 1000 plays the full-knowledge game. *)
val paper_ks : int list

(** [initial_tree ~seed ~n] is a uniform random tree with random edge
    ownership. *)
val initial_tree : seed:int -> n:int -> Strategy.t

(** [initial_gnp ~seed ~n ~p] resamples G(n,p) until connected, then
    assigns random ownership. *)
val initial_gnp : seed:int -> n:int -> p:float -> Strategy.t

(** Barabási–Albert initial configuration (scale-free; always connected),
    random ownership. Not used by the paper — an extra robustness class. *)
val initial_ba : seed:int -> n:int -> m:int -> Strategy.t

(** Watts–Strogatz initial configuration, resampled until connected. *)
val initial_ws : seed:int -> n:int -> k:int -> beta:float -> Strategy.t

(** Statistics of an initial configuration (Tables I and II). *)
type graph_stats = {
  edges : int;
  diameter : int;
  max_degree : int;
  max_bought : int;
}

val initial_stats : Strategy.t -> graph_stats

(** Per-run statistics extracted from a finished dynamics. *)
type run_stats = {
  converged : bool;
  cycled : bool;
  rounds : int;  (** rounds that performed at least one change *)
  total_moves : int;
  quality : float;  (** social cost / social optimum at the end *)
  unfairness : float;
  diameter : int;
  max_degree : int;
  max_bought : int;
  min_view : int;
  avg_view : float;
  social_cost : float;
}

(** [run_one config strategy] runs the dynamics and summarizes. *)
val run_one : Dynamics.config -> Strategy.t -> run_stats

(** [derive_seeds ~seed ~count] is the array of child seeds used for
    trials (and sweep cells): element [i] is the [i]-th output of a
    SplitMix64 stream keyed on [seed]. Exposed so tools can re-run any
    single trial of a sweep in isolation. *)
val derive_seeds : seed:int -> count:int -> int array

(** [trials ~make_initial ~config ~trials ~seed] runs several seeds
    sequentially. *)
val trials :
  make_initial:(seed:int -> Strategy.t) ->
  config:Dynamics.config ->
  trials:int ->
  seed:int ->
  run_stats list

(** [trials_parallel ~domains …] fans the trials out over OCaml domains.
    Trials are independent and individually seeded, so the result list is
    identical to {!trials} regardless of [domains]. *)
val trials_parallel :
  domains:int ->
  make_initial:(seed:int -> Strategy.t) ->
  config:Dynamics.config ->
  trials:int ->
  seed:int ->
  run_stats list

(** {1 Instrumented parallel sweeps}

    The engine behind [bin/ncg_experiment] and the bench harness: a grid
    of [(alpha, k)] cells fanned out over OCaml domains, each cell
    carrying its own telemetry. Determinism contract: for a fixed
    [seed], [runs], [counters], the histogram {e sample counts}
    ({!Ncg_obs.Histogram.counts_only} of [histograms]) and the GC
    {e allocated words} ({!Ncg_obs.Gc_stats.allocated_words} of [gc])
    of every cell are identical whatever [domains] is — cells draw
    their RNG streams from {!derive_seeds} before the fan-out, and all
    collectors are installed domain-locally inside the cell. Only
    [wall_ns], [started_ns], [domain], span durations, histogram bucket
    placement and GC collection counts vary between runs.

    While a sweep runs, each finished cell emits a ["sweep.cell"]
    structured event (when an {!Ncg_obs.Events} sink is installed) and
    refreshes a live progress line on stderr (TTY only; see
    {!Ncg_obs.Events.set_progress}). *)

(** One sweep cell of the paper's Section 5 grids. *)
type cell = { alpha : float; k : int }

type cell_result = {
  cell : cell;
  runs : run_stats list;  (** identical to a sequential run of the cell *)
  counters : Ncg_obs.Metrics.snapshot;
      (** per-cell counts: BFS calls, solver nodes, best responses, … *)
  histograms : Ncg_obs.Histogram.snapshot;
      (** per-cell latency histograms (best response, set cover, …) *)
  probes : Ncg_obs.Probe.snapshot;
      (** round-level series (social cost, awake set, …) of the cell's
          exemplar trajectory (trial 0); all-empty when the sweep ran
          with [probes:false] *)
  gc : Ncg_obs.Gc_stats.snapshot;  (** GC delta across the cell *)
  spans : Ncg_obs.Span.t;  (** per-cell span tree (one child per trial) *)
  wall_ns : int64;  (** cell wall time on its domain *)
  started_ns : int64;
      (** monotonic start of the cell, for timeline export *)
  domain : int;  (** id of the domain that ran the cell *)
}

(** [grid ~alphas ~ks] is the row-major cell list of the cross product. *)
val grid : alphas:float list -> ks:int list -> cell list

(** [run_cell ~make_initial ~make_config ~trials ~cell_seed cell] runs a
    single instrumented cell exactly as {!sweep} would: [cell_seed] must
    be the cell's entry in [derive_seeds ~seed ~count:(List.length
    cells)] for the sweep being reproduced. This is the engine behind
    [ncg_experiment --only-cell].

    [probes] (default true) installs an {!Ncg_obs.Probe} collector
    around trial 0, recording the round-level convergence series of the
    cell's exemplar trajectory into the [probes] field. The switch never
    touches the RNG streams or [runs] — CSVs are byte-identical either
    way — but it does shift [counters] (probing evaluates the social
    cost each round) and the GC delta, so it participates in
    {!cell_cache_key}. *)
val run_cell :
  ?probes:bool ->
  make_initial:(seed:int -> Strategy.t) ->
  make_config:(cell -> Dynamics.config) ->
  trials:int ->
  cell_seed:int ->
  cell ->
  cell_result

(** A quarantined sweep cell: it failed [attempts] attempts (under the
    retry budget) and the sweep completed without it. *)
type cell_failure = {
  index : int;  (** position in the sweep's cell list *)
  cell : cell;
  cell_seed : int;  (** the cell's {!derive_seeds} entry *)
  attempts : int;
  kind : Ncg_fault.Executor.kind;
  exn_text : string;
  exn : exn;  (** the final attempt's exception, for re-raising *)
}

(** Failure-report entry (index, α, k, seed, attempts, kind, error) —
    the elements of the telemetry ["sweep.failures"] list. *)
val cell_failure_to_json : cell_failure -> Ncg_obs.Json.t

(** [sweep_supervised ?domains ?max_retries ?retry_backoff_ns
    ?cell_deadline_ns ?store ?store_context ~make_initial ~make_config
    ~cells ~trials ~seed ()] runs every cell ([trials] dynamics each)
    under the supervised work-queue executor
    ({!Ncg_fault.Executor.map}), returning one outcome per cell in cell
    order: [Ok result], or [Error failure] for a cell that exhausted
    [max_retries] (default 0) extra attempts and was quarantined — the
    sweep always completes every other cell.

    Per attempt, a cell runs under [cell_deadline_ns] (watchdog domain +
    cooperative {!Ncg_fault.Cancel.checkpoint} polls in the dynamics
    loop); retries back off [retry_backoff_ns * attempt] (a
    deterministic schedule). Each cell's task is armed for fault
    injection with [scope = index] (see {!Ncg_fault.Inject}), and passes
    through the ["sweep.cell"] fault site. Failed attempts emit
    ["sweep.cell.attempt_failed"] (warn) and quarantines
    ["sweep.cell.quarantined"] (error) structured events.

    With [?store], each cell is looked up by its {!cell_cache_key}
    before the fan-out; hits are returned without recomputation
    (their ["sweep.cell"] event carries ["cached": true]) and misses are
    appended to the store as soon as they finish, on the domain that ran
    them — killing the process mid-sweep loses at most the in-flight
    cells, and a quarantined cell simply stays missing, so a later
    [--resume] run (with the fault gone) computes exactly the
    quarantined cells. [store_context] must fingerprint everything
    outside [(seed, cells, trials)] that determines a cell's output:
    graph class and parameters, solver budget, dynamics settings. Store
    traffic happens outside the per-cell collectors, so a cell's
    [counters]/[histograms]/[gc] are identical whether it was computed
    or restored.

    Determinism under failure: successful cells are identical (same
    contract as {!sweep}) to a sequential no-fault run, for any
    [domains], retry budget or fault plan; and for a fixed plan (and
    deterministic faults — raises, not wall-clock deadlines) the failure
    vector is identical too.

    [cell_seeds] overrides the per-cell seed array (one entry per cell,
    raising [Invalid_argument] on a length mismatch) in place of
    {!derive_seeds}; pass {!cell_seed_of_cell}-derived seeds to make the
    sweep agree with the service's position-independent derivation. *)
val sweep_supervised :
  ?domains:int ->
  ?max_retries:int ->
  ?retry_backoff_ns:int64 ->
  ?cell_deadline_ns:int64 ->
  ?store:Ncg_store.Store.t ->
  ?store_context:(string * Ncg_obs.Json.t) list ->
  ?probes:bool ->
  ?cell_seeds:int array ->
  make_initial:(seed:int -> Strategy.t) ->
  make_config:(cell -> Dynamics.config) ->
  cells:cell list ->
  trials:int ->
  seed:int ->
  unit ->
  (cell_result, cell_failure) result list

(** The quarantined cells of a {!sweep_supervised} outcome, in cell
    order. *)
val sweep_failures :
  (cell_result, cell_failure) result list -> cell_failure list

(** [sweep ?domains ?store ?store_context …] is {!sweep_supervised}
    with no retries and no deadline, re-raising the lowest-index
    failure's exception after every other cell completed (the legacy
    all-or-nothing contract). *)
val sweep :
  ?domains:int ->
  ?store:Ncg_store.Store.t ->
  ?store_context:(string * Ncg_obs.Json.t) list ->
  ?probes:bool ->
  make_initial:(seed:int -> Strategy.t) ->
  make_config:(cell -> Dynamics.config) ->
  cells:cell list ->
  trials:int ->
  seed:int ->
  unit ->
  cell_result list

(** {1 Cell persistence}

    The codec and key schema behind [?store]. Exposed so tools
    ([ncg_experiment --store], the bench harness, tests) can inspect or
    pre-seed a store. *)

(** Lossless cell codec: [cell_result_of_json (cell_result_to_json r)]
    restores [r] exactly (including wall times, span tree and domain id —
    a cached cell reports the telemetry of the run that produced it).
    The payload embeds a schema tag; decoding a record written under a
    different tag fails. *)
val cell_result_to_json : cell_result -> Ncg_obs.Json.t

val cell_result_of_json : Ncg_obs.Json.t -> (cell_result, string) result

(** [cell_cache_key ~context ~seed ~trials ~cell_seed cell] is the
    content-addressed key {!sweep} uses: [context] (caller-supplied
    fingerprint of the graph class and dynamics config) plus the sweep
    seed, the cell's [(alpha, k)], the trial count, the cell's derived
    seed, the probes switch (default true — probing shifts the counter
    and GC sections) and the store + payload schema versions. *)
val cell_cache_key :
  ?probes:bool ->
  context:(string * Ncg_obs.Json.t) list ->
  seed:int ->
  trials:int ->
  cell_seed:int ->
  cell ->
  Ncg_store.Cache_key.t

(** [store_lookup store key] decodes a cached cell; any failure
    (missing, corrupt JSON, schema drift) reads as a miss. *)
val store_lookup : Ncg_store.Store.t -> Ncg_store.Cache_key.t -> cell_result option

(** [store_insert store key result] persists a cell (fsync'd append when
    the store is sync). *)
val store_insert : Ncg_store.Store.t -> Ncg_store.Cache_key.t -> cell_result -> unit

(** Pointwise sum of all per-cell counters. *)
val sweep_counters : cell_result list -> Ncg_obs.Metrics.snapshot

(** Bucket-wise merge of all per-cell histograms. *)
val sweep_histograms : cell_result list -> Ncg_obs.Histogram.snapshot

(** Pointwise sum of all per-cell GC deltas. *)
val sweep_gc : cell_result list -> Ncg_obs.Gc_stats.snapshot

(** Sum of per-cell wall times (CPU-ish aggregate; wall time of the whole
    sweep is shorter when [domains > 1]). *)
val sweep_wall_ns : cell_result list -> int64

(** [summarize f runs] is the mean ± CI of [f] over the runs. *)
val summarize : (run_stats -> float) -> run_stats list -> Ncg_stats.Summary.t

(** Fraction of runs satisfying a predicate. *)
val fraction : (run_stats -> bool) -> run_stats list -> float

(** [cell_seed_of_cell ~seed cell] is a {e position-independent} cell
    seed: a pure function of [(seed, cell.alpha, cell.k)], unlike
    {!derive_seeds} which keys on the cell's index in the grid. Two
    sweeps over {e overlapping} grids agree on every shared cell's seed
    under this derivation, which is what lets the sweep service dedup
    cells across clients and still hand every client byte-identical
    rows. [ncg_experiment --by-cell-seeds] uses the same derivation so a
    one-shot run of the union grid reproduces the served results
    exactly. *)
val cell_seed_of_cell : seed:int -> cell -> int

(** The CSV header row shared by [ncg_experiment] and the sweep
    service. *)
val csv_header : string

(** [csv_row ~graph_class ~n ~p ~trials r] renders one result row
    (no trailing newline) in the exact format of {!csv_header}. Both
    [ncg_experiment] and the service daemon render through this
    function, so byte-identity of served vs one-shot CSVs is structural,
    not coincidental. *)
val csv_row :
  graph_class:string -> n:int -> p:float -> trials:int -> cell_result -> string
