(** Round-robin best-response dynamics (Section 5.1 of the paper).

    Players move in turns; a round considers every player once; a player
    moves only when her engine finds a strictly improving deviation
    (worst-case, view-evaluated). The process stops at the first round
    with no change, or — under the deterministic round-robin order — when
    the profile at the end of a round repeats an earlier end-of-round
    profile, which certifies a best-response cycle (the paper's
    divergence criterion), or after [max_rounds]. *)

type config = {
  variant : Game.variant;
  alpha : float;
  k : int;  (** use a huge k (e.g. 1000) for the full-knowledge game *)
  solver : [ `Exact | `Budgeted of int | `Greedy ];
      (** MaxNCG best-response engine (used when [response = `Best]) *)
  response : [ `Best | `Local_moves ];
      (** [`Best] = exact best response (the paper's setting);
          [`Local_moves] = steepest single-edge add/drop/swap — a
          better-response / bounded-rationality variant. Max only;
          SumNCG always follows [sum_mode]. *)
  sum_mode : [ `Exact of int | `Branch_and_bound of int | `Local_search ];
      (** SumNCG best-response engine (ignored under Max) *)
  order : [ `Round_robin | `Random_sweep of int ];
      (** player order within a round; [`Random_sweep seed] reshuffles
          every round (cycle detection is disabled — a repeated profile
          proves nothing under a random order) *)
  max_rounds : int;
  epsilon : float;  (** strict-improvement threshold *)
  collect_features : bool;  (** record {!Features.t} after every round *)
  move_budget : int;
      (** max search steps (cooperative {!Ncg_fault.Cancel.checkpoint}
          polls: dominating-set radii, local-search descents) a single
          player move may take before the run fails with
          [Ncg_fault.Cancel.Timed_out "step budget exhausted"] instead
          of hanging; [<= 0] = unlimited. Budget hits are counted in
          the ["dynamics.step_budget_hits"] metric. *)
}

(** Sensible defaults: Max variant, exact best responses, round-robin,
    200 rounds, features on, a 1e6-step move budget. *)
val default_config : alpha:float -> k:int -> config

type outcome =
  | Converged of int  (** equilibrium reached after this many rounds *)
  | Cycle_detected of int  (** end-of-round profile repeated this round *)
  | Max_rounds_exceeded

type result = {
  outcome : outcome;
  final : Strategy.t;
  rounds : int;  (** rounds fully executed *)
  total_moves : int;  (** strategy changes over the whole run *)
  features : Features.t list;  (** chronological, one per executed round *)
  trace : Trace.t;
      (** every accepted move; [Trace.replay] on the initial profile
          reproduces [final] *)
}

(** [run config strategy] executes the dynamics from the initial profile.

    When an {!Ncg_obs.Probe} collector is installed in the calling
    domain, every round samples the built-in probes (social cost, awake
    players, best-response gaps, move edit distance and locality radius,
    solver effort deltas) with [x = round], and — when an
    {!Ncg_obs.Events} sink is also active — emits one ["dynamics.round"]
    structured event per round. Probing reuses the trajectory's BFS
    scratch, so it allocates nothing; with no collector installed each
    probe point is a domain-local read and a branch.

    @raise Invalid_argument if the initial network is disconnected (the
    paper assumes players start on a connected network). *)
val run : config -> Strategy.t -> result

(** [best_response_step ?ws config strategy g u] is
    [Some (profile', old_cost, new_cost)] if player [u] has an improving
    deviation — the updated profile with [u]'s view-local cost before and
    after the move (what the [dynamics.move] event reports) — [None]
    otherwise. Exposed for step-by-step inspection in examples. [?ws]
    lends reusable oracle scratch buffers; [run] threads one workspace
    through every step of a trajectory. *)
val best_response_step :
  ?ws:Workspace.t ->
  config ->
  Strategy.t ->
  Ncg_graph.Graph.t ->
  int ->
  (Strategy.t * float * float) option
