(** Sweep submissions as data: one record naming everything that
    determines a sweep's results.

    [ncg_experiment] builds its sweep inline from CLI flags; the sweep
    service receives the same parameters over a socket. This module is
    the single compiler from that record to the {!Experiment} calls, so
    both paths construct {e the same} initial graphs, dynamics configs,
    store contexts and cache keys — the served-vs-one-shot byte-identity
    contract is then structural, not a matter of keeping two
    definitions in sync.

    Cell seeds come from {!Experiment.cell_seed_of_cell} — the
    position-{e independent} derivation — so two specs whose grids
    overlap agree on every shared cell, which is what makes cross-client
    dedup sound. A one-shot [ncg_experiment] run reproduces a served
    result with [--by-cell-seeds]. *)

type t = {
  graph_class : string;  (** ["tree"], ["gnp"], ["ba"] or ["ws"] *)
  n : int;
  p : float;  (** edge probability, used by ["gnp"] only *)
  alphas : float list;
  ks : int list;
  trials : int;
  seed : int;
  budget : int;  (** branch-and-bound node budget per best response *)
  move_budget : int;
  probes : bool;  (** round-level probe collection (part of cache keys) *)
}

(** [ncg_experiment]'s defaults: tree, n = 50, p = 0.1, the paper grid,
    5 trials, seed 2014. *)
val default : t

val graph_classes : string list

(** Structural sanity: known class, n ≥ 2, non-empty finite grids,
    positive trials/ks. *)
val validate : t -> (unit, string) result

(** The initial-graph constructor for the spec's class (same shapes as
    [ncg_experiment]: BA with m = 2, WS with k = 4, beta = 0.2).
    Raises [Failure] on an unknown class — call {!validate} first on
    untrusted input. *)
val make_initial : t -> seed:int -> Strategy.t

val make_config : t -> Experiment.cell -> Dynamics.config

(** The store-context fingerprint (class, n, p, dynamics settings) —
    field-for-field what [ncg_experiment] writes into its cache keys. *)
val context : t -> (string * Ncg_obs.Json.t) list

(** The [(alpha, k)] grid, in {!Experiment.grid} order. *)
val cells : t -> Experiment.cell list

(** Position-independent per-cell seed ({!Experiment.cell_seed_of_cell}). *)
val cell_seed : t -> Experiment.cell -> int

(** Full content-addressed key for one cell of this spec. *)
val cache_key : t -> Experiment.cell -> Ncg_store.Cache_key.t

(** Compute one cell ({!Experiment.run_cell} with this spec's
    constructors and seed derivation). *)
val run_cell : t -> Experiment.cell -> Experiment.cell_result

(** Render one result row ({!Experiment.csv_row} with this spec's
    class/n/p/trials). *)
val csv_row : t -> Experiment.cell_result -> string

(** Wire codec, schema ["ncg.service.spec/1"]. [of_json] validates. *)
val schema : string

val to_json : t -> Ncg_obs.Json.t
val of_json : Ncg_obs.Json.t -> (t, string) result
