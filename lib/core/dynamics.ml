module Graph = Ncg_graph.Graph
module Bfs = Ncg_graph.Bfs

type config = {
  variant : Game.variant;
  alpha : float;
  k : int;
  solver : [ `Exact | `Budgeted of int | `Greedy ];
  response : [ `Best | `Local_moves ];
  sum_mode : [ `Exact of int | `Branch_and_bound of int | `Local_search ];
  order : [ `Round_robin | `Random_sweep of int ];
  max_rounds : int;
  epsilon : float;
  collect_features : bool;
  move_budget : int;
}

let default_config ~alpha ~k =
  {
    variant = Game.Max;
    alpha;
    k;
    solver = `Exact;
    response = `Best;
    sum_mode = `Local_search;
    order = `Round_robin;
    max_rounds = 200;
    epsilon = 1e-9;
    collect_features = true;
    move_budget = 1_000_000;
  }

type outcome = Converged of int | Cycle_detected of int | Max_rounds_exceeded

type result = {
  outcome : outcome;
  final : Strategy.t;
  rounds : int;
  total_moves : int;
  features : Features.t list;
  trace : Trace.t;
}

(* How far an accepted move reaches, measured inside the view where
   distances from the player are already known: the symmetric-difference
   size of the target sets, and the largest view distance of any newly
   bought edge — the per-round locality signals the probe layer records. *)
type move_stats = { edit_distance : int; radius : int }

let move_stats_of (view : View.t) ~targets =
  let before = view.View.owned in
  let added = List.filter (fun t -> not (List.mem t before)) targets in
  let removed = List.filter (fun t -> not (List.mem t targets)) before in
  let radius =
    List.fold_left (fun acc t -> max acc view.View.dist.(t)) 0 added
  in
  { edit_distance = List.length added + List.length removed; radius }

(* On an accepted move, also returns the player's view-local cost before
   and after — already computed by the oracles, and what the structured
   event log reports per move — plus the move's locality stats. *)
let best_response_step_stats ?ws config strategy g u =
  let ws = match ws with Some w -> w | None -> Workspace.create () in
  let view = View.extract ~scratch:ws.Workspace.bfs strategy g ~k:config.k u in
  let improvement =
    match config.variant with
    | Game.Max -> begin
        match config.response with
        | `Best ->
            Option.map
              (fun (o : Best_response.outcome) ->
                ( o.Best_response.targets,
                  Best_response.current_cost ~alpha:config.alpha view,
                  o.Best_response.cost ))
              (Best_response.improving ~ws ~solver:config.solver
                 ~epsilon:config.epsilon ~alpha:config.alpha view)
        | `Local_moves ->
            let o = Best_response.local_search ~alpha:config.alpha view in
            let current = Best_response.current_cost ~alpha:config.alpha view in
            if o.Best_response.cost < current -. config.epsilon then
              Some (o.Best_response.targets, current, o.Best_response.cost)
            else None
      end
    | Game.Sum ->
        Option.map
          (fun (o : Sum_best_response.outcome) ->
            ( o.Sum_best_response.targets,
              Sum_best_response.current_cost ~alpha:config.alpha view,
              o.Sum_best_response.cost ))
          (Sum_best_response.improving ~epsilon:config.epsilon
             ~alpha:config.alpha ~mode:config.sum_mode view)
  in
  Option.map
    (fun (targets, old_cost, new_cost) ->
      ( Strategy.with_owned strategy u (View.to_host view targets),
        old_cost,
        new_cost,
        move_stats_of view ~targets ))
    improvement

let best_response_step ?ws config strategy g u =
  Option.map
    (fun (strategy', old_cost, new_cost, _stats) ->
      (strategy', old_cost, new_cost))
    (best_response_step_stats ?ws config strategy g u)

(* "buy" = only additions, "drop" = only removals, "swap" = both. *)
let move_kind ~before ~after =
  let added = List.exists (fun t -> not (List.mem t before)) after in
  let removed = List.exists (fun t -> not (List.mem t after)) before in
  match (added, removed) with
  | true, false -> "buy"
  | false, true -> "drop"
  | true, true -> "swap"
  | false, false -> "reorder"

let run_untraced config strategy0 =
  let n = Strategy.n_players strategy0 in
  let g0 = Strategy.graph strategy0 in
  if not (Bfs.is_connected g0) then
    invalid_arg "Dynamics.run: initial network must be connected";
  let detect_cycles = config.order = `Round_robin in
  (* One workspace per trajectory — reused across every player step, but
     created fresh per run so per-cell allocation stays deterministic (the
     parallel-sweep and bench-gate contracts compare GC deltas exactly). *)
  let ws = Workspace.create ~capacity:n () in
  let sweep_rng =
    match config.order with
    | `Round_robin -> None
    | `Random_sweep seed -> Some (Ncg_prng.Rng.create seed)
  in
  let player_order = Array.init n Fun.id in
  let seen : (string, int) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.replace seen (Strategy.to_key strategy0) 0;
  let strategy = ref strategy0 in
  let g = ref g0 in
  let features = ref [] in
  let total_moves = ref 0 in
  let moves = ref [] in
  let outcome = ref None in
  let round = ref 0 in
  (* Social cost of the current full profile, on the trajectory's BFS
     scratch — zero-allocation, so probing does not disturb the per-cell
     GC contract. NaN if the network disconnected (mirrors
     [Game.social_cost] returning [None]). *)
  let social_cost_now () =
    let g = !g in
    let sum_use = ref 0 in
    let connected = ref true in
    let u = ref 0 in
    while !connected && !u < n do
      if Bfs.run ws.Workspace.bfs g !u ~radius:max_int < n then
        connected := false
      else begin
        let dist = Bfs.dist_array ws.Workspace.bfs in
        (match config.variant with
        | Game.Max ->
            let ecc = ref 0 in
            for v = 0 to n - 1 do
              if dist.(v) > !ecc then ecc := dist.(v)
            done;
            sum_use := !sum_use + !ecc
        | Game.Sum ->
            for v = 0 to n - 1 do
              sum_use := !sum_use + dist.(v)
            done);
        incr u
      end
    done;
    if !connected then
      (config.alpha *. float_of_int (Graph.size g)) +. float_of_int !sum_use
    else nan
  in
  while !outcome = None && !round < config.max_rounds do
    incr round;
    Ncg_fault.Cancel.checkpoint ();
    Ncg_fault.Inject.(hit dynamics_round);
    Ncg_obs.Histogram.(time dynamics_round) (fun () ->
        (match sweep_rng with
        | Some rng -> Ncg_prng.Rng.shuffle rng player_order
        | None -> ());
        let probing = Ncg_obs.Probe.recording () in
        let gap_max = ref 0. in
        let gap_total = ref 0. in
        let edits = ref 0 in
        let reach = ref 0 in
        let nodes0 =
          if probing then Ncg_obs.Metrics.(read set_cover_nodes) else 0
        in
        let cutoffs0 =
          if probing then
            Ncg_obs.Metrics.(read set_cover_cutoffs + read sum_bb_cutoffs)
          else 0
        in
        let changes = ref 0 in
        Array.iter
          (fun u ->
            match
              Ncg_fault.Cancel.with_step_budget config.move_budget (fun () ->
                  best_response_step_stats ~ws config !strategy !g u)
            with
            | Some (strategy', old_cost, new_cost, stats) ->
                let before = Strategy.owned !strategy u in
                let after = Strategy.owned strategy' u in
                moves :=
                  { Trace.round = !round; player = u; before; after } :: !moves;
                if probing then begin
                  let gap = old_cost -. new_cost in
                  if gap > !gap_max then gap_max := gap;
                  gap_total := !gap_total +. gap;
                  edits := !edits + stats.edit_distance;
                  if stats.radius > !reach then reach := stats.radius
                end;
                if Ncg_obs.Events.active () then
                  Ncg_obs.Events.emit "dynamics.move"
                    [
                      ("round", Ncg_obs.Json.Int !round);
                      ("player", Ncg_obs.Json.Int u);
                      ("kind", Ncg_obs.Json.String (move_kind ~before ~after));
                      ("old_cost", Ncg_obs.Json.Float old_cost);
                      ("new_cost", Ncg_obs.Json.Float new_cost);
                    ];
                strategy := strategy';
                g := Strategy.graph strategy';
                incr changes;
                incr total_moves
            | None -> ())
          player_order;
        if probing then begin
          let x = float_of_int !round in
          let sc = social_cost_now () in
          Ncg_obs.Probe.(sample social_cost) ~x sc;
          Ncg_obs.Probe.(sample awake_players) ~x (float_of_int !changes);
          Ncg_obs.Probe.(sample br_gap_max) ~x !gap_max;
          Ncg_obs.Probe.(sample br_gap_total) ~x !gap_total;
          Ncg_obs.Probe.(sample move_edit_distance) ~x (float_of_int !edits);
          Ncg_obs.Probe.(sample move_locality_radius) ~x (float_of_int !reach);
          Ncg_obs.Probe.(sample set_cover_nodes) ~x
            (float_of_int (Ncg_obs.Metrics.(read set_cover_nodes) - nodes0));
          Ncg_obs.Probe.(sample bb_cutoffs) ~x
            (float_of_int
               (Ncg_obs.Metrics.(read set_cover_cutoffs + read sum_bb_cutoffs)
               - cutoffs0));
          if Ncg_obs.Events.active () then
            Ncg_obs.Events.emit "dynamics.round"
              [
                ("round", Ncg_obs.Json.Int !round);
                ("alpha", Ncg_obs.Json.Float config.alpha);
                ("k", Ncg_obs.Json.Int config.k);
                ("awake", Ncg_obs.Json.Int !changes);
                ("moves", Ncg_obs.Json.Int !total_moves);
                ("social_cost", Ncg_obs.Json.Float sc);
              ]
        end;
        if config.collect_features then
          features :=
            Features.collect config.variant ~alpha:config.alpha ~k:config.k
              ~round:!round ~changes:!changes !strategy !g
            :: !features;
        if !changes = 0 then outcome := Some (Converged !round)
        else if detect_cycles then begin
          let key = Strategy.to_key !strategy in
          match Hashtbl.find_opt seen key with
          | Some _ ->
              (* Same end-of-round profile as before: under round-robin the
                 continuation is deterministic, so the dynamics cycles. *)
              outcome := Some (Cycle_detected !round)
          | None -> Hashtbl.replace seen key !round
        end)
  done;
  Ncg_obs.Metrics.(add dynamics_rounds !round);
  Ncg_obs.Metrics.(add dynamics_moves !total_moves);
  {
    outcome = (match !outcome with Some o -> o | None -> Max_rounds_exceeded);
    final = !strategy;
    rounds = !round;
    total_moves = !total_moves;
    features = List.rev !features;
    trace = { Trace.n; moves = List.rev !moves };
  }

let run config strategy0 =
  Ncg_obs.Span.with_span "dynamics.run" (fun () -> run_untraced config strategy0)
