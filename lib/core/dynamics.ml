module Graph = Ncg_graph.Graph
module Bfs = Ncg_graph.Bfs

type config = {
  variant : Game.variant;
  alpha : float;
  k : int;
  solver : [ `Exact | `Budgeted of int | `Greedy ];
  response : [ `Best | `Local_moves ];
  sum_mode : [ `Exact of int | `Branch_and_bound of int | `Local_search ];
  order : [ `Round_robin | `Random_sweep of int ];
  max_rounds : int;
  epsilon : float;
  collect_features : bool;
  move_budget : int;
}

let default_config ~alpha ~k =
  {
    variant = Game.Max;
    alpha;
    k;
    solver = `Exact;
    response = `Best;
    sum_mode = `Local_search;
    order = `Round_robin;
    max_rounds = 200;
    epsilon = 1e-9;
    collect_features = true;
    move_budget = 1_000_000;
  }

type outcome = Converged of int | Cycle_detected of int | Max_rounds_exceeded

type result = {
  outcome : outcome;
  final : Strategy.t;
  rounds : int;
  total_moves : int;
  features : Features.t list;
  trace : Trace.t;
}

(* On an accepted move, also returns the player's view-local cost before
   and after — already computed by the oracles, and what the structured
   event log reports per move. *)
let best_response_step ?ws config strategy g u =
  let ws = match ws with Some w -> w | None -> Workspace.create () in
  let view = View.extract ~scratch:ws.Workspace.bfs strategy g ~k:config.k u in
  let improvement =
    match config.variant with
    | Game.Max -> begin
        match config.response with
        | `Best ->
            Option.map
              (fun (o : Best_response.outcome) ->
                ( o.Best_response.targets,
                  Best_response.current_cost ~alpha:config.alpha view,
                  o.Best_response.cost ))
              (Best_response.improving ~ws ~solver:config.solver
                 ~epsilon:config.epsilon ~alpha:config.alpha view)
        | `Local_moves ->
            let o = Best_response.local_search ~alpha:config.alpha view in
            let current = Best_response.current_cost ~alpha:config.alpha view in
            if o.Best_response.cost < current -. config.epsilon then
              Some (o.Best_response.targets, current, o.Best_response.cost)
            else None
      end
    | Game.Sum ->
        Option.map
          (fun (o : Sum_best_response.outcome) ->
            ( o.Sum_best_response.targets,
              Sum_best_response.current_cost ~alpha:config.alpha view,
              o.Sum_best_response.cost ))
          (Sum_best_response.improving ~epsilon:config.epsilon
             ~alpha:config.alpha ~mode:config.sum_mode view)
  in
  Option.map
    (fun (targets, old_cost, new_cost) ->
      (Strategy.with_owned strategy u (View.to_host view targets), old_cost, new_cost))
    improvement

(* "buy" = only additions, "drop" = only removals, "swap" = both. *)
let move_kind ~before ~after =
  let added = List.exists (fun t -> not (List.mem t before)) after in
  let removed = List.exists (fun t -> not (List.mem t after)) before in
  match (added, removed) with
  | true, false -> "buy"
  | false, true -> "drop"
  | true, true -> "swap"
  | false, false -> "reorder"

let run_untraced config strategy0 =
  let n = Strategy.n_players strategy0 in
  let g0 = Strategy.graph strategy0 in
  if not (Bfs.is_connected g0) then
    invalid_arg "Dynamics.run: initial network must be connected";
  let detect_cycles = config.order = `Round_robin in
  (* One workspace per trajectory — reused across every player step, but
     created fresh per run so per-cell allocation stays deterministic (the
     parallel-sweep and bench-gate contracts compare GC deltas exactly). *)
  let ws = Workspace.create ~capacity:n () in
  let sweep_rng =
    match config.order with
    | `Round_robin -> None
    | `Random_sweep seed -> Some (Ncg_prng.Rng.create seed)
  in
  let player_order = Array.init n Fun.id in
  let seen : (string, int) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.replace seen (Strategy.to_key strategy0) 0;
  let strategy = ref strategy0 in
  let g = ref g0 in
  let features = ref [] in
  let total_moves = ref 0 in
  let moves = ref [] in
  let outcome = ref None in
  let round = ref 0 in
  while !outcome = None && !round < config.max_rounds do
    incr round;
    Ncg_fault.Cancel.checkpoint ();
    Ncg_fault.Inject.(hit dynamics_round);
    Ncg_obs.Histogram.(time dynamics_round) (fun () ->
        (match sweep_rng with
        | Some rng -> Ncg_prng.Rng.shuffle rng player_order
        | None -> ());
        let changes = ref 0 in
        Array.iter
          (fun u ->
            match
              Ncg_fault.Cancel.with_step_budget config.move_budget (fun () ->
                  best_response_step ~ws config !strategy !g u)
            with
            | Some (strategy', old_cost, new_cost) ->
                let before = Strategy.owned !strategy u in
                let after = Strategy.owned strategy' u in
                moves :=
                  { Trace.round = !round; player = u; before; after } :: !moves;
                if Ncg_obs.Events.active () then
                  Ncg_obs.Events.emit "dynamics.move"
                    [
                      ("round", Ncg_obs.Json.Int !round);
                      ("player", Ncg_obs.Json.Int u);
                      ("kind", Ncg_obs.Json.String (move_kind ~before ~after));
                      ("old_cost", Ncg_obs.Json.Float old_cost);
                      ("new_cost", Ncg_obs.Json.Float new_cost);
                    ];
                strategy := strategy';
                g := Strategy.graph strategy';
                incr changes;
                incr total_moves
            | None -> ())
          player_order;
        if config.collect_features then
          features :=
            Features.collect config.variant ~alpha:config.alpha ~k:config.k
              ~round:!round ~changes:!changes !strategy !g
            :: !features;
        if !changes = 0 then outcome := Some (Converged !round)
        else if detect_cycles then begin
          let key = Strategy.to_key !strategy in
          match Hashtbl.find_opt seen key with
          | Some _ ->
              (* Same end-of-round profile as before: under round-robin the
                 continuation is deterministic, so the dynamics cycles. *)
              outcome := Some (Cycle_detected !round)
          | None -> Hashtbl.replace seen key !round
        end)
  done;
  Ncg_obs.Metrics.(add dynamics_rounds !round);
  Ncg_obs.Metrics.(add dynamics_moves !total_moves);
  {
    outcome = (match !outcome with Some o -> o | None -> Max_rounds_exceeded);
    final = !strategy;
    rounds = !round;
    total_moves = !total_moves;
    features = List.rev !features;
    trace = { Trace.n; moves = List.rev !moves };
  }

let run config strategy0 =
  Ncg_obs.Span.with_span "dynamics.run" (fun () -> run_untraced config strategy0)
