module Graph = Ncg_graph.Graph
module Bfs = Ncg_graph.Bfs

type outcome = { targets : int list; usage : int; cost : float }

(* Distances from the player in H' for a candidate strategy. *)
let deviation_distances (v : View.t) targets =
  let h' = View.with_strategy v targets in
  Bfs.distances h' v.View.player

let admissible (v : View.t) targets =
  let dist' = deviation_distances v targets in
  List.for_all
    (fun y -> dist'.(y) <> Bfs.unreachable && dist'.(y) <= v.View.k)
    (View.frontier v)

let usage_of_distances dist =
  let sum = ref 0 in
  let ok = ref true in
  Array.iter
    (fun d -> if d = Bfs.unreachable then ok := false else sum := !sum + d)
    dist;
  if !ok then Some !sum else None

let cost_on_view ~alpha (v : View.t) targets =
  Option.map
    (fun use -> (alpha *. float_of_int (List.length targets)) +. float_of_int use)
    (usage_of_distances (deviation_distances v targets))

let current_usage (v : View.t) = Ncg_util.Arrayx.sum v.View.dist

let current_cost ~alpha (v : View.t) =
  (alpha *. float_of_int (List.length v.View.owned))
  +. float_of_int (current_usage v)

let current_outcome ~alpha v =
  {
    targets = v.View.owned;
    usage = current_usage v;
    cost = current_cost ~alpha v;
  }

(* Evaluate one candidate: admissibility and cost in a single H' build. *)
let evaluate ~alpha (v : View.t) targets =
  let dist' = deviation_distances v targets in
  let frontier_ok =
    List.for_all
      (fun y -> dist'.(y) <> Bfs.unreachable && dist'.(y) <= v.View.k)
      (View.frontier v)
  in
  if not frontier_ok then None
  else
    Option.map
      (fun use ->
        {
          targets;
          usage = use;
          cost = (alpha *. float_of_int (List.length targets)) +. float_of_int use;
        })
      (usage_of_distances dist')

let exact ?(max_view = 16) ~alpha (v : View.t) =
  let nv = View.size v in
  let others = List.filter (fun x -> x <> v.View.player) (List.init nv Fun.id) in
  let m = List.length others in
  if m > max_view then
    invalid_arg "Sum_best_response.exact: view too large for enumeration";
  let others = Array.of_list others in
  let best = ref (current_outcome ~alpha v) in
  for mask = 0 to (1 lsl m) - 1 do
    let targets = ref [] in
    for i = 0 to m - 1 do
      if mask land (1 lsl i) <> 0 then targets := others.(i) :: !targets
    done;
    match evaluate ~alpha v !targets with
    | Some o when o.cost < !best.cost -. 1e-12 -> best := o
    | Some _ | None -> ()
  done;
  !best

let local_search ~alpha (v : View.t) =
  let nv = View.size v in
  let all = List.filter (fun x -> x <> v.View.player) (List.init nv Fun.id) in
  let rec descend best =
    let candidates =
      (* Single additions, deletions and swaps around [best.targets]. *)
      let adds =
        List.filter_map
          (fun t ->
            if List.mem t best.targets then None else Some (t :: best.targets))
          all
      in
      let drops = List.map (fun t -> List.filter (( <> ) t) best.targets) best.targets in
      let swaps =
        List.concat_map
          (fun out ->
            let without = List.filter (( <> ) out) best.targets in
            List.filter_map
              (fun inn ->
                if List.mem inn best.targets then None else Some (inn :: without))
              all)
          best.targets
      in
      List.concat [ adds; drops; swaps ]
    in
    let improved =
      List.fold_left
        (fun acc targets ->
          match evaluate ~alpha v targets with
          | Some o when o.cost < acc.cost -. 1e-12 -> o
          | Some _ | None -> acc)
        best candidates
    in
    if improved.cost < best.cost -. 1e-12 then descend improved else best
  in
  descend (current_outcome ~alpha v)

let branch_and_bound ?(max_candidates = 34) ~alpha (v : View.t) =
  let nv = View.size v in
  let candidates =
    List.filter (fun x -> x <> v.View.player) (List.init nv Fun.id)
  in
  if List.length candidates > max_candidates then
    invalid_arg "Sum_best_response.branch_and_bound: view too large";
  (* Farthest-first ordering: buying an edge to a distant vertex changes
     the distance profile the most, so deciding those first tightens the
     bound early. *)
  let candidates =
    Array.of_list
      (List.sort (fun a b -> compare v.View.dist.(b) v.View.dist.(a)) candidates)
  in
  let ncand = Array.length candidates in
  (* Incumbent: the better of the current strategy and local search. *)
  let best = ref (local_search ~alpha v) in
  (* Lower bound for completions of [included] with candidates idx..ncand-1
     undecided. Two rigorous ingredients:
     - D_opt: the distance sum when *every* undecided edge exists (more
       edges can only shorten distances); pay alpha only for [included].
     - per-candidate penalties: a completion either buys undecided c
       (pays alpha) or not — and then c's own distance is at least its
       distance with every other undecided edge present, an increase of
       delta_c over the optimistic value. The delta_c live on distinct
       vertices, so they add up. Hence LB += sum over undecided of
       min(alpha, delta_c).
     Also detects subtrees where even the optimistic completion leaves
     some view vertex unreachable (then every completion does). *)
  let completion_bound included idx =
    let optimistic = ref included in
    for j = idx to ncand - 1 do
      optimistic := candidates.(j) :: !optimistic
    done;
    let dist_all = deviation_distances v !optimistic in
    match usage_of_distances dist_all with
    | None -> None
    | Some d_opt ->
        let penalty = ref 0.0 in
        if alpha > 0.0 then
          for j = idx to ncand - 1 do
            let c = candidates.(j) in
            let without_c = List.filter (( <> ) c) !optimistic in
            let dist_wo = deviation_distances v without_c in
            let delta_c =
              if dist_wo.(c) = Ncg_graph.Bfs.unreachable then infinity
              else float_of_int (dist_wo.(c) - dist_all.(c))
            in
            penalty := !penalty +. Float.min alpha delta_c
          done;
        Some
          ((alpha *. float_of_int (List.length included))
          +. float_of_int d_opt +. !penalty)
  in
  let rec go idx included =
    Ncg_obs.Metrics.(incr sum_bb_nodes);
    if idx = ncand then begin
      match evaluate ~alpha v included with
      | Some o when o.cost < !best.cost -. 1e-12 -> best := o
      | Some _ | None -> ()
    end
    else begin
      match completion_bound included idx with
      | None -> () (* even with every undecided edge some vertex is cut *)
      | Some lb when lb >= !best.cost -. 1e-12 ->
          Ncg_obs.Metrics.(incr sum_bb_cutoffs)
      | Some _ ->
          go (idx + 1) (candidates.(idx) :: included);
          go (idx + 1) included
    end
  in
  go 0 [];
  !best

let improving ?(epsilon = 1e-9) ~alpha ~mode v =
  Ncg_obs.Histogram.(time sum_best_response) @@ fun () ->
  Ncg_obs.Metrics.(incr sum_best_response_calls);
  let best =
    match mode with
    | `Exact max_view -> exact ~max_view ~alpha v
    | `Branch_and_bound max_candidates -> branch_and_bound ~max_candidates ~alpha v
    | `Local_search -> local_search ~alpha v
  in
  if best.cost < current_cost ~alpha v -. epsilon then Some best else None
