module Graph = Ncg_graph.Graph
module Subgraph = Ncg_graph.Subgraph
module Dominating_set = Ncg_solver.Dominating_set

type outcome = { targets : int list; usage : int; cost : float }

let current_usage (v : View.t) = Ncg_util.Arrayx.max_elt v.View.dist

let current_cost ~alpha (v : View.t) =
  (alpha *. float_of_int (List.length v.View.owned))
  +. float_of_int (current_usage v)

let compute ?ws ?(solver = `Exact) ?max_edges ?allowed ~alpha (v : View.t) =
  Ncg_obs.Histogram.(time best_response) @@ fun () ->
  Ncg_obs.Metrics.(incr best_response_calls);
  Ncg_fault.Inject.(hit best_response);
  let h_graph = v.View.graph in
  let nv = Graph.order h_graph in
  (match max_edges with
  | Some cap when List.length v.View.owned > cap ->
      invalid_arg "Best_response.compute: current strategy exceeds max_edges"
  | _ -> ());
  (match allowed with
  | Some whitelist
    when not (List.for_all (fun t -> List.mem t whitelist) v.View.owned) ->
      invalid_arg "Best_response.compute: current strategy outside allowed targets"
  | _ -> ());
  let current =
    {
      targets = v.View.owned;
      usage = current_usage v;
      cost = current_cost ~alpha v;
    }
  in
  if nv <= 1 then current
  else begin
    (* H0 = H minus the player; everything below lives in H0 coordinates
       and is translated back through the mapping at the end. *)
    let others =
      List.filter (fun x -> x <> v.View.player) (List.init nv Fun.id)
    in
    let h0, mapping = Subgraph.induced h_graph others in
    let to_h0 x = mapping.Subgraph.to_sub.(x) in
    let of_h0 x = mapping.Subgraph.to_host.(x) in
    let free_dominators = List.map to_h0 v.View.in_buyers in
    let forbidden =
      match allowed with
      | None -> []
      | Some whitelist ->
          let ok = List.map to_h0 whitelist in
          List.filter
            (fun x -> not (List.mem x ok))
            (List.init (Graph.order h0) Fun.id)
    in
    (* One context for the whole radius loop: distance rows are computed
       once and the covering balls grow incrementally with h, instead of n
       BFS runs per radius. The optional workspace lends BFS scratch to the
       context build and a bitset pool to every branch-and-bound solve. *)
    let scratch = Option.map (fun w -> w.Workspace.bfs) ws in
    let cover_ws = Option.map (fun w -> w.Workspace.cover) ws in
    let dom_ws = Option.map (fun w -> w.Workspace.dom) ws in
    let ctx =
      Dominating_set.context ?scratch ?ws:dom_ws ~graph:h0 ~free_dominators
        ~forbidden ()
    in
    let best = ref current in
    let h = ref 1 in
    let continue_ = ref true in
    while !continue_ && float_of_int !h < !best.cost -. 1e-9 do
      Ncg_fault.Cancel.checkpoint ();
      Ncg_obs.Metrics.(incr best_response_radii);
      (* Cardinality cap: a solution only helps if α·|S| + h < best. *)
      let max_size =
        if alpha <= 0.0 then nv
        else begin
          let cap = (!best.cost -. float_of_int !h) /. alpha in
          if cap >= float_of_int nv then nv
          else int_of_float (ceil (cap -. 1e-9)) (* |S| <= cap *)
        end
      in
      let max_size =
        match max_edges with Some cap -> min max_size cap | None -> max_size
      in
      let radius = !h - 1 in
      let solution =
        match solver with
        | `Exact -> Dominating_set.solve_at ?ws:cover_ws ~max_size ctx ~radius
        | `Budgeted node_budget ->
            Dominating_set.solve_at ?ws:cover_ws ~max_size ~node_budget ctx ~radius
        | `Greedy -> begin
            match Dominating_set.greedy_at ?ws:cover_ws ctx ~radius with
            | Some s when List.length s <= max_size -> Some s
            | Some _ | None -> None
          end
      in
      (match solution with
      | Some chosen ->
          let cost =
            (alpha *. float_of_int (List.length chosen)) +. float_of_int !h
          in
          if cost < !best.cost -. 1e-12 then
            best :=
              {
                targets = List.map of_h0 chosen;
                usage = !h;
                cost;
              }
      | None -> ());
      incr h;
      if !h > nv then continue_ := false
    done;
    !best
  end

let evaluate_targets ~alpha (v : View.t) targets =
  let h' = View.with_strategy v targets in
  Option.map
    (fun ecc ->
      {
        targets;
        usage = ecc;
        cost = (alpha *. float_of_int (List.length targets)) +. float_of_int ecc;
      })
    (Ncg_graph.Bfs.eccentricity h' v.View.player)

let local_search ~alpha (v : View.t) =
  let nv = Graph.order v.View.graph in
  let all = List.filter (fun x -> x <> v.View.player) (List.init nv Fun.id) in
  let current =
    {
      targets = v.View.owned;
      usage = current_usage v;
      cost = current_cost ~alpha v;
    }
  in
  let rec descend best =
    Ncg_fault.Cancel.checkpoint ();
    let adds =
      List.filter_map
        (fun t -> if List.mem t best.targets then None else Some (t :: best.targets))
        all
    in
    let drops = List.map (fun t -> List.filter (( <> ) t) best.targets) best.targets in
    let swaps =
      List.concat_map
        (fun out ->
          let without = List.filter (( <> ) out) best.targets in
          List.filter_map
            (fun inn ->
              if List.mem inn best.targets then None else Some (inn :: without))
            all)
        best.targets
    in
    let improved =
      List.fold_left
        (fun acc targets ->
          match evaluate_targets ~alpha v targets with
          | Some o when o.cost < acc.cost -. 1e-12 -> o
          | Some _ | None -> acc)
        best
        (List.concat [ adds; drops; swaps ])
    in
    if improved.cost < best.cost -. 1e-12 then descend improved else best
  in
  descend current

let improving ?ws ?solver ?(epsilon = 1e-9) ~alpha v =
  let best = compute ?ws ?solver ~alpha v in
  if best.cost < current_cost ~alpha v -. epsilon then Some best else None
