module Graph = Ncg_graph.Graph
module Bfs = Ncg_graph.Bfs
module Subgraph = Ncg_graph.Subgraph

type t = {
  player : int;
  k : int;
  graph : Graph.t;
  mapping : Subgraph.mapping;
  owned : int list;
  in_buyers : int list;
  dist : int array;
}

let extract ?scratch strategy g ~k u =
  if k < 1 then invalid_arg "View.extract: need k >= 1";
  Ncg_obs.Metrics.(incr view_extracts);
  let graph, mapping = Subgraph.ball_induced ?scratch g u ~radius:k in
  let player = mapping.Subgraph.to_sub.(u) in
  let map_host v = mapping.Subgraph.to_sub.(v) in
  (* Neighbours of u are at distance 1, hence always inside the ball. *)
  let owned = List.map map_host (Strategy.owned strategy u) in
  let in_buyers = List.map map_host (Strategy.in_buyers strategy u) in
  let dist =
    match scratch with
    | None -> Bfs.distances graph player
    | Some s ->
        ignore (Bfs.run s graph player ~radius:max_int);
        Array.sub (Bfs.dist_array s) 0 (Graph.order graph)
  in
  { player; k; graph; mapping; owned; in_buyers; dist }

let size v = Graph.order v.graph

let frontier v =
  let acc = ref [] in
  for x = Array.length v.dist - 1 downto 0 do
    if v.dist.(x) = v.k then acc := x :: !acc
  done;
  !acc

let with_strategy v targets =
  let n = Graph.order v.graph in
  List.iter
    (fun t ->
      if t < 0 || t >= n then invalid_arg "View.with_strategy: target out of range";
      if t = v.player then invalid_arg "View.with_strategy: self target")
    targets;
  let u = v.player in
  (* The player's new incident set: her targets plus the edges bought
     towards her (which she cannot drop); a single [with_star] pass
     rebuilds H′ without materialising an edge list. *)
  let star =
    Array.of_list (List.sort_uniq compare (List.rev_append targets v.in_buyers))
  in
  Graph.with_star v.graph u star

let to_host v ids =
  List.map (fun i -> v.mapping.Subgraph.to_host.(i)) ids

let of_host v ids =
  List.map
    (fun h ->
      let i = v.mapping.Subgraph.to_sub.(h) in
      if i < 0 then invalid_arg "View.of_host: vertex not visible";
      i)
    ids
