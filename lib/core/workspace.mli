(** Scratch buffers for the oracle hot path.

    One workspace bundles the reusable BFS buffers ({!Ncg_graph.Bfs.scratch})
    and the set-cover branch-and-bound pool
    ({!Ncg_solver.Set_cover.workspace}) that {!View.extract} and
    {!Best_response.compute} accept. Create one per logical run — e.g.
    {!Dynamics.run} creates one per trajectory and threads it through every
    player step — never share one between domains, and never retain
    references into it across calls (see docs/PERFORMANCE.md).

    Creating a workspace per run (rather than caching one per domain) is
    deliberate: per-cell allocation stays a pure function of the cell, which
    the parallel-sweep determinism contract and the bench gate's
    allocated-words telemetry both rely on. *)

type t = {
  bfs : Ncg_graph.Bfs.scratch;
  cover : Ncg_solver.Set_cover.workspace;
  dom : Ncg_solver.Dominating_set.workspace;
}

(** [create ~capacity ()] pre-sizes the BFS buffers for graphs of order ≤
    [capacity] (default 0: grow on first use). *)
val create : ?capacity:int -> unit -> t
