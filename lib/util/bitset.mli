(** Fixed-capacity dense bitsets over [0, capacity).

    Backed by an [int array] (63 usable bits per word on 64-bit platforms).
    All operations assume both operands were created with the same capacity;
    this is checked with assertions. Used pervasively by the set-cover solver
    and by graph algorithms that need fast membership tests. *)

type t

(** [create n] is an empty bitset able to hold elements in [0, n). *)
val create : int -> t

(** Capacity the set was created with. *)
val capacity : t -> int

(** [copy s] is an independent copy of [s]. *)
val copy : t -> t

(** [copy_into ~into s] overwrites [into] with the contents of [s] without
    allocating. Both sets must share a capacity. *)
val copy_into : into:t -> t -> unit

(** [add s i] sets bit [i]. *)
val add : t -> int -> unit

(** [remove s i] clears bit [i]. *)
val remove : t -> int -> unit

(** [mem s i] is [true] iff bit [i] is set. *)
val mem : t -> int -> bool

(** Number of set bits. O(words). *)
val cardinal : t -> int

(** [is_empty s] is [cardinal s = 0], but faster. *)
val is_empty : t -> bool

(** [clear s] removes every element. *)
val clear : t -> unit

(** [fill s] adds every element of [0, capacity). *)
val fill : t -> unit

(** [union_into ~into s] sets [into := into ∪ s]. *)
val union_into : into:t -> t -> unit

(** [inter_into ~into s] sets [into := into ∩ s]. *)
val inter_into : into:t -> t -> unit

(** [diff_into ~into s] sets [into := into \ s]. *)
val diff_into : into:t -> t -> unit

(** [union a b] is a fresh set [a ∪ b]. *)
val union : t -> t -> t

(** [inter a b] is a fresh set [a ∩ b]. *)
val inter : t -> t -> t

(** [diff a b] is a fresh set [a \ b]. *)
val diff : t -> t -> t

(** [subset a b] is [true] iff every element of [a] is in [b]. *)
val subset : t -> t -> bool

(** [equal a b] is extensional equality. *)
val equal : t -> t -> bool

(** [disjoint a b] is [true] iff [a ∩ b] is empty. *)
val disjoint : t -> t -> bool

(** [inter_cardinal a b] is [cardinal (inter a b)] without allocating. *)
val inter_cardinal : t -> t -> int

(** [diff_cardinal a b] is [cardinal (diff a b)] without allocating. *)
val diff_cardinal : t -> t -> int

(** [iter f s] applies [f] to every member in increasing order. *)
val iter : (int -> unit) -> t -> unit

(** [fold f s init] folds over members in increasing order. *)
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** Members in increasing order. *)
val to_list : t -> int list

(** [of_list n xs] is the set holding the elements of [xs], capacity [n]. *)
val of_list : int -> int list -> t

(** First member ≥ [i], or [None]. [choose_from s 0] is the minimum. *)
val choose_from : t -> int -> int option

(** Minimum member. @raise Not_found if empty. *)
val min_elt : t -> int

(** Pretty-printer: [{1, 5, 7}]. *)
val pp : Format.formatter -> t -> unit
