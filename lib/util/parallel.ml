let sequential_map f xs = List.map f xs

let chunked_map ~domains f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let domains = min domains n in
  if domains <= 1 then sequential_map f xs
  else begin
    (* Contiguous chunk boundaries; the first [n mod domains] chunks get
       one extra element. *)
    let base = n / domains and extra = n mod domains in
    let bounds =
      Array.init domains (fun i ->
          let start = (i * base) + min i extra in
          let len = base + if i < extra then 1 else 0 in
          (start, len))
    in
    (* Each worker builds its own chunk array — no mutable state shared
       between domains beyond the read-only input. *)
    let worker (start, len) () = Array.init len (fun j -> f arr.(start + j)) in
    let spawned =
      Array.map (fun b -> Domain.spawn (worker b)) (Array.sub bounds 1 (domains - 1))
    in
    (* Chunk 0 runs in the calling domain. Whatever happens, every
       spawned domain is joined before any exception escapes, so a
       failing chunk can never leave domains running or results torn;
       then the failure of the lowest-numbered chunk (a deterministic
       choice) is re-raised. *)
    let capture g = match g () with v -> Ok v | exception e -> Error e in
    let chunks =
      Array.append
        [| capture (worker bounds.(0)) |]
        (Array.map (fun d -> capture (fun () -> Domain.join d)) spawned)
    in
    Array.iter (function Error e -> raise e | Ok _ -> ()) chunks;
    List.concat_map
      (function Ok chunk -> Array.to_list chunk | Error _ -> assert false)
      (Array.to_list chunks)
  end

let map ?domains f xs =
  let domains =
    match domains with Some d -> d | None -> Domain.recommended_domain_count ()
  in
  chunked_map ~domains f xs

let init ?domains n f =
  if n < 0 then invalid_arg "Parallel.init: negative length";
  map ?domains f (List.init n Fun.id)
