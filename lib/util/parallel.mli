(** Deterministic fork-join parallelism over OCaml 5 domains.

    The experiment harness is embarrassingly parallel (independent seeded
    trials), so a chunked parallel map is all we need — no dependency on
    domainslib. Work is split into [domains] contiguous chunks, one
    domain per chunk; results are reassembled in order, so the output is
    identical to the sequential map regardless of scheduling.

    With [domains <= 1] (or on a single-core machine, the default) no
    domain is spawned and the plain sequential map runs. Tasks must not
    share mutable state; give each its own {!Ncg_prng.Rng} stream. *)

(** [map ?domains f xs] — [domains] defaults to
    [Domain.recommended_domain_count ()]. If [f] raises in any domain,
    every other domain is still run to completion and joined first, and
    then the exception from the lowest-numbered failing chunk is
    re-raised in the caller — so a failure never leaves stray domains
    running, and which exception surfaces is deterministic. *)
val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list

(** [init ?domains n f] is [map f [0; ...; n-1]] without building the
    input list. @raise Invalid_argument if [n < 0]. *)
val init : ?domains:int -> int -> (int -> 'a) -> 'a list
