(* Dense bitset over an int array. We use the full native int width (63 bits
   on 64-bit platforms) per word; [bits] is computed from [Sys.int_size] so
   the module also works on 32-bit platforms. *)

let bits = Sys.int_size

type t = { capacity : int; words : int array }

let words_for n = if n = 0 then 0 else ((n - 1) / bits) + 1

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { capacity = n; words = Array.make (words_for n) 0 }

let capacity s = s.capacity
let copy s = { capacity = s.capacity; words = Array.copy s.words }

let copy_into ~into s =
  if into.capacity <> s.capacity then
    invalid_arg "Bitset.copy_into: operands have different capacities";
  Array.blit s.words 0 into.words 0 (Array.length s.words)

let check s i =
  if i < 0 || i >= s.capacity then invalid_arg "Bitset: index out of bounds"

let add s i =
  check s i;
  s.words.(i / bits) <- s.words.(i / bits) lor (1 lsl (i mod bits))

let remove s i =
  check s i;
  s.words.(i / bits) <- s.words.(i / bits) land lnot (1 lsl (i mod bits))

let mem s i =
  check s i;
  s.words.(i / bits) land (1 lsl (i mod bits)) <> 0

(* Population count via a 16-bit lookup table: four (five on the top sliver)
   byte-pair probes per word instead of one loop iteration per set bit, which
   matters because the solver calls [cardinal]/[inter_cardinal] on every
   branch-and-bound node. *)
let pop16 =
  (let t = Bytes.create 65536 in
   for i = 0 to 65535 do
     let rec kern acc w = if w = 0 then acc else kern (acc + 1) (w land (w - 1)) in
     Bytes.unsafe_set t i (Char.chr (kern 0 i))
   done;
   t)
[@@lint.domain_local "filled once at module initialisation, read-only after"]

let popcount w =
  (* [w] can be negative (bit 62 set on 64-bit); split with logical shifts. *)
  let p i = Char.code (Bytes.unsafe_get pop16 i) in
  let acc = ref (p (w land 0xffff)) in
  let w = ref (w lsr 16) in
  while !w <> 0 do
    acc := !acc + p (!w land 0xffff);
    w := !w lsr 16
  done;
  !acc

let cardinal s = Array.fold_left (fun acc w -> acc + popcount w) 0 s.words
let is_empty s = Array.for_all (fun w -> w = 0) s.words
let clear s = Array.fill s.words 0 (Array.length s.words) 0

let fill s =
  Array.fill s.words 0 (Array.length s.words) (-1);
  (* Mask out the bits beyond [capacity] in the last word so that cardinal
     and iteration stay correct. *)
  let n = s.capacity in
  if n > 0 then begin
    let last = Array.length s.words - 1 in
    let used = n - (last * bits) in
    if used < bits then s.words.(last) <- (1 lsl used) - 1
  end

let same_capacity a b =
  if a.capacity <> b.capacity then
    invalid_arg "Bitset: operands have different capacities"

let union_into ~into s =
  same_capacity into s;
  for i = 0 to Array.length into.words - 1 do
    into.words.(i) <- into.words.(i) lor s.words.(i)
  done

let inter_into ~into s =
  same_capacity into s;
  for i = 0 to Array.length into.words - 1 do
    into.words.(i) <- into.words.(i) land s.words.(i)
  done

let diff_into ~into s =
  same_capacity into s;
  for i = 0 to Array.length into.words - 1 do
    into.words.(i) <- into.words.(i) land lnot s.words.(i)
  done

let union a b = let r = copy a in union_into ~into:r b; r
let inter a b = let r = copy a in inter_into ~into:r b; r
let diff a b = let r = copy a in diff_into ~into:r b; r

(* The three predicates below are flat while-loops rather than local
   recursive functions: a [let rec] capturing the operands costs a closure
   allocation per call, and the solver's dominance filter calls these
   O(candidates²) times per solve. *)
let subset a b =
  same_capacity a b;
  let n = Array.length a.words in
  let i = ref 0 in
  while !i < n && a.words.(!i) land lnot b.words.(!i) = 0 do incr i done;
  !i >= n

let equal a b =
  same_capacity a b;
  let n = Array.length a.words in
  let i = ref 0 in
  while !i < n && a.words.(!i) = b.words.(!i) do incr i done;
  !i >= n

let disjoint a b =
  same_capacity a b;
  let n = Array.length a.words in
  let i = ref 0 in
  while !i < n && a.words.(!i) land b.words.(!i) = 0 do incr i done;
  !i >= n

let inter_cardinal a b =
  same_capacity a b;
  let acc = ref 0 in
  for i = 0 to Array.length a.words - 1 do
    acc := !acc + popcount (a.words.(i) land b.words.(i))
  done;
  !acc

let diff_cardinal a b =
  same_capacity a b;
  let acc = ref 0 in
  for i = 0 to Array.length a.words - 1 do
    acc := !acc + popcount (a.words.(i) land lnot b.words.(i))
  done;
  !acc

let iter f s =
  for wi = 0 to Array.length s.words - 1 do
    let base = wi * bits in
    let w = ref s.words.(wi) in
    while !w <> 0 do
      (* Index of the lowest set bit: popcount of the mask of bits below it. *)
      let low = !w land - !w in
      f (base + popcount (low - 1));
      w := !w lxor low
    done
  done

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let to_list s = List.rev (fold (fun i acc -> i :: acc) s [])

let of_list n xs =
  let s = create n in
  List.iter (fun i -> add s i) xs;
  s

(* Flat loop for the same reason as [subset]: one closure per call adds up
   in the solver's lower-bound scan. *)
let choose_from s i0 =
  let i0 = if i0 < 0 then 0 else i0 in
  let nw = Array.length s.words in
  let found = ref (-1) in
  if i0 < s.capacity then begin
    let wi = ref (i0 / bits) in
    (* First word: mask off the bits below [i0]. *)
    let w = ref (s.words.(!wi) land ((-1) lsl (i0 mod bits))) in
    while !found < 0 && !wi < nw do
      if !w <> 0 then begin
        let low = !w land - !w in
        found := (!wi * bits) + popcount (low - 1)
      end
      else begin
        incr wi;
        if !wi < nw then w := s.words.(!wi)
      end
    done
  end;
  if !found < 0 then None else Some !found

let min_elt s =
  match choose_from s 0 with Some i -> i | None -> raise Not_found

let pp ppf s =
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Format.pp_print_int)
    (to_list s)
