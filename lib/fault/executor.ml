module Clock = Ncg_obs.Clock

type kind = Timeout | Interrupted | Crashed

let kind_to_string = function
  | Timeout -> "timeout"
  | Interrupted -> "interrupted"
  | Crashed -> "crashed"

type failure = {
  index : int;
  attempts : int;
  kind : kind;
  exn_text : string;
  exn : exn;
}

type event =
  | Attempt_started of { index : int; attempt : int }
  | Attempt_failed of {
      index : int;
      attempt : int;
      kind : kind;
      exn_text : string;
      will_retry : bool;
    }
  | Quarantined of failure

let classify = function
  | Cancel.Timed_out _ -> Timeout
  | Cancel.Interrupted _ -> Interrupted
  | _ -> Crashed

let map ?(domains = 1) ?(max_retries = 0) ?(backoff_ns = 0L) ?deadline_ns
    ?(on_event = fun (_ : event) -> ()) f n =
  if n = 0 then [||]
  else begin
    let domains = max 1 (min domains n) in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* Watchdog slots: when worker [w] starts an attempt it publishes the
       start time; the watchdog flags [cancels.(w)] once the attempt has
       been running past the deadline, and the task's next cooperative
       checkpoint raises. *)
    let busy_since = Array.init domains (fun _ -> Atomic.make 0L) in
    let cancels = Array.init domains (fun _ -> Atomic.make false) in
    let stop_watchdog = Atomic.make false in
    let watchdog =
      match deadline_ns with
      | None -> None
      | Some d ->
          Some
            (Domain.spawn (fun () ->
                 let period =
                   Float.min 0.05
                     (Float.max 0.001 (Int64.to_float d *. 1e-9 /. 8.))
                 in
                 while not (Atomic.get stop_watchdog) do
                   Unix.sleepf period;
                   let now = Clock.now_ns () in
                   for w = 0 to domains - 1 do
                     let since = Atomic.get busy_since.(w) in
                     if since <> 0L && Int64.compare (Int64.sub now since) d > 0
                     then Atomic.set cancels.(w) true
                   done
                 done))
    in
    let run_task w i =
      Inject.arm ~scope:i;
      let rec go attempt =
        on_event (Attempt_started { index = i; attempt });
        Atomic.set cancels.(w) false;
        Atomic.set busy_since.(w) (Clock.now_ns ());
        match
          Cancel.with_control ?timeout_ns:deadline_ns ~cancel:cancels.(w)
            (fun () -> f ~index:i ~attempt)
        with
        | v ->
            Atomic.set busy_since.(w) 0L;
            Ok v
        | exception e ->
            Atomic.set busy_since.(w) 0L;
            let kind = classify e in
            let will_retry =
              kind <> Interrupted && attempt <= max_retries
              && Cancel.shutdown_requested () = None
            in
            on_event
              (Attempt_failed
                 {
                   index = i;
                   attempt;
                   kind;
                   exn_text = Printexc.to_string e;
                   will_retry;
                 });
            if will_retry then begin
              if backoff_ns > 0L then
                Unix.sleepf
                  (Int64.to_float (Int64.mul backoff_ns (Int64.of_int attempt))
                  *. 1e-9);
              go (attempt + 1)
            end
            else begin
              let fl =
                {
                  index = i;
                  attempts = attempt;
                  kind;
                  exn_text = Printexc.to_string e;
                  exn = e;
                }
              in
              on_event (Quarantined fl);
              Error fl
            end
      in
      let r = Fun.protect ~finally:Inject.disarm (fun () -> go 1) in
      results.(i) <- Some r
    in
    let worker_error : (int * exn) option Atomic.t = Atomic.make None in
    let worker w =
      (* run_task catches all task exceptions; anything escaping here is
         an executor/on_event bug — record the lowest-worker one and
         re-raise it after the join so it is never swallowed. *)
      try
        let rec loop () =
          if Cancel.shutdown_requested () = None then begin
            let i = Atomic.fetch_and_add next 1 in
            if i < n then begin
              run_task w i;
              loop ()
            end
          end
        in
        loop ()
      with e ->
        let rec record () =
          let cur = Atomic.get worker_error in
          let better = match cur with None -> true | Some (w', _) -> w < w' in
          if better && not (Atomic.compare_and_set worker_error cur (Some (w, e)))
          then record ()
        in
        record ()
    in
    let spawned =
      Array.init (domains - 1) (fun k ->
          Domain.spawn (fun () -> worker (k + 1)))
    in
    worker 0;
    Array.iter Domain.join spawned;
    (match watchdog with
    | None -> ()
    | Some d ->
        Atomic.set stop_watchdog true;
        Domain.join d);
    (match Atomic.get worker_error with
    | Some (_, e) -> raise e
    | None -> ());
    Array.mapi
      (fun i -> function
        | Some r -> r
        | None ->
            let s = Option.value (Cancel.shutdown_requested ()) ~default:0 in
            Error
              {
                index = i;
                attempts = 0;
                kind = Interrupted;
                exn_text = "not started: shutdown requested";
                exn = Cancel.Interrupted s;
              })
      results
  end
