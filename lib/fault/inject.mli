(** Deterministic fault injection.

    Library code declares named {e fault sites} at module-initialization
    time and calls {!hit} (or {!short_write}) at the matching program
    point. By default every site is a no-op — one atomic read — so the
    hooks stay in production paths unconditionally, like
    {!Ncg_obs.Metrics} counters. A test, a CI job, or
    [ncg_experiment --fault-plan] can install a {e plan}: a seeded list
    of rules saying which sites misbehave, how (raise / delay /
    short-write), and when (always / on the Nth hit / every Nth hit /
    with probability p).

    {b Determinism.} Fault decisions never depend on scheduling. A plan
    only acts once it has been {e armed} in the current domain with
    {!arm}[ ~scope]; arming (re)creates every rule's hit counters and its
    SplitMix64 stream from [(plan.seed, site, rule index, scope)] alone.
    The supervised executor ({!Executor}) arms with [scope = task index]
    before a task's first attempt and does not re-arm on retries, so
    - the same plan, seed and scope always fire at the same hits, on any
      domain, for any [--domains];
    - hit counters persist across a task's retries, which is how
      transient faults are expressed: [nth:1] fails the first attempt
      and lets the retry pass, [always] fails every attempt and drives
      the task into quarantine.

    Unarmed domains (and all code outside the executor, e.g. cached-cell
    lookups on the calling domain) never fire, even with a plan
    installed. *)

type site

(** [site name] declares (or looks up) the fault site named [name].
    Same init-time-only contract as {!Ncg_obs.Metrics.register}: main
    domain, before fan-out. Raises [Invalid_argument] when called from a
    spawned domain or when the registry (64 slots) is full. *)
val site : string -> site

val site_name : site -> string

(** Registered site names, in registration order. *)
val sites : unit -> string list

(** {1 Built-in sites}

    Wired into the library at the named program points. *)

val bfs : site  (** ["bfs.traverse"] — entry of [Bfs.distances_within] *)

val best_response : site
(** ["best_response.compute"] — entry of the exact MaxNCG search *)

val dynamics_round : site
(** ["dynamics.round"] — start of each best-response round *)

val sweep_cell : site
(** ["sweep.cell"] — start of each computed (non-cached) sweep cell *)

val record_log_append : site
(** ["record_log.append"] — inside [Record_log.append], between framing
    and the write; the only site where short-write rules act *)

val service_accept : site
(** ["service.accept"] — in the sweep daemon ([ncg_served]), after a
    client connection is accepted and before its handler starts *)

val service_dispatch : site
(** ["service.dispatch"] — in the daemon scheduler, as a leased cell is
    handed to a worker *)

val queue_lease : site
(** ["queue.lease"] — entry of [Ncg_store.Work_queue.lease], before any
    queue state changes (a firing raise leaves the queue intact) *)

val service_heartbeat : site
(** ["service.heartbeat"] — in the daemon scheduler, as a worker [ping]
    is recorded and before the worker's health state changes (a firing
    raise drops the heartbeat: the worker stays silent this interval) *)

val service_cancel : site
(** ["service.cancel"] — in the daemon scheduler, on a client [cancel]
    before any job or queue state changes *)

(** {1 Plans} *)

type action =
  | Raise  (** raise {!Fault} at the site *)
  | Delay_ns of int64  (** sleep, then continue *)
  | Short_write of int
      (** write only the first [n] bytes (clamped to [len - 1]), then
          raise {!Fault}; ignored at sites probed with {!hit} *)

type trigger =
  | Always
  | Nth of int  (** fire exactly on the [n]-th hit since {!arm} *)
  | Every of int  (** fire on every [n]-th hit *)
  | Prob of float  (** fire with probability [p], seeded per scope *)

type rule = {
  site : string;
  action : action;
  trigger : trigger;
  budget : int option;
      (** Stop firing after this many fires (per {!arm} scope); [None]
          means unlimited. Hits keep counting while exhausted, but a
          [Prob] rule stops drawing from its stream — exhaustion happens
          at a deterministic hit, so decisions stay a pure function of
          (seed, site, rule index, scope). *)
}

type plan = { seed : int; rules : rule list }

(** Raised by a firing [Raise] or [Short_write] rule. *)
exception Fault of { site : string; action : string }

(** [parse_plan ~seed spec] parses the [--fault-plan] syntax:
    comma-separated [SITE=ACTION\[@TRIGGER\]\[@budget:N\]] rules where
    ACTION is [raise], [delay:MS] or [short:BYTES], TRIGGER is [always]
    (default), [nth:N], [every:N] or [p:P], and [budget:N] caps the rule
    at [N] fires per armed scope (e.g. [sweep.cell=raise@p:0.5@budget:2]:
    coin-flip crashes, but at most two per cell — so retries eventually
    pass). Qualifiers may appear in either order, at most once each.
    Site names are validated against the registry. *)
val parse_plan : seed:int -> string -> (plan, string) result

(** Inverse of {!parse_plan} (modulo default triggers). *)
val plan_to_string : plan -> string

(** {1 Installing and arming} *)

(** [install plan] makes [plan] the process-wide plan. Call before
    spawning domains. *)
val install : plan -> unit

(** Remove the installed plan. Already-armed domains stay armed until
    they {!disarm} or re-{!arm}. *)
val clear : unit -> unit

val installed : unit -> plan option

(** [arm ~scope] arms the installed plan (if any) in the calling domain,
    resetting every rule's hit counter and re-seeding its stream from
    [(plan.seed, site, rule index, scope)]. With no plan installed this
    disarms. *)
val arm : scope:int -> unit

(** Disarm the calling domain. *)
val disarm : unit -> unit

(** True when the calling domain is armed. *)
val armed : unit -> bool

(** {1 Probing} *)

(** [hit s] fires any armed rules for [s]: [Raise] raises {!Fault},
    [Delay_ns] sleeps, [Short_write] is ignored. No-op when unarmed. *)
val hit : site -> unit

(** [short_write s ~len] is like {!hit}, but a firing [Short_write n]
    rule returns [Some (min n (len - 1))] (clamped to [0]): the number
    of bytes of the [len]-byte write the caller should perform before
    raising {!Fault} via {!short_write_fault}. *)
val short_write : site -> len:int -> int option

(** The exception a caller should raise after honouring a
    {!short_write} cut. *)
val short_write_fault : site -> exn
