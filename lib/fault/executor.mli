(** Supervised work-queue executor.

    Unlike {!Ncg_util.Parallel}'s static contiguous chunking, {!map}
    hands out task indices from a shared atomic queue, so a slow or
    retried task never stalls a whole chunk; and instead of letting the
    first exception abort the map, every task failure is caught,
    retried, and ultimately {e quarantined} as a per-task
    [Error failure] while all other tasks still run to completion.

    Per attempt, a task runs under {!Cancel.with_control} with the given
    deadline and a cancellation flag watched by a dedicated {e watchdog
    domain}: when an attempt overruns the deadline the watchdog sets the
    flag and the task's next {!Cancel.checkpoint} raises — cancellation
    is cooperative, so a task that never checkpoints can only be cut off
    at its own deadline polls.

    Retries use a deterministic linear backoff ([backoff_ns * attempt])
    — a schedule, not jitter — and {!Cancel.Interrupted} (shutdown) is
    never retried. Fault injection composes: each task is armed with
    [Inject.arm ~scope:index] before its first attempt and disarmed
    after its last, with hit counters persisting across retries (see
    {!Inject}).

    Results are written into a per-index array, so the output order —
    and, given a deterministic task function and fault plan, the full
    outcome vector including failures — is independent of [domains] and
    scheduling. *)

type kind =
  | Timeout  (** {!Cancel.Timed_out}: watchdog, deadline or step budget *)
  | Interrupted  (** {!Cancel.Interrupted}: process shutdown *)
  | Crashed  (** any other exception, including {!Inject.Fault} *)

val kind_to_string : kind -> string

(** The {!kind} an exception would be reported as: {!Cancel.Timed_out}
    is [Timeout], {!Cancel.Interrupted} is [Interrupted], anything else
    [Crashed]. Exposed so ad-hoc retry loops (e.g. [--only-cell]
    reproduction) classify failures exactly like {!map}. *)
val classify : exn -> kind

type failure = {
  index : int;
  attempts : int;  (** attempts made; 0 = never started (shutdown) *)
  kind : kind;
  exn_text : string;
  exn : exn;
}

type event =
  | Attempt_started of { index : int; attempt : int }
  | Attempt_failed of {
      index : int;
      attempt : int;
      kind : kind;
      exn_text : string;
      will_retry : bool;
    }
  | Quarantined of failure

(** [map ~domains f n] runs [f ~index ~attempt] for every
    [index < n] over [domains] worker domains (the calling domain is
    worker 0, as in {!Ncg_util.Parallel}) and returns the outcome
    vector in index order.

    - [max_retries] (default 0): extra attempts after the first
      failure; attempt numbers start at 1.
    - [backoff_ns] (default 0): sleep [backoff_ns * attempt] before
      retry number [attempt + 1].
    - [deadline_ns]: per-attempt budget; enables the watchdog domain
      and the task-local {!Cancel} deadline.
    - [on_event]: called from worker domains as attempts start, fail,
      and quarantine (the caller must be thread-safe; {!Ncg_obs.Events}
      is).

    After {!Cancel.request_shutdown}, no new tasks or retries start;
    tasks never started are reported as [Error] with [attempts = 0] and
    [kind = Interrupted]. *)
val map :
  ?domains:int ->
  ?max_retries:int ->
  ?backoff_ns:int64 ->
  ?deadline_ns:int64 ->
  ?on_event:(event -> unit) ->
  (index:int -> attempt:int -> 'a) ->
  int ->
  ('a, failure) result array
