module Metrics = Ncg_obs.Metrics
module Clock = Ncg_obs.Clock

exception Timed_out of string
exception Interrupted of int

let () =
  Printexc.register_printer (function
    | Timed_out reason -> Some (Printf.sprintf "Ncg_fault.Cancel.Timed_out(%s)" reason)
    | Interrupted s -> Some (Printf.sprintf "Ncg_fault.Cancel.Interrupted(signal %d)" s)
    | _ -> None)

let move_steps = Metrics.register "dynamics.move_steps"
let step_budget_hits = Metrics.register "dynamics.step_budget_hits"

type control = {
  deadline_ns : int64; (* absolute Clock.now_ns deadline; 0 = none *)
  cancel : bool Atomic.t option;
  mutable steps_left : int; (* -1 = unlimited *)
}

let key : control option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

(* -1 = no shutdown requested; otherwise the signal number. *)
let shutdown = Atomic.make min_int

let request_shutdown s = Atomic.set shutdown s
let reset_shutdown () = Atomic.set shutdown min_int

let shutdown_requested () =
  match Atomic.get shutdown with s when s = min_int -> None | s -> Some s

let checkpoint () =
  (match Atomic.get shutdown with
  | s when s <> min_int -> raise (Interrupted s)
  | _ -> ());
  match Domain.DLS.get key with
  | None -> ()
  | Some c ->
      (match c.cancel with
      | Some flag when Atomic.get flag -> raise (Timed_out "watchdog")
      | _ -> ());
      if c.steps_left >= 0 then begin
        Metrics.incr move_steps;
        if c.steps_left = 0 then begin
          Metrics.incr step_budget_hits;
          raise (Timed_out "step budget exhausted")
        end;
        c.steps_left <- c.steps_left - 1
      end;
      if c.deadline_ns <> 0L && Int64.compare (Clock.now_ns ()) c.deadline_ns > 0
      then raise (Timed_out "deadline")

let with_control ?timeout_ns ?cancel f =
  let deadline_ns =
    match timeout_ns with
    | None -> 0L
    | Some ns -> Int64.add (Clock.now_ns ()) ns
  in
  let prev = Domain.DLS.get key in
  Domain.DLS.set key (Some { deadline_ns; cancel; steps_left = -1 });
  Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f

let rec with_step_budget n f =
  if n <= 0 then f ()
  else
    match Domain.DLS.get key with
    | Some c ->
        let saved = c.steps_left in
        c.steps_left <- n;
        Fun.protect ~finally:(fun () -> c.steps_left <- saved) f
    | None ->
        (* No enclosing task control: install a bare one so the budget
           has somewhere to live (e.g. --only-cell, direct Dynamics
           runs). *)
        with_control (fun () -> with_step_budget n f)
