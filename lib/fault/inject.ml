module Splitmix64 = Ncg_prng.Splitmix64

(* Site registry — same init-time-only discipline as Ncg_obs.Metrics:
   plain unsynchronized state, written only from the main domain before
   fan-out, read-only afterwards. *)

let capacity = 64

type site = int

let names =
  Array.make capacity ""
[@@lint.domain_local "written only on the main domain at init time, read-only after fan-out"]

let registered =
  ref 0
[@@lint.domain_local "written only on the main domain at init time, read-only after fan-out"]

let site name =
  if not (Domain.is_main_domain ()) then
    invalid_arg
      (Printf.sprintf
         "Inject.site %S: sites must be registered from the main domain at \
          init time"
         name);
  let n = !registered in
  let rec find i = if i >= n then None else if String.equal names.(i) name then Some i else find (i + 1) in
  match find 0 with
  | Some id -> id
  | None ->
      if n >= capacity then
        invalid_arg
          (Printf.sprintf "Inject.site %S: registry full (%d sites)" name
             capacity);
      names.(n) <- name;
      registered := n + 1;
      n

let site_name id = names.(id)
let sites () = List.init !registered (fun i -> names.(i))
let find_site name =
  let n = !registered in
  let rec go i =
    if i >= n then None else if String.equal names.(i) name then Some i else go (i + 1)
  in
  go 0

let bfs = site "bfs.traverse"
let best_response = site "best_response.compute"
let dynamics_round = site "dynamics.round"
let sweep_cell = site "sweep.cell"
let record_log_append = site "record_log.append"
let service_accept = site "service.accept"
let service_dispatch = site "service.dispatch"
let queue_lease = site "queue.lease"
let service_heartbeat = site "service.heartbeat"
let service_cancel = site "service.cancel"

(* Plans *)

type action = Raise | Delay_ns of int64 | Short_write of int
type trigger = Always | Nth of int | Every of int | Prob of float
type rule = {
  site : string;
  action : action;
  trigger : trigger;
  budget : int option;
}
type plan = { seed : int; rules : rule list }

exception Fault of { site : string; action : string }

let () =
  Printexc.register_printer (function
    | Fault { site; action } ->
        Some (Printf.sprintf "Ncg_fault.Inject.Fault(site=%s, action=%s)" site action)
    | _ -> None)

let action_to_string = function
  | Raise -> "raise"
  | Delay_ns ns -> Printf.sprintf "delay:%g" (Int64.to_float ns /. 1e6)
  | Short_write n -> Printf.sprintf "short:%d" n

let trigger_to_string = function
  | Always -> "always"
  | Nth n -> Printf.sprintf "nth:%d" n
  | Every n -> Printf.sprintf "every:%d" n
  | Prob p -> Printf.sprintf "p:%g" p

let rule_to_string r =
  let quals =
    (match r.trigger with Always -> [] | t -> [ trigger_to_string t ])
    @ match r.budget with None -> [] | Some b -> [ Printf.sprintf "budget:%d" b ]
  in
  String.concat "@"
    (Printf.sprintf "%s=%s" r.site (action_to_string r.action) :: quals)

let plan_to_string p = String.concat "," (List.map rule_to_string p.rules)

let parse_rule spec =
  let ( let* ) = Result.bind in
  let fail fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "%S: %s" spec m)) fmt in
  let int_of s what =
    match int_of_string_opt s with
    | Some n -> Ok n
    | None -> fail "%s %S is not an integer" what s
  in
  let float_of s what =
    match float_of_string_opt s with
    | Some f -> Ok f
    | None -> fail "%s %S is not a number" what s
  in
  let* site, rest =
    match String.index_opt spec '=' with
    | Some i ->
        Ok
          ( String.sub spec 0 i,
            String.sub spec (i + 1) (String.length spec - i - 1) )
    | None -> fail "expected SITE=ACTION[@TRIGGER]"
  in
  let* () =
    match find_site site with
    | Some _ -> Ok ()
    | None ->
        fail "unknown fault site %S (known: %s)" site
          (String.concat ", " (sites ()))
  in
  let action_s, quals =
    match String.split_on_char '@' rest with
    | [] -> (rest, [])
    | a :: qs -> (a, qs)
  in
  let* action =
    match String.split_on_char ':' action_s with
    | [ "raise" ] -> Ok Raise
    | [ "delay"; ms ] ->
        let* ms = float_of ms "delay" in
        if ms < 0. then fail "delay must be >= 0 ms"
        else Ok (Delay_ns (Int64.of_float (ms *. 1e6)))
    | [ "short"; bytes ] ->
        let* b = int_of bytes "short" in
        if b < 0 then fail "short must be >= 0 bytes" else Ok (Short_write b)
    | _ -> fail "unknown action %S (raise | delay:MS | short:BYTES)" action_s
  in
  (* The '@' qualifiers after the action: at most one trigger and at
     most one budget, in either order. *)
  let* trigger, budget =
    let parse_qual (trigger, budget) q =
      let dup what = fail "duplicate %s qualifier %S" what q in
      match String.split_on_char ':' q with
      | [ "always" ] -> (
          match trigger with Some _ -> dup "trigger" | None -> Ok (Some Always, budget))
      | [ "nth"; n ] -> (
          match trigger with
          | Some _ -> dup "trigger"
          | None ->
              let* n = int_of n "nth" in
              if n < 1 then fail "nth must be >= 1"
              else Ok (Some (Nth n), budget))
      | [ "every"; n ] -> (
          match trigger with
          | Some _ -> dup "trigger"
          | None ->
              let* n = int_of n "every" in
              if n < 1 then fail "every must be >= 1"
              else Ok (Some (Every n), budget))
      | [ "p"; p ] -> (
          match trigger with
          | Some _ -> dup "trigger"
          | None ->
              let* p = float_of p "p" in
              if p < 0. || p > 1. then fail "p must be in [0, 1]"
              else Ok (Some (Prob p), budget))
      | [ "budget"; b ] -> (
          match budget with
          | Some _ -> dup "budget"
          | None ->
              let* b = int_of b "budget" in
              if b < 1 then fail "budget must be >= 1"
              else Ok (trigger, Some b))
      | _ ->
          fail "unknown qualifier %S (always | nth:N | every:N | p:P | budget:N)"
            q
    in
    let rec go acc = function
      | [] -> Ok acc
      | q :: rest ->
          let* acc = parse_qual acc q in
          go acc rest
    in
    go (None, None) quals
  in
  Ok { site; action; trigger = Option.value trigger ~default:Always; budget }

let parse_plan ~seed spec =
  let specs =
    String.split_on_char ',' spec |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if specs = [] then Error "empty fault plan"
  else
    let rec go acc = function
      | [] -> Ok { seed; rules = List.rev acc }
      | s :: rest -> (
          match parse_rule s with
          | Ok r -> go (r :: acc) rest
          | Error _ as e -> e)
    in
    go [] specs

(* Installation is process-wide; arming is domain-local. *)

let current : plan option Atomic.t = Atomic.make None
let install p = Atomic.set current (Some p)
let clear () = Atomic.set current None
let installed () = Atomic.get current

type rule_state = {
  action : action;
  trigger : trigger;
  budget : int option;
  mutable hits : int;
  mutable fired : int;
  rng : Splitmix64.t;
}

let armed_key : rule_state list array option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

(* Mix (plan seed, site, rule index, scope) into one 64-bit stream seed.
   Any deterministic injective-enough mix works; scheduling never feeds
   into it. *)
let derive_seed ~seed ~site ~rule_ix ~scope =
  let sm = Splitmix64.create (Int64.of_int seed) in
  let a = Splitmix64.next sm in
  let b = Splitmix64.next sm in
  Int64.add a
    (Int64.add
       (Int64.mul (fnv1a site) (Int64.logor b 1L))
       (Int64.add
          (Int64.mul (Int64.of_int rule_ix) 0x9E3779B97F4A7C15L)
          (Int64.mul (Int64.of_int scope) 0xBF58476D1CE4E5B9L)))

let disarm () = Domain.DLS.set armed_key None

let arm ~scope =
  match Atomic.get current with
  | None -> disarm ()
  | Some plan ->
      let per_site = Array.make capacity [] in
      List.iteri
        (fun rule_ix r ->
          match find_site r.site with
          | None -> ()
          | Some id ->
              let rng =
                Splitmix64.create
                  (derive_seed ~seed:plan.seed ~site:r.site ~rule_ix ~scope)
              in
              per_site.(id) <-
                per_site.(id)
                @ [
                    {
                      action = r.action;
                      trigger = r.trigger;
                      budget = r.budget;
                      hits = 0;
                      fired = 0;
                      rng;
                    };
                  ])
        plan.rules;
      Domain.DLS.set armed_key (Some per_site)

let armed () = Domain.DLS.get armed_key <> None

let unit_float bits = Int64.to_float (Int64.shift_right_logical bits 11) *. 0x1.p-53

let fires st =
  st.hits <- st.hits + 1;
  (* An exhausted budget short-circuits before the trigger is evaluated,
     so a Prob rule stops drawing from its stream at a point that is
     itself deterministic — the decision sequence stays a pure function
     of (plan seed, site, rule index, scope). *)
  let exhausted = match st.budget with Some b -> st.fired >= b | None -> false in
  if exhausted then false
  else begin
    let f =
      match st.trigger with
      | Always -> true
      | Nth n -> st.hits = n
      | Every n -> st.hits mod n = 0
      | Prob p -> unit_float (Splitmix64.next st.rng) < p
    in
    if f then st.fired <- st.fired + 1;
    f
  end

let fault id action = Fault { site = names.(id); action }

let hit id =
  match Domain.DLS.get armed_key with
  | None -> ()
  | Some per_site ->
      List.iter
        (fun st ->
          if fires st then
            match st.action with
            | Raise -> raise (fault id "raise")
            | Delay_ns ns -> Unix.sleepf (Int64.to_float ns *. 1e-9)
            | Short_write _ -> ())
        per_site.(id)

let short_write id ~len =
  match Domain.DLS.get armed_key with
  | None -> None
  | Some per_site ->
      let cut = ref None in
      List.iter
        (fun st ->
          if fires st then
            match st.action with
            | Raise -> raise (fault id "raise")
            | Delay_ns ns -> Unix.sleepf (Int64.to_float ns *. 1e-9)
            | Short_write n ->
                if !cut = None then cut := Some (max 0 (min n (len - 1))))
        per_site.(id);
      !cut

let short_write_fault id = fault id "short_write"
