(** Cooperative cancellation: deadlines, step budgets, shutdown.

    Long-running search loops (the dynamics round loop, the exact
    best-response radius search) call {!checkpoint} at their iteration
    boundaries. A checkpoint is cheap when nothing is armed — one atomic
    read plus one domain-local read — and raises when any of the
    installed limits has tripped:

    - {!Timed_out} when the supervising executor's watchdog flagged the
      task, the task's own deadline passed, or the per-move step budget
      ran out;
    - {!Interrupted} after {!request_shutdown} (the SIGINT/SIGTERM path
      of [ncg_experiment]).

    Controls are domain-local and scoped: {!with_control} installs a
    deadline and a cancellation flag for the duration of a task (the
    executor does this per attempt), {!with_step_budget} bounds the
    number of checkpoints inside it (the dynamics engine does this per
    player move). *)

(** Raised by {!checkpoint}; the payload says which limit tripped
    (["watchdog"], ["deadline"], ["step budget exhausted"]). *)
exception Timed_out of string

(** Raised by {!checkpoint} after {!request_shutdown}; the payload is
    the OCaml signal number. *)
exception Interrupted of int

(** [with_control ?timeout_ns ?cancel f] runs [f] with a fresh control
    installed in the calling domain: an absolute deadline [timeout_ns]
    from now (if given) and an external cancellation flag (if given —
    the executor's watchdog sets it). Restores the previous control on
    exit. *)
val with_control :
  ?timeout_ns:int64 -> ?cancel:bool Atomic.t -> (unit -> 'a) -> 'a

(** [with_step_budget n f] runs [f] allowing at most [n] checkpoints;
    the [n+1]-th raises [Timed_out "step budget exhausted"] and
    increments the ["dynamics.step_budget_hits"] counter. [n <= 0] means
    unlimited. Nests inside {!with_control} (shares its control) and
    restores the enclosing budget on exit. *)
val with_step_budget : int -> (unit -> 'a) -> 'a

(** Poll every installed limit; raise {!Timed_out} / {!Interrupted} when
    one has tripped, return unit otherwise. While a step budget is
    active, each call counts one step into ["dynamics.move_steps"]. *)
val checkpoint : unit -> unit

(** {1 Process shutdown}

    A process-wide flag for signal handlers: once set, every
    {!checkpoint} in every domain raises {!Interrupted}, and
    {!Executor.map} stops dispensing tasks. *)

val request_shutdown : int -> unit

(** The signal passed to {!request_shutdown}, if any. *)
val shutdown_requested : unit -> int option

(** Clear the shutdown flag (tests). *)
val reset_shutdown : unit -> unit

(** {1 Counters}

    Registered in {!Ncg_obs.Metrics} at init time. *)

val move_steps : Ncg_obs.Metrics.counter
(** ["dynamics.move_steps"] — checkpoints counted under a step budget *)

val step_budget_hits : Ncg_obs.Metrics.counter
(** ["dynamics.step_budget_hits"] — budgets that ran out *)
