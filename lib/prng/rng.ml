type t = Splitmix64.t

(* Mix the user-facing int seed through one SplitMix64 step so that small
   consecutive seeds (0, 1, 2, ...) still produce well-separated streams. *)
let create seed =
  let boot = Splitmix64.create (Int64.of_int seed) in
  Splitmix64.create (Splitmix64.next boot)

let copy = Splitmix64.copy
let split = Splitmix64.split

(* 62 uniformly distributed non-negative bits. *)
let bits62 t = Int64.to_int (Int64.shift_right_logical (Splitmix64.next t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top multiple of [bound] to avoid modulo
     bias. The loop almost never iterates more than once. *)
  let limit = 0x3FFFFFFFFFFFFFFF / bound * bound in
  let rec draw () =
    let r = bits62 t in
    if r < limit then r mod bound else draw ()
  in
  draw ()

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in_range: hi < lo";
  lo + int t (hi - lo + 1)

let float t =
  let mantissa = Int64.to_int (Int64.shift_right_logical (Splitmix64.next t) 11) in
  float_of_int mantissa *. 0x1.0p-53

let bool t = Int64.logand (Splitmix64.next t) 1L = 1L
let bernoulli t p = float t < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample t ~n ~k =
  if k < 0 || k > n then invalid_arg "Rng.sample: need 0 <= k <= n";
  (* Floyd's algorithm: k iterations, O(k) expected hash operations. *)
  let chosen = Hashtbl.create (2 * k) in
  for j = n - k to n - 1 do
    let r = int t (j + 1) in
    if Hashtbl.mem chosen r then Hashtbl.replace chosen j ()
    else Hashtbl.replace chosen r ()
  done;
  let out = Array.make k 0 in
  let i = ref 0 in
  (Hashtbl.iter [@lint.allow "D3" "out is Array.sort-ed before it escapes"])
    (fun x () ->
      out.(!i) <- x;
      incr i)
    chosen;
  Array.sort compare out;
  out

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
