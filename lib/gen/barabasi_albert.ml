module Graph = Ncg_graph.Graph
module Rng = Ncg_prng.Rng

let generate rng ~n ~m =
  if m < 1 || m >= n then invalid_arg "Barabasi_albert.generate: need 1 <= m < n";
  (* [endpoints] holds every edge endpoint once; sampling uniformly from it
     is degree-proportional sampling. *)
  let endpoints = ref [] in
  let edges = ref [] in
  let add_edge u v =
    edges := (u, v) :: !edges;
    endpoints := u :: v :: !endpoints
  in
  (* Seed: star on m+1 vertices — connected, every vertex has degree >= 1. *)
  for leaf = 1 to m do
    add_edge 0 leaf
  done;
  let endpoint_array = ref (Array.of_list !endpoints) in
  let refresh () = endpoint_array := Array.of_list !endpoints in
  for v = m + 1 to n - 1 do
    refresh ();
    let chosen = Hashtbl.create m in
    let targets = ref [] in
    (* Rejection loop: m distinct degree-proportional picks among existing
       vertices. Terminates because at least m distinct vertices exist.
       Targets are kept in draw order (not hash order): the edge list
       feeds the endpoints multiset and hence future draws, so iteration
       order here is part of the determinism contract. *)
    while Hashtbl.length chosen < m do
      let t = (!endpoint_array).(Rng.int rng (Array.length !endpoint_array)) in
      if not (Hashtbl.mem chosen t) then begin
        Hashtbl.replace chosen t ();
        targets := t :: !targets
      end
    done;
    List.iter (fun t -> add_edge v t) (List.rev !targets)
  done;
  Graph.of_edges ~n !edges
