module Graph = Ncg_graph.Graph

type t = {
  graph : Graph.t;
  buys : (int * int) list;
  coords : int array array;
  is_intersection : bool array;
  d : int;
  ell : int;
  deltas : int array;
}

let validate ~d ~ell ~deltas =
  if d < 1 then invalid_arg "Torus_grid: need d >= 1";
  if ell < 1 then invalid_arg "Torus_grid: need ell >= 1";
  if Array.length deltas <> d then
    invalid_arg "Torus_grid: deltas must have length d";
  Array.iter
    (fun delta -> if delta < 2 then invalid_arg "Torus_grid: need every delta >= 2")
    deltas

(* Enumerate all tuples (a_1, ..., a_d) with a_i drawn from
   [values_of_dim i] and call [f] on each. *)
let enumerate_tuples ~d ~values_of_dim f =
  let tuple = Array.make d 0 in
  let rec go i =
    if i = d then f (Array.copy tuple)
    else
      List.iter
        (fun v ->
          tuple.(i) <- v;
          go (i + 1))
        (values_of_dim i)
  in
  go 0

(* Sign vectors as arrays of ±1, indexed by the bits of 0 .. 2^d - 1. *)
let sign_vectors d =
  List.init (1 lsl d) (fun mask ->
      Array.init d (fun i -> if mask land (1 lsl i) <> 0 then 1 else -1))

let positive_mod x m = ((x mod m) + m) mod m

type variant = Closed | Open

let build variant ~d ~ell ~deltas =
  validate ~d ~ell ~deltas;
  (* Moduli per dimension (closed) / coordinate maxima (open). *)
  let modulus = Array.map (fun delta -> 2 * delta * ell) deltas in
  (* 1. Intersection vertices. *)
  let table : (int array, int) Hashtbl.t = Hashtbl.create 1024 in
  let coords_rev = ref [] in
  let count = ref 0 in
  let register c =
    Hashtbl.replace table c !count;
    coords_rev := c :: !coords_rev;
    incr count
  in
  (match variant with
  | Closed ->
      (* a_i in [0, 2*delta_i), all of the same parity. *)
      List.iter
        (fun parity ->
          let values_of_dim i =
            List.init deltas.(i) (fun j -> ell * (parity + (2 * j)))
          in
          enumerate_tuples ~d ~values_of_dim register)
        [ 0; 1 ]
  | Open ->
      (* a_i in [0, delta_i], all of the same parity. *)
      List.iter
        (fun parity ->
          let values_of_dim i =
            let upper = deltas.(i) in
            List.filter_map
              (fun a -> if a mod 2 = parity then Some (ell * a) else None)
              (List.init (upper + 1) Fun.id)
          in
          enumerate_tuples ~d ~values_of_dim register)
        [ 0; 1 ]);
  let n_intersection = !count in
  (* 2. Paths. Determine each unordered adjacent pair once (smaller id is
     the canonical path origin), then materialize interior vertices. *)
  let neighbor_of c s =
    match variant with
    | Closed ->
        Some (Array.init d (fun i -> positive_mod (c.(i) + (ell * s.(i))) modulus.(i)))
    | Open ->
        let w = Array.init d (fun i -> c.(i) + (ell * s.(i))) in
        let ok = ref true in
        Array.iteri (fun i x -> if x < 0 || x > deltas.(i) * ell then ok := false) w;
        if !ok then Some w else None
  in
  let signs = sign_vectors d in
  let pairs = ref [] in
  (Hashtbl.iter [@lint.allow "D3" "collected pairs are List.sort-ed below"])
    (fun c id ->
      List.iter
        (fun s ->
          match neighbor_of c s with
          | None -> ()
          | Some w -> begin
              match Hashtbl.find_opt table w with
              | Some id' when id < id' -> pairs := (id, id', s) :: !pairs
              | Some _ | None -> ()
            end)
        signs)
    table;
  (* Deterministic ordering regardless of hash iteration order. *)
  let pairs = List.sort compare !pairs in
  let n_total = n_intersection + (List.length pairs * (ell - 1)) in
  let coords = Array.make n_total [||] in
  List.iteri (fun i c -> coords.(n_intersection - 1 - i) <- c) !coords_rev;
  let is_intersection = Array.make n_total false in
  Array.fill is_intersection 0 n_intersection true;
  let next_id = ref n_intersection in
  let edges = ref [] in
  let buys = ref [] in
  List.iter
    (fun (v, w, s) ->
      if ell = 1 then begin
        edges := (v, w) :: !edges;
        buys := (v, w) :: !buys
      end
      else begin
        let cv = coords.(v) in
        let prev = ref v in
        for j = 1 to ell - 1 do
          let id = !next_id in
          incr next_id;
          coords.(id) <-
            Array.init d (fun i ->
                match variant with
                | Closed -> positive_mod (cv.(i) + (j * s.(i))) modulus.(i)
                | Open -> cv.(i) + (j * s.(i)));
          edges := (!prev, id) :: !edges;
          (* Interior vertex x_j buys the edge towards x_{j-1}. *)
          buys := (id, !prev) :: !buys;
          prev := id
        done;
        (* x_{ell-1} also buys the closing edge towards the far endpoint. *)
        edges := (!prev, w) :: !edges;
        buys := (!prev, w) :: !buys
      end)
    pairs;
  {
    graph = Graph.of_edges ~n:n_total !edges;
    buys = List.rev !buys;
    coords;
    is_intersection;
    d;
    ell;
    deltas = Array.copy deltas;
  }

let closed ~d ~ell ~deltas = build Closed ~d ~ell ~deltas
let open_grid ~d ~ell ~deltas = build Open ~d ~ell ~deltas

let intersection_at t target =
  if Array.length target <> t.d then
    invalid_arg "Torus_grid.intersection_at: wrong arity";
  let reduced =
    Array.mapi (fun i x -> positive_mod x (2 * t.deltas.(i) * t.ell)) target
  in
  let n = Array.length t.coords in
  let rec find i =
    if i >= n then None
    else if t.is_intersection.(i) && t.coords.(i) = reduced then Some i
    else find (i + 1)
  in
  find 0

let coordinate_distance_lower_bound t x y =
  let cx = t.coords.(x) and cy = t.coords.(y) in
  let best = ref 0 in
  for i = 0 to t.d - 1 do
    let m = 2 * t.deltas.(i) * t.ell in
    let diff = abs (cx.(i) - cy.(i)) in
    let wrapped = min diff (m - diff) in
    if wrapped > !best then best := wrapped
  done;
  !best

let vertices_per_delta_d ~d ~ell ~deltas_prefix =
  (* n = 2 * (prod deltas) * (2^{d-1}(ell-1) + 1); return the factor
     multiplying delta_d. *)
  let prefix = Array.fold_left ( * ) 1 deltas_prefix in
  2 * prefix * (((1 lsl (d - 1)) * (ell - 1)) + 1)

let params_for_theorem_3_12 ~alpha ~k ~n_budget =
  if alpha <= 1.0 then invalid_arg "params_for_theorem_3_12: need alpha > 1";
  let ell = int_of_float (ceil alpha) in
  if k < ell then None
  else begin
    (* Smallest d with 2^d >= k/ell + 2, at least 2. *)
    let rec find_d d = if (1 lsl d) * ell >= k + (2 * ell) then d else find_d (d + 1) in
    let d = max 2 (find_d 1) in
    let side = ((k + ell - 1) / ell) + 1 in
    let deltas_prefix = Array.make (d - 1) side in
    let per = vertices_per_delta_d ~d ~ell ~deltas_prefix in
    let delta_d = n_budget / per in
    if delta_d < side then None
    else Some (d, ell, Array.append deltas_prefix [| delta_d |])
  end

let params_for_theorem_4_2 ~k ~n_budget =
  if k < 1 then invalid_arg "params_for_theorem_4_2: need k >= 1";
  let delta1 = ((k + 1) / 2) + 1 in
  let delta2 = n_budget / (6 * delta1) in
  if delta2 < delta1 then None else Some (2, 2, [| delta1; delta2 |])
