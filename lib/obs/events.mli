(** Structured JSONL event log and TTY-aware progress line.

    Each event is one compact JSON line:
    [{"ts_ns": ..., "severity": "info", "domain": 3, "event": "dynamics.move",
    ...fields}] — monotonic timestamp, severity, the emitting OCaml
    domain id, the event name, then the caller's fields. The sink is a
    single mutex-guarded channel shared by all domains, so lines from a
    parallel sweep interleave whole; ordering across domains is
    scheduling-dependent (sort by [ts_ns] to reconstruct), per-event
    content from a given cell is deterministic.

    Without a sink installed, {!emit} is one ref read — safe to call
    unconditionally from instrumented code. Use {!active} to skip
    building expensive fields. *)

type severity = Debug | Info | Warn | Error

val severity_to_string : severity -> string

(** Install (or clear, with [None]) the global sink. The caller owns the
    channel lifetime. *)
val set_sink : out_channel option -> unit

(** True when a sink is installed. *)
val active : unit -> bool

(** [emit ~severity name fields] writes one JSONL line to the sink, if
    any. [severity] defaults to [Info]. *)
val emit : ?severity:severity -> string -> (string * Json.t) list -> unit

(** [with_file path f] installs a file sink for the duration of [f],
    then closes it (exception-safe). The log is written to a
    same-directory temp file and renamed to [path] on close, so [path]
    never holds a partial log; a crash leaves only the temp file. *)
val with_file : string -> (unit -> 'a) -> 'a

(** {1 Progress line}

    A single live status line on stderr ([\r]-overwritten, erased with
    [ESC\[K]). Enabled by default only when stderr is an interactive
    terminal — piped output and CI logs never see control characters. *)

(** Force the progress line on or off (e.g. off under [--quiet]). *)
val set_progress : bool -> unit

(** True when progress rendering is currently enabled. *)
val progress_enabled : unit -> bool

(** Overwrite the live status line (no-op when disabled). Safe to call
    from any domain. *)
val progress : string -> unit

(** Erase the status line, if one was drawn. Call before normal output
    resumes. *)
val progress_done : unit -> unit
