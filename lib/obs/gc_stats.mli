(** GC telemetry: allocation and collection deltas over a window.

    Distinguishes {e allocation churn} from {e algorithmic work}: a slow
    sweep cell with huge [allocated_words] wants allocation fixes; one
    with small allocation but big solver counters wants algorithmic ones.

    Word counters come from [Gc.counters] and are domain-local, so a
    delta captured inside the domain running a sweep cell measures
    exactly that cell's allocations; {!allocated_words}
    ([minor + major - promoted]) is deterministic for deterministic work
    (promotion timing cancels out of the sum) and participates in the
    sweep bit-identity test. Collection counts come from [Gc.quick_stat]
    and are program-wide: they are telemetry, not reproducible numbers. *)

type snapshot = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
}

val zero : snapshot

(** Current counter values. Flushes the minor heap ([Gc.minor], cheap at
    window boundaries) first: without the flush the runtime's young-area
    accounting is quantized at minor-heap-chunk granularity and word
    deltas shift by chunk multiples depending on domain placement. *)
val capture : unit -> snapshot

(** Pointwise [after - before]. *)
val diff : before:snapshot -> after:snapshot -> snapshot

(** Pointwise sum, for aggregating per-cell deltas. *)
val add : snapshot -> snapshot -> snapshot

val total : snapshot list -> snapshot

(** Total words allocated in the window: [minor + major - promoted].
    The deterministic field — identical across [--domains] for a fixed
    seed when the delta is captured inside the owning domain. *)
val allocated_words : snapshot -> float

(** [measure f] is [f ()] together with the GC delta across the call. *)
val measure : (unit -> 'a) -> 'a * snapshot

(** Object with [allocated_words] first, then the raw fields. *)
val to_json : snapshot -> Json.t

(** Inverse of {!to_json} (the derived [allocated_words] is ignored on
    read): [of_json (to_json s) = Ok s]. Used to restore cached sweep
    cells from {!Ncg_store}. *)
val of_json : Json.t -> (snapshot, string) result
