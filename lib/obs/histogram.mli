(** Log-bucketed latency histograms for the hot oracles.

    HDR-style fixed buckets: boundaries grow by a factor of [sqrt 2] (two
    buckets per octave) from 100ns up to ~100s, plus an underflow and an
    overflow bucket — 62 buckets total, so a histogram is a few hundred
    bytes and merging is pointwise addition. Any recorded duration is
    located to within one bucket (~41% relative error), which is plenty to
    tell a 2µs best response from a 200ms one.

    Recording follows the {!Metrics} collector discipline: histograms only
    record while a domain-local collector is installed (see {!collect});
    otherwise {!record_ns} is a no-op and {!time} runs its thunk without
    touching the clock. Collectors never cross domains, so per-cell
    histograms in a parallel sweep depend only on the work the cell did.

    Determinism caveat: bucket {e placement} depends on measured wall
    time, so bucket counts differ run to run; the {e number of samples}
    per histogram ({!count}, {!counts_only}) is deterministic for
    deterministic work and is what the sweep bit-identity test compares. *)

type histogram

(** [register name] returns the histogram named [name], creating it on
    first use. Same contract as {!Metrics.register}: call at module
    initialization time from the main domain only. Raises
    [Invalid_argument] from a spawned domain or when the registry
    (32 slots) is full. *)
val register : string -> histogram

val name : histogram -> string

(** {1 Built-in histograms} *)

val best_response : histogram  (** around [Best_response.compute] *)

val sum_best_response : histogram  (** around [Sum_best_response.improving] *)

val set_cover : histogram  (** around [Set_cover.solve] *)

val dynamics_round : histogram  (** one sample per dynamics round *)

val sweep_cell : histogram  (** one sample per sweep cell *)

(** {1 Bucket scheme} *)

(** Upper boundaries of the finite buckets, in ns: [round(100 * 2^(i/2))]
    for [i = 0 .. 60]. Bucket [0] is [\[0, 100ns)]; the last (overflow)
    bucket is unbounded. *)
val boundaries : int64 array

val bucket_count : int

(** [bucket_of_ns ns] is the index of the bucket containing [ns]. *)
val bucket_of_ns : int64 -> int

(** {1 Recording} *)

(** [record_ns h ns] adds one sample (clamped at 0) to [h] in the current
    domain's collector, if any. *)
val record_ns : histogram -> int64 -> unit

(** [time h f] runs [f] and records its wall time into [h]. Without a
    collector, exactly [f ()] — no clock read. If [f] raises, nothing is
    recorded. *)
val time : histogram -> (unit -> 'a) -> 'a

val recording : unit -> bool

(** {1 Collecting} *)

(** One frozen histogram: per-bucket counts plus total, sum and max. *)
type hist = { counts : int array; total : int; sum_ns : int64; max_ns : int64 }

(** Every registered histogram, in registration order (zero-sample
    histograms included, so snapshots have a stable shape). *)
type snapshot = (string * hist) list

val empty_hist : hist

(** [collect f] installs a fresh collector, runs [f], uninstalls it and
    returns [f]'s result with the recorded snapshot. Nests like
    {!Metrics.collect}: inner samples are folded into the enclosing
    collector on exit. *)
val collect : (unit -> 'a) -> 'a * snapshot

(** Pointwise bucket sum; [max_ns] is the max of the two. *)
val merge : snapshot -> snapshot -> snapshot

val total : snapshot list -> snapshot

(** {1 Queries} *)

val count : hist -> int
val sum_ns : hist -> int64
val max_ns : hist -> int64
val mean_ns : hist -> float

(** [percentile_ns h q] for [q] in [0,1]: the upper boundary of the
    bucket holding the [ceil (q * count)]-th smallest sample — exact to
    within one sqrt(2) bucket, conservative (never under-reports). The
    overflow bucket reports the observed max. [nan] when empty. *)
val percentile_ns : hist -> float -> float

val p50_ns : hist -> float
val p90_ns : hist -> float
val p99_ns : hist -> float

(** Human-friendly duration: ["1.23ms"], ["-"] for nan. *)
val pp_ns : float -> string

(** {1 Export} *)

(** Object keyed by histogram name; each value carries [count], [sum_ns],
    [max_ns], [p50_ns]/[p90_ns]/[p99_ns] and the nonzero [buckets] as
    [{le_ns, count}] pairs ([le_ns] null for the overflow bucket).
    Zero-sample histograms are dropped. *)
val to_json : snapshot -> Json.t

(** Table of count / p50 / p90 / p99 / max, zero-sample rows dropped. *)
val to_markdown : snapshot -> string

(** The deterministic projection: histogram name to sample count, for
    every registered histogram. Equal across [--domains] values for a
    fixed seed (bucket placement is not). *)
val counts_only : snapshot -> (string * int) list

(** {1 Exact codec}

    {!to_json} is a human-oriented export: it drops empty histograms and
    zero buckets. The exact codec is lossless —
    [of_json_exact (to_json_exact snap) = Ok snap] for any snapshot —
    and is what {!Ncg_store} cell records use, so a cached sweep cell
    restores bit-for-bit. [of_json_exact] rejects bucket arrays whose
    length differs from {!bucket_count} (a bucket-scheme change
    invalidates old records rather than misreading them). *)

val to_json_exact : snapshot -> Json.t
val of_json_exact : Json.t -> (snapshot, string) result
