(* GC telemetry from Gc.quick_stat + Gc.counters deltas.

   Two sources with different scopes, deliberately combined:
   - Gc.counters () is domain-local (this domain's allocation counters),
     so word deltas captured inside the domain that runs a sweep cell
     measure exactly that cell's allocations. allocated_words
     (minor + major - promoted) is deterministic for deterministic work:
     promotion timing varies, but every promoted word is counted in both
     promoted and major, so it cancels.
   - Gc.quick_stat collection counts are program-wide (with per-domain
     buffer slack), so minor/major collection deltas are telemetry only:
     they say how much GC churn happened during the window, not a
     reproducible number.

   capture flushes the minor heap (Gc.minor) before reading. Without the
   flush, the runtime's in-progress young-area accounting is quantized at
   minor-heap-chunk granularity and word deltas for identical work shift
   by whole multiples of the chunk size (~115k words observed) depending
   on domain placement; flushing first makes the counters exact, at the
   cost of one (cheap: mostly-empty heap) minor collection per capture. *)

type snapshot = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
}

let zero =
  {
    minor_words = 0.0;
    promoted_words = 0.0;
    major_words = 0.0;
    minor_collections = 0;
    major_collections = 0;
    compactions = 0;
  }

let capture () =
  Gc.minor ();
  let minor_words, promoted_words, major_words = Gc.counters () in
  let q = Gc.quick_stat () in
  {
    minor_words;
    promoted_words;
    major_words;
    minor_collections = q.Gc.minor_collections;
    major_collections = q.Gc.major_collections;
    compactions = q.Gc.compactions;
  }

let diff ~before ~after =
  {
    minor_words = after.minor_words -. before.minor_words;
    promoted_words = after.promoted_words -. before.promoted_words;
    major_words = after.major_words -. before.major_words;
    minor_collections = after.minor_collections - before.minor_collections;
    major_collections = after.major_collections - before.major_collections;
    compactions = after.compactions - before.compactions;
  }

let add a b =
  {
    minor_words = a.minor_words +. b.minor_words;
    promoted_words = a.promoted_words +. b.promoted_words;
    major_words = a.major_words +. b.major_words;
    minor_collections = a.minor_collections + b.minor_collections;
    major_collections = a.major_collections + b.major_collections;
    compactions = a.compactions + b.compactions;
  }

let total = List.fold_left add zero
let allocated_words s = s.minor_words +. s.major_words -. s.promoted_words

let measure f =
  let before = capture () in
  let result = f () in
  (result, diff ~before ~after:(capture ()))

let to_json s =
  Json.Obj
    [
      ("allocated_words", Json.Float (allocated_words s));
      ("minor_words", Json.Float s.minor_words);
      ("promoted_words", Json.Float s.promoted_words);
      ("major_words", Json.Float s.major_words);
      ("minor_collections", Json.Int s.minor_collections);
      ("major_collections", Json.Int s.major_collections);
      ("compactions", Json.Int s.compactions);
    ]

(* Inverse of to_json over the raw fields (allocated_words is derived
   and ignored on read). Float serialization round-trips exactly, so
   decode (encode s) = s; [null] (a NaN that slipped into a file) reads
   back as [nan]. *)
let of_json = function
  | Json.Obj fields -> (
      let exception Bad of string in
      let get name =
        match List.assoc_opt name fields with
        | Some v -> v
        | None -> raise (Bad (Printf.sprintf "missing field %S" name))
      in
      let number name =
        match get name with
        | Json.Float f -> f
        | Json.Int i -> float_of_int i
        | Json.Null -> nan
        | _ -> raise (Bad (Printf.sprintf "field %S: expected a number" name))
      in
      let int name =
        match get name with
        | Json.Int i -> i
        | _ -> raise (Bad (Printf.sprintf "field %S: expected an int" name))
      in
      try
        Ok
          {
            minor_words = number "minor_words";
            promoted_words = number "promoted_words";
            major_words = number "major_words";
            minor_collections = int "minor_collections";
            major_collections = int "major_collections";
            compactions = int "compactions";
          }
      with Bad msg -> Error ("Gc_stats.of_json: " ^ msg))
  | _ -> Error "Gc_stats.of_json: expected an object"
