let now_ns () = Monotonic_clock.now ()
let elapsed_ns ~since = Int64.sub (now_ns ()) since
let ns_to_s ns = Int64.to_float ns /. 1e9
