(** Hierarchical wall-time spans.

    A trace is opened with {!trace}; within it, {!with_span} nests timed
    sections into a tree. Like {!Metrics}, the active trace is
    domain-local: outside any [trace], [with_span] runs its thunk
    directly with no clock read, so instrumented library code costs
    nothing when tracing is off. Span timings are telemetry — two runs of
    the same seeded experiment produce the same tree {e shape} but not
    the same durations. *)

type t = {
  span_name : string;
  started_ns : int64;
      (** absolute monotonic start ({!Clock.now_ns} origin) — comparable
          across domains, so spans from a parallel sweep share a timeline *)
  elapsed_ns : int64;
  children : t list;  (** in execution order *)
}

(** [trace name f] runs [f] inside a fresh root span and returns its
    result together with the completed tree. Works under an enclosing
    [trace]: the new root is independent (not attached to the outer
    tree). *)
val trace : string -> (unit -> 'a) -> 'a * t

(** [with_span name f] times [f] as a child of the innermost open span.
    Without an open trace in this domain, behaves exactly like [f ()]. *)
val with_span : string -> (unit -> 'a) -> 'a

(** True when a trace is open in the calling domain. *)
val active : unit -> bool

(** Total number of spans in the tree (including the root). *)
val count : t -> int

(** Depth-first search for the first span with the given name. *)
val find : t -> string -> t option

(** [{"name": ..., "elapsed_ns": ..., "children": [...]}], children
    omitted when empty. *)
val to_json : t -> Json.t

(** Lossless codec: like {!to_json} but also carrying [started_ns], with
    [of_json_exact (to_json_exact t) = Ok t]. Used by {!Ncg_store} cell
    records so cached cells keep their span trees (and Chrome-trace
    timelines) intact. *)
val to_json_exact : t -> Json.t

val of_json_exact : Json.t -> (t, string) result

(** Indented tree with millisecond durations, one span per line. *)
val to_markdown : t -> string
