(** Minimal JSON tree and serializer.

    Just enough for telemetry export ({!Metrics}, {!Span},
    [BENCH_experiment.json]) without pulling in a JSON dependency.
    Numbers follow OCaml float formatting; NaN and infinities serialize
    as [null] so the output stays standard-compliant. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact one-line rendering. *)
val to_string : t -> string

(** Two-space indented rendering, ending in a newline. *)
val to_string_pretty : t -> string

(** [to_file path json] writes the pretty rendering {e atomically}: the
    document is written to a same-directory temp file, fsync'd, and
    renamed over [path] — a crash at any point leaves either the old
    file or the complete new one, never a partial JSON artifact. *)
val to_file : string -> t -> unit

(** [of_string s] parses one JSON document (RFC 8259 grammar: escapes,
    [\uXXXX] with surrogate pairs decoded to UTF-8, exponents). Numbers
    containing ['.'], ['e'] or ['E'] parse as [Float], others as [Int]
    (falling back to [Float] on overflow). Used by the test suite to
    validate everything the emitters produce — escaping round-trips,
    Chrome traces, JSONL events — without an external JSON dependency.
    [Error msg] carries the failure offset. Never raises, whatever the
    input bytes (fuzz-tested on arbitrary and truncated strings). *)
val of_string : string -> (t, string) result
