(** Minimal JSON tree and serializer.

    Just enough for telemetry export ({!Metrics}, {!Span},
    [BENCH_experiment.json]) without pulling in a JSON dependency.
    Numbers follow OCaml float formatting; NaN and infinities serialize
    as [null] so the output stays standard-compliant. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact one-line rendering. *)
val to_string : t -> string

(** Two-space indented rendering, ending in a newline. *)
val to_string_pretty : t -> string

(** [to_file path json] writes the pretty rendering atomically enough for
    our purposes (plain [open_out]). *)
val to_file : string -> t -> unit
