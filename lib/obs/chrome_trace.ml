(* Chrome trace-event JSON builder (the format Perfetto and
   chrome://tracing load). We emit the JSON-object form
   {"traceEvents": [...], "displayTimeUnit": "ms"} with:
   - M (metadata) events naming the process and each thread track,
   - B/E (duration begin/end) pairs for span trees,
   - X (complete) events for flat intervals,
   - C (counter) events for GC time series.
   Timestamps are microseconds of monotonic time; tid is an OCaml domain
   id, so a parallel sweep renders one track per domain. *)

type t = {
  process_name : string;
  mutable events : Json.t list; (* reversed *)
  mutable named_tids : int list;
  mutable count : int;
}

let pid = 1

let create ?(process_name = "ncg") () =
  { process_name; events = []; named_tids = []; count = 0 }

let push trace ev =
  trace.events <- ev :: trace.events;
  trace.count <- trace.count + 1

let us_of_ns ns = Int64.to_float ns /. 1e3

let metadata ~name ~tid args =
  Json.Obj
    ([
       ("name", Json.String name);
       ("ph", Json.String "M");
       ("pid", Json.Int pid);
     ]
    @ (match tid with Some t -> [ ("tid", Json.Int t) ] | None -> [])
    @ [ ("args", Json.Obj args) ])

let set_thread_name trace ~tid name =
  if not (List.mem tid trace.named_tids) then begin
    trace.named_tids <- tid :: trace.named_tids;
    push trace
      (metadata ~name:"thread_name" ~tid:(Some tid) [ ("name", Json.String name) ])
  end

let ensure_thread trace ~tid =
  set_thread_name trace ~tid (Printf.sprintf "domain %d" tid)

let event ~ph ~tid ~ts_ns ?name ?dur_ns ?args () =
  Json.Obj
    ((match name with Some n -> [ ("name", Json.String n) ] | None -> [])
    @ [
        ("ph", Json.String ph);
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
        ("ts", Json.Float (us_of_ns ts_ns));
      ]
    @ (match dur_ns with
      | Some d -> [ ("dur", Json.Float (us_of_ns d)) ]
      | None -> [])
    @ match args with Some a -> [ ("args", Json.Obj a) ] | None -> [])

let add_complete trace ~tid ~name ~start_ns ~dur_ns ?args () =
  ensure_thread trace ~tid;
  push trace (event ~ph:"X" ~tid ~ts_ns:start_ns ~name ~dur_ns:dur_ns ?args ())

let add_counter trace ~tid ~ts_ns ~name values =
  ensure_thread trace ~tid;
  push trace
    (event ~ph:"C" ~tid ~ts_ns ~name
       ~args:(List.map (fun (k, v) -> (k, Json.Float v)) values)
       ())

(* Depth-first B/E pairs. Children of a span ran sequentially inside it in
   one domain, so emission order is already timestamp order per tid. *)
let add_span_tree trace ~tid span =
  ensure_thread trace ~tid;
  let rec go (s : Span.t) =
    push trace (event ~ph:"B" ~tid ~ts_ns:s.Span.started_ns ~name:s.Span.span_name ());
    List.iter go s.Span.children;
    push trace
      (event ~ph:"E" ~tid
         ~ts_ns:(Int64.add s.Span.started_ns s.Span.elapsed_ns)
         ~name:s.Span.span_name ())
  in
  go span

(* +1: the process_name metadata record prepended at serialization. *)
let event_count trace = trace.count + 1

let to_json trace =
  let process =
    metadata ~name:"process_name" ~tid:None
      [ ("name", Json.String trace.process_name) ]
  in
  Json.Obj
    [
      ("traceEvents", Json.List (process :: List.rev trace.events));
      ("displayTimeUnit", Json.String "ms");
    ]

let to_file path trace = Json.to_file path (to_json trace)
