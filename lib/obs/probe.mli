(** Named round-level probes: registered signals that record into
    {!Timeseries} while a probe collector is installed.

    The registry mirrors {!Metrics}: probes are registered once, at
    module-initialization time on the main domain, and the namespace is
    closed — [ncg_lint] checks every probe name literal in the tree
    against {!names} (rule O1), exactly like fault-site literals.

    Collectors are domain-local: {!sample} is a single domain-local-storage
    read and a branch when no collector is installed, so probe points can
    stay in the dynamics inner loop unconditionally. A cell's series
    depend only on the samples its own trajectory pushed — deterministic
    under any domain fan-out.

    Unlike {!Metrics} collectors, probe collectors do {e not} fold into an
    enclosing collector on exit: a time series from an inner scope has no
    meaningful merge into an outer one, so nested [collect]s simply
    shadow the outer collector for their extent. *)

type probe

(** [register name] — init-time-only, main domain only, like
    {!Metrics.register}. Raises [Invalid_argument] off the main domain or
    when the fixed-size registry (32 slots) is full. *)
val register : string -> probe

(** The probe's registered name. *)
val name : probe -> string

(** All registered probe names, in registration order — the closed
    namespace [ncg_lint]'s O1 rule checks literals against. *)
val names : unit -> string list

val find : string -> probe option

(** {1 Built-in probes}

    Sampled once per dynamics round (x = round number) of the exemplar
    trajectory; see {!Ncg_core.Dynamics}. *)

val social_cost : probe
(** social cost of the full profile after the round (NaN if the network
    disconnected) *)

val awake_players : probe
(** players that made an improving move this round (the "awake set") *)

val br_gap_max : probe
(** largest view-local cost improvement accepted this round *)

val br_gap_total : probe
(** summed view-local cost improvements accepted this round *)

val move_edit_distance : probe
(** summed edit distance (|before Δ after|) of this round's moves *)

val move_locality_radius : probe
(** largest view distance of any newly bought edge this round *)

val set_cover_nodes : probe
(** set-cover branch-and-bound nodes expanded this round *)

val bb_cutoffs : probe
(** branch-and-bound lower-bound cutoffs this round (Max + Sum engines) *)

(** {1 Recording} *)

(** [sample p ~x y] pushes [(x, y)] into [p]'s series in the current
    domain's collector, if any. *)
val sample : probe -> x:float -> float -> unit

(** [sample_lazy p ~x f] evaluates [f] only when a collector is installed
    {e and} the series would retain the sample (see
    {!Timeseries.push_lazy}). *)
val sample_lazy : probe -> x:float -> (unit -> float) -> unit

(** True when a collector is installed in the calling domain. *)
val recording : unit -> bool

(** {1 Collecting} *)

(** A frozen probe valuation: every registered probe, in registration
    order, with its series (empty for probes never sampled — snapshots
    from the same binary always have the same shape). *)
type snapshot = (string * Timeseries.t) list

(** [collect ?capacity f] installs a fresh collector whose series hold at
    most [capacity] samples each (default 64 — the sweep's "default
    sampling"), runs [f], uninstalls it and returns [f]'s result with the
    recorded snapshot. *)
val collect : ?capacity:int -> (unit -> 'a) -> 'a * snapshot

(** The all-empty snapshot — what a probes-disabled cell stores, so the
    cell payload keeps one shape either way. *)
val empty_snapshot : ?capacity:int -> unit -> snapshot

(** Pointwise {!Timeseries.equal} (same probes, same order). *)
val equal_snapshot : snapshot -> snapshot -> bool

(** {1 JSON codec}

    Schema ["ncg.obs.probes/1"]: the collector capacity plus one
    {!Timeseries} document per probe that recorded at least one sample
    (never-sampled series are dropped, like {!Metrics.to_json} drops
    zeros). *)

val schema : string

val to_json : snapshot -> Json.t

(** Inverse of {!to_json}: dropped empty series are re-expanded over the
    registered probes in registration order (then unknown names in input
    order), so within one binary [of_json (to_json s)] restores [s]
    exactly ({!equal_snapshot}). *)
val of_json : Json.t -> (snapshot, string) result
