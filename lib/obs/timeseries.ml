type t = {
  capacity : int;
  xs : float array;
  ys : float array;
  mutable len : int;
  mutable stride : int;
  mutable pushed : int;
}

(* Invariant: stored sample [i] is the sample pushed at index
   [i * stride]. Decimation keeps the even-indexed stored samples (push
   indices 0, 2*stride, 4*stride, …) and doubles the stride, so the
   invariant is preserved and the retained subsequence stays evenly
   spaced and in push order. *)

let create ?(capacity = 64) () =
  if capacity < 2 then invalid_arg "Timeseries.create: capacity must be >= 2";
  {
    capacity;
    xs = Array.make capacity 0.;
    ys = Array.make capacity 0.;
    len = 0;
    stride = 1;
    pushed = 0;
  }

let capacity t = t.capacity
let length t = t.len
let is_empty t = t.len = 0
let stride t = t.stride
let pushed t = t.pushed

let wants t =
  t.pushed mod t.stride = 0
  && (t.len < t.capacity || t.pushed mod (2 * t.stride) = 0)

let decimate t =
  let m = (t.len + 1) / 2 in
  for i = 0 to m - 1 do
    t.xs.(i) <- t.xs.(2 * i);
    t.ys.(i) <- t.ys.(2 * i)
  done;
  t.len <- m;
  t.stride <- 2 * t.stride

let push_lazy t ~x f =
  (if t.pushed mod t.stride = 0 then begin
     if t.len = t.capacity then decimate t;
     (* After a decimation the current push index may no longer sit on
        the doubled stride (odd capacities); re-check before storing. *)
     if t.pushed mod t.stride = 0 then begin
       t.xs.(t.len) <- x;
       t.ys.(t.len) <- f ();
       t.len <- t.len + 1
     end
   end);
  t.pushed <- t.pushed + 1

let push t ~x y = push_lazy t ~x (fun () -> y)

let to_list t = List.init t.len (fun i -> (t.xs.(i), t.ys.(i)))

let last t =
  if t.len = 0 then None else Some (t.xs.(t.len - 1), t.ys.(t.len - 1))

let feq a b = Float.compare a b = 0

let equal a b =
  a.capacity = b.capacity && a.len = b.len && a.stride = b.stride
  && a.pushed = b.pushed
  &&
  let ok = ref true in
  for i = 0 to a.len - 1 do
    if not (feq a.xs.(i) b.xs.(i) && feq a.ys.(i) b.ys.(i)) then ok := false
  done;
  !ok

let schema = Schema.obs_timeseries

(* Json.float_repr flattens non-finite floats to null; a series must
   round-trip them exactly (NaN marks e.g. a disconnected network's
   social cost), so they get explicit string spellings. *)
let sample_to_json f =
  if Float.is_nan f then Json.String "nan"
  else if f = Float.infinity then Json.String "inf"
  else if f = Float.neg_infinity then Json.String "-inf"
  else Json.Float f

let sample_of_json name = function
  | Json.Float f -> f
  | Json.Int i -> float_of_int i
  | Json.String "nan" -> Float.nan
  | Json.String "inf" -> Float.infinity
  | Json.String "-inf" -> Float.neg_infinity
  | _ -> failwith (Printf.sprintf "field %S: expected a sample" name)

let to_json t =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("capacity", Json.Int t.capacity);
      ("stride", Json.Int t.stride);
      ("pushed", Json.Int t.pushed);
      ("xs", Json.List (List.init t.len (fun i -> sample_to_json t.xs.(i))));
      ("ys", Json.List (List.init t.len (fun i -> sample_to_json t.ys.(i))));
    ]

let of_json = function
  | Json.Obj fields -> (
      let field name =
        match List.assoc_opt name fields with
        | Some v -> v
        | None -> failwith (Printf.sprintf "missing field %S" name)
      in
      let int name =
        match field name with
        | Json.Int i -> i
        | _ -> failwith (Printf.sprintf "field %S: expected an int" name)
      in
      let samples name =
        match field name with
        | Json.List items -> List.map (sample_of_json name) items
        | _ -> failwith (Printf.sprintf "field %S: expected a list" name)
      in
      try
        (match field "schema" with
        | Json.String s when s = schema -> ()
        | Json.String s -> failwith (Printf.sprintf "unknown schema %S" s)
        | _ -> failwith "missing schema");
        let cap = int "capacity" in
        let t = create ~capacity:cap () in
        t.stride <- int "stride";
        t.pushed <- int "pushed";
        if t.stride < 1 then failwith "field \"stride\": must be >= 1";
        let xs = samples "xs" and ys = samples "ys" in
        if List.length xs <> List.length ys then
          failwith "xs and ys must have the same length";
        if List.length xs > cap then failwith "more samples than capacity";
        List.iter2
          (fun x y ->
            t.xs.(t.len) <- x;
            t.ys.(t.len) <- y;
            t.len <- t.len + 1)
          xs ys;
        Ok t
      with Failure msg -> Error ("Timeseries.of_json: " ^ msg))
  | _ -> Error "Timeseries.of_json: expected an object"
