(** Atomic whole-file writes for non-JSON artifacts.

    [write path contents] renders [contents] to a same-directory temp
    file, fsyncs, then renames over [path]. A crash at any point leaves
    either the previous file or the complete new one — never a torn
    artifact. (For JSON documents use {!Json.to_file}, which is the same
    dance plus rendering.) *)

val write : string -> string -> unit

(** [append_line path line] appends [line] plus a newline to [path]
    (creating it if missing). Not atomic — a crash can tear the final
    line — but JSONL consumers skip unparseable lines, so an append-only
    history degrades gracefully rather than corrupting. *)
val append_line : string -> string -> unit
