(* Blessed atomic text-file writer: same-directory temp + fsync + rename,
   so a crash at any point leaves either the old file or the new one —
   never a torn artifact. Json.to_file is the same dance for JSON
   documents; this is the generic-string version for markdown reports,
   trace files, and other non-JSON artifacts. *)

let write path contents =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = (open_out [@lint.allow "A1" "this IS the blessed atomic writer"]) tmp in
  (match
     output_string oc contents;
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc)
   with
  | () -> close_out oc
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  Sys.rename tmp path

(* Appends are not atomic in the temp+rename sense — a crash can leave a
   torn final line — but JSONL readers skip unparseable lines, so the
   history file degrades gracefully. O_APPEND keeps concurrent appenders
   from interleaving within a line on POSIX. *)
let append_line path line =
  let oc =
    (open_out_gen [@lint.allow "A1" "append-only JSONL sink; torn tails are tolerated by readers"])
      [ Open_append; Open_creat ] 0o644 path
  in
  (match
     output_string oc line;
     output_char oc '\n';
     flush oc
   with
  | () -> close_out oc
  | exception e ->
      close_out_noerr oc;
      raise e)
