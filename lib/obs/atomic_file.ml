(* Blessed atomic text-file writer: same-directory temp + fsync + rename,
   so a crash at any point leaves either the old file or the new one —
   never a torn artifact. Json.to_file is the same dance for JSON
   documents; this is the generic-string version for markdown reports,
   trace files, and other non-JSON artifacts. *)

let write path contents =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = (open_out [@lint.allow "A1" "this IS the blessed atomic writer"]) tmp in
  (match
     output_string oc contents;
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc)
   with
  | () -> close_out oc
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  Sys.rename tmp path
