type t = {
  span_name : string;
  started_ns : int64;
  elapsed_ns : int64;
  children : t list;
}

type frame = {
  frame_name : string;
  started : int64;
  mutable completed : t list;  (* children, most recent first *)
}

(* Innermost frame first; empty means tracing is off in this domain. *)
let stack : frame list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let active () = Domain.DLS.get stack <> []

let close frame =
  {
    span_name = frame.frame_name;
    started_ns = frame.started;
    elapsed_ns = Clock.elapsed_ns ~since:frame.started;
    children = List.rev frame.completed;
  }

let with_frame name f attach =
  let frame = { frame_name = name; started = Clock.now_ns (); completed = [] } in
  let outer = Domain.DLS.get stack in
  Domain.DLS.set stack (frame :: outer);
  let finished = ref None in
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set stack outer;
      (* On exceptions the partial span is dropped rather than recorded. *)
      match !finished with
      | Some span -> attach outer span
      | None -> ())
    (fun () ->
      let result = f () in
      finished := Some (close frame);
      result)

let trace name f =
  (* Root frames ignore any enclosing trace: we stash the completed tree
     through a cell captured per call, not through the outer stack. *)
  let result_span = ref None in
  let saved = Domain.DLS.get stack in
  Domain.DLS.set stack [];
  let result =
    Fun.protect
      ~finally:(fun () -> Domain.DLS.set stack saved)
      (fun () ->
        with_frame name f (fun _outer span -> result_span := Some span))
  in
  match !result_span with
  | Some span -> (result, span)
  | None -> assert false (* with_frame always attaches on success *)

let with_span name f =
  match Domain.DLS.get stack with
  | [] -> f ()
  | _ :: _ ->
      with_frame name f (fun outer span ->
          match outer with
          | parent :: _ -> parent.completed <- span :: parent.completed
          | [] -> ())

let rec count span = 1 + List.fold_left (fun acc c -> acc + count c) 0 span.children

let rec find span wanted =
  if span.span_name = wanted then Some span
  else
    List.fold_left
      (fun acc c -> match acc with Some _ -> acc | None -> find c wanted)
      None span.children

let rec to_json span =
  let base =
    [
      ("name", Json.String span.span_name);
      ("elapsed_ns", Json.Int (Int64.to_int span.elapsed_ns));
    ]
  in
  match span.children with
  | [] -> Json.Obj base
  | children -> Json.Obj (base @ [ ("children", Json.List (List.map to_json children)) ])

(* Lossless variant of to_json: also carries started_ns (needed to
   rebuild Chrome-trace timelines from cached cells) and round-trips
   through of_json_exact. *)
let rec to_json_exact span =
  let base =
    [
      ("name", Json.String span.span_name);
      ("started_ns", Json.Int (Int64.to_int span.started_ns));
      ("elapsed_ns", Json.Int (Int64.to_int span.elapsed_ns));
    ]
  in
  match span.children with
  | [] -> Json.Obj base
  | children ->
      Json.Obj (base @ [ ("children", Json.List (List.map to_json_exact children)) ])

let of_json_exact json =
  let exception Bad of string in
  let rec decode = function
    | Json.Obj fields ->
        let name =
          match List.assoc_opt "name" fields with
          | Some (Json.String s) -> s
          | _ -> raise (Bad "missing span name")
        in
        let int field =
          match List.assoc_opt field fields with
          | Some (Json.Int i) -> Int64.of_int i
          | _ -> raise (Bad (Printf.sprintf "span %S: expected int %S" name field))
        in
        let children =
          match List.assoc_opt "children" fields with
          | None -> []
          | Some (Json.List items) -> List.map decode items
          | Some _ -> raise (Bad (Printf.sprintf "span %S: bad children" name))
        in
        {
          span_name = name;
          started_ns = int "started_ns";
          elapsed_ns = int "elapsed_ns";
          children;
        }
    | _ -> raise (Bad "expected an object")
  in
  match decode json with
  | span -> Ok span
  | exception Bad msg -> Error ("Span.of_json_exact: " ^ msg)

let to_markdown span =
  let buf = Buffer.create 128 in
  let rec go depth span =
    Buffer.add_string buf
      (Printf.sprintf "%s- %s: %.3f ms\n"
         (String.make (2 * depth) ' ')
         span.span_name
         (Int64.to_float span.elapsed_ns /. 1e6));
    List.iter (go (depth + 1)) span.children
  in
  go 0 span;
  Buffer.contents buf
