(* Log-bucketed latency histograms, HDR-style: bucket boundaries grow by
   sqrt(2) (two buckets per octave) from 100ns to 100s, so any recorded
   duration is located to within ~41% relative error using 62 buckets of
   constant memory. Recording discipline mirrors Metrics: domain-local
   collectors, no-op (and no clock read) when none is installed. *)

let lowest_ns = 100L
let octaves = 30 (* 100ns * 2^30 ~ 107s >= 100s *)
let boundary_count = (2 * octaves) + 1
let bucket_count = boundary_count + 1 (* + underflow below 100ns, overflow at top *)

(* boundaries.(i) = round(100 * 2^(i/2)) ns. Bucket 0 is [0, 100ns);
   bucket i (1 <= i <= boundary_count - 1) is [boundaries.(i-1),
   boundaries.(i)); the last bucket is [boundaries.(boundary_count-1), inf). *)
let boundaries =
  Array.init boundary_count (fun i ->
      Int64.of_float
        (Float.round (Int64.to_float lowest_ns *. (2.0 ** (float_of_int i /. 2.0)))))
[@@lint.domain_local "precomputed constant lookup table, never written after init"]

let bucket_of_ns ns =
  if ns < lowest_ns then 0
  else begin
    (* Binary search: smallest i with ns < boundaries.(i); bucket is i. *)
    let lo = ref 0 and hi = ref boundary_count in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if ns < boundaries.(mid) then hi := mid else lo := mid + 1
    done;
    !lo (* = boundary_count when ns >= the top boundary: the overflow bucket *)
  end

let bucket_upper_ns b =
  if b >= boundary_count then Int64.max_int else boundaries.(b)

(* --- Registry (same init-time-only contract as Metrics) ------------------- *)

type histogram = int

let capacity = 32

let names =
  Array.make capacity ""
[@@lint.domain_local "written only on the main domain at init time, read-only after fan-out"]

let by_name : (string, int) Hashtbl.t =
  Hashtbl.create capacity
[@@lint.domain_local "written only on the main domain at init time, read-only after fan-out"]

let registered =
  ref 0
[@@lint.domain_local "written only on the main domain at init time, read-only after fan-out"]

let register name =
  if name = "" then invalid_arg "Histogram.register: empty name";
  if not (Domain.is_main_domain ()) then
    invalid_arg "Histogram.register: register at init time from the main domain only";
  match Hashtbl.find_opt by_name name with
  | Some h -> h
  | None ->
      if !registered >= capacity then invalid_arg "Histogram.register: registry full";
      let h = !registered in
      names.(h) <- name;
      Hashtbl.replace by_name name h;
      incr registered;
      h

let name h = names.(h)

let best_response = register "best_response.latency"
let sum_best_response = register "sum_best_response.latency"
let set_cover = register "set_cover.solve.latency"
let dynamics_round = register "dynamics.round.latency"
let sweep_cell = register "experiment.sweep_cell.latency"

(* --- Recording ------------------------------------------------------------ *)

type collector = {
  counts : int array array; (* per histogram, per bucket *)
  totals : int array;
  sums : int64 array;
  maxs : int64 array;
}

let fresh_collector () =
  {
    counts = Array.init capacity (fun _ -> Array.make bucket_count 0);
    totals = Array.make capacity 0;
    sums = Array.make capacity 0L;
    maxs = Array.make capacity 0L;
  }

let current : collector option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let recording () = Domain.DLS.get current <> None

let record_ns h ns =
  match Domain.DLS.get current with
  | None -> ()
  | Some col ->
      let ns = if ns < 0L then 0L else ns in
      let b = bucket_of_ns ns in
      col.counts.(h).(b) <- col.counts.(h).(b) + 1;
      col.totals.(h) <- col.totals.(h) + 1;
      col.sums.(h) <- Int64.add col.sums.(h) ns;
      if ns > col.maxs.(h) then col.maxs.(h) <- ns

let time h f =
  if Domain.DLS.get current = None then f ()
  else begin
    let started = Clock.now_ns () in
    let result = f () in
    record_ns h (Clock.elapsed_ns ~since:started);
    result
  end

(* --- Snapshots ------------------------------------------------------------ *)

type hist = { counts : int array; total : int; sum_ns : int64; max_ns : int64 }
type snapshot = (string * hist) list

let empty_hist =
  { counts = Array.make bucket_count 0; total = 0; sum_ns = 0L; max_ns = 0L }

let snapshot_of (col : collector) =
  List.init !registered (fun h ->
      ( names.(h),
        {
          counts = Array.copy col.counts.(h);
          total = col.totals.(h);
          sum_ns = col.sums.(h);
          max_ns = col.maxs.(h);
        } ))

let fold_into (col : collector) (snap : snapshot) =
  List.iter
    (fun (name, (hist : hist)) ->
      match Hashtbl.find_opt by_name name with
      | None -> ()
      | Some h ->
          Array.iteri
            (fun b v -> col.counts.(h).(b) <- col.counts.(h).(b) + v)
            hist.counts;
          col.totals.(h) <- col.totals.(h) + hist.total;
          col.sums.(h) <- Int64.add col.sums.(h) hist.sum_ns;
          if hist.max_ns > col.maxs.(h) then col.maxs.(h) <- hist.max_ns)
    snap

let collect f =
  let col = fresh_collector () in
  let prev = Domain.DLS.get current in
  Domain.DLS.set current (Some col);
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set current prev;
      match prev with
      | Some outer -> fold_into outer (snapshot_of col)
      | None -> ())
    (fun () ->
      let result = f () in
      (result, snapshot_of col))

let merge_hist (a : hist) (b : hist) =
  {
    counts = Array.init bucket_count (fun i -> a.counts.(i) + b.counts.(i));
    total = a.total + b.total;
    sum_ns = Int64.add a.sum_ns b.sum_ns;
    max_ns = Int64.max a.max_ns b.max_ns;
  }

let merge (a : snapshot) (b : snapshot) =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) a;
  List.iter
    (fun (k, v) ->
      match Hashtbl.find_opt tbl k with
      | Some prev -> Hashtbl.replace tbl k (merge_hist prev v)
      | None -> Hashtbl.replace tbl k v)
    b;
  let ordered = ref [] in
  let emit k =
    match Hashtbl.find_opt tbl k with
    | Some v ->
        ordered := (k, v) :: !ordered;
        Hashtbl.remove tbl k
    | None -> ()
  in
  for h = 0 to !registered - 1 do
    emit names.(h)
  done;
  List.iter (fun (k, _) -> emit k) a;
  List.iter (fun (k, _) -> emit k) b;
  List.rev !ordered

let total snaps = List.fold_left merge [] snaps

(* --- Queries -------------------------------------------------------------- *)

let count (h : hist) = h.total
let sum_ns (h : hist) = h.sum_ns
let max_ns (h : hist) = h.max_ns

let mean_ns (h : hist) =
  if h.total = 0 then nan else Int64.to_float h.sum_ns /. float_of_int h.total

(* The smallest bucket upper bound such that at least [ceil (q * total)]
   samples fall at or below it — a conservative (over-)estimate, exact to
   within one sqrt(2) bucket. The overflow bucket reports the observed max. *)
let percentile_ns (h : hist) q =
  if h.total = 0 then nan
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = max 1 (int_of_float (ceil (q *. float_of_int h.total))) in
    let b = ref 0 and seen = ref 0 in
    while !seen < rank && !b < bucket_count do
      seen := !seen + h.counts.(!b);
      if !seen < rank then incr b
    done;
    if !b >= boundary_count then Int64.to_float h.max_ns
    else Int64.to_float (bucket_upper_ns !b)
  end

let p50_ns h = percentile_ns h 0.5
let p90_ns h = percentile_ns h 0.9
let p99_ns h = percentile_ns h 0.99

let pp_ns ns =
  if Float.is_nan ns then "-"
  else if ns >= 1e9 then Printf.sprintf "%.2fs" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2fms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2fus" (ns /. 1e3)
  else Printf.sprintf "%.0fns" ns

(* --- Export --------------------------------------------------------------- *)

let hist_to_json (h : hist) =
  let buckets = ref [] in
  for b = bucket_count - 1 downto 0 do
    if h.counts.(b) > 0 then
      buckets :=
        Json.Obj
          [
            ( "le_ns",
              if b >= boundary_count then Json.Null
              else Json.Int (Int64.to_int (bucket_upper_ns b)) );
            ("count", Json.Int h.counts.(b));
          ]
        :: !buckets
  done;
  Json.Obj
    [
      ("count", Json.Int h.total);
      ("sum_ns", Json.Int (Int64.to_int h.sum_ns));
      ("max_ns", Json.Int (Int64.to_int h.max_ns));
      ("p50_ns", Json.Float (p50_ns h));
      ("p90_ns", Json.Float (p90_ns h));
      ("p99_ns", Json.Float (p99_ns h));
      ("buckets", Json.List !buckets);
    ]

let nonzero (snap : snapshot) = List.filter (fun (_, h) -> h.total > 0) snap

let to_json snap =
  Json.Obj (List.map (fun (k, h) -> (k, hist_to_json h)) (nonzero snap))

let to_markdown snap =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "| histogram | count | p50 | p90 | p99 | max |\n|---|---:|---:|---:|---:|---:|\n";
  List.iter
    (fun (k, h) ->
      Buffer.add_string buf
        (Printf.sprintf "| %s | %d | %s | %s | %s | %s |\n" k h.total
           (pp_ns (p50_ns h)) (pp_ns (p90_ns h)) (pp_ns (p99_ns h))
           (pp_ns (Int64.to_float h.max_ns))))
    (nonzero snap);
  Buffer.contents buf

(* Sample counts only — the deterministic projection of a snapshot (bucket
   placement depends on wall time; how many samples were recorded does not). *)
let counts_only (snap : snapshot) = List.map (fun (k, h) -> (k, h.total)) snap

(* --- Exact (lossless) codec ------------------------------------------------ *)

(* Unlike to_json (a human-oriented export that drops empty histograms,
   zero buckets and exact bucket indices), the exact codec preserves a
   snapshot bit-for-bit — every histogram, the full bucket array — so
   cached sweep cells restore to exactly what the original run recorded. *)

let hist_to_json_exact (h : hist) =
  Json.Obj
    [
      ( "counts",
        Json.List (Array.to_list (Array.map (fun c -> Json.Int c) h.counts)) );
      ("total", Json.Int h.total);
      ("sum_ns", Json.Int (Int64.to_int h.sum_ns));
      ("max_ns", Json.Int (Int64.to_int h.max_ns));
    ]

let to_json_exact (snap : snapshot) =
  Json.Obj (List.map (fun (k, h) -> (k, hist_to_json_exact h)) snap)

let hist_of_json_exact = function
  | Json.Obj fields -> (
      let exception Bad of string in
      let int name =
        match List.assoc_opt name fields with
        | Some (Json.Int i) -> i
        | _ -> raise (Bad (Printf.sprintf "field %S: expected an int" name))
      in
      try
        let counts =
          match List.assoc_opt "counts" fields with
          | Some (Json.List items) ->
              let counts =
                Array.of_list
                  (List.map
                     (function
                       | Json.Int i -> i
                       | _ -> raise (Bad "non-integer bucket count"))
                     items)
              in
              if Array.length counts <> bucket_count then
                raise
                  (Bad
                     (Printf.sprintf "expected %d buckets, got %d" bucket_count
                        (Array.length counts)));
              counts
          | _ -> raise (Bad "missing bucket counts")
        in
        Ok
          {
            counts;
            total = int "total";
            sum_ns = Int64.of_int (int "sum_ns");
            max_ns = Int64.of_int (int "max_ns");
          }
      with Bad msg -> Error msg)
  | _ -> Error "expected an object"

let of_json_exact = function
  | Json.Obj fields ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (name, v) :: rest -> (
            match hist_of_json_exact v with
            | Ok h -> go ((name, h) :: acc) rest
            | Error msg ->
                Error (Printf.sprintf "Histogram.of_json_exact: %S: %s" name msg))
      in
      go [] fields
  | _ -> Error "Histogram.of_json_exact: expected an object"
