(** Fixed-capacity, deterministically downsampled time series.

    A series records [(x, y)] samples — typically (round, signal) pairs
    from a dynamics trajectory — in bounded memory: storage never exceeds
    [capacity] samples no matter how many are pushed. When the buffer
    fills, every other stored sample is dropped and the retention stride
    doubles, so the series always keeps an evenly spaced, order-preserving
    subsequence of everything pushed (the first sample is always
    retained). Which samples survive depends only on [capacity] and the
    number of pushes — never on time, domain or scheduling — so two runs
    that push the same samples produce bit-identical series (the
    per-cell determinism contract of {!Ncg_core.Experiment}).

    Pushes are allocation-free: the backing arrays are allocated once at
    {!create}. *)

type t

(** [create ~capacity ()] is an empty series storing at most [capacity]
    samples (default 64). Raises [Invalid_argument] when [capacity < 2]. *)
val create : ?capacity:int -> unit -> t

(** [push t ~x y] records the sample [(x, y)]. The sample is stored when
    the push index (0-based count of pushes so far) is a multiple of the
    current {!stride}, and dropped otherwise. *)
val push : t -> x:float -> float -> unit

(** [push_lazy t ~x f] is [push t ~x (f ())], except [f] only runs when
    the sample would actually be stored — for signals that are expensive
    to compute (e.g. a full social-cost evaluation). *)
val push_lazy : t -> x:float -> (unit -> float) -> unit

(** True when the next {!push} would store its sample — the guard callers
    use to skip computing expensive signals for dropped rounds. *)
val wants : t -> bool

(** Stored samples (≤ {!capacity}). *)
val length : t -> int

val is_empty : t -> bool

(** Maximum stored samples, as given to {!create}. *)
val capacity : t -> int

(** Current retention stride: sample [i*stride] of the push sequence is
    stored sample [i]. Starts at 1 and doubles on each decimation. *)
val stride : t -> int

(** Total samples ever pushed (stored or dropped). *)
val pushed : t -> int

(** Stored samples in push order. *)
val to_list : t -> (float * float) list

(** Most recently stored sample. *)
val last : t -> (float * float) option

(** Structural equality on the logical state (capacity, stride, push
    count, stored samples). NaN-safe: compares floats with
    [Float.compare], so [nan] equals [nan]. *)
val equal : t -> t -> bool

(** {1 JSON codec}

    Schema ["ncg.obs.timeseries/1"]. The codec is exact and NaN-safe:
    finite floats round-trip bit-exactly through {!Json.float_repr}, and
    non-finite values (which {!Json} would otherwise flatten to [null])
    are encoded as the strings ["nan"], ["inf"], ["-inf"]. *)

val schema : string

val to_json : t -> Json.t

(** [of_json (to_json t)] restores [t] exactly ({!equal}). *)
val of_json : Json.t -> (t, string) result
