(* The central registry of ncg.* schema tags.

   Every versioned artifact the repo emits or parses carries a schema
   tag of the shape "ncg.<dotted.name>/<version>". Before this module,
   each writer and reader spelled its tag as a local string literal —
   so bumping a version meant hunting every literal down, and an emit
   site could silently skew from its parse site. Now the tag lives here
   exactly once and both sides reference it by name; the lint rule R1
   (lib/lint) rejects any exact schema-shaped string literal outside
   this file, so the registry cannot rot. Legacy tags that readers must
   still accept (e.g. request_v1) stay registered forever. *)

(* lib/obs *)
let obs_timeseries = "ncg.obs.timeseries/1"
let obs_probes = "ncg.obs.probes/1"

(* lib/store *)
let store_manifest = "ncg.store/1"
let store_cell = "ncg.store.cell/5"

(* lib/core *)
let experiment_telemetry = "ncg.experiment.telemetry/4"
let service_spec = "ncg.service.spec/1"

(* lib/service *)
let service_request = "ncg.service.request/2"
let service_request_v1 = "ncg.service.request/1"
let service_response = "ncg.service.response/1"
let service_task = "ncg.service.task/1"

(* lib/lint *)
let lint_report = "ncg.lint.report/2"

(* bench + bin/ncg_bench_diff *)
let bench_experiment = "ncg.bench.experiment/4"
let bench_fullgrid = "ncg.bench.fullgrid/1"
let bench_baseline = "ncg.bench.baseline/1"
let bench_history = "ncg.bench.history/1"

let all =
  [
    obs_timeseries;
    obs_probes;
    store_manifest;
    store_cell;
    experiment_telemetry;
    service_spec;
    service_request;
    service_request_v1;
    service_response;
    service_task;
    lint_report;
    bench_experiment;
    bench_fullgrid;
    bench_baseline;
    bench_history;
  ]

(* A tag is "schema-shaped" when it is exactly ncg.<seg>(.<seg>)*/<digits>
   with lowercase [a-z0-9_] segments — the shape R1 polices. Kept here so
   the lint rule and the registry can never disagree on what counts. *)
let is_schema_shaped s =
  let n = String.length s in
  let seg_char c = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_' in
  let digit c = c >= '0' && c <= '9' in
  let rec segs i saw_dot =
    (* i points at the start of a segment; consume [a-z0-9_]+ then '.' or '/'. *)
    if i >= n then false
    else
      let j = ref i in
      while !j < n && seg_char s.[!j] do
        incr j
      done;
      if !j = i then false
      else if !j < n && s.[!j] = '.' then segs (!j + 1) true
      else if !j < n && s.[!j] = '/' then
        saw_dot && !j + 1 < n
        && (let ok = ref true in
            for k = !j + 1 to n - 1 do
              if not (digit s.[k]) then ok := false
            done;
            !ok)
      else false
  in
  n > 4 && String.sub s 0 4 = "ncg." && segs 4 false

let registered s = List.mem s all
