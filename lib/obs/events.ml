(* Structured JSONL event log + TTY progress line.

   One mutex-guarded global sink shared by every domain: events are rare
   (accepted moves, cell completions) next to the hot paths, so a single
   lock is fine, and interleaved lines stay whole. When no sink is
   installed, emit is a single ref read — cheap enough to call
   unconditionally from the dynamics loop.

   Line ordering across domains is scheduling-dependent; each line
   carries its own monotonic timestamp and domain id so consumers can
   re-sort. Per-event *content* from a sweep cell is deterministic. *)

type severity = Debug | Info | Warn | Error

let severity_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let sink : out_channel option ref =
  ref None
[@@lint.domain_local "all writes go through sink_mutex; racy reads only skip/attempt emission"]

let sink_mutex = Mutex.create ()

let set_sink oc =
  Mutex.protect sink_mutex (fun () -> sink := oc)

let active () = !sink <> None

let emit ?(severity = Info) name fields =
  match !sink with
  | None -> ()
  | Some _ ->
      let line =
        Json.to_string
          (Json.Obj
             ([
                ("ts_ns", Json.Int (Int64.to_int (Clock.now_ns ())));
                ("severity", Json.String (severity_to_string severity));
                ("domain", Json.Int (Domain.self () :> int));
                ("event", Json.String name);
              ]
             @ fields))
      in
      Mutex.protect sink_mutex (fun () ->
          (* Re-check under the lock: the sink may have been closed. *)
          match !sink with
          | None -> ()
          | Some oc ->
              output_string oc line;
              output_char oc '\n';
              (* Events are rare; flushing per line keeps the file valid
                 JSONL at every instant (tail -f, post-crash reads). *)
              flush oc)

(* The log is written to a same-directory temp file and renamed into
   place when the sink closes, so [path] only ever holds a complete log:
   a crash mid-run leaves the temp file behind, never a half-written
   [path]. (Each line is flushed whole, so the temp file itself is valid
   JSONL for post-mortem reading.) *)
let with_file path f =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc =
    (open_out [@lint.allow "A1" "blessed JSONL sink: temp + rename-on-close, per-line flush"])
      tmp
  in
  set_sink (Some oc);
  Fun.protect
    ~finally:(fun () ->
      set_sink None;
      close_out oc;
      Sys.rename tmp path)
    f

(* --- Progress line --------------------------------------------------------- *)

(* Auto: only when stderr is an interactive terminal, so logs piped to
   files or CI never see control characters. --quiet forces it off. *)
let progress_override =
  ref None
[@@lint.domain_local "set once from the main domain during CLI parsing, read-only after"]

let set_progress enabled = progress_override := Some enabled

let progress_enabled () =
  match !progress_override with
  | Some b -> b
  | None -> ( try Unix.isatty Unix.stderr with Unix.Unix_error _ -> false)

let progress_mutex = Mutex.create ()

let progress_dirty =
  ref false
[@@lint.domain_local "guarded by progress_mutex"]

let progress line =
  if progress_enabled () then
    Mutex.protect progress_mutex (fun () ->
        progress_dirty := true;
        Printf.eprintf "\r%s\027[K%!" line)

let progress_done () =
  if progress_enabled () then
    Mutex.protect progress_mutex (fun () ->
        if !progress_dirty then begin
          progress_dirty := false;
          Printf.eprintf "\r\027[K%!"
        end)
