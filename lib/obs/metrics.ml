type counter = int

let capacity = 128

let names =
  Array.make capacity ""
[@@lint.domain_local "written only on the main domain at init time, read-only after fan-out"]

let by_name : (string, int) Hashtbl.t =
  Hashtbl.create capacity
[@@lint.domain_local "written only on the main domain at init time, read-only after fan-out"]

let registered =
  ref 0
[@@lint.domain_local "written only on the main domain at init time, read-only after fan-out"]

(* Registration is init-time-only: the names array and hashtable are
   plain unsynchronized state, safe exactly because every [register]
   call happens in the main domain before any fan-out. Spawned domains
   only read [names], which is frozen by then. *)
let register name =
  if name = "" then invalid_arg "Metrics.register: empty name";
  if not (Domain.is_main_domain ()) then
    invalid_arg "Metrics.register: register at init time from the main domain only";
  match Hashtbl.find_opt by_name name with
  | Some c -> c
  | None ->
      if !registered >= capacity then invalid_arg "Metrics.register: registry full";
      let c = !registered in
      names.(c) <- name;
      Hashtbl.replace by_name name c;
      incr registered;
      c

let name c = names.(c)

let bfs_calls = register "bfs.calls"
let view_extracts = register "view.extracts"
let set_cover_solves = register "set_cover.solves"
let set_cover_nodes = register "set_cover.bb_nodes"
let set_cover_cutoffs = register "set_cover.bb_cutoffs"
let set_cover_greedy = register "set_cover.greedy_runs"
let best_response_calls = register "best_response.calls"
let best_response_radii = register "best_response.radii_tried"
let sum_best_response_calls = register "sum_best_response.calls"
let sum_bb_nodes = register "sum_best_response.bb_nodes"
let sum_bb_cutoffs = register "sum_best_response.bb_cutoffs"
let dynamics_rounds = register "dynamics.rounds"
let dynamics_moves = register "dynamics.moves"
let service_requests = register "service.requests"
let service_cache_hits = register "service.cache_hits"
let service_dedup_hits = register "service.dedup_hits"
let service_completions = register "service.completions"
let service_requeues = register "service.requeues"
let service_quarantines = register "service.quarantines"
let service_heartbeats = register "service.heartbeats"
let service_worker_quarantines = register "service.worker_quarantines"
let service_lease_expiries = register "service.lease_expiries"
let service_cancels = register "service.cancels"
let queue_enqueues = register "queue.enqueues"
let queue_leases = register "queue.leases"

(* The collector is domain-local: no atomics in the hot path, and counts
   recorded by a sweep cell stay with that cell wherever it runs. *)
type collector = { counts : int array }

let current : collector option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let add c n =
  match Domain.DLS.get current with
  | None -> ()
  | Some col -> col.counts.(c) <- col.counts.(c) + n

let incr c = add c 1
let recording () = Domain.DLS.get current <> None

let read c =
  match Domain.DLS.get current with
  | None -> 0
  | Some col -> col.counts.(c)

type snapshot = (string * int) list

let snapshot_of col =
  List.init !registered (fun i -> (names.(i), col.counts.(i)))

let collect f =
  let col = { counts = Array.make capacity 0 } in
  let prev = Domain.DLS.get current in
  Domain.DLS.set current (Some col);
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set current prev;
      match prev with
      | Some outer ->
          Array.iteri
            (fun i v -> outer.counts.(i) <- outer.counts.(i) + v)
            col.counts
      | None -> ())
    (fun () ->
      let result = f () in
      (result, snapshot_of col))

let merge a b =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) a;
  List.iter
    (fun (k, v) ->
      Hashtbl.replace tbl k (v + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    b;
  (* Registration order for registered counters, then any stragglers in
     input order, so merged snapshots keep a stable shape. *)
  let ordered = ref [] in
  let emit k =
    match Hashtbl.find_opt tbl k with
    | Some v ->
        ordered := (k, v) :: !ordered;
        Hashtbl.remove tbl k
    | None -> ()
  in
  for i = 0 to !registered - 1 do
    emit names.(i)
  done;
  List.iter (fun (k, _) -> emit k) a;
  List.iter (fun (k, _) -> emit k) b;
  List.rev !ordered

let total snaps = List.fold_left merge [] snaps

let nonzero snap = List.filter (fun (_, v) -> v <> 0) snap

let to_json snap =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (nonzero snap))

(* Inverse of to_json: re-expands the dropped zeros over the registered
   counters (registration order), then appends unknown names in input
   order — so decode (encode snap) = snap for any snapshot produced by
   [collect] in the same binary. *)
let of_json = function
  | Json.Obj fields -> (
      let exception Bad of string in
      try
        let tbl = Hashtbl.create 16 in
        List.iter
          (fun (k, v) ->
            match v with
            | Json.Int n -> Hashtbl.replace tbl k n
            | _ -> raise (Bad (Printf.sprintf "counter %S: expected an int" k)))
          fields;
        let base =
          List.init !registered (fun i ->
              (names.(i), Option.value ~default:0 (Hashtbl.find_opt tbl names.(i))))
        in
        let extras =
          List.filter_map
            (fun (k, v) ->
              if Hashtbl.mem by_name k then None
              else match v with Json.Int n -> Some (k, n) | _ -> None)
            fields
        in
        Ok (base @ extras)
      with Bad msg -> Error ("Metrics.of_json: " ^ msg))
  | _ -> Error "Metrics.of_json: expected an object"

let to_markdown snap =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "| counter | count |\n|---|---:|\n";
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "| %s | %d |\n" k v))
    (nonzero snap);
  Buffer.contents buf
