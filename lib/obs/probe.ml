type probe = int

let registry_capacity = 32
let default_series_capacity = 64

let name_table =
  Array.make registry_capacity ""
[@@lint.domain_local "written only on the main domain at init time, read-only after fan-out"]

let by_name : (string, int) Hashtbl.t =
  Hashtbl.create registry_capacity
[@@lint.domain_local "written only on the main domain at init time, read-only after fan-out"]

let registered =
  ref 0
[@@lint.domain_local "written only on the main domain at init time, read-only after fan-out"]

(* Same init-time-only discipline as Metrics.register: the registry is
   plain unsynchronized state, safe exactly because every [register]
   call happens in the main domain before any fan-out. *)
let register name =
  if name = "" then invalid_arg "Probe.register: empty name";
  if not (Domain.is_main_domain ()) then
    invalid_arg "Probe.register: register at init time from the main domain only";
  match Hashtbl.find_opt by_name name with
  | Some p -> p
  | None ->
      if !registered >= registry_capacity then
        invalid_arg "Probe.register: registry full";
      let p = !registered in
      name_table.(p) <- name;
      Hashtbl.replace by_name name p;
      incr registered;
      p

let name p = name_table.(p)
let names () = List.init !registered (fun i -> name_table.(i))
let find n = Hashtbl.find_opt by_name n

let social_cost = register "dynamics.social_cost"
let awake_players = register "dynamics.awake_players"
let br_gap_max = register "dynamics.br_gap_max"
let br_gap_total = register "dynamics.br_gap_total"
let move_edit_distance = register "dynamics.move_edit_distance"
let move_locality_radius = register "dynamics.move_locality_radius"
let set_cover_nodes = register "solver.set_cover_nodes"
let bb_cutoffs = register "solver.bb_cutoffs"

(* Series are materialized lazily, so probes that never fire in a given
   configuration (e.g. the Sum engine's under Max) cost nothing. *)
type collector = { capacity : int; series : Timeseries.t option array }

let current : collector option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let recording () = Domain.DLS.get current <> None

let series_of col p =
  match col.series.(p) with
  | Some s -> s
  | None ->
      let s = Timeseries.create ~capacity:col.capacity () in
      col.series.(p) <- Some s;
      s

let sample p ~x y =
  match Domain.DLS.get current with
  | None -> ()
  | Some col -> Timeseries.push (series_of col p) ~x y

let sample_lazy p ~x f =
  match Domain.DLS.get current with
  | None -> ()
  | Some col -> Timeseries.push_lazy (series_of col p) ~x f

type snapshot = (string * Timeseries.t) list

let snapshot_of col =
  List.init !registered (fun i ->
      ( name_table.(i),
        match col.series.(i) with
        | Some s -> s
        | None -> Timeseries.create ~capacity:col.capacity () ))

let empty_snapshot ?(capacity = default_series_capacity) () =
  List.init !registered (fun i ->
      (name_table.(i), Timeseries.create ~capacity ()))

let collect ?(capacity = default_series_capacity) f =
  let col = { capacity; series = Array.make registry_capacity None } in
  let prev = Domain.DLS.get current in
  Domain.DLS.set current (Some col);
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set current prev)
    (fun () ->
      let result = f () in
      (result, snapshot_of col))

let equal_snapshot a b =
  List.length a = List.length b
  && List.for_all2
       (fun (na, sa) (nb, sb) -> na = nb && Timeseries.equal sa sb)
       a b

let schema = Schema.obs_probes

let to_json snap =
  let capacity =
    match snap with
    | (_, s) :: _ -> Timeseries.capacity s
    | [] -> default_series_capacity
  in
  Json.Obj
    [
      ("schema", Json.String schema);
      ("capacity", Json.Int capacity);
      ( "series",
        Json.Obj
          (List.filter_map
             (fun (n, s) ->
               if Timeseries.pushed s = 0 then None
               else Some (n, Timeseries.to_json s))
             snap) );
    ]

let of_json = function
  | Json.Obj fields -> (
      let exception Bad of string in
      try
        (match List.assoc_opt "schema" fields with
        | Some (Json.String s) when s = schema -> ()
        | Some (Json.String s) ->
            raise (Bad (Printf.sprintf "unknown schema %S" s))
        | _ -> raise (Bad "missing schema"));
        let capacity =
          match List.assoc_opt "capacity" fields with
          | Some (Json.Int c) -> c
          | _ -> raise (Bad "missing capacity")
        in
        let series =
          match List.assoc_opt "series" fields with
          | Some (Json.Obj s) -> s
          | _ -> raise (Bad "missing series")
        in
        let decode n j =
          match Timeseries.of_json j with
          | Ok s -> s
          | Error msg -> raise (Bad (Printf.sprintf "probe %S: %s" n msg))
        in
        let tbl = Hashtbl.create 16 in
        List.iter (fun (n, j) -> Hashtbl.replace tbl n (decode n j)) series;
        let base =
          List.init !registered (fun i ->
              let n = name_table.(i) in
              ( n,
                match Hashtbl.find_opt tbl n with
                | Some s -> s
                | None -> Timeseries.create ~capacity () ))
        in
        let extras =
          List.filter_map
            (fun (n, _) ->
              if Hashtbl.mem by_name n then None
              else Option.map (fun s -> (n, s)) (Hashtbl.find_opt tbl n))
            series
        in
        Ok (base @ extras)
      with Bad msg -> Error ("Probe.of_json: " ^ msg))
  | _ -> Error "Probe.of_json: expected an object"
