(** Named counters for the experiment pipeline's hot paths.

    Counters only record while a {e collector} is installed in the current
    domain (see {!collect}); otherwise {!incr}/{!add} are a single
    domain-local-storage read and a branch — cheap enough to leave in BFS
    and branch-and-bound inner loops unconditionally. Collectors are
    domain-local, so parallel sweep cells each count into their own
    collector and the per-cell numbers are deterministic regardless of
    how cells are scheduled over domains.

    Nesting composes: when [collect] runs inside an outer [collect], the
    inner counts are folded into the outer collector on exit, so a
    whole-sweep collector still sees everything its cells did. *)

type counter

(** [register name] returns the counter named [name], creating it on
    first use.

    {b Init-time-only contract.} The registry is plain unsynchronized
    state: registering concurrently from two domains races, and a
    registration that runs after domains were spawned could be observed
    torn by them. So registration must happen at module initialization
    time, from the main domain, before any fan-out — as all built-ins
    below do. This is asserted: [register] raises [Invalid_argument]
    when called from a spawned domain ([Domain.is_main_domain] is
    false). Lookup of an already-registered name is O(1).

    Raises [Invalid_argument] when the fixed-size registry (128 slots)
    is full. *)
val register : string -> counter

(** The counter's registered name. *)
val name : counter -> string

(** {1 Built-in counters}

    Incremented by the instrumented library code. *)

val bfs_calls : counter  (** [Ncg_graph.Bfs] traversals started *)

val view_extracts : counter  (** [View.extract] calls (ball + ownership) *)

val set_cover_solves : counter  (** exact/budgeted [Set_cover.solve] calls *)

val set_cover_nodes : counter  (** branch-and-bound nodes expanded *)

val set_cover_cutoffs : counter  (** lower-bound prunes in [Set_cover.solve] *)

val set_cover_greedy : counter  (** greedy warm starts / greedy solves *)

val best_response_calls : counter  (** [Best_response.compute] invocations *)

val best_response_radii : counter  (** dominating-set radii (h values) tried *)

val sum_best_response_calls : counter  (** [Sum_best_response.improving] calls *)

val sum_bb_nodes : counter  (** SumNCG branch-and-bound nodes expanded *)

val sum_bb_cutoffs : counter  (** SumNCG lower-bound prunes *)

val dynamics_rounds : counter  (** completed best-response rounds *)

val dynamics_moves : counter  (** accepted strategy changes *)

val service_requests : counter
(** sweep-service requests decoded (any verb) *)

val service_cache_hits : counter
(** submitted cells answered from the store without recomputation *)

val service_dedup_hits : counter
(** submitted cells attached to an already-in-flight computation *)

val service_completions : counter  (** cells completed by workers *)

val service_requeues : counter
(** leases returned to pending (failed attempts, lost workers) *)

val service_quarantines : counter
(** cells abandoned after exhausting the retry budget *)

val service_heartbeats : counter
(** worker [ping]s accepted by the daemon *)

val service_worker_quarantines : counter
(** workers quarantined after consecutive failed/expired attempts *)

val service_lease_expiries : counter
(** leases reclaimed from heartbeat-silent workers *)

val service_cancels : counter
(** client-issued job cancellations *)

val queue_enqueues : counter  (** [Ncg_store.Work_queue] enqueues *)

val queue_leases : counter  (** [Ncg_store.Work_queue] leases granted *)

(** {1 Recording} *)

(** [incr c] adds 1 to [c] in the current domain's collector, if any. *)
val incr : counter -> unit

(** [add c n] adds [n]. *)
val add : counter -> int -> unit

(** True when a collector is installed in the calling domain. *)
val recording : unit -> bool

(** [read c] is [c]'s count in the current domain's collector (0 when no
    collector is installed). Round-level probes use deltas of [read] to
    attribute solver effort to individual dynamics rounds. *)
val read : counter -> int

(** {1 Collecting} *)

(** A frozen counter valuation: every registered counter, in registration
    order, with its count (zeros included, so snapshots from the same
    binary always have the same shape). *)
type snapshot = (string * int) list

(** [collect f] installs a fresh collector, runs [f], uninstalls it and
    returns [f]'s result with the counts recorded during the call. If a
    collector was already installed, the counts are also added to it. *)
val collect : (unit -> 'a) -> 'a * snapshot

(** Pointwise sum; counters missing from one operand count as 0. *)
val merge : snapshot -> snapshot -> snapshot

(** [total []] is the all-zero snapshot. *)
val total : snapshot list -> snapshot

(** Snapshot as a JSON object, counter name to count, zeros dropped. *)
val to_json : snapshot -> Json.t

(** Inverse of {!to_json}: dropped zeros are re-expanded over the
    registered counters in registration order (then unknown names in
    input order), so within one binary
    [of_json (to_json snap) = Ok snap] for any [collect] snapshot. Used
    to restore cached sweep cells from {!Ncg_store}. *)
val of_json : Json.t -> (snapshot, string) result

(** Two-column markdown table, zeros dropped. *)
val to_markdown : snapshot -> string
