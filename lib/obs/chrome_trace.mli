(** Chrome trace-event JSON export, loadable in Perfetto
    ({{:https://ui.perfetto.dev}ui.perfetto.dev}) and [chrome://tracing].

    A builder accumulates events and serializes to the JSON-object form
    [{"traceEvents": [...], "displayTimeUnit": "ms"}]. Timestamps are
    monotonic-clock microseconds ({!Clock.now_ns} / 1000); [pid] is the
    constant 1 (one process) and [tid] is an OCaml domain id, so a
    parallel sweep renders one horizontal track per domain. Unnamed tids
    are auto-labelled ["domain N"] on first use. *)

type t

val create : ?process_name:string -> unit -> t

(** [set_thread_name t ~tid name] labels a track (first call per tid
    wins; later calls are ignored). *)
val set_thread_name : t -> tid:int -> string -> unit

(** [add_span_tree t ~tid span] emits nested [B]/[E] (duration
    begin/end) pairs for the whole tree, using each span's absolute
    [started_ns]/[elapsed_ns]. Children nest correctly because they ran
    sequentially inside their parent in one domain. *)
val add_span_tree : t -> tid:int -> Span.t -> unit

(** A flat [X] (complete) event. *)
val add_complete :
  t ->
  tid:int ->
  name:string ->
  start_ns:int64 ->
  dur_ns:int64 ->
  ?args:(string * Json.t) list ->
  unit ->
  unit

(** A [C] (counter) event: a named time series of float values, rendered
    by Perfetto as a stacked area track (used for GC counters). *)
val add_counter :
  t -> tid:int -> ts_ns:int64 -> name:string -> (string * float) list -> unit

(** Number of events {!to_json} will emit (metadata records included). *)
val event_count : t -> int

val to_json : t -> Json.t
val to_file : string -> t -> unit
