(** Central registry of the repo's [ncg.*/N] schema tags.

    Every versioned artifact (telemetry, store records, bench reports,
    service protocol, lint reports) names its schema through this module
    — never as a local string literal — so an emit site and its parse
    site cannot skew across a version bump. The lint rule [R1]
    (docs/LINTING.md) enforces this mechanically: an exact schema-shaped
    string literal anywhere outside [lib/obs/schema.ml] is a violation.

    Legacy tags that readers still accept (e.g. {!service_request_v1})
    remain registered forever; removing a tag from the registry is a
    statement that no reader or writer references it any more. *)

val obs_timeseries : string
val obs_probes : string
val store_manifest : string
val store_cell : string
val experiment_telemetry : string
val service_spec : string
val service_request : string
val service_request_v1 : string
val service_response : string
val service_task : string
val lint_report : string
val bench_experiment : string
val bench_fullgrid : string
val bench_baseline : string
val bench_history : string

(** Every registered tag, current and legacy. *)
val all : string list

(** [is_schema_shaped s] is [true] when [s] is exactly
    [ncg.<seg>(.<seg>)*/<digits>] with lowercase [a-z0-9_] segments —
    the literal shape the [R1] lint rule polices. *)
val is_schema_shaped : string -> bool

(** [registered s] is [List.mem s all]. *)
val registered : string -> bool
