(** Monotonic wall-clock, nanosecond resolution.

    Backed by [clock_gettime(CLOCK_MONOTONIC)] through bechamel's C stub
    (already a bench dependency), so readings are immune to NTP steps and
    suitable for measuring elapsed time across domains. *)

(** Nanoseconds from an arbitrary fixed origin; strictly non-decreasing
    within a process. *)
val now_ns : unit -> int64

(** [elapsed_ns ~since] is [now_ns () - since]. *)
val elapsed_ns : since:int64 -> int64

(** Nanoseconds to seconds. *)
val ns_to_s : int64 -> float
