type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr x =
  if Float.is_nan x || Float.abs x = Float.infinity then "null"
  else begin
    (* Shortest representation that round-trips and is valid JSON. *)
    let s = Printf.sprintf "%.17g" x in
    let shorter = Printf.sprintf "%.12g" x in
    let s = if float_of_string shorter = x then shorter else s in
    if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
    then s
    else s ^ ".0"
  end

let rec emit ~indent buf level t =
  let pad l = if indent then Buffer.add_string buf (String.make (2 * l) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  match t with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_repr x)
  | String s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (level + 1);
          emit ~indent buf (level + 1) item)
        items;
      nl ();
      pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (key, value) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (level + 1);
          escape buf key;
          Buffer.add_string buf (if indent then ": " else ":");
          emit ~indent buf (level + 1) value)
        fields;
      nl ();
      pad level;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  emit ~indent:false buf 0 t;
  Buffer.contents buf

let to_string_pretty t =
  let buf = Buffer.create 256 in
  emit ~indent:true buf 0 t;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let to_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string_pretty t))
