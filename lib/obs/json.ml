type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr x =
  if Float.is_nan x || Float.abs x = Float.infinity then "null"
  else begin
    (* Shortest representation that round-trips and is valid JSON. *)
    let s = Printf.sprintf "%.17g" x in
    let shorter = Printf.sprintf "%.12g" x in
    let s = if float_of_string shorter = x then shorter else s in
    if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
    then s
    else s ^ ".0"
  end

let rec emit ~indent buf level t =
  let pad l = if indent then Buffer.add_string buf (String.make (2 * l) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  match t with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_repr x)
  | String s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (level + 1);
          emit ~indent buf (level + 1) item)
        items;
      nl ();
      pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (key, value) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (level + 1);
          escape buf key;
          Buffer.add_string buf (if indent then ": " else ":");
          emit ~indent buf (level + 1) value)
        fields;
      nl ();
      pad level;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  emit ~indent:false buf 0 t;
  Buffer.contents buf

let to_string_pretty t =
  let buf = Buffer.create 256 in
  emit ~indent:true buf 0 t;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* Atomic write: render to a same-directory temp file, fsync, then
   rename over the target. A crash at any point leaves either the old
   file or the new one — never a partial/invalid JSON document. *)
let to_file path t =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc =
    (open_out [@lint.allow "A1" "this IS the blessed atomic JSON writer"]) tmp
  in
  (match
     output_string oc (to_string_pretty t);
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc)
   with
  | () -> close_out oc
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  Sys.rename tmp path

(* --- Parsing --------------------------------------------------------------- *)

(* Recursive-descent parser for the full JSON grammar (RFC 8259). Used by
   tests to validate everything the emitters above produce (escaping
   round-trips, Chrome traces, JSONL events) without an external JSON
   dependency. Numbers with '.', 'e' or 'E' parse as Float, others as Int
   (falling back to Float on overflow). *)

exception Parse_failure of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_failure (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let skip_ws () =
    while
      !pos < n && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let literal word value =
    String.iter expect word;
    value
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'; advance ()
           | '\\' -> Buffer.add_char buf '\\'; advance ()
           | '/' -> Buffer.add_char buf '/'; advance ()
           | 'b' -> Buffer.add_char buf '\b'; advance ()
           | 'f' -> Buffer.add_char buf '\012'; advance ()
           | 'n' -> Buffer.add_char buf '\n'; advance ()
           | 'r' -> Buffer.add_char buf '\r'; advance ()
           | 't' -> Buffer.add_char buf '\t'; advance ()
           | 'u' ->
               advance ();
               let cp = hex4 () in
               let cp =
                 if cp >= 0xD800 && cp <= 0xDBFF then begin
                   (* High surrogate: must pair with a low one. *)
                   if
                     !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                   then begin
                     advance ();
                     advance ();
                     let lo = hex4 () in
                     if lo < 0xDC00 || lo > 0xDFFF then fail "bad low surrogate";
                     0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                   end
                   else fail "unpaired high surrogate"
                 end
                 else if cp >= 0xDC00 && cp <= 0xDFFF then
                   fail "unpaired low surrogate"
                 else cp
               in
               if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
               else Buffer.add_utf_8_uchar buf (Uchar.of_int cp)
           | _ -> fail "unknown escape");
          go ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
      | _ -> false
    do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    let is_float =
      String.exists (function '.' | 'e' | 'E' -> true | _ -> false) text
    in
    if is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "malformed number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "malformed number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            fields := (key, value) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let value = parse_value () in
            items := value :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_failure msg -> Error msg
  | exception e ->
      (* Belt and braces: of_string promises to never raise, whatever
         bytes arrive (the qcheck fuzz tests hold it to that). *)
      Error (Printf.sprintf "unexpected parser failure: %s" (Printexc.to_string e))
