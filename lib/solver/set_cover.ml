module Bitset = Ncg_util.Bitset

type instance = {
  universe : int;
  sets : Bitset.t array;
  pre_covered : Bitset.t option;
}

type solution = { chosen : int list; cardinality : int }

(* A pool of same-capacity bitsets so the branch-and-bound recursion stops
   allocating one set per node. Acquired sets come back dirty: callers must
   overwrite them fully ([copy_into] + an [_into] op) before reading. The
   pool resets itself when the universe size changes, so one workspace can
   be threaded through solves over many instances (e.g. every radius of a
   best-response call, every call of a dynamics run). Not domain-safe: one
   workspace per domain. *)
type workspace = {
  mutable cap : int;
  mutable pool : Bitset.t list;
  (* Flat element → covering-candidate index, CSR-style, rebuilt per solve:
     [cov_idx] slots [cov_start e .. cov_off.(e) - 1] hold the candidate
     indices covering element e, ascending. One growable pair instead of a
     fresh [int list array] per solve. *)
  mutable cov_off : int array;
  mutable cov_idx : int array;
}

let create_workspace () =
  { cap = -1; pool = []; cov_off = [||]; cov_idx = [||] }

let acquire ws n =
  if ws.cap <> n then begin
    ws.cap <- n;
    ws.pool <- []
  end;
  match ws.pool with
  | b :: rest ->
      ws.pool <- rest;
      b
  | [] -> Bitset.create n

let release ws b = if Bitset.capacity b = ws.cap then ws.pool <- b :: ws.pool

let initial_uncovered inst =
  let u = Bitset.create inst.universe in
  Bitset.fill u;
  (match inst.pre_covered with
  | Some pre -> Bitset.diff_into ~into:u pre
  | None -> ());
  u

let is_cover inst chosen =
  let u = initial_uncovered inst in
  List.iter (fun c -> Bitset.diff_into ~into:u inst.sets.(c)) chosen;
  Bitset.is_empty u

(* Candidates that actually help (non-empty intersection with the initial
   uncovered set), with dominated candidates removed: c is dominated by c'
   when c ∩ U ⊆ c' ∩ U. Returns the useful part of each candidate plus its
   original index. *)
let reduced_candidates ws inst uncovered =
  let useful = ref [] in
  Array.iteri
    (fun i s ->
      let cut = acquire ws inst.universe in
      Bitset.copy_into ~into:cut s;
      Bitset.inter_into ~into:cut uncovered;
      if Bitset.is_empty cut then release ws cut
      else useful := (i, cut) :: !useful)
    inst.sets;
  let arr = Array.of_list (List.rev !useful) in
  let n = Array.length arr in
  let keep = Array.make n true in
  for i = 0 to n - 1 do
    if keep.(i) then
      for j = 0 to n - 1 do
        if j <> i && keep.(j) then begin
          let _, si = arr.(i) and _, sj = arr.(j) in
          (* Drop j if it is contained in i; ties broken by index so that
             exactly one of two equal sets survives. *)
          if Bitset.subset sj si && (not (Bitset.equal si sj) || i < j) then
            keep.(j) <- false
        end
      done
  done;
  let out = ref [] in
  for i = n - 1 downto 0 do
    if keep.(i) then out := arr.(i) :: !out
    else release ws (snd arr.(i))
  done;
  Array.of_list !out

(* Hand every candidate cut back to the pool once a solve is done. *)
let release_candidates ws candidates =
  Array.iter (fun (_, cut) -> release ws cut) candidates

let feasible candidates uncovered =
  (* Every uncovered element must appear in some candidate. *)
  let coverable = Bitset.create (Bitset.capacity uncovered) in
  Array.iter (fun (_, s) -> Bitset.union_into ~into:coverable s) candidates;
  Bitset.subset uncovered coverable

let greedy_on ws candidates uncovered0 =
  Ncg_obs.Metrics.(incr set_cover_greedy);
  let uncovered = acquire ws (Bitset.capacity uncovered0) in
  Bitset.copy_into ~into:uncovered uncovered0;
  let chosen = ref [] in
  let continue_ = ref true in
  while (not (Bitset.is_empty uncovered)) && !continue_ do
    Ncg_fault.Cancel.checkpoint ();
    let best = ref (-1) and best_gain = ref 0 in
    Array.iteri
      (fun i (_, s) ->
        let gain = Bitset.inter_cardinal s uncovered in
        if gain > !best_gain then begin
          best := i;
          best_gain := gain
        end)
      candidates;
    if !best < 0 then continue_ := false
    else begin
      let orig, s = candidates.(!best) in
      chosen := orig :: !chosen;
      Bitset.diff_into ~into:uncovered s
    end
  done;
  let covered = Bitset.is_empty uncovered in
  release ws uncovered;
  if covered then Some (List.rev !chosen) else None

let greedy ?ws inst =
  let ws = match ws with Some w -> w | None -> create_workspace () in
  let uncovered = initial_uncovered inst in
  if Bitset.is_empty uncovered then Some { chosen = []; cardinality = 0 }
  else begin
    let candidates = reduced_candidates ws inst uncovered in
    let result =
      match greedy_on ws candidates uncovered with
      | Some chosen -> Some { chosen; cardinality = List.length chosen }
      | None -> None
    in
    release_candidates ws candidates;
    result
  end

(* Exact DP over covered-element masks. dp.(mask) = fewest sets whose
   union, together with the pre-covered elements, covers exactly the
   elements of [mask] or more... precisely: dp.(mask) = fewest sets
   covering a superset of mask's uncovered part. We iterate the standard
   relaxation: dp.(mask | set) <- dp.(mask) + 1. *)
let solve_dp inst =
  if inst.universe > 22 then
    invalid_arg "Set_cover.solve_dp: universe too large for the DP";
  let to_mask s = Bitset.fold (fun i acc -> acc lor (1 lsl i)) s 0 in
  let full = (1 lsl inst.universe) - 1 in
  let pre = match inst.pre_covered with Some p -> to_mask p | None -> 0 in
  let sets = Array.map to_mask inst.sets in
  let size = full + 1 in
  let dp = Array.make size max_int in
  let choice = Array.make size (-1) in
  let parent = Array.make size 0 in
  dp.(pre land full) <- 0;
  (* Masks in increasing order: [mask lor set >= mask], so a single sweep
     relaxes everything (sets only add bits). *)
  for mask = 0 to full do
    if dp.(mask) < max_int then
      Array.iteri
        (fun i set ->
          let next = mask lor set in
          if dp.(mask) + 1 < dp.(next) then begin
            dp.(next) <- dp.(mask) + 1;
            choice.(next) <- i;
            parent.(next) <- mask
          end)
        sets
  done;
  if dp.(full) = max_int then None
  else begin
    let chosen = ref [] in
    let mask = ref full in
    while choice.(!mask) >= 0 do
      chosen := choice.(!mask) :: !chosen;
      mask := parent.(!mask)
    done;
    Some { chosen = !chosen; cardinality = dp.(full) }
  end

(* Lower bound: a greedy family of elements no two of which share a
   candidate; each requires its own set. [covers_elt.(e)] lists candidate
   indices covering e. *)
let lower_bound ws candidates uncovered =
  let cov_off = ws.cov_off and cov_idx = ws.cov_idx in
  let rest = acquire ws (Bitset.capacity uncovered) in
  Bitset.copy_into ~into:rest uncovered;
  let lb = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    match Bitset.choose_from rest 0 with
    | None -> continue_ := false
    | Some e ->
        incr lb;
        (* Remove every element co-coverable with e. *)
        for i = (if e = 0 then 0 else cov_off.(e - 1)) to cov_off.(e) - 1 do
          let _, s = candidates.(cov_idx.(i)) in
          Bitset.diff_into ~into:rest s
        done
  done;
  release ws rest;
  !lb

let solve ?ws ?max_size ?(node_budget = max_int) inst =
  Ncg_obs.Histogram.(time set_cover) @@ fun () ->
  Ncg_obs.Metrics.(incr set_cover_solves);
  let ws = match ws with Some w -> w | None -> create_workspace () in
  let uncovered0 = initial_uncovered inst in
  if Bitset.is_empty uncovered0 then Some { chosen = []; cardinality = 0 }
  else begin
    let candidates = reduced_candidates ws inst uncovered0 in
    if not (feasible candidates uncovered0) then begin
      release_candidates ws candidates;
      None
    end
    else begin
      let ncand = Array.length candidates in
      let u_cap = inst.universe in
      (* Flat covers index into the workspace arrays: counts at [e + 1],
         prefix-summed to starts, then a cursor pass that leaves
         [cov_off.(e)] at the *end* of element e's slice (so the start is
         [cov_off.(e - 1)], or 0 for e = 0). Candidate order inside a slice
         is ascending, exactly as the former per-element lists. *)
      if Array.length ws.cov_off < u_cap + 1 then
        ws.cov_off <- Array.make (u_cap + 1) 0;
      let cov_off = ws.cov_off in
      Array.fill cov_off 0 (u_cap + 1) 0;
      Array.iter
        (fun (_, s) -> Bitset.iter (fun e -> cov_off.(e + 1) <- cov_off.(e + 1) + 1) s)
        candidates;
      for e = 1 to u_cap do
        cov_off.(e) <- cov_off.(e) + cov_off.(e - 1)
      done;
      let total = cov_off.(u_cap) in
      if Array.length ws.cov_idx < total then ws.cov_idx <- Array.make total 0;
      let cov_idx = ws.cov_idx in
      for ci = 0 to ncand - 1 do
        let _, s = candidates.(ci) in
        Bitset.iter
          (fun e ->
            cov_idx.(cov_off.(e)) <- ci;
            cov_off.(e) <- cov_off.(e) + 1)
          s
      done;
      let cov_start e = if e = 0 then 0 else cov_off.(e - 1) in
      (* Incumbent from greedy; cap by max_size if provided. *)
      let cap =
        match max_size with Some m -> m | None -> inst.universe + 1
      in
      let best_card = ref (cap + 1) in
      let best_sol = ref None in
      (match greedy_on ws candidates uncovered0 with
      | Some chosen ->
          let c = List.length chosen in
          if c <= cap then begin
            best_card := c;
            best_sol := Some chosen
          end
      | None -> ());
      let nodes = ref 0 in
      let rec branch uncovered depth acc =
        (* Cooperative cancellation per B&B node: an executor deadline
           (--cell-deadline-ms) or step budget can cut off one oversized
           solve instead of waiting for the node budget. One atomic read
           when nothing is armed. *)
        Ncg_fault.Cancel.checkpoint ();
        incr nodes;
        if !nodes > node_budget then ()
        else if Bitset.is_empty uncovered then begin
          if depth < !best_card then begin
            best_card := depth;
            best_sol := Some (List.rev acc)
          end
        end
        else if depth + 1 < !best_card then begin
          let lb = lower_bound ws candidates uncovered in
          if depth + lb >= !best_card then
            Ncg_obs.Metrics.(incr set_cover_cutoffs)
          else begin
            (* Branch on the uncovered element with fewest live candidates. *)
            let pick = ref (-1) and pick_count = ref max_int in
            Bitset.iter
              (fun e ->
                let c = cov_off.(e) - cov_start e in
                if c < !pick_count then begin
                  pick := e;
                  pick_count := c
                end)
              uncovered;
            let e = !pick in
            (* Try candidates covering e, largest residual coverage first. *)
            let opts = ref [] in
            for i = cov_off.(e) - 1 downto cov_start e do
              let ci = cov_idx.(i) in
              let _, s = candidates.(ci) in
              opts := (ci, Bitset.inter_cardinal s uncovered) :: !opts
            done;
            let opts = !opts in
            let opts = List.sort (fun (_, a) (_, b) -> compare b a) opts in
            List.iter
              (fun (ci, _) ->
                if depth + 1 < !best_card then begin
                  let orig, s = candidates.(ci) in
                  let uncovered' = acquire ws inst.universe in
                  Bitset.copy_into ~into:uncovered' uncovered;
                  Bitset.diff_into ~into:uncovered' s;
                  branch uncovered' (depth + 1) (orig :: acc);
                  release ws uncovered'
                end)
              opts
          end
        end
      in
      branch uncovered0 0 [];
      release_candidates ws candidates;
      Ncg_obs.Metrics.(add set_cover_nodes !nodes);
      match !best_sol with
      | Some chosen when !best_card <= cap ->
          Some { chosen; cardinality = !best_card }
      | _ -> None
    end
  end
