module Bitset = Ncg_util.Bitset

type instance = {
  universe : int;
  sets : Bitset.t array;
  pre_covered : Bitset.t option;
}

type solution = { chosen : int list; cardinality : int }

let initial_uncovered inst =
  let u = Bitset.create inst.universe in
  Bitset.fill u;
  (match inst.pre_covered with
  | Some pre -> Bitset.diff_into ~into:u pre
  | None -> ());
  u

let is_cover inst chosen =
  let u = initial_uncovered inst in
  List.iter (fun c -> Bitset.diff_into ~into:u inst.sets.(c)) chosen;
  Bitset.is_empty u

(* Candidates that actually help (non-empty intersection with the initial
   uncovered set), with dominated candidates removed: c is dominated by c'
   when c ∩ U ⊆ c' ∩ U. Returns the useful part of each candidate plus its
   original index. *)
let reduced_candidates inst uncovered =
  let useful = ref [] in
  Array.iteri
    (fun i s ->
      let cut = Bitset.inter s uncovered in
      if not (Bitset.is_empty cut) then useful := (i, cut) :: !useful)
    inst.sets;
  let arr = Array.of_list (List.rev !useful) in
  let n = Array.length arr in
  let keep = Array.make n true in
  for i = 0 to n - 1 do
    if keep.(i) then
      for j = 0 to n - 1 do
        if j <> i && keep.(j) then begin
          let _, si = arr.(i) and _, sj = arr.(j) in
          (* Drop j if it is contained in i; ties broken by index so that
             exactly one of two equal sets survives. *)
          if Bitset.subset sj si && (not (Bitset.equal si sj) || i < j) then
            keep.(j) <- false
        end
      done
  done;
  let out = ref [] in
  for i = n - 1 downto 0 do
    if keep.(i) then out := arr.(i) :: !out
  done;
  Array.of_list !out

let feasible candidates uncovered =
  (* Every uncovered element must appear in some candidate. *)
  let coverable = Bitset.create (Bitset.capacity uncovered) in
  Array.iter (fun (_, s) -> Bitset.union_into ~into:coverable s) candidates;
  Bitset.subset uncovered coverable

let greedy_on candidates uncovered0 =
  Ncg_obs.Metrics.(incr set_cover_greedy);
  let uncovered = Bitset.copy uncovered0 in
  let chosen = ref [] in
  let continue_ = ref true in
  while (not (Bitset.is_empty uncovered)) && !continue_ do
    Ncg_fault.Cancel.checkpoint ();
    let best = ref (-1) and best_gain = ref 0 in
    Array.iteri
      (fun i (_, s) ->
        let gain = Bitset.inter_cardinal s uncovered in
        if gain > !best_gain then begin
          best := i;
          best_gain := gain
        end)
      candidates;
    if !best < 0 then continue_ := false
    else begin
      let orig, s = candidates.(!best) in
      chosen := orig :: !chosen;
      Bitset.diff_into ~into:uncovered s
    end
  done;
  if Bitset.is_empty uncovered then Some (List.rev !chosen) else None

let greedy inst =
  let uncovered = initial_uncovered inst in
  if Bitset.is_empty uncovered then Some { chosen = []; cardinality = 0 }
  else begin
    let candidates = reduced_candidates inst uncovered in
    match greedy_on candidates uncovered with
    | Some chosen -> Some { chosen; cardinality = List.length chosen }
    | None -> None
  end

(* Exact DP over covered-element masks. dp.(mask) = fewest sets whose
   union, together with the pre-covered elements, covers exactly the
   elements of [mask] or more... precisely: dp.(mask) = fewest sets
   covering a superset of mask's uncovered part. We iterate the standard
   relaxation: dp.(mask | set) <- dp.(mask) + 1. *)
let solve_dp inst =
  if inst.universe > 22 then
    invalid_arg "Set_cover.solve_dp: universe too large for the DP";
  let to_mask s = Bitset.fold (fun i acc -> acc lor (1 lsl i)) s 0 in
  let full = (1 lsl inst.universe) - 1 in
  let pre = match inst.pre_covered with Some p -> to_mask p | None -> 0 in
  let sets = Array.map to_mask inst.sets in
  let size = full + 1 in
  let dp = Array.make size max_int in
  let choice = Array.make size (-1) in
  let parent = Array.make size 0 in
  dp.(pre land full) <- 0;
  (* Masks in increasing order: [mask lor set >= mask], so a single sweep
     relaxes everything (sets only add bits). *)
  for mask = 0 to full do
    if dp.(mask) < max_int then
      Array.iteri
        (fun i set ->
          let next = mask lor set in
          if dp.(mask) + 1 < dp.(next) then begin
            dp.(next) <- dp.(mask) + 1;
            choice.(next) <- i;
            parent.(next) <- mask
          end)
        sets
  done;
  if dp.(full) = max_int then None
  else begin
    let chosen = ref [] in
    let mask = ref full in
    while choice.(!mask) >= 0 do
      chosen := choice.(!mask) :: !chosen;
      mask := parent.(!mask)
    done;
    Some { chosen = !chosen; cardinality = dp.(full) }
  end

(* Lower bound: a greedy family of elements no two of which share a
   candidate; each requires its own set. [covers_elt.(e)] lists candidate
   indices covering e. *)
let lower_bound candidates covers_elt uncovered =
  let rest = Bitset.copy uncovered in
  let lb = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    match Bitset.choose_from rest 0 with
    | None -> continue_ := false
    | Some e ->
        incr lb;
        (* Remove every element co-coverable with e. *)
        List.iter
          (fun ci ->
            let _, s = candidates.(ci) in
            Bitset.diff_into ~into:rest s)
          covers_elt.(e)
  done;
  !lb

let solve ?max_size ?(node_budget = max_int) inst =
  Ncg_obs.Histogram.(time set_cover) @@ fun () ->
  Ncg_obs.Metrics.(incr set_cover_solves);
  let uncovered0 = initial_uncovered inst in
  if Bitset.is_empty uncovered0 then Some { chosen = []; cardinality = 0 }
  else begin
    let candidates = reduced_candidates inst uncovered0 in
    if not (feasible candidates uncovered0) then None
    else begin
      let ncand = Array.length candidates in
      (* covers_elt.(e): indices into [candidates] covering element e. *)
      let covers_elt = Array.make inst.universe [] in
      for ci = ncand - 1 downto 0 do
        let _, s = candidates.(ci) in
        Bitset.iter (fun e -> covers_elt.(e) <- ci :: covers_elt.(e)) s
      done;
      (* Incumbent from greedy; cap by max_size if provided. *)
      let cap =
        match max_size with Some m -> m | None -> inst.universe + 1
      in
      let best_card = ref (cap + 1) in
      let best_sol = ref None in
      (match greedy_on candidates uncovered0 with
      | Some chosen ->
          let c = List.length chosen in
          if c <= cap then begin
            best_card := c;
            best_sol := Some chosen
          end
      | None -> ());
      let nodes = ref 0 in
      let rec branch uncovered depth acc =
        (* Cooperative cancellation per B&B node: an executor deadline
           (--cell-deadline-ms) or step budget can cut off one oversized
           solve instead of waiting for the node budget. One atomic read
           when nothing is armed. *)
        Ncg_fault.Cancel.checkpoint ();
        incr nodes;
        if !nodes > node_budget then ()
        else if Bitset.is_empty uncovered then begin
          if depth < !best_card then begin
            best_card := depth;
            best_sol := Some (List.rev acc)
          end
        end
        else if depth + 1 < !best_card then begin
          let lb = lower_bound candidates covers_elt uncovered in
          if depth + lb < !best_card then begin
            (* Branch on the uncovered element with fewest live candidates. *)
            let pick = ref (-1) and pick_count = ref max_int in
            Bitset.iter
              (fun e ->
                let c = List.length covers_elt.(e) in
                if c < !pick_count then begin
                  pick := e;
                  pick_count := c
                end)
              uncovered;
            let e = !pick in
            (* Try candidates covering e, largest residual coverage first. *)
            let opts =
              List.map
                (fun ci ->
                  let _, s = candidates.(ci) in
                  (ci, Bitset.inter_cardinal s uncovered))
                covers_elt.(e)
            in
            let opts = List.sort (fun (_, a) (_, b) -> compare b a) opts in
            List.iter
              (fun (ci, _) ->
                if depth + 1 < !best_card then begin
                  let orig, s = candidates.(ci) in
                  let uncovered' = Bitset.diff uncovered s in
                  branch uncovered' (depth + 1) (orig :: acc)
                end)
              opts
          end
        end
      in
      branch uncovered0 0 [];
      Ncg_obs.Metrics.(add set_cover_nodes !nodes);
      match !best_sol with
      | Some chosen when !best_card <= cap ->
          Some { chosen; cardinality = !best_card }
      | _ -> None
    end
  end
