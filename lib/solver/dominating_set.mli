(** Minimum dominating set with forced and forbidden vertices, on top of
    {!Set_cover}.

    This is exactly the optimization problem the paper reduces MaxNCG best
    response to (Section 5.3): dominate the (h−1)-th power of the view
    minus the player, where the vertices that already bought an edge
    towards the player dominate for free ("constrained to be included"
    in the paper's phrasing — equivalently their domination is free since
    the player keeps those edges either way). *)

type problem = {
  graph : Ncg_graph.Graph.t;
  radius : int;
      (** a vertex dominates all vertices within this distance; 1 = the
          classical dominating set *)
  free_dominators : int list;
      (** vertices whose closed balls are covered at no cost *)
  forbidden : int list;  (** vertices that may not be chosen as dominators *)
}

(** {1 Amortised radius loop}

    The best-response oracle solves the same graph at radii 0, 1, 2, ... —
    a {!context} computes the all-pairs distance rows once and grows each
    covering ball incrementally as the radius advances, instead of
    re-running n BFS per radius. *)

type context

(** A growable distance-matrix buffer reused across contexts. At most one
    context built from a given workspace may be live at a time — creating
    the next one overwrites the matrix. Not domain-safe. *)
type workspace

val create_workspace : unit -> workspace

(** [context ~graph ~free_dominators ~forbidden ()] prepares the radius
    loop: n BFS runs (borrowing [?scratch] when given — the context does
    not alias it afterwards) plus one n-bit set per vertex at radius 0.
    [?ws] lends the distance-matrix buffer; the context borrows it until
    the next [context] call on the same workspace. *)
val context :
  ?scratch:Ncg_graph.Bfs.scratch ->
  ?ws:workspace ->
  graph:Ncg_graph.Graph.t ->
  free_dominators:int list ->
  forbidden:int list ->
  unit ->
  context

(** [solve_at ?ws ctx ~radius] is {!solve} of the corresponding problem,
    reusing the context's distance rows and ball sets. Radii may be visited
    in any order; advancing is monotone internally. [?ws] threads a
    {!Set_cover.workspace} through the underlying branch and bound. *)
val solve_at :
  ?ws:Set_cover.workspace ->
  ?max_size:int ->
  ?node_budget:int ->
  context ->
  radius:int ->
  int list option

(** Greedy variant of {!solve_at}. *)
val greedy_at : ?ws:Set_cover.workspace -> context -> radius:int -> int list option

(** {1 One-shot problems} *)

(** [solve ?max_size ?node_budget p] is a minimum list of chosen
    dominators (excluding the free ones), or [None] if infeasible / above
    [max_size]. [node_budget] bounds the branch-and-bound search as in
    {!Set_cover.solve}. *)
val solve : ?max_size:int -> ?node_budget:int -> problem -> int list option

(** Greedy variant with the same interface. *)
val greedy : problem -> int list option

(** [dominates p chosen] checks that the free dominators plus [chosen]
    cover every vertex of the graph. *)
val dominates : problem -> int list -> bool
