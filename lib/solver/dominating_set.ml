module Bitset = Ncg_util.Bitset
module Graph = Ncg_graph.Graph
module Bfs = Ncg_graph.Bfs
module Power = Ncg_graph.Power

type problem = {
  graph : Graph.t;
  radius : int;
  free_dominators : int list;
  forbidden : int list;
}

(* Growable row-major n×n distance-matrix buffer. A workspace may back at
   most one live context at a time (the next [context] call with the same
   workspace overwrites the matrix). *)
type workspace = { mutable matrix : int array }

let create_workspace () = { matrix = [||] }

(* A context amortises the expensive part of the best-response radius loop:
   the all-pairs distance matrix is computed once (n BFS runs, instead of n
   per radius as the seed engine did via [Power.ball_sets]), and the ball
   bitsets grow *incrementally* — advancing from radius r to r+1 only adds
   the vertices at exactly distance r+1 to each ball. The covering-set
   array is shared across radii: forbidden vertices point at one shared
   empty set, everything else at its live ball. *)
type context = {
  graph : Graph.t;
  n : int;
  matrix : int array;  (* matrix.(v * n + w) = d(v, w), -1 if unreachable *)
  balls : Bitset.t array;  (* closed balls at [built_radius] *)
  mutable built_radius : int;
  sets : Bitset.t array;  (* balls, with forbidden vertices masked empty *)
  free_dominators : int list;
}

let context ?scratch ?ws ~graph ~free_dominators ~forbidden () =
  let n = Graph.order graph in
  let s =
    match scratch with Some s -> s | None -> Bfs.create_scratch ~capacity:n ()
  in
  let matrix =
    match ws with
    | Some (w : workspace) ->
        if Array.length w.matrix < n * n then w.matrix <- Array.make (n * n) 0;
        w.matrix
    | None -> Array.make (n * n) 0
  in
  for v = 0 to n - 1 do
    ignore (Bfs.run s graph v ~radius:max_int);
    Array.blit (Bfs.dist_array s) 0 matrix (v * n) n
  done;
  let balls =
    Array.init n (fun v ->
        let b = Bitset.create n in
        Bitset.add b v;
        b)
  in
  let forbidden_set = Bitset.of_list n forbidden in
  let empty = Bitset.create n in
  let sets =
    Array.init n (fun v -> if Bitset.mem forbidden_set v then empty else balls.(v))
  in
  { graph; n; matrix; balls; built_radius = 0; sets; free_dominators }

let advance_to ctx radius =
  if radius < 0 then invalid_arg "Dominating_set.advance_to: negative radius";
  while ctx.built_radius < radius do
    let r = ctx.built_radius + 1 in
    for v = 0 to ctx.n - 1 do
      let base = v * ctx.n in
      let ball = ctx.balls.(v) in
      for w = 0 to ctx.n - 1 do
        if ctx.matrix.(base + w) = r then Bitset.add ball w
      done
    done;
    ctx.built_radius <- r
  done

let instance_at ctx ~radius =
  advance_to ctx radius;
  let pre = Bitset.create ctx.n in
  List.iter
    (fun v -> Bitset.union_into ~into:pre ctx.balls.(v))
    ctx.free_dominators;
  { Set_cover.universe = ctx.n; sets = ctx.sets; pre_covered = Some pre }

let of_solution (s : Set_cover.solution) = s.Set_cover.chosen

let solve_at ?ws ?max_size ?node_budget ctx ~radius =
  Option.map of_solution
    (Set_cover.solve ?ws ?max_size ?node_budget (instance_at ctx ~radius))

let greedy_at ?ws ctx ~radius =
  Option.map of_solution (Set_cover.greedy ?ws (instance_at ctx ~radius))

(* One-shot problem API, kept for tests, benches and external callers; the
   radius loop in {!Ncg.Best_response} threads a context instead. *)

let to_instance (p : problem) =
  let n = Graph.order p.graph in
  let balls = Power.ball_sets p.graph p.radius in
  let pre = Bitset.create n in
  List.iter (fun v -> Bitset.union_into ~into:pre balls.(v)) p.free_dominators;
  let forbidden = Bitset.of_list n p.forbidden in
  (* Forbidden vertices get an empty candidate set so that they can never
     be selected, without disturbing vertex numbering. *)
  let sets =
    Array.init n (fun v -> if Bitset.mem forbidden v then Bitset.create n else balls.(v))
  in
  { Set_cover.universe = n; sets; pre_covered = Some pre }

let solve ?max_size ?node_budget p =
  Option.map of_solution (Set_cover.solve ?max_size ?node_budget (to_instance p))

let greedy p = Option.map of_solution (Set_cover.greedy (to_instance p))

let dominates p chosen = Set_cover.is_cover (to_instance p) chosen
