(** Exact and greedy minimum set cover.

    This module is the project's replacement for the Gurobi ILP solver the
    paper used to compute best responses (Section 5.3). An instance is a
    universe [0, universe) and a family of candidate sets (bitsets over the
    universe); a solution is a minimum-cardinality family of candidates
    whose union covers the universe, possibly on top of a set of elements
    that are [pre_covered] for free.

    The exact solver is a branch-and-bound search branching on the element
    with the fewest remaining candidates, with

    - a greedy warm start for the incumbent,
    - a lower bound from a greedily-built family of pairwise "independent"
      elements (no candidate covers two of them), and
    - candidate dominance elimination at the root.

    Views in the paper's experiments have ≤ ~200 vertices and their power
    graphs are dense, so instances are small; the B&B solves them in
    microseconds to milliseconds. *)

type instance = {
  universe : int;  (** elements are [0, universe) *)
  sets : Ncg_util.Bitset.t array;  (** candidate covering sets *)
  pre_covered : Ncg_util.Bitset.t option;
      (** elements that do not need covering (capacity = universe) *)
}

(** Result of a solve: indices into [sets]. *)
type solution = { chosen : int list; cardinality : int }

(** A reusable pool of branch-and-bound scratch bitsets. Threading one
    workspace through repeated solves (every radius of a best-response
    call, every call of a dynamics run) removes the per-node allocations;
    without one, each solve creates its own. A workspace adapts to the
    instance's universe size automatically but must not be shared between
    domains. Solutions never alias workspace memory. *)
type workspace

val create_workspace : unit -> workspace

(** [solve ?ws ?max_size ?node_budget inst] is the optimal solution, or [None]
    when the instance is infeasible (some element is in no candidate set)
    or every cover needs more than [max_size] sets. [max_size] defaults to
    unbounded; passing the best-known bound prunes the search.

    [node_budget] caps the number of branch-and-bound nodes explored
    (default: unbounded). When the budget is exhausted the incumbent —
    never worse than the greedy warm start — is returned, so the solver
    degrades gracefully into an anytime heuristic on pathological dense
    instances while remaining exact everywhere the search completes. *)
val solve :
  ?ws:workspace -> ?max_size:int -> ?node_budget:int -> instance -> solution option

(** [greedy inst] is the classical ln(n)-approximation: repeatedly take the
    candidate covering the most uncovered elements. [None] iff infeasible. *)
val greedy : ?ws:workspace -> instance -> solution option

(** [solve_dp inst] — exact dynamic programming over covered-element
    bitmasks: O(2^u · sets) time and O(2^u) space, exact for any
    instance with [universe <= 22] (the guard). Exists as an independent
    oracle to cross-validate the branch-and-bound solver.
    @raise Invalid_argument when the universe exceeds 22 elements. *)
val solve_dp : instance -> solution option

(** [is_cover inst chosen] checks feasibility of a candidate solution. *)
val is_cover : instance -> int list -> bool
