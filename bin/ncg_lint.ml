(* ncg_lint: AST-level invariant checker for the repo's determinism,
   domain-safety and atomicity contracts (rule catalogue and suppression
   policy in docs/LINTING.md).

   Scans every .ml under lib/, bin/ and bench/ relative to --root, prints
   one line per violation (file:line:col, rule id, fix hint) and exits 1
   on any violation or parse error. --json FILE additionally writes the
   machine-readable ncg.lint.report/1 document (atomically).

   Example:
     dune exec bin/ncg_lint.exe -- --root . --json lint-report.json

   This unit is a trampoline: its module name (Ncg_lint) shadows the
   checker library, so the real driver lives in Ncg_lint_cli. *)

let () = Ncg_lint_cli.Cli.main ()
