(* Bench perf-regression gate.

   Diffs fresh instrumented-bench outputs (BENCH_experiment.json,
   BENCH_fullgrid.json) against the committed bench/BASELINE.json:

     dune exec bin/ncg_bench_diff.exe -- --baseline bench/BASELINE.json \
       experiment=BENCH_experiment.json fullgrid=BENCH_fullgrid.json

   Per cell (matched on alpha and k) it hard-fails when GC allocated
   words grew beyond --tolerance (default 1%) or when any counter in the
   baseline snapshot increased — both are deterministic functions of the
   cell under the engine's parallel==sequential contract, so any growth
   is a real hot-path regression, not noise. Wall-clock only warns
   (runner-dependent). Improvements (fewer words / smaller counters)
   also warn, as a nudge to re-baseline and lock them in.

   Re-baseline (after an intentional engine change):

     dune exec bin/ncg_bench_diff.exe -- --write-baseline bench/BASELINE.json \
       experiment=BENCH_experiment.json fullgrid=BENCH_fullgrid.json

   Exit codes: 0 clean (warnings allowed), 1 regression, 2 bad usage or
   unreadable/ill-formed input. *)

module Json = Ncg_obs.Json

let baseline_schema = Ncg_obs.Schema.bench_baseline

exception Bad_input of string

let failf fmt = Printf.ksprintf (fun s -> raise (Bad_input s)) fmt

let read_json path =
  let contents =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error e -> failf "%s: %s" path e
  in
  match Json.of_string contents with
  | Ok j -> j
  | Error e -> failf "%s: %s" path e

let member name = function
  | Json.Obj fields -> List.assoc_opt name fields
  | _ -> None

let number path = function
  | Some (Json.Int i) -> float_of_int i
  | Some (Json.Float f) -> f
  | _ -> failf "%s: expected a number" path

(* One bench cell reduced to what the gate compares. *)
type cell = {
  alpha : float;
  k : int;
  allocated_words : float;
  wall_seconds : float;
  counters : (string * float) list;
}

let cell_of_json file j =
  let ctx = Printf.sprintf "%s: cell" file in
  let counters =
    match member "counters" j with
    | Some (Json.Obj fields) ->
        List.map (fun (name, v) -> (name, number (ctx ^ "." ^ name) (Some v))) fields
    | _ -> failf "%s: missing counters" ctx
  in
  {
    alpha = number (ctx ^ ".alpha") (member "alpha" j);
    k = int_of_float (number (ctx ^ ".k") (member "k" j));
    allocated_words =
      (* Bench outputs nest it under "gc"; the baseline stores it flat. *)
      (match member "allocated_words" j with
      | Some _ as flat -> number (ctx ^ ".allocated_words") flat
      | None ->
          number (ctx ^ ".gc.allocated_words")
            (Option.bind (member "gc" j) (member "allocated_words")));
    wall_seconds = number (ctx ^ ".wall_seconds") (member "wall_seconds" j);
    counters;
  }

let cells_of_bench file j =
  match member "cells" j with
  | Some (Json.List cells) -> List.map (cell_of_json file) cells
  | _ -> failf "%s: missing cells list" file

(* SECTION=FILE positional arguments. *)
let parse_spec spec =
  match String.index_opt spec '=' with
  | Some i when i > 0 ->
      ( String.sub spec 0 i,
        String.sub spec (i + 1) (String.length spec - i - 1) )
  | _ -> failf "bad section spec %S (expected SECTION=FILE)" spec

let cell_key c = Printf.sprintf "alpha=%g k=%d" c.alpha c.k

let diff_section ~tolerance ~wall_tolerance ~fails ~warns name baseline fresh =
  let tag kind fmt =
    Printf.ksprintf
      (fun s ->
        let line = Printf.sprintf "%s [%s] %s" kind name s in
        print_endline line;
        match kind with
        | "FAIL" -> incr fails
        | _ -> incr warns)
      fmt
  in
  List.iter
    (fun (b : cell) ->
      match
        List.find_opt (fun f -> f.alpha = b.alpha && f.k = b.k) fresh
      with
      | None -> tag "FAIL" "%s: cell missing from fresh bench output" (cell_key b)
      | Some f ->
          if f.allocated_words > b.allocated_words *. (1. +. tolerance) then
            tag "FAIL" "%s: allocated words %.4g -> %.4g (+%.1f%%, tolerance %.1f%%)"
              (cell_key b) b.allocated_words f.allocated_words
              (100. *. ((f.allocated_words /. b.allocated_words) -. 1.))
              (100. *. tolerance)
          else if f.allocated_words < b.allocated_words *. (1. -. tolerance) then
            tag "WARN" "%s: allocated words improved %.4g -> %.4g; re-baseline to lock in"
              (cell_key b) b.allocated_words f.allocated_words;
          List.iter
            (fun (counter, bv) ->
              match List.assoc_opt counter f.counters with
              | None ->
                  tag "FAIL" "%s: counter %s missing from fresh output" (cell_key b)
                    counter
              | Some fv ->
                  if fv > bv then
                    tag "FAIL" "%s: counter %s %.0f -> %.0f" (cell_key b) counter bv fv
                  else if fv < bv then
                    tag "WARN" "%s: counter %s improved %.0f -> %.0f; re-baseline"
                      (cell_key b) counter bv fv)
            b.counters;
          if f.wall_seconds > b.wall_seconds *. (1. +. wall_tolerance) then
            tag "WARN" "%s: wall %.3fs -> %.3fs (runner-dependent, not gated)"
              (cell_key b) b.wall_seconds f.wall_seconds)
    baseline;
  List.iter
    (fun (f : cell) ->
      if not (List.exists (fun b -> b.alpha = f.alpha && b.k = f.k) baseline) then
        tag "WARN" "%s: new cell not in baseline; re-baseline to start gating it"
          (cell_key f))
    fresh

let cell_to_baseline_json (c : cell) =
  Json.Obj
    [
      ("alpha", Json.Float c.alpha);
      ("k", Json.Int c.k);
      ("allocated_words", Json.Float c.allocated_words);
      ("wall_seconds", Json.Float c.wall_seconds);
      ( "counters",
        Json.Obj (List.map (fun (name, v) -> (name, Json.Float v)) c.counters) );
    ]

let baseline_cells file section j =
  match Option.bind (member "sections" j) (member section) with
  | Some sec -> (
      match member "cells" sec with
      | Some (Json.List cells) -> List.map (cell_of_json file) cells
      | _ -> failf "%s: section %s has no cells" file section)
  | None -> failf "%s: no baseline for section %s (re-baseline?)" file section

(* --- Run-history trend (bench/main.exe appends BENCH_history.jsonl) ------- *)

let history_schema = Ncg_obs.Schema.bench_history

let read_lines path =
  let ic = try open_in path with Sys_error e -> failf "%s" e in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

(* Unparseable lines (torn tails from a crashed appender) are skipped, not
   fatal; only a history with zero valid lines is an error. *)
let history_runs path =
  List.filter_map
    (fun line ->
      if String.trim line = "" then None
      else
        match Json.of_string line with
        | Error _ -> None
        | Ok j -> (
            match (member "schema" j, member "sections" j) with
            | Some (Json.String s), Some (Json.Obj fields) when s = history_schema
              ->
                Some
                  (List.filter_map
                     (fun (name, v) ->
                       match v with
                       | Json.Float f -> Some (name, f)
                       | Json.Int i -> Some (name, float_of_int i)
                       | _ -> None)
                     fields)
            | _ -> None))
    (read_lines path)

let print_history path =
  let runs = history_runs path in
  if runs = [] then failf "%s: no valid %s lines" path history_schema;
  (* Ordered union of section names across all runs. *)
  let sections =
    List.fold_left
      (fun acc run ->
        List.fold_left
          (fun acc (name, _) -> if List.mem name acc then acc else acc @ [ name ])
          acc run)
      [] runs
  in
  Printf.printf "%d run(s) in %s (oldest first, wall seconds)\n" (List.length runs)
    path;
  List.iter
    (fun name ->
      let walls = List.filter_map (List.assoc_opt name) runs in
      match walls with
      | [] -> ()
      | first :: _ ->
          let last = List.nth walls (List.length walls - 1) in
          let trend =
            if List.length walls < 2 || first = 0.0 then ""
            else Printf.sprintf "  (%+.1f%% vs first)" (100. *. ((last /. first) -. 1.))
          in
          Printf.printf "  %-14s %s%s\n" name
            (String.concat " " (List.map (Printf.sprintf "%.2f") walls))
            trend)
    sections

let run baseline_path write_path history_path tolerance wall_tolerance specs =
  try
    match history_path with
    | Some path ->
        print_history path;
        0
    | None ->
    let sections =
      List.map
        (fun spec ->
          let name, file = parse_spec spec in
          (name, cells_of_bench file (read_json file)))
        specs
    in
    if sections = [] then failf "no SECTION=FILE arguments given";
    match write_path with
    | Some baseline_path ->
      Json.to_file baseline_path
        (Json.Obj
           [
             ("schema", Json.String baseline_schema);
             ( "sections",
               Json.Obj
                 (List.map
                    (fun (name, cells) ->
                      ( name,
                        Json.Obj
                          [
                            ("cells", Json.List (List.map cell_to_baseline_json cells));
                          ] ))
                    sections) );
           ]);
      Printf.printf "wrote %s (%s)\n" baseline_path
        (String.concat ", "
           (List.map
              (fun (name, cells) ->
                Printf.sprintf "%s: %d cells" name (List.length cells))
              sections));
      0
    | None ->
      let baseline_path =
        match baseline_path with
        | Some p -> p
        | None -> failf "one of --baseline or --write-baseline is required"
      in
      let bj = read_json baseline_path in
      (match member "schema" bj with
      | Some (Json.String s) when s = baseline_schema -> ()
      | Some (Json.String s) -> failf "%s: unknown schema %S" baseline_path s
      | _ -> failf "%s: missing schema" baseline_path);
      let fails = ref 0 and warns = ref 0 in
      List.iter
        (fun (name, fresh) ->
          let base = baseline_cells baseline_path name bj in
          diff_section ~tolerance ~wall_tolerance ~fails ~warns name base fresh;
          Printf.printf "section %s: %d baseline cells checked\n" name
            (List.length base))
        sections;
      if !fails > 0 then begin
        Printf.printf "bench gate: %d regression(s), %d warning(s)\n" !fails !warns;
        1
      end
      else begin
        Printf.printf "bench gate: clean (%d warning(s))\n" !warns;
        0
      end
  with Bad_input msg ->
    prerr_endline ("ncg_bench_diff: " ^ msg);
    2

open Cmdliner

let baseline_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "baseline" ] ~docv:"FILE"
        ~doc:"Committed baseline to diff against (bench/BASELINE.json).")

let write_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "write-baseline" ] ~docv:"FILE"
        ~doc:
          "Regenerate the baseline at $(docv) from the given bench outputs \
           instead of diffing.")

let history_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "history" ] ~docv:"FILE"
        ~doc:
          "Print the per-section wall-time trend from a BENCH_history.jsonl \
           appended by bench/main.exe (schema ncg.bench.history/1), then exit. \
           Unparseable lines are skipped.")

let tolerance_arg =
  Arg.(
    value & opt float 0.01
    & info [ "tolerance" ] ~docv:"FRAC"
        ~doc:"Allocated-words growth that hard-fails (fraction, default 1%).")

let wall_tolerance_arg =
  Arg.(
    value & opt float 0.25
    & info [ "wall-tolerance" ] ~docv:"FRAC"
        ~doc:"Wall-clock growth that warns (fraction, default 25%).")

let specs_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"SECTION=FILE"
        ~doc:"Bench section name and its fresh JSON output.")

let cmd =
  let doc = "diff bench telemetry against the committed perf baseline" in
  Cmd.v
    (Cmd.info "ncg_bench_diff" ~doc)
    Term.(
      const run $ baseline_arg $ write_arg $ history_arg $ tolerance_arg
      $ wall_tolerance_arg $ specs_arg)

let () = exit (Cmd.eval' cmd)
