(* ncg_submit: sweep client for ncg_served.

   Builds a Sweep_spec from the same flags ncg_experiment takes, submits
   it over the wire, polls until the job completes, and prints the CSV —
   byte-identical rows to `ncg_experiment --by-cell-seeds` over the same
   grid, whatever mix of cache hits, dedup and worker crashes produced
   them. Exit codes: 0 clean, 1 connection/protocol trouble, 2 usage,
   3 completed with quarantined cells, 4 timed out (--timeout-ms, the
   job is cancelled daemon-side), 130 interrupted (Ctrl-C sends cancel
   for the unfinished cells before closing the socket). *)

open Cmdliner
module Json = Ncg_obs.Json
module Protocol = Ncg_service.Protocol

let die fmt = Printf.ksprintf (fun msg ->
    Printf.eprintf "ncg_submit: %s\n%!" msg;
    exit 1) fmt

let connect_or_die spec =
  match Protocol.parse_addr spec with
  | Error msg ->
      Printf.eprintf "ncg_submit: %s\n%!" msg;
      exit 2
  | Ok addr -> (
      try Protocol.connect addr
      with Unix.Unix_error (e, _, _) ->
        die "cannot connect to %s: %s" (Protocol.addr_to_string addr)
          (Unix.error_message e))

let rpc ic oc req =
  Protocol.send_line oc (Protocol.request_to_json req);
  match Protocol.recv_line ic with
  | Ok (Some j) -> (
      match Protocol.response_of_json j with
      | Ok r -> r
      | Error msg -> die "bad response: %s" msg)
  | Ok None -> die "daemon hung up"
  | Error msg -> die "%s" msg

let int_field name fields =
  match List.assoc_opt name fields with
  | Some (Json.Int i) -> i
  | _ -> die "response missing integer field %S" name

let str_of = function Json.String s -> s | _ -> die "expected a string"

(* --- subscribe mode: stream raw event lines to stdout ------------------- *)

let subscribe_main ic oc =
  (match rpc ic oc Protocol.Subscribe with
  | Protocol.Resp_ok _ -> ()
  | Protocol.Resp_error msg -> die "subscribe rejected: %s" msg);
  let rec stream () =
    match input_line ic with
    | line ->
        print_endline line;
        stream ()
    | exception End_of_file -> ()
  in
  stream ();
  exit 0

(* --- status mode --------------------------------------------------------- *)

let status_main ic oc job =
  match rpc ic oc (Protocol.Status { job }) with
  | Protocol.Resp_error msg -> die "%s" msg
  | Protocol.Resp_ok fields ->
      print_endline (Json.to_string (Json.Obj fields));
      exit 0

(* --- stats mode ---------------------------------------------------------- *)

let stats_main ic oc =
  match rpc ic oc Protocol.Stats with
  | Protocol.Resp_error msg -> die "%s" msg
  | Protocol.Resp_ok fields ->
      print_string (Json.to_string_pretty (Json.Obj fields));
      exit 0

(* --- cancel mode --------------------------------------------------------- *)

let cancel_main ic oc job =
  match rpc ic oc (Protocol.Cancel { job }) with
  | Protocol.Resp_error msg -> die "%s" msg
  | Protocol.Resp_ok fields ->
      print_endline (Json.to_string (Json.Obj fields));
      exit 0

(* --- submit mode --------------------------------------------------------- *)

(* Set by the SIGINT handler; the wait loop polls it and turns it into
   a cancel verb, so Ctrl-C releases the job's queued cells instead of
   silently abandoning them to the daemon. *)
let interrupted = Atomic.make false

let submit_main ic oc spec deadline_ms timeout_ms poll_ms quiet =
  (match Ncg.Sweep_spec.validate spec with
  | Ok () -> ()
  | Error msg ->
      Printf.eprintf "ncg_submit: %s\n%!" msg;
      exit 2);
  let job, total =
    match rpc ic oc (Protocol.Submit { spec; deadline_ms }) with
    | Protocol.Resp_error msg -> die "submit rejected: %s" msg
    | Protocol.Resp_ok fields ->
        if not quiet then
          Printf.eprintf
            "ncg_submit: job %d accepted (%d cells: %d cached, %d deduped, %d queued)\n%!"
            (int_field "job" fields) (int_field "total" fields)
            (int_field "cached" fields) (int_field "deduped" fields)
            (int_field "queued" fields);
        (int_field "job" fields, int_field "total" fields)
  in
  (try
     ignore
       (Sys.signal Sys.sigint
          (Sys.Signal_handle (fun _ -> Atomic.set interrupted true)))
   with Invalid_argument _ | Sys_error _ -> ());
  let give_up_ns =
    Option.map
      (fun ms ->
        Int64.add (Ncg_obs.Clock.now_ns ())
          (Int64.of_float (float_of_int ms *. 1e6)))
      timeout_ms
  in
  let cancel_and_exit code reason =
    Ncg_obs.Events.progress_done ();
    (match rpc ic oc (Protocol.Cancel { job }) with
    | Protocol.Resp_ok _ ->
        Printf.eprintf "ncg_submit: job %d cancelled (%s)\n%!" job reason
    | Protocol.Resp_error msg ->
        Printf.eprintf "ncg_submit: cancel after %s failed: %s\n%!" reason msg);
    (try close_out oc with Sys_error _ -> ());
    exit code
  in
  let rec wait () =
    if Atomic.get interrupted then cancel_and_exit 130 "interrupt";
    (match give_up_ns with
    | Some d when Int64.compare (Ncg_obs.Clock.now_ns ()) d > 0 ->
        cancel_and_exit 4
          (Printf.sprintf "timeout after %d ms" (Option.get timeout_ms))
    | _ -> ());
    match
      try `Reply (rpc ic oc (Protocol.Status { job }))
      with Sys_error _ when Atomic.get interrupted -> `Interrupted
    with
    | `Interrupted -> cancel_and_exit 130 "interrupt"
    | `Reply (Protocol.Resp_error msg) -> die "%s" msg
    | `Reply (Protocol.Resp_ok fields) -> (
        match List.assoc_opt "state" fields with
        | Some (Json.String "running") ->
            if not quiet then
              Ncg_obs.Events.progress
                (Printf.sprintf "job %d: %d/%d cells" job
                   (int_field "done" fields) total);
            Unix.sleepf (float_of_int poll_ms /. 1000.);
            wait ()
        | Some (Json.String "done") -> Ncg_obs.Events.progress_done ()
        | Some (Json.String "expired") ->
            Ncg_obs.Events.progress_done ();
            die "job %d expired before completing" job
        | Some (Json.String "cancelled") ->
            Ncg_obs.Events.progress_done ();
            die "job %d was cancelled" job
        | _ -> die "unrecognized job state")
  in
  wait ();
  match rpc ic oc (Protocol.Results { job }) with
  | Protocol.Resp_error msg -> die "%s" msg
  | Protocol.Resp_ok fields ->
      let header =
        match List.assoc_opt "header" fields with
        | Some (Json.String h) -> h
        | _ -> die "results missing header"
      in
      let rows =
        match List.assoc_opt "rows" fields with
        | Some (Json.List rows) -> List.map str_of rows
        | _ -> die "results missing rows"
      in
      let quarantined =
        match List.assoc_opt "quarantined" fields with
        | Some (Json.List q) -> q
        | _ -> []
      in
      print_endline header;
      List.iter print_endline rows;
      List.iter
        (fun q ->
          Printf.eprintf "ncg_submit: quarantined: %s\n%!" (Json.to_string q))
        quarantined;
      if quarantined <> [] then exit 3 else exit 0

(* --- CLI ----------------------------------------------------------------- *)

let run connect graph_class n p alphas ks trials seed budget move_budget
    no_probes deadline_ms timeout_ms poll_ms status_job cancel_job subscribe
    stats quiet =
  if quiet then Ncg_obs.Events.set_progress false;
  let ic, oc = connect_or_die connect in
  let hello =
    Protocol.Hello
      {
        client = Printf.sprintf "ncg_submit-%d" (Unix.getpid ());
        worker = false;
      }
  in
  (match rpc ic oc hello with
  | Protocol.Resp_ok _ -> ()
  | Protocol.Resp_error msg -> die "hello rejected: %s" msg);
  if subscribe then subscribe_main ic oc
  else if stats then stats_main ic oc
  else
    match (status_job, cancel_job) with
    | Some job, _ -> status_main ic oc job
    | None, Some job -> cancel_main ic oc job
    | None, None ->
        let spec =
          {
            Ncg.Sweep_spec.graph_class;
            n;
            p;
            alphas =
              (if alphas = [] then Ncg.Sweep_spec.default.Ncg.Sweep_spec.alphas
               else alphas);
            ks =
              (if ks = [] then Ncg.Sweep_spec.default.Ncg.Sweep_spec.ks
               else ks);
            trials;
            seed;
            budget;
            move_budget;
            probes = not no_probes;
          }
        in
        submit_main ic oc spec deadline_ms timeout_ms poll_ms quiet

let connect =
  Arg.(value & opt string "unix:ncg.sock" & info [ "connect" ] ~docv:"ADDR"
         ~doc:"Daemon address (unix:PATH or tcp:HOST:PORT).")

let graph_class =
  Arg.(value & opt string "tree" & info [ "class" ] ~docv:"CLASS"
         ~doc:"Initial graph class: tree, gnp, ba or ws.")

let n = Arg.(value & opt int 50 & info [ "n" ] ~docv:"N" ~doc:"Players.")

let p =
  Arg.(value & opt float 0.1 & info [ "p" ] ~docv:"P"
         ~doc:"Edge probability (gnp).")

let alphas =
  Arg.(value & opt (list float) [] & info [ "alphas" ] ~docv:"LIST"
         ~doc:"Alpha grid.")

let ks =
  Arg.(value & opt (list int) [] & info [ "ks" ] ~docv:"LIST"
         ~doc:"View radius grid.")

let trials =
  Arg.(value & opt int 5 & info [ "trials" ] ~docv:"T" ~doc:"Seeds per cell.")

let seed = Arg.(value & opt int 2014 & info [ "seed" ] ~doc:"Base seed.")

let budget =
  Arg.(value & opt int 50_000 & info [ "budget" ]
         ~doc:"Branch-and-bound node budget per best response.")

let move_budget =
  Arg.(value & opt int 1_000_000 & info [ "move-budget" ] ~docv:"N"
         ~doc:"Cooperative checkpoint polls allowed per player move.")

let no_probes =
  Arg.(value & flag & info [ "no-probes" ]
         ~doc:"Skip round-level probe collection (changes cache keys).")

let deadline_ms =
  Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS"
         ~doc:"Give the job up if not done within MS of submission.")

let timeout_ms =
  Arg.(value & opt (some int) None & info [ "timeout-ms" ] ~docv:"MS"
         ~doc:"Give up waiting after MS: cancel the job daemon-side \
               (releasing its queued cells, revoking its leases) and \
               exit 4.")

let poll_ms =
  Arg.(value & opt int 200 & info [ "poll-ms" ] ~docv:"MS"
         ~doc:"Status poll period while waiting.")

let status_job =
  Arg.(value & opt (some int) None & info [ "status" ] ~docv:"JOB"
         ~doc:"Print another job's status as JSON and exit.")

let cancel_job =
  Arg.(value & opt (some int) None & info [ "cancel" ] ~docv:"JOB"
         ~doc:"Cancel a running job and exit.")

let subscribe =
  Arg.(value & flag & info [ "subscribe" ]
         ~doc:"Stream the daemon's event log to stdout until killed.")

let stats =
  Arg.(value & flag & info [ "stats" ]
         ~doc:"Print daemon statistics as JSON and exit.")

let quiet =
  Arg.(value & flag & info [ "quiet" ]
         ~doc:"No submission banner, no progress line.")

let cmd =
  let doc = "submit sweeps to a running ncg_served daemon" in
  Cmd.v
    (Cmd.info "ncg_submit" ~doc)
    Term.(const run $ connect $ graph_class $ n $ p $ alphas $ ks $ trials
          $ seed $ budget $ move_budget $ no_probes $ deadline_ms $ timeout_ms
          $ poll_ms $ status_job $ cancel_job $ subscribe $ stats $ quiet)

let () = exit (Cmd.eval cmd)
