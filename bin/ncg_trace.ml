(* ncg_trace: record and audit dynamics traces.

   record : run a dynamics, save the initial profile and the move trace
   verify : reload both, replay the trace, check the replay invariant and
            certify the replayed profile as an LKE

   Example:
     dune exec bin/ncg_trace.exe -- record --class tree -n 30 --alpha 2 \
         -k 3 --prefix /tmp/run1
     dune exec bin/ncg_trace.exe -- verify --prefix /tmp/run1 --alpha 2 -k 3 *)

open Cmdliner

let write_file = Ncg_obs.Atomic_file.write

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let initial_path prefix = prefix ^ ".initial"
let trace_path prefix = prefix ^ ".trace"

let record graph_class n p alpha k seed prefix =
  let strategy =
    match graph_class with
    | "tree" -> Ncg.Experiment.initial_tree ~seed ~n
    | "gnp" -> Ncg.Experiment.initial_gnp ~seed ~n ~p
    | other -> failwith (Printf.sprintf "unknown graph class %S" other)
  in
  let config =
    { (Ncg.Dynamics.default_config ~alpha ~k) with Ncg.Dynamics.solver = `Budgeted 50_000 }
  in
  let result = Ncg.Dynamics.run config strategy in
  write_file (initial_path prefix) (Ncg.Strategy.to_string strategy);
  write_file (trace_path prefix) (Ncg.Trace.to_string result.Ncg.Dynamics.trace);
  Printf.printf "recorded %d move(s) to %s{.initial,.trace}\n"
    (Ncg.Trace.length result.Ncg.Dynamics.trace)
    prefix;
  match result.Ncg.Dynamics.outcome with
  | Ncg.Dynamics.Converged r -> Printf.printf "converged after %d changing round(s)\n" (r - 1)
  | Ncg.Dynamics.Cycle_detected r -> Printf.printf "cycle detected at round %d\n" r
  | Ncg.Dynamics.Max_rounds_exceeded -> print_endline "round budget exhausted"

let verify prefix alpha k =
  let initial = Ncg.Strategy.of_string (read_file (initial_path prefix)) in
  let trace = Ncg.Trace.of_string (read_file (trace_path prefix)) in
  let final = Ncg.Trace.replay initial trace in
  Printf.printf "replayed %d move(s) cleanly\n" (Ncg.Trace.length trace);
  let lke = Ncg.Lke.is_lke_max ~solver:(`Budgeted 50_000) ~alpha ~k final in
  Printf.printf "replayed profile is an LKE at (alpha=%g, k=%d): %b\n" alpha k lke;
  (match Ncg.Game.quality Ncg.Game.Max ~alpha final with
  | Some q -> Printf.printf "quality: %.4f\n" q
  | None -> print_endline "replayed profile disconnected?!");
  if not lke then exit 2

let graph_class =
  Arg.(value & opt string "tree" & info [ "class" ] ~docv:"CLASS" ~doc:"tree or gnp.")

let n = Arg.(value & opt int 30 & info [ "n" ] ~doc:"Players.")
let p = Arg.(value & opt float 0.1 & info [ "p" ] ~doc:"Edge probability (gnp).")
let alpha = Arg.(value & opt float 2.0 & info [ "alpha"; "a" ] ~doc:"Edge price.")
let k = Arg.(value & opt int 3 & info [ "k" ] ~doc:"View radius.")
let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.")

let prefix =
  Arg.(required & opt (some string) None & info [ "prefix" ] ~docv:"PATH"
         ~doc:"File prefix for the .initial and .trace files.")

let record_cmd =
  Cmd.v (Cmd.info "record" ~doc:"run a dynamics and save initial profile + trace")
    Term.(const record $ graph_class $ n $ p $ alpha $ k $ seed $ prefix)

let verify_cmd =
  Cmd.v (Cmd.info "verify" ~doc:"replay a saved trace and certify the result")
    Term.(const verify $ prefix $ alpha $ k)

let cmd =
  Cmd.group (Cmd.info "ncg_trace" ~doc:"record and audit dynamics traces")
    [ record_cmd; verify_cmd ]

let () = exit (Cmd.eval cmd)
